module newtop

go 1.24
