// Command newtopd runs one Newtop process over real TCP and demonstrates
// totally ordered group communication across machines (or terminals).
//
// Start three processes in three terminals:
//
//	newtopd -id 1 -listen 127.0.0.1:7001 -peers 2=127.0.0.1:7002,3=127.0.0.1:7003
//	newtopd -id 2 -listen 127.0.0.1:7002 -peers 1=127.0.0.1:7001,3=127.0.0.1:7003
//	newtopd -id 3 -listen 127.0.0.1:7003 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002
//
// Each process joins group 1 (symmetric total order by default) with the
// full peer set, multicasts one numbered message per -interval, and prints
// every delivery and view change. Kill one process and watch the others
// agree on its exclusion; restart is not supported (Newtop processes never
// rejoin — they would form a new group).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"newtop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("newtopd: ", err)
	}
}

func run() error {
	var (
		id       = flag.Uint("id", 0, "process ID (non-zero, unique)")
		listen   = flag.String("listen", "", "TCP listen address, e.g. 127.0.0.1:7001")
		peers    = flag.String("peers", "", "comma-separated id=addr peer list")
		mode     = flag.String("mode", "symmetric", "ordering: symmetric|asymmetric|atomic")
		omega    = flag.Duration("omega", 100*time.Millisecond, "time-silence interval ω")
		interval = flag.Duration("interval", time.Second, "application multicast interval (0 = silent)")
	)
	flag.Parse()
	if *id == 0 || *listen == "" {
		flag.Usage()
		return fmt.Errorf("-id and -listen are required")
	}
	peerMap, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	var om newtop.OrderMode
	switch *mode {
	case "symmetric":
		om = newtop.Symmetric
	case "asymmetric":
		om = newtop.Asymmetric
	case "atomic":
		om = newtop.Atomic
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	self := newtop.ProcessID(*id)
	proc, err := newtop.Start(newtop.Config{
		Self:       self,
		ListenAddr: *listen,
		Peers:      peerMap,
		Omega:      *omega,
	})
	if err != nil {
		return err
	}
	defer func() { _ = proc.Close() }()

	members := []newtop.ProcessID{self}
	for p := range peerMap {
		members = append(members, p)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if err := proc.BootstrapGroup(1, om, members); err != nil {
		return err
	}
	log.Printf("P%d up at %s; group g1 (%s) members %v", *id, proc.Addr(), *mode, members)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	go func() {
		for d := range proc.Deliveries() {
			log.Printf("deliver %v/%v: %s", d.Group, d.Sender, d.Payload)
		}
	}()
	go func() {
		for ev := range proc.Events() {
			switch ev.Kind {
			case newtop.EventViewChanged:
				log.Printf("view change %v: %v (removed %v)", ev.Group, ev.View, ev.Removed)
			case newtop.EventSuspected:
				log.Printf("suspecting P%d in %v", ev.Suspect, ev.Group)
			case newtop.EventGroupReady:
				log.Printf("group %v ready", ev.Group)
			case newtop.EventFormationFailed:
				log.Printf("formation of %v failed: %s", ev.Group, ev.Reason)
			}
		}
	}()

	var ticker <-chan time.Time
	if *interval > 0 {
		t := time.NewTicker(*interval)
		defer t.Stop()
		ticker = t.C
	}
	n := 0
	for {
		select {
		case <-stop:
			st := proc.Stats()
			log.Printf("shutting down: sent=%d delivered=%d nulls=%d views=%d",
				st.DataSent, st.Delivered, st.NullsSent, st.ViewChanges)
			return nil
		case <-ticker:
			n++
			msg := fmt.Sprintf("P%d says hello #%d", *id, n)
			if err := proc.Submit(1, []byte(msg)); err != nil {
				log.Printf("submit: %v", err)
			}
		}
	}
}

func parsePeers(s string) (map[newtop.ProcessID]string, error) {
	out := make(map[newtop.ProcessID]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=addr)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("bad peer id %q", kv[0])
		}
		out[newtop.ProcessID(id)] = kv[1]
	}
	return out, nil
}
