// Command newtopd runs one Newtop service process over real TCP: a
// replicated key-value store on totally ordered group communication, plus
// a client-facing request listener. The daemon logic itself lives in
// internal/daemon (so tests and the harness can run whole clusters
// in-process); this command is the flag surface around it.
//
// Start three processes in three terminals:
//
//	newtopd -id 1 -listen 127.0.0.1:7001 -client 127.0.0.1:8001 \
//	        -peers 2=127.0.0.1:7002,3=127.0.0.1:7003 \
//	        -client-peers 2=127.0.0.1:8002,3=127.0.0.1:8003
//	newtopd -id 2 -listen 127.0.0.1:7002 -client 127.0.0.1:8002 \
//	        -peers 1=127.0.0.1:7001,3=127.0.0.1:7003 \
//	        -client-peers 1=127.0.0.1:8001,3=127.0.0.1:8003
//	newtopd -id 3 -listen 127.0.0.1:7003 -client 127.0.0.1:8003 \
//	        -peers 1=127.0.0.1:7001,2=127.0.0.1:7002 \
//	        -client-peers 1=127.0.0.1:8001,2=127.0.0.1:8002
//
// Each process replicates the store in group 1 (symmetric total order by
// default) and serves GET/PUT/DEL/BARRIER-READ/STATUS on its -client
// address (see the newtop/client package — clients route, follow
// redirects and fail over on their own). With -interval > 0 the daemon
// additionally proposes one write of its own per interval and prints its
// applied sequence, key count and state digest — identical digests at
// identical sequence numbers are the replication guarantee, across
// machines. Kill one process and watch the others agree on its exclusion
// and keep serving, clients failing over to them.
//
// A process never rejoins a group it left (§3); a new or returning
// machine joins by forming a successor group and catching up:
//
//	newtopd -id 4 -listen 127.0.0.1:7004 -join 2 \
//	        -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003
//
// forms group 2 = {P1..P4}; the incumbents carry their stores over, P4
// receives a chunked snapshot plus replay tail through the total order,
// and everyone's service cuts over to group 2. A drain window later
// (-drain) every daemon closes its group-1 replica and leaves group 1, so
// the superseded group goes quiet instead of multicasting ω-nulls
// forever. The peer address book is static, so every incumbent must know
// the joiner's address up front — start the originals with
// 4=127.0.0.1:7004 already in -peers. Group 1 membership is self plus the
// peers listed in -initial (default: every peer), so the future P4 is not
// part of g1.
//
// Partitions heal themselves: when the daemons on both sides of a healed
// partition detect each other again, each side pauses, the lowest-ID
// survivor forms a merged successor group over everyone it can see, and
// the members reconcile their diverged stores by digest diff under the
// -merge policy (lww: highest apply index wins; prefer-low: the subgroup
// with the lowest leader dictates). -settle tunes how long a daemon waits
// after the last heal signal before initiating; if the initiator crashes
// before forming the merged group, the next-lowest survivor takes over
// after -initiate-timeout. Clients see RETRY while the merge is in flight
// and resume on the merged group without caller intervention.
//
// With -data-dir the daemon is durable: every applied command lands in a
// per-group write-ahead log under that directory (flushed per -fsync;
// "always" makes acked writes power-loss safe), snapshots are cut every
// -snapshot-every entries, and restarting the same process with the same
// -data-dir replays its store locally and rejoins the survivors via the
// reconcile fast path — no snapshot retransfer when nothing diverged:
//
//	newtopd -id 3 ... -data-dir /var/lib/newtop/p3 -fsync always
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"newtop"
	"newtop/internal/daemon"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("newtopd: ", err)
	}
}

func run() error {
	var (
		id          = flag.Uint("id", 0, "process ID (non-zero, unique)")
		listen      = flag.String("listen", "", "inter-daemon TCP listen address, e.g. 127.0.0.1:7001")
		peers       = flag.String("peers", "", "comma-separated id=addr peer list (inter-daemon addresses)")
		clientAddr  = flag.String("client", "", "client-protocol TCP listen address (empty disables client serving)")
		clientPeers = flag.String("client-peers", "", "comma-separated id=addr list of the peers' CLIENT addresses (redirect hints)")
		mode        = flag.String("mode", "symmetric", "ordering: symmetric|asymmetric|atomic")
		omega       = flag.Duration("omega", 100*time.Millisecond, "time-silence interval ω")
		interval    = flag.Duration("interval", time.Second, "self-write proposal interval (0 = serve clients only)")
		join        = flag.Uint("join", 0, "join the running cluster by forming this new group ID and catching up (skips group 1)")
		initial     = flag.String("initial", "", "comma-separated process IDs of the bootstrap group 1 (default: self + every peer)")
		merge       = flag.String("merge", "lww", "post-partition merge policy: lww|prefer-low")
		settle      = flag.Duration("settle", 2*time.Second, "delay between detecting a heal and initiating reconciliation")
		drain       = flag.Duration("drain", 2*time.Second, "how long a superseded group lingers after cut-over before the daemon leaves it")
		initTimeout = flag.Duration("initiate-timeout", 0, "how long to wait for a heal initiator before taking over (default 5×settle)")
		ringThresh  = flag.Int("ring-threshold", 0, "payload size at or above which multicasts ride the view ring instead of fanning out (0 disables)")
		metricsAddr = flag.String("metrics-addr", "", "introspection HTTP listen address serving /metrics and /debug/pprof/ (empty disables)")
		traceEvery  = flag.Uint64("trace-every", 0, "sample one in every N data messages through the delivery-stage tracer (0 disables)")
		dataDir     = flag.String("data-dir", "", "durability directory: WAL + snapshots live here and a restart recovers from it (empty = in-memory only)")
		fsync       = flag.String("fsync", "always", "WAL flush policy with -data-dir: always|interval|never")
		fsyncIvl    = flag.Duration("fsync-interval", 50*time.Millisecond, "flush cadence under -fsync interval")
		snapEvery   = flag.Int("snapshot-every", 4096, "cut an on-disk snapshot every N applied entries")
	)
	flag.Parse()
	if *id == 0 || *listen == "" {
		flag.Usage()
		return fmt.Errorf("-id and -listen are required")
	}
	peerMap, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	clientPeerMap, err := parsePeers(*clientPeers)
	if err != nil {
		return err
	}
	var om newtop.OrderMode
	switch *mode {
	case "symmetric":
		om = newtop.Symmetric
	case "asymmetric":
		om = newtop.Asymmetric
	case "atomic":
		om = newtop.Atomic
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	var boot []newtop.ProcessID
	if *initial != "" {
		for _, part := range strings.Split(*initial, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
			if err != nil || v == 0 {
				return fmt.Errorf("bad -initial entry %q", part)
			}
			boot = append(boot, newtop.ProcessID(v))
		}
	}

	d, err := daemon.Start(daemon.Config{
		Self:             newtop.ProcessID(*id),
		ListenAddr:       *listen,
		Peers:            peerMap,
		ClientAddr:       *clientAddr,
		PeerClientAddrs:  clientPeerMap,
		Mode:             om,
		Omega:            *omega,
		Join:             newtop.GroupID(*join),
		Initial:          boot,
		Merge:            *merge,
		Settle:           *settle,
		DrainWindow:      *drain,
		InitiateTimeout:  *initTimeout,
		RingThreshold:    *ringThresh,
		MetricsAddr:      *metricsAddr,
		TraceSampleEvery: *traceEvery,
		DataDir:          *dataDir,
		Fsync:            *fsync,
		FsyncInterval:    *fsyncIvl,
		SnapshotEvery:    *snapEvery,
	})
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }()
	if *clientAddr != "" {
		log.Printf("serving clients at %s", d.ClientAddr())
	}
	if *metricsAddr != "" {
		log.Printf("serving metrics at http://%s/metrics", d.MetricsAddr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var ticker <-chan time.Time
	if *interval > 0 {
		t := time.NewTicker(*interval)
		defer t.Stop()
		ticker = t.C
	}
	n := 0
	for {
		select {
		case <-stop:
			rep, g := d.Replica()
			if rep != nil {
				log.Printf("shutting down: g%d applied=%d keys=%d digest=%016x",
					g, rep.AppliedSeq(), d.KV().Len(), rep.Digest())
			}
			return nil
		case <-ticker:
			rep, g := d.Replica()
			if rep == nil || !rep.CaughtUp() {
				continue
			}
			n++
			cmd := fmt.Sprintf("put p%d:%04d hello-%d", *id, n, n)
			if err := rep.Propose([]byte(cmd)); err != nil {
				log.Printf("propose: %v", err)
				continue
			}
			if err := rep.Read(func(newtop.StateMachine) {}); err == nil {
				log.Printf("g%d applied=%d keys=%d digest=%016x",
					g, rep.AppliedSeq(), d.KV().Len(), rep.Digest())
			}
		}
	}
}

func parsePeers(s string) (map[newtop.ProcessID]string, error) {
	out := make(map[newtop.ProcessID]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=addr)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("bad peer id %q", kv[0])
		}
		out[newtop.ProcessID(id)] = kv[1]
	}
	return out, nil
}
