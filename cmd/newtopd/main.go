// Command newtopd runs one Newtop process over real TCP and demonstrates
// replicated state machines on totally ordered group communication across
// machines (or terminals).
//
// Start three processes in three terminals:
//
//	newtopd -id 1 -listen 127.0.0.1:7001 -peers 2=127.0.0.1:7002,3=127.0.0.1:7003
//	newtopd -id 2 -listen 127.0.0.1:7002 -peers 1=127.0.0.1:7001,3=127.0.0.1:7003
//	newtopd -id 3 -listen 127.0.0.1:7003 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002
//
// Each process replicates a key-value store in group 1 (symmetric total
// order by default), proposes one write per -interval, and prints its
// applied sequence, key count and state digest — identical digests at
// identical sequence numbers are the replication guarantee, across
// machines. Kill one process and watch the others agree on its exclusion
// and keep serving.
//
// A process never rejoins a group it left (§3); a new or returning
// machine joins by forming a successor group and catching up:
//
//	newtopd -id 4 -listen 127.0.0.1:7004 -join 2 \
//	        -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003
//
// forms group 2 = {P1..P4}; the incumbents carry their stores over, P4
// receives a chunked snapshot plus replay tail through the total order
// (EventStateTransferred), and everyone's writes continue in group 2.
//
// The peer address book is static, so every incumbent must know the
// joiner's address up front — start the originals with
// 4=127.0.0.1:7004 already in -peers (an address that is not yet
// listening is harmless: sends to it are dropped until it comes up).
// Group 1 membership is self plus the peers listed in -initial (default:
// every peer), so the future P4 is not part of g1.
//
// Partitions heal themselves: when the daemons on both sides of a healed
// partition detect each other again (EventHealDetected, raised by the
// node's low-rate probes to excluded members), each side pauses its
// writes, the lowest-ID survivor forms a merged successor group over
// everyone it can see, and the members reconcile their diverged stores by
// digest diff under the -merge policy (lww: highest apply index wins;
// prefer-low: the subgroup with the lowest leader dictates). Watch the
// logs for "reconciled": the digests printed afterwards agree across all
// daemons. -settle tunes how long a daemon waits after the first heal
// signal before initiating, so in-flight old-group writes drain first.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"newtop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("newtopd: ", err)
	}
}

func run() error {
	var (
		id       = flag.Uint("id", 0, "process ID (non-zero, unique)")
		listen   = flag.String("listen", "", "TCP listen address, e.g. 127.0.0.1:7001")
		peers    = flag.String("peers", "", "comma-separated id=addr peer list")
		mode     = flag.String("mode", "symmetric", "ordering: symmetric|asymmetric|atomic")
		omega    = flag.Duration("omega", 100*time.Millisecond, "time-silence interval ω")
		interval = flag.Duration("interval", time.Second, "write-proposal interval (0 = silent)")
		join     = flag.Uint("join", 0, "join the running cluster by forming this new group ID and catching up (skips group 1)")
		initial  = flag.String("initial", "", "comma-separated process IDs of the bootstrap group 1 (default: self + every peer)")
		merge    = flag.String("merge", "lww", "post-partition merge policy: lww|prefer-low")
		settle   = flag.Duration("settle", 2*time.Second, "delay between detecting a heal and initiating reconciliation")
	)
	flag.Parse()
	if *id == 0 || *listen == "" {
		flag.Usage()
		return fmt.Errorf("-id and -listen are required")
	}
	peerMap, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	var om newtop.OrderMode
	switch *mode {
	case "symmetric":
		om = newtop.Symmetric
	case "asymmetric":
		om = newtop.Asymmetric
	case "atomic":
		om = newtop.Atomic
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	self := newtop.ProcessID(*id)
	// Formation invites for groups we have not replicated yet are
	// signalled to the main loop, which attaches a replica while the vote
	// is still in flight — before the group can deliver anything. The
	// member list rides along so the handler can tell a reconciliation
	// (members we once excluded are back) from a plain join.
	type invitation struct {
		g       newtop.GroupID
		members []newtop.ProcessID
	}
	invites := make(chan invitation, 16)
	proc, err := newtop.Start(newtop.Config{
		Self:       self,
		ListenAddr: *listen,
		Peers:      peerMap,
		Omega:      *omega,
		AcceptInvite: func(g newtop.GroupID, members []newtop.ProcessID) bool {
			select {
			case invites <- invitation{g, append([]newtop.ProcessID(nil), members...)}:
				return true
			default:
				// Joining a group we would never replicate is worse than
				// vetoing the formation: the initiator can retry.
				return false
			}
		},
	})
	if err != nil {
		return err
	}
	defer func() { _ = proc.Close() }()

	members := []newtop.ProcessID{self}
	for p := range peerMap {
		members = append(members, p)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	// The bootstrap group may be a subset of the address book (e.g. the
	// book already lists a machine that will join later via -join).
	bootMembers := members
	if *initial != "" {
		bootMembers = nil
		for _, part := range strings.Split(*initial, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
			if err != nil || v == 0 {
				return fmt.Errorf("bad -initial entry %q", part)
			}
			bootMembers = append(bootMembers, newtop.ProcessID(v))
		}
		sort.Slice(bootMembers, func(i, j int) bool { return bootMembers[i] < bootMembers[j] })
	}

	// One store per process, carried across every group it replicates.
	kv := newtop.NewKV()
	var mu sync.Mutex // guards reps/serving/removed/healed/reconciling
	reps := map[newtop.GroupID]*newtop.Replica{}
	var serving newtop.GroupID
	// removed accumulates, per group, the peers excluded from its views;
	// healed the ones that came back. Together they drive reconciliation.
	removed := map[newtop.GroupID]map[newtop.ProcessID]bool{}
	healed := map[newtop.GroupID]map[newtop.ProcessID]bool{}
	reconciling := map[newtop.GroupID]bool{}      // heal already being handled
	healTimer := map[newtop.GroupID]*time.Timer{} // debounce: initiate -settle after the LAST heal signal
	register := func(g newtop.GroupID, rep *newtop.Replica) {
		reps[g] = rep
		if g > serving {
			serving = g // always serve in the newest group
		}
	}
	replicate := func(g newtop.GroupID, opts ...newtop.ReplicaOption) error {
		mu.Lock()
		defer mu.Unlock()
		if _, ok := reps[g]; ok {
			return nil
		}
		rep, err := newtop.Replicate(proc, g, kv, opts...)
		if err != nil {
			return err
		}
		register(g, rep)
		return nil
	}
	switch *merge {
	case "lww", "prefer-low":
	default:
		return fmt.Errorf("unknown -merge %q", *merge)
	}
	mkPolicy := func(lowSide uint64) newtop.MergePolicy {
		if *merge == "prefer-low" {
			return newtop.PreferSide(lowSide)
		}
		return newtop.LastWriterWins()
	}
	// reconcile attaches a reconciling replica for the merged group g.
	reconcile := func(g newtop.GroupID, members []newtop.ProcessID, side uint64, lowSide uint64) error {
		mu.Lock()
		defer mu.Unlock()
		if _, ok := reps[g]; ok {
			return nil
		}
		rep, err := newtop.Reconcile(proc, g, kv, mkPolicy(lowSide), members,
			newtop.WithPartitionSide(side))
		if err != nil {
			return err
		}
		register(g, rep)
		return nil
	}
	current := func() (*newtop.Replica, newtop.GroupID) {
		mu.Lock()
		defer mu.Unlock()
		return reps[serving], serving
	}
	// mySide returns this daemon's partition tag for group g: the lowest
	// member of its current (pre-merge) view.
	mySide := func(g newtop.GroupID) uint64 {
		if v, err := proc.View(g); err == nil && len(v.Members) > 0 {
			return uint64(v.Members[0])
		}
		return uint64(self)
	}
	// initiateReconcile fires -settle after the first heal signal for g:
	// if this daemon is the lowest ID among everyone now reachable, it
	// forms the merged successor group; otherwise it waits for the
	// initiator's invitation (handled below).
	initiateReconcile := func(g newtop.GroupID) {
		v, err := proc.View(g)
		if err != nil {
			return
		}
		mu.Lock()
		reconciling[g] = true
		delete(healTimer, g)
		members := append([]newtop.ProcessID(nil), v.Members...)
		for p := range healed[g] {
			members = append(members, p)
		}
		mu.Unlock()
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		if members[0] != self {
			log.Printf("heal of g%d: waiting for P%d to initiate the merged group", g, members[0])
			return
		}
		next := g + 1
		log.Printf("heal of g%d: initiating merged successor group g%d = %v (%s merge)", g, next, members, *merge)
		if err := reconcile(next, members, mySide(g), uint64(members[0])); err != nil {
			log.Printf("reconcile g%d: %v", next, err)
			return
		}
		if err := proc.CreateGroup(next, om, members); err != nil {
			log.Printf("form g%d: %v", next, err)
		}
	}

	if *join == 0 {
		// Founding member: replicate then bootstrap the static group 1.
		if err := replicate(1); err != nil {
			return err
		}
		if err := proc.BootstrapGroup(1, om, bootMembers); err != nil {
			return err
		}
		log.Printf("P%d up at %s; group g1 (%s) members %v", *id, proc.Addr(), *mode, bootMembers)
	} else {
		// Joining: form the successor group and catch up from the
		// incumbents — state transfer rides the total order.
		g := newtop.GroupID(*join)
		if err := replicate(g, newtop.CatchUp()); err != nil {
			return err
		}
		if err := proc.CreateGroup(g, om, members); err != nil {
			return err
		}
		log.Printf("P%d up at %s; joining via new group g%d (%s) members %v", *id, proc.Addr(), g, *mode, members)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// Invites get their own goroutine so a replica attaches within
	// microseconds of the vote, long before the formation's start-group
	// exchange completes and deliveries can begin. (Correctness does not
	// hinge on winning that race for *old-group* traffic: an incumbent's
	// last old-group write is submitted before its formation vote, so it
	// is Lamport-ordered — and by the cross-group delivery gate,
	// delivered — before the successor group's start-number agreement,
	// hence before any snapshot cut in the new group.)
	go func() {
		for inv := range invites {
			// A successor group whose member list includes peers we had
			// excluded is a post-heal merge: attach in reconcile mode so
			// our diverged store takes part in the digest-diff exchange.
			mu.Lock()
			rejoining := false
			var low newtop.ProcessID = self
			for _, m := range inv.members {
				if m < low {
					low = m
				}
				for _, rm := range removed {
					if rm[m] {
						rejoining = true
					}
				}
			}
			mu.Unlock()
			if rejoining {
				_, g := current()
				if err := reconcile(inv.g, inv.members, mySide(g), uint64(low)); err != nil {
					log.Printf("reconcile g%d: %v", inv.g, err)
				} else {
					log.Printf("reconciling into merged group g%d = %v", inv.g, inv.members)
				}
				continue
			}
			if err := replicate(inv.g); err != nil {
				log.Printf("replicate g%d: %v", inv.g, err)
			} else {
				log.Printf("replicating successor group g%d (service cut over)", inv.g)
			}
		}
	}()
	// Drain the shared delivery channel: groups without a replica (e.g. a
	// raw Submit from a peer) must not accumulate unread.
	go func() {
		for d := range proc.Deliveries() {
			log.Printf("unreplicated delivery %v/%v: %q", d.Group, d.Sender, d.Payload)
		}
	}()

	go func() {
		for ev := range proc.Events() {
			switch ev.Kind {
			case newtop.EventViewChanged:
				log.Printf("view change %v: %v (removed %v)", ev.Group, ev.View, ev.Removed)
				mu.Lock()
				rm := removed[ev.Group]
				if rm == nil {
					rm = map[newtop.ProcessID]bool{}
					removed[ev.Group] = rm
				}
				for _, p := range ev.Removed {
					rm[p] = true
				}
				mu.Unlock()
			case newtop.EventSuspected:
				log.Printf("suspecting P%d in %v", ev.Suspect, ev.Group)
			case newtop.EventGroupReady:
				log.Printf("group %v ready", ev.Group)
			case newtop.EventFormationFailed:
				log.Printf("formation of %v failed: %s", ev.Group, ev.Reason)
				// A failed merged-group formation (successor of a group
				// we were reconciling) must not strand the heal: retry
				// after another settle window.
				mu.Lock()
				if base := ev.Group - 1; reconciling[base] {
					delete(reconciling, base)
					if healTimer[base] == nil {
						healTimer[base] = time.AfterFunc(*settle, func() { initiateReconcile(base) })
					}
				}
				mu.Unlock()
			case newtop.EventStateTransferred:
				log.Printf("state transferred into %v (snapshot from P%d)", ev.Group, ev.Peer)
			case newtop.EventHealDetected:
				log.Printf("partition healed: P%d reachable again (was excluded from %v)", ev.Peer, ev.Group)
				mu.Lock()
				h := healed[ev.Group]
				if h == nil {
					h = map[newtop.ProcessID]bool{}
					healed[ev.Group] = h
				}
				h[ev.Peer] = true
				// Debounced initiation: (re)arm the timer on every heal
				// signal, so the merged group forms -settle after the
				// LAST peer is rediscovered — slow probes from the far
				// side still make it into the member list — and the
				// cut-over quiesce gets its drain window.
				g := ev.Group
				if g == serving && !reconciling[g] {
					if tmr := healTimer[g]; tmr != nil {
						tmr.Reset(*settle)
					} else {
						healTimer[g] = time.AfterFunc(*settle, func() { initiateReconcile(g) })
					}
				}
				mu.Unlock()
			case newtop.EventReconciled:
				rep, g := current()
				if rep != nil && g == ev.Group {
					log.Printf("reconciled into g%d: applied=%d keys=%d digest=%016x",
						g, rep.AppliedSeq(), kv.Len(), rep.Digest())
				} else {
					log.Printf("reconciled into g%d", ev.Group)
				}
			}
		}
	}()

	var ticker <-chan time.Time
	if *interval > 0 {
		t := time.NewTicker(*interval)
		defer t.Stop()
		ticker = t.C
	}
	n := 0
	for {
		select {
		case <-stop:
			rep, g := current()
			if rep != nil {
				log.Printf("shutting down: g%d applied=%d keys=%d digest=%016x",
					g, rep.AppliedSeq(), kv.Len(), rep.Digest())
			}
			return nil
		case <-ticker:
			rep, g := current()
			if rep == nil || !rep.CaughtUp() {
				continue
			}
			n++
			cmd := fmt.Sprintf("put p%d:%04d hello-%d", *id, n, n)
			if err := rep.Propose([]byte(cmd)); err != nil {
				log.Printf("propose: %v", err)
				continue
			}
			if err := rep.Read(func(newtop.StateMachine) {}); err == nil {
				log.Printf("g%d applied=%d keys=%d digest=%016x",
					g, rep.AppliedSeq(), kv.Len(), rep.Digest())
			}
		}
	}
}

func parsePeers(s string) (map[newtop.ProcessID]string, error) {
	out := make(map[newtop.ProcessID]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=addr)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("bad peer id %q", kv[0])
		}
		out[newtop.ProcessID(id)] = kv[1]
	}
	return out, nil
}
