// Command newtop-bench regenerates every experiment table of the Newtop
// reproduction: the paper's figures (F1–F3), worked examples (X1–X3),
// comparative claims (C1–C9) and the replicated-state-machine scenarios
// (R1–R3). See DESIGN.md §4 for the index and EXPERIMENTS.md for the
// expected shapes.
//
// Usage:
//
//	newtop-bench            # run everything
//	newtop-bench C1 C2 X3   # run selected experiments
//	newtop-bench -list      # list experiment IDs
//
// Engine micro-benchmarks (machine-readable, for the perf trajectory):
//
//	newtop-bench -perf                          # run, print, write BENCH_core.json
//	newtop-bench -perf -perf-out results.json   # choose the output path
//	newtop-bench -perf -perf-baseline old.json  # record before/after in one file
//
// CI regression gate (fails on a >2x ns/op regression of one benchmark
// versus the checked-in report):
//
//	newtop-bench -perf-gate BENCH_core.json
//
// Open-loop capacity harness (offered-load latency and SLO saturation
// against a real 3-daemon TCP fleet):
//
//	newtop-bench -capacity                          # smoke + rate ladder + saturation search, write BENCH_capacity.json
//	newtop-bench -capacity -capacity-smoke          # just the pinned smoke point (CI-sized)
//	newtop-bench -capacity-gate BENCH_capacity.json # re-measure smoke, fail on >2x p99 regression
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"newtop/internal/capacity"
	"newtop/internal/harness"
	"newtop/internal/perf"
)

type experiment struct {
	id   string
	desc string
	run  func() (*harness.Table, error)
}

func experiments() []experiment {
	return []experiment{
		{"F1", "fig.1 online server migration", harness.F1Migration},
		{"F2", "fig.2 causal chain across overlapping groups (alias of X2)", harness.X2CausalChain},
		{"F3", "fig.3 atomic delivery vs total order", harness.F3AtomicVsTotal},
		{"R1", "rsm replica catch-up into a loaded group", harness.R1ReplicaCatchUp},
		{"R2", "rsm divergence detection across a healed partition", harness.R2PartitionDivergence},
		{"R3", "rsm partition reconciliation: digest diff → merged successor group", harness.R3PartitionReconciliation},
		{"R4", "client routing & failover under daemon kill + partition/heal (wall clock)", harness.R4ClientFailover},
		{"R5", "live shard-range move under open-loop load: zero acked-write loss, epoch re-route (wall clock)", harness.R5ShardMove},
		{"R6", "kill -9 + WAL recovery under open-loop load: zero acked-write loss, reconcile fast-path rejoin (wall clock)", harness.R6CrashRecovery},
		{"X1", "§5 ex.1 joint failure, orphan erased", harness.X1JointFailure},
		{"X2", "§5 ex.2 MD5' partition exclusion", harness.X2CausalChain},
		{"X3", "§5 ex.3 concurrent subgroup views", harness.X3ConcurrentViews},
		{"C1", "§6 header overhead vs vector clocks", func() (*harness.Table, error) {
			return harness.C1HeaderOverhead([]int{3, 5, 9, 17, 33, 65, 129}), nil
		}},
		{"C2", "§4 symmetric vs asymmetric", func() (*harness.Table, error) {
			return harness.C2SymVsAsym([]int{3, 5, 9, 17})
		}},
		{"C3", "§4.3 send blocking by asymmetric share", harness.C3SendBlocking},
		{"C4", "§4.1 time-silence null overhead", harness.C4TimeSilence},
		{"C5", "§5.3 group formation cost", func() (*harness.Table, error) {
			return harness.C5Formation([]int{3, 5, 9, 17, 33})
		}},
		{"C6", "§5.2 membership agreement latency", func() (*harness.Table, error) {
			return harness.C6Membership([]int{3, 5, 9, 17})
		}},
		{"C7", "§6 vs Garcia-Molina/Spauster propagation graph", func() (*harness.Table, error) {
			return harness.C7VsPropagationGraph([]int{2, 4, 8, 16})
		}},
		{"C8", "§6 cyclic overlapping groups", func() (*harness.Table, error) {
			return harness.C8CyclicGroups([]int{3, 6, 12})
		}},
		{"C9", "§7 flow control", harness.C9FlowControl},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "newtop-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("newtop-bench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment IDs and exit")
	perfRun := fs.Bool("perf", false, "run the engine micro-benchmarks and emit machine-readable results")
	perfOut := fs.String("perf-out", "BENCH_core.json", "output path for -perf results")
	perfBase := fs.String("perf-baseline", "", "previous -perf report whose numbers are recorded as the baseline")
	perfNote := fs.String("perf-baseline-note", "", "note attached to the merged baseline entries")
	gate := fs.String("perf-gate", "", "re-measure the gated benchmarks against this baseline report and fail on regression (CI)")
	gateBench := fs.String("perf-gate-bench", "", "gate only this benchmark (ns/op) instead of the default check set")
	gateFactor := fs.Float64("perf-gate-factor", 2.0, "maximum allowed ratio versus the baseline (overrides every default check's factor when set)")
	capRun := fs.Bool("capacity", false, "run the open-loop capacity harness against the 3-daemon TCP fleet")
	capSmoke := fs.Bool("capacity-smoke", false, "with -capacity: measure only the pinned smoke point (CI-sized, seconds)")
	capOut := fs.String("capacity-out", "BENCH_capacity.json", "output path for -capacity results")
	capSeed := fs.Int64("capacity-seed", 1, "seed for the capacity fleet, op mix and arrival schedules")
	capGate := fs.String("capacity-gate", "", "re-measure the capacity smoke point against this baseline report and fail on >2x p99 regression (CI)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	gateFactorSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "perf-gate-factor" {
			gateFactorSet = true
		}
	})
	if *gate != "" {
		baseline, err := perf.LoadReport(*gate)
		if err != nil {
			return fmt.Errorf("load gate baseline: %w", err)
		}
		checks := make([]perf.GateCheck, len(perf.DefaultGateChecks))
		copy(checks, perf.DefaultGateChecks)
		if gateFactorSet {
			for i := range checks {
				checks[i].Factor = *gateFactor
			}
		}
		if *gateBench != "" {
			checks = []perf.GateCheck{{Name: *gateBench, Metric: "ns/op", Factor: *gateFactor}}
		}
		results, err := perf.GateAll(baseline, checks)
		if err != nil {
			return err
		}
		for i, ck := range checks {
			switch ck.Metric {
			case "allocs/op":
				fmt.Printf("perf gate ok: %s %d allocs/op within %.1fx of baseline\n", ck.Name, results[i].AllocsPerOp, ck.Factor)
			default:
				fmt.Printf("perf gate ok: %s %.1f ns/op within %.1fx of baseline\n", ck.Name, results[i].NsPerOp, ck.Factor)
			}
		}
		return nil
	}
	if *perfRun {
		return runPerf(*perfOut, *perfBase, *perfNote)
	}
	if *capGate != "" {
		return runCapacityGate(*capGate, *capSeed)
	}
	if *capRun {
		return runCapacity(*capOut, *capSeed, *capSmoke)
	}
	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.id, e.desc)
		}
		return nil
	}
	want := fs.Args()
	selected := exps
	if len(want) > 0 {
		byID := make(map[string]experiment, len(exps))
		for _, e := range exps {
			byID[strings.ToUpper(e.id)] = e
		}
		selected = selected[:0]
		sort.Strings(want)
		for _, id := range want {
			e, ok := byID[strings.ToUpper(id)]
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}
	fmt.Printf("Newtop reproduction — experiment tables (%d experiments)\n", len(selected))
	fmt.Printf("All runs are deterministic virtual-time simulations; wall time shown per table.\n\n")
	for _, e := range selected {
		start := time.Now()
		tab, err := e.run()
		if err != nil {
			if tab != nil {
				tab.Fprint(os.Stdout)
			}
			return fmt.Errorf("%s: %w", e.id, err)
		}
		tab.Notes = append(tab.Notes, fmt.Sprintf("computed in %v wall time", time.Since(start).Round(time.Millisecond)))
		tab.Fprint(os.Stdout)
	}
	return nil
}

// runPerf executes the engine micro-benchmark suite via testing.Benchmark
// (the identical bodies back `go test -bench Engine ./internal/core`) and
// writes BENCH_core.json: name, ns/op, B/op, allocs/op per benchmark,
// optionally carrying a prior report's numbers as the baseline so one file
// records before/after.
func runPerf(out, baselinePath, note string) error {
	// Validate the baseline before spending a minute benchmarking.
	var prev *perf.Report
	if baselinePath != "" {
		var err error
		if prev, err = perf.LoadReport(baselinePath); err != nil {
			return fmt.Errorf("load baseline: %w", err)
		}
	}
	fmt.Println("Newtop engine micro-benchmarks (testing.Benchmark, default benchtime)")
	results := perf.RunAll(os.Stdout)
	if prev != nil {
		perf.MergeBaseline(results, prev, note)
	}
	report := perf.NewReport(results)
	if err := perf.WriteReport(out, report); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(results))
	return nil
}

// runCapacity boots each suite fleet (single-group baseline, ring
// dissemination, sharded) and measures it open-loop: always the pinned
// smoke point, plus (unless smokeOnly) the offered-rate ladder and the
// SLO saturation search. Results land in BENCH_capacity.json.
func runCapacity(out string, seed int64, smokeOnly bool) error {
	mode := "smoke + ladder + saturation search"
	if smokeOnly {
		mode = "smoke only"
	}
	fmt.Printf("Newtop open-loop capacity harness (TCP fleets, %s)\n", mode)
	results, err := capacity.RunSuite(capacity.SuiteConfig{
		SmokeOnly: smokeOnly,
		Progress:  os.Stdout,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	report := capacity.NewReport(results)
	if err := capacity.WriteReport(out, report); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d configs)\n", out, len(results))
	return nil
}

// runCapacityGate re-measures the pinned smoke point of every baseline
// config on a fresh fleet and fails on a p99 regression beyond 2x the
// baseline (plus a small absolute slack — see capacity.Gate), on any
// smoke-rate errors or stranded ops, or on unexplained drops.
func runCapacityGate(baselinePath string, seed int64) error {
	baseline, err := capacity.LoadReport(baselinePath)
	if err != nil {
		return fmt.Errorf("load capacity baseline: %w", err)
	}
	results, err := capacity.RunGate(baseline, capacity.SuiteConfig{Seed: seed})
	for _, r := range results {
		fmt.Printf("capacity gate: %s smoke @ %.0f ops/s p99=%v (completed %d/%d)\n",
			r.Name, capacity.SmokeRate, r.Fresh.P99, r.Fresh.Completed, r.Fresh.Scheduled)
	}
	if err != nil {
		return err
	}
	fmt.Printf("capacity gate ok: %d configs within budget of baseline\n", len(results))
	return nil
}
