// Package newtop is a from-scratch Go implementation of Newtop, the
// fault-tolerant group communication protocol suite of Ezhilchelvan,
// Macêdo and Shrivastava (ICDCS 1995).
//
// Newtop provides causality-preserving total-order multicast to process
// groups in an asynchronous network. Processes may belong to many groups
// at once — total order extends across overlapping groups — and each group
// independently chooses an ordering discipline:
//
//   - Symmetric: fully decentralised ordering by Lamport numbers and
//     receive vectors (§4.1 of the paper); sends never block.
//   - Asymmetric: a deterministic per-view sequencer orders messages
//     (§4.2); cheap for large groups with few senders.
//   - Atomic: per-sender FIFO with view-synchronous membership but no
//     inter-sender ordering (the logical-clock gate is bypassed, fig. 3).
//
// The membership service tolerates crashes and network partitions without
// requiring a primary partition: a partitioned group stabilises into
// disjoint subgroups, each internally consistent, and the application
// decides their fate. New groups form dynamically with the §5.3 two-phase
// protocol; "joining" a group is subsumed by forming a new one.
//
// # Quick start
//
//	net := newtop.NewNetwork()                  // in-memory transport
//	a, _ := newtop.Start(newtop.Config{Self: 1, Network: net})
//	b, _ := newtop.Start(newtop.Config{Self: 2, Network: net})
//	members := []newtop.ProcessID{1, 2}
//	a.BootstrapGroup(1, newtop.Symmetric, members)
//	b.BootstrapGroup(1, newtop.Symmetric, members)
//	a.Submit(1, []byte("hello"))
//	d := <-b.Deliveries()                       // total-order delivery
//
// For real deployments set ListenAddr and Peers instead of Network: the
// same protocol runs over TCP connections between machines.
//
// # Replicated state machines
//
// Total order makes replication a one-liner: Replicate attaches a
// deterministic StateMachine to a group and applies every member's
// commands in the agreed order, so replicas stay byte-identical.
//
//	kv := newtop.NewKV()
//	rep, _ := newtop.Replicate(a, 1, kv)        // before BootstrapGroup
//	a.BootstrapGroup(1, newtop.Symmetric, members)
//	rep.Propose([]byte("put user alice"))
//	rep.Read(func(newtop.StateMachine) { v, _ := kv.Get("user"); _ = v })
//
// To add or move a replica, form a new group overlapping the old one (the
// paper's fig. 1 migration) and Replicate it everywhere — the newcomer
// with the CatchUp option. State transfer (snapshot chunks plus a replay
// tail) travels inside the same total order as ongoing writes, so the
// newcomer converges to the exact replicated state with no write pause.
// Replica.Digest fingerprints state for divergence detection, e.g. across
// the two sides of a healed partition.
package newtop

import (
	"errors"
	"fmt"
	"time"

	"newtop/internal/core"
	"newtop/internal/node"
	"newtop/internal/obs"
	"newtop/internal/rsm"
	"newtop/internal/transport"
	"newtop/internal/transport/tcpnet"
	"newtop/internal/types"
)

// Re-exported identifier and view types.
type (
	// ProcessID identifies a process; the total order over IDs drives
	// sequencer election and delivery tie-breaking.
	ProcessID = types.ProcessID
	// GroupID identifies a process group.
	GroupID = types.GroupID
	// View is a group membership view: the set of processes a member
	// currently believes functioning and connected.
	View = types.View
	// Delivery is one application message delivered in the agreed order.
	Delivery = node.Delivery
	// Event is a membership notification (view change, group ready,
	// formation failure, suspicion).
	Event = node.Event
	// Stats are per-process protocol counters.
	Stats = core.Stats
	// OrderMode selects a group's delivery discipline.
	OrderMode = core.OrderMode
)

// Ordering disciplines (see package documentation).
const (
	Atomic     = core.Atomic
	Symmetric  = core.Symmetric
	Asymmetric = core.Asymmetric
)

// Membership event kinds.
const (
	EventViewChanged      = node.EventViewChanged
	EventGroupReady       = node.EventGroupReady
	EventFormationFailed  = node.EventFormationFailed
	EventSuspected        = node.EventSuspected
	EventStateTransferred = node.EventStateTransferred
	EventHealDetected     = node.EventHealDetected
	EventReconciled       = node.EventReconciled
)

// Re-exported sentinel errors.
var (
	ErrUnknownGroup  = core.ErrUnknownGroup
	ErrGroupExists   = core.ErrGroupExists
	ErrLeftGroup     = core.ErrLeftGroup
	ErrDuplicateView = core.ErrDuplicateView
	ErrBadMembers    = core.ErrBadMembers
	ErrClosed        = node.ErrClosed
)

// Config configures one Newtop process.
type Config struct {
	// Self is this process's unique non-zero identifier.
	Self ProcessID

	// Network attaches the process to an in-memory network (tests,
	// examples, single-binary deployments). Exactly one of Network or
	// ListenAddr must be set.
	Network *Network

	// ListenAddr is the TCP address to listen on (e.g. "10.0.0.1:7000").
	ListenAddr string
	// Peers maps peer process IDs to their TCP addresses.
	Peers map[ProcessID]string

	// TCP transport tuning (ignored when Network is set).
	//
	// DialTimeout bounds establishing a connection to a peer (default 2s).
	DialTimeout time.Duration
	// DialBackoff is how long a peer's sender waits after a failed dial
	// before attempting another (default 1s, doubling per consecutive
	// failure up to 8×, reset on success). While backing off, messages
	// to that peer are dropped — the protocol's lossy-link model —
	// instead of each burst paying a blocking dial of up to DialTimeout.
	DialBackoff time.Duration
	// WriteTimeout bounds one framed batch write (default 5s); a
	// timed-out write drops the connection, modelling a cut link.
	WriteTimeout time.Duration
	// FlushWindow is how long a peer's sender waits after the first
	// queued message for the rest of the burst, so the burst ships as
	// one framed write (default 50µs; negative disables the wait —
	// queue backlog still coalesces). It trades that much first-message
	// latency for one syscall per burst.
	FlushWindow time.Duration

	// Omega is the time-silence interval ω (§4.1): how long a process
	// stays quiet in a group before multicasting a null message. It is
	// the main latency/overhead dial. Zero selects 50ms.
	Omega time.Duration
	// SuspicionTimeout is Ω (§5.2): silence beyond this raises a failure
	// suspicion. Zero selects 5ω. Must exceed Omega.
	SuspicionTimeout time.Duration
	// FormationTimeout bounds the group-formation vote phase (§5.3).
	// Zero selects 20ω.
	FormationTimeout time.Duration

	// HealProbeInterval is how often this process probes members that
	// were excluded from a view, to detect a healed partition
	// (EventHealDetected). Zero selects 2s; negative disables probing.
	HealProbeInterval time.Duration

	// SignatureViews enables the §6 view-signature variant under which
	// concurrent views never intersect.
	SignatureViews bool

	// FlowControlWindow bounds this process's unstable-message backlog
	// per group; extra submits queue until stability advances. Zero
	// disables flow control.
	FlowControlWindow int

	// RingThreshold enables ring dissemination for large payloads: an
	// application multicast of at least this many payload bytes travels
	// the view-defined ring — the originator sends the payload once, to
	// its successor, and each member forwards it once — while the small
	// ordering metadata still goes point-to-point. This flattens the
	// originator's NIC load from (n−1)× payload to 1× payload plus n−1
	// headers, at the cost of up to one extra ring circumference of
	// delivery latency for those messages. Zero disables the ring
	// (every multicast ships the payload to every member directly).
	// Groups of fewer than three members always send directly.
	RingThreshold int
	// RingPullAfter is how long a member waits on a payload whose
	// ordering header has arrived before re-requesting it from the
	// originator (lost ring frame). Zero selects 250ms.
	RingPullAfter time.Duration

	// AcceptInvite, when set, decides group-formation invitations
	// (§5.3 step 2): group, formation coordinator, intended membership.
	// Nil accepts everything.
	AcceptInvite func(GroupID, ProcessID, []ProcessID) bool

	// TraceSampleEvery enables delivery-stream tracing: one in every N
	// data messages (by Lamport number) is stamped through its lifecycle
	// stages — submit, send, receive, ordered, stable, delivered, applied.
	// Zero disables tracing. Sampling by message number means every
	// process samples the same messages, so traces line up across the
	// group.
	TraceSampleEvery uint64
	// TraceKeep bounds how many completed traces are retained (FIFO
	// eviction; default 1024). Only meaningful with TraceSampleEvery > 0.
	TraceKeep int
}

// MetricsSnapshot is a point-in-time copy of a process's metric series:
// counters, gauges, and histogram summaries keyed by metric name (labels
// baked into the name, Prometheus-style).
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot summarises one latency/size distribution.
type HistogramSnapshot = obs.HistSnapshot

// Trace is one sampled message's stamped lifecycle (see
// Config.TraceSampleEvery).
type Trace = obs.Trace

// Process is a running Newtop process: the protocol engine, its timers and
// its transport, driven by a background event loop.
type Process struct {
	n    *node.Node
	tcp  *tcpnet.Endpoint
	self ProcessID
	reg  *obs.Registry
	trc  *obs.Tracer
}

// Start launches a process with the given configuration.
func Start(cfg Config) (*Process, error) {
	if cfg.Self == types.NilProcess {
		return nil, errors.New("newtop: Config.Self must be non-zero")
	}
	if (cfg.Network == nil) == (cfg.ListenAddr == "") {
		return nil, errors.New("newtop: set exactly one of Config.Network or Config.ListenAddr")
	}
	// One registry per process: every layer — engine, ring, transport,
	// node — resolves its handles against it, and Metrics() snapshots it.
	reg := obs.NewRegistry()
	var trc *obs.Tracer
	if cfg.TraceSampleEvery > 0 {
		trc = obs.NewTracer(cfg.TraceSampleEvery, cfg.TraceKeep, reg)
	}
	var (
		ep  transport.Endpoint
		tcp *tcpnet.Endpoint
		err error
	)
	if cfg.Network != nil {
		ep, err = cfg.Network.inner.Attach(cfg.Self)
		if err != nil {
			return nil, fmt.Errorf("newtop: %w", err)
		}
	} else {
		tcp, err = tcpnet.New(tcpnet.Config{
			Self:         cfg.Self,
			ListenAddr:   cfg.ListenAddr,
			Peers:        cfg.Peers,
			DialTimeout:  cfg.DialTimeout,
			DialBackoff:  cfg.DialBackoff,
			WriteTimeout: cfg.WriteTimeout,
			FlushWindow:  cfg.FlushWindow,
			Metrics:      reg,
		})
		if err != nil {
			return nil, fmt.Errorf("newtop: %w", err)
		}
		ep = tcp
	}
	n := node.New(core.Config{
		Self:              cfg.Self,
		Omega:             cfg.Omega,
		SuspicionTimeout:  cfg.SuspicionTimeout,
		FormationTimeout:  cfg.FormationTimeout,
		SignatureViews:    cfg.SignatureViews,
		FlowControlWindow: cfg.FlowControlWindow,
		AcceptInvite:      cfg.AcceptInvite,
		Metrics:           reg,
		Tracer:            trc,
		// The node runtime's transports marshal frames inside Send and
		// its effect loop never retains engine messages, so the engine
		// can recycle its outbound message structs.
		MessageArena: true,
	}, ep, node.Options{
		HealProbeEvery: cfg.HealProbeInterval,
		RingThreshold:  cfg.RingThreshold,
		RingPullAfter:  cfg.RingPullAfter,
		Metrics:        reg,
	})
	return &Process{n: n, tcp: tcp, self: cfg.Self, reg: reg, trc: trc}, nil
}

// Self returns the process identifier.
func (p *Process) Self() ProcessID { return p.self }

// Addr returns the actual TCP listen address ("" for in-memory processes);
// useful when ListenAddr used port 0.
func (p *Process) Addr() string {
	if p.tcp == nil {
		return ""
	}
	return p.tcp.Addr()
}

// BootstrapGroup installs group g with a statically agreed initial
// membership (every member must bootstrap the identical group). For
// dynamic formation use CreateGroup.
func (p *Process) BootstrapGroup(g GroupID, mode OrderMode, members []ProcessID) error {
	return p.n.BootstrapGroup(g, mode, members)
}

// CreateGroup initiates dynamic formation of group g with this process as
// coordinator (§5.3). Watch Events for EventGroupReady or
// EventFormationFailed.
func (p *Process) CreateGroup(g GroupID, mode OrderMode, members []ProcessID) error {
	return p.n.CreateGroup(g, mode, members)
}

// LeaveGroup departs group g permanently. A departed group cannot be
// rejoined; form a new group instead (§3).
func (p *Process) LeaveGroup(g GroupID) error { return p.n.LeaveGroup(g) }

// Submit multicasts payload to group g under the group's ordering mode.
// The call is asynchronous: ordering happens at delivery. Sends may be
// queued internally by the paper's blocking rules or by flow control.
func (p *Process) Submit(g GroupID, payload []byte) error { return p.n.Submit(g, payload) }

// Deliveries returns the channel of ordered application deliveries (all
// groups; one totally ordered stream per process).
func (p *Process) Deliveries() <-chan Delivery { return p.n.Deliveries() }

// Events returns the channel of membership notifications.
func (p *Process) Events() <-chan Event { return p.n.Events() }

// View returns the current membership view of g.
func (p *Process) View(g GroupID) (View, error) { return p.n.View(g) }

// GroupReady reports whether g is open for sends.
func (p *Process) GroupReady(g GroupID) bool { return p.n.GroupReady(g) }

// Stats snapshots protocol counters.
func (p *Process) Stats() Stats { return p.n.Stats() }

// GroupSends reports how many point-to-point transmissions this process
// has issued in group g over its lifetime — an observability hook for
// verifying that a superseded or departed group has gone quiet (the count
// freezes once the process leaves g).
func (p *Process) GroupSends(g GroupID) uint64 { return p.n.GroupSends(g) }

// Metrics snapshots every metric series the process's layers have
// registered: engine drop/stall counters and depth gauges, ring and
// transport activity, node probe traffic, replica latencies. Keys are
// Prometheus-style metric names with labels baked in.
func (p *Process) Metrics() MetricsSnapshot { return p.reg.Snapshot() }

// MetricsRegistry exposes the process's live metric registry, e.g. for an
// HTTP scrape endpoint (see Registry.WritePrometheus) or for sharing one
// registry between a process and its clients.
func (p *Process) MetricsRegistry() *obs.Registry { return p.reg }

// Traces returns the retained sampled delivery traces (empty unless
// Config.TraceSampleEvery was set).
func (p *Process) Traces() []Trace {
	if p.trc == nil {
		return nil
	}
	return p.trc.Traces()
}

// Close stops the process and releases its transport.
func (p *Process) Close() error { return p.n.Close() }

// ---------------------------------------------------------------------------
// Replicated state machines
// ---------------------------------------------------------------------------

// StateMachine is deterministic application state replicated over a
// group's total order: Apply executes one command, Snapshot/Restore move
// whole states for replica catch-up. See internal/rsm for the exact
// determinism contract.
type StateMachine = rsm.StateMachine

// Replica is a process's handle on a replicated state machine: Propose
// multicasts commands, Read gives read-your-writes access, Barrier is a
// linearizable fence, and Digest fingerprints the state for cross-replica
// comparison (e.g. divergence detection after a partition).
type Replica = rsm.Replica

// ReplicaOption configures Replicate.
type ReplicaOption = rsm.Option

// ReplicaStats counts a replica's replication activity.
type ReplicaStats = rsm.Stats

// CatchUp starts the replica empty: it requests a state transfer from the
// group (snapshot plus replay tail, all inside the total order) and only
// then starts serving. Use it for the newcomer when migrating or scaling a
// replicated service by forming a new overlapping group (fig. 1); watch
// for EventStateTransferred or Replica.Ready.
func CatchUp() ReplicaOption { return rsm.CatchUp() }

// WithSnapshotChunkSize overrides the snapshot chunk size used when this
// replica streams state to a newcomer (default 64 KiB).
func WithSnapshotChunkSize(n int) ReplicaOption { return rsm.WithChunkSize(n) }

// Replicate attaches sm to group g and starts the replica's apply loop:
// g's deliveries are diverted to the replica and fed to sm in the agreed
// total order, so every member's machine stays identical. Call Replicate
// before the group starts delivering — i.e. before BootstrapGroup, or
// right after CreateGroup while formation is still in flight.
//
// Newtop processes never rejoin a group (§3); to add a replica, form a
// new group overlapping the old one and Replicate it on every member —
// incumbents as-is (their machines carry the state over), the newcomer
// with CatchUp. An up-to-date incumbent, elected by the total order
// itself, streams a snapshot and the newcomer replays the tail, all
// ordered against ongoing writes — no write pause, no fuzzy cutover.
func Replicate(p *Process, g GroupID, sm StateMachine, opts ...ReplicaOption) (*Replica, error) {
	return rsm.Replicate(p.n, g, sm, opts...)
}

// KV is the reference StateMachine: a replicated string map driven by
// "put <key> <value>" / "del <key>" commands.
type KV = rsm.KV

// NewKV creates an empty replicated map.
func NewKV() *KV { return rsm.NewKV() }

// ---------------------------------------------------------------------------
// Partition reconciliation
// ---------------------------------------------------------------------------

// MergePolicy decides, key by key, which diverged value survives a
// partition reconciliation. Built-ins: LastWriterWins, PreferSide. The
// policy must be a pure function — every member runs it on identical
// inputs and must reach the identical outcome.
type MergePolicy = rsm.MergePolicy

// MergeCandidate is one diverged side's opinion about a key, as handed to
// a MergePolicy.
type MergeCandidate = rsm.MergeCandidate

// Differ is a StateMachine that additionally supports digest-diff
// reconciliation (per-bucket digests, diff export, merge install). KV
// implements it; custom machines must too before they can Reconcile.
type Differ = rsm.Differ

// LastWriterWins is the default merge policy: for each conflicting key
// the operation — write or delete — with the highest apply index wins.
// Deletions compete through bounded tombstones the KV keeps between
// reconciliations, so a partition-era delete beats an older surviving
// write instead of being resurrected.
func LastWriterWins() MergePolicy { return rsm.LastWriterWins() }

// PreferSide resolves every conflict in favour of the partition tagged
// with side (see WithPartitionSide), falling back to LastWriterWins if no
// surviving member carries that tag.
func PreferSide(side uint64) MergePolicy { return rsm.PreferSide(side) }

// WithPartitionSide tags this replica's pre-heal subgroup for
// reconciliation — conventionally the subgroup's lowest process ID, i.e.
// the lowest member of the old group's final view on this side. The tag
// feeds side-aware policies such as PreferSide. Default: the process's
// own ID.
func WithPartitionSide(side uint64) ReplicaOption { return rsm.WithSide(side) }

// WithMergeBuckets overrides the reconciliation diff-digest bucket count
// (default 64). More buckets mean a finer diff — fewer unrelated keys
// exchanged — at the cost of a larger summary. All members must agree.
func WithMergeBuckets(n int) ReplicaOption { return rsm.WithBuckets(n) }

// WithSnapshotStreamWindow overrides how many snapshot chunks this
// replica keeps in flight when streaming state to a newcomer (default 4):
// each chunk observed back through the total order releases the next, so
// a slow group bounds the streamer instead of being flooded by it.
func WithSnapshotStreamWindow(n int) ReplicaOption { return rsm.WithStreamWindow(n) }

// Reconcile repairs the divergence a partition left behind. Newtop never
// remerges a partitioned group (§5): after the network heals — watch for
// EventHealDetected — the application forms ONE merged successor group g
// over the survivors of every side (the §5.3 formation that also subsumes
// joins) and calls Reconcile on every member, with the group's member
// list and a MergePolicy. Like Replicate, call it before the group's
// first delivery: before CreateGroup at the initiator, at invitation
// time elsewhere.
//
// The members exchange per-bucket state digests as ordinary totally
// ordered messages, compute which buckets diverged (the exchange is
// sublinear in state size), elect one proponent per diverged lineage by
// first-summary-in-total-order, and apply the policy to the differing
// keys — deterministically, so every member installs the identical merged
// state. Writes submitted meanwhile are buffered and replayed on top, in
// the agreed order. Ready (and EventReconciled) signal completion; if
// nothing actually diverged the exchange short-circuits after the
// summaries, making Reconcile double as a cheap convergence check.
//
// The old group's traffic must be quiesced (cut over to g) before its
// members summarise their state — the same handover discipline as a
// fig. 1 migration.
func Reconcile(p *Process, g GroupID, sm StateMachine, policy MergePolicy, members []ProcessID, opts ...ReplicaOption) (*Replica, error) {
	opts = append(opts, rsm.ReconcileWith(policy, members))
	return rsm.Replicate(p.n, g, sm, opts...)
}
