// Metrics: the observability story — one registry per process, every
// layer instrumented, and two ways to read it from outside.
//
// Run with:
//
//	go run ./examples/metrics
//
// Three daemons replicate a kvstore over an in-memory network; the first
// additionally binds an introspection HTTP endpoint (the `newtopd
// -metrics-addr` surface) and samples its delivery stream through the
// lifecycle tracer. After a burst of client writes the program reads the
// daemon's health three ways:
//
//   - client STATUS: the wire protocol now carries the key gauges —
//     deliveries, drops, delivery-queue backlog — so any client can
//     health-check its daemon without touching HTTP;
//   - an HTTP scrape of /metrics: the full registry in the Prometheus
//     text format, from which we pull the p99 propose→apply latency;
//   - Process.Metrics(): the in-process snapshot API the daemon itself
//     builds both surfaces from.
//
// The program is self-checking: it exits non-zero when a surface is
// missing a series the traffic must have produced.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"newtop"
	"newtop/client"
	"newtop/internal/daemon"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := newtop.NewNetwork(newtop.WithSeed(9))
	defer net.Close()

	ids := []newtop.ProcessID{1, 2, 3}
	daemons := make(map[newtop.ProcessID]*daemon.Daemon, len(ids))
	for _, id := range ids {
		cfg := daemon.Config{
			Self:       id,
			Network:    net,
			ClientAddr: "127.0.0.1:0",
			Omega:      15 * time.Millisecond,
			Initial:    ids,
			Logf:       func(string, ...any) {},
		}
		if id == 1 {
			cfg.MetricsAddr = "127.0.0.1:0" // the `newtopd -metrics-addr` surface
			cfg.TraceSampleEvery = 1        // stamp every data message through the stage tracer
		}
		d, err := daemon.Start(cfg)
		if err != nil {
			return err
		}
		defer func() { _ = d.Close() }()
		daemons[id] = d
	}
	fmt.Println("3 daemons up; P1 serving /metrics at", daemons[1].MetricsAddr())

	sess, err := client.Dial(daemons[1].ClientAddr())
	if err != nil {
		return err
	}
	defer func() { _ = sess.Close() }()
	for i := 1; i <= 30; i++ {
		if err := sess.Put(fmt.Sprintf("k:%03d", i), fmt.Sprintf("v-%d", i)); err != nil {
			return err
		}
	}
	fmt.Println("30 writes acknowledged through the total order")

	// Surface 1 — client STATUS: key gauges over the wire protocol.
	st, err := sess.Status()
	if err != nil {
		return err
	}
	fmt.Printf("\nSTATUS  applied=%d delivered=%d drops=%d queue_depth=%d\n",
		st.Applied, st.Delivered, st.Drops, st.QueueDepth)
	if st.Delivered == 0 {
		return fmt.Errorf("STATUS reports zero deliveries after 30 acked writes")
	}

	// Surface 2 — the Prometheus scrape, as a monitoring stack would see
	// it. Pull the p99 propose→apply latency: the end-to-end cost of one
	// replicated write through the group's total order.
	resp, err := http.Get("http://" + daemons[1].MetricsAddr() + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	p99, err := scrapeSeries(string(body), `newtop_rsm_propose_apply_ns{group="1",quantile="0.99"}`)
	if err != nil {
		return err
	}
	delivered, err := scrapeSeries(string(body), "newtop_engine_delivered_total")
	if err != nil {
		return err
	}
	fmt.Printf("\nSCRAPE  %d series; delivered=%.0f; p99 propose→apply = %s\n",
		strings.Count(string(body), "\n"), delivered,
		time.Duration(p99).Round(10*time.Microsecond))

	// Surface 3 — the in-process snapshot, for embedding processes.
	snap := daemons[1].Proc().Metrics()
	h, ok := snap.Histograms[`newtop_trace_stage_ns{stage="applied"}`]
	if !ok || h.Count == 0 {
		return fmt.Errorf("tracer produced no applied-stage samples")
	}
	fmt.Printf("\nSNAPSHOT %d counters, %d gauges, %d histograms; traced delivered→applied p50 = %s over %d samples\n",
		len(snap.Counters), len(snap.Gauges), len(snap.Histograms),
		time.Duration(h.P50).Round(time.Microsecond), h.Count)

	fmt.Println("\nall three observability surfaces agree the cluster is healthy ✓")
	return nil
}

// scrapeSeries finds one exposition line by its full series name and
// parses the value.
func scrapeSeries(body, series string) (float64, error) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return strconv.ParseFloat(strings.TrimSpace(rest), 64)
		}
	}
	return 0, fmt.Errorf("series %q missing from scrape", series)
}
