// Partition: the paper's §5 example 3 — a crash plus a network partition
// split a group into concurrent subgroups — extended with the repair half
// of the story: digest-diff reconciliation into a merged successor group.
// Newtop is *partitionable*: unlike primary-partition protocols it lets
// both sides keep operating and leaves their fate to the application; the
// reconciliation layer is how the application mends that fate afterwards.
//
// Run with:
//
//	go run ./examples/partition
//
// Five processes replicate a kvstore in one group. P5 crashes; while the
// survivors run the membership agreement, the network splits {P1,P2} from
// {P3,P4}. Each side agrees internally, installs a view containing only
// itself, and keeps serving writes — so the two sides' stores diverge,
// visible as different state digests. When the network heals, the
// survivors form a merged successor group (§5.3), exchange per-bucket
// digest summaries, ship only the differing buckets, and converge under a
// last-writer-wins merge — every replica ends digest-identical, with both
// sides' writes preserved.
package main

import (
	"fmt"
	"log"
	"time"

	"newtop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := newtop.NewNetwork(newtop.WithSeed(3))
	defer net.Close()

	members := []newtop.ProcessID{1, 2, 3, 4, 5}
	procs := make(map[newtop.ProcessID]*newtop.Process)
	kvs := make(map[newtop.ProcessID]*newtop.KV)
	reps := make(map[newtop.ProcessID]*newtop.Replica)
	for _, id := range members {
		p, err := newtop.Start(newtop.Config{
			Self: id, Network: net,
			Omega:             15 * time.Millisecond,
			HealProbeInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer func() { _ = p.Close() }()
		procs[id] = p
		kvs[id] = newtop.NewKV()
		rep, err := newtop.Replicate(p, 1, kvs[id])
		if err != nil {
			return err
		}
		reps[id] = rep
		go func(p *newtop.Process) { // drain events; deliveries go to the replica
			for range p.Events() {
			}
		}(p)
	}
	for _, id := range members {
		if err := procs[id].BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			return err
		}
	}
	fmt.Println("g1 = {P1..P5} replicating a kvstore; P5 crashes, then the network splits {P1,P2} | {P3,P4}")
	for i := 1; i <= 6; i++ {
		if err := reps[newtop.ProcessID(i%5+1)].Propose([]byte(fmt.Sprintf("put base:%d v%d", i, i))); err != nil {
			return err
		}
	}
	for _, id := range members {
		if err := reps[id].Barrier(); err != nil {
			return err
		}
	}

	// Inject the failures.
	net.Crash(5)
	time.Sleep(40 * time.Millisecond) // agreement on P5 begins
	net.Partition([]newtop.ProcessID{1, 2}, []newtop.ProcessID{3, 4})

	// Both sides keep writing through the turmoil — including to the
	// same key, the conflict the merge policy will have to resolve.
	survivors := []newtop.ProcessID{1, 2, 3, 4}
	if err := reps[1].Propose([]byte("put owner side-A")); err != nil {
		return err
	}
	if err := reps[1].Propose([]byte("put a:only from-A")); err != nil {
		return err
	}
	if err := reps[3].Propose([]byte("put b:only from-B")); err != nil {
		return err
	}
	if err := reps[3].Propose([]byte("put owner side-B")); err != nil {
		return err
	}

	// Wait until both sides stabilise into views of exactly themselves.
	wantViews := map[newtop.ProcessID][]newtop.ProcessID{
		1: {1, 2}, 2: {1, 2}, 3: {3, 4}, 4: {3, 4},
	}
	deadline := time.After(60 * time.Second)
	for id, want := range wantViews {
		for {
			v, err := procs[id].View(1)
			if err == nil && v.Size() == len(want) {
				ok := true
				for _, m := range want {
					if !v.Contains(m) {
						ok = false
					}
				}
				if ok {
					fmt.Printf("P%d stabilised in view %v\n", id, v)
					break
				}
			}
			select {
			case <-deadline:
				return fmt.Errorf("P%d never stabilised (last view %v)", id, v)
			case <-time.After(20 * time.Millisecond):
			}
		}
	}
	va, _ := procs[1].View(1)
	vb, _ := procs[3].View(1)
	for _, m := range va.Members {
		if vb.Contains(m) {
			return fmt.Errorf("stabilised views intersect: %v vs %v", va, vb)
		}
	}
	// Quiesce g1 on both sides — the cut-over discipline before a merge.
	for _, id := range survivors {
		if err := reps[id].Barrier(); err != nil {
			return err
		}
	}
	dA, dB := reps[1].Digest(), reps[3].Digest()
	fmt.Printf("\nconcurrent views are disjoint: %v vs %v ✓\n", va, vb)
	fmt.Printf("states diverged: side A digest %016x, side B digest %016x\n", dA, dB)
	if dA == dB {
		return fmt.Errorf("sides did not diverge")
	}

	// Heal, then repair: a merged successor group g2 over the survivors,
	// reconciled by digest diff under last-writer-wins.
	net.Heal()
	fmt.Println("\nnetwork healed; forming merged successor group g2 = {P1..P4} and reconciling (LWW)")
	recs := make(map[newtop.ProcessID]*newtop.Replica)
	for _, id := range survivors {
		side := uint64(1)
		if id >= 3 {
			side = 3
		}
		rec, err := newtop.Reconcile(procs[id], 2, kvs[id], newtop.LastWriterWins(), survivors,
			newtop.WithPartitionSide(side))
		if err != nil {
			return err
		}
		recs[id] = rec
	}
	if err := procs[1].CreateGroup(2, newtop.Symmetric, survivors); err != nil {
		return err
	}
	for _, id := range survivors {
		select {
		case <-recs[id].Ready():
		case <-time.After(60 * time.Second):
			return fmt.Errorf("P%d reconciliation stalled: %+v", id, recs[id].Stats())
		}
	}

	d0 := recs[1].Digest()
	for _, id := range survivors[1:] {
		if d := recs[id].Digest(); d != d0 {
			return fmt.Errorf("post-merge digest of P%d = %016x, want %016x", id, d, d0)
		}
	}
	st := recs[1].Stats()
	owner, _ := kvs[1].Get("owner")
	fmt.Printf("reconciled: digest %016x at all 4 survivors (%d keys merged, %d entries frames)\n",
		d0, st.MergedPuts+st.MergedDels, st.EntriesIn)
	fmt.Printf("  conflict key 'owner' resolved to %q; a:only=%v b:only=%v\n",
		owner, kvsHas(kvs[1], "a:only"), kvsHas(kvs[1], "b:only"))
	if !kvsHas(kvs[1], "a:only") || !kvsHas(kvs[1], "b:only") {
		return fmt.Errorf("a partition-era write was lost in the merge")
	}
	fmt.Println("\nboth partitions stayed live, and their histories were mechanically reconciled ✓")
	return nil
}

func kvsHas(kv *newtop.KV, k string) bool {
	_, ok := kv.Get(k)
	return ok
}
