// Partition: the paper's §5 example 3 — a crash plus a network partition
// split a group into concurrent subgroups whose views stabilise into
// non-intersecting memberships. Newtop is *partitionable*: unlike
// primary-partition protocols it lets both sides keep operating and leaves
// their fate to the application.
//
// Run with:
//
//	go run ./examples/partition
//
// Five processes form one group. P5 crashes; while the survivors run the
// membership agreement, the network splits {P1,P2} from {P3,P4}. Each side
// agrees internally, installs a view containing only itself, and keeps
// delivering its own traffic in total order.
package main

import (
	"fmt"
	"log"
	"time"

	"newtop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := newtop.NewNetwork(newtop.WithSeed(3))
	defer net.Close()

	members := []newtop.ProcessID{1, 2, 3, 4, 5}
	procs := make(map[newtop.ProcessID]*newtop.Process)
	for _, id := range members {
		p, err := newtop.Start(newtop.Config{Self: id, Network: net, Omega: 15 * time.Millisecond})
		if err != nil {
			return err
		}
		defer func() { _ = p.Close() }()
		procs[id] = p
		if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			return err
		}
	}
	fmt.Println("group g1 = {P1..P5} running; P5 crashes, then the network splits {P1,P2} | {P3,P4}")

	// Drain deliveries in the background; record per-process sequences.
	seqs := make(map[newtop.ProcessID]chan string)
	for _, id := range members {
		ch := make(chan string, 128)
		seqs[id] = ch
		go func(p *newtop.Process, ch chan string) {
			for d := range p.Deliveries() {
				ch <- string(d.Payload)
			}
			close(ch)
		}(procs[id], ch)
	}

	// Warm up, then inject the failures.
	time.Sleep(100 * time.Millisecond)
	net.Crash(5)
	time.Sleep(40 * time.Millisecond) // agreement on P5 begins
	net.Partition([]newtop.ProcessID{1, 2}, []newtop.ProcessID{3, 4})

	// Both sides keep multicasting through the turmoil.
	for i := 1; i <= 3; i++ {
		if err := procs[1].Submit(1, []byte(fmt.Sprintf("side-A msg %d", i))); err != nil {
			return err
		}
		if err := procs[3].Submit(1, []byte(fmt.Sprintf("side-B msg %d", i))); err != nil {
			return err
		}
		time.Sleep(30 * time.Millisecond)
	}

	// Wait until both sides stabilise into views of exactly themselves.
	wantViews := map[newtop.ProcessID][]newtop.ProcessID{
		1: {1, 2}, 2: {1, 2}, 3: {3, 4}, 4: {3, 4},
	}
	deadline := time.After(60 * time.Second)
	for id, want := range wantViews {
		for {
			v, err := procs[id].View(1)
			if err == nil && v.Size() == len(want) {
				ok := true
				for _, m := range want {
					if !v.Contains(m) {
						ok = false
					}
				}
				if ok {
					fmt.Printf("P%d stabilised in view %v\n", id, v)
					break
				}
			}
			select {
			case <-deadline:
				return fmt.Errorf("P%d never stabilised (last view %v)", id, v)
			case <-time.After(20 * time.Millisecond):
			}
		}
	}

	// Views of the two sides do not intersect; each side delivered its own
	// traffic in an internally consistent order.
	va, _ := procs[1].View(1)
	vb, _ := procs[3].View(1)
	for _, m := range va.Members {
		if vb.Contains(m) {
			return fmt.Errorf("stabilised views intersect: %v vs %v", va, vb)
		}
	}
	fmt.Printf("\nconcurrent views are disjoint: %v vs %v ✓\n", va, vb)

	time.Sleep(200 * time.Millisecond)
	drain := func(id newtop.ProcessID) []string {
		var out []string
		for {
			select {
			case s := <-seqs[id]:
				out = append(out, s)
			default:
				return out
			}
		}
	}
	a1, a2 := drain(1), drain(2)
	b3, b4 := drain(3), drain(4)
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		return fmt.Errorf("side A diverged:\n  P1: %v\n  P2: %v", a1, a2)
	}
	if fmt.Sprint(b3) != fmt.Sprint(b4) {
		return fmt.Errorf("side B diverged:\n  P3: %v\n  P4: %v", b3, b4)
	}
	fmt.Printf("side A delivered consistently: %v\n", a1)
	fmt.Printf("side B delivered consistently: %v\n", b3)
	fmt.Println("\nboth partitions remain live and internally consistent — no primary partition required ✓")
	return nil
}
