// kvstore: a sharded, replicated key-value store on the newtop.Replicate
// API — the classic state-machine-replication application the paper's
// motivation section points at, including the part the raw delivery
// stream cannot give you: bringing a brand-new replica into a loaded
// shard with automatic state transfer.
//
// Run with:
//
//	go run ./examples/kvstore
//
// Five processes host two shards of three replicas each:
//
//	shard A (group 1): P1, P2, P3
//	shard B (group 2): P3, P4, P5
//
// P3 replicates both shards — an overlapping-group process whose delivery
// stream interleaves both shards in one total order (MD4'). Writes are
// proposed to the owning shard's replica and applied in delivery order, so
// replicas of a shard are always byte-identical (compared by state
// digest).
//
// Then P6 joins shard A. Newtop processes never rejoin a group, so the
// join is a group formation (§5.3): g3 = {P1,P2,P3,P6} is formed, the
// incumbents carry their machines over, and P6 catches up through a
// chunked snapshot plus replay tail — all inside the total order, while
// the shard keeps serving writes. Finally P2 crashes and the shard keeps
// serving from the survivors.
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"time"

	"newtop"
)

// member is one process with its per-shard replicas.
type member struct {
	proc *newtop.Process
	kvs  map[newtop.GroupID]*newtop.KV      // one machine per shard
	reps map[newtop.GroupID]*newtop.Replica // one replica per replicated group
}

// shardFor routes a key to its owning shard group.
func shardFor(key string) newtop.GroupID {
	h := fnv.New32a()
	h.Write([]byte(key))
	return newtop.GroupID(h.Sum32()%2 + 1)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := newtop.NewNetwork(newtop.WithSeed(11))
	defer net.Close()

	shardA := []newtop.ProcessID{1, 2, 3}
	shardB := []newtop.ProcessID{3, 4, 5}
	shardOf := map[newtop.GroupID][]newtop.ProcessID{1: shardA, 2: shardB}

	members := make(map[newtop.ProcessID]*member)
	start := func(id newtop.ProcessID) (*member, error) {
		p, err := newtop.Start(newtop.Config{Self: id, Network: net, Omega: 15 * time.Millisecond})
		if err != nil {
			return nil, err
		}
		m := &member{proc: p, kvs: map[newtop.GroupID]*newtop.KV{}, reps: map[newtop.GroupID]*newtop.Replica{}}
		members[id] = m
		return m, nil
	}
	// replicate attaches a (possibly pre-existing) machine to a group.
	replicate := func(m *member, g newtop.GroupID, kv *newtop.KV, opts ...newtop.ReplicaOption) error {
		rep, err := newtop.Replicate(m.proc, g, kv, opts...)
		if err != nil {
			return err
		}
		m.kvs[g] = kv
		m.reps[g] = rep
		return nil
	}

	for id := newtop.ProcessID(1); id <= 5; id++ {
		m, err := start(id)
		if err != nil {
			return err
		}
		defer func() { _ = m.proc.Close() }()
	}
	// Replicate before bootstrapping, so no delivery is missed.
	for g, ms := range shardOf {
		for _, id := range ms {
			if err := replicate(members[id], g, newtop.NewKV()); err != nil {
				return err
			}
		}
	}
	for g, ms := range shardOf {
		for _, id := range ms {
			if err := members[id].proc.BootstrapGroup(g, newtop.Symmetric, ms); err != nil {
				return err
			}
		}
	}
	fmt.Println("shard A (g1) = {P1,P2,P3}; shard B (g2) = {P3,P4,P5}; P3 replicates both")

	// Load phase: 40 writes routed by key hash, proposed at whichever
	// replica "received the client request", plus a few deletes.
	written := map[newtop.GroupID]int{}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("user:%04d", i)
		g := shardFor(key)
		w := members[shardOf[g][i%3]]
		if err := w.reps[g].Propose([]byte(fmt.Sprintf("put %s value-%d", key, i))); err != nil {
			return err
		}
		written[g]++
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("user:%04d", i*7)
		g := shardFor(key)
		if err := members[shardOf[g][0]].reps[g].Propose([]byte("del " + key)); err != nil {
			return err
		}
		written[g]++
	}

	// Read-your-writes: the proposer observes its own write immediately
	// after Read returns, no polling.
	gA := shardFor("user:0001")
	reader := members[shardOf[gA][1]]
	if err := reader.reps[gA].Propose([]byte("put user:0001 overwritten")); err != nil {
		return err
	}
	written[gA]++
	if err := reader.reps[gA].Read(func(newtop.StateMachine) {
		v, ok := reader.kvs[gA].Get("user:0001")
		fmt.Printf("read-your-writes at P%d: user:0001 = %q (%v)\n", reader.proc.Self(), v, ok)
	}); err != nil {
		return err
	}

	// Quiesce and compare state digests shard by shard.
	if err := waitApplied(members, shardOf, written); err != nil {
		return err
	}
	fmt.Println("\nshard digests after load:")
	for _, g := range []newtop.GroupID{1, 2} {
		if _, err := digestsAgree(g, shardOf[g], members); err != nil {
			return err
		}
	}
	fmt.Println("replicas identical within each shard ✓")

	// Join phase: P6 joins shard A. Joining = forming the successor group
	// g3 = {P1,P2,P3,P6}; the incumbents' machines ride along, P6 catches
	// up via snapshot + replay while the shard keeps writing.
	fmt.Println("\nP6 joins shard A via group formation (g3 = {P1,P2,P3,P6})…")
	m6, err := start(6)
	if err != nil {
		return err
	}
	defer func() { _ = m6.proc.Close() }()
	const g3 = newtop.GroupID(3)
	for _, id := range shardA {
		m := members[id]
		if err := replicate(m, g3, m.kvs[1], newtop.WithSnapshotChunkSize(512)); err != nil {
			return err
		}
	}
	if err := replicate(m6, g3, newtop.NewKV(), newtop.CatchUp(), newtop.WithSnapshotChunkSize(512)); err != nil {
		return err
	}
	if err := m6.proc.CreateGroup(g3, newtop.Symmetric, []newtop.ProcessID{1, 2, 3, 6}); err != nil {
		return err
	}
	// Writes keep flowing into the shard's successor group while P6 is
	// still catching up (shard A traffic now targets g3). Propose fails
	// with ErrUnknownGroup until the formation invite reaches the
	// proposing member — retry, exactly as a client would.
	const joinWrites = 20
	for i := 0; i < joinWrites; i++ {
		rep := members[shardA[i%3]].reps[g3]
		cmd := []byte(fmt.Sprintf("put join:%03d v%d", i, i))
		for deadline := time.Now().Add(30 * time.Second); ; {
			if err := rep.Propose(cmd); err == nil {
				break
			} else if time.Now().After(deadline) {
				return fmt.Errorf("join write %d never accepted: %v", i, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	select {
	case <-m6.reps[g3].Ready():
	case <-time.After(60 * time.Second):
		return fmt.Errorf("P6 never caught up: %+v", m6.reps[g3].Stats())
	}
	st := m6.reps[g3].Stats()
	fmt.Printf("P6 caught up: snapshot %d B in %d chunks, replay tail %d, base seq %d\n",
		st.SnapshotBytes, st.ChunksIn, st.Replayed, m6.reps[g3].AppliedSeq())

	// Every member of g3 (incumbents and newcomer) must agree once the
	// join writes have settled.
	deadline := time.Now().Add(60 * time.Second)
	for {
		settled := true
		for _, id := range []newtop.ProcessID{1, 2, 3, 6} {
			if members[id].reps[g3].AppliedSeq() < uint64(joinWrites) {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("join writes never settled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := digestsAgree(g3, []newtop.ProcessID{1, 2, 3, 6}, members); err != nil {
		return err
	}
	fmt.Println("new replica byte-identical to incumbents ✓")

	// Failure: crash P2; the shard keeps serving from the survivors.
	fmt.Println("\ncrashing replica P2 of shard A…")
	net.Crash(2)
	if err := waitView(members[1].proc, g3, 2); err != nil {
		return err
	}
	v, _ := members[1].proc.View(g3)
	fmt.Printf("shard A view after exclusion: %v\n", v)
	if err := members[6].reps[g3].Propose([]byte("put after-crash yes")); err != nil {
		return err
	}
	if err := members[6].reps[g3].Read(func(newtop.StateMachine) {}); err != nil {
		return err
	}
	// The write reaches the other survivors through the total order.
	deadline = time.Now().Add(30 * time.Second)
	for {
		v1, ok1 := members[1].kvs[1].Get("after-crash")
		v3, ok3 := members[3].kvs[1].Get("after-crash")
		if ok1 && ok3 && v1 == "yes" && v3 == "yes" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("post-crash write never applied at the survivors")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := digestsAgree(g3, []newtop.ProcessID{1, 3, 6}, members); err != nil {
		return err
	}
	fmt.Println("shard A served writes through the failure; survivors identical ✓")
	return nil
}

// digestsAgree prints and compares the state digests of g's replicas.
func digestsAgree(g newtop.GroupID, ids []newtop.ProcessID, members map[newtop.ProcessID]*member) (uint64, error) {
	var ref uint64
	for i, id := range ids {
		rep := members[id].reps[g]
		d := rep.Digest()
		fmt.Printf("  g%d @ P%d: %d keys, digest %016x (applied %d)\n", g, id, kvOf(members[id], g).Len(), d, rep.AppliedSeq())
		if i == 0 {
			ref = d
		} else if d != ref {
			return 0, fmt.Errorf("g%d replicas diverge: P%d has %016x, P%d has %016x", g, ids[0], ref, id, d)
		}
	}
	return ref, nil
}

func kvOf(m *member, g newtop.GroupID) *newtop.KV { return m.kvs[g] }

// waitApplied blocks until every replica has applied its groups' writes.
func waitApplied(members map[newtop.ProcessID]*member, shardOf map[newtop.GroupID][]newtop.ProcessID, written map[newtop.GroupID]int) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for g, ms := range shardOf {
			for _, id := range ms {
				if members[id].reps[g].AppliedSeq() < uint64(written[g]) {
					done = false
				}
			}
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas never applied all writes")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitView(p *newtop.Process, g newtop.GroupID, excluded newtop.ProcessID) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, err := p.View(g)
		if err == nil && !v.Contains(excluded) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("P%d never excluded from g%d", excluded, g)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
