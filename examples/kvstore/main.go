// kvstore: a sharded, replicated key-value store built on Newtop total
// order — the classic state-machine-replication application the paper's
// motivation section points at.
//
// Run with:
//
//	go run ./examples/kvstore
//
// Five processes host two shards of three replicas each:
//
//	shard A (group 1): P1, P2, P3
//	shard B (group 2): P3, P4, P5
//
// P3 replicates both shards — an overlapping-group process whose delivery
// stream interleaves both shards in one total order (MD4'). Writes are
// multicast to the owning shard's group and applied in delivery order, so
// replicas of a shard are always byte-identical. A replica crash is
// injected; the shard keeps serving from the surviving replicas after the
// membership agreement excludes the dead one.
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"newtop"
)

// store is one process's replica state: per-shard key/value maps,
// maintained purely by applying totally ordered writes.
type store struct {
	mu     sync.Mutex
	shards map[newtop.GroupID]map[string]string
	writes int
}

func newStore() *store {
	return &store{shards: make(map[newtop.GroupID]map[string]string)}
}

func (s *store) apply(g newtop.GroupID, cmd string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kv := s.shards[g]
	if kv == nil {
		kv = make(map[string]string)
		s.shards[g] = kv
	}
	// Command format: "put <key> <value>" | "del <key>".
	parts := strings.SplitN(cmd, " ", 3)
	switch parts[0] {
	case "put":
		if len(parts) == 3 {
			kv[parts[1]] = parts[2]
		}
	case "del":
		if len(parts) >= 2 {
			delete(kv, parts[1])
		}
	}
	s.writes++
}

// fingerprint summarises one shard's state deterministically.
func (s *store) fingerprint(g newtop.GroupID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	kv := s.shards[g]
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s;", k, kv[k])
	}
	return fmt.Sprintf("%d keys, fp=%016x", len(keys), h.Sum64())
}

func (s *store) get(g newtop.GroupID, key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.shards[g][key]
	return v, ok
}

// shardFor routes a key to its owning group.
func shardFor(key string) newtop.GroupID {
	h := fnv.New32a()
	h.Write([]byte(key))
	return newtop.GroupID(h.Sum32()%2 + 1)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := newtop.NewNetwork(newtop.WithSeed(11))
	defer net.Close()

	shardA := []newtop.ProcessID{1, 2, 3}
	shardB := []newtop.ProcessID{3, 4, 5}
	membership := map[newtop.ProcessID][]newtop.GroupID{
		1: {1}, 2: {1}, 3: {1, 2}, 4: {2}, 5: {2},
	}

	procs := make(map[newtop.ProcessID]*newtop.Process)
	stores := make(map[newtop.ProcessID]*store)
	for id := newtop.ProcessID(1); id <= 5; id++ {
		p, err := newtop.Start(newtop.Config{Self: id, Network: net, Omega: 15 * time.Millisecond})
		if err != nil {
			return err
		}
		defer func() { _ = p.Close() }()
		procs[id] = p
		st := newStore()
		stores[id] = st
		go func(p *newtop.Process, st *store) {
			for d := range p.Deliveries() {
				st.apply(d.Group, string(d.Payload))
			}
		}(p, st)
	}
	for id, groups := range membership {
		for _, g := range groups {
			members := shardA
			if g == 2 {
				members = shardB
			}
			if err := procs[id].BootstrapGroup(g, newtop.Symmetric, members); err != nil {
				return err
			}
		}
	}
	fmt.Println("shard A (g1) = {P1,P2,P3}; shard B (g2) = {P3,P4,P5}; P3 replicates both")

	// Load phase: 40 writes routed by key hash, issued from whichever
	// replica "received the client request".
	writers := map[newtop.GroupID][]newtop.ProcessID{1: shardA, 2: shardB}
	written := map[newtop.GroupID]int{}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("user:%04d", i)
		g := shardFor(key)
		w := writers[g][i%3]
		cmd := fmt.Sprintf("put %s value-%d", key, i)
		if err := procs[w].Submit(g, []byte(cmd)); err != nil {
			return err
		}
		written[g]++
	}
	// A few deletes for good measure.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("user:%04d", i*7)
		g := shardFor(key)
		if err := procs[writers[g][0]].Submit(g, []byte("del "+key)); err != nil {
			return err
		}
		written[g]++
	}

	// Wait until every replica applied its shard's writes.
	if err := waitWrites(stores, membership, written); err != nil {
		return err
	}

	// All replicas of a shard must agree byte-for-byte.
	fmt.Println("\nshard fingerprints after load:")
	for _, g := range []newtop.GroupID{1, 2} {
		members := shardA
		if g == 2 {
			members = shardB
		}
		ref := stores[members[0]].fingerprint(g)
		for _, id := range members {
			fp := stores[id].fingerprint(g)
			fmt.Printf("  g%d @ P%d: %s\n", g, id, fp)
			if fp != ref {
				return fmt.Errorf("shard g%d replicas diverge: P%d has %s, P%d has %s",
					g, members[0], ref, id, fp)
			}
		}
	}
	fmt.Println("replicas identical within each shard ✓")

	// Failure: crash P2 (a shard-A replica); the shard keeps accepting
	// writes and the survivors converge.
	fmt.Println("\ncrashing replica P2 of shard A…")
	net.Crash(2)
	if err := waitView(procs[1], 1, 2); err != nil {
		return err
	}
	v, _ := procs[1].View(1)
	fmt.Printf("shard A view after exclusion: %v\n", v)

	if err := procs[1].Submit(1, []byte("put after-crash yes")); err != nil {
		return err
	}
	deadline := time.After(30 * time.Second)
	for {
		v1, ok1 := stores[1].get(1, "after-crash")
		v3, ok3 := stores[3].get(1, "after-crash")
		if ok1 && ok3 && v1 == "yes" && v3 == "yes" {
			break
		}
		select {
		case <-deadline:
			return fmt.Errorf("post-crash write never applied at the survivors")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if a, b := stores[1].fingerprint(1), stores[3].fingerprint(1); a != b {
		return fmt.Errorf("survivors diverge after crash: %s vs %s", a, b)
	}
	fmt.Println("shard A served writes through the failure; survivors identical ✓")
	return nil
}

func waitWrites(stores map[newtop.ProcessID]*store, membership map[newtop.ProcessID][]newtop.GroupID, written map[newtop.GroupID]int) error {
	deadline := time.After(30 * time.Second)
	for {
		done := true
		for id, groups := range membership {
			want := 0
			for _, g := range groups {
				want += written[g]
			}
			stores[id].mu.Lock()
			got := stores[id].writes
			stores[id].mu.Unlock()
			if got < want {
				done = false
			}
		}
		if done {
			return nil
		}
		select {
		case <-deadline:
			return fmt.Errorf("replicas never applied all writes")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func waitView(p *newtop.Process, g newtop.GroupID, excluded newtop.ProcessID) error {
	deadline := time.After(60 * time.Second)
	for {
		v, err := p.View(g)
		if err == nil && !v.Contains(excluded) {
			return nil
		}
		select {
		case <-deadline:
			return fmt.Errorf("P%d never excluded from g%d", excluded, g)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
