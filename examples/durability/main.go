// Durability: the WAL + snapshot layer and the restart story — kill a
// daemon with the power-loss model, restart it from its data directory,
// and watch it replay locally and rejoin via the reconcile fast path.
//
// Run with:
//
//	go run ./examples/durability
//
// Three daemons replicate a kvstore over an in-memory network, each with
// a data directory (the `newtopd -data-dir` surface) under fsync=always:
// a write is acknowledged only after it is on its daemon's stable media.
// The program
//
//   - acks a batch of writes THROUGH P3, then kills P3 the hard way
//     (Kill models power loss: the process vanishes and any unsynced
//     WAL tail is torn);
//   - keeps writing through the survivors while P3 is down, so the
//     cluster's history moves on without it;
//   - restarts P3 from the same directory and checks every acked write
//     is back BEFORE the daemon exchanges a single message — that is
//     the local replay;
//   - waits for the rejoin and proves it rode the reconcile fast path:
//     digests matched, so no snapshot was retransferred, and the
//     outage-era writes arrive through the reconcile diff;
//   - reads the durability telemetry two ways: the client STATUS
//     response (WAL/snapshot positions over the wire) and the recovery
//     counters in the metrics registry.
//
// The program is self-checking: it exits non-zero when an acked write is
// missing after the restart, when recovery fell back to a full snapshot
// transfer, or when the durability surfaces disagree.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"newtop"
	"newtop/client"
	"newtop/internal/daemon"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base, err := os.MkdirTemp("", "newtop-durability-")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(base) }()

	net := newtop.NewNetwork(newtop.WithSeed(11))
	defer net.Close()

	ids := []newtop.ProcessID{1, 2, 3}
	daemons := make(map[newtop.ProcessID]*daemon.Daemon, len(ids))
	mkConfig := func(id newtop.ProcessID) daemon.Config {
		return daemon.Config{
			Self:              id,
			Network:           net,
			ClientAddr:        "127.0.0.1:0",
			Omega:             15 * time.Millisecond,
			HealProbeInterval: 40 * time.Millisecond,
			Initial:           ids,
			Settle:            200 * time.Millisecond,
			DrainWindow:       250 * time.Millisecond,
			InitiateTimeout:   800 * time.Millisecond,
			Logf:              func(string, ...any) {},
			DataDir:           fmt.Sprintf("%s/p%d", base, id),
			Fsync:             "always", // acked ⇒ on stable media
			SnapshotEvery:     8,
		}
	}
	for _, id := range ids {
		d, err := daemon.Start(mkConfig(id))
		if err != nil {
			return err
		}
		defer func() { _ = d.Close() }()
		daemons[id] = d
	}
	fmt.Println("3 durable daemons up, fsync=always, data dirs under", base)

	// Ack a batch through P3 itself: its persist-before-ack is the
	// guarantee this example demonstrates.
	ccfg := client.Config{DialTimeout: time.Second, OpTimeout: 10 * time.Second,
		FailoverTimeout: 20 * time.Second, RetryWait: 10 * time.Millisecond}
	c3, err := ccfg.Dial(daemons[3].ClientAddr())
	if err != nil {
		return err
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := c3.Put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			return err
		}
	}
	st, err := c3.Status()
	if err != nil {
		return err
	}
	_ = c3.Close()
	fmt.Printf("%d writes acked by P3; STATUS: durable=%v wal=(g%d,%d) snapshot=(g%d,%d)\n",
		n, st.Durable, st.WALGroup, st.WALIndex, st.SnapGroup, st.SnapIndex)
	if !st.Durable || st.WALIndex == 0 {
		return fmt.Errorf("STATUS does not report a durable WAL position after %d acked writes", n)
	}

	// Power loss at P3. The survivors agree on its exclusion and keep
	// serving; the outage-era write lands in history P3 has never seen.
	old := daemons[3].ServingGroup()
	daemons[3].Kill()
	fmt.Println("\nP3 killed (power loss model: unsynced tail torn)")
	c1, err := ccfg.Dial(daemons[1].ClientAddr())
	if err != nil {
		return err
	}
	defer func() { _ = c1.Close() }()
	if err := waitUntil(10*time.Second, func() bool {
		v, err := daemons[1].Proc().View(daemons[1].ServingGroup())
		return err == nil && !v.Contains(3)
	}); err != nil {
		return fmt.Errorf("survivors never excluded P3: %w", err)
	}
	if err := c1.Put("during-outage", "survivors-only"); err != nil {
		return err
	}
	fmt.Println("survivors excluded P3 and acked an outage-era write")

	// Restart from the same directory. Recovery is synchronous inside
	// Start: snapshot restored, WAL replayed, torn tail truncated.
	d3, err := daemon.Start(mkConfig(3))
	if err != nil {
		return err
	}
	defer func() { _ = d3.Close() }()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%02d", i)
		if v, ok := d3.KV().Get(k); !ok || v != fmt.Sprintf("v%d", i) {
			return fmt.Errorf("acked write %s missing after restart: %q %v", k, v, ok)
		}
	}
	rc := d3.Proc().Metrics().Counters
	fmt.Printf("\nP3 restarted: all %d acked writes restored locally (replays=%d, entries=%d, torn=%d)\n",
		n, rc["newtop_recovery_replays_total"],
		rc["newtop_recovery_replayed_entries_total"],
		rc["newtop_recovery_truncated_records_total"])

	// The rejoin: P3 announces its old group tag, a survivor's exclusion
	// detector treats it as a healed partition, and the merged successor
	// group reconciles by digest diff — identical prefixes short-circuit.
	if err := waitUntil(20*time.Second, func() bool {
		g := d3.ServingGroup()
		return g > old && daemons[1].ServingGroup() == g
	}); err != nil {
		return fmt.Errorf("P3 never rejoined: %w", err)
	}
	c3, err = ccfg.Dial(d3.ClientAddr())
	if err != nil {
		return err
	}
	defer func() { _ = c3.Close() }()
	if v, ok, err := c3.BarrierGet("during-outage"); err != nil || !ok || v != "survivors-only" {
		return fmt.Errorf("outage-era write at rejoined P3 = %q %v %v", v, ok, err)
	}
	if v, ok, err := c3.BarrierGet("k00"); err != nil || !ok || v != "v0" {
		return fmt.Errorf("pre-kill write at rejoined P3 = %q %v %v", v, ok, err)
	}
	rc = d3.Proc().Metrics().Counters
	if rc["newtop_recovery_full_transfers_total"] != 0 {
		return fmt.Errorf("rejoin fell back to a full snapshot transfer")
	}
	if rc["newtop_recovery_fastpath_total"] != 1 {
		return fmt.Errorf("fastpath counter = %d, want 1", rc["newtop_recovery_fastpath_total"])
	}
	// One write into the merged group moves the WAL of the NEW incarnation:
	// the durability telemetry follows the serving group across the rejoin.
	if err := c3.Put("after-rejoin", "durable-again"); err != nil {
		return err
	}
	st, err = c3.Status()
	if err != nil {
		return err
	}
	fmt.Printf("P3 rejoined g%d via the reconcile fast path (no snapshot transfer); STATUS wal=(g%d,%d)\n",
		d3.ServingGroup(), st.WALGroup, st.WALIndex)
	if st.WALGroup != uint64(d3.ServingGroup()) || st.WALIndex == 0 {
		return fmt.Errorf("durability telemetry did not follow the serving group: %+v", st)
	}

	fmt.Println("\nacked ⇒ durable ⇒ recovered: both eras readable at the restarted daemon ✓")
	return nil
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %v", d)
}
