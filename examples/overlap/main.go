// Overlap: multi-group processes, mixed ordering modes, and cross-group
// total order (the paper's §4.3 generic protocol and MD4').
//
// Run with:
//
//	go run ./examples/overlap
//
// Four processes form two overlapping groups:
//
//	g1 = {P1, P2, P3}  symmetric  (decentralised ordering)
//	g2 = {P2, P3, P4}  asymmetric (sequencer = P2, the lowest member)
//
// P2 and P3 belong to both groups — one running the symmetric protocol,
// the other the sequencer protocol, simultaneously (the paper's
// mixed-mode). Both common members must deliver the *union* of the two
// groups' messages in the same interleaved order: that is MD4', the
// multi-group total order that distinguishes Newtop from single-group
// protocols.
package main

import (
	"fmt"
	"log"
	"time"

	"newtop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := newtop.NewNetwork(newtop.WithSeed(42))
	defer net.Close()

	procs := make(map[newtop.ProcessID]*newtop.Process)
	for id := newtop.ProcessID(1); id <= 4; id++ {
		p, err := newtop.Start(newtop.Config{Self: id, Network: net, Omega: 15 * time.Millisecond})
		if err != nil {
			return err
		}
		defer func() { _ = p.Close() }()
		procs[id] = p
	}

	g1 := []newtop.ProcessID{1, 2, 3}
	g2 := []newtop.ProcessID{2, 3, 4}
	for _, id := range g1 {
		if err := procs[id].BootstrapGroup(1, newtop.Symmetric, g1); err != nil {
			return err
		}
	}
	for _, id := range g2 {
		if err := procs[id].BootstrapGroup(2, newtop.Asymmetric, g2); err != nil {
			return err
		}
	}
	fmt.Println("g1={P1,P2,P3} symmetric; g2={P2,P3,P4} asymmetric (sequencer P2)")
	fmt.Println("P2 and P3 run both protocols at once (mixed mode, §4.3)")

	// Interleaved traffic: P1 into g1, P4 into g2, and the dual-mode P2
	// into both — its g1 multicasts are subject to the Mixed-mode
	// Blocking Rule while its g2 unicasts await the sequencer.
	for i := 1; i <= 4; i++ {
		if err := procs[1].Submit(1, []byte(fmt.Sprintf("g1 update %d (from P1)", i))); err != nil {
			return err
		}
		if err := procs[4].Submit(2, []byte(fmt.Sprintf("g2 update %d (from P4)", i))); err != nil {
			return err
		}
		if err := procs[2].Submit(2, []byte(fmt.Sprintf("g2 update %d (from P2)", i))); err != nil {
			return err
		}
		if err := procs[2].Submit(1, []byte(fmt.Sprintf("g1 update %d (from P2)", i))); err != nil {
			return err
		}
		time.Sleep(3 * time.Millisecond)
	}

	// P2 and P3 each deliver all 16 messages (8 per group); their merged
	// sequences must be identical (MD4').
	const total = 16
	collect := func(p *newtop.Process) ([]string, error) {
		var out []string
		for len(out) < total {
			select {
			case d := <-p.Deliveries():
				out = append(out, fmt.Sprintf("[g%d] %s", d.Group, d.Payload))
			case <-time.After(15 * time.Second):
				return nil, fmt.Errorf("P%d: timed out after %d deliveries", p.Self(), len(out))
			}
		}
		return out, nil
	}
	seq2, err := collect(procs[2])
	if err != nil {
		return err
	}
	seq3, err := collect(procs[3])
	if err != nil {
		return err
	}

	fmt.Println("\nmerged delivery order at the common members P2 and P3:")
	for i := range seq2 {
		marker := " "
		if seq2[i] != seq3[i] {
			marker = "✗"
		}
		fmt.Printf("  %2d. %-30s %s\n", i+1, seq2[i], marker)
		if seq2[i] != seq3[i] {
			return fmt.Errorf("MD4' violated at position %d: P2 got %q, P3 got %q", i, seq2[i], seq3[i])
		}
	}
	fmt.Println("\ncross-group total order (MD4') verified at both common members ✓")

	st := procs[2].Stats()
	fmt.Printf("P2 stats: %d sequencer multicasts performed, %d sends briefly blocked by the mixed-mode rule\n",
		st.SeqMulticasts, st.BlockedSends)
	return nil
}
