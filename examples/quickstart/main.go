// Quickstart: three processes, one group, totally ordered multicast.
//
// Run with:
//
//	go run ./examples/quickstart
//
// Three Newtop processes share an in-memory network, bootstrap a symmetric
// total-order group, and multicast concurrently. Every process prints its
// delivery sequence — the three sequences are identical, which is the
// protocol's core guarantee (MD4).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"newtop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := newtop.NewNetwork(newtop.WithSeed(1))
	defer net.Close()

	members := []newtop.ProcessID{1, 2, 3}
	procs := make([]*newtop.Process, 0, len(members))
	for _, id := range members {
		p, err := newtop.Start(newtop.Config{
			Self:    id,
			Network: net,
			Omega:   20 * time.Millisecond, // time-silence interval ω
		})
		if err != nil {
			return err
		}
		defer func() { _ = p.Close() }()
		procs = append(procs, p)
	}

	// Every member installs the same initial view (static bootstrap, §4).
	for _, p := range procs {
		if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			return err
		}
	}

	// Concurrent multicasts from all three members.
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p *newtop.Process) {
			defer wg.Done()
			for i := 1; i <= 3; i++ {
				msg := fmt.Sprintf("hello %d from P%d", i, p.Self())
				if err := p.Submit(1, []byte(msg)); err != nil {
					log.Printf("submit: %v", err)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(p)
	}
	wg.Wait()

	// Collect 9 deliveries at each process; the sequences must match.
	const total = 9
	sequences := make([][]string, len(procs))
	for i, p := range procs {
		for len(sequences[i]) < total {
			select {
			case d := <-p.Deliveries():
				sequences[i] = append(sequences[i], string(d.Payload))
			case <-time.After(10 * time.Second):
				return fmt.Errorf("P%d: timed out waiting for deliveries", p.Self())
			}
		}
	}

	fmt.Println("deliveries in total order, identical at every process:")
	for i := 0; i < total; i++ {
		fmt.Printf("  %d. %s\n", i+1, sequences[0][i])
	}
	for i := 1; i < len(sequences); i++ {
		for k := 0; k < total; k++ {
			if sequences[i][k] != sequences[0][k] {
				return fmt.Errorf("total order violated at position %d: %q vs %q",
					k, sequences[i][k], sequences[0][k])
			}
		}
	}
	fmt.Println("total order verified across all 3 processes ✓")
	return nil
}
