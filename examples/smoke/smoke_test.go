// Package smoke builds and runs every example end to end, so `go test
// ./...` exercises them instead of letting them rot silently. Each example
// is a self-checking program: it exits non-zero when its invariants
// (identical replica digests, exclusion agreement, migration state) fail.
package smoke

import (
	"os/exec"
	"syscall"
	"testing"
	"time"
)

// examples lists the programs under ../ with a rough upper bound on how
// long a healthy run takes (they all finish in a few seconds; the bound
// only caps a wedged run).
var examples = []struct {
	dir     string
	timeout time.Duration
}{
	{"quickstart", 60 * time.Second},
	{"overlap", 60 * time.Second},
	{"kvstore", 120 * time.Second},
	{"migration", 120 * time.Second},
	{"partition", 120 * time.Second},
	{"client", 120 * time.Second},
	{"metrics", 120 * time.Second},
	{"durability", 120 * time.Second},
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take seconds each; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex.dir, func(t *testing.T) {
			t.Parallel()
			done := make(chan struct{})
			cmd := exec.Command(goBin, "run", "newtop/examples/"+ex.dir)
			cmd.Dir = ".." // anywhere inside the module works
			// Own process group: on timeout the kill must reach the
			// example binary itself, not just the `go run` parent —
			// otherwise the orphan keeps the output pipes open and
			// CombinedOutput never returns.
			cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(ex.timeout):
				_ = syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
				<-done
				t.Fatalf("example %s wedged after %v:\n%s", ex.dir, ex.timeout, out)
			}
			if runErr != nil {
				t.Fatalf("example %s failed: %v\n%s", ex.dir, runErr, out)
			}
		})
	}
}
