// Client: the externally-driven service story — a newtopd cluster serving
// a routed client session that survives the death of the very daemon it
// is talking to.
//
// Run with:
//
//	go run ./examples/client
//
// Three daemons (internal/daemon — the same engine behind cmd/newtopd)
// replicate a kvstore over an in-memory network and each serve the client
// protocol on a loopback TCP port. One client session dials all three,
// pins itself to one daemon, and writes through it; every acknowledged
// write has been applied through the group's total order, i.e. is
// replicated. We then kill the pinned daemon mid-session: the client
// notices, fails over to a survivor, silently upgrades its next read to a
// barrier read (restoring read-your-writes on the new daemon), and the
// workload continues — with every previously acknowledged write intact.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"newtop"
	"newtop/client"
	"newtop/internal/daemon"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := newtop.NewNetwork(newtop.WithSeed(5))
	defer net.Close()

	ids := []newtop.ProcessID{1, 2, 3}
	daemons := make(map[newtop.ProcessID]*daemon.Daemon, len(ids))
	for _, id := range ids {
		d, err := daemon.Start(daemon.Config{
			Self:       id,
			Network:    net,
			ClientAddr: "127.0.0.1:0",
			Omega:      15 * time.Millisecond,
			Initial:    ids,
			Logf:       func(string, ...any) {},
		})
		if err != nil {
			return err
		}
		defer func() { _ = d.Close() }()
		daemons[id] = d
	}
	addrs := make(map[newtop.ProcessID]string, len(ids))
	byAddr := make(map[string]newtop.ProcessID, len(ids))
	var addrList []string
	for _, id := range ids {
		a := daemons[id].ClientAddr()
		addrs[id] = a
		byAddr[a] = id
		addrList = append(addrList, a)
	}
	for _, d := range daemons {
		d.SetPeerClientAddrs(addrs)
	}
	fmt.Println("3 daemons up, each serving the client protocol on loopback TCP")

	sess, err := client.Dial(addrList...)
	if err != nil {
		return err
	}
	defer func() { _ = sess.Close() }()
	pinned := byAddr[sess.Pinned()]
	fmt.Printf("client session pinned to P%d\n\n", pinned)

	// Phase 1: acked writes through the pinned daemon.
	for i := 1; i <= 10; i++ {
		if err := sess.Put(fmt.Sprintf("order:%03d", i), fmt.Sprintf("item-%d", i)); err != nil {
			return err
		}
	}
	v, ok, err := sess.Get("order:010")
	if err != nil || !ok {
		return fmt.Errorf("read-your-writes failed: %q %v %v", v, ok, err)
	}
	fmt.Printf("10 writes acknowledged (each applied through the total order); read-your-writes: order:010=%q ✓\n", v)

	// Phase 2: kill the daemon the session is pinned to.
	fmt.Printf("\nkilling P%d — the daemon this session is pinned to\n", pinned)
	net.Crash(pinned)
	_ = daemons[pinned].Close()
	delete(daemons, pinned)

	// The session fails over by itself; the workload code does nothing
	// special — except the one thing only the caller can decide: a write
	// whose connection died mid-exchange returns ErrUnacked (outcome
	// unknown), and since these writes are idempotent by content, the
	// right call is to resend them.
	unacked := 0
	for i := 11; i <= 20; i++ {
		for {
			err := sess.Put(fmt.Sprintf("order:%03d", i), fmt.Sprintf("item-%d", i))
			if err == nil {
				break
			}
			if errors.Is(err, client.ErrUnacked) {
				unacked++
				continue
			}
			return fmt.Errorf("write after kill: %w", err)
		}
	}
	if unacked > 0 {
		fmt.Printf("%d write(s) were torn by the crash (ErrUnacked) and resent by the caller\n", unacked)
	}
	newPin := byAddr[sess.Pinned()]
	if newPin == pinned || newPin == 0 {
		return fmt.Errorf("session did not fail over (pinned %q)", sess.Pinned())
	}
	fmt.Printf("session failed over to P%d and 10 more writes were acknowledged\n", newPin)

	// Every acknowledged write — including all ten acked by the dead
	// daemon — must still be there, linearizably.
	for i := 1; i <= 20; i++ {
		key, want := fmt.Sprintf("order:%03d", i), fmt.Sprintf("item-%d", i)
		got, ok, err := sess.BarrierGet(key)
		if err != nil || !ok || got != want {
			return fmt.Errorf("acked write %s lost: %q %v %v", key, got, ok, err)
		}
	}
	st := sess.Stats()
	fmt.Printf("all 20 acknowledged writes verified by barrier reads — zero acked-write loss ✓\n")
	fmt.Printf("\nsession stats: %d ops, %d failover, %d redirects, %d retries\n",
		st.Ops, st.Failovers, st.Redirects, st.Retries)
	status, err := sess.Status()
	if err != nil {
		return err
	}
	fmt.Printf("serving daemon P%d: group g%d, applied=%d, keys=%d, digest=%016x\n",
		status.Self, status.Group, status.Applied, status.Keys, status.Digest)
	fmt.Println("\nthe service outlived the daemon its client was talking to ✓")
	return nil
}
