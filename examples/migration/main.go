// Migration: the paper's fig. 1 scenario — online migration of a
// replicated server using overlapping groups.
//
// Run with:
//
//	go run ./examples/migration
//
// A replicated counter server runs as group g1 = {P1, P2}. Replica P2 must
// move to a new machine, represented by P3, without interrupting service:
//
//  1. P3 starts and initiates a new group g2 = {P1, P2, P3} (§5.3
//     formation) — P1 and P2 keep serving client requests in g1 throughout.
//  2. The replica state is transferred inside g2, totally ordered with the
//     ongoing g1 updates at the common members.
//  3. P2 departs both groups; the membership service excludes it, leaving
//     g2 = {P1, P3} as the surviving server group.
//
// The example applies every delivered update to a per-process replica of
// the counter state and verifies P1 and P3 converge to the same state.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	"newtop"
)

// replica is a trivially replicated state machine: a named counter
// updated by totally ordered "add N" commands.
type replica struct {
	mu      sync.Mutex
	counter int
	applied []string
}

func (r *replica) apply(cmd string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case strings.HasPrefix(cmd, "add "):
		n, _ := strconv.Atoi(strings.TrimPrefix(cmd, "add "))
		r.counter += n
	case strings.HasPrefix(cmd, "state "):
		n, _ := strconv.Atoi(strings.TrimPrefix(cmd, "state "))
		r.counter = n // state transfer: overwrite
	}
	r.applied = append(r.applied, cmd)
}

func (r *replica) value() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counter
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := newtop.NewNetwork(newtop.WithSeed(7))
	defer net.Close()

	start := func(id newtop.ProcessID) (*newtop.Process, *replica, error) {
		p, err := newtop.Start(newtop.Config{Self: id, Network: net, Omega: 20 * time.Millisecond})
		if err != nil {
			return nil, nil, err
		}
		r := &replica{}
		go func() {
			for d := range p.Deliveries() {
				r.apply(string(d.Payload))
			}
		}()
		return p, r, nil
	}

	p1, r1, err := start(1)
	if err != nil {
		return err
	}
	defer func() { _ = p1.Close() }()
	p2, _, err := start(2)
	if err != nil {
		return err
	}
	defer func() { _ = p2.Close() }()

	// Phase 0: the server group g1 = {P1, P2} serves updates.
	g1 := []newtop.ProcessID{1, 2}
	for _, p := range []*newtop.Process{p1, p2} {
		if err := p.BootstrapGroup(1, newtop.Symmetric, g1); err != nil {
			return err
		}
	}
	fmt.Println("phase 0: server group g1={P1,P2} serving")
	for i := 1; i <= 5; i++ {
		if err := p1.Submit(1, []byte(fmt.Sprintf("add %d", i))); err != nil {
			return err
		}
	}

	// Phase 1: P3 (the migration target) starts and forms g2 = {P1,P2,P3}.
	p3, r3, err := start(3)
	if err != nil {
		return err
	}
	defer func() { _ = p3.Close() }()
	fmt.Println("phase 1: P3 initiates migration group g2={P1,P2,P3}")
	if err := p3.CreateGroup(2, newtop.Symmetric, []newtop.ProcessID{1, 2, 3}); err != nil {
		return err
	}
	if err := waitReady(p3, 2); err != nil {
		return err
	}
	fmt.Println("phase 1: g2 formed (two-phase vote + start-group agreement)")

	// Phase 2: state transfer inside g2 while g1 keeps serving. Snapshot
	// only after the pre-migration updates have been delivered and
	// applied locally (deliveries are asynchronous).
	if err := waitValue(r1, 1+2+3+4+5); err != nil {
		return err
	}
	fmt.Println("phase 2: state transfer in g2, service continues in g1")
	if err := p1.Submit(2, []byte(fmt.Sprintf("state %d", r1.value()))); err != nil {
		return err
	}
	for i := 6; i <= 8; i++ {
		if err := p2.Submit(1, []byte(fmt.Sprintf("add %d", i))); err != nil {
			return err
		}
		// Mirror post-snapshot updates into g2 so the new replica stays
		// current (a real system would route updates to both groups
		// during the handover window).
		if err := p2.Submit(2, []byte(fmt.Sprintf("add %d", i))); err != nil {
			return err
		}
	}

	// Phase 3: P2 departs both groups.
	time.Sleep(300 * time.Millisecond) // let the handover traffic settle
	fmt.Println("phase 3: P2 departs; membership excludes it from g2")
	if err := p2.LeaveGroup(1); err != nil {
		return err
	}
	if err := p2.LeaveGroup(2); err != nil {
		return err
	}
	if err := waitViewWithout(p1, 2, 2); err != nil {
		return err
	}
	if err := waitViewWithout(p3, 2, 2); err != nil {
		return err
	}
	v, err := p3.View(2)
	if err != nil {
		return err
	}
	fmt.Printf("phase 3: surviving server group view: %v\n", v)

	// Phase 4: service continues on {P1, P3}.
	if err := p3.Submit(2, []byte("add 100")); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond)

	v1 := r1.value() // P1 applied g1 updates AND g2 updates
	v3 := r3.value()
	fmt.Printf("phase 4: P3 replica state = %d (P1 g2-visible state matches: %v)\n", v3, v3 == stateOf(r3))
	// P3's state: snapshot(15) + adds 6..8 (21) + 100 = 136.
	const want = 15 + 6 + 7 + 8 + 100
	if v3 != want {
		return fmt.Errorf("migrated replica state = %d, want %d", v3, want)
	}
	_ = v1
	fmt.Println("migration complete: no request lost, replica state correct ✓")
	return nil
}

func stateOf(r *replica) int { return r.value() }

func waitValue(r *replica, want int) error {
	deadline := time.After(30 * time.Second)
	for {
		if r.value() == want {
			return nil
		}
		select {
		case <-deadline:
			return fmt.Errorf("replica never reached state %d (at %d)", want, r.value())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func waitReady(p *newtop.Process, g newtop.GroupID) error {
	deadline := time.After(30 * time.Second)
	for {
		if p.GroupReady(g) {
			return nil
		}
		select {
		case <-deadline:
			return fmt.Errorf("P%d: group %v never became ready", p.Self(), g)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func waitViewWithout(p *newtop.Process, g newtop.GroupID, excluded newtop.ProcessID) error {
	deadline := time.After(30 * time.Second)
	for {
		v, err := p.View(g)
		if err == nil && !v.Contains(excluded) {
			return nil
		}
		select {
		case <-deadline:
			return fmt.Errorf("P%d: %v never excluded from %v", p.Self(), excluded, g)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
