// Migration: the paper's fig. 1 scenario — online migration of a
// replicated server using overlapping groups — with the server's actual
// state moved by the replication layer instead of a hand-rolled "state N"
// message.
//
// Run with:
//
//	go run ./examples/migration
//
// A replicated kvstore server runs as group g1 = {P1, P2}. Replica P2
// must move to a new machine, represented by P3, without interrupting
// service:
//
//  1. P3 starts and initiates a new group g2 = {P1, P2, P3} (§5.3
//     formation) — P1 and P2 keep serving client requests in g1.
//  2. Client traffic cuts over to g2; once the g1 stream has quiesced,
//     P3 asks for the state and an incumbent (elected by the total order
//     itself) streams a snapshot; writes continue in g2 throughout, P3
//     replays the tail ordered after the snapshot cut.
//  3. P2 departs both groups; the membership service excludes it, leaving
//     g2 = {P1, P3} as the surviving server group.
//
// The example verifies P1 and P3 converge to the same state digest — the
// migrated replica is byte-identical, nothing lost, nothing applied twice
// — and then proves it mechanically with the reconciliation fast path: a
// Reconcile over a fresh group exchanges digest summaries and, finding a
// single digest-class, completes with zero entries shipped. Reconcile is
// the partition-repair machinery, but on an already-consistent group it
// doubles as a cheap end-to-end convergence check.
package main

import (
	"fmt"
	"log"
	"time"

	"newtop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := newtop.NewNetwork(newtop.WithSeed(7))
	defer net.Close()

	start := func(id newtop.ProcessID) (*newtop.Process, error) {
		return newtop.Start(newtop.Config{Self: id, Network: net, Omega: 20 * time.Millisecond})
	}
	p1, err := start(1)
	if err != nil {
		return err
	}
	defer func() { _ = p1.Close() }()
	p2, err := start(2)
	if err != nil {
		return err
	}
	defer func() { _ = p2.Close() }()

	// Phase 0: the server group g1 = {P1, P2} serves updates.
	kv1, kv2 := newtop.NewKV(), newtop.NewKV()
	rep1g1, err := newtop.Replicate(p1, 1, kv1)
	if err != nil {
		return err
	}
	rep2g1, err := newtop.Replicate(p2, 1, kv2)
	if err != nil {
		return err
	}
	for _, p := range []*newtop.Process{p1, p2} {
		if err := p.BootstrapGroup(1, newtop.Symmetric, []newtop.ProcessID{1, 2}); err != nil {
			return err
		}
	}
	fmt.Println("phase 0: server group g1={P1,P2} serving")
	const preWrites = 8
	for i := 1; i <= preWrites; i++ {
		if err := rep1g1.Propose([]byte(fmt.Sprintf("put order:%03d item-%d", i, i))); err != nil {
			return err
		}
	}

	// Phase 1: P3 (the migration target) starts and forms g2 = {P1,P2,P3}.
	// Everyone replicates g2 — the incumbents with the machines they
	// already have (the state rides along), P3 empty, catching up.
	p3, err := start(3)
	if err != nil {
		return err
	}
	defer func() { _ = p3.Close() }()
	fmt.Println("phase 1: P3 initiates migration group g2={P1,P2,P3}")
	rep1g2, err := newtop.Replicate(p1, 2, kv1)
	if err != nil {
		return err
	}
	rep2g2, err := newtop.Replicate(p2, 2, kv2)
	if err != nil {
		return err
	}
	kv3 := newtop.NewKV()
	rep3g2, err := newtop.Replicate(p3, 2, kv3, newtop.CatchUp())
	if err != nil {
		return err
	}
	if err := p3.CreateGroup(2, newtop.Symmetric, []newtop.ProcessID{1, 2, 3}); err != nil {
		return err
	}
	if err := waitReady(p3, 2); err != nil {
		return err
	}
	fmt.Println("phase 1: g2 formed (two-phase vote + start-group agreement)")

	// Phase 2: cut client traffic over to g2 and quiesce g1 (the handover
	// discipline: a g1 write ordered after the snapshot cut would be
	// invisible to the newcomer). Quiescence is observable: both g1
	// replicas have applied every g1 write.
	if err := waitApplied(preWrites, rep1g1, rep2g1); err != nil {
		return err
	}
	fmt.Println("phase 2: g1 quiesced; service continues in g2 while the state streams to P3")
	for i := preWrites + 1; i <= preWrites+6; i++ {
		if err := rep2g2.Propose([]byte(fmt.Sprintf("put order:%03d item-%d", i, i))); err != nil {
			return err
		}
	}
	select {
	case <-rep3g2.Ready():
	case <-time.After(60 * time.Second):
		return fmt.Errorf("state transfer never completed: %+v", rep3g2.Stats())
	}
	st := rep3g2.Stats()
	fmt.Printf("phase 2: state transferred — snapshot %d B in %d chunks, replay tail %d\n",
		st.SnapshotBytes, st.ChunksIn, st.Replayed)

	// Phase 3: P2 departs both groups.
	fmt.Println("phase 3: P2 departs; membership excludes it from g2")
	_ = rep2g1.Close()
	_ = rep2g2.Close()
	if err := p2.LeaveGroup(1); err != nil {
		return err
	}
	if err := p2.LeaveGroup(2); err != nil {
		return err
	}
	if err := waitViewWithout(p1, 2, 2); err != nil {
		return err
	}
	if err := waitViewWithout(p3, 2, 2); err != nil {
		return err
	}
	v, err := p3.View(2)
	if err != nil {
		return err
	}
	fmt.Printf("phase 3: surviving server group view: %v\n", v)

	// Phase 4: service continues on {P1, P3} — the migrated replica now
	// serves writes itself.
	if err := rep3g2.Propose([]byte("put served-by P3")); err != nil {
		return err
	}
	// AppliedSeq counts one group's command stream (the snapshot carries
	// the base across), so both g2 replicas settle at the 7 g2 writes.
	if err := waitApplied(6+1, rep1g2, rep3g2); err != nil {
		return err
	}
	d1, d3 := rep1g2.Digest(), rep3g2.Digest()
	fmt.Printf("phase 4: state digests P1=%016x P3=%016x (match: %v; %d keys)\n", d1, d3, d1 == d3, kv3.Len())
	if d1 != d3 {
		return fmt.Errorf("migrated replica diverges from the survivor")
	}
	if v, ok := kv3.Get("order:001"); !ok || v != "item-1" {
		return fmt.Errorf("pre-migration state missing at P3 (%q %v)", v, ok)
	}
	fmt.Println("migration complete: no request lost, replica state identical ✓")

	// Phase 5: prove the convergence with the reconciliation fast path.
	// The service rotates onto one more successor group — a new group
	// may not duplicate an active view (§3), so the survivors retire g2
	// first — and Reconciles over it: equal digests form a single class,
	// so the exchange stops after the summaries — no entries, no merge —
	// and Ready closes immediately.
	fmt.Println("phase 5: rotate to g3 and re-verify convergence via the reconcile fast path")
	_ = rep1g2.Close()
	_ = rep3g2.Close()
	if err := p1.LeaveGroup(2); err != nil {
		return err
	}
	if err := p3.LeaveGroup(2); err != nil {
		return err
	}
	survivors := []newtop.ProcessID{1, 3}
	rec1, err := newtop.Reconcile(p1, 3, kv1, newtop.LastWriterWins(), survivors)
	if err != nil {
		return err
	}
	rec3, err := newtop.Reconcile(p3, 3, kv3, newtop.LastWriterWins(), survivors)
	if err != nil {
		return err
	}
	if err := p1.CreateGroup(3, newtop.Symmetric, survivors); err != nil {
		return err
	}
	for _, rec := range []*newtop.Replica{rec1, rec3} {
		select {
		case <-rec.Ready():
		case <-time.After(60 * time.Second):
			return fmt.Errorf("fast-path reconcile stalled: %+v", rec.Stats())
		}
	}
	rst := rec3.Stats()
	if rst.EntriesIn != 0 || rst.MergedPuts != 0 || rst.MergedDels != 0 {
		return fmt.Errorf("states were NOT identical after all: %+v", rst)
	}
	fmt.Printf("phase 5: single digest-class, 0 entries exchanged — replicas provably identical ✓\n")
	return nil
}

// waitApplied blocks until every replica's applied sequence reaches n.
func waitApplied(n int, reps ...*newtop.Replica) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		done := true
		for _, r := range reps {
			if r.AppliedSeq() < uint64(n) {
				done = false
			}
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas never reached applied seq %d", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitReady(p *newtop.Process, g newtop.GroupID) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		if p.GroupReady(g) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("P%d: group %v never became ready", p.Self(), g)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitViewWithout(p *newtop.Process, g newtop.GroupID, excluded newtop.ProcessID) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, err := p.View(g)
		if err == nil && !v.Contains(excluded) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("P%d: %v never excluded from %v", p.Self(), excluded, g)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
