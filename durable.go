package newtop

import (
	"newtop/internal/rsm"
	"newtop/internal/storage"
	"newtop/internal/types"
)

// This file is the durability facade: the on-disk layer (internal/storage)
// and the log-position plumbing that lets a restarted process recover its
// replicated state locally and rejoin its former partners through the
// reconcile fast path instead of a full snapshot transfer.

// LogPos addresses one position in a group's delivery stream: the group
// incarnation plus the zero-based index of the delivery within it. The
// total order makes it identical at every member, so it is meaningful
// across processes, across restarts, and on disk.
type LogPos = types.LogPos

// DurableStore manages a process's data directory: a meta sidecar (last
// group + membership) plus one DurableLog per group incarnation. Groups
// are never rejoined (§3), so each incarnation's stream lives in its own
// subdirectory and recovery picks the newest one holding state.
type DurableStore = storage.Store

// DurableLog is one group incarnation's durable delivery-stream suffix: a
// segmented, CRC-framed write-ahead log of applied commands plus the
// latest state snapshot, both cut at a LogPos.
type DurableLog = storage.Log

// DurableEntry is one WAL record: the command bytes applied at Pos.
type DurableEntry = storage.Entry

// RecoveredState is what a DurableLog found on disk: the latest valid
// snapshot, the replay tail above it, and how many torn or corrupt
// records were truncated.
type RecoveredState = storage.Recovered

// StoreOptions configures OpenStore.
type StoreOptions = storage.Options

// StoreMeta is the data directory's sidecar: the last group this process
// served in and its membership — the peers a recovered process announces
// itself to.
type StoreMeta = storage.Meta

// FsyncPolicy selects when WAL appends are forced to stable media.
type FsyncPolicy = storage.FsyncPolicy

// Fsync policies: Always means an acknowledged write is on stable media
// before the ack; Interval amortises the fsync over a time window; Never
// leaves flushing to the OS.
const (
	FsyncAlways   = storage.FsyncAlways
	FsyncInterval = storage.FsyncInterval
	FsyncNever    = storage.FsyncNever
)

// ParseFsync parses "always" (the default for ""), "interval" or "never".
func ParseFsync(s string) (FsyncPolicy, error) { return storage.ParseFsync(s) }

// OpenStore creates (or reopens) a data directory.
func OpenStore(opts StoreOptions) (*DurableStore, error) { return storage.Open(opts) }

// WithDurableLog attaches a write-ahead log to the replica: every applied
// command is appended — and committed per the log's fsync policy — before
// any waiter observes the apply, so under FsyncAlways an acknowledged
// write is durable. The replica cuts a storage snapshot whenever a state
// transfer or reconciliation completes and every WithSnapshotEvery
// applies. The caller owns the log's lifecycle.
func WithDurableLog(l *DurableLog) ReplicaOption { return rsm.WithLog(l) }

// WithSnapshotEvery cuts an on-disk snapshot every n applied entries
// (0: only at transfer/reconcile completion), bounding recovery replay
// and letting old WAL segments be collected.
func WithSnapshotEvery(n int) ReplicaOption { return rsm.WithSnapshotEvery(n) }

// WithAppliedBase offsets the apply counts recorded in storage snapshots
// by n — the count the state machine already carried when the replica
// attached (a recovered process passes what it restored and replayed),
// keeping revision counters comparable across members after recovery.
func WithAppliedBase(n uint64) ReplicaOption { return rsm.WithAppliedBase(n) }

// Probe announces this process to peers with a null message tagged with
// group g. A restarted process is invisible to the heal machinery until
// it speaks — it removed nobody, so no survivor is probing it in return —
// and Probe is how it makes its former partners' exclusion detectors fire
// (EventHealDetected), which pulls it into the merged successor group the
// survivors then form. Call it with the recovered group and membership
// from the StoreMeta sidecar, periodically, until invited.
func (p *Process) Probe(g GroupID, peers []ProcessID) error {
	return p.n.Probe(g, peers)
}
