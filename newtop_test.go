package newtop_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"newtop"
)

func startTrio(t *testing.T, net *newtop.Network) []*newtop.Process {
	t.Helper()
	var procs []*newtop.Process
	for i := 1; i <= 3; i++ {
		p, err := newtop.Start(newtop.Config{
			Self:    newtop.ProcessID(i),
			Network: net,
			Omega:   10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			_ = p.Close()
		}
		net.Close()
	})
	return procs
}

func TestPublicAPITotalOrder(t *testing.T) {
	net := newtop.NewNetwork(newtop.WithSeed(1))
	procs := startTrio(t, net)
	members := []newtop.ProcessID{1, 2, 3}
	for _, p := range procs {
		if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range procs {
		if err := p.Submit(1, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var ref []string
	for _, p := range procs {
		var got []string
		for k := 0; k < 3; k++ {
			select {
			case d := <-p.Deliveries():
				got = append(got, string(d.Payload))
			case <-time.After(10 * time.Second):
				t.Fatalf("%v: timed out", p.Self())
			}
		}
		if ref == nil {
			ref = got
			continue
		}
		for k := range got {
			if got[k] != ref[k] {
				t.Fatalf("order diverges: %v vs %v", got, ref)
			}
		}
	}
}

// TestPublicAPIRingDissemination drives the ring payload path through the
// full node runtime: five processes with a ring threshold, payloads above
// it riding the view ring (relay hop by hop) and below it going direct.
// Every member must deliver every payload bit-intact in the same total
// order, including payloads submitted after a member leaves and the ring
// re-forms over the shrunken view.
func TestPublicAPIRingDissemination(t *testing.T) {
	net := newtop.NewNetwork(newtop.WithSeed(11))
	members := []newtop.ProcessID{1, 2, 3, 4, 5}
	var procs []*newtop.Process
	for _, id := range members {
		p, err := newtop.Start(newtop.Config{
			Self: id, Network: net, Omega: 10 * time.Millisecond,
			RingThreshold: 2048,
		})
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			_ = p.Close()
		}
		net.Close()
	})
	for _, p := range procs {
		if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			t.Fatal(err)
		}
	}

	// Large payloads ride the ring, the small one goes direct; both must
	// interleave into one agreed order.
	mk := func(tag byte, size int) []byte {
		b := make([]byte, size)
		for i := range b {
			b[i] = byte(int(tag) + i*13)
		}
		return b
	}
	payloads := [][]byte{mk('a', 16<<10), mk('b', 100), mk('c', 48<<10), mk('d', 4<<10)}
	for i, pl := range payloads {
		if err := procs[i%2].Submit(1, pl); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(p *newtop.Process, n int) [][]byte {
		var got [][]byte
		for len(got) < n {
			select {
			case d := <-p.Deliveries():
				got = append(got, d.Payload)
			case <-time.After(15 * time.Second):
				t.Fatalf("%v: delivered %d/%d before timeout", p.Self(), len(got), n)
			}
		}
		return got
	}
	ref := collect(procs[0], len(payloads))
	for _, p := range procs[1:] {
		got := collect(p, len(payloads))
		for k := range got {
			if !bytes.Equal(got[k], ref[k]) {
				t.Fatalf("%v: delivery %d diverges (%d vs %d bytes)", p.Self(), k, len(got[k]), len(ref[k]))
			}
		}
	}
	for _, pl := range payloads {
		found := false
		for _, d := range ref {
			if bytes.Equal(d, pl) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("a %d-byte payload was lost or corrupted", len(pl))
		}
	}

	// P5 leaves: the ring re-forms over {1..4}; a fresh large payload must
	// still disseminate to every survivor.
	if err := procs[4].Close(); err != nil {
		t.Fatal(err)
	}
	procs = procs[:4]
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("view never shrank after P5 left")
		}
		v, err := procs[0].View(1)
		if err == nil && len(v.Members) == 4 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	late := mk('e', 32<<10)
	if err := procs[0].Submit(1, late); err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		got := collect(p, 1)
		if !bytes.Equal(got[0], late) {
			t.Fatalf("%v: post-shrink ring payload corrupted (%d bytes)", p.Self(), len(got[0]))
		}
	}
}

func TestPublicAPIConfigValidation(t *testing.T) {
	if _, err := newtop.Start(newtop.Config{Self: 0, Network: newtop.NewNetwork()}); err == nil {
		t.Error("zero Self accepted")
	}
	if _, err := newtop.Start(newtop.Config{Self: 1}); err == nil {
		t.Error("missing transport accepted")
	}
	if _, err := newtop.Start(newtop.Config{Self: 1, Network: newtop.NewNetwork(), ListenAddr: "x"}); err == nil {
		t.Error("double transport accepted")
	}
}

func TestPublicAPIOverTCP(t *testing.T) {
	// Three processes over real TCP on loopback, with fixed ports so the
	// address book is known up front (as in a real deployment).
	addrs := map[newtop.ProcessID]string{
		1: "127.0.0.1:42311",
		2: "127.0.0.1:42312",
		3: "127.0.0.1:42313",
	}
	var procs []*newtop.Process
	for id, addr := range addrs {
		peers := make(map[newtop.ProcessID]string)
		for pid, a := range addrs {
			if pid != id {
				peers[pid] = a
			}
		}
		p, err := newtop.Start(newtop.Config{
			Self: id, ListenAddr: addr, Peers: peers, Omega: 10 * time.Millisecond,
		})
		if err != nil {
			for _, q := range procs {
				_ = q.Close()
			}
			t.Skipf("fixed port unavailable: %v", err)
		}
		procs = append(procs, p)
	}
	defer func() {
		for _, p := range procs {
			_ = p.Close()
		}
	}()

	members := []newtop.ProcessID{1, 2, 3}
	for _, p := range procs {
		if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range procs {
		if err := p.Submit(1, []byte(fmt.Sprintf("from-%v", p.Self()))); err != nil {
			t.Fatal(err)
		}
	}
	var ref []string
	for _, p := range procs {
		var got []string
		for k := 0; k < 3; k++ {
			select {
			case d := <-p.Deliveries():
				got = append(got, string(d.Payload))
			case <-time.After(15 * time.Second):
				t.Fatalf("%v: TCP delivery timed out", p.Self())
			}
		}
		if ref == nil {
			ref = got
			continue
		}
		for k := range got {
			if got[k] != ref[k] {
				t.Fatalf("TCP order diverges: %v vs %v", got, ref)
			}
		}
	}
}

// TestPublicAPIReplication walks the whole replication story through the
// public API: replicate a KV over a group, read-your-writes, then bring a
// fourth process in by forming a successor group and watch it catch up.
func TestPublicAPIReplication(t *testing.T) {
	net := newtop.NewNetwork(newtop.WithSeed(3))
	procs := startTrio(t, net)
	members := []newtop.ProcessID{1, 2, 3}

	kvs := make([]*newtop.KV, 3)
	reps := make([]*newtop.Replica, 3)
	for i, p := range procs {
		kvs[i] = newtop.NewKV()
		rep, err := newtop.Replicate(p, 1, kvs[i])
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	for _, p := range procs {
		if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 9; i++ {
		if err := reps[i%3].Propose([]byte(fmt.Sprintf("put k%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := reps[1].Read(func(newtop.StateMachine) {
		if v, ok := kvs[1].Get("k7"); !ok || v != "v7" {
			t.Errorf("read-your-writes: k7 = %q %v", v, ok)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		if err := rep.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	if d0, d1 := reps[0].Digest(), reps[1].Digest(); d0 != d1 {
		t.Fatalf("replicas diverge: %016x vs %016x", d0, d1)
	}

	// P4 joins by forming g2 = {1,2,3,4} and catches up via state transfer.
	p4, err := newtop.Start(newtop.Config{Self: 4, Network: net, Omega: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p4.Close() }()
	// The chunk size is a streamer-side knob: set it on the incumbents
	// (tiny here, to force a genuinely chunked stream).
	for i, p := range procs {
		if _, err := newtop.Replicate(p, 2, kvs[i], newtop.WithSnapshotChunkSize(16)); err != nil {
			t.Fatal(err)
		}
	}
	kv4 := newtop.NewKV()
	rep4, err := newtop.Replicate(p4, 2, kv4, newtop.CatchUp())
	if err != nil {
		t.Fatal(err)
	}
	if err := p4.CreateGroup(2, newtop.Symmetric, []newtop.ProcessID{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-rep4.Ready():
	case <-time.After(30 * time.Second):
		t.Fatalf("catch-up stalled: %+v", rep4.Stats())
	}
	if v, ok := kv4.Get("k0"); !ok || v != "v0" {
		t.Fatalf("transferred state missing: k0 = %q %v", v, ok)
	}
	if st := rep4.Stats(); st.SnapshotsIn != 1 || st.ChunksIn < 2 {
		t.Fatalf("expected a chunked snapshot install: %+v", st)
	}
	// The transfer event surfaces on the public Events channel.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-p4.Events():
			if ev.Kind == newtop.EventStateTransferred {
				if ev.Group != 2 {
					t.Fatalf("transfer event for wrong group: %+v", ev)
				}
				return
			}
		case <-deadline:
			t.Fatal("EventStateTransferred never surfaced")
		}
	}
}

// TestPublicAPIReconcile walks the whole detect→repair loop through the
// public API: a replicated group partitions and diverges, the heal is
// detected by probes (EventHealDetected), the survivors form a merged
// successor group and Reconcile converges every replica to the identical
// merged state (EventReconciled).
func TestPublicAPIReconcile(t *testing.T) {
	net := newtop.NewNetwork(newtop.WithSeed(11))
	members := []newtop.ProcessID{1, 2, 3, 4}
	var procs []*newtop.Process
	for _, id := range members {
		p, err := newtop.Start(newtop.Config{
			Self: id, Network: net,
			Omega:             10 * time.Millisecond,
			HealProbeInterval: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			_ = p.Close()
		}
		net.Close()
	})
	// Events channels must drain or the heal/reconcile signals back up.
	healCh := make(chan newtop.ProcessID, 64)
	reconCh := make(chan newtop.ProcessID, 64)
	for _, p := range procs {
		p := p
		go func() {
			for ev := range p.Events() {
				switch ev.Kind {
				case newtop.EventHealDetected:
					healCh <- p.Self()
				case newtop.EventReconciled:
					if ev.Group == 2 {
						reconCh <- p.Self()
					}
				}
			}
		}()
	}

	kvs := make(map[newtop.ProcessID]*newtop.KV)
	reps := make(map[newtop.ProcessID]*newtop.Replica)
	for i, p := range procs {
		kvs[p.Self()] = newtop.NewKV()
		rep, err := newtop.Replicate(p, 1, kvs[p.Self()])
		if err != nil {
			t.Fatal(err)
		}
		reps[p.Self()] = rep
		_ = i
	}
	for _, p := range procs {
		if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if err := reps[members[i%4]].Propose([]byte(fmt.Sprintf("put base:%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range members {
		if err := reps[id].Barrier(); err != nil {
			t.Fatal(err)
		}
	}

	// Partition {1,2} | {3,4}; both sides keep writing, then quiesce.
	net.Partition([]newtop.ProcessID{1, 2}, []newtop.ProcessID{3, 4})
	waitView := func(p *newtop.Process, excluded ...newtop.ProcessID) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			v, err := p.View(1)
			ok := err == nil
			for _, e := range excluded {
				if err == nil && v.Contains(e) {
					ok = false
				}
			}
			if ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("P%d: view never excluded %v (last %v)", p.Self(), excluded, v)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitView(procs[0], 3, 4)
	waitView(procs[2], 1, 2)
	if err := reps[1].Propose([]byte("put conflict A")); err != nil {
		t.Fatal(err)
	}
	if err := reps[1].Propose([]byte("put only-a yes")); err != nil {
		t.Fatal(err)
	}
	if err := reps[3].Propose([]byte("put only-b yes")); err != nil {
		t.Fatal(err)
	}
	if err := reps[3].Propose([]byte("put conflict B")); err != nil {
		t.Fatal(err)
	}
	for _, id := range members {
		if err := reps[id].Barrier(); err != nil { // quiesce g1: the cut-over discipline
			t.Fatal(err)
		}
	}
	if dA, dB := reps[1].Digest(), reps[3].Digest(); dA == dB {
		t.Fatal("sides did not diverge")
	}

	// Heal: probes from both sides cross the restored links.
	net.Heal()
	select {
	case <-healCh:
	case <-time.After(30 * time.Second):
		t.Fatal("EventHealDetected never fired after the heal")
	}

	// Merged successor group g2 over all four, reconciled under LWW.
	// Side tags: the old subgroup's lowest member.
	recs := make(map[newtop.ProcessID]*newtop.Replica)
	for _, p := range procs {
		side := uint64(1)
		if p.Self() >= 3 {
			side = 3
		}
		rec, err := newtop.Reconcile(p, 2, kvs[p.Self()], newtop.LastWriterWins(), members,
			newtop.WithPartitionSide(side))
		if err != nil {
			t.Fatal(err)
		}
		recs[p.Self()] = rec
	}
	if err := procs[0].CreateGroup(2, newtop.Symmetric, members); err != nil {
		t.Fatal(err)
	}
	for _, id := range members {
		select {
		case <-recs[id].Ready():
		case <-time.After(60 * time.Second):
			t.Fatalf("P%d reconciliation stalled: %+v", id, recs[id].Stats())
		}
	}
	reconciled := map[newtop.ProcessID]bool{}
	for len(reconciled) < 4 {
		select {
		case id := <-reconCh:
			reconciled[id] = true
		case <-time.After(30 * time.Second):
			t.Fatalf("EventReconciled missing: got %v", reconciled)
		}
	}

	// Every replica converged to the same merged state: both sides'
	// writes survive, the conflict resolved identically everywhere.
	d0 := recs[1].Digest()
	for _, id := range members[1:] {
		if d := recs[id].Digest(); d != d0 {
			t.Fatalf("post-merge digest of P%d = %016x, want %016x", id, d, d0)
		}
	}
	for _, id := range members {
		kv := kvs[id]
		if v, ok := kv.Get("only-a"); !ok || v != "yes" {
			t.Fatalf("P%d lost side A's write: %q %v", id, v, ok)
		}
		if v, ok := kv.Get("only-b"); !ok || v != "yes" {
			t.Fatalf("P%d lost side B's write: %q %v", id, v, ok)
		}
		if v, ok := kv.Get("conflict"); !ok || (v != "A" && v != "B") {
			t.Fatalf("P%d conflict = %q %v", id, v, ok)
		}
		if v, _ := kv.Get("conflict"); v != kvsGet(kvs[1], "conflict") {
			t.Fatalf("P%d conflict resolution differs", id)
		}
	}
	// Writes keep flowing in the merged group.
	if err := recs[2].Propose([]byte("put after-merge yes")); err != nil {
		t.Fatal(err)
	}
	if err := recs[2].Barrier(); err != nil {
		t.Fatal(err)
	}
	if v, _ := kvs[2].Get("after-merge"); v != "yes" {
		t.Fatal("post-merge write lost")
	}
}

func kvsGet(kv *newtop.KV, k string) string {
	v, _ := kv.Get(k)
	return v
}

func TestPublicAPIPartitionControls(t *testing.T) {
	net := newtop.NewNetwork(newtop.WithSeed(7), newtop.WithLatency(time.Millisecond, 2*time.Millisecond))
	procs := startTrio(t, net)
	_ = procs
	if !net.Connected(1, 2) {
		t.Error("fresh network should be connected")
	}
	net.Disconnect(1, 2)
	if net.Connected(1, 2) {
		t.Error("Disconnect had no effect")
	}
	net.Reconnect(1, 2)
	if !net.Connected(1, 2) {
		t.Error("Reconnect had no effect")
	}
	net.Partition([]newtop.ProcessID{1}, []newtop.ProcessID{2, 3})
	if net.Connected(1, 3) || !net.Connected(2, 3) {
		t.Error("Partition wrong")
	}
	net.Heal()
	if !net.Connected(1, 3) {
		t.Error("Heal wrong")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	net := newtop.NewNetwork()
	procs := startTrio(t, net)
	p := procs[0]
	if err := p.Submit(42, []byte("x")); !errors.Is(err, newtop.ErrUnknownGroup) {
		t.Errorf("err = %v, want ErrUnknownGroup", err)
	}
	members := []newtop.ProcessID{1, 2, 3}
	if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
		t.Fatal(err)
	}
	if err := p.BootstrapGroup(1, newtop.Symmetric, members); !errors.Is(err, newtop.ErrGroupExists) {
		t.Errorf("err = %v, want ErrGroupExists", err)
	}
	if err := p.LeaveGroup(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(1, []byte("x")); !errors.Is(err, newtop.ErrLeftGroup) {
		t.Errorf("err = %v, want ErrLeftGroup", err)
	}
}
