package newtop_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"newtop"
)

func startTrio(t *testing.T, net *newtop.Network) []*newtop.Process {
	t.Helper()
	var procs []*newtop.Process
	for i := 1; i <= 3; i++ {
		p, err := newtop.Start(newtop.Config{
			Self:    newtop.ProcessID(i),
			Network: net,
			Omega:   10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			_ = p.Close()
		}
		net.Close()
	})
	return procs
}

func TestPublicAPITotalOrder(t *testing.T) {
	net := newtop.NewNetwork(newtop.WithSeed(1))
	procs := startTrio(t, net)
	members := []newtop.ProcessID{1, 2, 3}
	for _, p := range procs {
		if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range procs {
		if err := p.Submit(1, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var ref []string
	for _, p := range procs {
		var got []string
		for k := 0; k < 3; k++ {
			select {
			case d := <-p.Deliveries():
				got = append(got, string(d.Payload))
			case <-time.After(10 * time.Second):
				t.Fatalf("%v: timed out", p.Self())
			}
		}
		if ref == nil {
			ref = got
			continue
		}
		for k := range got {
			if got[k] != ref[k] {
				t.Fatalf("order diverges: %v vs %v", got, ref)
			}
		}
	}
}

func TestPublicAPIConfigValidation(t *testing.T) {
	if _, err := newtop.Start(newtop.Config{Self: 0, Network: newtop.NewNetwork()}); err == nil {
		t.Error("zero Self accepted")
	}
	if _, err := newtop.Start(newtop.Config{Self: 1}); err == nil {
		t.Error("missing transport accepted")
	}
	if _, err := newtop.Start(newtop.Config{Self: 1, Network: newtop.NewNetwork(), ListenAddr: "x"}); err == nil {
		t.Error("double transport accepted")
	}
}

func TestPublicAPIOverTCP(t *testing.T) {
	// Three processes over real TCP on loopback, with fixed ports so the
	// address book is known up front (as in a real deployment).
	addrs := map[newtop.ProcessID]string{
		1: "127.0.0.1:42311",
		2: "127.0.0.1:42312",
		3: "127.0.0.1:42313",
	}
	var procs []*newtop.Process
	for id, addr := range addrs {
		peers := make(map[newtop.ProcessID]string)
		for pid, a := range addrs {
			if pid != id {
				peers[pid] = a
			}
		}
		p, err := newtop.Start(newtop.Config{
			Self: id, ListenAddr: addr, Peers: peers, Omega: 10 * time.Millisecond,
		})
		if err != nil {
			for _, q := range procs {
				_ = q.Close()
			}
			t.Skipf("fixed port unavailable: %v", err)
		}
		procs = append(procs, p)
	}
	defer func() {
		for _, p := range procs {
			_ = p.Close()
		}
	}()

	members := []newtop.ProcessID{1, 2, 3}
	for _, p := range procs {
		if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range procs {
		if err := p.Submit(1, []byte(fmt.Sprintf("from-%v", p.Self()))); err != nil {
			t.Fatal(err)
		}
	}
	var ref []string
	for _, p := range procs {
		var got []string
		for k := 0; k < 3; k++ {
			select {
			case d := <-p.Deliveries():
				got = append(got, string(d.Payload))
			case <-time.After(15 * time.Second):
				t.Fatalf("%v: TCP delivery timed out", p.Self())
			}
		}
		if ref == nil {
			ref = got
			continue
		}
		for k := range got {
			if got[k] != ref[k] {
				t.Fatalf("TCP order diverges: %v vs %v", got, ref)
			}
		}
	}
}

// TestPublicAPIReplication walks the whole replication story through the
// public API: replicate a KV over a group, read-your-writes, then bring a
// fourth process in by forming a successor group and watch it catch up.
func TestPublicAPIReplication(t *testing.T) {
	net := newtop.NewNetwork(newtop.WithSeed(3))
	procs := startTrio(t, net)
	members := []newtop.ProcessID{1, 2, 3}

	kvs := make([]*newtop.KV, 3)
	reps := make([]*newtop.Replica, 3)
	for i, p := range procs {
		kvs[i] = newtop.NewKV()
		rep, err := newtop.Replicate(p, 1, kvs[i])
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	for _, p := range procs {
		if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 9; i++ {
		if err := reps[i%3].Propose([]byte(fmt.Sprintf("put k%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := reps[1].Read(func(newtop.StateMachine) {
		if v, ok := kvs[1].Get("k7"); !ok || v != "v7" {
			t.Errorf("read-your-writes: k7 = %q %v", v, ok)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		if err := rep.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	if d0, d1 := reps[0].Digest(), reps[1].Digest(); d0 != d1 {
		t.Fatalf("replicas diverge: %016x vs %016x", d0, d1)
	}

	// P4 joins by forming g2 = {1,2,3,4} and catches up via state transfer.
	p4, err := newtop.Start(newtop.Config{Self: 4, Network: net, Omega: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p4.Close() }()
	// The chunk size is a streamer-side knob: set it on the incumbents
	// (tiny here, to force a genuinely chunked stream).
	for i, p := range procs {
		if _, err := newtop.Replicate(p, 2, kvs[i], newtop.WithSnapshotChunkSize(16)); err != nil {
			t.Fatal(err)
		}
	}
	kv4 := newtop.NewKV()
	rep4, err := newtop.Replicate(p4, 2, kv4, newtop.CatchUp())
	if err != nil {
		t.Fatal(err)
	}
	if err := p4.CreateGroup(2, newtop.Symmetric, []newtop.ProcessID{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-rep4.Ready():
	case <-time.After(30 * time.Second):
		t.Fatalf("catch-up stalled: %+v", rep4.Stats())
	}
	if v, ok := kv4.Get("k0"); !ok || v != "v0" {
		t.Fatalf("transferred state missing: k0 = %q %v", v, ok)
	}
	if st := rep4.Stats(); st.SnapshotsIn != 1 || st.ChunksIn < 2 {
		t.Fatalf("expected a chunked snapshot install: %+v", st)
	}
	// The transfer event surfaces on the public Events channel.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-p4.Events():
			if ev.Kind == newtop.EventStateTransferred {
				if ev.Group != 2 {
					t.Fatalf("transfer event for wrong group: %+v", ev)
				}
				return
			}
		case <-deadline:
			t.Fatal("EventStateTransferred never surfaced")
		}
	}
}

func TestPublicAPIPartitionControls(t *testing.T) {
	net := newtop.NewNetwork(newtop.WithSeed(7), newtop.WithLatency(time.Millisecond, 2*time.Millisecond))
	procs := startTrio(t, net)
	_ = procs
	if !net.Connected(1, 2) {
		t.Error("fresh network should be connected")
	}
	net.Disconnect(1, 2)
	if net.Connected(1, 2) {
		t.Error("Disconnect had no effect")
	}
	net.Reconnect(1, 2)
	if !net.Connected(1, 2) {
		t.Error("Reconnect had no effect")
	}
	net.Partition([]newtop.ProcessID{1}, []newtop.ProcessID{2, 3})
	if net.Connected(1, 3) || !net.Connected(2, 3) {
		t.Error("Partition wrong")
	}
	net.Heal()
	if !net.Connected(1, 3) {
		t.Error("Heal wrong")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	net := newtop.NewNetwork()
	procs := startTrio(t, net)
	p := procs[0]
	if err := p.Submit(42, []byte("x")); !errors.Is(err, newtop.ErrUnknownGroup) {
		t.Errorf("err = %v, want ErrUnknownGroup", err)
	}
	members := []newtop.ProcessID{1, 2, 3}
	if err := p.BootstrapGroup(1, newtop.Symmetric, members); err != nil {
		t.Fatal(err)
	}
	if err := p.BootstrapGroup(1, newtop.Symmetric, members); !errors.Is(err, newtop.ErrGroupExists) {
		t.Errorf("err = %v, want ErrGroupExists", err)
	}
	if err := p.LeaveGroup(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(1, []byte("x")); !errors.Is(err, newtop.ErrLeftGroup) {
		t.Errorf("err = %v, want ErrLeftGroup", err)
	}
}
