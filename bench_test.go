// Benchmarks regenerating every figure, worked example and comparative
// claim of the Newtop paper (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured). Each benchmark runs the
// corresponding harness experiment — a deterministic virtual-time
// simulation — and reports the headline metric via b.ReportMetric, so the
// series shape is visible straight from `go test -bench`.
//
// Full tables (all rows and columns) are printed by cmd/newtop-bench.
package newtop_test

import (
	"strconv"
	"testing"

	"newtop/internal/harness"
)

func atof(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// BenchmarkF1Migration regenerates fig. 1: online server migration via
// overlapping groups. Metric: the largest service gap (ms) observed at the
// surviving replica while the migration ran.
func BenchmarkF1Migration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.F1Migration()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(atof(b, tab.Rows[1][1]), "max-gap-ms")
	}
}

// BenchmarkF2CausalChain regenerates fig. 2 (same scenario as X2): the
// causal chain across four overlapping groups under a permanent
// partition. Metric: how long MD5' made the final delivery wait for the
// view change.
func BenchmarkF2CausalChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.X2CausalChain()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(atof(b, tab.Rows[0][1]), "m4-wait-ms")
	}
}

// BenchmarkF3AtomicVsTotal regenerates fig. 3's layering claim: atomic
// delivery bypasses the ordering gate. Metric: latency ratio
// total-order/atomic (should exceed 1).
func BenchmarkF3AtomicVsTotal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.F3AtomicVsTotal()
		if err != nil {
			b.Fatal(err)
		}
		atomic := atof(b, tab.Rows[0][1])
		total := atof(b, tab.Rows[1][1])
		b.ReportMetric(total/atomic, "total/atomic-lat")
	}
}

// BenchmarkX1JointFailure regenerates §5 example 1. Metric: orphan
// deliveries (must be 0).
func BenchmarkX1JointFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.X1JointFailure()
		if err != nil {
			b.Fatal(err)
		}
		if tab.Rows[1][1] != "0 (want 0)" {
			b.Fatalf("orphans: %s", tab.Rows[1][1])
		}
		b.ReportMetric(0, "orphans")
	}
}

// BenchmarkX2PartitionExclusion regenerates §5 example 2. Metric: time
// from partition to the MD5'-gated delivery.
func BenchmarkX2PartitionExclusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.X2CausalChain()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(atof(b, tab.Rows[1][1]), "partition-to-dlv-ms")
	}
}

// BenchmarkX3ConcurrentViews regenerates §5 example 3. Metric:
// stabilisation time of the concurrent subgroup views (plain variant).
func BenchmarkX3ConcurrentViews(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.X3ConcurrentViews()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(atof(b, tab.Rows[0][4]), "stabilise-ms")
	}
}

// BenchmarkC1HeaderOverhead regenerates the §6 header-size comparison.
// Metric: vector-clock/newtop header ratio at n=128.
func BenchmarkC1HeaderOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.C1HeaderOverhead([]int{3, 8, 16, 32, 64, 128})
		last := tab.Rows[len(tab.Rows)-1]
		b.ReportMetric(atof(b, last[4]), "vc/newtop@128")
	}
}

// BenchmarkC2SymVsAsym regenerates the §4.1-vs-§4.2 comparison. Metric:
// asymmetric/symmetric message-count ratio at n=9 (asymmetric wins as n
// grows for sparse senders).
func BenchmarkC2SymVsAsym(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.C2SymVsAsym([]int{3, 5, 9})
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		sym, asym := atof(b, last[1]), atof(b, last[2])
		b.ReportMetric(asym/sym, "asym/sym-msgs@9")
	}
}

// BenchmarkC3SendBlocking regenerates the §4.3/§7 blocking claim. Metric:
// blocked sends in the symmetric-only run (must be 0).
func BenchmarkC3SendBlocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.C3SendBlocking()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(atof(b, tab.Rows[0][1]), "sym-only-blocked")
		// The 50% row interleaves groups, which is where the §4.3 rule
		// bites; the 100% row is single-group asymmetric, which never
		// blocks (the rule only spans *different* groups).
		b.ReportMetric(atof(b, tab.Rows[2][1]), "mixed50-blocked")
	}
}

// BenchmarkC4TimeSilence regenerates the §4.1 null-overhead sweep.
// Metric: nulls per data message in the worst cell (largest spacing,
// smallest ω).
func BenchmarkC4TimeSilence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.C4TimeSilence()
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, row := range tab.Rows {
			if v := atof(b, row[2]); v > worst {
				worst = v
			}
		}
		b.ReportMetric(worst, "max-nulls/data")
	}
}

// BenchmarkC5Formation regenerates the §5.3 formation-cost sweep. Metric:
// control messages for a 9-member formation.
func BenchmarkC5Formation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.C5Formation([]int{3, 5, 9})
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		b.ReportMetric(atof(b, last[1]), "ctrl-msgs@9")
	}
}

// BenchmarkC6MembershipAgreement regenerates the §5.2 crash-to-view
// latency sweep. Metric: detect+agree latency (ms) at n=9.
func BenchmarkC6MembershipAgreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.C6Membership([]int{3, 5, 9})
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		b.ReportMetric(atof(b, last[1]), "detect+agree-ms@9")
	}
}

// BenchmarkC7VsPropagationGraph regenerates the §6 comparison against
// Garcia-Molina/Spauster. Metric: the propagation-graph master's load on
// an 8-group chain (Newtop has no such hot spot).
func BenchmarkC7VsPropagationGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.C7VsPropagationGraph([]int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		b.ReportMetric(atof(b, last[4]), "pg-master-load@8")
		b.ReportMetric(atof(b, last[2]), "nt-max-send@8")
	}
}

// BenchmarkC8CyclicGroups regenerates the §6 cyclic-overlap claim.
// Metric: mean delivery latency (ms) on a 6-group ring; ordering checked.
func BenchmarkC8CyclicGroups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.C8CyclicGroups([]int{3, 6})
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		if last[4] != "true" {
			b.Fatal("ordering violated on cyclic structure")
		}
		b.ReportMetric(atof(b, last[2]), "lat-ms@ring6")
	}
}

// BenchmarkC9FlowControl regenerates the §7/[11] flow-control behaviour.
// Metric: burst completion time (ms) with window 4 vs unlimited.
func BenchmarkC9FlowControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.C9FlowControl()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(atof(b, tab.Rows[0][2]), "nolimit-ms")
		b.ReportMetric(atof(b, tab.Rows[1][2]), "window4-ms")
	}
}
