package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"newtop/internal/clientproto"
	"newtop/internal/types"
)

// fakeDaemon speaks the client protocol with a scripted handler, recording
// the ops it saw.
type fakeDaemon struct {
	t  *testing.T
	ln net.Listener

	mu     sync.Mutex
	ops    []byte
	conns  []net.Conn
	handle func(req clientproto.Request, conn net.Conn) *clientproto.Response // nil response = close conn
}

func newFakeDaemon(t *testing.T, handle func(req clientproto.Request, conn net.Conn) *clientproto.Response) *fakeDaemon {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeDaemon{t: t, ln: ln, handle: handle}
	go f.serve()
	t.Cleanup(func() { _ = ln.Close() })
	return f
}

func (f *fakeDaemon) addr() string { return f.ln.Addr().String() }

func (f *fakeDaemon) seenOps() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.ops...)
}

// kill closes the listener and every accepted connection — a daemon death.
func (f *fakeDaemon) kill() {
	_ = f.ln.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.conns {
		_ = c.Close()
	}
}

func (f *fakeDaemon) serve() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		f.conns = append(f.conns, conn)
		f.mu.Unlock()
		go func() {
			defer func() { _ = conn.Close() }()
			br := bufio.NewReader(conn)
			var buf []byte
			for {
				body, err := clientproto.ReadFrame(br, buf)
				if err != nil {
					return
				}
				req, err := clientproto.ParseRequest(body)
				if err != nil {
					return
				}
				f.mu.Lock()
				f.ops = append(f.ops, req.Op)
				h := f.handle
				f.mu.Unlock()
				resp := h(req, conn)
				if resp == nil {
					return
				}
				if _, err := conn.Write(clientproto.AppendResponse(nil, resp)); err != nil {
					return
				}
			}
		}()
	}
}

// kvHandler is a plain in-memory store serving every request.
func kvHandler() (func(clientproto.Request, net.Conn) *clientproto.Response, *sync.Map) {
	var m sync.Map
	return func(req clientproto.Request, _ net.Conn) *clientproto.Response {
		switch req.Op {
		case clientproto.OpPut:
			m.Store(req.Key, req.Value)
			return &clientproto.Response{Status: clientproto.StOK, Found: true}
		case clientproto.OpDel:
			m.Delete(req.Key)
			return &clientproto.Response{Status: clientproto.StOK, Found: true}
		case clientproto.OpGet, clientproto.OpBarrierGet:
			if v, ok := m.Load(req.Key); ok {
				return &clientproto.Response{Status: clientproto.StOK, Found: true, Value: v.(string)}
			}
			return &clientproto.Response{Status: clientproto.StOK}
		case clientproto.OpStatus:
			return &clientproto.Response{Status: clientproto.StStatus, Self: 1, Group: 1, Ready: true}
		}
		return &clientproto.Response{Status: clientproto.StErr, Err: "bad op"}
	}, &m
}

func testConfig() Config {
	return Config{
		DialTimeout:     time.Second,
		OpTimeout:       2 * time.Second,
		FailoverTimeout: 5 * time.Second,
		RetryWait:       5 * time.Millisecond,
	}
}

func TestBasicOps(t *testing.T) {
	h, _ := kvHandler()
	d := newFakeDaemon(t, h)
	c, err := testConfig().Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.Put("user", "alice"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("user")
	if err != nil || !ok || v != "alice" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := c.Get("absent"); ok {
		t.Error("absent key found")
	}
	if err := c.Del("user"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("user"); ok {
		t.Error("deleted key still found")
	}
	st, err := c.Status()
	if err != nil || !st.Ready || st.Self != 1 {
		t.Fatalf("Status = %+v %v", st, err)
	}
	if err := c.Put("bad key", "x"); err == nil {
		t.Error("key with space accepted")
	}
	if got := c.Pinned(); got != d.addr() {
		t.Errorf("Pinned = %q, want %q", got, d.addr())
	}
}

func TestRedirectFollowed(t *testing.T) {
	h, _ := kvHandler()
	serving := newFakeDaemon(t, h)
	redirecting := newFakeDaemon(t, func(clientproto.Request, net.Conn) *clientproto.Response {
		return &clientproto.Response{Status: clientproto.StNotServing, Group: 2, Addr: serving.addr()}
	})
	c, err := testConfig().Dial(redirecting.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	if got := c.Pinned(); got != serving.addr() {
		t.Errorf("pinned to %q after redirect, want %q", got, serving.addr())
	}
	if c.Stats().Redirects == 0 {
		t.Error("redirect not counted")
	}
	// The learned endpoint is remembered.
	found := false
	for _, a := range c.Endpoints() {
		if a == serving.addr() {
			found = true
		}
	}
	if !found {
		t.Error("redirect hint not learned")
	}
}

func TestRetryHonoured(t *testing.T) {
	var mu sync.Mutex
	rejects := 2
	h, _ := kvHandler()
	d := newFakeDaemon(t, func(req clientproto.Request, conn net.Conn) *clientproto.Response {
		mu.Lock()
		defer mu.Unlock()
		if rejects > 0 {
			rejects--
			return &clientproto.Response{Status: clientproto.StRetry, RetryAfter: 5 * time.Millisecond, Reason: "reconciling"}
		}
		return h(req, conn)
	})
	c, err := testConfig().Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Retries; got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
	if got := c.Pinned(); got != d.addr() {
		t.Errorf("retry moved the pin to %q", got)
	}
}

func TestFailoverUpgradesReadToBarrier(t *testing.T) {
	h, m := kvHandler()
	primary := newFakeDaemon(t, h)
	backup := newFakeDaemon(t, h)
	m.Store("k", "v") // both fakes share nothing; seed the backup's view too

	c, err := testConfig().Dial(primary.addr(), backup.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	// Kill the pinned daemon; the next read must fail over AND arrive at
	// the backup as a barrier read (read-your-writes restoration).
	primary.kill()
	v, ok, err := c.Get("k")
	if err != nil || !ok || v != "v" {
		t.Fatalf("post-failover Get = %q %v %v", v, ok, err)
	}
	ops := backup.seenOps()
	if len(ops) == 0 || ops[0] != clientproto.OpBarrierGet {
		t.Errorf("first op at backup = %v, want barrier read", ops)
	}
	if c.Stats().Failovers == 0 {
		t.Error("failover not counted")
	}
	// The fence is one-shot: a subsequent read is a plain get.
	if _, _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	ops = backup.seenOps()
	if ops[len(ops)-1] != clientproto.OpGet {
		t.Errorf("second read op = %d, want plain get", ops[len(ops)-1])
	}
}

func TestWriteTornConnectionIsUnacked(t *testing.T) {
	h, _ := kvHandler()
	done := make(chan struct{}, 4)
	d := newFakeDaemon(t, func(req clientproto.Request, conn net.Conn) *clientproto.Response {
		if req.Op == clientproto.OpPut {
			done <- struct{}{}
			return nil // close without responding: the torn-ack case
		}
		return h(req, conn)
	})
	c, err := testConfig().Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	err = c.Put("k", "v")
	if !errors.Is(err, ErrUnacked) {
		t.Fatalf("Put after torn connection = %v, want ErrUnacked", err)
	}
	<-done
	if c.Stats().Unacked != 1 {
		t.Errorf("Unacked = %d, want 1", c.Stats().Unacked)
	}
	// The session recovers for subsequent (idempotent) traffic.
	if _, _, err := c.Get("k"); err != nil {
		t.Fatalf("Get after unacked write: %v", err)
	}
}

func TestAllEndpointsDownEventually(t *testing.T) {
	h, _ := kvHandler()
	d := newFakeDaemon(t, h)
	cfg := testConfig()
	cfg.FailoverTimeout = 300 * time.Millisecond
	cfg.DialTimeout = 100 * time.Millisecond
	c, err := cfg.Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	d.kill()
	if _, _, err := c.Get("k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Get with cluster down = %v, want ErrUnavailable", err)
	}
}

func TestLearnedEndpointEvictedBootstrapKept(t *testing.T) {
	h, _ := kvHandler()
	d := newFakeDaemon(t, h)
	// Reserve an address with nothing behind it (fast refusals).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	_ = ln.Close()

	cfg := testConfig()
	cfg.DialTimeout = 200 * time.Millisecond
	c, err := cfg.Dial(d.addr(), deadAddr) // deadAddr is bootstrap: never evicted
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// Teach a learned dead address via a redirect... simpler: inject it
	// directly through the same path the redirect uses.
	c.mu.Lock()
	c.learnLocked("127.0.0.1:1", 0) // learned, nothing listens there
	c.mu.Unlock()

	// Each failover sweep dials the dead learned endpoint first (the
	// cursor points at it); after learnedEvictAfter failed dials it must
	// be forgotten. Force sweeps by dropping the pin.
	for i := 0; i < learnedEvictAfter+1; i++ {
		c.mu.Lock()
		c.dropLocked()
		c.mu.Unlock()
		if _, _, err := c.Get("k"); err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	for _, a := range c.Endpoints() {
		if a == "127.0.0.1:1" {
			t.Fatal("learned dead endpoint never evicted")
		}
	}
	// The dead BOOTSTRAP address survives the same treatment.
	found := false
	for _, a := range c.Endpoints() {
		if a == deadAddr {
			found = true
		}
	}
	if !found {
		t.Fatal("bootstrap endpoint was evicted")
	}
}

func TestMutualRedirectsDoNotSpin(t *testing.T) {
	// Two daemons that point at each other forever: the session must
	// pace its redirect loop (RetryWait per unproductive hop), not spin
	// through thousands of connections before giving up.
	var a, b *fakeDaemon
	b = newFakeDaemon(t, func(clientproto.Request, net.Conn) *clientproto.Response {
		return &clientproto.Response{Status: clientproto.StNotServing, Group: 1, Addr: a.addr()}
	})
	a = newFakeDaemon(t, func(clientproto.Request, net.Conn) *clientproto.Response {
		return &clientproto.Response{Status: clientproto.StNotServing, Group: 1, Addr: b.addr()}
	})
	cfg := testConfig()
	cfg.FailoverTimeout = 400 * time.Millisecond
	cfg.RetryWait = 50 * time.Millisecond
	c, err := cfg.Dial(a.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	_, _, err = c.Get("k")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("mutual redirects = %v, want ErrUnavailable", err)
	}
	// ~400ms budget at ≥50ms per unproductive hop (after both addresses
	// are known) bounds the hop count; without the pause this is in the
	// thousands.
	if hops := c.Stats().Redirects; hops > 20 {
		t.Errorf("session spun through %d redirects in 400ms", hops)
	}
}

func TestOversizedKeyValueRejectedClientSide(t *testing.T) {
	h, _ := kvHandler()
	d := newFakeDaemon(t, h)
	c, err := testConfig().Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	bigKey := string(make([]byte, clientproto.MaxKeyLen+1))
	if err := c.Put(bigKey, "v"); err == nil {
		t.Error("oversized key accepted (would misframe the request)")
	}
	if _, _, err := c.Get(bigKey); err == nil {
		t.Error("oversized key accepted on read")
	}
	if err := c.Put("k", string(make([]byte, clientproto.MaxValueLen+1))); err == nil {
		t.Error("oversized value accepted")
	}
	// The session is still healthy.
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
}

func TestServerUnknownOutcomeSurfacesAsUnacked(t *testing.T) {
	var mu sync.Mutex
	ambiguous := true
	h, _ := kvHandler()
	d := newFakeDaemon(t, func(req clientproto.Request, conn net.Conn) *clientproto.Response {
		mu.Lock()
		defer mu.Unlock()
		if req.Op == clientproto.OpPut && ambiguous {
			ambiguous = false
			return &clientproto.Response{Status: clientproto.StUnknown, Err: "write proposed but not confirmed"}
		}
		return h(req, conn)
	})
	c, err := testConfig().Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// The ambiguous server answer must NOT be auto-resent: exactly one
	// Put reaches the server, and the caller gets ErrUnacked.
	err = c.Put("k", "v")
	if !errors.Is(err, ErrUnacked) {
		t.Fatalf("Put on StUnknown = %v, want ErrUnacked", err)
	}
	puts := 0
	for _, op := range d.seenOps() {
		if op == clientproto.OpPut {
			puts++
		}
	}
	if puts != 1 {
		t.Fatalf("server saw %d puts, want exactly 1 (no auto-resend)", puts)
	}
	// The caller's explicit resend succeeds on the same session.
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
}

func TestCloseDuringRetryBackoffReturnsPromptly(t *testing.T) {
	// A daemon stuck mid-reconcile answers RETRY with a long hint; the
	// session honours it by sleeping. Close during that backoff must
	// return the in-flight op immediately — the old time.Sleep held the
	// op (and anyone waiting on the op lock) for the full hint.
	d := newFakeDaemon(t, func(clientproto.Request, net.Conn) *clientproto.Response {
		return &clientproto.Response{Status: clientproto.StRetry, RetryAfter: 2 * time.Second, Reason: "reconciling"}
	})
	cfg := testConfig()
	cfg.FailoverTimeout = 30 * time.Second
	cfg.MaxRetryWait = 10 * time.Second // out of the way: the test is about the sleep, not the clamp
	c, err := cfg.Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		err := c.Put("k", "v")
		got <- err
	}()
	// Let the Put receive its first RETRY and enter the backoff sleep.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Put never reached its first RETRY")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Put interrupted mid-backoff = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Put still blocked 1s after Close: backoff not interruptible")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("backoff released %v after Close, want prompt", elapsed)
	}
}

func TestCloseDuringDialSweepBackoffReturnsPromptly(t *testing.T) {
	// All endpoints down: the session pauses RetryWait between endpoint
	// sweeps. Close during that pause must interrupt it too.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	h, _ := kvHandler()
	d := newFakeDaemon(t, h)
	cfg := testConfig()
	cfg.RetryWait = 5 * time.Second
	cfg.FailoverTimeout = 60 * time.Second
	cfg.DialTimeout = 100 * time.Millisecond
	c, err := cfg.Dial(d.addr(), deadAddr)
	if err != nil {
		t.Fatal(err)
	}
	d.kill()
	_ = ln.Close()
	got := make(chan error, 1)
	go func() {
		_, _, err := c.Get("k")
		got <- err
	}()
	time.Sleep(300 * time.Millisecond) // let the Get exhaust the sweep and enter the pause
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Get interrupted mid-sweep-pause = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Get still blocked 1s after Close: sweep pause not interruptible")
	}
}

func TestRetryAfterHintClampedAgainstAdversarialDaemon(t *testing.T) {
	// An adversarial daemon answers every write with RETRY and a
	// minutes-long hint. Unclamped, three such responses would park the
	// session for 15 minutes; with MaxRetryWait the op completes fast and
	// every clamp is counted.
	var mu sync.Mutex
	rejects := 3
	h, _ := kvHandler()
	d := newFakeDaemon(t, func(req clientproto.Request, conn net.Conn) *clientproto.Response {
		mu.Lock()
		defer mu.Unlock()
		if rejects > 0 {
			rejects--
			return &clientproto.Response{Status: clientproto.StRetry, RetryAfter: 5 * time.Minute, Reason: "hostile"}
		}
		return h(req, conn)
	})
	cfg := testConfig()
	cfg.MaxRetryWait = 20 * time.Millisecond
	c, err := cfg.Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	start := time.Now()
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Put took %v: RetryAfter hint not clamped", elapsed)
	}
	st := c.Stats()
	if st.RetryClamps != 3 {
		t.Errorf("RetryClamps = %d, want 3", st.RetryClamps)
	}
	if st.Retries != 3 {
		t.Errorf("Retries = %d, want 3", st.Retries)
	}
	if got := c.Metrics().Snapshot().Counters["newtop_client_retry_clamped_total"]; got != 3 {
		t.Errorf("newtop_client_retry_clamped_total = %d, want 3", got)
	}
}

func TestIntendedStartLatencyIsCoordinatedOmissionFree(t *testing.T) {
	// An op that was SCHEDULED 100ms before it could run (the open-loop
	// queueing case) must report >=100ms latency even though the exchange
	// itself is instant; the plain call keeps measuring from call start.
	h, _ := kvHandler()
	d := newFakeDaemon(t, h)
	c, err := testConfig().Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.PutAt(time.Now().Add(-100*time.Millisecond), "k", "v"); err != nil {
		t.Fatal(err)
	}
	snap := c.Metrics().Snapshot()
	hist, ok := snap.Histograms[`newtop_client_op_ns{op="put"}`]
	if !ok || hist.Count != 1 {
		t.Fatalf("put histogram = %+v", hist)
	}
	if hist.Max < uint64(100*time.Millisecond) {
		t.Fatalf("max put latency %v, want >= 100ms (intended-start accounting)", time.Duration(hist.Max))
	}
	// A plain Get on the same healthy session measures the exchange only.
	if _, _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	snap = c.Metrics().Snapshot()
	ghist := snap.Histograms[`newtop_client_op_ns{op="get"}`]
	if ghist.Count != 1 || ghist.Max >= uint64(100*time.Millisecond) {
		t.Fatalf("plain get latency = %+v, want sub-100ms exchange time", ghist)
	}
}

func TestCloseInterruptsStuckExchange(t *testing.T) {
	h, _ := kvHandler()
	stall := make(chan struct{})
	d := newFakeDaemon(t, func(req clientproto.Request, conn net.Conn) *clientproto.Response {
		if req.Op == clientproto.OpGet {
			<-stall // never respond: a wedged daemon
			return nil
		}
		return h(req, conn)
	})
	defer close(stall)
	cfg := testConfig()
	cfg.OpTimeout = 30 * time.Second // the test must not pass via the deadline
	c, err := cfg.Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, _, err := c.Get("k")
		got <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the Get reach the stalled read
	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close blocked %v behind a stuck exchange", elapsed)
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("interrupted Get = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get never returned after Close")
	}
}

// shardedHandler serves keys hashing into [lo, hi) from its own store and
// answers every other keyed op with the supplied shard hint.
func shardedHandler(lo, hi uint64, hint func() *clientproto.Response) (func(clientproto.Request, net.Conn) *clientproto.Response, *sync.Map) {
	h, m := kvHandler()
	return func(req clientproto.Request, conn net.Conn) *clientproto.Response {
		switch req.Op {
		case clientproto.OpGet, clientproto.OpBarrierGet, clientproto.OpPut, clientproto.OpDel:
			if hh := types.KeyHash(req.Key); hh < lo || (hi != 0 && hh >= hi) {
				return hint()
			}
		}
		return h(req, conn)
	}, m
}

// hashKeyIn finds a fresh key whose hash lands in [lo, hi).
func hashKeyIn(prefix string, lo, hi uint64) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s%d", prefix, i)
		if h := types.KeyHash(k); h >= lo && (hi == 0 || h < hi) {
			return k
		}
	}
}

func TestShardHintsRouteDirectly(t *testing.T) {
	mid := uint64(1) << 63
	bh, bStore := kvHandler()
	b := newFakeDaemon(t, bh)
	ah, _ := shardedHandler(0, mid, func() *clientproto.Response {
		return &clientproto.Response{Status: clientproto.StNotServing,
			Group: 11, Addr: b.addr(), Epoch: 1, RangeLo: mid, RangeHi: 0}
	})
	a := newFakeDaemon(t, ah)
	c, err := testConfig().Dial(a.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// The first op on the high arc takes one redirect and teaches the arc.
	kb := hashKeyIn("kb", mid, 0)
	if err := c.Put(kb, "v1"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Redirects != 1 {
		t.Fatalf("first high-arc op took %d redirects, want 1", st.Redirects)
	}
	if c.RouteEpoch() != 1 {
		t.Fatalf("RouteEpoch = %d, want 1", c.RouteEpoch())
	}

	// Subsequent high-arc ops route straight to the owner: no new redirects.
	kb2 := hashKeyIn("kc", mid, 0)
	if err := c.Put(kb2, "v2"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(kb); err != nil || !ok || v != "v1" {
		t.Fatalf("routed Get = %q %v %v", v, ok, err)
	}
	st = c.Stats()
	if st.Redirects != 1 {
		t.Fatalf("routed ops still redirected (%d total)", st.Redirects)
	}
	if st.ShardRouted == 0 {
		t.Fatal("no ops counted as shard-routed")
	}
	if _, ok := bStore.Load(kb2); !ok {
		t.Fatal("routed write never reached the owner")
	}

	// Low-arc keys have no cached arc and ride the pinned connection.
	ka := hashKeyIn("ka", 0, mid)
	if err := c.Put(ka, "va"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(ka); err != nil || !ok || v != "va" {
		t.Fatalf("pinned Get = %q %v %v", v, ok, err)
	}
	if got := c.Pinned(); got != a.addr() {
		t.Fatalf("pin moved to %q; shard routing should not move the pin", got)
	}
}

func TestShardEpochBumpRefreshesRoutes(t *testing.T) {
	mid := uint64(1) << 63
	ch, cStore := kvHandler()
	cd := newFakeDaemon(t, ch)
	var moved atomic.Bool
	bh, _ := kvHandler()
	b := newFakeDaemon(t, func(req clientproto.Request, conn net.Conn) *clientproto.Response {
		switch req.Op {
		case clientproto.OpGet, clientproto.OpBarrierGet, clientproto.OpPut, clientproto.OpDel:
			if moved.Load() {
				// The range moved: answer with a NEWER epoch pointing at
				// its new owner.
				return &clientproto.Response{Status: clientproto.StNotServing,
					Group: 12, Addr: cd.addr(), Epoch: 2, RangeLo: mid, RangeHi: 0}
			}
		}
		return bh(req, conn)
	})
	ah, _ := shardedHandler(0, mid, func() *clientproto.Response {
		return &clientproto.Response{Status: clientproto.StNotServing,
			Group: 11, Addr: b.addr(), Epoch: 1, RangeLo: mid, RangeHi: 0}
	})
	a := newFakeDaemon(t, ah)
	c, err := testConfig().Dial(a.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	k1 := hashKeyIn("e", mid, 0)
	if err := c.Put(k1, "old"); err != nil { // learns epoch-1 route to b
		t.Fatal(err)
	}
	moved.Store(true)
	k2 := hashKeyIn("f", mid, 0)
	if err := c.Put(k2, "new"); err != nil { // stale route -> epoch bump -> rerouted
		t.Fatal(err)
	}
	if got := c.RouteEpoch(); got != 2 {
		t.Fatalf("RouteEpoch = %d after the bump, want 2", got)
	}
	if c.Stats().ShardRefresh != 1 {
		t.Fatalf("ShardRefresh = %d, want 1", c.Stats().ShardRefresh)
	}
	if _, ok := cStore.Load(k2); !ok {
		t.Fatal("post-move write never reached the new owner")
	}
	// The refreshed arc keeps routing: reads of moved keys hit the new
	// owner (and the fresh routed connection barrier-upgrades them).
	if v, ok, err := c.Get(k2); err != nil || !ok || v != "new" {
		t.Fatalf("Get after refresh = %q %v %v", v, ok, err)
	}
}

func TestDeadRoutedOwnerEvictedAndFallsBack(t *testing.T) {
	h, _ := kvHandler()
	d := newFakeDaemon(t, h)
	c, err := testConfig().Dial(d.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// Teach a route whose owner is unreachable (a listener that is gone).
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close()
	c.mu.Lock()
	c.learnShardLocked(&clientproto.Response{Status: clientproto.StNotServing,
		Group: 13, Addr: deadAddr, Epoch: 1, RangeLo: 0, RangeHi: 0})
	c.mu.Unlock()

	// The op tries the dead owner once, evicts the route, and falls back
	// to the pinned daemon.
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	arcs := len(c.shardArcs)
	c.mu.Unlock()
	if arcs != 0 {
		t.Fatalf("%d arcs still cached after the owner refused dials", arcs)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || v != "v" {
		t.Fatalf("fallback Get = %q %v %v", v, ok, err)
	}
}
