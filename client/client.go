// Package client is the application-side access path to a newtopd
// cluster: a session that routes requests across daemons, follows
// redirects, retries transient rejections, and fails over on connection
// loss — so a caller sees one key-value service that survives crashes,
// partitions and group cut-overs underneath it.
//
// # Sessions and consistency
//
// A Client is a session pinned to one daemon: every request goes to the
// pinned daemon until it dies or redirects, which is what makes plain Get
// read-your-writes — the daemon serves reads only after the session's own
// acknowledged writes have been applied there. When the pin moves (the
// daemon crashed, or redirected the session elsewhere), the next read is
// silently upgraded to a barrier read, so the new daemon first proves it
// has applied everything ordered before — including every write the old
// daemon acknowledged. BarrierGet requests that linearizable fence
// explicitly on any read.
//
// Writes are acknowledged only after the daemon has applied them through
// the group's total order; an acknowledged write is therefore replicated
// across the serving group's CURRENT VIEW, and survives the daemon's
// crash as long as that view has other members. Newtop is partitionable
// by design (no primary partition), so during a partition the serving
// view — and with it the ack's replication factor — can shrink, down to
// the pinned daemon alone; and when diverged sides later reconcile, a
// key written on both sides keeps only the merge policy's winner.
// Status().Members exposes the current replication factor for callers
// that want to detect degraded acks. A write whose connection died
// between request and response returns ErrUnacked: the outcome is
// unknown, and the client will NOT retry it (a retried write is not
// idempotent in general — the caller decides, knowing its own command
// semantics).
//
// Reads and Status are idempotent and are retried across endpoints
// automatically.
//
// # Sharded clusters
//
// Against a sharded fleet the session learns the shard map lazily: a
// NOT_SERVING answer from a sharded daemon carries the owning group, the
// hash arc it owns, the shard-map epoch, and a member's client address.
// The session caches these arcs and routes subsequent operations on keys
// in a known arc straight to the owner over a per-address connection
// pool, skipping the redirect hop. A hint with a newer epoch flushes the
// cache (the map changed — a split or move landed); a routed connection
// opened after any route change starts with a barrier-upgraded first
// read, so read-your-writes survives the hop to the range's new owner.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"newtop/internal/clientproto"
	"newtop/internal/obs"
	"newtop/internal/types"
)

// ErrUnacked is returned (wrapped) by Put and Del when the connection died
// after the request was sent but before a response arrived: the write may
// or may not have been applied. Retrying is the caller's decision.
var ErrUnacked = errors.New("client: write unacknowledged (outcome unknown)")

// ErrUnavailable is returned (wrapped) when no endpoint could serve the
// request within the failover budget.
var ErrUnavailable = errors.New("client: no endpoint available")

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// Config tunes a client session. The zero value is usable.
type Config struct {
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// OpTimeout bounds one request/response exchange on an established
	// connection (default 10s — barrier reads cross the whole total
	// order, so this must comfortably exceed the group's ω).
	OpTimeout time.Duration
	// FailoverTimeout bounds one logical operation across every retry,
	// redirect and failover (default 30s).
	FailoverTimeout time.Duration
	// RetryWait is the pause before retrying after a StRetry response
	// that carries no hint of its own (default 50ms).
	RetryWait time.Duration
	// MaxRetryWait caps a server-supplied RetryAfter hint (default 3s).
	// The hint is advisory: a buggy or hostile daemon must not be able to
	// park a session for minutes on one response. Clamps are counted in
	// the metrics registry (newtop_client_retry_clamped_total).
	MaxRetryWait time.Duration
	// Metrics, when set, receives the session's observability series
	// (per-op latency histograms, routing counters). When nil the client
	// keeps a private registry so Stats still counts.
	Metrics *obs.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 10 * time.Second
	}
	if cfg.FailoverTimeout <= 0 {
		cfg.FailoverTimeout = 30 * time.Second
	}
	if cfg.RetryWait <= 0 {
		cfg.RetryWait = 50 * time.Millisecond
	}
	if cfg.MaxRetryWait <= 0 {
		cfg.MaxRetryWait = 3 * time.Second
	}
	return cfg
}

// Stats counts a session's routing activity.
type Stats struct {
	Ops          uint64 // requests that completed (any final status)
	Failovers    uint64 // pin moved because a connection died
	Redirects    uint64 // pin moved because a daemon answered NOT_SERVING
	Retries      uint64 // RETRY responses honoured
	Unacked      uint64 // writes that returned ErrUnacked
	RetryClamps  uint64 // server RetryAfter hints clamped to MaxRetryWait
	ShardRouted  uint64 // ops routed directly via the learned shard map
	ShardRefresh uint64 // shard route cache flushes on an epoch bump
}

// clientMetrics holds the session's pre-resolved observability handles.
type clientMetrics struct {
	ops             *obs.Counter
	failovers       *obs.Counter
	redirects       *obs.Counter
	retries         *obs.Counter
	unacked         *obs.Counter
	retryClamps     *obs.Counter // server RetryAfter hints clamped to MaxRetryWait
	barrierUpgrades *obs.Counter // plain Gets upgraded to barrier reads after a moved pin
	shardRouted     *obs.Counter // ops routed directly via the learned shard map
	shardRefresh    *obs.Counter // shard route cache flushes on an epoch bump

	// Per-op end-to-end latency (including retries and failovers).
	opGet    *obs.Histogram
	opBGet   *obs.Histogram
	opPut    *obs.Histogram
	opDel    *obs.Histogram
	opStatus *obs.Histogram
}

func newClientMetrics(reg *obs.Registry) clientMetrics {
	return clientMetrics{
		ops:             reg.Counter("newtop_client_ops_total"),
		failovers:       reg.Counter("newtop_client_failovers_total"),
		redirects:       reg.Counter("newtop_client_redirects_total"),
		retries:         reg.Counter("newtop_client_retries_total"),
		unacked:         reg.Counter("newtop_client_unacked_total"),
		retryClamps:     reg.Counter("newtop_client_retry_clamped_total"),
		barrierUpgrades: reg.Counter("newtop_client_barrier_upgrades_total"),
		shardRouted:     reg.Counter("newtop_client_shard_routed_total"),
		shardRefresh:    reg.Counter("newtop_client_shard_refresh_total"),
		opGet:           reg.Histogram(`newtop_client_op_ns{op="get"}`),
		opBGet:          reg.Histogram(`newtop_client_op_ns{op="barrier_get"}`),
		opPut:           reg.Histogram(`newtop_client_op_ns{op="put"}`),
		opDel:           reg.Histogram(`newtop_client_op_ns{op="del"}`),
		opStatus:        reg.Histogram(`newtop_client_op_ns{op="status"}`),
	}
}

// opHist maps a request op to its latency histogram.
func (m *clientMetrics) opHist(op byte) *obs.Histogram {
	switch op {
	case clientproto.OpGet:
		return m.opGet
	case clientproto.OpBarrierGet:
		return m.opBGet
	case clientproto.OpPut:
		return m.opPut
	case clientproto.OpDel:
		return m.opDel
	case clientproto.OpStatus:
		return m.opStatus
	default:
		return nil
	}
}

// Client is one routed session. Safe for concurrent use; operations are
// serialized over the single pinned connection.
type Client struct {
	cfg Config

	// opMu serializes logical operations (one request/response cycle on
	// the pinned connection at a time). mu guards the fields below and
	// is only ever held briefly — never across network I/O or sleeps —
	// so Close and the read-only accessors are never stuck behind a
	// slow daemon.
	opMu sync.Mutex
	buf  []byte // reusable frame buffer (owned by the opMu holder)

	mu     sync.Mutex
	addrs  []endpoint // known endpoints: Dial arguments plus learned redirect hints
	next   int        // round-robin cursor over addrs
	conn   net.Conn   // pinned connection (nil between pins)
	br     *bufio.Reader
	pinned string // address of the pinned daemon ("" when unpinned)
	fence  bool   // pin moved: upgrade the next read to a barrier read
	closed bool
	// closedCh is closed by Close so retry backoffs (which sleep without
	// holding mu) unblock immediately instead of serving out their wait.
	closedCh chan struct{}

	// Shard routing, learned lazily from NOT_SERVING shard hints.
	// shardArcs caches the hash arcs the session has been taught (all at
	// shardEpoch); pool holds one routed connection per owner address.
	shardEpoch uint64
	shardArcs  []routeArc
	pool       map[string]*pconn

	reg *obs.Registry
	cm  clientMetrics
}

// routeArc is one cached shard-map arc: keys hashing into [lo, hi) are
// served by group at addr. hi == 0 means the ring top.
type routeArc struct {
	lo, hi uint64
	group  uint64
	addr   string
}

// pconn is one pooled routed connection. fence marks that the next read
// over it must be barrier-upgraded (the connection is new, or the
// session's writes may have moved groups since it last proved catch-up).
// fence is only touched by the opMu holder; conn/br are published under
// mu so Close can interrupt an in-flight exchange.
type pconn struct {
	addr  string
	conn  net.Conn
	br    *bufio.Reader
	fence bool
}

// endpoint is one known daemon address. Learned (redirect-hint) addresses
// are forgotten after a few consecutive failed dials — daemons restarted
// on fresh ephemeral ports would otherwise pollute the sweep forever;
// bootstrap addresses (the Dial arguments) are kept no matter what.
// Learned endpoints are keyed per (group, endpoint): what group 9's
// redirects taught — and what its dial failures unteach — is group 9's
// knowledge alone, so one shard's dead hint cannot evict an address
// another shard still vouches for.
type endpoint struct {
	addr      string
	group     uint64 // the group whose redirect taught this address (0: bootstrap/unknown)
	bootstrap bool
	fails     int // consecutive failed dials
}

// learnedEvictAfter is how many consecutive failed dials evict a learned
// endpoint from the sweep.
const learnedEvictAfter = 3

// Dial opens a session against the cluster, pinning it to the first
// reachable endpoint. The endpoint list is a bootstrap set, not a limit:
// redirects teach the session new addresses as the cluster evolves.
func Dial(addrs ...string) (*Client, error) {
	return Config{}.Dial(addrs...)
}

// Dial opens a session with explicit tuning; see the package-level Dial.
func (cfg Config) Dial(addrs ...string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: Dial needs at least one address")
	}
	c := &Client{
		cfg:      cfg.withDefaults(),
		closedCh: make(chan struct{}),
		pool:     make(map[string]*pconn),
	}
	c.reg = c.cfg.Metrics
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	c.cm = newClientMetrics(c.reg)
	for _, a := range addrs {
		c.addrs = append(c.addrs, endpoint{addr: a, bootstrap: true})
	}
	c.opMu.Lock()
	defer c.opMu.Unlock()
	if _, _, err := c.ensure(); err != nil {
		return nil, err
	}
	return c, nil
}

// Pinned returns the address of the daemon this session is currently
// pinned to ("" when disconnected).
func (c *Client) Pinned() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pinned
}

// Endpoints returns every address the session knows (bootstrap set plus
// learned redirect hints).
func (c *Client) Endpoints() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.addrs))
	for i, e := range c.addrs {
		out[i] = e.addr
	}
	return out
}

// Stats snapshots the session's routing counters. It is a view over the
// session's metrics registry.
func (c *Client) Stats() Stats {
	return Stats{
		Ops:          c.cm.ops.Value(),
		Failovers:    c.cm.failovers.Value(),
		Redirects:    c.cm.redirects.Value(),
		Retries:      c.cm.retries.Value(),
		Unacked:      c.cm.unacked.Value(),
		RetryClamps:  c.cm.retryClamps.Value(),
		ShardRouted:  c.cm.shardRouted.Value(),
		ShardRefresh: c.cm.shardRefresh.Value(),
	}
}

// Metrics returns the session's observability registry (never nil).
func (c *Client) Metrics() *obs.Registry { return c.reg }

// Close ends the session. It does not wait for an in-flight operation:
// closing the pinned connection interrupts it, and the operation returns
// ErrClosed (reads) or ErrUnacked (a write that was already on the wire).
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.closedCh)
	}
	c.dropLocked()
	for addr, pc := range c.pool {
		_ = pc.conn.Close()
		delete(c.pool, addr)
	}
	return nil
}

// RouteEpoch returns the shard-map epoch of the session's route cache
// (0 until a shard hint has been learned).
func (c *Client) RouteEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shardEpoch
}

// sleep pauses for d, returning false immediately if the session is
// closed meanwhile — a retry backoff must never outlive its session.
func (c *Client) sleep(d time.Duration) bool {
	if d <= 0 {
		return !c.isClosed()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.closedCh:
		return false
	case <-t.C:
		return true
	}
}

// Get reads a key with read-your-writes consistency (relative to this
// session's acknowledged writes). After a failover or redirect the read is
// upgraded to a barrier read once, restoring the guarantee on the new
// daemon.
func (c *Client) Get(key string) (string, bool, error) {
	return c.GetAt(time.Time{}, key)
}

// GetAt is Get with an explicit intended-start time for latency
// accounting: the op's histogram sample is measured from intended (the
// moment the operation was scheduled to fire) instead of from the call,
// so open-loop drivers record coordinated-omission-free latency. A zero
// intended behaves exactly like Get.
func (c *Client) GetAt(intended time.Time, key string) (string, bool, error) {
	if err := clientproto.ValidKey(key); err != nil {
		return "", false, fmt.Errorf("client: %w", err)
	}
	resp, err := c.do(&clientproto.Request{Op: clientproto.OpGet, Key: key}, true, intended)
	if err != nil {
		return "", false, err
	}
	return resp.Value, resp.Found, nil
}

// BarrierGet reads a key linearizably: the serving daemon runs a
// total-order barrier first, so the read observes every write — by any
// session — ordered before it.
func (c *Client) BarrierGet(key string) (string, bool, error) {
	return c.BarrierGetAt(time.Time{}, key)
}

// BarrierGetAt is BarrierGet with an explicit intended-start time (see
// GetAt).
func (c *Client) BarrierGetAt(intended time.Time, key string) (string, bool, error) {
	if err := clientproto.ValidKey(key); err != nil {
		return "", false, fmt.Errorf("client: %w", err)
	}
	resp, err := c.do(&clientproto.Request{Op: clientproto.OpBarrierGet, Key: key}, true, intended)
	if err != nil {
		return "", false, err
	}
	return resp.Value, resp.Found, nil
}

// Put writes key=value. A nil return means the write was applied through
// the total order (replicated); ErrUnacked means the outcome is unknown.
func (c *Client) Put(key, value string) error {
	return c.PutAt(time.Time{}, key, value)
}

// PutAt is Put with an explicit intended-start time (see GetAt).
func (c *Client) PutAt(intended time.Time, key, value string) error {
	if err := clientproto.ValidKey(key); err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if err := clientproto.ValidValue(value); err != nil {
		return fmt.Errorf("client: %w", err)
	}
	_, err := c.do(&clientproto.Request{Op: clientproto.OpPut, Key: key, Value: value}, false, intended)
	return err
}

// Del deletes a key, with Put's acknowledgement semantics.
func (c *Client) Del(key string) error {
	return c.DelAt(time.Time{}, key)
}

// DelAt is Del with an explicit intended-start time (see GetAt).
func (c *Client) DelAt(intended time.Time, key string) error {
	if err := clientproto.ValidKey(key); err != nil {
		return fmt.Errorf("client: %w", err)
	}
	_, err := c.do(&clientproto.Request{Op: clientproto.OpDel, Key: key}, false, intended)
	return err
}

// Status reports the pinned daemon's view of the service: its process ID,
// serving group, applied sequence, key count, state digest, readiness,
// and the serving view's size — the replication factor acked writes
// currently get (see the package comment on durability during
// partitions).
type Status struct {
	Self    uint32
	Group   uint64
	Applied uint64
	Digest  uint64
	Keys    uint32
	Ready   bool
	Members uint32
	// Delivered, Drops and QueueDepth are the daemon's key health gauges
	// (total-order deliveries emitted, messages silently dropped across
	// all layers, received-but-undelivered backlog). Zero when the daemon
	// predates the STATUS observability extension.
	Delivered  uint64
	Drops      uint64
	QueueDepth uint64
	// Durable reports whether the daemon runs with a data directory
	// (WAL + snapshots). WALGroup/WALIndex are the serving group's last
	// WAL-appended log position and SnapGroup/SnapIndex its latest
	// snapshot cut — both (group incarnation, delivery index) pairs,
	// all-zero until the first write lands. False/zero when the daemon
	// predates the STATUS durability extension or runs diskless.
	Durable   bool
	WALGroup  uint64
	WALIndex  uint64
	SnapGroup uint64
	SnapIndex uint64
}

// Status queries the pinned daemon. Unlike the data operations it is
// served even by a daemon that is still catching up or reconciling
// (Ready false) — it is how progress is watched from outside.
func (c *Client) Status() (Status, error) {
	resp, err := c.do(&clientproto.Request{Op: clientproto.OpStatus}, true, time.Time{})
	if err != nil {
		return Status{}, err
	}
	return Status{
		Self: resp.Self, Group: resp.Group, Applied: resp.Applied,
		Digest: resp.Digest, Keys: resp.Keys, Ready: resp.Ready,
		Members: resp.Members, Delivered: resp.Delivered,
		Drops: resp.Drops, QueueDepth: resp.QueueDepth,
		Durable: resp.Durable, WALGroup: resp.WALGroup, WALIndex: resp.WALIndex,
		SnapGroup: resp.SnapGroup, SnapIndex: resp.SnapIndex,
	}, nil
}

// do runs one logical operation: route, retry, redirect, fail over, until
// a final response or the failover budget runs out. idempotent marks
// operations safe to resend after a torn exchange. intended, when
// non-zero, is the operation's scheduled arrival time: latency is then
// measured from it — not from when the op got the lock — so an open-loop
// driver's histograms are coordinated-omission-free (queueing delay ahead
// of the session counts against the service, as a real user experiences
// it). The operation lock is held throughout; the state lock only in
// slivers, so Close interrupts a stuck exchange rather than waiting for
// it.
func (c *Client) do(req *clientproto.Request, idempotent bool, intended time.Time) (clientproto.Response, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	start := time.Now()
	if !intended.IsZero() {
		start = intended
	}
	defer func() {
		// End-to-end latency, retries and failovers included: the number a
		// caller actually experiences.
		c.cm.opHist(req.Op).ObserveDuration(time.Since(start))
	}()
	deadline := time.Now().Add(c.cfg.FailoverTimeout)
	var lastErr error
	for {
		if c.isClosed() {
			return clientproto.Response{}, ErrClosed
		}
		if time.Now().After(deadline) {
			if lastErr == nil {
				lastErr = errors.New("failover budget exhausted")
			}
			return clientproto.Response{}, fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
		}
		var (
			conn net.Conn
			br   *bufio.Reader
			pc   *pconn // non-nil when shard-routed
		)
		if addr, grp, ok := c.routeFor(req); ok {
			var err error
			pc, err = c.ensurePooled(addr)
			if err != nil {
				if errors.Is(err, ErrClosed) {
					return clientproto.Response{}, err
				}
				// The routed owner is unreachable: forget the route (and
				// this group's learned endpoint) and fall back to the
				// redirect path through the sweep — pausing first, so a
				// dead owner plus a peer re-teaching its address cannot
				// hot-loop the session through dial failures.
				c.mu.Lock()
				c.evictRouteLocked(addr)
				c.noteDialFailedLocked(addr, grp)
				c.mu.Unlock()
				lastErr = err
				if !c.sleep(c.cfg.RetryWait) {
					return clientproto.Response{}, ErrClosed
				}
				continue
			}
			conn, br = pc.conn, pc.br
		} else {
			var err error
			conn, br, err = c.ensure()
			if err != nil {
				if errors.Is(err, ErrClosed) {
					return clientproto.Response{}, err
				}
				lastErr = err
				// Every known endpoint refused a connection; pause before
				// sweeping them again (a crashed daemon may be restarting).
				if !c.sleep(c.cfg.RetryWait) {
					return clientproto.Response{}, ErrClosed
				}
				continue
			}
		}
		// A moved pin (or a fresh routed connection) downgrades
		// read-your-writes until one barrier read proves the daemon has
		// caught up past our acked writes.
		var fence bool
		if pc != nil {
			fence = pc.fence
		} else {
			c.mu.Lock()
			fence = c.fence
			c.mu.Unlock()
		}
		op := req.Op
		if fence && op == clientproto.OpGet {
			op = clientproto.OpBarrierGet
			c.cm.barrierUpgrades.Inc()
		}
		wire := *req
		wire.Op = op
		resp, err := c.exchange(conn, br, &wire)
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.cm.failovers.Inc()
			if pc != nil {
				c.closePooledLocked(pc)
			} else {
				c.dropLocked()
				c.fence = true
			}
			if !idempotent {
				// The request may have reached the daemon before the
				// connection died; the write's outcome is unknown.
				c.cm.unacked.Inc()
			}
			c.mu.Unlock()
			if !idempotent {
				return clientproto.Response{}, fmt.Errorf("%w: %v", ErrUnacked, err)
			}
			if closed {
				return clientproto.Response{}, ErrClosed
			}
			lastErr = err
			continue
		}
		c.mu.Lock()
		switch resp.Status {
		case clientproto.StOK, clientproto.StStatus:
			c.cm.ops.Inc()
			if req.Op == clientproto.OpGet || req.Op == clientproto.OpBarrierGet {
				if pc != nil {
					pc.fence = false
				} else {
					c.fence = false
				}
			}
			c.mu.Unlock()
			return resp, nil
		case clientproto.StErr:
			c.cm.ops.Inc()
			c.mu.Unlock()
			return resp, fmt.Errorf("client: server rejected request: %s", resp.Err)
		case clientproto.StUnknown:
			// The server proposed the write but could not confirm its
			// application — the same ambiguity as a torn connection, so
			// the same answer: the caller decides whether to resend.
			// (Reads are side-effect free; just retry them.)
			if !idempotent {
				c.cm.ops.Inc()
				c.cm.unacked.Inc()
				if pc != nil {
					pc.fence = true
				} else {
					c.fence = true
				}
				c.mu.Unlock()
				return clientproto.Response{}, fmt.Errorf("%w: %s", ErrUnacked, resp.Err)
			}
			c.cm.retries.Inc()
			c.mu.Unlock()
			if !c.sleep(c.cfg.RetryWait) {
				return clientproto.Response{}, ErrClosed
			}
			continue
		case clientproto.StNotServing:
			c.cm.redirects.Inc()
			// A hint is productive when it teaches something: a shard
			// route (new or re-owned arc) or a new (group, endpoint)
			// pair. Productive hints proceed immediately; unproductive
			// repeats pace. The pair is the pacing key — under the old
			// flat-address namespace, group 9 hinting an address that
			// group 7 already taught was "nothing new" and stalled a
			// whole RetryWait, even though it was this session's first
			// word about group 9's whereabouts.
			productive := false
			if resp.Epoch > 0 {
				productive = c.learnShardLocked(&resp)
			}
			if c.learnLocked(resp.Addr, resp.Group) {
				productive = true
			}
			switch {
			case pc != nil:
				// The routed connection answered fine — only the route
				// was stale. Keep the connection for arcs it still owns;
				// the refreshed cache redirects this key next iteration.
				lastErr = fmt.Errorf("stale shard route (group %d moved)", resp.Group)
			case resp.Epoch > 0 && productive:
				// A shard hint from a healthy pinned daemon: it simply
				// does not own this key's arc. The route cache now does;
				// keep the pin for the arcs (and Status) it still serves.
				lastErr = fmt.Errorf("key owned by shard group %d", resp.Group)
			default:
				from := c.pinned
				c.dropLocked()
				c.fence = true
				lastErr = fmt.Errorf("redirected away from %s (serving group %d)", from, resp.Group)
			}
			c.mu.Unlock()
			if !productive {
				// The hint taught nothing: without a pause, two daemons
				// pointing at each other would spin the session through
				// a hot dial/redirect loop for the whole failover budget.
				if !c.sleep(c.cfg.RetryWait) {
					return clientproto.Response{}, ErrClosed
				}
			}
			continue
		case clientproto.StRetry:
			c.cm.retries.Inc()
			c.mu.Unlock()
			wait := resp.RetryAfter
			if wait <= 0 {
				wait = c.cfg.RetryWait
			} else if wait > c.cfg.MaxRetryWait {
				// The hint is advisory — a daemon must not be able to
				// park this session for minutes on one response.
				wait = c.cfg.MaxRetryWait
				c.cm.retryClamps.Inc()
			}
			lastErr = fmt.Errorf("daemon busy: %s", resp.Reason)
			if !c.sleep(wait) {
				return clientproto.Response{}, ErrClosed
			}
			continue
		default:
			if pc != nil {
				c.closePooledLocked(pc)
			} else {
				c.dropLocked()
			}
			c.mu.Unlock()
			lastErr = fmt.Errorf("unknown response status %d", resp.Status)
			continue
		}
	}
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// exchange performs one request/response on the given connection, without
// holding the state lock — a concurrent Close interrupts it by closing
// the connection. Any error means the request may have reached the daemon
// (even a torn write can have); callers must treat non-idempotent
// requests as unacked.
func (c *Client) exchange(conn net.Conn, br *bufio.Reader, req *clientproto.Request) (clientproto.Response, error) {
	c.buf = clientproto.AppendRequest(c.buf[:0], req)
	_ = conn.SetDeadline(time.Now().Add(c.cfg.OpTimeout))
	if _, err := conn.Write(c.buf); err != nil {
		return clientproto.Response{}, err
	}
	body, err := clientproto.ReadFrame(br, c.buf[:0])
	if err != nil {
		return clientproto.Response{}, err
	}
	c.buf = body // keep a grown response buffer for reuse
	return clientproto.ParseResponse(body)
}

// ensure pins a connection (returning it together with its reader),
// sweeping the endpoint list round-robin once when unpinned. Dials run
// without the state lock; the operation lock (held by the caller)
// serializes the sweep itself. A learned endpoint that keeps refusing
// dials is evicted from the sweep.
func (c *Client) ensure() (net.Conn, *bufio.Reader, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if c.conn != nil {
		conn, br := c.conn, c.br
		c.mu.Unlock()
		return conn, br, nil
	}
	n := len(c.addrs)
	c.mu.Unlock()

	var lastErr error
	for i := 0; i < n; i++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, nil, ErrClosed
		}
		if len(c.addrs) == 0 { // cannot happen (bootstrap addrs stay), be safe
			c.mu.Unlock()
			break
		}
		idx := c.next % len(c.addrs)
		addr, grp := c.addrs[idx].addr, c.addrs[idx].group
		c.mu.Unlock()

		conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)

		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			if conn != nil {
				_ = conn.Close()
			}
			return nil, nil, ErrClosed
		}
		if err != nil {
			lastErr = err
			c.advanceCursorLocked(addr)
			c.noteDialFailedLocked(addr, grp)
			c.mu.Unlock()
			continue
		}
		c.noteDialOKLocked(addr)
		c.advanceCursorLocked(addr)
		c.conn = conn
		c.br = bufio.NewReader(conn)
		c.pinned = addr
		br := c.br
		c.mu.Unlock()
		return conn, br, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no endpoints")
	}
	return nil, nil, fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
}

// advanceCursorLocked moves the round-robin cursor past addr (looked up
// afresh — the slice may have been edited since the caller read it).
func (c *Client) advanceCursorLocked(addr string) {
	for i := range c.addrs {
		if c.addrs[i].addr == addr {
			c.next = (i + 1) % len(c.addrs)
			return
		}
	}
	if len(c.addrs) > 0 {
		c.next %= len(c.addrs)
	} else {
		c.next = 0
	}
}

// noteDialFailedLocked bumps an endpoint's consecutive-failure count and
// evicts learned endpoints that keep failing. The slice may have been
// reshuffled while the lock was released, so look the (group, address)
// key up again — eviction is per (group, endpoint): a dead hint from one
// group must not erase an address another group's redirects still vouch
// for.
func (c *Client) noteDialFailedLocked(addr string, group uint64) {
	for i := range c.addrs {
		if c.addrs[i].addr != addr || c.addrs[i].group != group {
			continue
		}
		c.addrs[i].fails++
		if !c.addrs[i].bootstrap && c.addrs[i].fails >= learnedEvictAfter {
			c.addrs = append(c.addrs[:i], c.addrs[i+1:]...)
			if c.next > i {
				c.next--
			}
			if len(c.addrs) > 0 {
				c.next %= len(c.addrs)
			} else {
				c.next = 0
			}
		}
		return
	}
}

// noteDialOKLocked clears an endpoint's failure streak.
func (c *Client) noteDialOKLocked(addr string) {
	for i := range c.addrs {
		if c.addrs[i].addr == addr {
			c.addrs[i].fails = 0
			return
		}
	}
}

// learnLocked adds a redirect hint to the endpoint set, keyed per
// (group, endpoint), and aims the round-robin cursor at it so the next
// pin attempt tries it first. It reports whether the hint taught a NEW
// (group, endpoint) pair.
func (c *Client) learnLocked(addr string, group uint64) bool {
	if addr == "" {
		return false
	}
	for i := range c.addrs {
		if c.addrs[i].addr == addr && (c.addrs[i].group == group || c.addrs[i].bootstrap) {
			c.next = i
			c.addrs[i].fails = 0 // the hint vouches for it afresh
			return false
		}
	}
	c.addrs = append(c.addrs, endpoint{addr: addr, group: group})
	c.next = len(c.addrs) - 1
	return true
}

// routeFor consults the shard route cache: for a keyed operation whose
// hash falls in a cached arc it returns the owner's address and group.
func (c *Client) routeFor(req *clientproto.Request) (string, uint64, bool) {
	switch req.Op {
	case clientproto.OpGet, clientproto.OpBarrierGet, clientproto.OpPut, clientproto.OpDel:
	default:
		return "", 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.shardArcs) == 0 {
		return "", 0, false
	}
	h := types.KeyHash(req.Key)
	for _, a := range c.shardArcs {
		if h >= a.lo && (a.hi == 0 || h < a.hi) {
			c.cm.shardRouted.Inc()
			return a.addr, a.group, true
		}
	}
	return "", 0, false
}

// learnShardLocked folds a shard hint into the route cache. A hint with
// a NEWER epoch flushes every cached arc first — the map changed, and
// arcs learned under the old epoch may route to groups that no longer
// own them; a hint with an older epoch is stale and ignored. It reports
// whether the cache changed (the hint was productive).
func (c *Client) learnShardLocked(resp *clientproto.Response) bool {
	if resp.Epoch < c.shardEpoch {
		return false
	}
	changed := false
	if resp.Epoch > c.shardEpoch {
		if c.shardEpoch != 0 {
			c.cm.shardRefresh.Inc()
		}
		c.shardEpoch = resp.Epoch
		c.shardArcs = c.shardArcs[:0]
		// Routed connections opened under the old map may now front
		// ranges whose owner changed; their next read must re-prove
		// read-your-writes.
		for _, pc := range c.pool {
			pc.fence = true
		}
		changed = true
	}
	if resp.Addr == "" {
		return changed
	}
	arc := routeArc{resp.RangeLo, resp.RangeHi, resp.Group, resp.Addr}
	for i := range c.shardArcs {
		if c.shardArcs[i].lo == resp.RangeLo && c.shardArcs[i].hi == resp.RangeHi {
			if c.shardArcs[i] == arc {
				return changed
			}
			c.shardArcs[i] = arc
			return true
		}
	}
	c.shardArcs = append(c.shardArcs, arc)
	return true
}

// evictRouteLocked forgets every cached arc routed at addr (its owner is
// unreachable); the next op on those keys falls back to the redirect
// path.
func (c *Client) evictRouteLocked(addr string) {
	kept := c.shardArcs[:0]
	for _, a := range c.shardArcs {
		if a.addr != addr {
			kept = append(kept, a)
		}
	}
	c.shardArcs = kept
}

// ensurePooled returns the routed connection for addr, dialing one if
// needed. Fresh connections start fenced: their first read is barrier-
// upgraded so read-your-writes holds across the route hop.
func (c *Client) ensurePooled(addr string) (*pconn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if pc := c.pool[addr]; pc != nil {
		c.mu.Unlock()
		return pc, nil
	}
	c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	pc := &pconn{addr: addr, conn: conn, br: bufio.NewReader(conn), fence: true}
	c.pool[addr] = pc
	c.mu.Unlock()
	return pc, nil
}

// closePooledLocked closes a routed connection and removes it from the
// pool.
func (c *Client) closePooledLocked(pc *pconn) {
	_ = pc.conn.Close()
	if c.pool[pc.addr] == pc {
		delete(c.pool, pc.addr)
	}
}

// dropLocked abandons the pinned connection.
func (c *Client) dropLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.br = nil
	}
	c.pinned = ""
}
