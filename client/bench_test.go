package client_test

import (
	"testing"

	"newtop/internal/perf"
)

// BenchmarkClientRoundTrip measures one acked client write end to end:
// loopback TCP framing, replica propose, apply through the total order,
// acked response. The body lives in internal/perf so cmd/newtop-bench
// records the same measurement into BENCH_core.json.
func BenchmarkClientRoundTrip(b *testing.B) { perf.ClientRoundTrip(b) }
