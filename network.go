package newtop

import (
	"time"

	"newtop/internal/transport/memnet"
	"newtop/internal/types"
)

// Network is an in-memory message network connecting Processes started
// with Config.Network. It models the paper's asynchronous environment —
// randomised latency, link cuts, partitions, crashes — and is the
// transport used by the examples, tests and benchmarks. All methods are
// safe for concurrent use.
type Network struct {
	inner *memnet.Network
}

// NetworkOption configures a Network.
type NetworkOption func(*networkConfig)

type networkConfig struct {
	latMin, latMax time.Duration
	seed           int64
	hasSeed        bool
}

// WithLatency sets the per-message delivery latency band.
func WithLatency(min, max time.Duration) NetworkOption {
	return func(c *networkConfig) { c.latMin, c.latMax = min, max }
}

// WithSeed makes the latency jitter reproducible.
func WithSeed(seed int64) NetworkOption {
	return func(c *networkConfig) { c.seed, c.hasSeed = seed, true }
}

// NewNetwork creates an in-memory network.
func NewNetwork(opts ...NetworkOption) *Network {
	cfg := networkConfig{latMin: 50 * time.Microsecond, latMax: 200 * time.Microsecond}
	for _, o := range opts {
		o(&cfg)
	}
	mopts := []memnet.Option{memnet.WithLatency(cfg.latMin, cfg.latMax)}
	if cfg.hasSeed {
		mopts = append(mopts, memnet.WithSeed(cfg.seed))
	}
	return &Network{inner: memnet.New(mopts...)}
}

// Disconnect cuts the bidirectional link between a and b; messages in
// flight are lost.
func (n *Network) Disconnect(a, b ProcessID) { n.inner.Disconnect(a, b) }

// Reconnect heals the link between a and b.
func (n *Network) Reconnect(a, b ProcessID) { n.inner.Reconnect(a, b) }

// Partition splits the attached processes into islands: cross-island
// links are cut, intra-island links healed.
func (n *Network) Partition(islands ...[]ProcessID) {
	conv := make([][]types.ProcessID, len(islands))
	for i, is := range islands {
		conv[i] = is
	}
	n.inner.Partition(conv...)
}

// Heal removes every link cut.
func (n *Network) Heal() { n.inner.Heal() }

// Crash permanently stops process p at the transport (crash-stop).
func (n *Network) Crash(p ProcessID) { n.inner.Crash(p) }

// Connected reports whether messages currently flow from a to b.
func (n *Network) Connected(a, b ProcessID) bool { return n.inner.Connected(a, b) }

// Close shuts the network and every attached endpoint down.
func (n *Network) Close() { n.inner.Close() }
