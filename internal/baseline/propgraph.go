package baseline

import (
	"fmt"
	"sort"
)

// Garcia-Molina & Spauster's ordered multicast [9] totally orders messages
// across overlapping groups with a propagation graph: overlapping groups
// are joined under a common ordering node, and every message first travels
// to the meet point of its group's component, is sequenced there, and then
// propagates to the members. §6 of the Newtop paper contrasts this with
// Newtop's coordination-free overlapping groups ("unlike [9], it does not
// require that a common sequencer be chosen for overlapping groups nor
// that the sequencers of different overlapping groups coordinate").
//
// This implementation models the cost structure that comparison is about:
// per-component master sequencing (hot spot), an extra routing hop for
// every multicast, and a single total order per overlap component.

// GroupSpec names a group and its member processes.
type GroupSpec struct {
	ID      int
	Members []int
}

// PropGraph is a propagation-graph orderer over a static set of groups.
type PropGraph struct {
	groups    map[int]GroupSpec
	component map[int]int // group ID → component root group ID
	masters   map[int]int // component root → master process
	seq       map[int]uint64
	msgsAt    map[int]uint64 // per-process forwarding/sequencing load
}

// OrderedMsg is a sequenced multicast: Seq is unique and totally ordered
// within the overlap component.
type OrderedMsg struct {
	Group   int
	Seq     uint64
	Sender  int
	Master  int
	Payload []byte
}

// NewPropGraph builds the propagation graph: groups sharing members are
// merged into components (union-find), and each component's master is its
// lowest-numbered member process.
func NewPropGraph(specs []GroupSpec) (*PropGraph, error) {
	pg := &PropGraph{
		groups:    make(map[int]GroupSpec),
		component: make(map[int]int),
		masters:   make(map[int]int),
		seq:       make(map[int]uint64),
		msgsAt:    make(map[int]uint64),
	}
	parent := make(map[int]int)
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	byMember := make(map[int]int) // member → some group it belongs to
	for _, g := range specs {
		if len(g.Members) == 0 {
			return nil, fmt.Errorf("baseline: group %d has no members", g.ID)
		}
		if _, dup := pg.groups[g.ID]; dup {
			return nil, fmt.Errorf("baseline: duplicate group %d", g.ID)
		}
		ms := append([]int(nil), g.Members...)
		sort.Ints(ms)
		pg.groups[g.ID] = GroupSpec{ID: g.ID, Members: ms}
		parent[g.ID] = g.ID
		for _, m := range ms {
			if prev, ok := byMember[m]; ok {
				union(prev, g.ID)
			} else {
				byMember[m] = g.ID
			}
		}
	}
	for id := range pg.groups {
		root := find(id)
		pg.component[id] = root
	}
	// Master of a component: lowest process ID across its groups.
	for id, root := range pg.component {
		master, ok := pg.masters[root]
		low := pg.groups[id].Members[0]
		if !ok || low < master {
			pg.masters[root] = low
		}
	}
	return pg, nil
}

// Master returns the ordering master process for group g.
func (pg *PropGraph) Master(g int) (int, error) {
	root, ok := pg.component[g]
	if !ok {
		return 0, fmt.Errorf("baseline: unknown group %d", g)
	}
	return pg.masters[root], nil
}

// SameComponent reports whether two groups share an ordering master.
func (pg *PropGraph) SameComponent(a, b int) bool {
	return pg.component[a] == pg.component[b] && pg.component[a] != 0
}

// Multicast routes one message: unicast to the component master (one hop,
// unless the sender is the master), sequencing there, then one multicast
// copy per destination. It returns the ordered message and the number of
// point-to-point transmissions consumed.
func (pg *PropGraph) Multicast(g, sender int, payload []byte) (*OrderedMsg, int, error) {
	spec, ok := pg.groups[g]
	if !ok {
		return nil, 0, fmt.Errorf("baseline: unknown group %d", g)
	}
	root := pg.component[g]
	master := pg.masters[root]
	pg.seq[root]++
	hops := 0
	if sender != master {
		hops++ // forwarding unicast to the meet point
		pg.msgsAt[master]++
	}
	for _, m := range spec.Members {
		if m != master {
			hops++
		}
		pg.msgsAt[m]++
	}
	return &OrderedMsg{
		Group: g, Seq: pg.seq[root], Sender: sender, Master: master, Payload: payload,
	}, hops, nil
}

// LoadAt returns the number of messages process p has handled (sequencing
// plus receiving) — the hot-spot metric for benchmark C7.
func (pg *PropGraph) LoadAt(p int) uint64 { return pg.msgsAt[p] }

// MaxLoad returns the highest per-process load and the process bearing it.
func (pg *PropGraph) MaxLoad() (proc int, load uint64) {
	for p, l := range pg.msgsAt {
		if l > load || (l == load && p < proc) {
			proc, load = p, l
		}
	}
	return proc, load
}
