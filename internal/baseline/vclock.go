// Package baseline implements the comparator protocols that §6 of the
// Newtop paper positions against: an ISIS-style vector-clock causal
// multicast (CBCAST [4]), a fixed-sequencer total-order multicast
// (ABCAST-style), and the Garcia-Molina/Spauster propagation-graph
// ordering for overlapping groups [9]. The experiment harness runs them
// head-to-head with Newtop to regenerate the paper's comparative claims:
// message space overhead (benchmark C1) and multi-group ordering cost
// (benchmark C7).
//
// The baselines are failure-free protocol cores — the comparison targets
// ordering structure and header cost, not fault tolerance.
package baseline

import (
	"encoding/binary"
	"fmt"
)

// VCMessage is a vector-clock-stamped multicast (CBCAST-style): the header
// carries one counter per group member, so its size grows linearly with
// group size — the overhead Newtop's paper contrasts with its own bounded
// header (§6).
type VCMessage struct {
	Sender  int // index of the sender within the group
	VT      []uint64
	Payload []byte
}

// HeaderBytes returns the encoded header size of m (everything except the
// payload), using the same varint conventions as Newtop's codec so the C1
// comparison is apples-to-apples.
func (m *VCMessage) HeaderBytes() int {
	n := 1 // kind
	n += uvarintLen(uint64(m.Sender))
	n += uvarintLen(uint64(len(m.VT)))
	for _, v := range m.VT {
		n += uvarintLen(v)
	}
	n += uvarintLen(uint64(len(m.Payload)))
	return n
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}

// CausalProcess is one group member running vector-clock causal broadcast:
// deliver m from sender s when VT(m)[s] = VT(p)[s]+1 and
// VT(m)[k] ≤ VT(p)[k] for all k ≠ s (the CBCAST condition).
type CausalProcess struct {
	self    int
	n       int
	vt      []uint64
	pending []*VCMessage
}

// NewCausalProcess creates member self of an n-member group.
func NewCausalProcess(self, n int) (*CausalProcess, error) {
	if self < 0 || self >= n {
		return nil, fmt.Errorf("baseline: member %d out of range [0,%d)", self, n)
	}
	return &CausalProcess{self: self, n: n, vt: make([]uint64, n)}, nil
}

// VT returns a copy of the process's current vector time.
func (p *CausalProcess) VT() []uint64 {
	return append([]uint64(nil), p.vt...)
}

// Send stamps and returns a new multicast, advancing the local vector.
// The sender delivers its own message immediately (as CBCAST does).
func (p *CausalProcess) Send(payload []byte) *VCMessage {
	p.vt[p.self]++
	return &VCMessage{
		Sender:  p.self,
		VT:      append([]uint64(nil), p.vt...),
		Payload: payload,
	}
}

// Receive processes an incoming multicast and returns every message that
// became deliverable (in delivery order). Duplicates and own messages are
// ignored.
func (p *CausalProcess) Receive(m *VCMessage) []*VCMessage {
	if m.Sender == p.self {
		return nil
	}
	p.pending = append(p.pending, m)
	var out []*VCMessage
	for {
		advanced := false
		for i, q := range p.pending {
			if q == nil || !p.deliverable(q) {
				continue
			}
			p.vt[q.Sender]++
			out = append(out, q)
			p.pending[i] = nil
			advanced = true
		}
		if !advanced {
			break
		}
	}
	// Compact the pending list.
	kept := p.pending[:0]
	for _, q := range p.pending {
		if q != nil {
			kept = append(kept, q)
		}
	}
	p.pending = kept
	return out
}

// Pending returns the number of received-but-undeliverable messages.
func (p *CausalProcess) Pending() int { return len(p.pending) }

func (p *CausalProcess) deliverable(m *VCMessage) bool {
	if m.VT[m.Sender] != p.vt[m.Sender]+1 {
		return false
	}
	for k := 0; k < p.n; k++ {
		if k == m.Sender {
			continue
		}
		if m.VT[k] > p.vt[k] {
			return false
		}
	}
	return true
}
