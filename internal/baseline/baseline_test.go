package baseline

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCausalProcessBasicDelivery(t *testing.T) {
	a, err := NewCausalProcess(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewCausalProcess(1, 3)
	m := a.Send([]byte("x"))
	out := b.Receive(m)
	if len(out) != 1 || string(out[0].Payload) != "x" {
		t.Fatalf("Receive = %v", out)
	}
}

func TestCausalProcessHoldsBackOutOfCausalOrder(t *testing.T) {
	a, _ := NewCausalProcess(0, 3)
	b, _ := NewCausalProcess(1, 3)
	c, _ := NewCausalProcess(2, 3)
	m1 := a.Send([]byte("m1"))
	// b delivers m1, then sends m2 (causally after m1).
	if got := b.Receive(m1); len(got) != 1 {
		t.Fatal("b did not deliver m1")
	}
	m2 := b.Send([]byte("m2"))
	// c receives m2 BEFORE m1: must hold it back.
	if got := c.Receive(m2); len(got) != 0 {
		t.Fatalf("c delivered causally premature message: %v", got)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d", c.Pending())
	}
	got := c.Receive(m1)
	if len(got) != 2 || string(got[0].Payload) != "m1" || string(got[1].Payload) != "m2" {
		t.Fatalf("causal delivery order wrong: %v", got)
	}
}

func TestCausalProcessInvalidMember(t *testing.T) {
	if _, err := NewCausalProcess(3, 3); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := NewCausalProcess(-1, 3); err == nil {
		t.Error("negative member accepted")
	}
}

// Property: random FIFO-per-sender interleavings always deliver the full
// set, in an order where each sender's stream is FIFO and causality
// (send-after-deliver) is respected.
func TestCausalDeliveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 4
		procs := make([]*CausalProcess, n)
		for i := range procs {
			procs[i], _ = NewCausalProcess(i, n)
		}
		type route struct {
			to int
			m  *VCMessage
		}
		var inFlight []route
		sent := 0
		delivered := make([]int, n)
		for step := 0; step < 200; step++ {
			if len(inFlight) == 0 || rng.Intn(2) == 0 {
				s := rng.Intn(n)
				m := procs[s].Send([]byte(fmt.Sprintf("%d", sent)))
				sent++
				delivered[s]++ // senders self-deliver
				for d := 0; d < n; d++ {
					if d != s {
						inFlight = append(inFlight, route{to: d, m: m})
					}
				}
				continue
			}
			// Deliver a random in-flight message — but per (sender,dest)
			// FIFO must hold, so pick the earliest in-flight for a random
			// destination/sender pair.
			i := rng.Intn(len(inFlight))
			pick := inFlight[i]
			for j := 0; j < i; j++ {
				if inFlight[j].to == pick.to && inFlight[j].m.Sender == pick.m.Sender {
					pick = inFlight[j]
					i = j
					break
				}
			}
			inFlight = append(inFlight[:i], inFlight[i+1:]...)
			delivered[pick.to] += len(procs[pick.to].Receive(pick.m))
		}
		// Flush everything remaining, FIFO per pair.
		for len(inFlight) > 0 {
			pick := inFlight[0]
			inFlight = inFlight[1:]
			delivered[pick.to] += len(procs[pick.to].Receive(pick.m))
		}
		for i := range procs {
			if procs[i].Pending() != 0 {
				return false
			}
			if delivered[i] != sent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVCMessageHeaderGrowsWithGroupSize(t *testing.T) {
	small := &VCMessage{Sender: 0, VT: make([]uint64, 3), Payload: []byte("x")}
	big := &VCMessage{Sender: 0, VT: make([]uint64, 128), Payload: []byte("x")}
	if small.HeaderBytes() >= big.HeaderBytes() {
		t.Error("vector clock header must grow with group size")
	}
	if d := big.HeaderBytes() - small.HeaderBytes(); d < 125 {
		t.Errorf("growth %d bytes for +125 members, want ≥ 125 (1 byte per zero counter)", d)
	}
}

func TestSequencerTotalOrder(t *testing.T) {
	var s Sequencer
	r1, r2 := NewSeqReceiver(), NewSeqReceiver()
	m1 := s.Stamp(0, []byte("a"))
	m2 := s.Stamp(1, []byte("b"))
	m3 := s.Stamp(0, []byte("c"))
	// r1 receives in order.
	var got1 []string
	for _, m := range []*SeqMessage{m1, m2, m3} {
		for _, d := range r1.Receive(m) {
			got1 = append(got1, string(d.Payload))
		}
	}
	// r2 receives out of order; delivery must still be in stamp order.
	var got2 []string
	for _, m := range []*SeqMessage{m3, m1, m2} {
		for _, d := range r2.Receive(m) {
			got2 = append(got2, string(d.Payload))
		}
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got1[i] != want[i] || got2[i] != want[i] {
			t.Fatalf("got1=%v got2=%v want=%v", got1, got2, want)
		}
	}
	if r2.Pending() != 0 {
		t.Errorf("pending = %d", r2.Pending())
	}
	// Duplicate is ignored.
	if out := r1.Receive(m2); len(out) != 0 {
		t.Errorf("duplicate delivered: %v", out)
	}
}

func TestPropGraphComponents(t *testing.T) {
	pg, err := NewPropGraph([]GroupSpec{
		{ID: 1, Members: []int{1, 2}},
		{ID: 2, Members: []int{2, 3}}, // overlaps g1 via P2
		{ID: 3, Members: []int{7, 8}}, // disjoint
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pg.SameComponent(1, 2) {
		t.Error("overlapping groups not merged")
	}
	if pg.SameComponent(1, 3) {
		t.Error("disjoint groups merged")
	}
	m1, _ := pg.Master(1)
	m2, _ := pg.Master(2)
	if m1 != m2 {
		t.Errorf("overlapping groups have different masters: %d vs %d", m1, m2)
	}
	if m1 != 1 {
		t.Errorf("master = %d, want lowest member 1", m1)
	}
	m3, _ := pg.Master(3)
	if m3 != 7 {
		t.Errorf("disjoint master = %d, want 7", m3)
	}
}

func TestPropGraphSharedOrderAcrossOverlap(t *testing.T) {
	pg, err := NewPropGraph([]GroupSpec{
		{ID: 1, Members: []int{1, 2}},
		{ID: 2, Members: []int{2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := pg.Multicast(1, 1, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := pg.Multicast(2, 3, []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	// One shared sequence across the component: strictly increasing.
	if !(a.Seq < b.Seq) {
		t.Errorf("component sequence not shared: %d, %d", a.Seq, b.Seq)
	}
}

func TestPropGraphLoadConcentratesAtMaster(t *testing.T) {
	pg, err := NewPropGraph([]GroupSpec{
		{ID: 1, Members: []int{1, 2}},
		{ID: 2, Members: []int{2, 3}},
		{ID: 3, Members: []int{3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, _, err := pg.Multicast(3, 4, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	proc, load := pg.MaxLoad()
	if proc != 1 {
		t.Errorf("hottest process = %d, want the chain master 1 (load %d)", proc, load)
	}
	// Master handles every message even though it is in neither sender's
	// group — the §6 coordination cost.
	if pg.LoadAt(1) < 30 {
		t.Errorf("master load = %d, want ≥ 30", pg.LoadAt(1))
	}
}

func TestPropGraphErrors(t *testing.T) {
	if _, err := NewPropGraph([]GroupSpec{{ID: 1}}); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewPropGraph([]GroupSpec{{ID: 1, Members: []int{1}}, {ID: 1, Members: []int{2}}}); err == nil {
		t.Error("duplicate group accepted")
	}
	pg, _ := NewPropGraph([]GroupSpec{{ID: 1, Members: []int{1}}})
	if _, err := pg.Master(9); err == nil {
		t.Error("unknown group Master accepted")
	}
	if _, _, err := pg.Multicast(9, 1, nil); err == nil {
		t.Error("unknown group Multicast accepted")
	}
}
