package baseline

// Fixed-sequencer total order (ABCAST-style): one distinguished process
// stamps every multicast with a global sequence number; members deliver in
// stamp order, holding back out-of-order arrivals. This is the classic
// asymmetric baseline §4.2 builds on (for a single group).

// SeqMessage is a sequencer-stamped multicast.
type SeqMessage struct {
	Seq     uint64
	Sender  int
	Payload []byte
}

// HeaderBytes returns the encoded header size (kind + seq + sender +
// payload length), for overhead comparisons.
func (m *SeqMessage) HeaderBytes() int {
	return 1 + uvarintLen(m.Seq) + uvarintLen(uint64(m.Sender)) + uvarintLen(uint64(len(m.Payload)))
}

// Sequencer stamps multicasts in arrival order.
type Sequencer struct {
	next uint64
}

// Stamp assigns the next global sequence number.
func (s *Sequencer) Stamp(sender int, payload []byte) *SeqMessage {
	s.next++
	return &SeqMessage{Seq: s.next, Sender: sender, Payload: payload}
}

// SeqReceiver delivers sequencer-stamped messages in sequence order.
type SeqReceiver struct {
	next     uint64
	holdback map[uint64]*SeqMessage
}

// NewSeqReceiver creates a receiver expecting sequence 1 first.
func NewSeqReceiver() *SeqReceiver {
	return &SeqReceiver{next: 1, holdback: make(map[uint64]*SeqMessage)}
}

// Receive buffers m and returns every message that became deliverable, in
// sequence order.
func (r *SeqReceiver) Receive(m *SeqMessage) []*SeqMessage {
	if m.Seq < r.next {
		return nil // duplicate
	}
	r.holdback[m.Seq] = m
	var out []*SeqMessage
	for {
		q, ok := r.holdback[r.next]
		if !ok {
			break
		}
		delete(r.holdback, r.next)
		out = append(out, q)
		r.next++
	}
	return out
}

// Pending returns the number of held-back messages.
func (r *SeqReceiver) Pending() int { return len(r.holdback) }
