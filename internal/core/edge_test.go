package core_test

import (
	"fmt"
	"testing"
	"time"

	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
)

func TestAtomicModeMembershipChange(t *testing.T) {
	// Atomic groups skip the ordering gate but still get view-synchronous
	// membership: the crashed member is excluded and late messages from
	// it are cut off consistently.
	c, ps := newCluster(t, 401, 4)
	if err := c.Bootstrap(1, core.Atomic, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if err := c.Submit(4, 1, payload(4, i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(50 * time.Millisecond)
	c.Crash(4)
	if !c.RunUntil(15*time.Second, viewExcludes(c, 1, ps[:3], 4)) {
		t.Fatal("atomic group never excluded the crashed member")
	}
	// All pre-crash messages arrived everywhere (FIFO atomic delivery).
	for _, p := range ps[:3] {
		if got := len(deliveredPayloads(c, p, 1)); got != 5 {
			t.Errorf("%v delivered %d, want 5", p, got)
		}
	}
}

func TestAsymmetricDynamicFormation(t *testing.T) {
	// §5.3 formation works for asymmetric groups too; the sequencer of
	// the new group is the lowest member and ordering works immediately.
	c, ps := newCluster(t, 403, 4)
	if err := c.CreateGroup(2, 7, core.Asymmetric, ps); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(15*time.Second, allReady(c, 7, ps)) {
		t.Fatal("asymmetric formation never completed")
	}
	for i := 0; i < 4; i++ {
		if err := c.Submit(ps[i], 7, payload(ps[i], i)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.RunUntil(15*time.Second, allDelivered(c, 7, ps, 4)) {
		t.Fatal("post-formation asymmetric deliveries incomplete")
	}
	if got := c.Engine(1).Stats().SeqMulticasts; got != 4 {
		t.Errorf("sequencer P1 multicast %d messages, want 4", got)
	}
	runChecks(t, c)
}

func TestSignatureViewsNormalCrash(t *testing.T) {
	// The §6 signature variant behaves identically to plain views on a
	// simple crash: one exclusion, identical signatures at survivors.
	c, ps := newCluster(t, 407, 4, func(cfg *core.Config) { cfg.SignatureViews = true })
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	c.Crash(4)
	if !c.RunUntil(15*time.Second, viewExcludes(c, 1, ps[:3], 4)) {
		t.Fatal("exclusion never happened")
	}
	ref := lastView(t, c, 1, 1)
	if ref.Excluded == nil {
		t.Fatal("signature views not carried")
	}
	for _, e := range ref.Excluded {
		if e != 1 {
			t.Errorf("exclusion count = %d, want 1", e)
		}
	}
	for _, p := range ps[1:3] {
		if v := lastView(t, c, p, 1); !v.Equal(ref) {
			t.Errorf("%v signature view %v != %v", p, v, ref)
		}
	}
	runChecks(t, c, 4)
}

func TestCrossGroupProgramOrderPreservedUnderFlowControl(t *testing.T) {
	// Regression for the global-FIFO-queue invariant: with flow control
	// throttling group 1, a subsequent submit to group 2 must NOT
	// overtake the queued group-1 messages (same-process causal order).
	c, _ := newCluster(t, 409, 4, func(cfg *core.Config) { cfg.FlowControlWindow = 2 })
	g1 := []types.ProcessID{1, 2, 3}
	g2 := []types.ProcessID{1, 2, 4}
	if err := c.Bootstrap(1, core.Symmetric, g1); err != nil {
		t.Fatal(err)
	}
	if err := c.Bootstrap(2, core.Symmetric, g2); err != nil {
		t.Fatal(err)
	}
	// Burst into g1 beyond the window, then one message into g2.
	for i := 0; i < 10; i++ {
		if err := c.Submit(1, 1, []byte(fmt.Sprintf("g1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Submit(1, 2, []byte("g2-after")); err != nil {
		t.Fatal(err)
	}
	done := func() bool {
		return allDelivered(c, 1, g1, 10)() && allDelivered(c, 2, g2, 1)()
	}
	if !c.RunUntil(30*time.Second, done) {
		t.Fatal("deliveries incomplete")
	}
	// P2 is in both groups: it must see every g1 message before g2-after.
	var sawAfter bool
	var g1Count int
	for _, d := range c.History(2).Deliveries {
		switch {
		case d.Group == 1:
			g1Count++
			if sawAfter {
				t.Fatalf("g1 message delivered after the causally later g2 message")
			}
		case d.Group == 2 && string(d.Payload) == "g2-after":
			if g1Count != 10 {
				t.Fatalf("g2-after delivered after only %d g1 messages", g1Count)
			}
			sawAfter = true
		}
	}
	runChecks(t, c)
}

func TestStabilityGCBoundsLog(t *testing.T) {
	// §5.1: stable messages are discarded. After sustained traffic with
	// all members live, the retained log must stay small (proportional to
	// the stability lag, not to history length).
	c, ps := newCluster(t, 411, 3)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		src := ps[i%3]
		if err := c.Submit(src, 1, payload(src, i)); err != nil {
			t.Fatal(err)
		}
		c.Run(time.Millisecond)
	}
	if !c.RunUntil(15*time.Second, allDelivered(c, 1, ps, 200)) {
		t.Fatal("incomplete")
	}
	c.Run(500 * time.Millisecond) // several ω rounds: stability catches up
	for _, p := range ps {
		if got := c.Engine(p).LogSize(1); got > 40 {
			t.Errorf("%v retains %d messages after stability; want a small residue", p, got)
		}
	}
	runChecks(t, c)
}

func TestManyGroupsPerProcess(t *testing.T) {
	// A process in 8 groups simultaneously: D = min over all of them;
	// ordering must hold across every pair.
	c, _ := newCluster(t, 413, 5)
	hub := types.ProcessID(1)
	memberships := [][]types.ProcessID{
		{1, 2}, {1, 3}, {1, 4}, {1, 5},
		{1, 2, 3}, {1, 3, 4}, {1, 4, 5}, {1, 2, 5},
	}
	var groups []types.GroupID
	for g, ms := range memberships {
		gid := types.GroupID(g + 1)
		if err := c.Bootstrap(gid, core.Symmetric, ms); err != nil {
			t.Fatal(err)
		}
		groups = append(groups, gid)
	}
	for i := 0; i < 3; i++ {
		for _, g := range groups {
			if err := c.Submit(hub, g, []byte(fmt.Sprintf("h-%v-%d", g, i))); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(2 * time.Millisecond)
	}
	ok := c.RunUntil(20*time.Second, func() bool {
		return len(c.History(hub).Deliveries) >= 24
	})
	if !ok {
		t.Fatal("hub deliveries incomplete")
	}
	runChecks(t, c)
	if got := len(c.Engine(hub).Groups()); got != 8 {
		t.Errorf("hub groups = %d", got)
	}
}

func TestPartitionHealedBeforeSuspicionTimeout(t *testing.T) {
	// A cut shorter than Ω with no traffic during it: nothing is lost,
	// nobody is suspected, no view changes.
	c, ps := newCluster(t, 417, 3)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	viewsBefore := c.Engine(1).Stats().ViewChanges
	c.Disconnect(1, 3)
	c.Run(40 * time.Millisecond) // < Ω = 100ms
	c.Reconnect(1, 3)
	if err := c.Submit(3, 1, []byte("post-heal")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(15*time.Second, allDelivered(c, 1, ps, 1)) {
		t.Fatal("post-heal delivery failed")
	}
	c.Run(300 * time.Millisecond)
	// Nulls lost during the cut create gaps, which may trigger transient
	// suspicion + recovery — but no exclusion may result.
	for _, p := range ps {
		if v := lastView(t, c, p, 1); v.Size() != 3 {
			t.Errorf("%v view shrank: %v", p, v)
		}
	}
	_ = viewsBefore
	runChecks(t, c)
}

func TestDeliveryViewIndexMatchesInstalledView(t *testing.T) {
	// The r in delivery(m, r): deliveries report the view index they
	// occurred in, before and after a change.
	c, ps := newCluster(t, 419, 3)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1, 1, []byte("epoch0")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(10*time.Second, allDelivered(c, 1, ps[:2], 1)) {
		t.Fatal("epoch0 delivery incomplete")
	}
	c.Crash(3)
	if !c.RunUntil(15*time.Second, viewExcludes(c, 1, ps[:2], 3)) {
		t.Fatal("exclusion never happened")
	}
	if err := c.Submit(1, 1, []byte("epoch1")); err != nil {
		t.Fatal(err)
	}
	ok := c.RunUntil(10*time.Second, func() bool {
		return len(deliveredPayloads(c, 2, 1)) >= 2
	})
	if !ok {
		t.Fatal("epoch1 delivery incomplete")
	}
	for _, d := range c.History(2).Deliveries {
		switch string(d.Payload) {
		case "epoch0":
			if d.View != 0 {
				t.Errorf("epoch0 delivered in view %d", d.View)
			}
		case "epoch1":
			if d.View != 1 {
				t.Errorf("epoch1 delivered in view %d", d.View)
			}
		}
	}
	runChecks(t, c, 3)
}

func TestEngineDeterminism(t *testing.T) {
	// Two identical engines fed the identical event sequence emit the
	// identical effect sequence (the property the simulator relies on).
	runOnce := func() []string {
		e := core.NewEngine(core.Config{Self: 1, Omega: 20 * time.Millisecond})
		now := sim.Epoch
		var out []string
		apply := func(effs []core.Effect, err error) {
			if err != nil {
				t.Fatal(err)
			}
			for _, eff := range effs {
				out = append(out, eff.String())
			}
		}
		apply(e.BootstrapGroup(now, 1, core.Symmetric, []types.ProcessID{1, 2, 3}))
		apply(e.Submit(now, 1, []byte("a")))
		m := &types.Message{Kind: types.KindData, Group: 1, Sender: 2, Origin: 2, Num: 5, Seq: 1, Payload: []byte("b")}
		out = append(out, effStrings(e.HandleMessage(now.Add(time.Millisecond), 2, m))...)
		out = append(out, effStrings(e.Tick(now.Add(25*time.Millisecond)))...)
		return out
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("effect counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("effects diverge at %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

func effStrings(effs []core.Effect) []string {
	out := make([]string, len(effs))
	for i, e := range effs {
		out[i] = e.String()
	}
	return out
}
