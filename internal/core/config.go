package core

import (
	"time"

	"newtop/internal/obs"
	"newtop/internal/types"
)

// OrderMode selects the delivery guarantee a process runs in a group. The
// generic version of Newtop (§4.3) lets one process use different modes in
// different groups simultaneously; mixed-mode correctness rests on the
// shared Lamport numbering plus the Mixed-mode Blocking Rule.
type OrderMode uint8

const (
	// Atomic delivers messages as they arrive (per-sender FIFO), with no
	// inter-sender ordering: the paper's plain atomic delivery, which
	// bypasses the logical-clock gate (fig. 3). Membership and view
	// atomicity still apply.
	Atomic OrderMode = iota + 1
	// Symmetric is the decentralised total-order protocol of §4.1: every
	// member multicasts directly, delivery is gated by the receive-vector
	// minimum D.
	Symmetric
	// Asymmetric is the sequencer-based protocol of §4.2: members unicast
	// to a deterministic sequencer which multicasts in receipt order.
	Asymmetric
)

// String implements fmt.Stringer.
func (m OrderMode) String() string {
	switch m {
	case Atomic:
		return "atomic"
	case Symmetric:
		return "symmetric"
	case Asymmetric:
		return "asymmetric"
	default:
		return "unknown"
	}
}

// Default protocol timing parameters.
const (
	// DefaultOmega is the default time-silence interval ω (§4.1): a
	// process sends a null message in a group after ω without sending.
	DefaultOmega = 50 * time.Millisecond
	// DefaultSuspicionFactor scales ω to the failure-suspicion interval
	// Ω (§5.2 requires Ω > ω; the slack absorbs transmission delay).
	DefaultSuspicionFactor = 5
	// DefaultFormationFactor scales ω to the formation-vote timeout
	// (§5.3 step 3: the initiator vetoes if yes-votes do not arrive
	// "within some time duration").
	DefaultFormationFactor = 20
)

// Config parameterises a protocol engine for one process.
type Config struct {
	// Self is the process identity; must be non-zero and unique.
	Self types.ProcessID

	// Omega is the time-silence interval ω. Zero selects DefaultOmega.
	Omega time.Duration

	// SuspicionTimeout is Ω, the silence span after which the failure
	// suspector suspects a member (§5.2). Zero selects
	// DefaultSuspicionFactor × Omega. Must exceed Omega.
	SuspicionTimeout time.Duration

	// FormationTimeout bounds the §5.3 vote-collection phase. Zero
	// selects DefaultFormationFactor × Omega.
	FormationTimeout time.Duration

	// SignatureViews enables the §6 variant adapted from Schiper &
	// Ricciardi: views carry {process, exclusion-count} signatures and
	// concurrent views never intersect.
	SignatureViews bool

	// FlowControlWindow bounds the number of this process's own
	// unstable (not-yet-everywhere-received) messages per group; further
	// Submit calls are queued until stability advances. Zero disables
	// flow control. Implements the mechanism referenced in §7 / [11].
	FlowControlWindow int

	// DisableFailureDetection turns off time-silence-driven suspicion,
	// giving the static failure-free protocol of §4 (where only
	// asymmetric sequencers run time-silence). Mainly for experiments.
	DisableFailureDetection bool

	// AcceptInvite decides whether to vote yes on a group-formation
	// invitation (§5.3 step 2). Nil accepts every invitation. coord is
	// the formation coordinator — the process that initiated CreateGroup.
	// It lets an invitee classify the formation: a joiner coordinates its
	// own join, so a member list with a stranger in it coordinated by an
	// incumbent is a post-heal merge, not a join.
	AcceptInvite func(g types.GroupID, coord types.ProcessID, members []types.ProcessID) bool

	// MessageArena recycles the structs of the engine's own outbound
	// data-plane messages (application multicasts, time-silence nulls)
	// through a per-group free list once both the stability log and the
	// delivery queue have released them, removing the last per-message
	// heap allocation from the steady-state send path.
	//
	// Only enable it when the surrounding runtime consumes effect batches
	// synchronously and never retains a *types.Message across engine
	// calls: internal/node qualifies (its transports marshal frames at
	// enqueue, inside Send), as does internal/sim in wire-codec mode
	// (frames are encoded at transmit time). The default simulator mode
	// does NOT qualify — it passes message pointers between engines — and
	// must keep this off.
	MessageArena bool

	// Metrics, when set, receives the engine's observability series:
	// labeled drop counters, gate-stall reasons, log-gc pause and
	// queue/arena/log depth gauges. Handle resolution happens once in
	// NewEngine; per-stimulus updates are lock-free atomics, and a nil
	// registry reduces every update to one branch.
	Metrics *obs.Registry

	// Tracer, when set, stamps the lifecycle stages of sampled data-plane
	// messages (submit → send → receive → ordered → stable → delivered)
	// with the same `now` the engine is driven with — virtual time under
	// sim, wall clock under node — so simulated traces are
	// seed-deterministic.
	Tracer *obs.Tracer
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.Omega <= 0 {
		cfg.Omega = DefaultOmega
	}
	if cfg.SuspicionTimeout <= 0 {
		cfg.SuspicionTimeout = DefaultSuspicionFactor * cfg.Omega
	}
	if cfg.FormationTimeout <= 0 {
		cfg.FormationTimeout = DefaultFormationFactor * cfg.Omega
	}
	return cfg
}

// Stats counts protocol activity at one process; the harness aggregates
// them across processes for the experiment tables.
type Stats struct {
	DataSent      uint64 // application multicasts initiated
	NullsSent     uint64 // time-silence null messages multicast
	SeqRequests   uint64 // asymmetric unicasts to sequencers
	SeqMulticasts uint64 // multicasts performed as sequencer
	CtrlSent      uint64 // membership/formation messages multicast
	MsgsSent      uint64 // total point-to-point transmissions (SendEffects)
	Delivered     uint64 // application deliveries
	NullsDropped  uint64 // nulls processed (never delivered)
	ViewChanges   uint64 // views installed
	Suspicions    uint64 // suspicions raised by local suspector
	Refutes       uint64 // refute messages sent
	Recovered     uint64 // messages recovered via refute piggyback
	Discarded     uint64 // messages discarded by view cutoff (m.c > lnmn)
	BlockedSends  uint64 // sends queued by a blocking rule
	FlowBlocked   uint64 // sends queued by flow control
	Gaps          uint64 // FIFO sequence gaps detected (transport loss)
}
