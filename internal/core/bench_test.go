package core_test

import (
	"fmt"
	"testing"
	"time"

	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
)

// Engine micro-benchmarks: end-to-end protocol throughput under the
// deterministic simulator (all members, full ordering and stability
// machinery engaged). These are ablation-style measurements of the
// implementation, complementing the paper-level experiments in the
// repository root.

func benchClusterN(b *testing.B, n int, mode core.OrderMode) (*sim.Cluster, []types.ProcessID) {
	b.Helper()
	c := sim.New(1, sim.WithLatency(100*time.Microsecond, 300*time.Microsecond))
	ps := make([]types.ProcessID, 0, n)
	for i := 1; i <= n; i++ {
		c.AddProcess(core.Config{Self: types.ProcessID(i), Omega: 5 * time.Millisecond})
		ps = append(ps, types.ProcessID(i))
	}
	if err := c.Bootstrap(1, mode, ps); err != nil {
		b.Fatal(err)
	}
	return c, ps
}

func benchThroughput(b *testing.B, n int, mode core.OrderMode) {
	c, ps := benchClusterN(b, n, mode)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := ps[i%len(ps)]
		if err := c.Submit(src, 1, []byte(fmt.Sprintf("b%d", i))); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			c.Run(10 * time.Millisecond) // let deliveries drain
		}
	}
	c.Run(200 * time.Millisecond)
	b.StopTimer()
	want := b.N
	got := len(c.History(ps[0]).Deliveries)
	if got < want {
		b.Fatalf("delivered %d of %d", got, want)
	}
}

func BenchmarkEngineSymmetricN3(b *testing.B)  { benchThroughput(b, 3, core.Symmetric) }
func BenchmarkEngineSymmetricN9(b *testing.B)  { benchThroughput(b, 9, core.Symmetric) }
func BenchmarkEngineAsymmetricN3(b *testing.B) { benchThroughput(b, 3, core.Asymmetric) }
func BenchmarkEngineAsymmetricN9(b *testing.B) { benchThroughput(b, 9, core.Asymmetric) }
func BenchmarkEngineAtomicN9(b *testing.B)     { benchThroughput(b, 9, core.Atomic) }

// BenchmarkEngineHandleMessage isolates the receive path: one engine
// processing a pre-built stream of data messages from a peer.
func BenchmarkEngineHandleMessage(b *testing.B) {
	e := core.NewEngine(core.Config{Self: 1, Omega: time.Hour})
	now := sim.Epoch
	if _, err := e.BootstrapGroup(now, 1, core.Symmetric, []types.ProcessID{1, 2}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &types.Message{
			Kind: types.KindData, Group: 1, Sender: 2, Origin: 2,
			Num: types.MsgNum(i + 1), Seq: uint64(i + 1), LDN: types.MsgNum(i),
			Payload: []byte("x"),
		}
		e.HandleMessage(now, 2, m)
	}
}

// BenchmarkMembershipAgreement measures a full crash-to-view-change cycle.
func BenchmarkMembershipAgreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, ps := benchClusterN(b, 5, core.Symmetric)
		c.Run(20 * time.Millisecond)
		c.Crash(5)
		ok := c.RunUntil(10*time.Second, func() bool {
			for _, p := range ps[:4] {
				vs := c.History(p).Views[1]
				if len(vs) == 0 || vs[len(vs)-1].View.Contains(5) {
					return false
				}
			}
			return true
		})
		if !ok {
			b.Fatal("agreement never completed")
		}
	}
}

// BenchmarkGroupFormation measures the §5.3 protocol end to end.
func BenchmarkGroupFormation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := sim.New(int64(i+1), sim.WithLatency(100*time.Microsecond, 300*time.Microsecond))
		ps := make([]types.ProcessID, 0, 5)
		for j := 1; j <= 5; j++ {
			c.AddProcess(core.Config{Self: types.ProcessID(j), Omega: 5 * time.Millisecond})
			ps = append(ps, types.ProcessID(j))
		}
		if err := c.CreateGroup(1, 7, core.Symmetric, ps); err != nil {
			b.Fatal(err)
		}
		ok := c.RunUntil(10*time.Second, func() bool {
			for _, p := range ps {
				if !c.Engine(p).GroupReady(7) {
					return false
				}
			}
			return true
		})
		if !ok {
			b.Fatal("formation never completed")
		}
	}
}
