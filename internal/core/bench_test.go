package core_test

import (
	"testing"

	"newtop/internal/core"
	"newtop/internal/perf"
)

// Engine micro-benchmarks: end-to-end protocol throughput under the
// deterministic simulator (all members, full ordering and stability
// machinery engaged). The benchmark bodies live in internal/perf so that
// cmd/newtop-bench can run the identical measurements programmatically
// and emit BENCH_core.json; payloads are pre-generated there, outside the
// timed loops, so these numbers measure the engine, not fmt.

func BenchmarkEngineSymmetricN3(b *testing.B)  { perf.EngineThroughput(b, 3, core.Symmetric) }
func BenchmarkEngineSymmetricN9(b *testing.B)  { perf.EngineThroughput(b, 9, core.Symmetric) }
func BenchmarkEngineAsymmetricN3(b *testing.B) { perf.EngineThroughput(b, 3, core.Asymmetric) }
func BenchmarkEngineAsymmetricN9(b *testing.B) { perf.EngineThroughput(b, 9, core.Asymmetric) }
func BenchmarkEngineAtomicN9(b *testing.B)     { perf.EngineThroughput(b, 9, core.Atomic) }

// BenchmarkEngineHandleMessage isolates the receive path: one engine
// processing a pre-built stream of data messages from a peer.
func BenchmarkEngineHandleMessage(b *testing.B) { perf.EngineHandleMessage(b) }

// BenchmarkEngineArenaCycle measures the steady-state heap cost of a full
// own-message lifecycle with the message arena on.
func BenchmarkEngineArenaCycle(b *testing.B) { perf.EngineArenaCycle(b) }

// BenchmarkRingDisseminateN9 measures 16 KiB ring dissemination into a
// 9-member group.
func BenchmarkRingDisseminateN9(b *testing.B) { perf.RingDisseminateN9(b) }

// BenchmarkMetricsHotPath measures one counter+gauge+histogram update
// against pre-resolved handles; the CI gate pins it at 0 allocs/op.
func BenchmarkMetricsHotPath(b *testing.B) { perf.MetricsHotPath(b) }

// BenchmarkMembershipAgreement measures a full crash-to-view-change cycle.
func BenchmarkMembershipAgreement(b *testing.B) { perf.MembershipAgreement(b) }

// BenchmarkGroupFormation measures the §5.3 protocol end to end.
func BenchmarkGroupFormation(b *testing.B) { perf.GroupFormation(b) }
