package core

import (
	"time"

	"newtop/internal/types"
)

// tickGroup drives one group's timeout machinery.
func (e *Engine) tickGroup(now time.Time, gs *groupState) {
	switch gs.status {
	case statusForming:
		e.tickFormation(now, gs)
		return
	case statusStartWait, statusActive:
	default:
		return
	}

	// Time-silence (§4.1): multicast a null if we have sent nothing in
	// this group for ω.
	if gs.runsTimeSilence(e.cfg.Self, !e.cfg.DisableFailureDetection) &&
		now.Sub(gs.lastSent) >= e.cfg.Omega {
		e.sendNull(now, gs)
	}

	// Failure suspicion (§5.2): suspect members silent for Ω > ω. Every
	// view member has a dense slot with lastHeard primed at activation,
	// so the scan is a straight pass over the member table.
	if !e.cfg.DisableFailureDetection {
		for i, p := range gs.view.Members {
			if p == e.cfg.Self || gs.isRemoved(p) {
				continue
			}
			if _, suspected := gs.suspicions[p]; suspected {
				continue
			}
			if now.Sub(gs.mem[i].lastHeard) >= e.cfg.SuspicionTimeout {
				e.raiseSuspicion(now, gs, p)
			}
		}
	}
}

// tickFormation aborts a formation whose vote phase exceeded the deadline
// (§5.3 step 3: the initiator's timeout acts as a veto; non-initiators
// abort symmetrically in case the initiator crashed mid-formation).
func (e *Engine) tickFormation(now time.Time, gs *groupState) {
	f := gs.formation
	if f == nil || now.Before(f.deadline) {
		return
	}
	no := &types.Message{
		Kind: types.KindFormVote, Group: gs.id,
		Sender: e.cfg.Self, Origin: e.cfg.Self,
		Vote: false, Invite: f.members, Payload: []byte{byte(f.mode)},
	}
	e.stats.CtrlSent++
	e.mcastTo(f.members, no)
	e.emit(FormationFailedEffect{Group: gs.id, Reason: "vote timeout"})
	delete(e.groups, gs.id)
	e.groupsChanged()
	delete(e.pre, gs.id)
	e.left[gs.id] = true
}
