package core_test

import (
	"fmt"
	"testing"
	"time"

	"newtop/internal/check"
	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
)

// lastView returns p's most recent view of g (fails the test if none).
func lastView(t *testing.T, c *sim.Cluster, p types.ProcessID, g types.GroupID) types.View {
	t.Helper()
	v, ok := check.FinalView(c, p, g)
	if !ok {
		t.Fatalf("%v installed no view for %v", p, g)
	}
	return v
}

// viewExcludes builds a RunUntil condition: every listed process's latest
// view of g excludes all of excluded.
func viewExcludes(c *sim.Cluster, g types.GroupID, procs []types.ProcessID, excluded ...types.ProcessID) func() bool {
	return func() bool {
		for _, p := range procs {
			vs := c.History(p).Views[g]
			if len(vs) == 0 {
				return false
			}
			last := vs[len(vs)-1].View
			for _, x := range excluded {
				if last.Contains(x) {
					return false
				}
			}
		}
		return true
	}
}

// TestDiscardDuringPartition exercises the §5.2 step-viii cutoff under a
// partition: messages from the to-be-excluded side that sit undelivered in
// survivor queues above the agreed lnmn must be discarded (heap rebuilt in
// one O(n) pass) and never delivered, while the survivors stay mutually
// consistent.
func TestDiscardDuringPartition(t *testing.T) {
	c, ps := newCluster(t, 7, 5)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(100 * time.Millisecond)

	// P1 stops hearing P4; P4's burst reaches P2/P3/P5 but is not
	// deliverable there (P1's receive vector pins D below the burst), so
	// it sits in their delivery queues.
	c.Disconnect(4, 1)
	for i := 0; i < 5; i++ {
		if err := c.Submit(4, 1, []byte(fmt.Sprintf("doomed-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(10 * time.Millisecond)
	queued := 0
	for _, p := range []types.ProcessID{2, 3} {
		queued += c.Engine(p).PendingDeliveries()
	}
	if queued == 0 {
		t.Fatal("burst not pending anywhere — scenario mis-staged")
	}

	// Partition away {4,5}. The agreement's lnmn is pinned by P1 (which
	// missed the burst), so P2/P3 must discard it from their queues on
	// view cutoff.
	c.Partition([]types.ProcessID{1, 2, 3}, []types.ProcessID{4, 5})
	survivors := []types.ProcessID{1, 2, 3}
	if !c.RunUntil(60*time.Second, viewExcludes(c, 1, survivors, 4, 5)) {
		t.Fatal("survivors never excluded the partitioned side")
	}
	c.Run(500 * time.Millisecond)

	var discarded uint64
	for _, p := range survivors {
		discarded += c.Engine(p).Stats().Discarded
	}
	if discarded == 0 {
		t.Fatal("view cutoff discarded nothing")
	}
	for _, p := range survivors {
		for _, d := range c.History(p).Deliveries {
			if len(d.Payload) >= 6 && string(d.Payload[:6]) == "doomed" {
				t.Fatalf("%v delivered %q past the cutoff", p, d.Payload)
			}
		}
		if n := c.Engine(p).PendingDeliveries(); n != 0 {
			t.Errorf("%v still has %d undelivered messages", p, n)
		}
	}
	runChecks(t, c, 4, 5)
}

func TestCrashExclusionAgreesOnLastMessage(t *testing.T) {
	// The membership agreement must converge on the last message sent by
	// the crashed process: messages it sent before crashing are either
	// delivered by all survivors or by none.
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, ps := newCluster(t, seed, 5)
			if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
				t.Fatal(err)
			}
			c.Run(50 * time.Millisecond)
			for i := 0; i < 3; i++ {
				for _, p := range ps {
					if err := c.Submit(p, 1, payload(p, i)); err != nil {
						t.Fatal(err)
					}
				}
				c.Run(2 * time.Millisecond)
			}
			c.Crash(5)
			survivors := ps[:4]
			if !c.RunUntil(10*time.Second, viewExcludes(c, 1, survivors, 5)) {
				t.Fatal("survivors never excluded the crashed process")
			}
			c.Run(500 * time.Millisecond)
			runChecks(t, c, 5)
			// All survivors hold the identical 4-member view.
			ref := lastView(t, c, 1, 1)
			for _, p := range survivors[1:] {
				if v := lastView(t, c, p, 1); !v.Equal(ref) {
					t.Errorf("%v view %v != %v", p, v, ref)
				}
			}
		})
	}
}

func TestPaperExample1JointFailureNoOrphanDelivery(t *testing.T) {
	// §5 Example 1: Pr crashes during a multicast received only by Ps;
	// Ps delivers it, multicasts m' (so m → m'), and crashes before it can
	// refute the others' suspicion of Pr. Pr and Ps must be detected
	// together, and m' must not be delivered anywhere m cannot be.
	c, ps := newCluster(t, 101, 5)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)

	// Pr = P4 multicasts m but crashes after reaching only Ps = P5.
	// Member order of SendEffects is ascending, so allow sends to P1..P3
	// to be dropped by cutting those links instead: deterministic partial
	// multicast via link cuts at send time.
	c.Disconnect(4, 1)
	c.Disconnect(4, 2)
	c.Disconnect(4, 3)
	if err := c.Submit(4, 1, []byte("m-partial")); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Millisecond)
	c.Crash(4)

	// Ps = P5: deliver m requires D to advance past it, which cannot
	// happen for P5 alone (it needs everyone's traffic) — in the paper Ps
	// delivers m because the arrival made it deliverable. Here we let P5
	// multicast m' causally after *receiving* m (the causal chain m → m'
	// arises at send time regardless of delivery) and then crash.
	if err := c.Submit(5, 1, []byte("m-prime")); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Millisecond)
	c.Crash(5)

	survivors := []types.ProcessID{1, 2, 3}
	if !c.RunUntil(15*time.Second, viewExcludes(c, 1, survivors, 4, 5)) {
		t.Fatal("survivors never excluded the joint failures")
	}
	c.Run(500 * time.Millisecond)
	runChecks(t, c, 4, 5)

	// m (received only by the crashed P5) must not be delivered anywhere;
	// if m' was discarded by the lnmn cutoff, it is delivered nowhere,
	// and in all cases the causal pair is never inverted. The property
	// checker verified MD5 already; assert m is undelivered explicitly.
	for _, p := range survivors {
		for _, d := range c.History(p).Deliveries {
			if string(d.Payload) == "m-partial" {
				t.Errorf("%v delivered the orphan multicast m", p)
			}
		}
	}
}

func TestPaperExample3ConcurrentSubgroupViews(t *testing.T) {
	// §5 Example 3: g = {P1..P5}; P5 crashes; the network partitions
	// {P1,P2} from {P3,P4} during the agreement. Both sides eventually
	// stabilise into non-intersecting views: {P1,P2} and {P3,P4}.
	c, ps := newCluster(t, 103, 5)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	c.Crash(5)
	// Let the suspicion phase begin, then partition mid-agreement.
	c.Run(60 * time.Millisecond)
	c.Partition([]types.ProcessID{1, 2}, []types.ProcessID{3, 4})

	sideA := []types.ProcessID{1, 2}
	sideB := []types.ProcessID{3, 4}
	ok := c.RunUntil(20*time.Second, func() bool {
		return viewExcludes(c, 1, sideA, 3, 4, 5)() && viewExcludes(c, 1, sideB, 1, 2, 5)()
	})
	if !ok {
		for _, p := range ps[:4] {
			t.Logf("%v views: %v", p, c.History(p).Views[1])
		}
		t.Fatal("subgroup views never stabilised into non-intersecting memberships")
	}
	// Within each side, identical views (VC1 among mutually unsuspecting
	// — P1/P2 may have suspected P3/P4, so check sides directly).
	if a, b := lastView(t, c, 1, 1), lastView(t, c, 2, 1); !a.SameMembers(b) {
		t.Errorf("side A diverges: %v vs %v", a, b)
	}
	if a, b := lastView(t, c, 3, 1), lastView(t, c, 4, 1); !a.SameMembers(b) {
		t.Errorf("side B diverges: %v vs %v", a, b)
	}
	// Final views do not intersect.
	va, vb := lastView(t, c, 1, 1), lastView(t, c, 3, 1)
	for _, p := range va.Members {
		if vb.Contains(p) {
			t.Errorf("stabilised views intersect: %v and %v share %v", va, vb, p)
		}
	}
	// Ordering properties hold per side; cross-side processes suspected
	// each other, so MD/VC properties do not bind across sides.
	runChecks(t, c, 5)
}

func TestSignatureViewsNeverIntersect(t *testing.T) {
	// §6 variant: with signature views ϑ = {Pj, ej}, even *transient*
	// concurrent views never intersect.
	c, ps := newCluster(t, 107, 5, func(cfg *core.Config) {
		cfg.SignatureViews = true
	})
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	c.Crash(5)
	c.Run(60 * time.Millisecond)
	c.Partition([]types.ProcessID{1, 2}, []types.ProcessID{3, 4})
	ok := c.RunUntil(20*time.Second, func() bool {
		return viewExcludes(c, 1, []types.ProcessID{1, 2}, 3, 4, 5)() &&
			viewExcludes(c, 1, []types.ProcessID{3, 4}, 1, 2, 5)()
	})
	if !ok {
		t.Fatal("views never stabilised")
	}
	// Every pair of post-split views from opposite sides must be
	// non-intersecting under signature semantics.
	for _, pa := range []types.ProcessID{1, 2} {
		for _, pb := range []types.ProcessID{3, 4} {
			for _, va := range c.History(pa).Views[1] {
				for _, vb := range c.History(pb).Views[1] {
					if va.View.Index == 0 || vb.View.Index == 0 {
						continue // shared initial view
					}
					if va.View.SameMembers(vb.View) && va.View.Index == vb.View.Index {
						continue // genuinely identical views are fine
					}
					if va.View.Intersects(vb.View) {
						t.Errorf("signature views intersect: %v (at %v) and %v (at %v)",
							va.View, pa, vb.View, pb)
					}
				}
			}
		}
	}
}

func TestFalseSuspicionIsRefuted(t *testing.T) {
	// P1 loses its link to P3 long enough to suspect it; P2 still hears
	// P3 and must refute P1's suspicion, recovering the missing messages.
	// No view change may result.
	c, ps := newCluster(t, 109, 3)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	c.Disconnect(1, 3)
	// P3 keeps multicasting; P1 misses these messages.
	for i := 0; i < 3; i++ {
		if err := c.Submit(3, 1, []byte(fmt.Sprintf("while-cut-%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Run(30 * time.Millisecond)
	}
	// Wait until P1 actually suspects P3.
	ok := c.RunUntil(10*time.Second, func() bool {
		for _, s := range c.History(1).Suspicions {
			if s.Proc == 3 {
				return true
			}
		}
		return false
	})
	if !ok {
		t.Fatal("P1 never suspected the cut-off P3")
	}
	c.Reconnect(1, 3)
	// The refutation must recover P3's messages at P1 and delivery must
	// complete with no exclusions.
	if !c.RunUntil(10*time.Second, allDelivered(c, 1, ps, 3)) {
		t.Fatal("P1 never recovered and delivered the missed messages")
	}
	c.Run(500 * time.Millisecond)
	for _, p := range ps {
		if v := lastView(t, c, p, 1); v.Size() != 3 {
			t.Errorf("%v's view shrank to %v despite successful refutation", p, v)
		}
	}
	if rec := c.Engine(1).Stats().Recovered; rec == 0 {
		t.Error("no messages recovered through refutation")
	}
	runChecks(t, c)
}

func TestShortCutGapHealsThroughRecovery(t *testing.T) {
	// A cut shorter than the suspicion timeout loses messages in flight;
	// the FIFO gap triggers an immediate suspicion whose refutation
	// recovers the lost prefix.
	c, ps := newCluster(t, 113, 3)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	c.Disconnect(1, 3)
	if err := c.Submit(3, 1, []byte("lost-in-cut")); err != nil {
		t.Fatal(err)
	}
	c.Run(20 * time.Millisecond) // < Ω = 100ms: no silence suspicion yet
	c.Reconnect(1, 3)
	if err := c.Submit(3, 1, []byte("after-heal")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(10*time.Second, allDelivered(c, 1, ps, 2)) {
		t.Fatal("gap never healed")
	}
	c.Run(500 * time.Millisecond)
	for _, p := range ps {
		if v := lastView(t, c, p, 1); v.Size() != 3 {
			t.Errorf("%v's view shrank to %v", p, v)
		}
	}
	if gaps := c.Engine(1).Stats().Gaps; gaps == 0 {
		t.Error("no gap detected despite in-flight loss")
	}
	runChecks(t, c)
}

func TestVoluntaryDepartureExcluded(t *testing.T) {
	// VC2: a departed member is eventually excluded from the others'
	// views. The departed process keeps no view of its own (§3).
	c, ps := newCluster(t, 127, 4)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	if err := c.Leave(4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Engine(4).View(1); err == nil {
		t.Error("departed process still reports a view")
	}
	remaining := ps[:3]
	if !c.RunUntil(15*time.Second, viewExcludes(c, 1, remaining, 4)) {
		t.Fatal("departed member never excluded")
	}
	// Departed process cannot submit or rejoin.
	if err := c.Submit(4, 1, []byte("zombie")); err == nil {
		t.Error("submit after leave succeeded")
	}
	_, err := c.Engine(4).BootstrapGroup(c.Now(), 1, core.Symmetric, ps)
	if err == nil {
		t.Error("rejoining a departed group succeeded")
	}
	runChecks(t, c, 4)
}

func TestSequencerCrashFailsOver(t *testing.T) {
	// Asymmetric mode: the sequencer (P1) crashes; the survivors agree,
	// elect P2 deterministically, and pending requests are re-unicast and
	// delivered exactly once.
	c, ps := newCluster(t, 131, 4)
	if err := c.Bootstrap(1, core.Asymmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	if err := c.Submit(3, 1, []byte("before-crash")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(5*time.Second, allDelivered(c, 1, ps, 1)) {
		t.Fatal("pre-crash delivery incomplete")
	}
	// Cut the sequencer off from everyone, then submit: the request is
	// lost; after fail-over it must be re-unicast to P2 and delivered.
	c.Crash(1)
	if err := c.Submit(3, 1, []byte("during-failover")); err != nil {
		t.Fatal(err)
	}
	survivors := ps[1:]
	if !c.RunUntil(15*time.Second, viewExcludes(c, 1, survivors, 1)) {
		t.Fatal("sequencer never excluded")
	}
	if !c.RunUntil(10*time.Second, allDelivered(c, 1, survivors, 2)) {
		t.Fatal("pending request never delivered after fail-over")
	}
	c.Run(500 * time.Millisecond)
	runChecks(t, c, 1)
	// The new sequencer is P2: it performed the fail-over multicast.
	if got := c.Engine(2).Stats().SeqMulticasts; got == 0 {
		t.Error("new sequencer performed no multicasts")
	}
	// Exactly-once: no survivor delivered "during-failover" twice
	// (covered by MD4 duplicate check in runChecks, asserted again).
	for _, p := range survivors {
		n := 0
		for _, d := range c.History(p).Deliveries {
			if string(d.Payload) == "during-failover" {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%v delivered the failed-over message %d times", p, n)
		}
	}
}

func TestMD2LivenessSenderDeliversOwn(t *testing.T) {
	// MD2: a process that continues to function as a member eventually
	// delivers its own message, even when others crash around it.
	c, ps := newCluster(t, 137, 4)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	c.Crash(4)
	if err := c.Submit(1, 1, []byte("must-arrive")); err != nil {
		t.Fatal(err)
	}
	ok := c.RunUntil(15*time.Second, func() bool {
		for _, d := range c.History(1).Deliveries {
			if string(d.Payload) == "must-arrive" {
				return true
			}
		}
		return false
	})
	if !ok {
		t.Fatal("MD2 violated: sender never delivered its own message")
	}
	runChecks(t, c, 4)
}

func TestTwoConsecutiveFailures(t *testing.T) {
	// Two crashes in sequence: two view changes, consistent everywhere.
	c, ps := newCluster(t, 139, 5)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	c.Crash(5)
	if !c.RunUntil(15*time.Second, viewExcludes(c, 1, ps[:4], 5)) {
		t.Fatal("first exclusion never happened")
	}
	for i := 0; i < 3; i++ {
		if err := c.Submit(1, 1, payload(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(100 * time.Millisecond)
	c.Crash(4)
	if !c.RunUntil(15*time.Second, viewExcludes(c, 1, ps[:3], 4, 5)) {
		t.Fatal("second exclusion never happened")
	}
	c.Run(500 * time.Millisecond)
	runChecks(t, c, 4, 5)
	ref := lastView(t, c, 1, 1)
	if ref.Size() != 3 {
		t.Errorf("final view %v, want 3 members", ref)
	}
	for _, p := range ps[1:3] {
		if v := lastView(t, c, p, 1); !v.Equal(ref) {
			t.Errorf("%v: %v != %v", p, v, ref)
		}
	}
}

func TestCrashDuringAgreementItself(t *testing.T) {
	// A second process crashes while the agreement about the first is in
	// flight; survivors must still converge.
	c, ps := newCluster(t, 149, 5)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	c.Crash(5)
	// Crash P4 mid-agreement (right around suspicion time Ω=100ms).
	c.At(200*time.Millisecond, func() { c.Crash(4) })
	if !c.RunUntil(20*time.Second, viewExcludes(c, 1, ps[:3], 4, 5)) {
		t.Fatal("survivors never excluded both")
	}
	c.Run(500 * time.Millisecond)
	runChecks(t, c, 4, 5)
}
