package core

import (
	"fmt"

	"newtop/internal/types"
)

// Effect is an output of the protocol state machine. The engine never
// touches the network, timers or the application directly; it returns
// effects and the surrounding runtime (internal/node for goroutine-driven
// deployments, internal/sim for deterministic simulation) executes them.
type Effect interface {
	isEffect()
	fmt.Stringer
}

// SendEffect transmits Msg to To over the transport.
type SendEffect struct {
	To  types.ProcessID
	Msg *types.Message
}

func (SendEffect) isEffect() {}

// String implements fmt.Stringer.
func (e SendEffect) String() string { return fmt.Sprintf("send→%v %v", e.To, e.Msg) }

// DeliverEffect hands an application message to the local application in
// the agreed delivery order. View is the view index the delivery occurred
// in (the r of deliveryᵢ(m,r)). Index is the zero-based position of this
// delivery in the group's total order — identical at every member, so
// (Msg.Group, Index) forms the types.LogPos the replication and
// durability layers address entries by.
type DeliverEffect struct {
	Msg   *types.Message
	View  int
	Index uint64
}

func (DeliverEffect) isEffect() {}

// String implements fmt.Stringer.
func (e DeliverEffect) String() string {
	return fmt.Sprintf("deliver %v in view %d at index %d", e.Msg, e.View, e.Index)
}

// ViewEffect reports the installation of a new membership view for a
// group. Removed lists the processes excluded relative to the previous
// view.
type ViewEffect struct {
	View    types.View
	Removed []types.ProcessID
}

func (ViewEffect) isEffect() {}

// String implements fmt.Stringer.
func (e ViewEffect) String() string { return fmt.Sprintf("install %v (removed %v)", e.View, e.Removed) }

// GroupReadyEffect reports that a dynamically formed group has completed
// the start-group agreement (§5.3 step 5) and computational sends are now
// permitted. StartMax is the agreed start-number-max.
type GroupReadyEffect struct {
	Group    types.GroupID
	StartMax types.MsgNum
}

func (GroupReadyEffect) isEffect() {}

// String implements fmt.Stringer.
func (e GroupReadyEffect) String() string {
	return fmt.Sprintf("group %v ready (start-max %v)", e.Group, e.StartMax)
}

// FormationFailedEffect reports that group formation was vetoed or timed
// out (§5.3 step 3).
type FormationFailedEffect struct {
	Group  types.GroupID
	Reason string
}

func (FormationFailedEffect) isEffect() {}

// String implements fmt.Stringer.
func (e FormationFailedEffect) String() string {
	return fmt.Sprintf("formation of %v failed: %s", e.Group, e.Reason)
}

// SuspectEffect reports that the local failure suspector started
// suspecting a process (diagnostic; the protocol messages carrying the
// suspicion are separate SendEffects).
type SuspectEffect struct {
	Group types.GroupID
	Susp  types.Suspicion
}

func (SuspectEffect) isEffect() {}

// String implements fmt.Stringer.
func (e SuspectEffect) String() string { return fmt.Sprintf("suspect %v in %v", e.Susp, e.Group) }
