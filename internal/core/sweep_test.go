package core_test

import (
	"fmt"
	"testing"
)

func TestSweepWide(t *testing.T) {
	if testing.Short() {
		t.Skip("wide sweep skipped in -short mode")
	}
	for seed := int64(100); seed < 400; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			soakOnce(t, seed)
		})
	}
}
