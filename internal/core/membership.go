package core

import (
	"sort"
	"time"

	"newtop/internal/types"
)

// This file implements the group-view (GV) membership agreement of §5.2:
// the event-driven steps (i)–(vii) plus the view-installation step (viii).
// Each group's agreement runs independently ("GVx,i works as if Pi is not a
// member of any other group"); only the update_view wait condition couples
// groups, through the global delivery order (see receive.go).

// raiseSuspicion is step (i): the failure suspector notifies GV of
// {Pk, ln}; GV records it and multicasts a suspect message to every GV
// process in the current view (including GVk itself).
func (e *Engine) raiseSuspicion(now time.Time, gs *groupState, pk types.ProcessID) {
	if pk == e.cfg.Self || gs.isRemoved(pk) || !gs.view.Contains(pk) {
		return
	}
	if _, already := gs.suspicions[pk]; already {
		return
	}
	// ln covers both Pk's direct transmissions and sequencer relays of
	// its messages, so the agreed cutoff lnmn can never fall below a
	// number some member already delivered.
	ln := gs.knownNum(pk)
	gs.suspicions[pk] = ln
	s := types.Suspicion{Proc: pk, LN: ln}
	e.voteFor(gs, s, e.cfg.Self)
	e.stats.Suspicions++
	e.emit(SuspectEffect{Group: gs.id, Susp: s})
	msg := &types.Message{
		Kind: types.KindSuspect, Group: gs.id,
		Sender: e.cfg.Self, Origin: e.cfg.Self, Suspicion: s,
	}
	e.stats.CtrlSent++
	e.mcast(gs, msg)
	e.checkAgreement(now, gs)
}

func (e *Engine) voteFor(gs *groupState, s types.Suspicion, voter types.ProcessID) {
	vs, ok := gs.votes[s]
	if !ok {
		vs = make(map[types.ProcessID]bool)
		gs.votes[s] = vs
	}
	vs[voter] = true
}

// onSuspect is step (ii) plus the receive half of (iii): record a remote
// suspicion, refute it if we hold contrary evidence, and re-evaluate
// agreement.
func (e *Engine) onSuspect(now time.Time, gs *groupState, from types.ProcessID, m *types.Message) {
	s := m.Suspicion
	if s.Proc == e.cfg.Self {
		// (ii): a suspicion of ourselves is discarded, in the hope that
		// some other GV will refute it; (vii) handles confirmation.
		return
	}
	if gs.isRemoved(s.Proc) {
		return
	}
	// (iii): if we have received a message from Pk (directly or via a
	// sequencer relay) numbered above ln, the suspicion is stale — refute
	// it, piggybacking the messages the suspector is missing.
	if gs.knownNum(s.Proc) > s.LN {
		e.sendRefute(gs, s)
		return
	}
	e.voteFor(gs, s, from)
	e.checkAgreement(now, gs)
}

// refuteGossip is the receipt half of (iii): a newly received message from
// sender numbered num disproves every recorded suspicion {sender, ln} with
// ln < num.
func (e *Engine) refuteGossip(now time.Time, gs *groupState, sender types.ProcessID, num types.MsgNum) {
	if len(gs.votes) == 0 {
		return // fast path: no recorded suspicions (every data message lands here)
	}
	for s := range gs.votes {
		if s.Proc == sender && s.LN < num {
			if _, mine := gs.suspicions[sender]; mine {
				continue // our own suspicion is lifted only by a refute (iv)
			}
			e.sendRefute(gs, s)
			delete(gs.votes, s)
		}
	}
}

// sendRefute multicasts a refute for s, piggybacking every retained
// message the suspected process transmitted past ln so the suspector can
// recover them (§5.2 step iii). Unstable messages are always retained, so
// the piggyback is complete by the stability invariant.
func (e *Engine) sendRefute(gs *groupState, s types.Suspicion) {
	missing := gs.log.concerningAbove(s.Proc, s.LN)
	ref := &types.Message{
		Kind: types.KindRefute, Group: gs.id,
		Sender: e.cfg.Self, Origin: e.cfg.Self, Suspicion: s,
	}
	ref.Recovered = make([]types.Message, 0, len(missing))
	for _, mm := range missing {
		ref.Recovered = append(ref.Recovered, *mm)
	}
	e.stats.Refutes++
	e.stats.CtrlSent++
	e.mcast(gs, ref)
}

// onRefute is step (iv): stop suspecting {Pk, ln}, recover the missing
// messages, reprocess messages held while the suspicion was active, and
// echo the refute so other suspectors also stand down.
func (e *Engine) onRefute(now time.Time, gs *groupState, from types.ProcessID, m *types.Message) {
	s := m.Suspicion
	if gs.isRemoved(s.Proc) {
		return
	}
	delete(gs.votes, s) // the suspicion is globally dead once refuted
	ln, mine := gs.suspicions[s.Proc]
	if mine && ln == s.LN {
		delete(gs.suspicions, s.Proc)
		// Recover the missing messages: they were unstable at the
		// refuter, hence retained; process them as if just received, in
		// transmission order.
		for i := range m.Recovered {
			rec := m.Recovered[i].Clone()
			e.stats.Recovered++
			e.handleMessage(now, from, rec)
		}
		// (iv): echo the refute (with our own piggyback) so that every
		// other holder of this suspicion recovers too.
		e.sendRefute(gs, s)
		// Messages held back during the suspicion are "assumed to have
		// been just received".
		held := gs.held[s.Proc]
		delete(gs.held, s.Proc)
		for _, h := range held {
			e.handleMessage(now, h.from, h.m)
		}
	}
	e.checkAgreement(now, gs)
}

// checkAgreement evaluates steps (v) and (vi): confirm our suspicion set
// once every live unsuspected member echoes it, or adopt a buffered
// confirmed detection that has become a subset of our suspicions.
func (e *Engine) checkAgreement(now time.Time, gs *groupState) {
	if gs.status == statusForming {
		return
	}
	// (vi) first: adopt pending confirmations (they represent an
	// agreement already reached elsewhere; identical views confirm
	// identical sets in identical order).
	e.adoptPendingConfirms(now, gs)

	// (v): every {Pk, ln} ∈ suspicions must have a suspect vote from
	// every live member — V minus the suspected processes, minus
	// processes already detected — self included (our vote is implicit
	// in holding the suspicion).
	if len(gs.suspicions) == 0 {
		return
	}
	for pk, ln := range gs.suspicions {
		s := types.Suspicion{Proc: pk, LN: ln}
		votes := gs.votes[s]
		for _, pj := range gs.view.Members {
			if pj == e.cfg.Self || gs.isRemoved(pj) {
				continue
			}
			if _, suspected := gs.suspicions[pj]; suspected {
				continue
			}
			if !votes[pj] {
				return
			}
		}
	}
	// Unanimity: detection := suspicions.
	detection := make([]types.Suspicion, 0, len(gs.suspicions))
	for pk, ln := range gs.suspicions {
		detection = append(detection, types.Suspicion{Proc: pk, LN: ln})
	}
	sort.Slice(detection, func(i, j int) bool { return detection[i].Proc < detection[j].Proc })
	gs.suspicions = make(map[types.ProcessID]types.MsgNum)
	conf := &types.Message{
		Kind: types.KindConfirmed, Group: gs.id,
		Sender: e.cfg.Self, Origin: e.cfg.Self, Detection: detection,
	}
	e.stats.CtrlSent++
	e.mcast(gs, conf)
	e.applyDetection(now, gs, detection)
}

// onConfirmed is steps (vi) and (vii).
func (e *Engine) onConfirmed(now time.Time, gs *groupState, from types.ProcessID, m *types.Message) {
	// (vii): a confirmation that includes us means a subgroup has agreed
	// to exclude us — reciprocate by suspecting the sender, which leads
	// our side of the (virtual) partition to exclude them.
	for _, s := range m.Detection {
		if s.Proc == e.cfg.Self {
			e.raiseSuspicion(now, gs, from)
			return
		}
	}
	// Filter out processes we have already detected (duplicate echo of an
	// agreement we have applied).
	fresh := m.Detection[:0:0]
	for _, s := range m.Detection {
		if !gs.isRemoved(s.Proc) {
			fresh = append(fresh, s)
		}
	}
	if len(fresh) == 0 {
		return
	}
	gs.pendingConfirms = append(gs.pendingConfirms, confirmRec{from: from, detection: fresh})
	e.checkAgreement(now, gs)
}

// adoptPendingConfirms applies step (vi) to buffered confirmations: when a
// received detection set is a subset of our suspicions, adopt it, echo the
// confirmation, and detect exactly that set.
func (e *Engine) adoptPendingConfirms(now time.Time, gs *groupState) {
	for i := 0; i < len(gs.pendingConfirms); {
		rec := gs.pendingConfirms[i]
		// Prune processes already detected (view installed or pending).
		live := rec.detection[:0:0]
		for _, s := range rec.detection {
			if !gs.isRemoved(s.Proc) {
				live = append(live, s)
			}
		}
		if len(live) == 0 {
			gs.pendingConfirms = append(gs.pendingConfirms[:i], gs.pendingConfirms[i+1:]...)
			continue
		}
		subset := true
		for _, s := range live {
			if ln, mine := gs.suspicions[s.Proc]; !mine || ln != s.LN {
				subset = false
				break
			}
		}
		if !subset {
			gs.pendingConfirms[i].detection = live
			i++
			continue
		}
		// (vi): detection := detectionj; suspicions -= detection; echo.
		gs.pendingConfirms = append(gs.pendingConfirms[:i], gs.pendingConfirms[i+1:]...)
		for _, s := range live {
			delete(gs.suspicions, s.Proc)
		}
		conf := &types.Message{
			Kind: types.KindConfirmed, Group: gs.id,
			Sender: e.cfg.Self, Origin: e.cfg.Self, Detection: live,
		}
		e.stats.CtrlSent++
		e.mcast(gs, conf)
		e.applyDetection(now, gs, live)
		i = 0 // detection may unblock further pending confirmations
	}
}

// applyDetection is step (viii): treat the detection set as failed
// "together". Messages from failed processes numbered above
// lnmn = min{ln} are discarded (a safety measure preserving MD5/MD5'),
// RV and SV entries jump to infinity so D can pass lnmn, and
// update_view(failed, lnmn) is scheduled — the view installs after the
// last message with Num ≤ lnmn is delivered (see pump/tryInstalls).
func (e *Engine) applyDetection(now time.Time, gs *groupState, detection []types.Suspicion) {
	failed := make(map[types.ProcessID]bool, len(detection))
	lnmn := types.InfNum
	for _, s := range detection {
		failed[s.Proc] = true
		if s.LN < lnmn {
			lnmn = s.LN
		}
	}
	for pk := range failed {
		gs.markRemoved(pk)
		delete(gs.suspicions, pk)
		delete(gs.held, pk)
	}
	for s := range gs.votes {
		if failed[s.Proc] {
			delete(gs.votes, s)
		}
	}
	// Discard received-but-undelivered messages from the failed processes
	// with Num > lnmn, even though they were sent before the failure.
	// Relays of a failed origin's messages fall under the same cutoff.
	e.stats.Discarded += uint64(e.queue.Discard(func(m *types.Message) bool {
		drop := m.Group == gs.id && (failed[m.Sender] || failed[m.Origin]) && m.Num > lnmn
		if drop && gs.arena != nil {
			gs.arena.clear(m, arenaQueued)
		}
		return drop
	}))
	// RV[k] := ∞, SV[k] := ∞ — lets D and stability advance past the
	// departed processes (the failed set is always a subset of the
	// current view; see checkAgreement/adoptPendingConfirms).
	for pk := range failed {
		if i := gs.memberIndex(pk); i >= 0 {
			gs.bumpRV(i, types.InfNum)
			gs.bumpSV(i, types.InfNum)
		}
	}
	e.gDValid = false
	gs.installs = append(gs.installs, viewInstall{failed: failed, lnmn: lnmn})
}
