package core_test

import (
	"testing"
	"time"

	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
)

// TestPaperExample2CausalChainAcrossGroups reproduces fig. 2 / Example 2 of
// the paper: a causal chain m1 → m2 → m3 → m4 threaded through four
// overlapping groups, with a permanent partition cutting the origin of m1
// (Pk) away from Pi and Pj while m1 is multicast. Pi never receives m1 and
// nobody on its side holds a copy, so MD5' must be met by option (b): Pk is
// excluded from Pi's view of g1 *before* m4 is delivered — the network
// failure is perceived as having happened before the multicast.
//
// Cast: Pk=P1, Pq=P2, Ps=P3, Pi=P4, Pj=P5.
// Groups: g1={Pk,Pi,Pj} (m1), g2={Pk,Pq} (m2), g3={Pq,Ps} (m3),
// g4={Ps,Pi,Pj} (m4).
func TestPaperExample2CausalChainAcrossGroups(t *testing.T) {
	const (
		pk = types.ProcessID(1)
		pq = types.ProcessID(2)
		ps = types.ProcessID(3)
		pi = types.ProcessID(4)
		pj = types.ProcessID(5)
	)
	c, _ := newCluster(t, 301, 5)
	groups := map[types.GroupID][]types.ProcessID{
		1: {pk, pi, pj},
		2: {pk, pq},
		3: {pq, ps},
		4: {ps, pi, pj},
	}
	for g, ms := range groups {
		if err := c.Bootstrap(g, core.Symmetric, ms); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(50 * time.Millisecond)

	// Permanent partition: Pk loses Pi and Pj exactly when m1 goes out.
	c.Disconnect(pk, pi)
	c.Disconnect(pk, pj)
	if err := c.Submit(pk, 1, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	// Causal chain: Pk sends m2 after m1 (same-sender order), each hop
	// delivers the previous message before sending the next.
	if err := c.Submit(pk, 2, []byte("m2")); err != nil {
		t.Fatal(err)
	}
	deliveredAt := func(p types.ProcessID, payload string) func() bool {
		return func() bool {
			for _, d := range c.History(p).Deliveries {
				if string(d.Payload) == payload {
					return true
				}
			}
			return false
		}
	}
	if !c.RunUntil(10*time.Second, deliveredAt(pq, "m2")) {
		t.Fatal("Pq never delivered m2")
	}
	if err := c.Submit(pq, 3, []byte("m3")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(10*time.Second, deliveredAt(ps, "m3")) {
		t.Fatal("Ps never delivered m3")
	}
	if err := c.Submit(ps, 4, []byte("m4")); err != nil {
		t.Fatal(err)
	}

	// MD3 forces m4 to reach Pi and Pj; MD5' forces the g1 view change
	// (excluding Pk) to precede that delivery.
	if !c.RunUntil(30*time.Second, deliveredAt(pi, "m4")) {
		t.Fatal("Pi never delivered m4 — MD3/liveness broken")
	}
	if !c.RunUntil(30*time.Second, deliveredAt(pj, "m4")) {
		t.Fatal("Pj never delivered m4")
	}

	for _, p := range []types.ProcessID{pi, pj} {
		var viewIdx, delIdx = -1, -1
		for _, ev := range c.History(p).Events {
			switch {
			case ev.Kind == sim.EvView && ev.Group == 1 && !ev.View.Contains(pk):
				if viewIdx == -1 {
					viewIdx = ev.Idx
				}
			case ev.Kind == sim.EvDeliver && string(ev.Payload) == "m4":
				delIdx = ev.Idx
			}
		}
		if viewIdx == -1 {
			t.Fatalf("%v never installed a g1 view excluding Pk", p)
		}
		if delIdx == -1 {
			t.Fatalf("%v has no m4 delivery event", p)
		}
		if viewIdx > delIdx {
			t.Errorf("%v delivered m4 (event %d) before excluding Pk from g1 (event %d): MD5' violated",
				p, delIdx, viewIdx)
		}
		// m1 itself is irretrievably lost on this side.
		if deliveredAt(p, "m1")() {
			t.Errorf("%v delivered m1, which it should never have received", p)
		}
	}
	c.Run(500 * time.Millisecond)
	runChecks(t, c)
}

// TestCausalChainRecoveredWhenRetrievable is the complement of Example 2:
// when a connected process still holds m1, MD5' is met by option (a) — the
// refute piggyback retrieves m1 and delivers it before m4.
func TestCausalChainRecoveredWhenRetrievable(t *testing.T) {
	const (
		pk = types.ProcessID(1)
		pq = types.ProcessID(2)
		pi = types.ProcessID(3)
	)
	c, _ := newCluster(t, 303, 3)
	// One group: Pq stays connected to both sides and can supply m1.
	if err := c.Bootstrap(1, core.Symmetric, []types.ProcessID{pk, pq, pi}); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	// Pk loses only Pi; Pq hears everything.
	c.Disconnect(pk, pi)
	if err := c.Submit(pk, 1, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	ok := c.RunUntil(30*time.Second, func() bool {
		for _, d := range c.History(pi).Deliveries {
			if string(d.Payload) == "m1" {
				return true
			}
		}
		return false
	})
	if !ok {
		t.Fatal("m1 never retrieved at Pi despite a connected holder")
	}
	if rec := c.Engine(pi).Stats().Recovered; rec == 0 {
		t.Error("retrieval did not go through the refute piggyback path")
	}
	runChecks(t, c)
}
