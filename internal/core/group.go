package core

import (
	"time"

	"newtop/internal/types"
)

// groupStatus tracks a group's lifecycle at this process.
type groupStatus uint8

const (
	// statusForming: invited (or initiating), collecting formation votes
	// (§5.3 steps 1–3).
	statusForming groupStatus = iota + 1
	// statusStartWait: formation succeeded, waiting for a start-group
	// message from every member of the current view (§5.3 steps 4–5).
	// D is pinned to the largest start-number seen so far.
	statusStartWait
	// statusActive: normal operation.
	statusActive
)

// viewInstall is a scheduled update_view(F, N) (§5.2 step viii): install
// view minus failed once the last message with Num ≤ lnmn has been
// delivered.
type viewInstall struct {
	failed map[types.ProcessID]bool
	lnmn   types.MsgNum
}

// confirmRec buffers a received confirmed message whose detection set is
// not yet a subset of our suspicions (we have not suspected all of its
// members yet); re-evaluated as suspicions grow.
type confirmRec struct {
	from      types.ProcessID
	detection []types.Suspicion
}

// heldMsg is a message from a suspected process, kept pending until the
// suspicion is refuted (reprocess) or confirmed (discard) — §5.2.
type heldMsg struct {
	from types.ProcessID
	m    *types.Message
}

// formationState tracks the two-phase formation protocol (§5.3).
type formationState struct {
	initiator bool
	members   []types.ProcessID // intended membership, sorted
	mode      OrderMode
	yes       map[types.ProcessID]bool
	votedSelf bool
	deadline  time.Time
}

// groupState is the per-group protocol state of one process: its view,
// receive/stability vectors, message log, membership-agreement state and
// ordering-mode bookkeeping.
type groupState struct {
	id     types.GroupID
	mode   OrderMode
	status groupStatus
	view   types.View

	// staticD selects the §4.2 failure-free delivery gate for asymmetric
	// groups (D = last number from the sequencer); see dx.
	staticD bool

	rv        map[types.ProcessID]types.MsgNum // receive vector (§4.1)
	sv        map[types.ProcessID]types.MsgNum // stability vector (§5.1)
	lastHeard map[types.ProcessID]time.Time    // failure-suspector input (§5.2)
	lastSent  time.Time                        // time-silence input (§4.1)

	// Per-origin FIFO high-water marks, split by path: direct multicasts
	// (sender == origin) and sequencer-relayed multicasts (asymmetric
	// mode; sender == sequencer ≠ origin). The two paths are separately
	// FIFO, so each gets its own monotone check.
	lastSeqDirect  map[types.ProcessID]uint64
	lastSeqRelayed map[types.ProcessID]uint64

	// relayedNum records, per origin, the highest Lamport number seen on
	// a sequencer relay of that origin's messages. Suspicion evidence and
	// the lnmn cutoff must cover relays, or the agreement boundary could
	// fall below numbers some member already delivered (breaking MD3 in
	// asymmetric groups).
	relayedNum map[types.ProcessID]types.MsgNum

	mySeq    uint64 // seq counter for my direct multicasts
	myReqSeq uint64 // seq counter for my sequencer requests (asymmetric)

	log *msgLog

	// dFloor is a lower bound on Dx: the start-number-max agreed at
	// group formation (§5.3 step 5). Nulls numbered below it may still
	// arrive but are never delivered, so the floor is safe.
	dFloor types.MsgNum
	// startPin pins Dx while status == statusStartWait.
	startPin  types.MsgNum
	startNums map[types.ProcessID]types.MsgNum

	// Membership agreement (§5.2).
	suspicions      map[types.ProcessID]types.MsgNum // my active suspicions: proc → ln
	votes           map[types.Suspicion]map[types.ProcessID]bool
	held            map[types.ProcessID][]heldMsg
	pendingConfirms []confirmRec
	installs        []viewInstall
	removedEver     map[types.ProcessID]bool

	formation *formationState

	// Asymmetric mode (§4.2).
	pendingReqs []*types.Message // my unsequenced requests, in unicast order
}

func newGroupState(id types.GroupID, mode OrderMode) *groupState {
	return &groupState{
		id:             id,
		mode:           mode,
		rv:             make(map[types.ProcessID]types.MsgNum),
		sv:             make(map[types.ProcessID]types.MsgNum),
		lastHeard:      make(map[types.ProcessID]time.Time),
		lastSeqDirect:  make(map[types.ProcessID]uint64),
		lastSeqRelayed: make(map[types.ProcessID]uint64),
		relayedNum:     make(map[types.ProcessID]types.MsgNum),
		log:            newMsgLog(),
		suspicions:     make(map[types.ProcessID]types.MsgNum),
		votes:          make(map[types.Suspicion]map[types.ProcessID]bool),
		held:           make(map[types.ProcessID][]heldMsg),
		removedEver:    make(map[types.ProcessID]bool),
		startNums:      make(map[types.ProcessID]types.MsgNum),
	}
}

// activate installs the initial view V0 and primes the vectors.
func (g *groupState) activate(members []types.ProcessID, now time.Time, signatures bool) {
	g.view = types.NewView(g.id, 0, members)
	if signatures {
		g.view.Excluded = make([]int, len(g.view.Members))
	}
	for _, p := range g.view.Members {
		g.rv[p] = 0
		g.sv[p] = 0
		g.lastHeard[p] = now
	}
	g.lastSent = now
}

// sequencer returns the asymmetric-mode sequencer for the current view:
// the lowest-numbered member. Processes with identical views elect the same
// sequencer deterministically (§4.2).
func (g *groupState) sequencer() types.ProcessID {
	if len(g.view.Members) == 0 {
		return types.NilProcess
	}
	return g.view.Members[0]
}

// dx returns this group's largest-deliverable-number D_x (§4.1/§4.2).
//
// In the static failure-free configuration, an asymmetric group uses the
// paper's §4.2 rule — D_x is the number of the last message received from
// the sequencer, so sequenced messages deliver immediately. In the
// fault-tolerant configuration D_x is min(RV) for every mode: the §5.2
// agreement boundary is only consistent because no process can deliver a
// number beyond a silent member's last message ("absent or rejected
// messages from suspected processes prevent D from increasing beyond
// lnmn"), and that argument needs D ≤ RV[k] pointwise. Universal
// time-silence (which §5 mandates in every group precisely for failure
// detection) keeps min(RV) advancing, so asymmetric delivery stays live —
// the sequencer contributes ordering economy, min(RV) the safety boundary.
func (g *groupState) dx() types.MsgNum {
	if g.status == statusStartWait {
		return g.startPin
	}
	var d types.MsgNum
	if g.mode == Asymmetric && g.staticD {
		d = g.rv[g.sequencer()]
	} else {
		d = types.InfNum
		for _, p := range g.view.Members {
			if v := g.rv[p]; v < d {
				d = v
			}
		}
		if len(g.view.Members) == 0 {
			d = 0
		}
	}
	if d < g.dFloor {
		d = g.dFloor
	}
	return d
}

// minSV returns the stability threshold: every message with Num ≤ minSV
// has been received by all members of the current view (§5.1).
func (g *groupState) minSV() types.MsgNum {
	min := types.InfNum
	for _, p := range g.view.Members {
		if v := g.sv[p]; v < min {
			min = v
		}
	}
	if len(g.view.Members) == 0 {
		return 0
	}
	return min
}

// knownNum returns the highest Lamport number this process has witnessed
// from p in this group, over both the direct path (rv) and sequencer
// relays of p's messages. It is the ln used when suspecting p and the
// evidence threshold when judging others' suspicions of p.
func (g *groupState) knownNum(p types.ProcessID) types.MsgNum {
	n := g.rv[p]
	if n == types.InfNum {
		return n
	}
	if r := g.relayedNum[p]; r > n {
		n = r
	}
	return n
}

// ordered reports whether the group gates delivery on the logical-clock
// condition safe1' (total order); atomic groups bypass the gate (fig. 3).
func (g *groupState) ordered() bool { return g.mode == Symmetric || g.mode == Asymmetric }

// runsTimeSilence reports whether this process operates the time-silence
// mechanism in this group. With failure detection on (dynamic Newtop, §5)
// every member does; in the static failure-free configuration only
// symmetric members and the asymmetric sequencer need it (§4).
func (g *groupState) runsTimeSilence(self types.ProcessID, failureDetection bool) bool {
	if g.status != statusActive && g.status != statusStartWait {
		return false
	}
	if failureDetection {
		return true
	}
	switch g.mode {
	case Symmetric:
		return true
	case Asymmetric:
		return g.sequencer() == self
	default:
		return false
	}
}
