package core

import (
	"time"

	"newtop/internal/types"
)

// groupStatus tracks a group's lifecycle at this process.
type groupStatus uint8

const (
	// statusForming: invited (or initiating), collecting formation votes
	// (§5.3 steps 1–3).
	statusForming groupStatus = iota + 1
	// statusStartWait: formation succeeded, waiting for a start-group
	// message from every member of the current view (§5.3 steps 4–5).
	// D is pinned to the largest start-number seen so far.
	statusStartWait
	// statusActive: normal operation.
	statusActive
)

// viewInstall is a scheduled update_view(F, N) (§5.2 step viii): install
// view minus failed once the last message with Num ≤ lnmn has been
// delivered.
type viewInstall struct {
	failed map[types.ProcessID]bool
	lnmn   types.MsgNum
}

// confirmRec buffers a received confirmed message whose detection set is
// not yet a subset of our suspicions (we have not suspected all of its
// members yet); re-evaluated as suspicions grow.
type confirmRec struct {
	from      types.ProcessID
	detection []types.Suspicion
}

// heldMsg is a message from a suspected process, kept pending until the
// suspicion is refuted (reprocess) or confirmed (discard) — §5.2.
type heldMsg struct {
	from types.ProcessID
	m    *types.Message
}

// formationState tracks the two-phase formation protocol (§5.3).
type formationState struct {
	initiator bool
	members   []types.ProcessID // intended membership, sorted
	mode      OrderMode
	yes       map[types.ProcessID]bool
	votedSelf bool
	deadline  time.Time
}

// memberSlot is the per-member hot-path state of one view member, indexed
// by the member's position in view.Members. Keeping these seven quantities
// in one dense slice (instead of seven ProcessID-keyed maps) makes the
// receive path a couple of array indexings per message — the §6 "constant,
// small per-message overhead" story applied to the implementation itself.
type memberSlot struct {
	rv         types.MsgNum // receive vector entry (§4.1)
	sv         types.MsgNum // stability vector entry (§5.1)
	relayedNum types.MsgNum // highest Num seen on a sequencer relay of this origin
	seqDirect  uint64       // FIFO high-water mark, direct multicasts
	seqRelayed uint64       // FIFO high-water mark, sequencer-relayed multicasts
	lastHeard  time.Time    // failure-suspector input (§5.2)
}

// strayOrigin holds relay bookkeeping for an origin that is not (and never
// was) a member of the current view. Honest traffic never references such
// origins — the sender of every accepted message is a view member, and a
// relay of a removed member is discarded — so this map stays nil except
// under hostile/fuzzed input, where it preserves the exact duplicate/gap
// semantics the per-origin maps used to give.
type strayOrigin struct {
	seqRelayed uint64
	relayedNum types.MsgNum
}

// groupState is the per-group protocol state of one process: its view,
// receive/stability vectors, message log, membership-agreement state and
// ordering-mode bookkeeping.
type groupState struct {
	id     types.GroupID
	mode   OrderMode
	status groupStatus
	view   types.View

	// staticD selects the §4.2 failure-free delivery gate for asymmetric
	// groups (D = last number from the sequencer); see dx.
	staticD bool

	// mem is the dense per-member state, parallel to view.Members;
	// rebuilt on every view installation (rare) so the receive path
	// (every message) indexes instead of hashing.
	mem []memberSlot

	// Incrementally maintained delivery/stability gates: rvMin is
	// min(RV) over the view, svMin is min(SV), each with a count of the
	// members currently sitting at the minimum. A bump away from the
	// minimum decrements the count; only when it hits zero is the O(n)
	// rescan paid. Both are monotone non-decreasing between view
	// installations (RV/SV entries only ever grow), which is what makes
	// the counting scheme sound.
	rvMin    types.MsgNum
	rvMinCnt int
	svMin    types.MsgNum
	svMinCnt int

	strays map[types.ProcessID]*strayOrigin // lazily allocated, see strayOrigin

	lastSent time.Time // time-silence input (§4.1)

	mySeq    uint64 // seq counter for my direct multicasts
	myReqSeq uint64 // seq counter for my sequencer requests (asymmetric)

	log *msgLog

	// arena recycles the structs of this group's own outbound data-plane
	// messages (Config.MessageArena); nil when disabled. Lazily created
	// on first transmit — see Engine.arenaFor.
	arena *msgArena

	// dFloor is a lower bound on Dx: the start-number-max agreed at
	// group formation (§5.3 step 5). Nulls numbered below it may still
	// arrive but are never delivered, so the floor is safe.
	dFloor types.MsgNum
	// startPin pins Dx while status == statusStartWait.
	startPin  types.MsgNum
	startNums map[types.ProcessID]types.MsgNum

	// Membership agreement (§5.2).
	suspicions      map[types.ProcessID]types.MsgNum // my active suspicions: proc → ln
	votes           map[types.Suspicion]map[types.ProcessID]bool
	held            map[types.ProcessID][]heldMsg
	pendingConfirms []confirmRec
	installs        []viewInstall
	removed         []types.ProcessID // ever-removed processes, sorted

	formation *formationState

	// delivered counts application deliveries emitted for this group —
	// the next DeliverEffect carries this value as its stream index.
	// Every member delivers the same messages in the same order, so the
	// counter advances identically fleet-wide and (group, delivered) is a
	// stable cross-process address: the types.LogPos the replication and
	// durability layers key on.
	delivered uint64

	// Asymmetric mode (§4.2).
	pendingReqs []*types.Message // my unsequenced requests, in unicast order
}

func newGroupState(id types.GroupID, mode OrderMode) *groupState {
	return &groupState{
		id:         id,
		mode:       mode,
		log:        newMsgLog(),
		suspicions: make(map[types.ProcessID]types.MsgNum),
		votes:      make(map[types.Suspicion]map[types.ProcessID]bool),
		held:       make(map[types.ProcessID][]heldMsg),
		startNums:  make(map[types.ProcessID]types.MsgNum),
	}
}

// activate installs the initial view V0 and primes the vectors.
func (g *groupState) activate(members []types.ProcessID, now time.Time, signatures bool) {
	g.view = types.NewView(g.id, 0, members)
	if signatures {
		g.view.Excluded = make([]int, len(g.view.Members))
	}
	n := len(g.view.Members)
	g.mem = make([]memberSlot, n)
	for i := range g.mem {
		g.mem[i].lastHeard = now
	}
	g.rvMin, g.rvMinCnt = 0, n
	g.svMin, g.svMinCnt = 0, n
	g.lastSent = now
}

// memberIndex returns the position of p in view.Members (the index into
// mem), or -1 when p is not a current member. The members slice is sorted,
// so this is a branch-free binary search — no hashing on the hot path.
func (g *groupState) memberIndex(p types.ProcessID) int {
	ms := g.view.Members
	if len(ms) <= 8 {
		for i, q := range ms {
			if q == p {
				return i
			}
			if q > p {
				return -1
			}
		}
		return -1
	}
	lo, hi := 0, len(ms)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ms[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ms) && ms[lo] == p {
		return lo
	}
	return -1
}

// isRemoved reports whether p was ever excluded from a view of this group.
func (g *groupState) isRemoved(p types.ProcessID) bool {
	rs := g.removed
	if len(rs) == 0 {
		return false
	}
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rs[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(rs) && rs[lo] == p
}

// markRemoved records p as ever-excluded (idempotent, keeps order).
func (g *groupState) markRemoved(p types.ProcessID) {
	rs := g.removed
	i := 0
	for i < len(rs) && rs[i] < p {
		i++
	}
	if i < len(rs) && rs[i] == p {
		return
	}
	rs = append(rs, 0)
	copy(rs[i+1:], rs[i:])
	rs[i] = p
	g.removed = rs
}

// stray returns (allocating on first use) the relay bookkeeping for a
// non-member origin. Only hostile traffic reaches here; see strayOrigin.
func (g *groupState) stray(p types.ProcessID) *strayOrigin {
	if s, ok := g.strays[p]; ok {
		return s
	}
	if g.strays == nil {
		g.strays = make(map[types.ProcessID]*strayOrigin)
	}
	s := &strayOrigin{}
	g.strays[p] = s
	return s
}

// bumpRV raises member i's receive-vector entry to num (no-op if not an
// increase) and maintains the cached min(RV). Reports whether min(RV)
// advanced — i.e. the delivery gate D_x may have moved.
func (g *groupState) bumpRV(i int, num types.MsgNum) bool {
	s := &g.mem[i]
	if num <= s.rv {
		return false
	}
	old := s.rv
	s.rv = num
	if old != g.rvMin {
		return false
	}
	if g.rvMinCnt--; g.rvMinCnt > 0 {
		return false
	}
	min, cnt := types.InfNum, 0
	for j := range g.mem {
		switch v := g.mem[j].rv; {
		case v < min:
			min, cnt = v, 1
		case v == min:
			cnt++
		}
	}
	g.rvMin, g.rvMinCnt = min, cnt
	return true
}

// bumpSV raises member i's stability-vector entry to ldn and maintains the
// cached min(SV). Reports whether min(SV) — the stability threshold —
// advanced.
func (g *groupState) bumpSV(i int, ldn types.MsgNum) bool {
	s := &g.mem[i]
	if ldn <= s.sv {
		return false
	}
	old := s.sv
	s.sv = ldn
	if old != g.svMin {
		return false
	}
	if g.svMinCnt--; g.svMinCnt > 0 {
		return false
	}
	min, cnt := types.InfNum, 0
	for j := range g.mem {
		switch v := g.mem[j].sv; {
		case v < min:
			min, cnt = v, 1
		case v == min:
			cnt++
		}
	}
	g.svMin, g.svMinCnt = min, cnt
	return true
}

// recomputeMins rescans both cached minima (used after a view rebuild).
func (g *groupState) recomputeMins() {
	rvMin, rvCnt := types.InfNum, 0
	svMin, svCnt := types.InfNum, 0
	for i := range g.mem {
		switch v := g.mem[i].rv; {
		case v < rvMin:
			rvMin, rvCnt = v, 1
		case v == rvMin:
			rvCnt++
		}
		switch v := g.mem[i].sv; {
		case v < svMin:
			svMin, svCnt = v, 1
		case v == svMin:
			svCnt++
		}
	}
	if len(g.mem) == 0 {
		rvMin, svMin = 0, 0
	}
	g.rvMin, g.rvMinCnt = rvMin, rvCnt
	g.svMin, g.svMinCnt = svMin, svCnt
}

// rebuildMem remaps the dense member state after a view installation: the
// new view is a subset of the old one, both sorted, so surviving slots are
// copied positionally and the minima recomputed once.
func (g *groupState) rebuildMem(oldMembers []types.ProcessID, oldMem []memberSlot) {
	mem := make([]memberSlot, len(g.view.Members))
	j := 0
	for i, p := range g.view.Members {
		for j < len(oldMembers) && oldMembers[j] != p {
			j++
		}
		if j < len(oldMembers) {
			mem[i] = oldMem[j]
			j++
		}
	}
	g.mem = mem
	g.recomputeMins()
}

// sequencer returns the asymmetric-mode sequencer for the current view:
// the lowest-numbered member. Processes with identical views elect the same
// sequencer deterministically (§4.2).
func (g *groupState) sequencer() types.ProcessID {
	if len(g.view.Members) == 0 {
		return types.NilProcess
	}
	return g.view.Members[0]
}

// dx returns this group's largest-deliverable-number D_x (§4.1/§4.2).
//
// In the static failure-free configuration, an asymmetric group uses the
// paper's §4.2 rule — D_x is the number of the last message received from
// the sequencer, so sequenced messages deliver immediately. In the
// fault-tolerant configuration D_x is min(RV) for every mode: the §5.2
// agreement boundary is only consistent because no process can deliver a
// number beyond a silent member's last message ("absent or rejected
// messages from suspected processes prevent D from increasing beyond
// lnmn"), and that argument needs D ≤ RV[k] pointwise. Universal
// time-silence (which §5 mandates in every group precisely for failure
// detection) keeps min(RV) advancing, so asymmetric delivery stays live —
// the sequencer contributes ordering economy, min(RV) the safety boundary.
//
// min(RV) is maintained incrementally (see bumpRV), so dx is O(1).
func (g *groupState) dx() types.MsgNum {
	if g.status == statusStartWait {
		return g.startPin
	}
	var d types.MsgNum
	if g.mode == Asymmetric && g.staticD {
		if len(g.mem) > 0 {
			d = g.mem[0].rv // sequencer = lowest-numbered = Members[0]
		}
	} else {
		d = g.rvMin
		if len(g.view.Members) == 0 {
			d = 0
		}
	}
	if d < g.dFloor {
		d = g.dFloor
	}
	return d
}

// minSV returns the stability threshold: every message with Num ≤ minSV
// has been received by all members of the current view (§5.1). O(1) via
// the incrementally maintained cache (see bumpSV).
func (g *groupState) minSV() types.MsgNum {
	if len(g.view.Members) == 0 {
		return 0
	}
	return g.svMin
}

// knownNum returns the highest Lamport number this process has witnessed
// from p in this group, over both the direct path (rv) and sequencer
// relays of p's messages. It is the ln used when suspecting p and the
// evidence threshold when judging others' suspicions of p.
func (g *groupState) knownNum(p types.ProcessID) types.MsgNum {
	var n, r types.MsgNum
	if i := g.memberIndex(p); i >= 0 {
		n, r = g.mem[i].rv, g.mem[i].relayedNum
	} else if s, ok := g.strays[p]; ok {
		r = s.relayedNum
	}
	if n == types.InfNum {
		return n
	}
	if r > n {
		n = r
	}
	return n
}

// ordered reports whether the group gates delivery on the logical-clock
// condition safe1' (total order); atomic groups bypass the gate (fig. 3).
func (g *groupState) ordered() bool { return g.mode == Symmetric || g.mode == Asymmetric }

// runsTimeSilence reports whether this process operates the time-silence
// mechanism in this group. With failure detection on (dynamic Newtop, §5)
// every member does; in the static failure-free configuration only
// symmetric members and the asymmetric sequencer need it (§4).
func (g *groupState) runsTimeSilence(self types.ProcessID, failureDetection bool) bool {
	if g.status != statusActive && g.status != statusStartWait {
		return false
	}
	if failureDetection {
		return true
	}
	switch g.mode {
	case Symmetric:
		return true
	case Asymmetric:
		return g.sequencer() == self
	default:
		return false
	}
}
