package core_test

import (
	"fmt"
	"testing"
	"time"

	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
)

// newCluster builds a cluster of n processes P1..Pn with test-friendly
// timing (ω = 20ms, latency 1–3ms).
func newCluster(t testing.TB, seed int64, n int, mutate ...func(*core.Config)) (*sim.Cluster, []types.ProcessID) {
	t.Helper()
	c := sim.New(seed, sim.WithLatency(1*time.Millisecond, 3*time.Millisecond))
	ps := make([]types.ProcessID, 0, n)
	for i := 1; i <= n; i++ {
		cfg := core.Config{Self: types.ProcessID(i), Omega: 20 * time.Millisecond}
		for _, m := range mutate {
			m(&cfg)
		}
		c.AddProcess(cfg)
		ps = append(ps, types.ProcessID(i))
	}
	return c, ps
}

// payload tags a message for later identification.
func payload(p types.ProcessID, i int) []byte {
	return []byte(fmt.Sprintf("%v-m%d", p, i))
}

// deliveredPayloads extracts the payload strings delivered at p for group g.
func deliveredPayloads(c *sim.Cluster, p types.ProcessID, g types.GroupID) []string {
	var out []string
	for _, d := range c.History(p).Deliveries {
		if d.Group == g {
			out = append(out, string(d.Payload))
		}
	}
	return out
}

func TestSmokeSymmetricTotalOrder(t *testing.T) {
	c, ps := newCluster(t, 1, 3)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	// Each process multicasts two messages, interleaved in time.
	for i := 0; i < 2; i++ {
		for _, p := range ps {
			if err := c.Submit(p, 1, payload(p, i)); err != nil {
				t.Fatal(err)
			}
			c.Run(2 * time.Millisecond)
		}
	}
	// Run long enough for time-silence to flush delivery everywhere.
	c.Run(500 * time.Millisecond)

	want := 6
	var ref []string
	for _, p := range ps {
		got := deliveredPayloads(c, p, 1)
		if len(got) != want {
			t.Fatalf("%v delivered %d messages (%v), want %d", p, len(got), got, want)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("delivery order diverges at %v: %v vs %v", p, got, ref)
			}
		}
	}
}

func TestSmokeAsymmetricTotalOrder(t *testing.T) {
	c, ps := newCluster(t, 2, 3)
	if err := c.Bootstrap(1, core.Asymmetric, ps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for _, p := range ps {
			if err := c.Submit(p, 1, payload(p, i)); err != nil {
				t.Fatal(err)
			}
			c.Run(2 * time.Millisecond)
		}
	}
	c.Run(500 * time.Millisecond)

	var ref []string
	for _, p := range ps {
		got := deliveredPayloads(c, p, 1)
		if len(got) != 6 {
			t.Fatalf("%v delivered %d messages (%v), want 6", p, len(got), got)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("delivery order diverges at %v: %v vs %v", p, got, ref)
			}
		}
	}
}

func TestSmokeCrashTriggersViewChange(t *testing.T) {
	c, ps := newCluster(t, 3, 3)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(100 * time.Millisecond)
	c.Crash(3)
	ok := c.RunUntil(5*time.Second, func() bool {
		for _, p := range []types.ProcessID{1, 2} {
			vs := c.History(p).Views[1]
			if len(vs) == 0 || vs[len(vs)-1].View.Contains(3) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("survivors never installed a view excluding the crashed process")
	}
	for _, p := range []types.ProcessID{1, 2} {
		vs := c.History(p).Views[1]
		last := vs[len(vs)-1].View
		if last.Contains(3) {
			t.Errorf("%v still has P3 in view %v", p, last)
		}
		if !last.Contains(1) || !last.Contains(2) {
			t.Errorf("%v's view lost a live member: %v", p, last)
		}
	}
}
