package core

import (
	"newtop/internal/obs"
)

// engMetrics is the engine's resolved metric handles. Resolution happens
// once in NewEngine; every handle is nil when the engine was built
// without a registry, making each update a single predictable branch
// (obs handles are nil-receiver no-ops). The receive hot path stays
// 0 allocs/op either way — the EngineHandleMessage perf gate holds it.
type engMetrics struct {
	delivered *obs.Counter // application deliveries emitted

	// Gate-stall reasons: why the pump left the delivery-queue head
	// undelivered this pass. safe1' is the cross-group clock gate
	// (m.Num > globalD); view_install is the update_view wait (§5.2 step
	// viii) holding delivery until a scheduled view lands.
	stallSafe1   *obs.Counter
	stallInstall *obs.Counter

	// Labeled drop sites — every silent `return`/`continue` that loses a
	// message increments exactly one of these.
	dropPreOverflow  *obs.Counter // pre-formation buffer full
	dropLeftGroup    *obs.Counter // traffic for a departed group
	dropRemoved      *obs.Counter // sender/origin already excluded from the view
	dropNotMember    *obs.Counter // sender never in the view
	dropSeqGap       *obs.Counter // FIFO gap (transport loss) — prefix recovers via refute
	dropStaleView    *obs.Counter // MD1 cutoff: origin left the view before delivery
	dropGroupGone    *obs.Counter // queued message whose group was departed
	dropQueuedSubmit *obs.Counter // queued submit dropped with its group

	gcPause    *obs.Histogram // stability-log gc wall time (ns)
	queueDepth *obs.Gauge     // received-but-undelivered ordered messages
	arenaLive  *obs.Gauge     // arena slots still held by log/queue
	arenaGrace *obs.Gauge     // slots released this stimulus, pending promotion
	logSize    *obs.Gauge     // unstable messages retained across groups
}

// enabled reports whether any handle is live; finish() skips its gauge
// sweep entirely on an unmetered engine.
func (m *engMetrics) enabled() bool { return m.delivered != nil }

func newEngMetrics(reg *obs.Registry) engMetrics {
	if reg == nil {
		return engMetrics{}
	}
	drop := func(reason string) *obs.Counter {
		return reg.Counter(`newtop_drops_total{layer="core",reason="` + reason + `"}`)
	}
	return engMetrics{
		delivered:        reg.Counter("newtop_engine_delivered_total"),
		stallSafe1:       reg.Counter(`newtop_engine_gate_stall_total{gate="safe1"}`),
		stallInstall:     reg.Counter(`newtop_engine_gate_stall_total{gate="view_install"}`),
		dropPreOverflow:  drop("prebuffer_overflow"),
		dropLeftGroup:    drop("left_group"),
		dropRemoved:      drop("removed_member"),
		dropNotMember:    drop("not_member"),
		dropSeqGap:       drop("seq_gap"),
		dropStaleView:    drop("stale_view"),
		dropGroupGone:    drop("group_gone"),
		dropQueuedSubmit: drop("queued_submit_group_gone"),
		gcPause:          reg.Histogram("newtop_engine_log_gc_ns"),
		queueDepth:       reg.Gauge("newtop_engine_queue_depth"),
		arenaLive:        reg.Gauge("newtop_engine_arena_live"),
		arenaGrace:       reg.Gauge("newtop_engine_arena_grace"),
		logSize:          reg.Gauge("newtop_engine_log_size"),
	}
}
