package core_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
)

// allReady builds a RunUntil condition: group g completed formation at all
// listed processes.
func allReady(c *sim.Cluster, g types.GroupID, procs []types.ProcessID) func() bool {
	return func() bool {
		for _, p := range procs {
			if !c.Engine(p).GroupReady(g) {
				return false
			}
		}
		return true
	}
}

func TestGroupFormationSucceeds(t *testing.T) {
	c, ps := newCluster(t, 201, 4)
	if err := c.CreateGroup(1, 7, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(10*time.Second, allReady(c, 7, ps)) {
		t.Fatal("formation never completed")
	}
	// GroupReadyEffect observed everywhere; start-numbers agreed: the
	// engine clocks are all at least the agreed start-number-max.
	for _, p := range ps {
		found := false
		for _, g := range c.History(p).Ready {
			if g == 7 {
				found = true
			}
		}
		if !found {
			t.Errorf("%v never reported group ready", p)
		}
	}
	// The new group is usable for totally ordered multicast.
	for i := 0; i < 4; i++ {
		src := ps[i%len(ps)]
		if err := c.Submit(src, 7, payload(src, i)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.RunUntil(5*time.Second, allDelivered(c, 7, ps, 4)) {
		t.Fatal("post-formation deliveries incomplete")
	}
	runChecks(t, c)
}

func TestGroupFormationWhileMemberOfOtherGroups(t *testing.T) {
	// §5.3 correctness: a member of existing groups forms a new one; its
	// deliveries across old and new groups stay totally ordered. Old
	// group traffic continues during formation.
	c, ps := newCluster(t, 203, 4)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(30 * time.Millisecond)
	sub := []types.ProcessID{1, 2}
	if err := c.CreateGroup(1, 9, core.Symmetric, sub); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Submit(3, 1, payload(3, i)); err != nil {
			t.Fatal(err)
		}
		c.Run(5 * time.Millisecond)
	}
	if !c.RunUntil(10*time.Second, allReady(c, 9, sub)) {
		t.Fatal("formation never completed")
	}
	for i := 0; i < 5; i++ {
		if err := c.Submit(2, 9, []byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	done := func() bool {
		return allDelivered(c, 1, ps, 5)() && allDelivered(c, 9, sub, 5)()
	}
	if !c.RunUntil(10*time.Second, done) {
		t.Fatal("deliveries incomplete")
	}
	runChecks(t, c)
}

func TestGroupFormationVeto(t *testing.T) {
	// Any 'no' vote vetoes formation (§5.3 step 3).
	c, ps := newCluster(t, 207, 3, func(cfg *core.Config) {
		self := cfg.Self
		cfg.AcceptInvite = func(g types.GroupID, coord types.ProcessID, members []types.ProcessID) bool {
			return self != 3 // P3 declines every invitation
		}
	})
	if err := c.CreateGroup(1, 7, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	failed := func() bool {
		for _, p := range []types.ProcessID{1, 2} {
			ok := false
			for _, g := range c.History(p).Failed {
				if g == 7 {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if !c.RunUntil(10*time.Second, failed) {
		t.Fatal("vetoed formation did not fail everywhere")
	}
	for _, p := range ps {
		if c.Engine(p).GroupReady(7) {
			t.Errorf("%v considers the vetoed group ready", p)
		}
	}
}

func TestGroupFormationTimeoutWhenInviteeCrashed(t *testing.T) {
	// An invitee that crashed before voting stalls the vote phase; the
	// deadline aborts the formation everywhere.
	c, ps := newCluster(t, 211, 3)
	c.Crash(3)
	if err := c.CreateGroup(1, 7, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	failed := func() bool {
		for _, p := range []types.ProcessID{1, 2} {
			ok := false
			for _, g := range c.History(p).Failed {
				if g == 7 {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if !c.RunUntil(30*time.Second, failed) {
		t.Fatal("formation with a crashed invitee never timed out")
	}
}

func TestGroupFormationMemberCrashAfterYes(t *testing.T) {
	// A member crashes after voting yes but before (or while) sending its
	// start-group: the survivors' GV excludes it and the group becomes
	// ready over the shrunken view (§5.3 step 5 counts the current view).
	c, ps := newCluster(t, 213, 4)
	if err := c.CreateGroup(1, 7, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	// Crash P4 shortly after votes circulate; depending on timing its
	// start-group may reach nobody.
	c.At(6*time.Millisecond, func() { c.Crash(4) })
	live := ps[:3]
	if !c.RunUntil(30*time.Second, allReady(c, 7, live)) {
		t.Fatal("formation never completed after member crash")
	}
	// Whether P4 got its start-group out or not, the survivors must end
	// up in a view without it.
	if !c.RunUntil(30*time.Second, viewExcludes(c, 7, live, 4)) {
		t.Fatal("crashed member never excluded from the formed group")
	}
	// The group works.
	if err := c.Submit(2, 7, []byte("post")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(5*time.Second, allDelivered(c, 7, live, 1)) {
		t.Fatal("post-formation delivery incomplete")
	}
	runChecks(t, c, 4)
}

func TestSubmitDuringFormationQueuesUntilReady(t *testing.T) {
	// §5.3 step 5: computational messages wait for the start-group
	// condition; submits during formation are queued, not lost.
	c, ps := newCluster(t, 217, 3)
	if err := c.CreateGroup(1, 7, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1, 7, []byte("early")); err != nil {
		t.Fatal(err)
	}
	if got := c.Engine(1).QueuedSubmits(7); got != 1 {
		t.Errorf("early submit not queued: %d", got)
	}
	if !c.RunUntil(10*time.Second, allDelivered(c, 7, ps, 1)) {
		t.Fatal("queued early submit never delivered")
	}
	runChecks(t, c)
}

func TestServerMigrationScenario(t *testing.T) {
	// Fig. 1 of the paper: replica group g1 = {P1, P2}; P2 migrates to
	// P3. A new group g2 = {P1, P2, P3} is formed, state flows in g2
	// while g1 keeps serving, then P2 leaves both; the surviving service
	// group is {P1, P3}.
	c, _ := newCluster(t, 219, 3)
	g1 := []types.ProcessID{1, 2}
	if err := c.Bootstrap(1, core.Symmetric, g1); err != nil {
		t.Fatal(err)
	}
	c.Run(30 * time.Millisecond)
	// Service traffic in g1.
	for i := 0; i < 3; i++ {
		if err := c.Submit(1, 1, []byte(fmt.Sprintf("req-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// P3 initiates g2 = {P1, P2, P3}.
	g2 := []types.ProcessID{1, 2, 3}
	if err := c.CreateGroup(3, 2, core.Symmetric, g2); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(10*time.Second, allReady(c, 2, g2)) {
		t.Fatal("migration group never formed")
	}
	// State transfer in g2 while g1 still serves.
	if err := c.Submit(1, 2, []byte("state-chunk")); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(2, 1, []byte("req-3")); err != nil {
		t.Fatal(err)
	}
	done := func() bool {
		return allDelivered(c, 1, g1, 4)() && allDelivered(c, 2, g2, 1)()
	}
	if !c.RunUntil(10*time.Second, done) {
		t.Fatal("migration traffic incomplete")
	}
	// P2 departs both groups; P1 and P3 remain in g2.
	if err := c.Leave(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(2, 2); err != nil {
		t.Fatal(err)
	}
	rest := []types.ProcessID{1, 3}
	if !c.RunUntil(20*time.Second, viewExcludes(c, 2, rest, 2)) {
		t.Fatal("P2 never excluded from the migration group")
	}
	// The migrated pair still serves.
	if err := c.Submit(3, 2, []byte("served-by-new-replica")); err != nil {
		t.Fatal(err)
	}
	ok := c.RunUntil(10*time.Second, func() bool {
		for _, p := range rest {
			found := false
			for _, d := range c.History(p).Deliveries {
				if string(d.Payload) == "served-by-new-replica" {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("post-migration service broken")
	}
	runChecks(t, c, 2)
}

func TestCreateGroupValidation(t *testing.T) {
	c, ps := newCluster(t, 223, 3)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	e := c.Engine(1)
	now := c.Now()
	tests := []struct {
		name    string
		g       types.GroupID
		members []types.ProcessID
		want    error
	}{
		{"duplicate id", 1, []types.ProcessID{1, 2}, core.ErrGroupExists},
		{"identical membership", 5, []types.ProcessID{1, 2, 3}, core.ErrDuplicateView},
		{"self missing", 5, []types.ProcessID{2, 3}, core.ErrBadMembers},
		{"empty", 5, nil, core.ErrBadMembers},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := e.CreateGroup(now, tt.g, core.Symmetric, tt.members); !errors.Is(err, tt.want) {
				t.Errorf("CreateGroup err = %v, want %v", err, tt.want)
			}
		})
	}
	// Departed groups cannot be re-created at the departing process.
	if _, err := e.LeaveGroup(now, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateGroup(now, 1, core.Symmetric, []types.ProcessID{1, 2}); !errors.Is(err, core.ErrLeftGroup) {
		t.Errorf("recreate departed group: err = %v, want ErrLeftGroup", err)
	}
}
