package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
)

// TestEngineRandomEventSequences drives a single engine with randomised
// (possibly hostile) event sequences — garbage messages, wrong senders,
// out-of-range fields — and asserts the engine never panics and never
// emits a delivery that violates MD1 (origin and sender in the group's
// current view, group known). This is the engine-level robustness
// property backing the wire fuzzing: anything that decodes must be safe
// to feed the protocol.
//
// Stronger ordering properties (monotone delivery numbers, no duplicate
// (origin, seq)) deliberately are NOT asserted here: they are crash-fault
// guarantees, and this stream is Byzantine. A forged message can carry an
// arbitrarily high num/LDN that advances the delivery gate, after which a
// later low-numbered forgery delivers "out of order" — quick.Check seed
// 7525858044138189085 finds exactly that. Ordering under faithful
// conditions is pinned by the multi-engine soaks and the MD/VC property
// checkers (internal/check), which model crash faults only.
func TestEngineRandomEventSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := core.NewEngine(core.Config{Self: 1, Omega: 10 * time.Millisecond})
		now := sim.Epoch
		views := map[types.GroupID]types.View{}
		ok := true
		apply := func(effs []core.Effect) {
			for _, eff := range effs {
				switch eff := eff.(type) {
				case core.ViewEffect:
					views[eff.View.Group] = eff.View
				case core.DeliverEffect:
					v, known := views[eff.Msg.Group]
					if !known || !v.Contains(eff.Msg.Origin) || !v.Contains(eff.Msg.Sender) {
						ok = false // MD1: delivery from outside the current view
					}
				}
			}
		}
		effs, err := e.BootstrapGroup(now, 1, core.Symmetric, []types.ProcessID{1, 2, 3})
		if err != nil {
			return false
		}
		apply(effs)
		if v, verr := e.View(1); verr == nil {
			views[1] = v // the initial view, if bootstrap did not emit it
		}
		for step := 0; step < 300 && ok; step++ {
			now = now.Add(time.Duration(rng.Intn(8)) * time.Millisecond)
			switch rng.Intn(10) {
			case 0:
				apply(e.Tick(now))
			case 1:
				effs, _ := e.Submit(now, types.GroupID(rng.Intn(3)), []byte(fmt.Sprintf("s%d", step)))
				apply(effs)
			default:
				m := &types.Message{
					Kind:   types.Kind(rng.Intn(12)),
					Group:  types.GroupID(rng.Intn(3)),
					Sender: types.ProcessID(rng.Intn(5)),
					Origin: types.ProcessID(rng.Intn(5)),
					Num:    types.MsgNum(rng.Intn(1000)),
					Seq:    uint64(rng.Intn(50)),
					LDN:    types.MsgNum(rng.Intn(1000)),
					Suspicion: types.Suspicion{
						Proc: types.ProcessID(rng.Intn(5)),
						LN:   types.MsgNum(rng.Intn(1000)),
					},
				}
				if rng.Intn(4) == 0 {
					m.Payload = []byte{byte(step)}
				}
				if rng.Intn(5) == 0 {
					m.Detection = []types.Suspicion{{Proc: types.ProcessID(rng.Intn(5)), LN: types.MsgNum(rng.Intn(100))}}
				}
				if rng.Intn(5) == 0 {
					m.Invite = []types.ProcessID{1, 2, types.ProcessID(rng.Intn(5))}
				}
				from := types.ProcessID(rng.Intn(5))
				apply(e.HandleMessage(now, from, m))
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEngineHostileMessagesNeverPanic floods an engine with fully random
// control messages referencing unknown groups, self-suspicions, and
// malformed invitations.
func TestEngineHostileMessagesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := core.NewEngine(core.Config{Self: 1, Omega: 5 * time.Millisecond})
	now := sim.Epoch
	for i := 0; i < 5000; i++ {
		m := &types.Message{
			Kind:     types.Kind(rng.Intn(15)),
			Group:    types.GroupID(rng.Intn(4)),
			Sender:   types.ProcessID(rng.Intn(6)),
			Origin:   types.ProcessID(rng.Intn(6)),
			Num:      types.MsgNum(rng.Uint64() >> uint(rng.Intn(60))),
			Seq:      rng.Uint64() >> uint(rng.Intn(60)),
			LDN:      types.MsgNum(rng.Uint64() >> uint(rng.Intn(60))),
			StartNum: types.MsgNum(rng.Intn(100)),
			Vote:     rng.Intn(2) == 0,
		}
		e.HandleMessage(now, types.ProcessID(rng.Intn(6)), m)
		now = now.Add(time.Duration(rng.Intn(3)) * time.Millisecond)
		if i%100 == 99 {
			e.Tick(now)
		}
	}
}
