package core

import (
	"time"

	"newtop/internal/types"
)

// This file implements the dynamic group-formation protocol of §5.3: a
// two-phase invite/vote exchange (any 'no' vetoes) followed by a
// start-group agreement fixing the minimum number with which computational
// messages may be multicast in the new group.

// onFormInvite handles step 1→2: an invitation to form group m.Group with
// membership m.Invite. The invitee diffuses its yes/no decision to every
// intended member.
func (e *Engine) onFormInvite(now time.Time, from types.ProcessID, m *types.Message) {
	g := m.Group
	if _, ok := e.groups[g]; ok {
		// Already forming or member (duplicate invite): ignore.
		return
	}
	mode := OrderMode(0)
	if len(m.Payload) == 1 {
		mode = OrderMode(m.Payload[0])
	}
	members := types.NewView(g, 0, m.Invite).Members
	accept := mode >= Atomic && mode <= Asymmetric && containsProc(members, e.cfg.Self) && !e.left[g]
	if accept && e.cfg.AcceptInvite != nil {
		accept = e.cfg.AcceptInvite(g, m.Origin, members)
	}

	vote := &types.Message{
		Kind: types.KindFormVote, Group: g,
		Sender: e.cfg.Self, Origin: e.cfg.Self,
		Vote: accept, Invite: members, Payload: []byte{byte(mode)},
	}
	e.stats.CtrlSent++
	e.mcastTo(members, vote)

	if !accept {
		// Our 'no' vetoes the formation; nothing further to track.
		e.emit(FormationFailedEffect{Group: g, Reason: "declined invitation"})
		return
	}
	gs := newGroupState(g, mode)
	gs.staticD = e.cfg.DisableFailureDetection
	gs.status = statusForming
	gs.formation = &formationState{
		members:  members,
		mode:     mode,
		yes:      map[types.ProcessID]bool{e.cfg.Self: true},
		deadline: now.Add(e.cfg.FormationTimeout),
	}
	gs.formation.votedSelf = true
	e.groups[g] = gs
	e.groupsChanged()
	// Votes that outran this invitation were buffered; replay them.
	e.replayPre(now, g)
	if gs, ok := e.groups[g]; ok {
		e.tryActivate(now, gs)
	}
}

// onFormVote handles steps 2–4: collect yes/no diffusions. A 'no' vetoes;
// once a yes has been seen from every intended member, the group activates
// and the start-group exchange begins.
func (e *Engine) onFormVote(now time.Time, from types.ProcessID, m *types.Message) {
	gs, ok := e.groups[m.Group]
	if !ok || gs.status != statusForming || gs.formation == nil {
		return
	}
	f := gs.formation
	if !containsProc(f.members, from) {
		return
	}
	if !m.Vote {
		e.emit(FormationFailedEffect{Group: gs.id, Reason: "vetoed by " + from.String()})
		delete(e.groups, gs.id)
		e.groupsChanged()
		delete(e.pre, gs.id)
		e.left[gs.id] = true
		return
	}
	f.yes[from] = true

	// Step 3: the initiator votes yes only after the rest have.
	if f.initiator && !f.votedSelf && e.allOthersYes(f) {
		f.votedSelf = true
		f.yes[e.cfg.Self] = true
		vote := &types.Message{
			Kind: types.KindFormVote, Group: gs.id,
			Sender: e.cfg.Self, Origin: e.cfg.Self,
			Vote: true, Invite: f.members, Payload: []byte{byte(f.mode)},
		}
		e.stats.CtrlSent++
		e.mcastTo(f.members, vote)
	}
	e.tryActivate(now, gs)
}

func (e *Engine) allOthersYes(f *formationState) bool {
	for _, p := range f.members {
		if p != e.cfg.Self && !f.yes[p] {
			return false
		}
	}
	return true
}

// tryActivate performs step 4 once a yes has been received from every
// proposed member: install V0, start the time-silence and GV machinery,
// and multicast the start-group message carrying our proposed
// start-number.
func (e *Engine) tryActivate(now time.Time, gs *groupState) {
	f := gs.formation
	if gs.status != statusForming || f == nil {
		return
	}
	for _, p := range f.members {
		if !f.yes[p] {
			return
		}
	}
	gs.status = statusStartWait
	gs.activate(f.members, now, e.cfg.SignatureViews)
	gs.formation = nil
	gs.startPin = 0
	e.gDValid = false                         // the group starts gating delivery (D pinned at startPin)
	e.emit(ViewEffect{View: gs.view.Clone()}) // install V0 (§3)

	num := e.lc.TickSend()
	gs.mySeq++
	sg := &types.Message{
		Kind:   types.KindStartGroup,
		Group:  gs.id,
		Sender: e.cfg.Self, Origin: e.cfg.Self,
		Num: num, Seq: gs.mySeq, LDN: 0, StartNum: num,
	}
	e.stats.CtrlSent++
	e.mcast(gs, sg)
	gs.lastSent = now
	e.onDataPlane(now, gs, gs.memberIndex(e.cfg.Self), sg)

	// Traffic from members that activated before us was buffered.
	e.replayPre(now, gs.id)
}

// onStartGroup records a member's proposed start-number (step 5). While
// waiting, D is pinned but may rise to a larger proposed start-number; once
// a start-group has arrived from every member of the *current* view (the
// membership protocol runs in parallel and may have shrunk it), D jumps to
// start-number-max, the Lamport clock catches up, and computational sends
// open.
func (e *Engine) onStartGroup(now time.Time, gs *groupState, m *types.Message) {
	gs.startNums[m.Sender] = m.StartNum
	if gs.status != statusStartWait {
		return
	}
	if m.StartNum > gs.startPin {
		gs.startPin = m.StartNum
		e.gDValid = false // D is pinned to startPin while waiting
	}
	e.checkStartComplete(now, gs)
}

// checkStartComplete completes step 5 when every current-view member's
// start-number is known.
func (e *Engine) checkStartComplete(now time.Time, gs *groupState) {
	if gs.status != statusStartWait {
		return
	}
	var max types.MsgNum
	for _, p := range gs.view.Members {
		sn, ok := gs.startNums[p]
		if !ok {
			return
		}
		if sn > max {
			max = sn
		}
	}
	gs.status = statusActive
	gs.dFloor = max
	gs.startPin = 0
	e.gDValid = false // D jumps from the pin to max(min(RV), dFloor)
	e.lc.ForceAtLeast(max)
	e.emit(GroupReadyEffect{Group: gs.id, StartMax: max})
}

func containsProc(ps []types.ProcessID, p types.ProcessID) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}
