package core

import (
	"time"

	"newtop/internal/obs"
	"newtop/internal/types"
)

// handleMessage is the internal receive path (also used for loopback and
// for replaying held/recovered/buffered messages).
func (e *Engine) handleMessage(now time.Time, from types.ProcessID, m *types.Message) {
	switch m.Kind {
	case types.KindFormInvite:
		e.onFormInvite(now, from, m)
		return
	case types.KindFormVote:
		// A vote can outrun the invitation that explains it; buffer it
		// until the invite creates the forming state.
		if _, ok := e.groups[m.Group]; !ok && !e.left[m.Group] {
			if len(e.pre[m.Group]) < preBuffered {
				e.pre[m.Group] = append(e.pre[m.Group], heldMsg{from: from, m: m})
			} else {
				e.om.dropPreOverflow.Inc()
			}
			return
		}
		e.onFormVote(now, from, m)
		return
	}

	gs, ok := e.groups[m.Group]
	if !ok {
		if e.left[m.Group] {
			e.om.dropLeftGroup.Inc()
			return // departed: maintain no state for this group (§3)
		}
		// The group may be forming here while a faster member already
		// activated: buffer until activation.
		if len(e.pre[m.Group]) < preBuffered {
			e.pre[m.Group] = append(e.pre[m.Group], heldMsg{from: from, m: m})
		} else {
			e.om.dropPreOverflow.Inc()
		}
		return
	}
	if gs.status == statusForming {
		// Formation votes are handled above; protocol traffic for a
		// still-forming group waits for activation.
		if len(e.pre[m.Group]) < preBuffered {
			e.pre[m.Group] = append(e.pre[m.Group], heldMsg{from: from, m: m})
		} else {
			e.om.dropPreOverflow.Inc()
		}
		return
	}
	// Traffic from processes already excluded from the view is discarded
	// (§5.2: "Pi discards any messages received from Pk and GVk, if
	// either Pk ∈ failed or Pk ∉ Vi"). A sequencer relay whose origin was
	// excluded is equally dead: its content is a removed member's
	// message.
	if gs.isRemoved(m.Sender) || gs.isRemoved(m.Origin) {
		e.om.dropRemoved.Inc()
		return
	}
	si := gs.memberIndex(m.Sender)
	if si < 0 {
		e.om.dropNotMember.Inc()
		return
	}
	// Messages from currently suspected processes are kept pending until
	// the suspicion is refuted or confirmed (§5.2).
	if _, suspected := gs.suspicions[m.Sender]; suspected && m.Sender != e.cfg.Self {
		gs.held[m.Sender] = append(gs.held[m.Sender], heldMsg{from: from, m: m})
		return
	}

	switch m.Kind {
	case types.KindData, types.KindNull, types.KindStartGroup:
		e.onDataPlane(now, gs, si, m)
	case types.KindSeqRequest:
		e.onSeqRequest(now, gs, si, m)
	case types.KindSuspect:
		e.onSuspect(now, gs, from, m)
	case types.KindRefute:
		e.onRefute(now, gs, from, m)
	case types.KindConfirmed:
		e.onConfirmed(now, gs, from, m)
	}
}

// onDataPlane processes a numbered (data-plane) message: CA2 clock
// witness, receive-vector and stability bookkeeping, then kind dispatch.
// si is the sender's member index (see memberIndex); the caller has
// already verified membership.
func (e *Engine) onDataPlane(now time.Time, gs *groupState, si int, m *types.Message) {
	// Refutation by receipt (§5.2 step iii): a message from m.Sender
	// numbered above a gossiped suspicion's ln disproves that suspicion.
	e.refuteGossip(now, gs, m.Sender, m.Num)

	// Per-origin FIFO handling, split by path (direct vs sequencer-
	// relayed). Duplicates (e.g. a recovered copy of a message we already
	// accepted) are dropped. A sequence gap means the transport lost a
	// message (a cut shorter than the suspicion timeout): the gapped
	// message is dropped without bookkeeping and the sender is suspected
	// immediately, so the missing prefix is recovered through a refute
	// piggyback — gaps heal via the membership machinery, never by
	// reordering.
	direct := m.Sender == m.Origin
	oi := si // origin's member index; differs from si only on relays
	if direct {
		slot := &gs.mem[si]
		if m.Seq <= slot.seqDirect {
			return // duplicate
		}
		if m.Seq != slot.seqDirect+1 {
			e.stats.Gaps++
			e.om.dropSeqGap.Inc()
			e.raiseSuspicion(now, gs, m.Sender)
			return
		}
		slot.seqDirect = m.Seq
	} else if oi = gs.memberIndex(m.Origin); oi >= 0 {
		slot := &gs.mem[oi]
		if m.Seq <= slot.seqRelayed {
			return
		}
		if m.Seq != slot.seqRelayed+1 {
			e.stats.Gaps++
			e.om.dropSeqGap.Inc()
			e.raiseSuspicion(now, gs, m.Sender)
			return
		}
		slot.seqRelayed = m.Seq
	} else {
		// Relay of an origin outside the view: hostile traffic; the
		// overflow record preserves the map-era duplicate/gap semantics.
		st := gs.stray(m.Origin)
		if m.Seq <= st.seqRelayed {
			return
		}
		if m.Seq != st.seqRelayed+1 {
			e.stats.Gaps++
			e.om.dropSeqGap.Inc()
			e.raiseSuspicion(now, gs, m.Sender)
			return
		}
		st.seqRelayed = m.Seq
	}

	e.lc.Witness(m.Num) // CA2
	if gs.bumpRV(si, m.Num) || (gs.staticD && gs.mode == Asymmetric && si == 0) {
		e.gDValid = false // the delivery gate D_x moved
	}
	gs.mem[si].lastHeard = now
	gs.bumpSV(si, m.LDN)

	gs.log.add(m)

	switch m.Kind {
	case types.KindData:
		if !direct {
			if oi >= 0 {
				if m.Num > gs.mem[oi].relayedNum {
					gs.mem[oi].relayedNum = m.Num
				}
			} else if st := gs.stray(m.Origin); m.Num > st.relayedNum {
				st.relayedNum = m.Num
			}
			// A relay numbered above a gossiped suspicion of its origin
			// raises the evidence threshold for that origin too.
			e.refuteGossip(now, gs, m.Origin, m.Num)
			if m.Origin == e.cfg.Self {
				e.ackOwnRequest(gs, m.Seq)
			}
		}
		if e.tracer.Sampled(m.Num) {
			key := obs.TraceKey{Group: m.Group, Origin: m.Origin, Num: m.Num}
			e.tracer.StampIf(key, obs.StageReceive, now)
			if gs.ordered() {
				e.tracer.StampIf(key, obs.StageOrdered, now)
			}
		}
		if gs.ordered() {
			e.queue.Push(m)
		} else {
			// Atomic mode bypasses the logical-clock gate (fig. 3):
			// deliver on receipt, in per-sender FIFO order.
			e.stats.Delivered++
			e.om.delivered.Inc()
			e.tracer.StampIf(obs.TraceKey{Group: m.Group, Origin: m.Origin, Num: m.Num}, obs.StageDelivered, now)
			e.emit(DeliverEffect{Msg: m, View: gs.view.Index, Index: gs.delivered})
			gs.delivered++
		}
	case types.KindNull:
		e.stats.NullsDropped++
	case types.KindStartGroup:
		e.onStartGroup(now, gs, m)
	}

	// Amortized log GC: the stability threshold min(SV) is monotone, so
	// collecting is only useful when it advanced past the last collection
	// — or when the message just logged is already below it (the map-era
	// per-message gc would have dropped it immediately).
	if sv := gs.minSV(); sv > gs.log.lastGC || m.Num <= sv {
		if e.om.gcPause != nil {
			// Wall-time pause measurement: only metered engines pay the
			// two clock reads. Virtual-time determinism is unaffected —
			// the pause feeds a histogram, never protocol state.
			start := time.Now()
			gs.log.gc(sv)
			e.om.gcPause.ObserveDuration(time.Since(start))
		} else {
			gs.log.gc(sv)
		}
	}
}

// ackOwnRequest clears a now-sequenced request from the pending list,
// which may unblock sends queued behind the §4.2/§4.3 blocking rules.
func (e *Engine) ackOwnRequest(gs *groupState, seq uint64) {
	for i, r := range gs.pendingReqs {
		if r.Seq == seq {
			gs.pendingReqs = append(gs.pendingReqs[:i], gs.pendingReqs[i+1:]...)
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Delivery pump
// ---------------------------------------------------------------------------

// globalD returns D = min over ordered groups of D_x (§4.1: safe1' gates
// delivery on the minimum across every group the process belongs to).
// Atomic groups do not gate. The result is cached; every mutation that can
// move any group's D_x (an RV-min advance, a view install, a status or
// floor change, the group set changing) clears gDValid.
func (e *Engine) globalD() types.MsgNum {
	if e.gDValid {
		return e.gD
	}
	d := types.InfNum
	for _, gs := range e.groups {
		if gs.status == statusForming || !gs.ordered() {
			continue
		}
		if v := gs.dx(); v < d {
			d = v
		}
	}
	e.gD, e.gDValid = d, true
	return d
}

// pump advances delivery: installs due views and delivers queued messages
// satisfying safe1' and safe2, interleaving the two so that a view update
// is installed exactly between the last delivery with Num ≤ lnmn and the
// first with Num > lnmn (update_view, §5.2 step viii).
func (e *Engine) pump(now time.Time) {
	for {
		if e.tryInstalls(now) {
			continue
		}
		m := e.queue.Peek()
		if m == nil {
			return
		}
		gs, ok := e.groups[m.Group]
		if !ok {
			e.om.dropGroupGone.Inc()
			e.queue.Pop()
			continue
		}
		// A scheduled view update with lnmn < m.Num must be installed
		// before m may be delivered; if its preconditions are not yet
		// met, delivery waits.
		if len(gs.installs) > 0 && gs.installs[0].lnmn < m.Num {
			e.om.stallInstall.Inc()
			return
		}
		if m.Num > e.globalD() {
			e.om.stallSafe1.Inc()
			return
		}
		e.queue.Pop()
		if gs.arena != nil {
			gs.arena.clear(m, arenaQueued)
		}
		// MD1 validity: deliver only messages whose sender is in the
		// current view.
		if !gs.view.Contains(m.Origin) || !gs.view.Contains(m.Sender) {
			e.stats.Discarded++
			e.om.dropStaleView.Inc()
			continue
		}
		e.stats.Delivered++
		e.om.delivered.Inc()
		if e.tracer.Sampled(m.Num) {
			key := obs.TraceKey{Group: m.Group, Origin: m.Origin, Num: m.Num}
			e.tracer.StampIf(key, obs.StageStable, now)
			e.tracer.StampIf(key, obs.StageDelivered, now)
		}
		e.emit(DeliverEffect{Msg: m, View: gs.view.Index, Index: gs.delivered})
		gs.delivered++
	}
}

// tryInstalls installs every scheduled view update whose precondition —
// all messages with Num ≤ lnmn delivered, none still to come — holds.
// Returns true if any view was installed.
func (e *Engine) tryInstalls(now time.Time) bool {
	installed := false
	for _, gs := range e.sortedGroups() {
		for len(gs.installs) > 0 {
			ins := gs.installs[0]
			if !e.canInstall(gs, ins) {
				break
			}
			gs.installs = gs.installs[1:]
			e.installView(now, gs, ins)
			installed = true
		}
	}
	return installed
}

// canInstall checks the update_view wait condition: every message with
// Num ≤ lnmn has been delivered and no further one can arrive.
func (e *Engine) canInstall(gs *groupState, ins viewInstall) bool {
	if gs.ordered() {
		// No undelivered message ≤ lnmn may remain anywhere (delivery
		// is one global sequence), and D must certify that no new
		// message ≤ lnmn can arrive.
		if e.queue.HasAtOrBelow(ins.lnmn) {
			return false
		}
		return e.globalD() >= ins.lnmn
	}
	// Atomic groups deliver on receipt; the group's own D_x ≥ lnmn
	// certifies every member's traffic has passed the cutoff.
	return gs.dx() >= ins.lnmn
}

// installView performs the view change: V := V − failed, rebuilds the
// dense member table and its cached minima for the surviving members,
// re-targets pending asymmetric requests if the sequencer changed, and
// emits the ViewEffect.
func (e *Engine) installView(now time.Time, gs *groupState, ins viewInstall) {
	oldSequencer := gs.sequencer()
	removed := make([]types.ProcessID, 0, len(ins.failed))
	for _, p := range gs.view.Members {
		if ins.failed[p] {
			removed = append(removed, p)
		}
	}
	if len(removed) == 0 {
		return
	}
	oldMembers, oldMem := gs.view.Members, gs.mem
	gs.view = gs.view.Without(ins.failed)
	gs.rebuildMem(oldMembers, oldMem)
	e.gDValid = false
	e.stats.ViewChanges++
	for _, p := range removed {
		delete(gs.held, p)
		gs.log.dropOrigin(p)
		delete(gs.suspicions, p)
	}
	for s := range gs.votes {
		if ins.failed[s.Proc] {
			delete(gs.votes, s)
		}
	}
	e.emit(ViewEffect{View: gs.view.Clone(), Removed: removed})

	// Asymmetric: if the sequencer was excluded, re-unicast every still
	// unsequenced request to the new sequencer. The lnmn cutoff plus
	// identical-ln agreement guarantee this is duplicate-safe: any old
	// sequencer multicast ≤ lnmn reached everyone (clearing the pending
	// entry); any > lnmn was discarded everywhere.
	if gs.mode == Asymmetric && ins.failed[oldSequencer] && len(gs.view.Members) > 0 {
		newSeq := gs.sequencer()
		for _, r := range gs.pendingReqs {
			if newSeq == e.cfg.Self {
				e.sequenceRequest(now, gs, r)
			} else {
				e.send(newSeq, r)
				e.stats.SeqRequests++
			}
		}
		if newSeq == e.cfg.Self {
			gs.pendingReqs = nil
		}
	}
	// Membership agreement may have been waiting on a smaller live set,
	// and a start-group wait may now be satisfiable over the smaller view
	// (§5.3 step 5 counts "every Pj in its current view").
	e.checkAgreement(now, gs)
	e.checkStartComplete(now, gs)
}
