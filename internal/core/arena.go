package core

import "newtop/internal/types"

// Arena reference flags: which engine-internal structure still holds the
// message. A slot is recyclable only when every flag has been cleared.
const (
	arenaLogged uint8 = 1 << iota // retained in the group's stability log
	arenaQueued                   // waiting in the delivery queue
)

// msgArena recycles the *types.Message structs the engine itself creates
// on the data-plane hot path — application multicasts and time-silence
// nulls. Each such message is retained by at most two structures (the
// stability log until min(SV) passes it, and the delivery queue until the
// clock gate D releases it); once both have let go, the struct is a dead
// heap object the collector would have to trace and sweep, once per
// message sent. The arena instead parks it on a free list and hands it
// back to the next transmit, driving the per-message allocation count of
// the steady-state send path to zero.
//
// Recycling is only sound because of two contracts:
//
//   - Runtimes consume an effect batch synchronously and never retain a
//     *types.Message across engine calls (the transports marshal at
//     enqueue, inside the Send call; sim's codec mode encodes at transmit
//     time). A released slot can therefore only be observed through a
//     contract violation.
//   - Slots released during a stimulus go to a grace list, not the free
//     list: the effects of the releasing batch (a DeliverEffect holding
//     the message, a refute piggybacking it) are consumed before the next
//     stimulus begins, and promotion to the free list happens at begin().
//
// Payload byte slices are deliberately NOT recycled: deliveries hand the
// payload to the application, which may keep it forever. Only the struct
// is reused; an old payload array stays alive for exactly as long as
// someone references it.
type msgArena struct {
	free  []*types.Message
	grace []*types.Message // released this stimulus; reusable next begin()
	flags map[*types.Message]uint8
}

func newMsgArena() *msgArena {
	return &msgArena{flags: make(map[*types.Message]uint8)}
}

// alloc returns a zeroed message struct, recycled when one is free.
func (a *msgArena) alloc() *types.Message {
	n := len(a.free)
	if n == 0 {
		return &types.Message{}
	}
	m := a.free[n-1]
	a.free[n-1] = nil
	a.free = a.free[:n-1]
	*m = types.Message{}
	return m
}

// track registers m with the structures that currently hold it.
func (a *msgArena) track(m *types.Message, flags uint8) { a.flags[m] = flags }

// clear drops one holder flag of m; untracked messages (anything the
// engine received rather than created) are ignored. The slot moves to the
// grace list when its last holder lets go.
func (a *msgArena) clear(m *types.Message, flag uint8) {
	f, ok := a.flags[m]
	if !ok {
		return
	}
	f &^= flag
	if f != 0 {
		a.flags[m] = f
		return
	}
	delete(a.flags, m)
	a.grace = append(a.grace, m)
}

// clearLogged is the stability log's drop hook (msgLog.onDrop).
func (a *msgArena) clearLogged(m *types.Message) { a.clear(m, arenaLogged) }

// promote moves graced slots to the free list. Called from begin(): by
// then the effect batch that released them has been fully consumed.
func (a *msgArena) promote() {
	if len(a.grace) == 0 {
		return
	}
	a.free = append(a.free, a.grace...)
	for i := range a.grace {
		a.grace[i] = nil
	}
	a.grace = a.grace[:0]
}

// live returns how many messages the arena currently tracks as held
// (diagnostics and tests).
func (a *msgArena) live() int { return len(a.flags) }
