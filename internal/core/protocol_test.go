package core_test

import (
	"fmt"
	"testing"
	"time"

	"newtop/internal/check"
	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
)

// runChecks asserts all MD/VC properties over the cluster.
func runChecks(t *testing.T, c *sim.Cluster, crashed ...types.ProcessID) {
	t.Helper()
	if err := check.New(c, crashed).All().Err(); err != nil {
		t.Error(err)
	}
}

// allDelivered reports whether every live process delivered want messages
// in group g.
func allDelivered(c *sim.Cluster, g types.GroupID, procs []types.ProcessID, want int) func() bool {
	return func() bool {
		for _, p := range procs {
			if len(deliveredPayloads(c, p, g)) < want {
				return false
			}
		}
		return true
	}
}

func TestSymmetricSingleGroupTotalOrderManySeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, ps := newCluster(t, seed, 5)
			if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
				t.Fatal(err)
			}
			const per = 8
			for i := 0; i < per; i++ {
				for _, p := range ps {
					if err := c.Submit(p, 1, payload(p, i)); err != nil {
						t.Fatal(err)
					}
				}
				c.Run(time.Duration(seed) * time.Millisecond)
			}
			if !c.RunUntil(5*time.Second, allDelivered(c, 1, ps, per*len(ps))) {
				t.Fatal("not all messages delivered")
			}
			runChecks(t, c)
		})
	}
}

func TestSymmetricSingleSenderFIFO(t *testing.T) {
	c, ps := newCluster(t, 7, 4)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := c.Submit(1, 1, payload(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.RunUntil(5*time.Second, allDelivered(c, 1, ps, n)) {
		t.Fatal("not all delivered")
	}
	for _, p := range ps {
		got := deliveredPayloads(c, p, 1)
		for i := 0; i < n; i++ {
			if got[i] != string(payload(1, i)) {
				t.Fatalf("%v: delivery %d = %q, want %q", p, i, got[i], payload(1, i))
			}
		}
	}
	runChecks(t, c)
}

func TestSelfDelivery(t *testing.T) {
	// A process delivers its own messages by executing the protocol (§3).
	c, ps := newCluster(t, 9, 3)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(2, 1, []byte("own")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(2*time.Second, allDelivered(c, 1, []types.ProcessID{2}, 1)) {
		t.Fatal("sender never delivered its own message")
	}
	runChecks(t, c)
}

func TestMultiGroupOverlapTotalOrder(t *testing.T) {
	// Overlapping groups: P2 and P3 belong to both g1 and g2; deliveries
	// of messages from both groups must be mutually ordered (MD4').
	c, _ := newCluster(t, 11, 4)
	g1 := []types.ProcessID{1, 2, 3}
	g2 := []types.ProcessID{2, 3, 4}
	if err := c.Bootstrap(1, core.Symmetric, g1); err != nil {
		t.Fatal(err)
	}
	if err := c.Bootstrap(2, core.Symmetric, g2); err != nil {
		t.Fatal(err)
	}
	const per = 6
	for i := 0; i < per; i++ {
		if err := c.Submit(1, 1, payload(1, i)); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(4, 2, payload(4, i)); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(2, 1, []byte(fmt.Sprintf("P2-g1-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(3, 2, []byte(fmt.Sprintf("P3-g2-%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Run(3 * time.Millisecond)
	}
	done := func() bool {
		return allDelivered(c, 1, g1, 2*per)() && allDelivered(c, 2, g2, 2*per)()
	}
	if !c.RunUntil(5*time.Second, done) {
		t.Fatal("not all messages delivered in both groups")
	}
	// The common members must agree on the interleaving of g1 and g2
	// deliveries (verified pairwise by the checker over all groups).
	runChecks(t, c)

	// Explicit MD4' assertion for the two common members.
	var seq2, seq3 []string
	for _, d := range c.History(2).Deliveries {
		seq2 = append(seq2, string(d.Payload))
	}
	for _, d := range c.History(3).Deliveries {
		seq3 = append(seq3, string(d.Payload))
	}
	if len(seq2) != len(seq3) {
		t.Fatalf("common members delivered different counts: %d vs %d", len(seq2), len(seq3))
	}
	for i := range seq2 {
		if seq2[i] != seq3[i] {
			t.Fatalf("MD4' violated at position %d: %q vs %q", i, seq2[i], seq3[i])
		}
	}
}

func TestCyclicGroupStructure(t *testing.T) {
	// §4.1: the delivery conditions "cope with arbitrarily complex group
	// structures", including cyclic overlaps (fig. 2 of the paper's
	// discussion of ISIS): g1={1,2}, g2={2,3}, g3={3,1}.
	c, _ := newCluster(t, 13, 3)
	groups := map[types.GroupID][]types.ProcessID{
		1: {1, 2}, 2: {2, 3}, 3: {3, 1},
	}
	for g, ms := range groups {
		if err := c.Bootstrap(g, core.Symmetric, ms); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := c.Submit(1, 1, []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(2, 2, []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(3, 3, []byte(fmt.Sprintf("c%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Run(2 * time.Millisecond)
	}
	done := func() bool {
		for g, ms := range groups {
			if !allDelivered(c, g, ms, 5)() {
				return false
			}
		}
		return true
	}
	if !c.RunUntil(5*time.Second, done) {
		t.Fatal("cyclic structure deliveries incomplete")
	}
	runChecks(t, c)
}

func TestAsymmetricSequencerIsDeterministic(t *testing.T) {
	c, ps := newCluster(t, 17, 4)
	if err := c.Bootstrap(1, core.Asymmetric, ps); err != nil {
		t.Fatal(err)
	}
	// All data multicasts must come from the sequencer (lowest ID = P1):
	// submit from a non-sequencer and verify delivery happens and order
	// is uniform.
	for i := 0; i < 6; i++ {
		src := ps[i%len(ps)]
		if err := c.Submit(src, 1, payload(src, i)); err != nil {
			t.Fatal(err)
		}
		c.Run(2 * time.Millisecond)
	}
	if !c.RunUntil(5*time.Second, allDelivered(c, 1, ps, 6)) {
		t.Fatal("not all delivered")
	}
	runChecks(t, c)
	// The sequencer performed the multicasts.
	st := c.Engine(1).Stats()
	if st.SeqMulticasts != 6 {
		t.Errorf("sequencer multicasts = %d, want 6", st.SeqMulticasts)
	}
	for _, p := range ps[1:] {
		if got := c.Engine(p).Stats().SeqMulticasts; got != 0 {
			t.Errorf("%v performed %d sequencer multicasts, want 0", p, got)
		}
	}
}

func TestAsymmetricSequencerOrderIsReceiptOrder(t *testing.T) {
	// Two concurrent submits from different members: every process
	// (including the senders) must deliver them in the sequencer's
	// multicast order.
	c, ps := newCluster(t, 19, 3)
	if err := c.Bootstrap(1, core.Asymmetric, ps); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(2, 1, []byte("from-2")); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(3, 1, []byte("from-3")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(5*time.Second, allDelivered(c, 1, ps, 2)) {
		t.Fatal("not all delivered")
	}
	runChecks(t, c)
}

func TestMixedModeAcrossGroups(t *testing.T) {
	// §4.3: P2 runs symmetric in g1 and asymmetric in g2 simultaneously;
	// total order must hold across both.
	c, _ := newCluster(t, 23, 4)
	g1 := []types.ProcessID{1, 2, 3}
	g2 := []types.ProcessID{2, 3, 4}
	if err := c.Bootstrap(1, core.Symmetric, g1); err != nil {
		t.Fatal(err)
	}
	if err := c.Bootstrap(2, core.Asymmetric, g2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := c.Submit(2, 1, []byte(fmt.Sprintf("sym-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(2, 2, []byte(fmt.Sprintf("asym-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(4, 2, []byte(fmt.Sprintf("p4-%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Run(4 * time.Millisecond)
	}
	done := func() bool {
		return allDelivered(c, 1, g1, 6)() && allDelivered(c, 2, g2, 12)()
	}
	if !c.RunUntil(5*time.Second, done) {
		t.Fatal("mixed-mode deliveries incomplete")
	}
	runChecks(t, c)
}

func TestMixedModeBlockingRule(t *testing.T) {
	// §4.3: after unicasting in asymmetric g2, P2's multicast in g1 must
	// wait until the sequenced message returns. Setting a huge latency
	// between P2 and the sequencer keeps the request pending.
	c, _ := newCluster(t, 29, 4)
	g1 := []types.ProcessID{1, 2, 3}
	g2 := []types.ProcessID{2, 3, 4} // sequencer = P2? lowest id = 2 → self-sequencing!
	// Use P4 as member and make sequencer P2... to get blocking we need a
	// remote sequencer, so build g2 with P1 in it: sequencer = P1.
	g2 = []types.ProcessID{1, 2, 4}
	if err := c.Bootstrap(1, core.Symmetric, g1); err != nil {
		t.Fatal(err)
	}
	if err := c.Bootstrap(2, core.Asymmetric, g2); err != nil {
		t.Fatal(err)
	}
	// Unicast request from P2 to the sequencer P1 is in flight; the g1
	// submit must queue until the sequenced multicast returns.
	if err := c.Submit(2, 2, []byte("asym-first")); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(2, 1, []byte("sym-after")); err != nil {
		t.Fatal(err)
	}
	if got := c.Engine(2).QueuedSubmits(1); got != 1 {
		t.Errorf("g1 submit not queued behind pending sequencer request: queued = %d", got)
	}
	if got := c.Engine(2).Stats().BlockedSends; got != 1 {
		t.Errorf("BlockedSends = %d, want 1", got)
	}
	done := func() bool {
		return allDelivered(c, 1, g1, 1)() && allDelivered(c, 2, g2, 1)()
	}
	if !c.RunUntil(5*time.Second, done) {
		t.Fatal("blocked send never drained")
	}
	if got := c.Engine(2).QueuedSubmits(1); got != 0 {
		t.Errorf("queued submits after drain = %d, want 0", got)
	}
	runChecks(t, c)
}

func TestSymmetricSendsNeverBlock(t *testing.T) {
	// §7: "If only symmetric version is used, Newtop is totally
	// non-blocking on send operations."
	c, _ := newCluster(t, 31, 4)
	g1 := []types.ProcessID{1, 2, 3}
	g2 := []types.ProcessID{2, 3, 4}
	if err := c.Bootstrap(1, core.Symmetric, g1); err != nil {
		t.Fatal(err)
	}
	if err := c.Bootstrap(2, core.Symmetric, g2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Submit(2, 1, []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(2, 2, []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Engine(2).Stats().BlockedSends; got != 0 {
		t.Errorf("symmetric-only sends blocked %d times, want 0", got)
	}
	if got := c.Engine(2).QueuedSubmits(1) + c.Engine(2).QueuedSubmits(2); got != 0 {
		t.Errorf("symmetric-only sends queued %d, want 0", got)
	}
}

func TestAtomicModeDeliversWithoutOrderingGate(t *testing.T) {
	c, ps := newCluster(t, 37, 3)
	if err := c.Bootstrap(1, core.Atomic, ps); err != nil {
		t.Fatal(err)
	}
	// Per-sender FIFO must hold in atomic mode; total order need not.
	for i := 0; i < 10; i++ {
		if err := c.Submit(1, 1, payload(1, i)); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(2, 1, payload(2, i)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.RunUntil(5*time.Second, allDelivered(c, 1, ps, 20)) {
		t.Fatal("atomic deliveries incomplete")
	}
	for _, p := range ps {
		var from1, from2 int
		for _, d := range c.History(p).Deliveries {
			switch d.Origin {
			case 1:
				if string(d.Payload) != string(payload(1, from1)) {
					t.Fatalf("%v: P1 FIFO broken at %d: %q", p, from1, d.Payload)
				}
				from1++
			case 2:
				if string(d.Payload) != string(payload(2, from2)) {
					t.Fatalf("%v: P2 FIFO broken at %d: %q", p, from2, d.Payload)
				}
				from2++
			}
		}
	}
}

func TestTimeSilenceKeepsDeliveryLive(t *testing.T) {
	// A single multicast with all other members silent becomes
	// deliverable only through time-silence nulls advancing D (§4.1).
	c, ps := newCluster(t, 41, 5)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1, 1, []byte("lonely")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(5*time.Second, allDelivered(c, 1, ps, 1)) {
		t.Fatal("delivery never became live despite time-silence")
	}
	// Null messages were actually sent by the silent members.
	var nulls uint64
	for _, p := range ps {
		nulls += c.Engine(p).Stats().NullsSent
	}
	if nulls == 0 {
		t.Error("no null messages sent")
	}
	runChecks(t, c)
}

func TestStaticFailureFreeAsymmetricOnlySequencerTimeSilences(t *testing.T) {
	// §4.2: with failure detection disabled, only the sequencer operates
	// time-silence in an asymmetric group.
	c, ps := newCluster(t, 43, 3, func(cfg *core.Config) {
		cfg.DisableFailureDetection = true
	})
	if err := c.Bootstrap(1, core.Asymmetric, ps); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(3, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(5*time.Second, allDelivered(c, 1, ps, 1)) {
		t.Fatal("delivery incomplete")
	}
	c.Run(200 * time.Millisecond)
	if got := c.Engine(1).Stats().NullsSent; got == 0 {
		t.Error("sequencer sent no nulls")
	}
	for _, p := range ps[1:] {
		if got := c.Engine(p).Stats().NullsSent; got != 0 {
			t.Errorf("non-sequencer %v sent %d nulls in static asymmetric mode", p, got)
		}
	}
}

func TestFlowControlWindowBoundsUnstableBacklog(t *testing.T) {
	c, ps := newCluster(t, 47, 3, func(cfg *core.Config) {
		cfg.FlowControlWindow = 4
	})
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	// Burst 20 submits with no time to stabilise: only the window may go
	// out immediately, the rest queue.
	for i := 0; i < 20; i++ {
		if err := c.Submit(1, 1, payload(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Engine(1).Stats().FlowBlocked; got == 0 {
		t.Error("flow control never engaged on a 20-message burst with window 4")
	}
	if q := c.Engine(1).QueuedSubmits(1); q < 10 {
		t.Errorf("queued = %d, want most of the burst held back", q)
	}
	// Everything still goes out eventually, in order.
	if !c.RunUntil(10*time.Second, allDelivered(c, 1, ps, 20)) {
		t.Fatal("flow-controlled messages never fully delivered")
	}
	got := deliveredPayloads(c, 2, 1)
	for i := 0; i < 20; i++ {
		if got[i] != string(payload(1, i)) {
			t.Fatalf("flow control broke FIFO at %d: %q", i, got[i])
		}
	}
	runChecks(t, c)
}

func TestLamportNumbersNonDecreasingInDeliveryOrder(t *testing.T) {
	c, ps := newCluster(t, 53, 4)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for _, p := range ps {
			if err := c.Submit(p, 1, payload(p, i)); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(time.Millisecond)
	}
	if !c.RunUntil(5*time.Second, allDelivered(c, 1, ps, 20)) {
		t.Fatal("incomplete")
	}
	for _, p := range ps {
		var last types.MsgNum
		for _, d := range c.History(p).Deliveries {
			if d.Num < last {
				t.Fatalf("%v: delivery numbers decreased: %v after %v", p, d.Num, last)
			}
			last = d.Num
		}
	}
}
