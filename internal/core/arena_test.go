package core

import (
	"testing"
	"time"

	"newtop/internal/types"
)

// Drive one arena-enabled engine through a full message lifecycle —
// transmit, deliver (queue release), stabilise (log release) — and check
// the struct is recycled into the next transmit instead of reallocated.
func TestArenaRecyclesOwnMessages(t *testing.T) {
	const g = types.GroupID(7)
	now := time.Unix(0, 0)
	e := NewEngine(Config{Self: 1, MessageArena: true})
	if _, err := e.BootstrapGroup(now, g, Symmetric, []types.ProcessID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	firstPtr := func(effs []Effect) *types.Message {
		for _, eff := range effs {
			if s, ok := eff.(SendEffect); ok {
				return s.Msg
			}
		}
		return nil
	}
	null := func(p types.ProcessID, num types.MsgNum, seq uint64, ldn types.MsgNum) *types.Message {
		return &types.Message{
			Kind: types.KindNull, Group: g, Sender: p, Origin: p,
			Num: num, Seq: seq, LDN: ldn,
		}
	}

	effs, err := e.Submit(now, g, []byte("payload-1"))
	if err != nil {
		t.Fatal(err)
	}
	m1 := firstPtr(effs)
	if m1 == nil {
		t.Fatal("submit produced no SendEffect")
	}
	payload1 := m1.Payload

	// Nulls from the two peers advance RV past m1.Num: the delivery gate D
	// releases m1 from the queue.
	delivered := false
	for _, eff := range e.HandleMessage(now, 2, null(2, m1.Num+4, 1, 0)) {
		if _, ok := eff.(DeliverEffect); ok {
			delivered = true
		}
	}
	for _, eff := range e.HandleMessage(now, 3, null(3, m1.Num+4, 1, 0)) {
		if _, ok := eff.(DeliverEffect); ok {
			delivered = true
		}
	}
	if !delivered {
		t.Fatal("m1 was not delivered after RV advanced")
	}

	// A second round of nulls carries LDN = m1.Num: the peers' stability
	// entries pass m1.
	e.HandleMessage(now, 2, null(2, m1.Num+5, 2, m1.Num))
	e.HandleMessage(now, 3, null(3, m1.Num+5, 2, m1.Num))

	// The next own multicast carries LDN = D ≥ m1.Num, completing min(SV)
	// ≥ m1.Num: the log gc releases m1's last reference during this batch.
	effs, err = e.Submit(now, g, []byte("payload-2"))
	if err != nil {
		t.Fatal(err)
	}
	m2 := firstPtr(effs)
	if m2 == m1 {
		t.Fatal("m1 recycled while its releasing batch was still in flight")
	}
	gs := e.groups[g]
	if gs.arena == nil {
		t.Fatal("arena not created despite MessageArena")
	}
	if got := len(gs.arena.grace); got != 1 {
		t.Fatalf("grace list has %d slots after m1 released, want 1", got)
	}

	// The following stimulus promotes the graced slot; the next transmit
	// must reuse m1's struct.
	effs, err = e.Submit(now, g, []byte("payload-3"))
	if err != nil {
		t.Fatal(err)
	}
	m3 := firstPtr(effs)
	if m3 != m1 {
		t.Fatalf("third multicast allocated %p, want recycled slot %p", m3, m1)
	}
	if string(m3.Payload) != "payload-3" {
		t.Fatalf("recycled slot payload = %q", m3.Payload)
	}
	// The delivered payload handed to the application must be untouched by
	// the recycling — payload arrays are never reused.
	if string(payload1) != "payload-1" {
		t.Fatalf("delivered payload corrupted by recycling: %q", payload1)
	}
	if live := gs.arena.live(); live != 2 {
		t.Fatalf("arena tracks %d live messages, want 2 (m2, m3)", live)
	}
}

// Nulls are released by the log alone (never queued); removing an origin
// via dropOrigin must release through the same hook.
func TestArenaReleasesNulls(t *testing.T) {
	const g = types.GroupID(3)
	now := time.Unix(0, 0)
	e := NewEngine(Config{Self: 1, MessageArena: true, Omega: 10 * time.Millisecond})
	if _, err := e.BootstrapGroup(now, g, Symmetric, []types.ProcessID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	gs := e.groups[g]

	// Force a time-silence null from self.
	effs := e.Tick(now.Add(20 * time.Millisecond))
	var n1 *types.Message
	for _, eff := range effs {
		if s, ok := eff.(SendEffect); ok && s.Msg.Kind == types.KindNull {
			n1 = s.Msg
		}
	}
	if n1 == nil {
		t.Fatal("tick past omega sent no null")
	}
	if gs.arena == nil || gs.arena.live() != 1 {
		t.Fatalf("null not tracked by arena")
	}

	// Stabilise it: peers report LDN ≥ ... nulls are never delivered, so
	// stability needs SV past n1.Num; feed nulls with high LDN from peers
	// and one more own null to move self's SV.
	null := func(p types.ProcessID, num types.MsgNum, seq uint64, ldn types.MsgNum) *types.Message {
		return &types.Message{
			Kind: types.KindNull, Group: g, Sender: p, Origin: p,
			Num: num, Seq: seq, LDN: ldn,
		}
	}
	e.HandleMessage(now, 2, null(2, n1.Num+1, 1, n1.Num))
	e.HandleMessage(now, 3, null(3, n1.Num+1, 1, n1.Num))
	e.Tick(now.Add(40 * time.Millisecond)) // next own null carries LDN = D ≥ n1.Num
	// n1 should now be graced or already promoted; one more stimulus
	// promotes for sure.
	e.Tick(now.Add(41 * time.Millisecond))
	if len(gs.arena.free)+len(gs.arena.grace) == 0 {
		t.Fatalf("null slot never released: %d live", gs.arena.live())
	}
}
