package core

import (
	"sort"

	"newtop/internal/types"
)

// msgLog retains the data-plane messages of one group until they become
// stable (§5.1): a message may be discarded only once the process knows
// every member of the current view has received it, because until then it
// may be needed to refute a suspicion (piggybacked recovery, §5.2 step
// iii). Entries are kept per origin in seq order; per-origin FIFO receipt
// means Num is non-decreasing within each slice.
type msgLog struct {
	byOrigin map[types.ProcessID][]*types.Message
	size     int

	// lastGC is the stability threshold of the most recent gc pass.
	// min(SV) is monotone, so callers can skip gc entirely until the
	// threshold advances past lastGC (see onDataPlane).
	lastGC types.MsgNum

	// onDrop, when set, observes every message the log discards (gc and
	// dropOrigin) — the message-arena release hook.
	onDrop func(*types.Message)
}

func newMsgLog() *msgLog {
	return &msgLog{byOrigin: make(map[types.ProcessID][]*types.Message)}
}

// add retains m. Duplicates (same origin and seq) are ignored.
func (l *msgLog) add(m *types.Message) {
	s := l.byOrigin[m.Origin]
	if n := len(s); n > 0 && s[n-1].Seq >= m.Seq {
		// Out-of-order or duplicate insert: keep the log's per-origin
		// seq ordering invariant by rejecting anything not newer.
		for _, e := range s {
			if e.Seq == m.Seq {
				return
			}
		}
		s = append(s, m)
		sort.Slice(s, func(i, j int) bool { return s[i].Seq < s[j].Seq })
		l.byOrigin[m.Origin] = s
		l.size++
		return
	}
	l.byOrigin[m.Origin] = append(s, m)
	l.size++
}

// concerningAbove returns the retained messages concerning process p with
// Num > ln, in transmission (Num) order: everything p transmitted (for a
// suspected sequencer this includes its relays of other members'
// messages) plus sequencer relays *of* p's messages. This is exactly the
// piggyback set of a refute message for suspicion {p, ln} — the evidence
// behind knownNum(p) > ln.
func (l *msgLog) concerningAbove(p types.ProcessID, ln types.MsgNum) []*types.Message {
	var out []*types.Message
	for _, s := range l.byOrigin {
		for _, m := range s {
			if (m.Sender == p || m.Origin == p) && m.Num > ln {
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Num < out[j].Num })
	return out
}

// latestNum returns the highest Num retained from origin (0 when none).
func (l *msgLog) latestNum(origin types.ProcessID) types.MsgNum {
	s := l.byOrigin[origin]
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].Num
}

// gc discards every entry with Num ≤ stable. Stable messages have been
// received by all members, so no refutation can ever need them. The
// surviving tail is resliced in place — the dropped prefix is nilled so
// the messages themselves become collectable, but no copy is allocated;
// subsequent appends grow past the tail and can never resurrect dropped
// entries.
func (l *msgLog) gc(stable types.MsgNum) {
	l.lastGC = stable
	for origin, s := range l.byOrigin {
		i := sort.Search(len(s), func(i int) bool { return s[i].Num > stable })
		if i == 0 {
			continue
		}
		l.size -= i
		for j := 0; j < i; j++ {
			if l.onDrop != nil {
				l.onDrop(s[j])
			}
			s[j] = nil
		}
		if i == len(s) {
			delete(l.byOrigin, origin)
			continue
		}
		l.byOrigin[origin] = s[i:]
	}
}

// dropOrigin discards every entry from origin (used when a failed process
// is removed from the view).
func (l *msgLog) dropOrigin(origin types.ProcessID) {
	s := l.byOrigin[origin]
	if l.onDrop != nil {
		for _, m := range s {
			l.onDrop(m)
		}
	}
	l.size -= len(s)
	delete(l.byOrigin, origin)
}

// countAbove returns how many retained messages from origin have Num > n.
// Flow control uses it to bound a sender's unstable backlog.
func (l *msgLog) countAbove(origin types.ProcessID, n types.MsgNum) int {
	s := l.byOrigin[origin]
	i := sort.Search(len(s), func(i int) bool { return s[i].Num > n })
	return len(s) - i
}

// len returns the total number of retained messages.
func (l *msgLog) len() int { return l.size }
