package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"newtop/internal/check"
	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
)

// TestSoakRandomisedTopologiesAndFailures runs randomised workloads over
// randomised overlapping group topologies with crash injection, and
// verifies every MD/VC property on each run. Each seed is fully
// deterministic and reproducible.
func TestSoakRandomisedTopologiesAndFailures(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			soakOnce(t, seed)
		})
	}
}

func soakOnce(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(4) // 4..7 processes
	c, ps := newCluster(t, seed, n)

	// 2..4 random overlapping groups of size ≥ 2 with distinct
	// memberships (Newtop forbids two groups with identical views).
	nGroups := 2 + rng.Intn(3)
	groups := make(map[types.GroupID][]types.ProcessID)
	seen := make(map[string]bool)
	for g := 1; g <= nGroups; g++ {
		var ms []types.ProcessID
		for {
			size := 2 + rng.Intn(n-1)
			perm := rng.Perm(n)
			ms = ms[:0]
			for _, idx := range perm[:size] {
				ms = append(ms, ps[idx])
			}
			types.SortProcesses(ms)
			if !seen[fmt.Sprint(ms)] {
				seen[fmt.Sprint(ms)] = true
				break
			}
		}
		mode := core.Symmetric
		if rng.Intn(3) == 0 {
			mode = core.Asymmetric
		}
		gid := types.GroupID(g)
		if err := c.Bootstrap(gid, mode, ms); err != nil {
			t.Fatal(err)
		}
		groups[gid] = append([]types.ProcessID(nil), ms...)
	}
	c.Run(50 * time.Millisecond)

	// One random crash in half the runs (never P1, to keep at least one
	// stable observer; the crashed process may be in any group).
	var crashed []types.ProcessID
	if rng.Intn(2) == 0 {
		victim := ps[1+rng.Intn(n-1)]
		at := time.Duration(100+rng.Intn(300)) * time.Millisecond
		c.At(at, func() { c.Crash(victim) })
		crashed = append(crashed, victim)
	}

	// Random traffic: every process submits into random groups it belongs
	// to at random instants. Groups are iterated in ID order so the whole
	// run is a deterministic function of the seed.
	gids := make([]types.GroupID, 0, len(groups))
	for gid := range groups {
		gids = append(gids, gid)
	}
	for i := 1; i < len(gids); i++ {
		for j := i; j > 0 && gids[j] < gids[j-1]; j-- {
			gids[j], gids[j-1] = gids[j-1], gids[j]
		}
	}
	msgID := 0
	for round := 0; round < 20; round++ {
		for _, gid := range gids {
			gid := gid
			ms := groups[gid]
			src := ms[rng.Intn(len(ms))]
			pl := []byte(fmt.Sprintf("s%d-%d", seed, msgID))
			msgID++
			at := time.Duration(60+rng.Intn(500)) * time.Millisecond
			c.At(at, func() {
				if !crashedContains(crashed, src) || c.Now().Sub(sim.Epoch) < at {
					_ = c.Submit(src, gid, pl) // errors fine post-crash
				}
			})
		}
	}
	c.Run(2 * time.Second)
	// Let membership and delivery settle completely.
	c.Run(3 * time.Second)

	if err := check.New(c, crashed).All().Err(); err != nil {
		t.Fatal(err)
	}

	// Sanity: something actually happened.
	var delivered int
	for _, p := range ps {
		delivered += len(c.History(p).Deliveries)
	}
	if delivered == 0 {
		t.Fatal("soak run delivered nothing")
	}

	// Liveness: in each group, every pair of live members must agree on
	// the full delivered sequence for that group (total order plus
	// atomicity over the final view).
	for gid, ms := range groups {
		var live []types.ProcessID
		for _, p := range ms {
			if !crashedContains(crashed, p) {
				live = append(live, p)
			}
		}
		if len(live) < 2 {
			continue
		}
		ref := deliveredPayloads(c, live[0], gid)
		for _, p := range live[1:] {
			got := deliveredPayloads(c, p, gid)
			if len(got) != len(ref) {
				t.Errorf("%v: %v delivered %d, %v delivered %d", gid, live[0], len(ref), p, len(got))
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("%v: order diverges at %d: %q vs %q", gid, i, ref[i], got[i])
					break
				}
			}
		}
	}
}

func crashedContains(cs []types.ProcessID, p types.ProcessID) bool {
	for _, q := range cs {
		if q == p {
			return true
		}
	}
	return false
}

// TestSoakPartitionAndHeal drives a partition through a live workload and
// verifies each side stabilises consistently (no cross-side agreement is
// required — Newtop is partitionable, not primary-partition).
func TestSoakPartitionAndHeal(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, ps := newCluster(t, seed, 6)
			if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
				t.Fatal(err)
			}
			c.Run(50 * time.Millisecond)
			for i := 0; i < 10; i++ {
				src := ps[i%len(ps)]
				if err := c.Submit(src, 1, payload(src, i)); err != nil {
					t.Fatal(err)
				}
				c.Run(5 * time.Millisecond)
			}
			sideA := []types.ProcessID{1, 2, 3}
			sideB := []types.ProcessID{4, 5, 6}
			c.Partition(sideA, sideB)
			// Traffic continues on both sides.
			for i := 10; i < 16; i++ {
				if err := c.Submit(sideA[i%3], 1, payload(sideA[i%3], i)); err != nil {
					t.Fatal(err)
				}
				if err := c.Submit(sideB[i%3], 1, payload(sideB[i%3], i)); err != nil {
					t.Fatal(err)
				}
				c.Run(20 * time.Millisecond)
			}
			ok := c.RunUntil(30*time.Second, func() bool {
				return viewExcludes(c, 1, sideA, 4, 5, 6)() && viewExcludes(c, 1, sideB, 1, 2, 3)()
			})
			if !ok {
				t.Fatal("sides never stabilised into disjoint subgroups")
			}
			c.Run(time.Second)
			// Each side is internally consistent.
			for _, side := range [][]types.ProcessID{sideA, sideB} {
				ref := deliveredPayloads(c, side[0], 1)
				for _, p := range side[1:] {
					got := deliveredPayloads(c, p, 1)
					if len(got) != len(ref) {
						t.Errorf("side of %v: %v delivered %d vs %d", side[0], p, len(got), len(ref))
						continue
					}
					for i := range ref {
						if got[i] != ref[i] {
							t.Errorf("side of %v: order diverges at %d", side[0], i)
							break
						}
					}
				}
			}
			// Global pairwise total order still holds for common prefixes
			// (messages delivered on both sides before the split).
			if err := check.New(c, nil).All().Err(); err != nil {
				t.Error(err)
			}
		})
	}
}
