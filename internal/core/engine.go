// Package core implements the Newtop protocol state machine (Ezhilchelvan,
// Macêdo, Shrivastava — ICDCS 1995): causality-preserving total-order
// multicast for overlapping process groups with symmetric (§4.1),
// asymmetric (§4.2) and mixed (§4.3) ordering, message stability (§5.1), a
// partitionable membership service with suspect/refute/confirm agreement
// and view installation (§5.2), and dynamic group formation (§5.3).
//
// The Engine is a pure, single-threaded state machine: every stimulus
// (received message, timer tick, application call) enters through a method
// that returns the resulting effects (transmissions, deliveries, view
// installations). The engine never blocks, sleeps or touches a socket;
// runtimes (internal/node, internal/sim) own concurrency and I/O. This
// makes every protocol behaviour deterministic and unit-testable.
package core

import (
	"errors"
	"fmt"
	"time"

	"newtop/internal/lclock"
	"newtop/internal/obs"
	"newtop/internal/types"
)

// Engine errors.
var (
	// ErrUnknownGroup is returned for operations on groups this process
	// is not a member of.
	ErrUnknownGroup = errors.New("core: not a member of group")
	// ErrGroupExists is returned when creating a group with an ID
	// already in use at this process.
	ErrGroupExists = errors.New("core: group already exists")
	// ErrLeftGroup is returned for operations on a group this process
	// has departed. Processes never rejoin a group (§3); form a new one.
	ErrLeftGroup = errors.New("core: group was departed")
	// ErrDuplicateView is returned by CreateGroup when an existing group
	// already has exactly the proposed membership (§5.3: "Pi must not be
	// a member of any gx such that Vx,i = gn").
	ErrDuplicateView = errors.New("core: a group with identical membership exists")
	// ErrBadMembers is returned when a group's member list is invalid.
	ErrBadMembers = errors.New("core: invalid member list")
)

// preBuffered bounds how many messages are buffered for a group that is
// still forming locally (traffic from members that activated earlier).
const preBuffered = 4096

// Engine is the Newtop protocol state machine for one process. Not safe
// for concurrent use — wrap it in a runtime.
type Engine struct {
	cfg    Config
	lc     lclock.Clock
	groups map[types.GroupID]*groupState
	left   map[types.GroupID]bool
	pre    map[types.GroupID][]heldMsg // messages for groups still forming here
	queue  *deliveryQueue
	stats  Stats
	effs   []Effect

	// gD caches globalD (the cross-group delivery gate); every mutation
	// that can move any group's D_x clears gDValid (see globalD).
	gD      types.MsgNum
	gDValid bool

	// glist caches the id-sorted group list used by Tick and the pump;
	// rebuilt (glistDirty) only when the group set changes.
	glist      []*groupState
	glistDirty bool

	// queued holds application submits delayed by the blocking rules,
	// flow control or an incomplete formation. It is a single FIFO across
	// all groups: a process's submit order is part of the happened-before
	// relation (same-process event order), so a later submit in another
	// group must never overtake an earlier queued one — otherwise the
	// later message would be numbered first and delivered first,
	// violating MD4'/MD5'.
	queued []queuedSubmit

	// om holds the resolved observability handles (all nil without
	// Config.Metrics); tracer is the sampled lifecycle tracer (may be nil).
	om     engMetrics
	tracer *obs.Tracer
}

// queuedSubmit is one delayed application multicast.
type queuedSubmit struct {
	g       types.GroupID
	payload []byte
}

// NewEngine creates an engine for the given process configuration.
func NewEngine(cfg Config) *Engine {
	return &Engine{
		cfg:    cfg.withDefaults(),
		groups: make(map[types.GroupID]*groupState),
		left:   make(map[types.GroupID]bool),
		pre:    make(map[types.GroupID][]heldMsg),
		queue:  newDeliveryQueue(),
		om:     newEngMetrics(cfg.Metrics),
		tracer: cfg.Tracer,
	}
}

// Self returns this process's identifier.
func (e *Engine) Self() types.ProcessID { return e.cfg.Self }

// Omega returns the effective time-silence interval ω.
func (e *Engine) Omega() time.Duration { return e.cfg.Omega }

// Stats returns a snapshot of the protocol counters.
func (e *Engine) Stats() Stats { return e.stats }

// Clock returns the current Lamport clock value (diagnostics).
func (e *Engine) Clock() types.MsgNum { return e.lc.Now() }

// View returns the current membership view for g.
func (e *Engine) View(g types.GroupID) (types.View, error) {
	gs, ok := e.groups[g]
	if !ok {
		if e.left[g] {
			return types.View{}, ErrLeftGroup
		}
		return types.View{}, fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	return gs.view.Clone(), nil
}

// Groups returns the IDs of the groups this process is currently a member
// of (including ones still forming), sorted.
func (e *Engine) Groups() []types.GroupID {
	gss := e.sortedGroups()
	out := make([]types.GroupID, len(gss))
	for i, gs := range gss {
		out[i] = gs.id
	}
	return out
}

// GroupReady reports whether g is active (formation complete, sends open).
func (e *Engine) GroupReady(g types.GroupID) bool {
	gs, ok := e.groups[g]
	return ok && gs.status == statusActive
}

// PendingDeliveries returns the number of received-but-undelivered
// application messages (diagnostics).
func (e *Engine) PendingDeliveries() int { return e.queue.Len() }

// LogSize returns the number of messages retained for recovery in group g
// (unstable messages, §5.1); 0 for unknown groups. Diagnostics.
func (e *Engine) LogSize(g types.GroupID) int {
	if gs, ok := e.groups[g]; ok {
		return gs.log.len()
	}
	return 0
}

// QueuedSubmits returns the number of application sends queued behind the
// blocking rules, flow control or formation for group g.
func (e *Engine) QueuedSubmits(g types.GroupID) int {
	n := 0
	for _, q := range e.queued {
		if q.g == g {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Event entry points
// ---------------------------------------------------------------------------

// BootstrapGroup installs group g with initial view V0 = members and begins
// normal operation immediately. Every member must bootstrap the same group
// with the same member list and mode — this models §4's statically formed
// groups, where "each functioning Pi installs an initial view V0". Use
// CreateGroup for the dynamic §5.3 formation protocol.
func (e *Engine) BootstrapGroup(now time.Time, g types.GroupID, mode OrderMode, members []types.ProcessID) ([]Effect, error) {
	e.begin()
	if err := e.checkNewGroup(g, members); err != nil {
		return nil, err
	}
	gs := newGroupState(g, mode)
	gs.staticD = e.cfg.DisableFailureDetection
	gs.status = statusActive
	gs.activate(members, now, e.cfg.SignatureViews)
	e.groups[g] = gs
	e.groupsChanged()
	e.emit(ViewEffect{View: gs.view.Clone()}) // install V0 (§3)
	e.replayPre(now, g)
	return e.finish(now), nil
}

// CreateGroup initiates the dynamic formation of group g (§5.3) with this
// process as coordinator. The intended membership must include self.
// Formation succeeds when every intended member votes yes; the group is
// open for sends once a GroupReadyEffect is emitted.
func (e *Engine) CreateGroup(now time.Time, g types.GroupID, mode OrderMode, members []types.ProcessID) ([]Effect, error) {
	e.begin()
	if err := e.checkNewGroup(g, members); err != nil {
		return nil, err
	}
	gs := newGroupState(g, mode)
	gs.staticD = e.cfg.DisableFailureDetection
	gs.status = statusForming
	sorted := types.NewView(g, 0, members).Members
	gs.formation = &formationState{
		initiator: true,
		members:   sorted,
		mode:      mode,
		yes:       make(map[types.ProcessID]bool),
		deadline:  now.Add(e.cfg.FormationTimeout),
	}
	e.groups[g] = gs
	e.groupsChanged()
	invite := &types.Message{
		Kind: types.KindFormInvite, Group: g, Sender: e.cfg.Self, Origin: e.cfg.Self,
		Invite: sorted, Payload: []byte{byte(mode)},
	}
	for _, p := range sorted {
		if p != e.cfg.Self {
			e.send(p, invite)
		}
	}
	e.stats.CtrlSent++
	return e.finish(now), nil
}

// LeaveGroup departs group g voluntarily. The process stops participating;
// remaining members detect the silence and agree to exclude it (§3: a
// departed process maintains no view and never rejoins).
func (e *Engine) LeaveGroup(now time.Time, g types.GroupID) ([]Effect, error) {
	e.begin()
	gs, ok := e.groups[g]
	if !ok {
		if e.left[g] {
			return nil, ErrLeftGroup
		}
		return nil, fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	// Drop this group's undelivered messages: departure ends the
	// membership, and MD2 only promises delivery while the process
	// "continues to function as a member".
	before := e.queue.Len()
	e.queue.Discard(func(m *types.Message) bool { return m.Group == g })
	e.om.dropLeftGroup.Add(uint64(before - e.queue.Len()))
	delete(e.groups, g)
	e.groupsChanged()
	e.left[g] = true
	_ = gs
	return e.finish(now), nil
}

// Submit multicasts payload in group g with the group's configured
// ordering. The send may be queued internally by the §4.2/§4.3 blocking
// rules, by flow control, or by an incomplete formation; queued sends are
// transmitted automatically once unblocked, preserving per-group order.
func (e *Engine) Submit(now time.Time, g types.GroupID, payload []byte) ([]Effect, error) {
	e.begin()
	gs, ok := e.groups[g]
	if !ok {
		if e.left[g] {
			return nil, ErrLeftGroup
		}
		return nil, fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	reason := e.submitBlock(gs)
	if len(e.queued) > 0 || reason != blockNone {
		switch reason {
		case blockRule:
			e.stats.BlockedSends++
		case blockFlow:
			e.stats.FlowBlocked++
		}
		e.queued = append(e.queued, queuedSubmit{g: g, payload: payload})
		return e.finish(now), nil
	}
	e.transmit(now, gs, payload)
	return e.finish(now), nil
}

// HandleMessage processes one received message. from is the
// transport-authenticated sender.
func (e *Engine) HandleMessage(now time.Time, from types.ProcessID, m *types.Message) []Effect {
	e.begin()
	e.handleMessage(now, from, m)
	return e.finish(now)
}

// Tick drives the timeout machinery: time-silence null messages (§4.1),
// failure suspicion (§5.2) and formation deadlines (§5.3). Runtimes call
// it at least every ω/2.
func (e *Engine) Tick(now time.Time) []Effect {
	e.begin()
	for _, g := range e.sortedGroups() {
		e.tickGroup(now, g)
	}
	return e.finish(now)
}

// ---------------------------------------------------------------------------
// Internals: effects plumbing
// ---------------------------------------------------------------------------

// begin starts a stimulus, reusing the effects buffer: the slice returned
// by the previous finish is only valid until the next engine call. Every
// runtime (sim, node) consumes effects synchronously before re-entering
// the engine, so the reuse is invisible there; external callers must copy
// if they retain effects across calls.
//
// The same contract is what makes arena promotion safe here: slots graced
// during the previous stimulus can no longer be referenced by anything
// outside the engine once the next stimulus begins.
func (e *Engine) begin() {
	e.effs = e.effs[:0]
	if e.cfg.MessageArena {
		for _, gs := range e.groups {
			if gs.arena != nil {
				gs.arena.promote()
			}
		}
	}
}

// arenaFor returns gs's message arena, creating it (and installing the
// log's release hook) on first use; nil when Config.MessageArena is off.
func (e *Engine) arenaFor(gs *groupState) *msgArena {
	if !e.cfg.MessageArena {
		return nil
	}
	if gs.arena == nil {
		gs.arena = newMsgArena()
		gs.log.onDrop = gs.arena.clearLogged
	}
	return gs.arena
}

func (e *Engine) finish(now time.Time) []Effect {
	e.pump(now)
	e.drainQueued(now)
	if e.om.enabled() {
		e.om.queueDepth.Set(int64(e.queue.Len()))
		var live, grace, logged int
		for _, gs := range e.groups {
			if gs.arena != nil {
				live += gs.arena.live()
				grace += len(gs.arena.grace)
			}
			logged += gs.log.len()
		}
		e.om.arenaLive.Set(int64(live))
		e.om.arenaGrace.Set(int64(grace))
		e.om.logSize.Set(int64(logged))
	}
	return e.effs
}

func (e *Engine) emit(eff Effect) { e.effs = append(e.effs, eff) }

// send emits a unicast SendEffect.
func (e *Engine) send(to types.ProcessID, m *types.Message) {
	e.stats.MsgsSent++
	e.emit(SendEffect{To: to, Msg: m})
}

// mcast emits SendEffects to every view member except self.
func (e *Engine) mcast(gs *groupState, m *types.Message) {
	for _, p := range gs.view.Members {
		if p != e.cfg.Self {
			e.send(p, m)
		}
	}
}

// mcastTo emits SendEffects to an explicit destination list except self.
func (e *Engine) mcastTo(dests []types.ProcessID, m *types.Message) {
	for _, p := range dests {
		if p != e.cfg.Self {
			e.send(p, m)
		}
	}
}

// sortedGroups returns the id-sorted group list. The list is cached and
// rebuilt only when the group set changed (groupsChanged), so the pump —
// which consults it on every stimulus — allocates nothing. Callers must
// not mutate the returned slice; a rebuild always allocates fresh backing,
// so snapshots held across a group add/remove stay intact.
func (e *Engine) sortedGroups() []*groupState {
	if e.glistDirty {
		out := make([]*groupState, 0, len(e.groups))
		for _, gs := range e.groups {
			out = append(out, gs)
		}
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j].id < out[j-1].id; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		e.glist = out
		e.glistDirty = false
	}
	return e.glist
}

// groupsChanged invalidates the caches derived from the group set: the
// sorted group list and the cross-group delivery gate.
func (e *Engine) groupsChanged() {
	e.glistDirty = true
	e.gDValid = false
}

func (e *Engine) checkNewGroup(g types.GroupID, members []types.ProcessID) error {
	if _, ok := e.groups[g]; ok {
		return fmt.Errorf("%w: %v", ErrGroupExists, g)
	}
	if e.left[g] {
		return ErrLeftGroup
	}
	if len(members) == 0 {
		return fmt.Errorf("%w: empty", ErrBadMembers)
	}
	proposed := types.NewView(g, 0, members)
	if !proposed.Contains(e.cfg.Self) {
		return fmt.Errorf("%w: self %v not in member list", ErrBadMembers, e.cfg.Self)
	}
	for _, gs := range e.groups {
		if gs.view.SameMembers(proposed) && gs.status == statusActive {
			return fmt.Errorf("%w: %v", ErrDuplicateView, gs.id)
		}
	}
	return nil
}

// replayPre reprocesses messages that arrived for g before it existed
// locally (members that activated earlier are ahead of us).
func (e *Engine) replayPre(now time.Time, g types.GroupID) {
	buf := e.pre[g]
	delete(e.pre, g)
	for _, h := range buf {
		e.handleMessage(now, h.from, h.m)
	}
}
