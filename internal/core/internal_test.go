package core

import (
	"testing"
	"testing/quick"
	"time"

	"newtop/internal/types"
)

func msg(origin, sender types.ProcessID, num types.MsgNum, seq uint64) *types.Message {
	return &types.Message{Kind: types.KindData, Group: 1, Origin: origin, Sender: sender, Num: num, Seq: seq}
}

func TestMsgLogAddAndConcerning(t *testing.T) {
	l := newMsgLog()
	l.add(msg(1, 1, 5, 1))
	l.add(msg(1, 1, 8, 2))
	l.add(msg(2, 1, 9, 1)) // relay: origin 2, sender 1
	l.add(msg(2, 2, 3, 7)) // direct from 2

	got := l.concerningAbove(1, 5)
	if len(got) != 2 || got[0].Num != 8 || got[1].Num != 9 {
		t.Errorf("concerningAbove(1,5) = %v, want nums [8 9]", got)
	}
	got = l.concerningAbove(2, 0)
	if len(got) != 2 || got[0].Num != 3 || got[1].Num != 9 {
		t.Errorf("concerningAbove(2,0) = %v, want nums [3 9]", got)
	}
	if l.len() != 4 {
		t.Errorf("len = %d, want 4", l.len())
	}
}

func TestMsgLogDuplicatesIgnored(t *testing.T) {
	l := newMsgLog()
	l.add(msg(1, 1, 5, 1))
	l.add(msg(1, 1, 5, 1))
	if l.len() != 1 {
		t.Errorf("len = %d, want 1 after duplicate add", l.len())
	}
	// Out-of-order insert is kept sorted.
	l.add(msg(1, 1, 9, 3))
	l.add(msg(1, 1, 7, 2))
	s := l.byOrigin[1]
	for i := 1; i < len(s); i++ {
		if s[i].Seq <= s[i-1].Seq {
			t.Fatalf("log not seq-sorted: %v", s)
		}
	}
}

func TestMsgLogGC(t *testing.T) {
	l := newMsgLog()
	for i := uint64(1); i <= 10; i++ {
		l.add(msg(1, 1, types.MsgNum(i), i))
	}
	l.gc(7)
	if l.len() != 3 {
		t.Errorf("len after gc(7) = %d, want 3", l.len())
	}
	if got := l.concerningAbove(1, 0); len(got) != 3 || got[0].Num != 8 {
		t.Errorf("after gc: %v", got)
	}
	l.gc(100)
	if l.len() != 0 {
		t.Errorf("len after full gc = %d", l.len())
	}
}

func TestMsgLogCountAboveAndDrop(t *testing.T) {
	l := newMsgLog()
	for i := uint64(1); i <= 6; i++ {
		l.add(msg(3, 3, types.MsgNum(i*10), i))
	}
	if got := l.countAbove(3, 30); got != 3 {
		t.Errorf("countAbove = %d, want 3", got)
	}
	if got := l.countAbove(9, 0); got != 0 {
		t.Errorf("countAbove unknown origin = %d, want 0", got)
	}
	l.dropOrigin(3)
	if l.len() != 0 {
		t.Errorf("len after dropOrigin = %d", l.len())
	}
}

func TestDeliveryQueueOrdering(t *testing.T) {
	q := newDeliveryQueue()
	q.Push(msg(2, 2, 5, 1))
	q.Push(msg(1, 1, 5, 1)) // same num, lower origin: first
	q.Push(msg(3, 3, 2, 1))
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	if m := q.Pop(); m.Num != 2 {
		t.Errorf("first pop num = %v, want 2", m.Num)
	}
	if m := q.Pop(); m.Origin != 1 {
		t.Errorf("second pop origin = %v, want P1 (tie-break)", m.Origin)
	}
	if m := q.Pop(); m.Origin != 2 {
		t.Errorf("third pop origin = %v", m.Origin)
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Error("empty queue must return nil")
	}
}

func TestDeliveryQueueDiscardAndHasAtOrBelow(t *testing.T) {
	q := newDeliveryQueue()
	for i := uint64(1); i <= 10; i++ {
		q.Push(msg(types.ProcessID(i%3+1), types.ProcessID(i%3+1), types.MsgNum(i), i))
	}
	removed := q.Discard(func(m *types.Message) bool { return m.Num > 5 })
	if removed != 5 || q.Len() != 5 {
		t.Errorf("removed %d, len %d; want 5, 5", removed, q.Len())
	}
	if !q.HasAtOrBelow(1) {
		t.Error("HasAtOrBelow(1) = false, head should be num 1")
	}
	var last types.MsgNum
	for q.Len() > 0 {
		m := q.Pop()
		if m.Num < last {
			t.Fatal("heap order broken after Discard")
		}
		last = m.Num
	}
}

// TestDeliveryQueueDiscardKeepsHeapInvariant drives Discard the way a
// partition's view cutoff does — arbitrary queue contents, a predicate
// over (origin, num) — and checks the O(n) bottom-up rebuild leaves a
// valid heap with exactly the right survivors.
func TestDeliveryQueueDiscardKeepsHeapInvariant(t *testing.T) {
	f := func(nums []uint16, cutoff uint16, origin uint8) bool {
		q := newDeliveryQueue()
		expectKept := 0
		pred := func(m *types.Message) bool {
			return m.Origin == types.ProcessID(origin%4+1) && m.Num > types.MsgNum(cutoff)
		}
		for i, n := range nums {
			m := msg(types.ProcessID(i%4+1), types.ProcessID(i%4+1), types.MsgNum(n), uint64(i))
			q.Push(m)
			if !pred(m) {
				expectKept++
			}
		}
		removed := q.Discard(pred)
		if removed != len(nums)-expectKept || q.Len() != expectKept {
			return false
		}
		var last types.MsgNum
		for q.Len() > 0 {
			m := q.Pop()
			if m.Num < last || pred(m) {
				return false
			}
			last = m.Num
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeliveryQueueHeapProperty(t *testing.T) {
	f := func(nums []uint16) bool {
		q := newDeliveryQueue()
		for i, n := range nums {
			q.Push(msg(types.ProcessID(i+1), types.ProcessID(i+1), types.MsgNum(n), uint64(i)))
		}
		var last types.MsgNum
		for q.Len() > 0 {
			m := q.Pop()
			if m.Num < last {
				return false
			}
			last = m.Num
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// setRV / setSV force vector entries through the dense member table while
// keeping the incremental min caches consistent (tests only).
func setRV(g *groupState, p types.ProcessID, v types.MsgNum) {
	g.mem[g.memberIndex(p)].rv = v
	g.recomputeMins()
}

func setSV(g *groupState, p types.ProcessID, v types.MsgNum) {
	g.mem[g.memberIndex(p)].sv = v
	g.recomputeMins()
}

func TestGroupStateDx(t *testing.T) {
	gs := newGroupState(1, Symmetric)
	gs.status = statusActive
	gs.activate([]types.ProcessID{1, 2, 3}, time.Time{}, false)
	setRV(gs, 1, 10)
	setRV(gs, 2, 7)
	setRV(gs, 3, 12)
	if got := gs.dx(); got != 7 {
		t.Errorf("symmetric dx = %v, want 7 (min)", got)
	}
	// Removed member at ∞ no longer gates.
	setRV(gs, 2, types.InfNum)
	if got := gs.dx(); got != 10 {
		t.Errorf("dx with ∞ entry = %v, want 10", got)
	}
	// dFloor lifts the result.
	gs.dFloor = 11
	if got := gs.dx(); got != 11 {
		t.Errorf("dx with floor = %v, want 11", got)
	}
}

func TestGroupStateDxAsymmetric(t *testing.T) {
	gs := newGroupState(1, Asymmetric)
	gs.status = statusActive
	gs.activate([]types.ProcessID{2, 3, 5}, time.Time{}, false)
	setRV(gs, 2, 9)
	setRV(gs, 3, 4)
	setRV(gs, 5, 6)
	// Fault-tolerant mode: min(RV) like symmetric.
	if got := gs.dx(); got != 4 {
		t.Errorf("asymmetric FT dx = %v, want 4", got)
	}
	// Static failure-free mode: the sequencer's last number.
	gs.staticD = true
	if got := gs.dx(); got != 9 {
		t.Errorf("asymmetric static dx = %v, want 9 (rv[sequencer P2])", got)
	}
	if got := gs.sequencer(); got != 2 {
		t.Errorf("sequencer = %v, want P2 (lowest)", got)
	}
}

func TestGroupStateStartWaitPinsD(t *testing.T) {
	gs := newGroupState(1, Symmetric)
	gs.status = statusStartWait
	gs.activate([]types.ProcessID{1, 2}, time.Time{}, false)
	setRV(gs, 1, 50)
	setRV(gs, 2, 60)
	gs.startPin = 3
	if got := gs.dx(); got != 3 {
		t.Errorf("startWait dx = %v, want pinned 3", got)
	}
}

func TestGroupStateMinSV(t *testing.T) {
	gs := newGroupState(1, Symmetric)
	gs.status = statusActive
	gs.activate([]types.ProcessID{1, 2, 3}, time.Time{}, false)
	setSV(gs, 1, 5)
	setSV(gs, 2, 2)
	setSV(gs, 3, 9)
	if got := gs.minSV(); got != 2 {
		t.Errorf("minSV = %v, want 2", got)
	}
}

func TestGroupStateKnownNum(t *testing.T) {
	gs := newGroupState(1, Asymmetric)
	gs.status = statusActive
	gs.activate([]types.ProcessID{3, 4}, time.Time{}, false)
	setRV(gs, 4, 10)
	gs.mem[gs.memberIndex(4)].relayedNum = 25
	if got := gs.knownNum(4); got != 25 {
		t.Errorf("knownNum = %v, want 25 (relay dominates)", got)
	}
	setRV(gs, 4, types.InfNum)
	if got := gs.knownNum(4); got != types.InfNum {
		t.Errorf("knownNum with ∞ rv = %v", got)
	}
	// Non-member origins are tracked through the stray overflow.
	gs.stray(9).relayedNum = 7
	if got := gs.knownNum(9); got != 7 {
		t.Errorf("knownNum of stray origin = %v, want 7", got)
	}
}

func TestRunsTimeSilence(t *testing.T) {
	tests := []struct {
		mode    OrderMode
		self    types.ProcessID
		fd      bool
		want    bool
		comment string
	}{
		{Symmetric, 2, true, true, "FT symmetric: everyone"},
		{Symmetric, 2, false, true, "static symmetric: everyone (liveness of D)"},
		{Asymmetric, 1, false, true, "static asymmetric: sequencer"},
		{Asymmetric, 2, false, false, "static asymmetric: member silent"},
		{Asymmetric, 2, true, true, "FT asymmetric: everyone"},
		{Atomic, 2, true, true, "FT atomic: everyone (failure detection)"},
		{Atomic, 2, false, false, "static atomic: nobody"},
	}
	for _, tt := range tests {
		gs := newGroupState(1, tt.mode)
		gs.status = statusActive
		gs.activate([]types.ProcessID{1, 2, 3}, time.Time{}, false)
		if got := gs.runsTimeSilence(tt.self, tt.fd); got != tt.want {
			t.Errorf("%s: runsTimeSilence = %v, want %v", tt.comment, got, tt.want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Self: 1}.withDefaults()
	if cfg.Omega != DefaultOmega {
		t.Errorf("Omega = %v", cfg.Omega)
	}
	if cfg.SuspicionTimeout != DefaultSuspicionFactor*DefaultOmega {
		t.Errorf("SuspicionTimeout = %v", cfg.SuspicionTimeout)
	}
	if cfg.FormationTimeout != DefaultFormationFactor*DefaultOmega {
		t.Errorf("FormationTimeout = %v", cfg.FormationTimeout)
	}
	// Explicit values are preserved.
	cfg2 := Config{Self: 1, Omega: time.Second, SuspicionTimeout: 3 * time.Second}.withDefaults()
	if cfg2.Omega != time.Second || cfg2.SuspicionTimeout != 3*time.Second {
		t.Errorf("explicit config overridden: %+v", cfg2)
	}
}

func TestOrderModeString(t *testing.T) {
	tests := []struct {
		m    OrderMode
		want string
	}{
		{Atomic, "atomic"}, {Symmetric, "symmetric"}, {Asymmetric, "asymmetric"}, {OrderMode(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestEffectStrings(t *testing.T) {
	effs := []Effect{
		SendEffect{To: 2, Msg: &types.Message{Kind: types.KindData}},
		DeliverEffect{Msg: &types.Message{Kind: types.KindData}, View: 1},
		ViewEffect{View: types.NewView(1, 1, []types.ProcessID{1})},
		GroupReadyEffect{Group: 1, StartMax: 5},
		FormationFailedEffect{Group: 1, Reason: "x"},
		SuspectEffect{Group: 1, Susp: types.Suspicion{Proc: 2, LN: 3}},
	}
	for _, e := range effs {
		if e.String() == "" {
			t.Errorf("%T has empty String()", e)
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	e := NewEngine(Config{Self: 3, Omega: time.Millisecond})
	if e.Self() != 3 {
		t.Errorf("Self = %v", e.Self())
	}
	if e.Omega() != time.Millisecond {
		t.Errorf("Omega = %v", e.Omega())
	}
	if _, err := e.View(9); err == nil {
		t.Error("View of unknown group must error")
	}
	now := time.Now()
	if _, err := e.BootstrapGroup(now, 1, Symmetric, []types.ProcessID{3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BootstrapGroup(now, 2, Symmetric, []types.ProcessID{3, 5}); err != nil {
		t.Fatal(err)
	}
	gs := e.Groups()
	if len(gs) != 2 || gs[0] != 1 || gs[1] != 2 {
		t.Errorf("Groups = %v", gs)
	}
	if e.PendingDeliveries() != 0 {
		t.Errorf("PendingDeliveries = %d", e.PendingDeliveries())
	}
	if e.Clock() != 0 {
		t.Errorf("Clock = %v, want 0 before any send", e.Clock())
	}
}

func TestSubmitErrors(t *testing.T) {
	e := NewEngine(Config{Self: 1, Omega: time.Millisecond})
	now := time.Now()
	if _, err := e.Submit(now, 1, []byte("x")); err == nil {
		t.Error("Submit to unknown group must error")
	}
	if _, err := e.LeaveGroup(now, 1); err == nil {
		t.Error("LeaveGroup of unknown group must error")
	}
	if _, err := e.BootstrapGroup(now, 1, Symmetric, []types.ProcessID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.LeaveGroup(now, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(now, 1, []byte("x")); err == nil {
		t.Error("Submit to departed group must error")
	}
}
