package core

// Equivalence guard for the incremental min-tracking introduced by the
// hot-path overhaul: the cached dx() (min RV), minSV() and the engine's
// cross-group globalD() must equal brute-force scans of the underlying
// state after EVERY stimulus, across randomized receive / suspect /
// confirm / view-change sequences. A missed cache invalidation anywhere
// would show up here as a divergence.

import (
	"math/rand"
	"testing"
	"time"

	"newtop/internal/types"
)

// bruteDx recomputes D_x the way the pre-cache code did: a full scan of
// the receive vector.
func bruteDx(g *groupState) types.MsgNum {
	if g.status == statusStartWait {
		return g.startPin
	}
	var d types.MsgNum
	if g.mode == Asymmetric && g.staticD {
		if i := g.memberIndex(g.sequencer()); i >= 0 {
			d = g.mem[i].rv
		}
	} else {
		d = types.InfNum
		for i := range g.mem {
			if v := g.mem[i].rv; v < d {
				d = v
			}
		}
		if len(g.view.Members) == 0 {
			d = 0
		}
	}
	if d < g.dFloor {
		d = g.dFloor
	}
	return d
}

// bruteMinSV recomputes the stability threshold by scanning.
func bruteMinSV(g *groupState) types.MsgNum {
	min := types.InfNum
	for i := range g.mem {
		if v := g.mem[i].sv; v < min {
			min = v
		}
	}
	if len(g.view.Members) == 0 {
		return 0
	}
	return min
}

// bruteGlobalD recomputes the cross-group gate by scanning every group.
func bruteGlobalD(e *Engine) types.MsgNum {
	d := types.InfNum
	for _, gs := range e.groups {
		if gs.status == statusForming || !gs.ordered() {
			continue
		}
		if v := bruteDx(gs); v < d {
			d = v
		}
	}
	return d
}

// checkCaches asserts cached == brute for every group plus the engine
// gate, and that the min counts are internally consistent.
func checkCaches(t *testing.T, e *Engine, step int) {
	t.Helper()
	for id, gs := range e.groups {
		if gs.status == statusForming {
			continue
		}
		if got, want := gs.dx(), bruteDx(gs); got != want {
			t.Fatalf("step %d group %v: cached dx = %v, brute force = %v", step, id, got, want)
		}
		if got, want := gs.minSV(), bruteMinSV(gs); got != want {
			t.Fatalf("step %d group %v: cached minSV = %v, brute force = %v", step, id, got, want)
		}
		// Count consistency of the incremental trackers.
		rvCnt, svCnt := 0, 0
		for i := range gs.mem {
			if gs.mem[i].rv == gs.rvMin {
				rvCnt++
			}
			if gs.mem[i].sv == gs.svMin {
				svCnt++
			}
		}
		if len(gs.mem) > 0 && (rvCnt != gs.rvMinCnt || svCnt != gs.svMinCnt) {
			t.Fatalf("step %d group %v: min counts rv=%d/%d sv=%d/%d diverged",
				step, id, gs.rvMinCnt, rvCnt, gs.svMinCnt, svCnt)
		}
		// The in-place log GC must never retain an entry at or below the
		// last collected threshold.
		for origin, s := range gs.log.byOrigin {
			for _, m := range s {
				if m == nil {
					t.Fatalf("step %d group %v: nil entry retained for origin %v", step, id, origin)
				}
				if m.Num <= gs.log.lastGC {
					t.Fatalf("step %d group %v: log retains %v (Num %v ≤ lastGC %v)",
						step, id, m, m.Num, gs.log.lastGC)
				}
			}
		}
	}
	if got, want := e.globalD(), bruteGlobalD(e); got != want {
		t.Fatalf("step %d: cached globalD = %v, brute force = %v", step, got, want)
	}
}

// TestMinCachesMatchBruteForce drives an engine through randomized hostile
// event sequences — valid FIFO traffic, garbage, gaps, remote suspicions,
// confirmations (which force detections and view installs) — checking the
// cached gates against brute-force scans after every stimulus.
func TestMinCachesMatchBruteForce(t *testing.T) {
	members := []types.ProcessID{1, 2, 3, 4, 5}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(Config{Self: 1, Omega: 10 * time.Millisecond})
		now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		mode := Symmetric
		if seed%2 == 1 {
			mode = Asymmetric
		}
		if _, err := e.BootstrapGroup(now, 1, mode, members); err != nil {
			t.Fatal(err)
		}
		if _, err := e.BootstrapGroup(now, 2, Symmetric, []types.ProcessID{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		checkCaches(t, e, -1)

		// Per-(group, sender) FIFO counters for generating valid traffic.
		type key struct {
			g types.GroupID
			p types.ProcessID
		}
		seqs := make(map[key]uint64)
		num := types.MsgNum(1)

		for step := 0; step < 400; step++ {
			now = now.Add(time.Duration(rng.Intn(7)) * time.Millisecond)
			g := types.GroupID(rng.Intn(2) + 1)
			p := members[rng.Intn(len(members))]
			switch rng.Intn(12) {
			case 0:
				e.Tick(now) // may raise suspicions, send nulls
			case 1:
				e.Submit(now, g, []byte{byte(step)})
			case 2:
				// Remote suspicion of a random member.
				e.HandleMessage(now, p, &types.Message{
					Kind: types.KindSuspect, Group: g, Sender: p, Origin: p,
					Suspicion: types.Suspicion{Proc: members[rng.Intn(len(members))], LN: types.MsgNum(rng.Intn(int(num) + 1))},
				})
			case 3:
				// Remote confirmation — can trigger adoption, detection,
				// install scheduling, RV/SV → ∞ and a view change.
				victim := members[1+rng.Intn(len(members)-1)]
				e.HandleMessage(now, p, &types.Message{
					Kind: types.KindConfirmed, Group: g, Sender: p, Origin: p,
					Detection: []types.Suspicion{{Proc: victim, LN: types.MsgNum(rng.Intn(int(num) + 1))}},
				})
			case 4:
				// Garbage data message (random fields: duplicates, gaps,
				// stray origins).
				e.HandleMessage(now, p, &types.Message{
					Kind:   types.KindData,
					Group:  g,
					Sender: p,
					Origin: types.ProcessID(rng.Intn(8)),
					Num:    types.MsgNum(rng.Intn(2000)),
					Seq:    uint64(rng.Intn(30)),
					LDN:    types.MsgNum(rng.Intn(2000)),
				})
			default:
				// Valid-ish FIFO data or null from a random member.
				k := key{g, p}
				seqs[k]++
				num += types.MsgNum(rng.Intn(3) + 1)
				kind := types.KindData
				if rng.Intn(4) == 0 {
					kind = types.KindNull
				}
				e.HandleMessage(now, p, &types.Message{
					Kind: kind, Group: g, Sender: p, Origin: p,
					Num: num, Seq: seqs[k], LDN: types.MsgNum(rng.Intn(int(num) + 1)),
				})
			}
			checkCaches(t, e, step)
		}
	}
}

// TestMinCachesAcrossViewChange drives a deterministic crash-to-install
// sequence and checks the caches before, during and after the rebuild:
// suspicion → unanimous agreement → detection (RV/SV jump to ∞) →
// installation (dense table rebuilt over the survivors).
func TestMinCachesAcrossViewChange(t *testing.T) {
	members := []types.ProcessID{1, 2, 3}
	e := NewEngine(Config{Self: 1, Omega: 10 * time.Millisecond})
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := e.BootstrapGroup(now, 1, Symmetric, members); err != nil {
		t.Fatal(err)
	}
	gs := e.groups[1]

	// Traffic from 2 only; 3 stays silent.
	for i := 1; i <= 5; i++ {
		e.HandleMessage(now, 2, &types.Message{
			Kind: types.KindData, Group: 1, Sender: 2, Origin: 2,
			Num: types.MsgNum(i * 2), Seq: uint64(i), LDN: 0,
		})
		checkCaches(t, e, i)
	}
	// Advance far past the suspicion timeout: both silent peers are
	// suspected in one Tick, and with no live unsuspected member left the
	// agreement is immediately unanimous — detection fires, RV/SV jump to
	// ∞ (exercising bumpRV/bumpSV with InfNum), and the install completes
	// in the pump, rebuilding the dense table over the lone survivor.
	now = now.Add(time.Hour)
	e.Tick(now)
	checkCaches(t, e, 100)
	if len(gs.suspicions) != 0 {
		t.Fatalf("suspicions not consumed by detection: %v", gs.suspicions)
	}
	if !gs.isRemoved(2) || !gs.isRemoved(3) {
		t.Fatal("joint detection did not mark 2 and 3 as removed")
	}
	if got := gs.view.Members; len(got) != 1 || got[0] != 1 {
		t.Fatalf("view after joint detection = %v, want [1]", got)
	}
	checkCaches(t, e, 101)
	if gs.rvMinCnt != 1 || gs.svMinCnt != 1 {
		t.Fatalf("rebuilt min counts = %d/%d, want 1/1", gs.rvMinCnt, gs.svMinCnt)
	}
	// Post-install traffic from the survivor keeps the caches coherent.
	if _, err := e.Submit(now, 1, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	checkCaches(t, e, 102)
}

// TestMsgLogGCInPlaceNeverResurrects pins the in-place reslice behaviour
// of msgLog.gc: collected entries must be gone from every query, later
// appends into the resliced tail must never bring them back, and the
// dropped prefix must be nilled (so the messages are collectable).
func TestMsgLogGCInPlaceNeverResurrects(t *testing.T) {
	l := newMsgLog()
	for i := 1; i <= 10; i++ {
		l.add(msg(1, 1, types.MsgNum(i), uint64(i)))
	}
	for i := 1; i <= 4; i++ {
		l.add(msg(2, 2, types.MsgNum(i*3), uint64(i)))
	}
	if l.len() != 14 {
		t.Fatalf("len = %d, want 14", l.len())
	}

	l.gc(6)
	if l.len() != 4+2 {
		t.Fatalf("len after gc(6) = %d, want 6", l.len())
	}
	if got := l.countAbove(1, 0); got != 4 {
		t.Fatalf("countAbove(1,0) = %d, want 4 (nums 7..10)", got)
	}
	for _, m := range l.concerningAbove(1, 0) {
		if m.Num <= 6 {
			t.Fatalf("gc(6) left %v in the log", m)
		}
	}

	// Append into the resliced tail: must extend, not resurrect.
	for i := 11; i <= 13; i++ {
		l.add(msg(1, 1, types.MsgNum(i), uint64(i)))
	}
	got := l.concerningAbove(1, 0)
	if len(got) != 7 {
		t.Fatalf("after re-append: %d entries, want 7 (7..13)", len(got))
	}
	for i, m := range got {
		if want := types.MsgNum(7 + i); m.Num != want {
			t.Fatalf("entry %d has Num %v, want %v", i, m.Num, want)
		}
	}

	// Collect an origin completely: the origin must vanish...
	l.gc(12)
	if _, ok := l.byOrigin[2]; ok {
		t.Fatal("origin 2 still present after full collection")
	}
	if got := l.latestNum(2); got != 0 {
		t.Fatalf("latestNum(2) = %v, want 0", got)
	}
	// ...and adding again after deletion must start fresh.
	l.add(msg(2, 2, 20, 5))
	if got := l.latestNum(2); got != 20 {
		t.Fatalf("latestNum(2) after re-add = %v, want 20", got)
	}
	if l.len() != 2 {
		t.Fatalf("final len = %d, want 2 (num 13 + num 20)", l.len())
	}
}
