package core

import (
	"container/heap"

	"newtop/internal/types"
)

// deliveryQueue is the process-wide priority queue of received, not yet
// delivered application messages, ordered by the deterministic total order
// of safe2 (non-decreasing m.c; ties by origin, group, seq). One queue
// spans all groups: delivery order is a single sequence per process, which
// is what extends total order across overlapping groups (MD4').
type deliveryQueue struct {
	h msgHeap
}

func newDeliveryQueue() *deliveryQueue { return &deliveryQueue{} }

// Push inserts m.
func (q *deliveryQueue) Push(m *types.Message) { heap.Push(&q.h, m) }

// Peek returns the smallest message without removing it, or nil when empty.
func (q *deliveryQueue) Peek() *types.Message {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Pop removes and returns the smallest message, or nil when empty.
func (q *deliveryQueue) Pop() *types.Message {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*types.Message)
}

// Len returns the number of queued messages.
func (q *deliveryQueue) Len() int { return len(q.h) }

// Discard removes every message matching pred (used by the §5.2 step viii
// cutoff: drop messages from failed processes with Num > lnmn).
func (q *deliveryQueue) Discard(pred func(*types.Message) bool) int {
	kept := q.h[:0]
	removed := 0
	for _, m := range q.h {
		if pred(m) {
			removed++
		} else {
			kept = append(kept, m)
		}
	}
	for i := len(kept); i < len(q.h); i++ {
		q.h[i] = nil
	}
	q.h = kept
	if removed > 0 {
		heap.Init(&q.h)
	}
	return removed
}

// HasAtOrBelow reports whether any queued message has Num ≤ n. Because the
// heap minimum is the delivery head, checking the head suffices.
func (q *deliveryQueue) HasAtOrBelow(n types.MsgNum) bool {
	return len(q.h) > 0 && q.h[0].Num <= n
}

type msgHeap []*types.Message

func (h msgHeap) Len() int            { return len(h) }
func (h msgHeap) Less(i, j int) bool  { return types.TotalOrderLess(h[i], h[j]) }
func (h msgHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x interface{}) { *h = append(*h, x.(*types.Message)) }
func (h *msgHeap) Pop() interface{} {
	old := *h
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return m
}
