package core

import (
	"newtop/internal/types"
)

// deliveryQueue is the process-wide priority queue of received, not yet
// delivered application messages, ordered by the deterministic total order
// of safe2 (non-decreasing m.c; ties by origin, group, seq). One queue
// spans all groups: delivery order is a single sequence per process, which
// is what extends total order across overlapping groups (MD4').
//
// The heap is a concrete *Message min-heap (sift-up/down inlined) rather
// than container/heap: no interface boxing, no indirect Less/Swap calls on
// the per-message hot path.
type deliveryQueue struct {
	h []*types.Message
}

func newDeliveryQueue() *deliveryQueue { return &deliveryQueue{} }

// Push inserts m.
func (q *deliveryQueue) Push(m *types.Message) {
	q.h = append(q.h, m)
	q.up(len(q.h) - 1)
}

// Peek returns the smallest message without removing it, or nil when empty.
func (q *deliveryQueue) Peek() *types.Message {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Pop removes and returns the smallest message, or nil when empty.
func (q *deliveryQueue) Pop() *types.Message {
	h := q.h
	if len(h) == 0 {
		return nil
	}
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	q.h = h[:n]
	if n > 0 {
		q.down(0)
	}
	return top
}

// Len returns the number of queued messages.
func (q *deliveryQueue) Len() int { return len(q.h) }

// Discard removes every message matching pred (used by the §5.2 step viii
// cutoff: drop messages from failed processes with Num > lnmn).
func (q *deliveryQueue) Discard(pred func(*types.Message) bool) int {
	kept := q.h[:0]
	removed := 0
	for _, m := range q.h {
		if pred(m) {
			removed++
		} else {
			kept = append(kept, m)
		}
	}
	for i := len(kept); i < len(q.h); i++ {
		q.h[i] = nil
	}
	q.h = kept
	if removed > 0 {
		// Re-establish the heap property bottom-up.
		for i := len(q.h)/2 - 1; i >= 0; i-- {
			q.down(i)
		}
	}
	return removed
}

// HasAtOrBelow reports whether any queued message has Num ≤ n. Because the
// heap minimum is the delivery head, checking the head suffices.
func (q *deliveryQueue) HasAtOrBelow(n types.MsgNum) bool {
	return len(q.h) > 0 && q.h[0].Num <= n
}

// up restores the heap property from leaf i towards the root.
func (q *deliveryQueue) up(i int) {
	h := q.h
	m := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !types.TotalOrderLess(m, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = m
}

// down restores the heap property from node i towards the leaves.
func (q *deliveryQueue) down(i int) {
	h := q.h
	n := len(h)
	m := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && types.TotalOrderLess(h[r], h[l]) {
			best = r
		}
		if !types.TotalOrderLess(h[best], m) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = m
}
