package core

import (
	"time"

	"newtop/internal/obs"
	"newtop/internal/types"
)

// blockReason classifies why a submit in gs cannot be transmitted now.
type blockReason uint8

const (
	blockNone blockReason = iota
	blockForming
	blockRule // Send Blocking / Mixed-mode Blocking Rule (§4.2/§4.3)
	blockFlow // flow-control window (§7 / [11])
)

// submitBlock returns the first reason an application multicast in gs must
// be queued, or blockNone when it may be transmitted immediately.
func (e *Engine) submitBlock(gs *groupState) blockReason {
	if gs.status != statusActive {
		return blockForming
	}
	// Send Blocking / Mixed-mode Blocking Rule: a multi-group process
	// must delay unicasting or multicasting m until every previous m'
	// with m'.g ≠ m.g that it unicast has come back from its sequencer.
	// Null messages are exempt: they are never delivered, so they cannot
	// violate delivery causality (see DESIGN.md).
	for _, other := range e.groups {
		if other.id != gs.id && len(other.pendingReqs) > 0 {
			return blockRule
		}
	}
	// Flow control (§7 / [11]): bound this process's unstable backlog.
	if w := e.cfg.FlowControlWindow; w > 0 {
		if gs.log.countAbove(e.cfg.Self, gs.minSV()) >= w {
			return blockFlow
		}
	}
	return blockNone
}

// submittable reports whether an application multicast in gs may be
// transmitted right now.
func (e *Engine) submittable(gs *groupState) bool { return e.submitBlock(gs) == blockNone }

// transmit performs the actual multicast of an application payload in gs,
// which must be submittable.
func (e *Engine) transmit(now time.Time, gs *groupState, payload []byte) {
	e.stats.DataSent++
	if gs.mode == Asymmetric {
		e.transmitAsym(now, gs, payload)
		return
	}
	// Symmetric (§4.1) and atomic modes multicast directly.
	num := e.lc.TickSend() // CA1
	gs.mySeq++
	m := e.allocOwn(gs, gs.ordered())
	m.Kind = types.KindData
	m.Group = gs.id
	m.Sender = e.cfg.Self
	m.Origin = e.cfg.Self
	m.Num = num
	m.Seq = gs.mySeq
	m.LDN = gs.dx()
	m.Payload = payload
	if e.tracer.Sampled(num) {
		key := obs.TraceKey{Group: gs.id, Origin: e.cfg.Self, Num: num}
		e.tracer.StampIf(key, obs.StageSubmit, now)
		e.tracer.StampIf(key, obs.StageSend, now)
	}
	e.mcast(gs, m)
	gs.lastSent = now
	// Deliver own messages by executing the protocol (§3): loop the
	// multicast back through the receive path.
	e.onDataPlane(now, gs, gs.memberIndex(e.cfg.Self), m)
}

// transmitAsym disseminates a message through the group's sequencer
// (§4.2). The process unicasts to the sequencer, which multicasts in
// receipt order with a fresh number; the sender delivers its own message
// when the sequencer's multicast arrives.
func (e *Engine) transmitAsym(now time.Time, gs *groupState, payload []byte) {
	num := e.lc.TickSend() // CA1 — unicasts advance the clock like multicasts
	gs.myReqSeq++
	req := &types.Message{
		Kind:    types.KindSeqRequest,
		Group:   gs.id,
		Sender:  e.cfg.Self,
		Origin:  e.cfg.Self,
		Num:     num,
		Seq:     gs.myReqSeq,
		Payload: payload,
	}
	seqr := gs.sequencer()
	if seqr == e.cfg.Self {
		// The sequencer logically unicasts to itself and multicasts
		// (§4.2): sequence immediately.
		e.sequenceRequest(now, gs, req)
		return
	}
	gs.pendingReqs = append(gs.pendingReqs, req)
	e.stats.SeqRequests++
	e.send(seqr, req)
}

// onSeqRequest handles a unicast ordering request at the sequencer. si is
// the sender's member index (membership verified by the caller).
func (e *Engine) onSeqRequest(now time.Time, gs *groupState, si int, m *types.Message) {
	e.lc.Witness(m.Num) // CA2 — receiving a unicast advances the clock
	gs.mem[si].lastHeard = now
	if gs.sequencer() != e.cfg.Self {
		// Views diverge briefly around membership changes; the
		// requester re-unicasts to the new sequencer after its own view
		// change, so dropping here is safe.
		return
	}
	e.sequenceRequest(now, gs, m)
}

// sequenceRequest multicasts a request in receipt order with a fresh
// number. Requests already sequenced (observed as relays) are deduplicated;
// out-of-order requests are dropped (the requester re-unicasts after a
// view change, in order).
func (e *Engine) sequenceRequest(now time.Time, gs *groupState, req *types.Message) {
	if gs.isRemoved(req.Origin) {
		return // never relay messages of an excluded member
	}
	num := e.lc.TickSend() // CA1 for the ordered multicast
	m := &types.Message{
		Kind:    types.KindData,
		Group:   gs.id,
		Sender:  e.cfg.Self,
		Num:     num,
		LDN:     gs.dx(),
		Payload: req.Payload,
	}
	if req.Origin == e.cfg.Self {
		// Our own message: the multicast is a direct transmission, so it
		// is numbered in the direct sequence space.
		gs.mySeq++
		m.Origin = e.cfg.Self
		m.Seq = gs.mySeq
	} else {
		var last uint64
		if oi := gs.memberIndex(req.Origin); oi >= 0 {
			last = gs.mem[oi].seqRelayed
		} else if st, ok := gs.strays[req.Origin]; ok {
			last = st.seqRelayed
		}
		if req.Seq != last+1 {
			return // duplicate or out-of-order request
		}
		m.Origin = req.Origin
		m.Seq = req.Seq
	}
	e.stats.SeqMulticasts++
	if e.tracer.Sampled(num) {
		// The sequencer's multicast is where the ordered identity (group,
		// origin, num) is born; stamp its dissemination here.
		key := obs.TraceKey{Group: gs.id, Origin: m.Origin, Num: num}
		e.tracer.StampIf(key, obs.StageSubmit, now)
		e.tracer.StampIf(key, obs.StageSend, now)
	}
	e.mcast(gs, m)
	gs.lastSent = now
	e.onDataPlane(now, gs, gs.memberIndex(e.cfg.Self), m)
}

// allocOwn returns a zeroed message struct for a self-originated
// data-plane multicast in gs, drawn from the group's arena when enabled.
// The self loopback through onDataPlane always retains it in the
// stability log; queued says whether it will also sit in the delivery
// queue (ordered data — not nulls, not atomic-mode deliveries).
func (e *Engine) allocOwn(gs *groupState, queued bool) *types.Message {
	a := e.arenaFor(gs)
	if a == nil {
		return &types.Message{}
	}
	m := a.alloc()
	flags := arenaLogged
	if queued {
		flags |= arenaQueued
	}
	a.track(m, flags)
	return m
}

// sendNull multicasts a time-silence null message in gs (§4.1). Nulls
// carry only protocol information; they advance clocks and receive vectors
// but are never delivered.
func (e *Engine) sendNull(now time.Time, gs *groupState) {
	num := e.lc.TickSend()
	gs.mySeq++
	m := e.allocOwn(gs, false) // nulls are logged but never queued
	m.Kind = types.KindNull
	m.Group = gs.id
	m.Sender = e.cfg.Self
	m.Origin = e.cfg.Self
	m.Num = num
	m.Seq = gs.mySeq
	m.LDN = gs.dx()
	e.stats.NullsSent++
	e.mcast(gs, m)
	gs.lastSent = now
	e.onDataPlane(now, gs, gs.memberIndex(e.cfg.Self), m)
}

// drainQueued transmits queued submits that have become unblocked. The
// queue is a strict FIFO across all groups: if the head stays blocked,
// everything behind it waits, preserving the submitter's program order in
// the happened-before relation.
func (e *Engine) drainQueued(now time.Time) {
	for len(e.queued) > 0 {
		head := e.queued[0]
		gs, ok := e.groups[head.g]
		if !ok {
			// The group was departed or its formation failed; the queued
			// send is dropped with it.
			e.om.dropQueuedSubmit.Inc()
			e.queued = e.queued[1:]
			continue
		}
		if !e.submittable(gs) {
			return
		}
		e.queued[0] = queuedSubmit{}
		e.queued = e.queued[1:]
		if len(e.queued) == 0 {
			e.queued = nil
		}
		e.transmit(now, gs, head.payload)
	}
}
