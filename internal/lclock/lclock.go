// Package lclock implements the Lamport logical clock [Lamport 1978] that
// drives Newtop's message numbering.
//
// A process maintains exactly one clock regardless of how many groups it
// belongs to (§4.1), advanced by the two counter-advance rules:
//
//	CA1: before sending m, increment LC and stamp m.c with the new value;
//	CA2: on receiving m, set LC = max(LC, m.c).
//
// Together these give the happened-before properties pr1/pr2 of §4.1:
// consecutive sends by one process carry increasing numbers, and a message
// sent after a delivery carries a number above the delivered message's.
package lclock

import "newtop/internal/types"

// Clock is a Lamport logical clock. The zero value is a clock at 0, ready
// to use. Clock is not safe for concurrent use; in Newtop it lives inside a
// single-threaded protocol engine.
type Clock struct {
	lc types.MsgNum
}

// Now returns the current counter value without advancing it.
func (c *Clock) Now() types.MsgNum { return c.lc }

// TickSend applies CA1: increments the clock and returns the new value,
// which the caller stamps into m.c.
func (c *Clock) TickSend() types.MsgNum {
	c.lc++
	return c.lc
}

// Witness applies CA2 for a received message number: LC = max(LC, n).
func (c *Clock) Witness(n types.MsgNum) {
	if n == types.InfNum {
		return // ∞ markers are bookkeeping, not real message numbers
	}
	if n > c.lc {
		c.lc = n
	}
}

// ForceAtLeast raises the clock to at least n. The group-formation protocol
// uses it in step 5 of §5.3: "LCk is set to start-number-max if
// start-number-max is larger".
func (c *Clock) ForceAtLeast(n types.MsgNum) {
	if n != types.InfNum && n > c.lc {
		c.lc = n
	}
}
