package lclock

import (
	"testing"
	"testing/quick"

	"newtop/internal/types"
)

func TestZeroValueUsable(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Errorf("zero clock Now() = %v, want 0", c.Now())
	}
}

func TestTickSendIncrements(t *testing.T) {
	var c Clock
	for i := types.MsgNum(1); i <= 5; i++ {
		if got := c.TickSend(); got != i {
			t.Errorf("TickSend() = %v, want %v", got, i)
		}
	}
}

func TestWitnessMax(t *testing.T) {
	var c Clock
	c.Witness(10)
	if c.Now() != 10 {
		t.Errorf("Now() = %v, want 10", c.Now())
	}
	c.Witness(5) // lower: no effect
	if c.Now() != 10 {
		t.Errorf("Now() after lower witness = %v, want 10", c.Now())
	}
	if got := c.TickSend(); got != 11 {
		t.Errorf("TickSend after witness = %v, want 11", got)
	}
}

func TestWitnessIgnoresInfinity(t *testing.T) {
	var c Clock
	c.Witness(types.InfNum)
	if c.Now() != 0 {
		t.Errorf("Witness(∞) advanced clock to %v", c.Now())
	}
}

func TestForceAtLeast(t *testing.T) {
	var c Clock
	c.ForceAtLeast(7)
	if c.Now() != 7 {
		t.Errorf("Now() = %v, want 7", c.Now())
	}
	c.ForceAtLeast(3)
	if c.Now() != 7 {
		t.Errorf("ForceAtLeast lowered the clock to %v", c.Now())
	}
	c.ForceAtLeast(types.InfNum)
	if c.Now() != 7 {
		t.Errorf("ForceAtLeast(∞) changed the clock to %v", c.Now())
	}
}

// pr1 (§4.1): consecutive sends by one process carry strictly increasing
// numbers, regardless of interleaved receives.
func TestPr1Property(t *testing.T) {
	f := func(events []uint16) bool {
		var c Clock
		var last types.MsgNum
		first := true
		for _, e := range events {
			if e%2 == 0 {
				c.Witness(types.MsgNum(e))
				continue
			}
			n := c.TickSend()
			if !first && n <= last {
				return false
			}
			last, first = n, false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// pr2 (§4.1): a send after witnessing (delivering) m carries a number
// strictly above m.c.
func TestPr2Property(t *testing.T) {
	f := func(n uint32) bool {
		var c Clock
		c.Witness(types.MsgNum(n))
		return c.TickSend() > types.MsgNum(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Causal chains across two clocks: if send(m) -> send(m') via a message
// exchange, then m.c < m'.c (Lamport's clock condition).
func TestClockConditionAcrossProcesses(t *testing.T) {
	var a, b Clock
	m := a.TickSend()  // a sends m
	b.Witness(m)       // b receives m
	m2 := b.TickSend() // b sends m' (causally after m)
	if m2 <= m {
		t.Errorf("causal successor number %v not above predecessor %v", m2, m)
	}
}
