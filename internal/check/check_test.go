package check

import (
	"strings"
	"testing"
	"time"

	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
)

// healthyCluster runs a clean 3-process workload that satisfies every
// property.
func healthyCluster(t *testing.T) *sim.Cluster {
	t.Helper()
	c := sim.New(1, sim.WithLatency(time.Millisecond, 2*time.Millisecond))
	for i := 1; i <= 3; i++ {
		c.AddProcess(core.Config{Self: types.ProcessID(i), Omega: 20 * time.Millisecond})
	}
	if err := c.Bootstrap(1, core.Symmetric, []types.ProcessID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for p := types.ProcessID(1); p <= 3; p++ {
			if err := c.Submit(p, 1, []byte(p.String()+"-"+string(rune('a'+i)))); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(5 * time.Millisecond)
	}
	c.Run(2 * time.Second)
	return c
}

func TestCleanRunPassesAllChecks(t *testing.T) {
	c := healthyCluster(t)
	res := New(c, nil).All()
	if !res.Ok() {
		t.Fatalf("clean run reported violations: %v", res.Err())
	}
	if res.Err() != nil {
		t.Error("Err() non-nil for ok result")
	}
}

func TestResultErrFormatting(t *testing.T) {
	r := &Result{}
	r.add("MD4", "example violation at %v", types.ProcessID(3))
	err := r.Err()
	if err == nil {
		t.Fatal("Err() nil with violations present")
	}
	if !strings.Contains(err.Error(), "MD4") || !strings.Contains(err.Error(), "P3") {
		t.Errorf("error text %q missing details", err)
	}
	if r.Violations[0].Error() == "" {
		t.Error("Violation.Error empty")
	}
	// Truncation note appears past 10 violations.
	for i := 0; i < 12; i++ {
		r.add("MD3", "v%d", i)
	}
	if !strings.Contains(r.Err().Error(), "...") {
		t.Error("long violation list not truncated")
	}
}

func TestCheckerDetectsFabricatedInversion(t *testing.T) {
	// Tamper with one process's recorded delivery order and verify the
	// total-order check notices — guards against a vacuous checker.
	c := healthyCluster(t)
	h := c.History(2)
	// Swap two delivery events' payloads in the event log (and the
	// Deliveries list, which CheckTotalOrder reads via deliveriesOf →
	// Events). Find two EvDeliver events.
	var idx []int
	for i, ev := range h.Events {
		if ev.Kind == sim.EvDeliver {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		t.Fatal("not enough deliveries to tamper with")
	}
	i, j := idx[0], idx[1]
	h.Events[i].Payload, h.Events[j].Payload = h.Events[j].Payload, h.Events[i].Payload
	res := New(c, nil).All()
	if res.Ok() {
		t.Fatal("checker accepted a fabricated delivery inversion")
	}
	found := false
	for _, v := range res.Violations {
		if v.Property == "MD4'" || v.Property == "MD4" {
			found = true
		}
	}
	if !found {
		t.Errorf("inversion attributed to wrong property: %v", res.Violations)
	}
}

func TestCheckerDetectsFabricatedGhostDelivery(t *testing.T) {
	// A delivery of a message from a process outside the view must trip
	// MD1.
	c := healthyCluster(t)
	h := c.History(1)
	h.Events = append(h.Events, sim.Event{
		Idx: len(h.Events), Kind: sim.EvDeliver, Group: 1,
		Origin: 99, Payload: []byte("ghost"),
	})
	res := New(c, nil).All()
	ok := false
	for _, v := range res.Violations {
		if v.Property == "MD1" {
			ok = true
		}
	}
	if !ok {
		t.Errorf("ghost delivery not flagged as MD1: %v", res.Violations)
	}
}

func TestCheckerDetectsAtomicityGap(t *testing.T) {
	// Drop one delivery from one process inside a closed view epoch:
	// MD3 must flag it. Build a run with a view change so epochs close.
	c := sim.New(2, sim.WithLatency(time.Millisecond, 2*time.Millisecond))
	for i := 1; i <= 3; i++ {
		c.AddProcess(core.Config{Self: types.ProcessID(i), Omega: 10 * time.Millisecond})
	}
	if err := c.Bootstrap(1, core.Symmetric, []types.ProcessID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for p := types.ProcessID(1); p <= 2; p++ {
		if err := c.Submit(p, 1, []byte("m-"+p.String())); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(100 * time.Millisecond)
	c.Crash(3)
	c.RunUntil(30*time.Second, func() bool {
		for _, p := range []types.ProcessID{1, 2} {
			vs := c.History(p).Views[1]
			if len(vs) == 0 || vs[len(vs)-1].View.Contains(3) {
				return false
			}
		}
		return true
	})
	c.Run(time.Second)
	if res := New(c, []types.ProcessID{3}).All(); !res.Ok() {
		t.Fatalf("pre-tamper run unhealthy: %v", res.Err())
	}
	// Remove one of P2's epoch-0 deliveries.
	h := c.History(2)
	for i, ev := range h.Events {
		if ev.Kind == sim.EvDeliver {
			h.Events = append(h.Events[:i], h.Events[i+1:]...)
			break
		}
	}
	res := New(c, []types.ProcessID{3}).All()
	found := false
	for _, v := range res.Violations {
		if v.Property == "MD3" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing delivery not flagged as MD3: %v", res.Violations)
	}
}

func TestFinalView(t *testing.T) {
	c := healthyCluster(t)
	v, ok := FinalView(c, 1, 1)
	if !ok || v.Size() != 3 {
		t.Errorf("FinalView = %v, %v", v, ok)
	}
	if _, ok := FinalView(c, 1, 99); ok {
		t.Error("FinalView of unknown group reported ok")
	}
}
