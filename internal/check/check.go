// Package check verifies the Newtop correctness properties — the message
// delivery properties MD1–MD5' and the view consistency properties VC1–VC3
// of §3 of the paper — against the per-process event histories recorded by
// a deterministic simulation (internal/sim).
//
// Messages are identified by their payloads, which therefore must be
// unique per multicast within a checked run (the sim test helpers
// guarantee this). The happened-before relation m → m' is reconstructed
// exactly from local event orders: m → m' iff some process submitted or
// delivered m before submitting m', transitively closed — Lamport's
// definition over the recorded events.
package check

import (
	"fmt"

	"newtop/internal/sim"
	"newtop/internal/types"
)

// Violation describes one broken property.
type Violation struct {
	Property string // e.g. "MD4", "VC1"
	Detail   string
}

// Error renders the violation.
func (v Violation) Error() string { return v.Property + ": " + v.Detail }

// Result aggregates the violations found in one run.
type Result struct {
	Violations []Violation
}

// Ok reports whether no property was violated.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// Err returns an error summarising up to 10 violations, or nil.
func (r *Result) Err() error {
	if r.Ok() {
		return nil
	}
	s := fmt.Sprintf("%d violations:", len(r.Violations))
	for i, v := range r.Violations {
		if i == 10 {
			s += "\n  ..."
			break
		}
		s += "\n  " + v.Error()
	}
	return fmt.Errorf("%s", s)
}

func (r *Result) add(prop, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{Property: prop, Detail: fmt.Sprintf(format, args...)})
}

// Checker verifies properties over a finished simulation.
type Checker struct {
	c       *sim.Cluster
	crashed map[types.ProcessID]bool
	procs   []types.ProcessID
}

// New builds a checker over cluster c. crashed lists processes that were
// crashed (or permanently partitioned away) during the run; several
// properties only bind never-crashing processes.
func New(c *sim.Cluster, crashed []types.ProcessID) *Checker {
	cm := make(map[types.ProcessID]bool, len(crashed))
	for _, p := range crashed {
		cm[p] = true
	}
	return &Checker{c: c, crashed: cm, procs: c.Processes()}
}

// All runs every property check and returns the aggregate result.
func (k *Checker) All() *Result {
	r := &Result{}
	k.CheckTotalOrder(r)
	k.CheckCausality(r)
	k.CheckMD1(r)
	k.CheckAtomicity(r)
	k.CheckViewConsistency(r)
	return r
}

// key identifies a multicast by its payload.
func key(payload []byte) string { return string(payload) }

// deliveriesOf lists p's deliveries (all groups) in local order.
func (k *Checker) deliveriesOf(p types.ProcessID) []sim.Event {
	var out []sim.Event
	for _, ev := range k.c.History(p).Events {
		if ev.Kind == sim.EvDeliver {
			out = append(out, ev)
		}
	}
	return out
}

// CheckTotalOrder verifies MD4/MD4' first clause: any two processes
// deliver their common messages in the same relative order — across all
// groups, which is the multi-group extension MD4'.
func (k *Checker) CheckTotalOrder(r *Result) {
	pos := make(map[types.ProcessID]map[string]int, len(k.procs))
	for _, p := range k.procs {
		m := make(map[string]int)
		for i, ev := range k.deliveriesOf(p) {
			if _, dup := m[key(ev.Payload)]; dup {
				r.add("MD4", "%v delivered %q twice", p, ev.Payload)
			}
			m[key(ev.Payload)] = i
		}
		pos[p] = m
	}
	for a := 0; a < len(k.procs); a++ {
		for b := a + 1; b < len(k.procs); b++ {
			pa, pb := k.procs[a], k.procs[b]
			da := k.deliveriesOf(pa)
			// Collect common messages in pa's order; their positions at
			// pb must be strictly increasing.
			last := -1
			var lastKey string
			for _, ev := range da {
				kk := key(ev.Payload)
				j, ok := pos[pb][kk]
				if !ok {
					continue
				}
				if j <= last {
					r.add("MD4'", "%v delivers %q before %q; %v delivers them in the opposite order",
						pa, lastKey, kk, pb)
				}
				if j > last {
					last = j
					lastKey = kk
				}
			}
		}
	}
}

// happenedBefore reconstructs Lamport's → over submitted messages from the
// local event orders and returns it as, for each message, the set of
// messages it causally precedes.
//
// The construction walks each process's history once: every submit event
// inherits the "causal past" accumulated at that process (all messages it
// submitted or delivered so far, plus their pasts).
func (k *Checker) happenedBefore() map[string]map[string]bool {
	// past[m] = set of messages strictly before m.
	past := make(map[string]map[string]bool)
	// Iteratively propagate until fixpoint: delivery events import the
	// delivered message's past, submits snapshot the accumulated set.
	// One forward pass per process suffices if we process events in
	// global timestamp order — but cross-process chains need the sender's
	// past computed before the receiver's delivery. Global At order gives
	// that (a delivery is always after its submit in virtual time).
	var all []pev
	for _, p := range k.procs {
		for _, ev := range k.c.History(p).Events {
			if ev.Kind == sim.EvSubmit || ev.Kind == sim.EvDeliver {
				all = append(all, pev{p, ev})
			}
		}
	}
	// Stable sort by (At, process, Idx): virtual time, deterministic ties.
	sortPevs(all)
	acc := make(map[types.ProcessID]map[string]bool)
	for _, pe := range all {
		a := acc[pe.p]
		if a == nil {
			a = make(map[string]bool)
			acc[pe.p] = a
		}
		kk := key(pe.ev.Payload)
		switch pe.ev.Kind {
		case sim.EvSubmit:
			// Everything in the accumulator happened before this send.
			snap := make(map[string]bool, len(a))
			for m := range a {
				snap[m] = true
			}
			past[kk] = snap
			a[kk] = true
		case sim.EvDeliver:
			// Import the delivered message and its past.
			a[kk] = true
			for m := range past[kk] {
				a[m] = true
			}
		}
	}
	return past
}

type pev struct {
	p  types.ProcessID
	ev sim.Event
}

func sortPevs(all []pev) {
	lt := func(i, j int) bool {
		a, b := all[i], all[j]
		if !a.ev.At.Equal(b.ev.At) {
			return a.ev.At.Before(b.ev.At)
		}
		if a.p != b.p {
			return a.p < b.p
		}
		return a.ev.Idx < b.ev.Idx
	}
	// insertion sort: histories are mostly time-sorted already
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && lt(j, j-1); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
}

// CheckCausality verifies the causal clauses: MD4 second clause (causal
// deliveries in order), MD5 (same-group causal prefix always delivered)
// and MD5' (cross-group causal prefix delivered when the prefix's sender
// is still in the delivering process's view of the prefix's group).
func (k *Checker) CheckCausality(r *Result) {
	past := k.happenedBefore()
	// Metadata per message: group and origin, from any submit event.
	group := make(map[string]types.GroupID)
	origin := make(map[string]types.ProcessID)
	for _, p := range k.procs {
		for _, ev := range k.c.History(p).Events {
			if ev.Kind == sim.EvSubmit {
				group[key(ev.Payload)] = ev.Group
				origin[key(ev.Payload)] = ev.Origin
			}
		}
	}

	for _, p := range k.procs {
		h := k.c.History(p)
		// Position of each delivered message and current view tracking.
		dpos := make(map[string]int)
		for i, ev := range k.deliveriesOf(p) {
			dpos[key(ev.Payload)] = i
		}
		// members[g] at each event index, replayed forward.
		members := make(map[types.GroupID]map[types.ProcessID]bool)
		for _, ev := range h.Events {
			switch ev.Kind {
			case sim.EvView:
				ms := make(map[types.ProcessID]bool, len(ev.View.Members))
				for _, q := range ev.View.Members {
					ms[q] = true
				}
				members[ev.Group] = ms
			case sim.EvDeliver:
				mu := key(ev.Payload)
				i := dpos[mu]
				for m := range past[mu] {
					j, delivered := dpos[m]
					if delivered {
						// MD4 second clause: m → µ and both delivered
						// here ⇒ m delivered first.
						if j >= i {
							r.add("MD4", "%v delivered %q (pos %d) not before causal successor %q (pos %d)",
								p, m, j, mu, i)
						}
						continue
					}
					if group[m] == ev.Group {
						// MD5: same-group causal prefix must have been
						// delivered.
						r.add("MD5", "%v delivered %q without its same-group causal predecessor %q",
							p, mu, m)
						continue
					}
					// MD5': cross-group prefix may be missing only if its
					// sender is no longer in p's view of its group.
					gm := members[group[m]]
					if gm != nil && gm[origin[m]] {
						r.add("MD5'", "%v delivered %q while %q's sender %v is still in its view of %v, but %q was never delivered",
							p, mu, m, origin[m], group[m], m)
					}
				}
			}
		}
	}
}

// CheckMD1 verifies delivery validity: a message is delivered in view Vr
// only if its sender belongs to Vr.
func (k *Checker) CheckMD1(r *Result) {
	for _, p := range k.procs {
		members := make(map[types.GroupID]map[types.ProcessID]bool)
		for _, ev := range k.c.History(p).Events {
			switch ev.Kind {
			case sim.EvView:
				ms := make(map[types.ProcessID]bool, len(ev.View.Members))
				for _, q := range ev.View.Members {
					ms[q] = true
				}
				members[ev.Group] = ms
			case sim.EvDeliver:
				gm := members[ev.Group]
				if gm == nil {
					r.add("MD1", "%v delivered %q in %v before installing any view", p, ev.Payload, ev.Group)
					continue
				}
				if !gm[ev.Origin] {
					r.add("MD1", "%v delivered %q from %v in %v, but the sender is not in the current view",
						p, ev.Payload, ev.Origin, ev.Group)
				}
			}
		}
	}
}

// CheckAtomicity verifies MD3/VC3: two never-crashing processes that
// install identical consecutive views (same index, same membership)
// deliver exactly the same set of messages between them.
func (k *Checker) CheckAtomicity(r *Result) {
	type epoch struct {
		view types.View
		next *types.View
		set  map[string]bool
	}
	// Per process per group: the sequence of epochs.
	epochs := make(map[types.ProcessID]map[types.GroupID][]*epoch)
	for _, p := range k.procs {
		eg := make(map[types.GroupID][]*epoch)
		cur := make(map[types.GroupID]*epoch)
		for _, ev := range k.c.History(p).Events {
			switch ev.Kind {
			case sim.EvView:
				if prev := cur[ev.Group]; prev != nil {
					v := ev.View
					prev.next = &v
				}
				e := &epoch{view: ev.View, set: make(map[string]bool)}
				cur[ev.Group] = e
				eg[ev.Group] = append(eg[ev.Group], e)
			case sim.EvDeliver:
				if e := cur[ev.Group]; e != nil {
					e.set[key(ev.Payload)] = true
				}
			}
		}
		epochs[p] = eg
	}
	for a := 0; a < len(k.procs); a++ {
		for b := a + 1; b < len(k.procs); b++ {
			pa, pb := k.procs[a], k.procs[b]
			if k.crashed[pa] || k.crashed[pb] {
				continue
			}
			for g, eas := range epochs[pa] {
				for _, ea := range eas {
					if ea.next == nil {
						continue
					}
					for _, eb := range epochs[pb][g] {
						if eb.next == nil {
							continue
						}
						if !ea.view.Equal(eb.view) || !ea.next.Equal(*eb.next) {
							continue
						}
						for m := range ea.set {
							if !eb.set[m] {
								r.add("MD3", "in %v view %d, %v delivered %q but %v did not",
									g, ea.view.Index, pa, m, pb)
							}
						}
						for m := range eb.set {
							if !ea.set[m] {
								r.add("MD3", "in %v view %d, %v delivered %q but %v did not",
									g, eb.view.Index, pb, m, pa)
							}
						}
					}
				}
			}
		}
	}
}

// CheckViewConsistency verifies VC1: two never-crashing processes that
// never suspected each other install identical view sequences per group.
func (k *Checker) CheckViewConsistency(r *Result) {
	suspected := make(map[types.ProcessID]map[types.ProcessID]bool)
	views := make(map[types.ProcessID]map[types.GroupID][]types.View)
	memberOf := make(map[types.ProcessID]map[types.GroupID]bool)
	for _, p := range k.procs {
		s := make(map[types.ProcessID]bool)
		vs := make(map[types.GroupID][]types.View)
		mo := make(map[types.GroupID]bool)
		for _, ev := range k.c.History(p).Events {
			switch ev.Kind {
			case sim.EvSuspect:
				s[ev.Susp.Proc] = true
			case sim.EvView:
				vs[ev.Group] = append(vs[ev.Group], ev.View)
				mo[ev.Group] = true
			}
		}
		suspected[p] = s
		views[p] = vs
		memberOf[p] = mo
	}
	for a := 0; a < len(k.procs); a++ {
		for b := a + 1; b < len(k.procs); b++ {
			pa, pb := k.procs[a], k.procs[b]
			if k.crashed[pa] || k.crashed[pb] {
				continue
			}
			if suspected[pa][pb] || suspected[pb][pa] {
				continue
			}
			for g, va := range views[pa] {
				if !memberOf[pb][g] {
					continue
				}
				vb := views[pb][g]
				n := len(va)
				if len(vb) < n {
					n = len(vb)
				}
				for i := 0; i < n; i++ {
					if !va[i].Equal(vb[i]) {
						r.add("VC1", "%v and %v (never mutually suspecting) diverge in %v at view %d: %v vs %v",
							pa, pb, g, i, va[i], vb[i])
					}
				}
			}
		}
	}
}

// FinalView returns the last view p installed for g (ok=false if none).
func FinalView(c *sim.Cluster, p types.ProcessID, g types.GroupID) (types.View, bool) {
	vs := c.History(p).Views[g]
	if len(vs) == 0 {
		return types.View{}, false
	}
	return vs[len(vs)-1].View, true
}
