package sim

import (
	"testing"
	"time"

	"newtop/internal/core"
	"newtop/internal/obs"
	"newtop/internal/types"
)

// tracedRun drives one fixed workload — 3 processes, 60 multicasts
// round-robin — under a per-process tracer sampling every 2nd message
// number, and returns each process's traces. (The Lamport clock advances
// in lockstep under this symmetric workload, so data messages occupy a
// fixed residue class of Num; every=2 is the largest stride that still
// intersects it.)
func tracedRun(t *testing.T, seed int64) map[types.ProcessID][]obs.Trace {
	t.Helper()
	c := New(seed, WithLatency(200*time.Microsecond, 900*time.Microsecond))
	trcs := make(map[types.ProcessID]*obs.Tracer, 3)
	ps := make([]types.ProcessID, 0, 3)
	for i := 1; i <= 3; i++ {
		p := types.ProcessID(i)
		trcs[p] = obs.NewTracer(2, 0, obs.NewRegistry())
		c.AddProcess(core.Config{Self: p, Omega: 5 * time.Millisecond, Tracer: trcs[p]})
		ps = append(ps, p)
	}
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := c.Submit(ps[i%3], 1, []byte{'t', byte(i)}); err != nil {
			t.Fatal(err)
		}
		c.Run(2 * time.Millisecond)
	}
	c.Run(100 * time.Millisecond)
	out := make(map[types.ProcessID][]obs.Trace, 3)
	for p, trc := range trcs {
		out[p] = trc.Traces()
	}
	return out
}

// TestTraceDeterministicUnderSim is the tracing contract in simulation:
// stamps carry virtual time and sampling is a pure function of the
// message number, so two runs from the same seed must produce
// BIT-IDENTICAL traces at every process — same sampled keys, same stage
// set, same timestamps to the nanosecond.
func TestTraceDeterministicUnderSim(t *testing.T) {
	a := tracedRun(t, 42)
	b := tracedRun(t, 42)
	for p, ta := range a {
		tb := b[p]
		if len(ta) == 0 {
			t.Fatalf("P%d retained no traces", p)
		}
		if len(ta) != len(tb) {
			t.Fatalf("P%d: run A retained %d traces, run B %d", p, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i].Key != tb[i].Key {
				t.Fatalf("P%d trace %d: key %+v vs %+v", p, i, ta[i].Key, tb[i].Key)
			}
			for s := obs.StageSubmit; s <= obs.StageApplied; s++ {
				sa, sb := ta[i].Stamp(s), tb[i].Stamp(s)
				if !sa.Equal(sb) {
					t.Fatalf("P%d trace %+v stage %s: %v vs %v", p, ta[i].Key, s, sa, sb)
				}
			}
		}
	}
	// The sampled stream must actually progress through the pipeline:
	// some trace at some process must carry a Delivered stamp.
	delivered := false
	for _, ts := range a {
		for i := range ts {
			if !ts[i].Stamp(obs.StageDelivered).IsZero() {
				delivered = true
			}
		}
	}
	if !delivered {
		t.Fatal("no sampled message was ever stamped Delivered")
	}
}

// TestTraceSamplingAgreesAcrossProcesses checks the fleet-wide sampling
// contract: because sampling is Num%every==0 at every process, the set of
// sampled keys seen at each member must be drawn from the same message
// population — no process may retain a key whose Num is off-sample.
func TestTraceSamplingAgreesAcrossProcesses(t *testing.T) {
	for p, ts := range tracedRun(t, 7) {
		if len(ts) == 0 {
			t.Fatalf("P%d retained no traces", p)
		}
		for i := range ts {
			if ts[i].Key.Num%2 != 0 {
				t.Fatalf("P%d retained off-sample trace %+v", p, ts[i].Key)
			}
		}
	}
}
