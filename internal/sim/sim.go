// Package sim is a deterministic discrete-event simulator for Newtop
// protocol engines. It owns virtual time, a seeded latency model, link
// cuts/partitions and crash injection (including crash-mid-multicast), and
// routes engine effects: SendEffects become future arrival events with
// per-pair FIFO preserved, deliveries and view changes are recorded in
// per-process histories.
//
// Everything is single-threaded and seeded, so every scenario — including
// the paper's failure examples — replays bit-for-bit identically. The
// goroutine-based runtimes (internal/node over memnet/tcpnet) exercise the
// same engines under real concurrency; sim is where ordering properties
// are asserted exactly.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"newtop/internal/core"
	"newtop/internal/ring"
	"newtop/internal/types"
	"newtop/internal/wire"
)

// Epoch is the virtual time origin of every simulation.
var Epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// Option configures a Cluster.
type Option func(*Cluster)

// WithLatency sets the message-latency band [min, max). Default [1ms, 5ms).
func WithLatency(min, max time.Duration) Option {
	return func(c *Cluster) { c.latMin, c.latMax = min, max }
}

// WithTickEvery sets how often each engine's Tick fires. Default ω/2 of
// the first process added.
func WithTickEvery(d time.Duration) Option {
	return func(c *Cluster) { c.tickEvery = d }
}

// WithWireCodec makes every simulated message round-trip the wire codec:
// encoded into a pooled buffer at transmit time (as the real transports
// marshal at enqueue — the calendar holds bytes, never a live *Message),
// then decoded borrowed at arrival, sealed and released exactly the way
// the real node runtime does it (Message.Own, then Release). With
// poison-on-release enabled, any borrowed slice the seal misses — or any
// retention of released buffer memory — corrupts deterministically and is
// caught by the ordering/digest assertions, instead of surfacing only
// under real network timing. Off by default: the engine benchmarks
// measure the engine, not the codec.
func WithWireCodec() Option {
	return func(c *Cluster) { c.codecPool = wire.NewBufPool(4 << 10) }
}

// WithRing enables ring dissemination (internal/ring) at every process:
// data payloads of at least threshold bytes travel the view-defined ring
// while ordering metadata stays point-to-point, exactly as the node
// runtime wires it. Implies WithWireCodec — messages are encoded at
// transmit time and decoded borrowed at arrival, so in-flight frames are
// bytes (as on a real link) and relay/arena aliasing is exercised under
// the same ownership rules as production.
func WithRing(threshold int) Option {
	return func(c *Cluster) {
		c.ringThreshold = threshold
		if c.codecPool == nil {
			c.codecPool = wire.NewBufPool(4 << 10)
		}
	}
}

// EventKind classifies a recorded history event.
type EventKind uint8

// History event kinds.
const (
	EvSubmit EventKind = iota + 1 // application multicast accepted
	EvDeliver
	EvView // view installation (index 0 = initial view)
	EvReady
	EvFormFailed
	EvSuspect
)

// Event is one observable local event at a process, in local occurrence
// order. The per-process sequence of events is the ground truth the
// property checkers (internal/check) verify MD1–MD5'/VC1–VC3 against.
type Event struct {
	Idx     int // position in the process's local history
	At      time.Time
	Kind    EventKind
	Group   types.GroupID
	Origin  types.ProcessID // EvDeliver: message author; EvSubmit: self
	Num     types.MsgNum    // EvDeliver: m.c
	Seq     uint64          // EvDeliver: origin sequence number
	ViewIdx int             // EvDeliver: view delivered in
	Payload []byte          // EvSubmit/EvDeliver
	View    types.View      // EvView
	Removed []types.ProcessID
	Susp    types.Suspicion // EvSuspect
}

// Delivery is one application delivery recorded at a process.
type Delivery struct {
	At      time.Time
	Group   types.GroupID
	Origin  types.ProcessID
	Num     types.MsgNum
	Seq     uint64
	View    int
	Index   uint64 // position in the group's delivery stream (types.LogPos index)
	Payload []byte
}

// ViewChange is one view installation recorded at a process.
type ViewChange struct {
	At      time.Time
	View    types.View
	Removed []types.ProcessID
}

// History is everything observable that happened at one process.
type History struct {
	Events     []Event
	Deliveries []Delivery
	Views      map[types.GroupID][]ViewChange
	Ready      []types.GroupID // groups that completed formation
	Failed     []types.GroupID // formations that failed
	Suspicions []types.Suspicion
}

func (h *History) record(ev Event) {
	ev.Idx = len(h.Events)
	h.Events = append(h.Events, ev)
}

// Cluster is a deterministic simulation of a set of Newtop processes.
type Cluster struct {
	latMin, latMax time.Duration
	tickEvery      time.Duration

	now      time.Time
	rng      *rand.Rand
	seq      uint64
	cal      calendar
	engines  map[types.ProcessID]*core.Engine
	hist     map[types.ProcessID]*History
	cut      map[[2]types.ProcessID]bool
	crashed  map[types.ProcessID]bool
	lastArr  map[[2]types.ProcessID]time.Time
	armKill  map[types.ProcessID]int // crash after N more transmissions
	msgCount uint64
	byteFn   func(*types.Message) int // optional size accounting
	bytes    uint64
	bytesBy  map[types.ProcessID]uint64

	// Ring dissemination (WithRing): one ring layer per process, sitting
	// between the engine and the link exactly where internal/node puts it.
	// ringQ holds reassembled deliveries that surfaced while an engine
	// effect batch was being routed — the batch aliases the engine's
	// reusable effects buffer, so the engine cannot be reentered until the
	// batch has been fully iterated.
	ringThreshold int
	rings         map[types.ProcessID]*ring.Ring
	ringQ         map[types.ProcessID][]ring.Delivered

	// deliverHook, when set, observes every application delivery (after it
	// is recorded). Hooks may reenter the cluster (Submit and friends) —
	// this is how the replicated-state-machine layer's pure cores are
	// driven deterministically; see internal/harness.
	deliverHook func(p types.ProcessID, d Delivery)

	// codecPool, when non-nil (WithWireCodec), carries every arrival
	// through a borrowed wire round trip.
	codecPool *wire.BufPool
}

// New creates an empty cluster with the given deterministic seed.
func New(seed int64, opts ...Option) *Cluster {
	c := &Cluster{
		latMin:  1 * time.Millisecond,
		latMax:  5 * time.Millisecond,
		now:     Epoch,
		rng:     rand.New(rand.NewSource(seed)),
		engines: make(map[types.ProcessID]*core.Engine),
		hist:    make(map[types.ProcessID]*History),
		cut:     make(map[[2]types.ProcessID]bool),
		crashed: make(map[types.ProcessID]bool),
		lastArr: make(map[[2]types.ProcessID]time.Time),
		armKill: make(map[types.ProcessID]int),
		bytesBy: make(map[types.ProcessID]uint64),
		rings:   make(map[types.ProcessID]*ring.Ring),
		ringQ:   make(map[types.ProcessID][]ring.Delivered),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Time { return c.now }

// AddProcess creates an engine with cfg and registers it. The first
// process's ω fixes the default tick interval.
func (c *Cluster) AddProcess(cfg core.Config) *core.Engine {
	if _, ok := c.engines[cfg.Self]; ok {
		panic(fmt.Sprintf("sim: duplicate process %v", cfg.Self))
	}
	e := core.NewEngine(cfg)
	c.engines[cfg.Self] = e
	c.hist[cfg.Self] = &History{Views: make(map[types.GroupID][]ViewChange)}
	if c.tickEvery == 0 {
		c.tickEvery = e.Omega() / 2
	}
	if c.ringThreshold > 0 {
		// Pull retries ride the tick cadence: a reassembly stuck for a few
		// ticks (header arrived, payload lost on the ring) re-requests the
		// payload from its disseminator well before the engine's
		// time-silence machinery would suspect anyone.
		pull := 4 * c.tickEvery
		if min := 2 * c.latMax; pull < min {
			pull = min
		}
		c.rings[cfg.Self] = ring.New(ring.Config{
			Self:      cfg.Self,
			Threshold: c.ringThreshold,
			PullAfter: pull,
		})
	}
	c.scheduleTick(cfg.Self, c.now.Add(c.tickEvery))
	return e
}

// Engine returns the engine of process p.
func (c *Cluster) Engine(p types.ProcessID) *core.Engine { return c.engines[p] }

// History returns the recorded history of process p.
func (c *Cluster) History(p types.ProcessID) *History { return c.hist[p] }

// Processes returns all process IDs, sorted.
func (c *Cluster) Processes() []types.ProcessID {
	out := make([]types.ProcessID, 0, len(c.engines))
	for p := range c.engines {
		out = append(out, p)
	}
	return types.SortProcesses(out)
}

// CountBytes turns on wire-size accounting using fn (e.g. wire.Size);
// TotalBytes reports the sum over every transmitted message.
func (c *Cluster) CountBytes(fn func(*types.Message) int) { c.byteFn = fn }

// OnDeliver registers fn to observe every application delivery. fn runs
// after the delivering engine's effect batch has been fully routed, so it
// may reenter the cluster (e.g. Submit from the delivering process) — the
// hook is the deterministic analogue of a per-group applier goroutine.
func (c *Cluster) OnDeliver(fn func(p types.ProcessID, d Delivery)) { c.deliverHook = fn }

// TotalBytes returns the accumulated transmitted bytes (CountBytes mode).
func (c *Cluster) TotalBytes() uint64 { return c.bytes }

// BytesSentBy returns the accumulated bytes transmitted by p (CountBytes
// mode) — the per-node NIC load the ring dissemination path exists to
// flatten.
func (c *Cluster) BytesSentBy(p types.ProcessID) uint64 { return c.bytesBy[p] }

// TotalMessages returns the number of point-to-point transmissions routed.
func (c *Cluster) TotalMessages() uint64 { return c.msgCount }

// Bootstrap installs a static group (§4 style) on every member at the
// current instant.
func (c *Cluster) Bootstrap(g types.GroupID, mode core.OrderMode, members []types.ProcessID) error {
	for _, p := range members {
		e, ok := c.engines[p]
		if !ok {
			return fmt.Errorf("sim: bootstrap of %v: no process %v", g, p)
		}
		effs, err := e.BootstrapGroup(c.now, g, mode, members)
		if err != nil {
			return fmt.Errorf("sim: bootstrap %v at %v: %w", g, p, err)
		}
		c.route(p, effs)
	}
	return nil
}

// Submit multicasts payload from p in group g at the current instant. The
// caller keeps its slice: the engine retains submitted payloads (log,
// in-flight messages), so the hand-off copies — the same contract as
// node.Submit, which is what lets callers feed it borrowed frames (e.g. an
// rsm core's arena-backed Submits).
func (c *Cluster) Submit(p types.ProcessID, g types.GroupID, payload []byte) error {
	e, ok := c.engines[p]
	if !ok || c.crashed[p] {
		return fmt.Errorf("sim: no live process %v", p)
	}
	if len(payload) > 0 {
		payload = append([]byte(nil), payload...)
	}
	effs, err := e.Submit(c.now, g, payload)
	if err != nil {
		return err
	}
	c.hist[p].record(Event{At: c.now, Kind: EvSubmit, Group: g, Origin: p, Payload: payload})
	c.route(p, effs)
	return nil
}

// CreateGroup initiates dynamic formation from p.
func (c *Cluster) CreateGroup(p types.ProcessID, g types.GroupID, mode core.OrderMode, members []types.ProcessID) error {
	e, ok := c.engines[p]
	if !ok || c.crashed[p] {
		return fmt.Errorf("sim: no live process %v", p)
	}
	effs, err := e.CreateGroup(c.now, g, mode, members)
	if err != nil {
		return err
	}
	c.route(p, effs)
	return nil
}

// Leave departs p from g.
func (c *Cluster) Leave(p types.ProcessID, g types.GroupID) error {
	e, ok := c.engines[p]
	if !ok || c.crashed[p] {
		return fmt.Errorf("sim: no live process %v", p)
	}
	effs, err := e.LeaveGroup(c.now, g)
	if err != nil {
		return err
	}
	c.route(p, effs)
	if r := c.rings[p]; r != nil {
		r.DropGroup(g)
	}
	return nil
}

// Crash stops p immediately (crash-stop): its engine receives no further
// events and its queued transmissions are lost.
func (c *Cluster) Crash(p types.ProcessID) { c.crashed[p] = true }

// CrashAfterSends arms a crash of p after it performs n more point-to-point
// transmissions — the paper's "multicast interrupted by the crash of the
// sender", leaving some destinations with the message and others without.
func (c *Cluster) CrashAfterSends(p types.ProcessID, n int) { c.armKill[p] = n }

// Disconnect cuts the bidirectional link a↔b; in-flight messages are lost.
func (c *Cluster) Disconnect(a, b types.ProcessID) {
	c.cut[[2]types.ProcessID{a, b}] = true
	c.cut[[2]types.ProcessID{b, a}] = true
}

// CutOneWay cuts only the a→b direction: messages from a to b are lost
// while b→a traffic still flows — the asymmetric loss a ring relay is
// most sensitive to (payload forwarded, acknowledgements returning).
// Reconnect(a, b) heals both directions.
func (c *Cluster) CutOneWay(a, b types.ProcessID) {
	c.cut[[2]types.ProcessID{a, b}] = true
}

// Reconnect heals the link a↔b.
func (c *Cluster) Reconnect(a, b types.ProcessID) {
	delete(c.cut, [2]types.ProcessID{a, b})
	delete(c.cut, [2]types.ProcessID{b, a})
}

// Partition splits the processes into islands, cutting every cross-island
// link and healing every intra-island link.
func (c *Cluster) Partition(islands ...[]types.ProcessID) {
	island := make(map[types.ProcessID]int)
	for i, ps := range islands {
		for _, p := range ps {
			island[p] = i + 1
		}
	}
	for a := range c.engines {
		for b := range c.engines {
			if a == b {
				continue
			}
			ia, oka := island[a]
			ib, okb := island[b]
			key := [2]types.ProcessID{a, b}
			switch {
			case oka && okb && ia == ib:
				delete(c.cut, key)
			case oka || okb:
				if !oka || !okb || ia != ib {
					c.cut[key] = true
				}
			}
		}
	}
}

// Heal removes every link cut.
func (c *Cluster) Heal() { c.cut = make(map[[2]types.ProcessID]bool) }

// At schedules fn to run at the given offset from the epoch (must not be
// in the simulated past).
func (c *Cluster) At(offset time.Duration, fn func()) {
	at := Epoch.Add(offset)
	if at.Before(c.now) {
		at = c.now
	}
	c.push(event{at: at, fn: fn})
}

// Run advances virtual time by d, dispatching every due event in
// deterministic order.
func (c *Cluster) Run(d time.Duration) {
	deadline := c.now.Add(d)
	for len(c.cal.h) > 0 {
		ev := c.cal.h[0]
		if ev.at.After(deadline) {
			break
		}
		c.cal.pop()
		if ev.at.After(c.now) {
			c.now = ev.at
		}
		c.dispatch(ev)
	}
	c.now = deadline
}

// RunUntil advances time in tick-sized steps until cond holds or the
// budget elapses; it returns whether cond held.
func (c *Cluster) RunUntil(budget time.Duration, cond func() bool) bool {
	deadline := c.now.Add(budget)
	for !cond() {
		if !c.now.Before(deadline) {
			return cond()
		}
		step := c.tickEvery
		if rem := deadline.Sub(c.now); rem < step {
			step = rem
		}
		c.Run(step)
	}
	return true
}

// ---------------------------------------------------------------------------
// Event plumbing
// ---------------------------------------------------------------------------

type event struct {
	at   time.Time
	seq  uint64 // FIFO tie-break for equal times
	from types.ProcessID
	to   types.ProcessID
	msg  *types.Message // in-flight message (codec off)
	// In codec mode the calendar holds encoded bytes, not live messages:
	// frames are marshalled at transmit time into a pooled buffer (as the
	// real transports do at enqueue) and decoded borrowed at arrival. The
	// event owns the buffer's reference until delivery or loss.
	encBuf *wire.Buf
	encLen int
	tick   bool
	fn     func()
}

func (c *Cluster) push(ev event) {
	c.seq++
	ev.seq = c.seq
	c.cal.push(ev)
}

func (c *Cluster) scheduleTick(p types.ProcessID, at time.Time) {
	c.push(event{at: at, to: p, tick: true})
}

func (c *Cluster) dispatch(ev event) {
	switch {
	case ev.fn != nil:
		ev.fn()
	case ev.tick:
		if c.crashed[ev.to] {
			return
		}
		e := c.engines[ev.to]
		c.route(ev.to, e.Tick(c.now))
		if r := c.rings[ev.to]; r != nil && !c.crashed[ev.to] {
			for _, o := range r.Tick(c.now) {
				c.transmit(ev.to, o.To, o.Msg)
			}
		}
		c.scheduleTick(ev.to, c.now.Add(c.tickEvery))
	default:
		// Message arrival: link cuts and receiver crashes apply at
		// arrival time (in-flight losses). A message already transmitted
		// by a process that crashed afterwards still arrives — crash-stop
		// interrupts future sends, not messages in flight (the paper's
		// partial multicast is modelled by CrashAfterSends).
		if c.crashed[ev.to] || c.cut[[2]types.ProcessID{ev.from, ev.to}] {
			if ev.encBuf != nil {
				ev.encBuf.Release()
			}
			return
		}
		e := c.engines[ev.to]
		m := ev.msg
		if ev.encBuf != nil {
			// The borrowed decode, sealed like internal/node does it:
			// decode aliasing the pooled transmit buffer, Own before the
			// engine retains it, Release (poisoning, in poison mode) after.
			dec, err := wire.UnmarshalBorrowed(ev.encBuf.Bytes()[:ev.encLen])
			if err != nil {
				ev.encBuf.Release()
				if errors.Is(err, wire.ErrTooLarge) {
					return // an over-limit payload is message loss, as on a real link
				}
				panic(fmt.Sprintf("sim: wire decode failed: %v", err))
			}
			if r := c.rings[ev.to]; r != nil {
				// Ring relay: forwarded frames alias the inbound borrowed
				// buffer; transmit re-encodes them before the Release, which
				// is the synchronous-marshal contract the real transports
				// provide at enqueue time.
				outs, delivers := r.OnReceive(c.now, ev.from, dec)
				for _, o := range outs {
					c.transmit(ev.to, o.To, o.Msg)
				}
				ev.encBuf.Release()
				for _, d := range delivers {
					if c.crashed[ev.to] {
						return
					}
					c.route(ev.to, e.HandleMessage(c.now, d.From, d.Msg))
				}
				return
			}
			dec.Own()
			ev.encBuf.Release()
			m = dec
		}
		c.route(ev.to, e.HandleMessage(c.now, ev.from, m))
	}
}

// route applies the effects produced by process p, honouring an armed
// crash-mid-multicast. Delivery hooks run only after the whole batch is
// routed: effs aliases the engine's reusable effects buffer, and a hook
// that reenters the engine (Submit) would clobber it mid-iteration.
func (c *Cluster) route(p types.ProcessID, effs []core.Effect) {
	var hooked []Delivery
	h := c.hist[p]
	for _, eff := range effs {
		if c.crashed[p] {
			return // crashed mid-effect-stream: remaining effects lost
		}
		switch eff := eff.(type) {
		case core.SendEffect:
			if n, armed := c.armKill[p]; armed {
				if n <= 0 {
					delete(c.armKill, p)
					c.Crash(p)
					return
				}
				c.armKill[p] = n - 1
			}
			if r := c.rings[p]; r != nil {
				for _, o := range r.OnSend(eff.To, eff.Msg) {
					c.transmit(p, o.To, o.Msg)
				}
			} else {
				c.transmit(p, eff.To, eff.Msg)
			}
		case core.DeliverEffect:
			d := Delivery{
				At:      c.now,
				Group:   eff.Msg.Group,
				Origin:  eff.Msg.Origin,
				Num:     eff.Msg.Num,
				Seq:     eff.Msg.Seq,
				View:    eff.View,
				Index:   eff.Index,
				Payload: eff.Msg.Payload,
			}
			h.Deliveries = append(h.Deliveries, d)
			h.record(Event{
				At: c.now, Kind: EvDeliver, Group: eff.Msg.Group,
				Origin: eff.Msg.Origin, Num: eff.Msg.Num, Seq: eff.Msg.Seq,
				ViewIdx: eff.View, Payload: eff.Msg.Payload,
			})
			if c.deliverHook != nil {
				hooked = append(hooked, d)
			}
		case core.ViewEffect:
			g := eff.View.Group
			h.Views[g] = append(h.Views[g], ViewChange{At: c.now, View: eff.View, Removed: eff.Removed})
			h.record(Event{At: c.now, Kind: EvView, Group: g, View: eff.View, Removed: eff.Removed})
			if r := c.rings[p]; r != nil {
				outs, delivers := r.OnViewChange(g, eff.View.Members, eff.Removed)
				for _, o := range outs {
					c.transmit(p, o.To, o.Msg)
				}
				c.ringQ[p] = append(c.ringQ[p], delivers...)
			}
		case core.GroupReadyEffect:
			h.Ready = append(h.Ready, eff.Group)
			h.record(Event{At: c.now, Kind: EvReady, Group: eff.Group})
			if r := c.rings[p]; r != nil {
				// A formed group's first view may arrive without a
				// ViewEffect; seed the ring order from the engine (a pure
				// read, safe mid-batch).
				if v, err := c.engines[p].View(eff.Group); err == nil {
					outs, delivers := r.OnViewChange(eff.Group, v.Members, nil)
					for _, o := range outs {
						c.transmit(p, o.To, o.Msg)
					}
					c.ringQ[p] = append(c.ringQ[p], delivers...)
				}
			}
		case core.FormationFailedEffect:
			h.Failed = append(h.Failed, eff.Group)
			h.record(Event{At: c.now, Kind: EvFormFailed, Group: eff.Group})
		case core.SuspectEffect:
			h.Suspicions = append(h.Suspicions, eff.Susp)
			h.record(Event{At: c.now, Kind: EvSuspect, Group: eff.Group, Susp: eff.Susp})
		}
	}
	c.drainRingQ(p)
	for _, d := range hooked {
		if c.crashed[p] {
			return
		}
		c.deliverHook(p, d)
	}
}

// drainRingQ feeds ring deliveries that were parked during effect routing
// into p's engine, now that the batch that produced them has been fully
// iterated. Handling one delivery may route effects that park more — the
// loop rechecks, and nested route calls drain the same shared queue.
func (c *Cluster) drainRingQ(p types.ProcessID) {
	for len(c.ringQ[p]) > 0 {
		if c.crashed[p] {
			delete(c.ringQ, p)
			return
		}
		q := c.ringQ[p]
		d := q[0]
		q[0] = ring.Delivered{}
		c.ringQ[p] = q[1:]
		if len(c.ringQ[p]) == 0 {
			delete(c.ringQ, p)
		}
		c.route(p, c.engines[p].HandleMessage(c.now, d.From, d.Msg))
	}
}

// transmit schedules the arrival of m at dest, preserving per-pair FIFO
// under randomised latency.
func (c *Cluster) transmit(from, to types.ProcessID, m *types.Message) {
	c.msgCount++
	if c.byteFn != nil {
		n := uint64(c.byteFn(m))
		c.bytes += n
		c.bytesBy[from] += n
	}
	lat := c.latMin
	if c.latMax > c.latMin {
		lat += time.Duration(c.rng.Int63n(int64(c.latMax - c.latMin)))
	}
	arr := c.now.Add(lat)
	key := [2]types.ProcessID{from, to}
	if last := c.lastArr[key]; arr.Before(last) {
		arr = last
	}
	c.lastArr[key] = arr
	ev := event{at: arr, from: from, to: to}
	if c.codecPool != nil {
		// Encode now, inside the sender's call — the caller (a ring relay,
		// or later an arena-backed engine) may recycle or release the
		// message's payload memory the moment transmit returns.
		buf := c.codecPool.Get(wire.Size(m))
		enc := wire.Marshal(buf.Bytes()[:0], m)
		ev.encBuf, ev.encLen = buf, len(enc)
	} else {
		ev.msg = m
	}
	c.push(ev)
}

// calendar is a time-ordered event min-heap (FIFO on equal instants,
// via the monotone seq tie-break). It is a concrete heap with inlined
// sift-up/down — the interface-based container/heap showed up as ~25% of
// the engine-benchmark CPU profile through boxing and indirect calls.
type calendar struct {
	h []event
}

// before is the heap order: earlier instant first, FIFO on ties.
func eventBefore(a, b *event) bool {
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	return a.seq < b.seq
}

func (c *calendar) push(ev event) {
	h := append(c.h, ev)
	c.h = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (c *calendar) pop() event {
	h := c.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	c.h = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && eventBefore(&h[r], &h[l]) {
			best = r
		}
		if !eventBefore(&h[best], &h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}
