package sim

import (
	"testing"
	"time"

	"newtop/internal/core"
	"newtop/internal/types"
	"newtop/internal/wire"
)

func twoProc(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c := New(seed, WithLatency(time.Millisecond, 2*time.Millisecond))
	for i := 1; i <= 2; i++ {
		c.AddProcess(core.Config{Self: types.ProcessID(i), Omega: 20 * time.Millisecond})
	}
	return c
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []Event {
		c := twoProc(t, 99)
		if err := c.Bootstrap(1, core.Symmetric, []types.ProcessID{1, 2}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := c.Submit(1, 1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			c.Run(7 * time.Millisecond)
		}
		c.Run(time.Second)
		return c.History(2).Events
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !a[i].At.Equal(b[i].At) || string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	c := twoProc(t, 1)
	start := c.Now()
	c.Run(123 * time.Millisecond)
	if got := c.Now().Sub(start); got != 123*time.Millisecond {
		t.Errorf("advanced %v, want 123ms", got)
	}
}

func TestAtSchedulesCallbacks(t *testing.T) {
	c := twoProc(t, 1)
	var fired []time.Duration
	c.At(50*time.Millisecond, func() { fired = append(fired, c.Now().Sub(Epoch)) })
	c.At(20*time.Millisecond, func() { fired = append(fired, c.Now().Sub(Epoch)) })
	c.Run(100 * time.Millisecond)
	if len(fired) != 2 || fired[0] != 20*time.Millisecond || fired[1] != 50*time.Millisecond {
		t.Errorf("callbacks fired at %v", fired)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	c := twoProc(t, 1)
	if err := c.Bootstrap(1, core.Symmetric, []types.ProcessID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	ok := c.RunUntil(10*time.Second, func() bool {
		return len(c.History(2).Deliveries) > 0
	})
	if !ok {
		t.Fatal("condition never held")
	}
	if c.Now().Sub(Epoch) >= 10*time.Second {
		t.Error("RunUntil consumed the whole budget despite early success")
	}
}

func TestCrashStopsEverything(t *testing.T) {
	c := twoProc(t, 2)
	if err := c.Bootstrap(1, core.Symmetric, []types.ProcessID{1, 2}); err != nil {
		t.Fatal(err)
	}
	c.Crash(2)
	if err := c.Submit(2, 1, []byte("x")); err == nil {
		t.Error("submit from crashed process accepted")
	}
	// P2 receives nothing after the crash.
	before := len(c.History(2).Events)
	_ = c.Submit(1, 1, []byte("y"))
	c.Run(time.Second)
	if got := len(c.History(2).Events); got != before {
		t.Errorf("crashed process gained %d events", got-before)
	}
}

func TestCrashAfterSendsPartialMulticast(t *testing.T) {
	c := New(3, WithLatency(time.Millisecond, 2*time.Millisecond))
	for i := 1; i <= 4; i++ {
		c.AddProcess(core.Config{Self: types.ProcessID(i), Omega: 20 * time.Millisecond})
	}
	if err := c.Bootstrap(1, core.Symmetric, []types.ProcessID{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	// P1's next multicast reaches only the first destination (P2).
	c.CrashAfterSends(1, 1)
	_ = c.Submit(1, 1, []byte("partial"))
	// The survivors must agree on the crashed sender's last message: P2
	// holds it, so the refute piggyback spreads it and ALL survivors
	// deliver it (atomicity resolves to "all", not "none", when a
	// connected process retains a copy).
	c.Run(5 * time.Second)
	for _, p := range []types.ProcessID{2, 3, 4} {
		n := 0
		for _, d := range c.History(p).Deliveries {
			if string(d.Payload) == "partial" {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%v delivered the partial multicast %d times, want exactly 1", p, n)
		}
	}
}

func TestDisconnectAndHealControls(t *testing.T) {
	// Three members: when the P1↔P2 link loses a message, P3 still holds
	// it and the gap heals through refutation+recovery.
	c := New(4, WithLatency(time.Millisecond, 2*time.Millisecond))
	for i := 1; i <= 3; i++ {
		c.AddProcess(core.Config{Self: types.ProcessID(i), Omega: 20 * time.Millisecond})
	}
	if err := c.Bootstrap(1, core.Symmetric, []types.ProcessID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	c.Disconnect(1, 2)
	_ = c.Submit(1, 1, []byte("lost-to-P2"))
	c.Run(50 * time.Millisecond)
	delivered := func(p types.ProcessID, payload string) bool {
		for _, d := range c.History(p).Deliveries {
			if string(d.Payload) == payload {
				return true
			}
		}
		return false
	}
	if delivered(2, "lost-to-P2") {
		t.Error("message crossed a cut link")
	}
	c.Heal()
	_ = c.Submit(1, 1, []byte("after-heal"))
	ok := c.RunUntil(30*time.Second, func() bool {
		return delivered(2, "lost-to-P2") && delivered(2, "after-heal")
	})
	if !ok {
		t.Error("post-heal recovery never completed at P2")
	}
}

func TestByteAccounting(t *testing.T) {
	c := twoProc(t, 5)
	c.CountBytes(wire.Size)
	if err := c.Bootstrap(1, core.Symmetric, []types.ProcessID{1, 2}); err != nil {
		t.Fatal(err)
	}
	_ = c.Submit(1, 1, []byte("hello"))
	c.Run(200 * time.Millisecond)
	if c.TotalMessages() == 0 {
		t.Error("no messages counted")
	}
	if c.TotalBytes() == 0 {
		t.Error("no bytes counted")
	}
	if c.TotalBytes() < c.TotalMessages() {
		t.Error("bytes < messages: accounting broken")
	}
}

func TestProcessesSorted(t *testing.T) {
	c := New(1)
	for _, id := range []types.ProcessID{5, 2, 9} {
		c.AddProcess(core.Config{Self: id, Omega: time.Millisecond})
	}
	ps := c.Processes()
	if len(ps) != 3 || ps[0] != 2 || ps[1] != 5 || ps[2] != 9 {
		t.Errorf("Processes() = %v", ps)
	}
}

// TestWireCodecTransparent pins the WithWireCodec contract: routing every
// arrival through a borrowed wire round trip — sealed and released with
// poison-on-release enabled, exactly as the node runtime handles borrowed
// stimuli — must be observably identical to handing messages over by
// reference. Any divergence means either a codec gap or a borrowed slice
// the seal missed.
func TestWireCodecTransparent(t *testing.T) {
	prev := wire.SetPoisonOnRelease(true)
	defer wire.SetPoisonOnRelease(prev)

	run := func(opts ...Option) []Delivery {
		c := New(7, append([]Option{WithLatency(time.Millisecond, 2*time.Millisecond)}, opts...)...)
		for i := 1; i <= 3; i++ {
			c.AddProcess(core.Config{Self: types.ProcessID(i), Omega: 20 * time.Millisecond})
		}
		if err := c.Bootstrap(1, core.Symmetric, []types.ProcessID{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			p := types.ProcessID(i%3 + 1)
			if err := c.Submit(p, 1, []byte{'m', byte(p), byte(i)}); err != nil {
				t.Fatal(err)
			}
			c.Run(5 * time.Millisecond)
		}
		c.Run(500 * time.Millisecond)
		return c.History(2).Deliveries
	}

	plain := run()
	codec := run(WithWireCodec())
	if len(plain) != len(codec) {
		t.Fatalf("delivery counts diverge: %d by reference, %d through the codec", len(plain), len(codec))
	}
	for i := range plain {
		if plain[i].Origin != codec[i].Origin || plain[i].Seq != codec[i].Seq ||
			string(plain[i].Payload) != string(codec[i].Payload) {
			t.Fatalf("delivery %d diverges: %+v vs %+v", i, plain[i], codec[i])
		}
	}
}
