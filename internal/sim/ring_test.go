package sim_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"newtop/internal/check"
	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
	"newtop/internal/wire"
)

// ringPayload builds a self-describing payload: a unique tag, a colon, and
// a filler whose bytes are a pure function of position and tag length.
// verifyRingPayload can then detect any corruption — a relay writing into
// a released buffer, an arena slot recycled too early — without the test
// keeping a copy of every payload.
func ringPayload(tag string, size int) []byte {
	b := make([]byte, 0, size)
	b = append(b, tag...)
	b = append(b, ':')
	for i := len(b); i < size; i++ {
		b = append(b, byte('a'+(i*7+len(tag))%26))
	}
	return b
}

func verifyRingPayload(t *testing.T, p types.ProcessID, payload []byte) {
	t.Helper()
	i := bytes.IndexByte(payload, ':')
	if i < 0 {
		t.Fatalf("%v delivered unrecognisable payload (%d bytes)", p, len(payload))
	}
	want := ringPayload(string(payload[:i]), len(payload))
	if !bytes.Equal(payload, want) {
		t.Fatalf("%v delivered corrupted payload %q...", p, payload[:i+8])
	}
}

func addN(c *sim.Cluster, n int) []types.ProcessID {
	ps := make([]types.ProcessID, 0, n)
	for i := 1; i <= n; i++ {
		p := types.ProcessID(i)
		c.AddProcess(core.Config{Self: p, Omega: 20 * time.Millisecond})
		ps = append(ps, p)
	}
	return ps
}

// The acceptance criterion of the ring path: at n=9 with 16 KiB payloads,
// the originator's transmitted bytes must be at least 4× lower than with
// direct per-member sends, with every member still delivering every
// payload intact.
func TestRingBandwidthAdvantage(t *testing.T) {
	const (
		n          = 9
		msgs       = 10
		payloadLen = 16 << 10
	)
	run := func(ringThreshold int) uint64 {
		opts := []sim.Option{sim.WithLatency(time.Millisecond, 3*time.Millisecond)}
		if ringThreshold > 0 {
			opts = append(opts, sim.WithRing(ringThreshold))
		} else {
			opts = append(opts, sim.WithWireCodec())
		}
		c := sim.New(42, opts...)
		ps := addN(c, n)
		c.CountBytes(wire.Size)
		if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
			t.Fatal(err)
		}
		c.Run(50 * time.Millisecond)
		for i := 0; i < msgs; i++ {
			tag := fmt.Sprintf("bw-%d", i)
			if err := c.Submit(1, 1, ringPayload(tag, payloadLen)); err != nil {
				t.Fatal(err)
			}
			c.Run(40 * time.Millisecond)
		}
		c.Run(2 * time.Second)
		for _, p := range ps {
			var got int
			for _, d := range c.History(p).Deliveries {
				if len(d.Payload) == payloadLen {
					got++
					verifyRingPayload(t, p, d.Payload)
				}
			}
			if got != msgs {
				t.Fatalf("ring=%v: %v delivered %d/%d large payloads", ringThreshold > 0, p, got, msgs)
			}
		}
		return c.BytesSentBy(1)
	}

	direct := run(0)
	ring := run(1024)
	if ring*4 > direct {
		t.Fatalf("originator sent %d bytes via ring vs %d direct — want ≥4× reduction (got %.1f×)",
			ring, direct, float64(direct)/float64(ring))
	}
	t.Logf("originator bytes: direct=%d ring=%d (%.1f× reduction)", direct, ring, float64(direct)/float64(ring))
}

// Ring and direct dissemination must deliver the identical message set to
// every process on the same seed — the ring changes how payloads travel,
// never what is delivered — and within each run all members must agree on
// the delivery order.
func TestRingDeliveryMatchesDirect(t *testing.T) {
	sizes := []int{64, 20 << 10, 300, 8 << 10, 2048, 100, 5 << 10}
	run := func(ringThreshold int) map[types.ProcessID][]string {
		opts := []sim.Option{sim.WithLatency(time.Millisecond, 3*time.Millisecond)}
		if ringThreshold > 0 {
			opts = append(opts, sim.WithRing(ringThreshold))
		} else {
			opts = append(opts, sim.WithWireCodec())
		}
		c := sim.New(7, opts...)
		ps := addN(c, 5)
		if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
			t.Fatal(err)
		}
		c.Run(50 * time.Millisecond)
		id := 0
		for round := 0; round < 4; round++ {
			for _, src := range ps {
				tag := fmt.Sprintf("m-%v-%d", src, id)
				id++
				if err := c.Submit(src, 1, ringPayload(tag, sizes[id%len(sizes)])); err != nil {
					t.Fatal(err)
				}
				c.Run(10 * time.Millisecond)
			}
		}
		c.Run(3 * time.Second)
		out := make(map[types.ProcessID][]string)
		for _, p := range ps {
			for _, d := range c.History(p).Deliveries {
				verifyRingPayload(t, p, d.Payload)
				i := bytes.IndexByte(d.Payload, ':')
				out[p] = append(out[p], string(d.Payload[:i]))
			}
		}
		// Within-run total order: every member sees the same sequence.
		for _, p := range ps[1:] {
			if len(out[p]) != len(out[ps[0]]) {
				t.Fatalf("ring=%v: %v delivered %d, %v delivered %d",
					ringThreshold > 0, ps[0], len(out[ps[0]]), p, len(out[p]))
			}
			for i := range out[p] {
				if out[p][i] != out[ps[0]][i] {
					t.Fatalf("ring=%v: order diverges at %d: %q vs %q",
						ringThreshold > 0, i, out[ps[0]][i], out[p][i])
				}
			}
		}
		return out
	}

	direct := run(0)
	ring := run(1024)
	for p, want := range direct {
		got := ring[p]
		wantSet := make(map[string]int)
		gotSet := make(map[string]int)
		for _, s := range want {
			wantSet[s]++
		}
		for _, s := range got {
			gotSet[s]++
		}
		if len(wantSet) != len(gotSet) {
			t.Fatalf("%v: direct delivered %d distinct messages, ring %d", p, len(wantSet), len(gotSet))
		}
		for s, n := range wantSet {
			if gotSet[s] != n {
				t.Fatalf("%v: message %q delivered %d times via ring, %d direct", p, s, gotSet[s], n)
			}
		}
	}
}

// Randomized ring soak: large and small payloads, a crash, a one-way link
// loss and the resulting view changes, all mid-dissemination. Every MD/VC
// property must hold, no payload may be lost or duplicated among what the
// checkers admit, and every delivered payload must be bit-intact.
func TestRingSoakRandomized(t *testing.T) {
	seeds := []int64{21, 22, 23, 24, 25, 26}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ringSoakOnce(t, seed)
		})
	}
}

func ringSoakOnce(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const n = 7
	c := sim.New(seed,
		sim.WithRing(2048),
		sim.WithLatency(time.Millisecond, 4*time.Millisecond))
	ps := addN(c, n)
	if err := c.Bootstrap(1, core.Symmetric, ps); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)

	// One crash (never P1) in the middle of the traffic phase, plus one
	// one-way link loss that heals later — mid-flight ring frames are lost
	// on both, exercising pull-retry, re-dissemination on the new ring and
	// the engine's gap recovery.
	victim := ps[1+rng.Intn(n-1)]
	crashAt := time.Duration(150+rng.Intn(300)) * time.Millisecond
	c.At(crashAt, func() { c.Crash(victim) })
	a, b := ps[rng.Intn(n)], ps[rng.Intn(n)]
	for b == a {
		b = ps[rng.Intn(n)]
	}
	c.At(120*time.Millisecond, func() { c.CutOneWay(a, b) })
	c.At(700*time.Millisecond, func() { c.Reconnect(a, b) })

	id := 0
	for round := 0; round < 25; round++ {
		src := ps[rng.Intn(n)]
		size := 16 + rng.Intn(64)
		if rng.Intn(2) == 0 {
			size = 4096 + rng.Intn(28<<10) // above threshold: rides the ring
		}
		tag := fmt.Sprintf("s%d-%d", seed, id)
		id++
		at := time.Duration(60+rng.Intn(600)) * time.Millisecond
		pl := ringPayload(tag, size)
		c.At(at, func() { _ = c.Submit(src, 1, pl) }) // errors fine post-crash
	}
	c.Run(2 * time.Second)
	c.Run(3 * time.Second) // settle membership and delivery

	if err := check.New(c, []types.ProcessID{victim}).All().Err(); err != nil {
		t.Fatal(err)
	}

	// Payload integrity and per-process no-dup everywhere.
	delivered := 0
	for _, p := range ps {
		seen := make(map[string]bool)
		for _, d := range c.History(p).Deliveries {
			verifyRingPayload(t, p, d.Payload)
			i := bytes.IndexByte(d.Payload, ':')
			tag := string(d.Payload[:i])
			if seen[tag] {
				t.Fatalf("%v delivered %q twice", p, tag)
			}
			seen[tag] = true
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("soak delivered nothing")
	}
}
