package capacity

import (
	"testing"
	"time"

	"newtop/internal/workload"
)

// TestFleetSmoke drives a low open-loop rate through the real 3-daemon
// TCP fleet — the production client wire path end to end — and requires
// clean completion: no errors, no stranded ops, no unexplained drops, and
// a p99 that at least cleared the histogram.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real daemon fleet")
	}
	f, err := StartFleet(FleetConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := len(f.Addrs()); got != 3 {
		t.Fatalf("fleet exposes %d client endpoints, want 3", got)
	}
	res, err := Run(DriverConfig{
		Addrs:        f.Addrs(),
		Sessions:     4,
		Arrivals:     workload.Poisson{OpsPerSec: 100, Seed: 42},
		Duration:     1500 * time.Millisecond,
		DrainTimeout: 10 * time.Second,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Completed != res.Scheduled {
		t.Fatalf("completed %d of %d scheduled ops (errors=%d unfinished=%d)",
			res.Completed, res.Scheduled, res.Errors, res.Unfinished)
	}
	if res.P99 <= 0 {
		t.Fatalf("no latency recorded: %+v", res)
	}
	if n, label := f.UnexplainedDrops(); n > 0 {
		t.Fatalf("%d unexplained drops (%s)", n, label)
	}
}

// TestShardedFleetSmoke boots the sharded fleet shape (daemons serving
// several shard groups behind the meta-group map) and drives the same
// clean open-loop smoke through the routing client fleet.
func TestShardedFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real daemon fleet")
	}
	f, err := StartFleet(FleetConfig{Seed: 42, Daemons: 3, Shards: 2, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got, want := f.Name(), "fleet-3tcp-2shard"; got != want {
		t.Fatalf("fleet name %q, want %q", got, want)
	}
	res, err := Run(DriverConfig{
		Addrs:        f.Addrs(),
		Sessions:     4,
		Arrivals:     workload.Poisson{OpsPerSec: 100, Seed: 42},
		Duration:     1500 * time.Millisecond,
		DrainTimeout: 10 * time.Second,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Completed != res.Scheduled {
		t.Fatalf("completed %d of %d scheduled ops (errors=%d unfinished=%d)",
			res.Completed, res.Scheduled, res.Errors, res.Unfinished)
	}
	if res.ReadP99 <= 0 || res.WriteP99 <= 0 {
		t.Fatalf("per-kind latency not recorded: r99=%v w99=%v", res.ReadP99, res.WriteP99)
	}
	if n, label := f.UnexplainedDrops(); n > 0 {
		t.Fatalf("%d unexplained drops (%s)", n, label)
	}
}
