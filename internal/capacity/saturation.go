package capacity

import (
	"errors"
	"fmt"
	"time"

	"newtop/internal/workload"
)

// SLO is the predicate a trial's offered rate must meet to count as
// sustainable.
type SLO struct {
	// P99 is the overall tail-latency bound (required).
	P99 time.Duration
	// ReadP99 and WriteP99 bound the per-op-kind tails separately when
	// set (0 disables the check). Reads and writes degrade differently —
	// a routed read barrier-upgrades after a shard move, a large write
	// pays ring dissemination — and a blended p99 dominated by the
	// plentiful kind can hide the other kind collapsing.
	ReadP99  time.Duration
	WriteP99 time.Duration
	// MaxErrorFrac is the tolerated errored share of scheduled ops
	// (default 0: any error fails the trial).
	MaxErrorFrac float64
	// MaxUnfinishedFrac is the tolerated share of scheduled ops still
	// queued when the drain window closed (default 0.01). A saturated run
	// strands most of its backlog — this is the load-shedding signal.
	MaxUnfinishedFrac float64
}

func (s SLO) withDefaults() SLO {
	if s.MaxUnfinishedFrac <= 0 {
		s.MaxUnfinishedFrac = 0.01
	}
	return s
}

// Check evaluates the predicate against one trial result plus the
// unexplained-drop delta observed across it. The empty reason means pass.
func (s SLO) Check(res DriverResult, dropsDelta uint64, dropLabel string) string {
	s = s.withDefaults()
	if dropsDelta > 0 {
		return fmt.Sprintf("%d unexplained drops (%s)", dropsDelta, dropLabel)
	}
	if res.Scheduled == 0 {
		return "no ops scheduled"
	}
	if frac := float64(res.Errors) / float64(res.Scheduled); frac > s.MaxErrorFrac {
		return fmt.Sprintf("error fraction %.4f > %.4f", frac, s.MaxErrorFrac)
	}
	if frac := float64(res.Unfinished) / float64(res.Scheduled); frac > s.MaxUnfinishedFrac {
		return fmt.Sprintf("unfinished fraction %.4f > %.4f", frac, s.MaxUnfinishedFrac)
	}
	if res.P99 > s.P99 {
		return fmt.Sprintf("p99 %v > SLO %v", res.P99, s.P99)
	}
	if s.ReadP99 > 0 && res.ReadP99 > s.ReadP99 {
		return fmt.Sprintf("read p99 %v > SLO %v", res.ReadP99, s.ReadP99)
	}
	if s.WriteP99 > 0 && res.WriteP99 > s.WriteP99 {
		return fmt.Sprintf("write p99 %v > SLO %v", res.WriteP99, s.WriteP99)
	}
	return ""
}

// SearchConfig tunes the saturation binary search.
type SearchConfig struct {
	// Driver is the per-trial configuration; Arrivals is replaced each
	// trial by TrialArrivals(rate).
	Driver DriverConfig
	// SLO is the sustainability predicate.
	SLO SLO
	// LoRate and HiRate bracket the search in ops/s. LoRate must meet the
	// SLO (otherwise the result is zero with the failing trial attached);
	// if HiRate still meets it the search reports HiRate and a zero
	// ceiling — widen the bracket.
	LoRate, HiRate float64
	// Tolerance stops the bisection once (hi-lo)/lo falls under it
	// (default 0.15).
	Tolerance float64
	// MaxTrials bounds the total trial count (default 12).
	MaxTrials int
	// TrialArrivals builds the arrival process for one trial (default:
	// Poisson seeded by Driver.Seed + trial index).
	TrialArrivals func(rate float64, trial int) workload.ArrivalProcess
	// Drops, when set, reads the cluster's cumulative unexplained-drop
	// count (e.g. Fleet.UnexplainedDrops); the search diffs it across
	// each trial.
	Drops func() (uint64, string)
	// Setup, when set, provisions a fresh cluster for every trial and
	// returns its endpoints, an unexplained-drop reader and a teardown.
	// An overloaded trial leaves a backlog the cluster can take tens of
	// seconds to chew through; probing the next rate against the same
	// cluster would measure that hangover, not the rate. Driver.Addrs
	// and Drops are ignored when Setup is set.
	Setup func() (addrs []string, drops func() (uint64, string), teardown func(), err error)
	// Logf, when set, narrates the trials.
	Logf func(format string, args ...any)
}

// Trial is one probed rate.
type Trial struct {
	Rate   float64
	Result DriverResult
	OK     bool
	Reason string // why the SLO failed ("" when OK)
}

// SearchResult is the saturation analysis outcome.
type SearchResult struct {
	// Sustainable is the highest probed rate that met the SLO.
	Sustainable float64
	// Ceiling is the lowest probed rate that failed it (0 when nothing
	// failed, i.e. HiRate is sustainable).
	Ceiling float64
	// Trials lists every probe in execution order.
	Trials []Trial
}

// FindSaturation binary-searches the maximum sustainable offered rate:
// the highest rate whose open-loop trial still meets the SLO. Rates above
// the true capacity fail loudly under an open loop — the backlog the
// cluster cannot drain turns into tail latency and unfinished ops —
// which is exactly the collapse a closed loop would have hidden.
func FindSaturation(cfg SearchConfig) (SearchResult, error) {
	if cfg.SLO.P99 <= 0 {
		return SearchResult{}, errors.New("capacity: SLO.P99 is required")
	}
	if cfg.LoRate <= 0 || cfg.HiRate <= cfg.LoRate {
		return SearchResult{}, fmt.Errorf("capacity: bad search bracket [%v, %v]", cfg.LoRate, cfg.HiRate)
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.15
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = 12
	}
	if cfg.TrialArrivals == nil {
		cfg.TrialArrivals = func(rate float64, trial int) workload.ArrivalProcess {
			return workload.Poisson{OpsPerSec: rate, Seed: cfg.Driver.Seed + int64(trial)}
		}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var out SearchResult
	lastDrops := uint64(0)
	if cfg.Setup == nil && cfg.Drops != nil {
		lastDrops, _ = cfg.Drops()
	}
	probe := func(rate float64) (Trial, error) {
		dc := cfg.Driver
		drops := cfg.Drops
		if cfg.Setup != nil {
			addrs, d, teardown, err := cfg.Setup()
			if err != nil {
				return Trial{}, fmt.Errorf("capacity: trial setup: %w", err)
			}
			if teardown != nil {
				defer teardown()
			}
			dc.Addrs, drops = addrs, d
			lastDrops = 0
			if drops != nil {
				lastDrops, _ = drops()
			}
		}
		dc.Arrivals = cfg.TrialArrivals(rate, len(out.Trials))
		dc.ClosedLoop = false
		res, err := Run(dc)
		if err != nil {
			return Trial{}, err
		}
		var delta uint64
		var label string
		if drops != nil {
			cur, l := drops()
			delta, label = cur-lastDrops, l
			lastDrops = cur
		}
		reason := cfg.SLO.Check(res, delta, label)
		tr := Trial{Rate: rate, Result: res, OK: reason == "", Reason: reason}
		out.Trials = append(out.Trials, tr)
		logf("capacity: trial %d @ %.0f ops/s: p99=%v completed=%d errors=%d unfinished=%d -> %s",
			len(out.Trials), rate, res.P99, res.Completed, res.Errors, res.Unfinished, trialVerdict(tr))
		return tr, nil
	}

	lo, err := probe(cfg.LoRate)
	if err != nil {
		return out, err
	}
	if !lo.OK {
		// Even the floor rate violates the SLO: saturation is below the
		// bracket. Report zero sustainable so callers see it immediately.
		out.Ceiling = cfg.LoRate
		return out, nil
	}
	out.Sustainable = cfg.LoRate
	hi, err := probe(cfg.HiRate)
	if err != nil {
		return out, err
	}
	if hi.OK {
		out.Sustainable = cfg.HiRate
		return out, nil
	}
	out.Ceiling = cfg.HiRate

	loRate, hiRate := cfg.LoRate, cfg.HiRate
	for len(out.Trials) < cfg.MaxTrials && (hiRate-loRate) > cfg.Tolerance*loRate {
		mid := (loRate + hiRate) / 2
		tr, err := probe(mid)
		if err != nil {
			return out, err
		}
		if tr.OK {
			loRate = mid
			out.Sustainable = mid
		} else {
			hiRate = mid
			out.Ceiling = mid
		}
	}
	return out, nil
}

func trialVerdict(tr Trial) string {
	if tr.OK {
		return "ok"
	}
	return "FAIL: " + tr.Reason
}
