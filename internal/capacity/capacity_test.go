package capacity

import (
	"bufio"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"newtop/internal/clientproto"
	"newtop/internal/workload"
)

// fakeCluster is a clientproto-speaking KV with a configurable per-op
// service time — a cluster whose theoretical capacity is exactly
// sessions/serviceTime, which is what the collapse and saturation tests
// need to pin the driver's behavior against known ground truth. Each
// connection is served serially, like a real session's pinned daemon.
type fakeCluster struct {
	t       *testing.T
	lns     []net.Listener
	service time.Duration
	stall   chan struct{} // non-nil: block every op until closed

	mu    sync.Mutex
	conns []net.Conn
}

func newFakeCluster(t *testing.T, daemons int, service time.Duration, stalled bool) *fakeCluster {
	t.Helper()
	f := &fakeCluster{t: t, service: service}
	if stalled {
		f.stall = make(chan struct{})
	}
	for i := 0; i < daemons; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.lns = append(f.lns, ln)
		go f.serve(ln)
	}
	t.Cleanup(f.close)
	return f
}

func (f *fakeCluster) addrs() []string {
	out := make([]string, len(f.lns))
	for i, ln := range f.lns {
		out[i] = ln.Addr().String()
	}
	return out
}

func (f *fakeCluster) close() {
	if f.stall != nil {
		select {
		case <-f.stall:
		default:
			close(f.stall)
		}
	}
	for _, ln := range f.lns {
		_ = ln.Close()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.conns {
		_ = c.Close()
	}
}

func (f *fakeCluster) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		f.conns = append(f.conns, conn)
		f.mu.Unlock()
		go func() {
			defer func() { _ = conn.Close() }()
			br := bufio.NewReader(conn)
			var store sync.Map
			for {
				body, err := clientproto.ReadFrame(br, nil)
				if err != nil {
					return
				}
				req, err := clientproto.ParseRequest(body)
				if err != nil {
					return
				}
				if f.stall != nil {
					<-f.stall
					return
				}
				if f.service > 0 {
					time.Sleep(f.service)
				}
				resp := &clientproto.Response{Status: clientproto.StOK, Found: true}
				switch req.Op {
				case clientproto.OpPut:
					store.Store(req.Key, req.Value)
				case clientproto.OpGet, clientproto.OpBarrierGet:
					if v, ok := store.Load(req.Key); ok {
						resp.Value = v.(string)
					} else {
						resp.Found = false
					}
				}
				if _, err := conn.Write(clientproto.AppendResponse(nil, resp)); err != nil {
					return
				}
			}
		}()
	}
}

// TestOpenLoopNeverSkipsArrivals pins the driver's core contract: a
// cluster that stops answering entirely cannot make the scheduler skip or
// delay a single arrival — every scheduled op fires on time and is
// accounted for as unfinished when the drain cutoff hits.
func TestOpenLoopNeverSkipsArrivals(t *testing.T) {
	f := newFakeCluster(t, 1, 0, true)
	res, err := Run(DriverConfig{
		Addrs:        f.addrs(),
		Sessions:     4,
		Arrivals:     workload.FixedRate{OpsPerSec: 500},
		Duration:     400 * time.Millisecond,
		DrainTimeout: 300 * time.Millisecond,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(200); res.Scheduled != want {
		t.Fatalf("scheduled %d arrivals against the stalled cluster, want all %d", res.Scheduled, want)
	}
	if res.MaxSchedLag > 100*time.Millisecond {
		t.Fatalf("scheduler fell %v behind its own schedule", res.MaxSchedLag)
	}
	if res.Completed != 0 {
		t.Fatalf("stalled cluster completed %d ops", res.Completed)
	}
	if got := res.Errors + res.Unfinished; got != res.Scheduled {
		t.Fatalf("accounting leak: errors+unfinished = %d, scheduled = %d", got, res.Scheduled)
	}
	if res.Unfinished < res.Scheduled*9/10 {
		t.Fatalf("expected the backlog counted unfinished, got unfinished=%d errors=%d", res.Unfinished, res.Errors)
	}
	// The drain cutoff plus interruptible client backoffs must bound the
	// run: schedule window + drain timeout + shutdown slack.
	if res.Elapsed > 3*time.Second {
		t.Fatalf("run against stalled cluster took %v", res.Elapsed)
	}
}

// TestOpenLoopExposesCollapseClosedLoopHides is the acceptance pin for the
// whole harness: offered load at 2x a known capacity makes open-loop p99
// grow with run length (the backlog, measured from intended start, turns
// into latency), while a closed loop against the same cluster
// self-throttles and reports service-time latency forever.
func TestOpenLoopExposesCollapseClosedLoopHides(t *testing.T) {
	const service = 5 * time.Millisecond
	const sessions = 2 // capacity = sessions/service = 400 ops/s
	f := newFakeCluster(t, 1, service, false)
	base := DriverConfig{
		Addrs:        f.addrs(),
		Sessions:     sessions,
		DrainTimeout: 10 * time.Second, // let the backlog fully drain: its delay IS the measurement
		Seed:         7,
	}

	openAt := func(d time.Duration) DriverResult {
		cfg := base
		cfg.Duration = d
		cfg.Arrivals = workload.FixedRate{OpsPerSec: 800} // 2x capacity
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors > 0 || res.Unfinished > 0 {
			t.Fatalf("open-loop run at %v: errors=%d unfinished=%d", d, res.Errors, res.Unfinished)
		}
		return res
	}
	short := openAt(300 * time.Millisecond)
	long := openAt(900 * time.Millisecond)

	closedCfg := base
	closedCfg.Duration = 900 * time.Millisecond
	closedCfg.ClosedLoop = true
	closed, err := Run(closedCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Closed loop: latency is service time plus overhead, no matter that
	// the cluster is at its capacity ceiling.
	if closed.P99 > 20*service {
		t.Fatalf("closed-loop p99 = %v, expected near the %v service time", closed.P99, service)
	}
	// Open loop above saturation: the backlog dominates. The last arrival
	// in a T-long window waits about T at 2x capacity.
	if long.P99 < 5*closed.P99 {
		t.Fatalf("open-loop p99 %v does not dwarf closed-loop p99 %v at the same offered cluster", long.P99, closed.P99)
	}
	if long.P99 < 300*time.Millisecond {
		t.Fatalf("open-loop p99 = %v above saturation, expected backlog-dominated latency", long.P99)
	}
	// ... and it RISES with run length instead of plateauing.
	if long.P99 < 2*short.P99 {
		t.Fatalf("open-loop p99 did not rise with run length: %v (900ms window) vs %v (300ms window)", long.P99, short.P99)
	}
}

// TestFindSaturationLandsNearCapacity points the binary search at a
// cluster with known ground truth (4 sessions x 2ms service = 2000 ops/s)
// and checks it converges into the right neighborhood.
func TestFindSaturationLandsNearCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second search")
	}
	const service = 2 * time.Millisecond
	const capacity = 2000.0 // 4 sessions / 2ms
	f := newFakeCluster(t, 1, service, false)
	res, err := FindSaturation(SearchConfig{
		Driver: DriverConfig{
			Addrs:        f.addrs(),
			Sessions:     4,
			Duration:     500 * time.Millisecond,
			DrainTimeout: time.Second,
			Seed:         11,
		},
		SLO:       SLO{P99: 50 * time.Millisecond},
		LoRate:    500,
		HiRate:    4000,
		Tolerance: 0.3,
		MaxTrials: 7,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) < 3 {
		t.Fatalf("search gave up after %d trials", len(res.Trials))
	}
	if !res.Trials[0].OK {
		t.Fatalf("floor rate failed the SLO: %s", res.Trials[0].Reason)
	}
	if res.Sustainable < 0.4*capacity || res.Sustainable > 1.35*capacity {
		t.Fatalf("sustainable %.0f ops/s not near the %.0f ops/s ground truth", res.Sustainable, capacity)
	}
	if res.Ceiling <= res.Sustainable {
		t.Fatalf("ceiling %.0f not above sustainable %.0f", res.Ceiling, res.Sustainable)
	}
}

func TestSLOCheck(t *testing.T) {
	slo := SLO{P99: 50 * time.Millisecond}
	ok := DriverResult{Scheduled: 1000, Completed: 1000, P99: 10 * time.Millisecond}
	if reason := slo.Check(ok, 0, ""); reason != "" {
		t.Fatalf("healthy result failed: %s", reason)
	}
	cases := []struct {
		name  string
		res   DriverResult
		drops uint64
	}{
		{"unexplained drops", ok, 3},
		{"p99 blown", DriverResult{Scheduled: 1000, Completed: 1000, P99: 51 * time.Millisecond}, 0},
		{"errors", DriverResult{Scheduled: 1000, Completed: 990, Errors: 10, P99: time.Millisecond}, 0},
		{"unfinished", DriverResult{Scheduled: 1000, Completed: 900, Unfinished: 100, P99: time.Millisecond}, 0},
		{"empty run", DriverResult{}, 0},
	}
	for _, tc := range cases {
		if reason := slo.Check(tc.res, tc.drops, `layer="x",reason="y"`); reason == "" {
			t.Errorf("%s: SLO passed, want failure", tc.name)
		}
	}
}

func TestReportGateRoundTrip(t *testing.T) {
	smoke := RatePoint{Arrivals: "fixed@150", OfferedRate: 150, P99NS: (10 * time.Millisecond).Nanoseconds()}
	rep := NewReport([]ConfigResult{{Name: "fleet-3tcp", Daemons: 3, Sessions: 8, Smoke: &smoke}})
	path := filepath.Join(t.TempDir(), "BENCH_capacity.json")
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Config("fleet-3tcp"); got == nil || got.Smoke == nil || got.Smoke.P99NS != smoke.P99NS {
		t.Fatalf("round trip lost the smoke point: %+v", got)
	}

	pass := DriverResult{Scheduled: 300, Completed: 300, P99: 12 * time.Millisecond}
	if err := Gate(loaded, "fleet-3tcp", pass, 2); err != nil {
		t.Fatalf("within-budget result failed the gate: %v", err)
	}
	// 2x baseline + 5ms slack = 25ms budget.
	slow := DriverResult{Scheduled: 300, Completed: 300, P99: 40 * time.Millisecond}
	if err := Gate(loaded, "fleet-3tcp", slow, 2); err == nil {
		t.Fatal("3x p99 regression passed the gate")
	}
	errored := DriverResult{Scheduled: 300, Completed: 299, Errors: 1, P99: time.Millisecond}
	if err := Gate(loaded, "fleet-3tcp", errored, 2); err == nil {
		t.Fatal("errored smoke run passed the gate")
	}
	if err := Gate(loaded, "fleet-9tcp", pass, 2); err == nil {
		t.Fatal("unknown config passed the gate")
	}
}
