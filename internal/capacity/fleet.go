package capacity

import (
	"fmt"
	"strings"
	"time"

	"newtop"
	"newtop/internal/daemon"
	"newtop/internal/shard"
)

// FleetConfig describes a measured cluster: n daemons over an in-memory
// inter-daemon network, each with a loopback-TCP client listener — the
// R4-style production code path (client wire protocol through the daemon
// to replica ack) without cross-machine variance.
//
// Shards > 0 switches the fleet to sharded mode: the key ring is cut into
// that many equal arcs, each owned by its own newtop group of Replication
// members assigned round-robin across the daemons, with the shard map
// replicated in a meta-group spanning every daemon.
type FleetConfig struct {
	Daemons       int           // default 3
	Omega         time.Duration // time-silence interval (default 5ms)
	Seed          int64
	RingThreshold int // ring dissemination cutoff (0 disables)
	Shards        int // shard-group count (0: one unsharded group)
	Replication   int // members per shard group (default min(2, Daemons))
}

func (cfg FleetConfig) withDefaults() FleetConfig {
	if cfg.Daemons <= 0 {
		cfg.Daemons = 3
	}
	if cfg.Omega <= 0 {
		cfg.Omega = 5 * time.Millisecond
	}
	if cfg.Replication <= 0 || cfg.Replication > cfg.Daemons {
		cfg.Replication = 2
		if cfg.Daemons < 2 {
			cfg.Replication = cfg.Daemons
		}
	}
	return cfg
}

// Name identifies the fleet shape in reports: gate runs must measure the
// same configuration the baseline recorded.
func (cfg FleetConfig) Name() string {
	cfg = cfg.withDefaults()
	name := fmt.Sprintf("fleet-%dtcp", cfg.Daemons)
	if cfg.RingThreshold > 0 {
		name += "-ring"
	}
	if cfg.Shards > 0 {
		name += fmt.Sprintf("-%dshard", cfg.Shards)
	}
	return name
}

// shardAssigns cuts the hash ring into equal arcs and spreads the shard
// groups' memberships round-robin across the daemons.
func (cfg FleetConfig) shardAssigns(ids []newtop.ProcessID) []shard.Assign {
	step := ^uint64(0)/uint64(cfg.Shards) + 1
	assigns := make([]shard.Assign, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		members := make([]newtop.ProcessID, 0, cfg.Replication)
		for j := 0; j < cfg.Replication; j++ {
			members = append(members, ids[(i+j)%len(ids)])
		}
		assigns = append(assigns, shard.Assign{
			Start:   uint64(i) * step,
			Group:   shard.FirstDataGroup + newtop.GroupID(i),
			Members: members,
		})
	}
	return assigns
}

// Fleet is a running measured cluster.
type Fleet struct {
	cfg     FleetConfig
	net     *newtop.Network
	daemons map[newtop.ProcessID]*daemon.Daemon
	addrs   []string
}

// StartFleet boots the cluster and waits until every daemon serves (its
// replica caught up) so measurements never include formation transients.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	net := newtop.NewNetwork(newtop.WithSeed(cfg.Seed))
	f := &Fleet{cfg: cfg, net: net, daemons: make(map[newtop.ProcessID]*daemon.Daemon, cfg.Daemons)}
	ids := make([]newtop.ProcessID, 0, cfg.Daemons)
	for i := 1; i <= cfg.Daemons; i++ {
		ids = append(ids, newtop.ProcessID(i))
	}
	var assigns []shard.Assign
	if cfg.Shards > 0 {
		assigns = cfg.shardAssigns(ids)
	}
	for _, id := range ids {
		dc := daemon.Config{
			Self:          id,
			Network:       net,
			ClientAddr:    "127.0.0.1:0",
			Omega:         cfg.Omega,
			Initial:       ids,
			RingThreshold: cfg.RingThreshold,
			Logf:          func(string, ...any) {},
		}
		if assigns != nil {
			// Meta membership must be IDENTICAL on every daemon — it is
			// the bootstrap membership of the meta group. Spell it out
			// rather than relying on per-daemon derivation.
			dc.Shard = &daemon.ShardConfig{Meta: ids, Initial: assigns}
		}
		d, err := daemon.Start(dc)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("capacity: start daemon %d: %w", id, err)
		}
		f.daemons[id] = d
	}
	addrs := make(map[newtop.ProcessID]string, len(ids))
	for _, id := range ids {
		a := f.daemons[id].ClientAddr()
		addrs[id] = a
		f.addrs = append(f.addrs, a)
	}
	for _, d := range f.daemons {
		d.SetPeerClientAddrs(addrs)
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, id := range ids {
		for {
			ready := false
			if cfg.Shards > 0 {
				ready = f.daemons[id].ShardsReady()
			} else {
				rep, _ := f.daemons[id].Replica()
				ready = rep != nil && rep.CaughtUp()
			}
			if ready {
				break
			}
			if time.Now().After(deadline) {
				f.Close()
				return nil, fmt.Errorf("capacity: daemon %d never became ready", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if cfg.Shards > 0 {
		// Sharded readiness additionally needs every daemon's client
		// address published through the meta group, so redirects carry
		// owner hints from the first request.
		for _, d := range f.daemons {
			for {
				ok := true
				for _, id := range ids {
					if _, have := d.ShardMap().Addr(id); !have {
						ok = false
						break
					}
				}
				if ok {
					break
				}
				if time.Now().After(deadline) {
					f.Close()
					return nil, fmt.Errorf("capacity: shard map never published every address")
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	return f, nil
}

// Addrs returns the fleet's client-protocol endpoints.
func (f *Fleet) Addrs() []string { return append([]string(nil), f.addrs...) }

// Name returns the fleet's configuration name (see FleetConfig.Name).
func (f *Fleet) Name() string { return f.cfg.Name() }

// Daemon returns one of the fleet's daemons (nil when unknown) — harness
// scenarios drive shard moves and fault injection through it.
func (f *Fleet) Daemon(id newtop.ProcessID) *daemon.Daemon { return f.daemons[id] }

// explainedDrops are drop reasons a healthy (no kill, no partition) run
// may legitimately produce during formation and steady state. Anything
// else — decode failures, overflow, unexplained loss — fails the SLO.
// The set mirrors the R4 harness's allowlist.
var explainedDrops = map[string]bool{
	`layer="core",reason="left_group"`:               true,
	`layer="core",reason="removed_member"`:           true,
	`layer="core",reason="not_member"`:               true,
	`layer="core",reason="seq_gap"`:                  true,
	`layer="core",reason="stale_view"`:               true,
	`layer="core",reason="group_gone"`:               true,
	`layer="core",reason="queued_submit_group_gone"`: true,
	`layer="ring",reason="orphan_evicted"`:           true,
	`layer="ring",reason="reassembly_abandoned"`:     true,
}

// UnexplainedDrops scans every daemon's registry for newtop_drops_total
// entries outside the explained allowlist, returning the total and the
// first offending label set. The counters are cumulative; callers diff
// successive reads to bound a window.
func (f *Fleet) UnexplainedDrops() (uint64, string) {
	var total uint64
	var first string
	for _, d := range f.daemons {
		for name, v := range d.Proc().Metrics().Counters {
			labels, ok := strings.CutPrefix(name, "newtop_drops_total{")
			if !ok || v == 0 {
				continue
			}
			labels = strings.TrimSuffix(labels, "}")
			if explainedDrops[labels] {
				continue
			}
			total += v
			if first == "" {
				first = labels
			}
		}
	}
	return total, first
}

// Close shuts the fleet down.
func (f *Fleet) Close() {
	for _, d := range f.daemons {
		_ = d.Close()
	}
	f.net.Close()
}
