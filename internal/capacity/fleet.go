package capacity

import (
	"fmt"
	"strings"
	"time"

	"newtop"
	"newtop/internal/daemon"
)

// FleetConfig describes a measured cluster: n daemons over an in-memory
// inter-daemon network, each with a loopback-TCP client listener — the
// R4-style production code path (client wire protocol through the daemon
// to replica ack) without cross-machine variance.
type FleetConfig struct {
	Daemons int           // default 3
	Omega   time.Duration // time-silence interval (default 5ms)
	Seed    int64
	RingThreshold int // ring dissemination cutoff (0 disables)
}

func (cfg FleetConfig) withDefaults() FleetConfig {
	if cfg.Daemons <= 0 {
		cfg.Daemons = 3
	}
	if cfg.Omega <= 0 {
		cfg.Omega = 5 * time.Millisecond
	}
	return cfg
}

// Name identifies the fleet shape in reports: gate runs must measure the
// same configuration the baseline recorded.
func (cfg FleetConfig) Name() string {
	cfg = cfg.withDefaults()
	return fmt.Sprintf("fleet-%dtcp", cfg.Daemons)
}

// Fleet is a running measured cluster.
type Fleet struct {
	cfg     FleetConfig
	net     *newtop.Network
	daemons map[newtop.ProcessID]*daemon.Daemon
	addrs   []string
}

// StartFleet boots the cluster and waits until every daemon serves (its
// replica caught up) so measurements never include formation transients.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	net := newtop.NewNetwork(newtop.WithSeed(cfg.Seed))
	f := &Fleet{cfg: cfg, net: net, daemons: make(map[newtop.ProcessID]*daemon.Daemon, cfg.Daemons)}
	ids := make([]newtop.ProcessID, 0, cfg.Daemons)
	for i := 1; i <= cfg.Daemons; i++ {
		ids = append(ids, newtop.ProcessID(i))
	}
	for _, id := range ids {
		d, err := daemon.Start(daemon.Config{
			Self:          id,
			Network:       net,
			ClientAddr:    "127.0.0.1:0",
			Omega:         cfg.Omega,
			Initial:       ids,
			RingThreshold: cfg.RingThreshold,
			Logf:          func(string, ...any) {},
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("capacity: start daemon %d: %w", id, err)
		}
		f.daemons[id] = d
	}
	addrs := make(map[newtop.ProcessID]string, len(ids))
	for _, id := range ids {
		a := f.daemons[id].ClientAddr()
		addrs[id] = a
		f.addrs = append(f.addrs, a)
	}
	for _, d := range f.daemons {
		d.SetPeerClientAddrs(addrs)
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, id := range ids {
		for {
			rep, _ := f.daemons[id].Replica()
			if rep != nil && rep.CaughtUp() {
				break
			}
			if time.Now().After(deadline) {
				f.Close()
				return nil, fmt.Errorf("capacity: daemon %d never became ready", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return f, nil
}

// Addrs returns the fleet's client-protocol endpoints.
func (f *Fleet) Addrs() []string { return append([]string(nil), f.addrs...) }

// Name returns the fleet's configuration name (see FleetConfig.Name).
func (f *Fleet) Name() string { return f.cfg.Name() }

// explainedDrops are drop reasons a healthy (no kill, no partition) run
// may legitimately produce during formation and steady state. Anything
// else — decode failures, overflow, unexplained loss — fails the SLO.
// The set mirrors the R4 harness's allowlist.
var explainedDrops = map[string]bool{
	`layer="core",reason="left_group"`:               true,
	`layer="core",reason="removed_member"`:           true,
	`layer="core",reason="not_member"`:               true,
	`layer="core",reason="seq_gap"`:                  true,
	`layer="core",reason="stale_view"`:               true,
	`layer="core",reason="group_gone"`:               true,
	`layer="core",reason="queued_submit_group_gone"`: true,
	`layer="ring",reason="orphan_evicted"`:           true,
	`layer="ring",reason="reassembly_abandoned"`:     true,
}

// UnexplainedDrops scans every daemon's registry for newtop_drops_total
// entries outside the explained allowlist, returning the total and the
// first offending label set. The counters are cumulative; callers diff
// successive reads to bound a window.
func (f *Fleet) UnexplainedDrops() (uint64, string) {
	var total uint64
	var first string
	for _, d := range f.daemons {
		for name, v := range d.Proc().Metrics().Counters {
			labels, ok := strings.CutPrefix(name, "newtop_drops_total{")
			if !ok || v == 0 {
				continue
			}
			labels = strings.TrimSuffix(labels, "}")
			if explainedDrops[labels] {
				continue
			}
			total += v
			if first == "" {
				first = labels
			}
		}
	}
	return total, first
}

// Close shuts the fleet down.
func (f *Fleet) Close() {
	for _, d := range f.daemons {
		_ = d.Close()
	}
	f.net.Close()
}
