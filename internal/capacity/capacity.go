// Package capacity is the open-loop load harness: it answers the
// production questions the closed-loop microbenchmarks in BENCH_core.json
// cannot — "what p99 at what offered load, and where does the cluster
// saturate?"
//
// # Open loop vs closed loop
//
// A closed loop (issue an op, wait, issue the next) self-throttles: when
// the cluster slows down, the loop offers less load, so measured latency
// stays flat right through saturation. An open loop fires arrivals on the
// schedule an ArrivalProcess generated — whether or not earlier ops have
// completed — which is how independent real clients behave, and is what
// exposes queueing collapse: past the saturation point the backlog grows
// without bound and tail latency rises with run length instead of
// plateauing.
//
// # Coordinated omission
//
// Per-op latency is measured from the op's INTENDED arrival time (the
// generated schedule slot), not from when a session got around to sending
// it. An op that sat queued behind a slow cluster for a second and then
// completed in a millisecond records one second, not one millisecond —
// the delay a real caller would have experienced. The measurement
// plumbing is internal/obs: the driver shares one metrics registry across
// its client fleet, the client records `newtop_client_op_ns{op=…}` from
// the intended start (client.PutAt and friends), and the driver folds
// every completed op into `newtop_capacity_op_ns`, the histogram the
// quantile results come from.
//
// The saturation analyzer (saturation.go) binary-searches the offered
// rate for the highest one that still meets an SLO predicate; report.go
// emits BENCH_capacity.json next to the micro file, and suite.go defines
// the measured cluster configurations (first: the R4-style 3-daemon fleet
// over TCP client sessions).
package capacity

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"newtop/client"
	"newtop/internal/obs"
	"newtop/internal/workload"
)

// OverallHist is the registry name of the driver's overall per-op latency
// histogram (all op kinds folded together, measured from intended start
// in open-loop runs). ReadHist and WriteHist split the same measurements
// by op kind, so reads and writes can carry separate SLO targets —
// sharded and ring configurations shift the two tails differently (a
// routed read may barrier-upgrade; a large write rides the ring).
const (
	OverallHist = "newtop_capacity_op_ns"
	ReadHist    = `newtop_capacity_op_ns{kind="read"}`
	WriteHist   = `newtop_capacity_op_ns{kind="write"}`
)

// DriverConfig tunes one measurement run of the client-fleet driver.
type DriverConfig struct {
	// Addrs are the cluster's client-protocol endpoints. Sessions spread
	// their bootstrap order across them round-robin.
	Addrs []string
	// Sessions is the client-fleet size (default 8). Each session is one
	// routed connection executing ops serially; the shared arrival queue
	// ahead of the fleet is where open-loop backlog accumulates.
	Sessions int
	// Arrivals generates the offered-load schedule (open loop only).
	Arrivals workload.ArrivalProcess
	// Duration is the measurement window (default 2s).
	Duration time.Duration
	// DrainTimeout bounds how long the driver waits after the last
	// scheduled arrival for queued ops to finish before closing the fleet
	// and counting the remainder as unfinished (default 5s).
	DrainTimeout time.Duration
	// GetFraction is the share of ops that are reads (default 0.1).
	GetFraction float64
	// KeySpace is the number of distinct keys (default 1024).
	KeySpace int
	// ValueLen is the written value size in bytes (default 128).
	ValueLen int
	// ClosedLoop switches to the self-throttling comparison mode: each
	// session fires its next op when the previous completes, and latency
	// is measured from call start. Arrivals is ignored.
	ClosedLoop bool
	// Warmup is the number of unmeasured ops each session performs before
	// the schedule starts (default 0). Fresh sessions against a sharded
	// fleet pay redirect round-trips while they learn the shard map; a
	// short warmup moves that cold start out of the measured window so
	// the numbers reflect steady-state routing.
	Warmup int
	// Seed drives op-mix and key choice (and closed-loop generators).
	Seed int64
	// Client tunes the sessions; Metrics is overridden with the driver's
	// registry.
	Client client.Config
}

func (cfg DriverConfig) withDefaults() DriverConfig {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.GetFraction <= 0 || cfg.GetFraction > 1 {
		cfg.GetFraction = 0.1
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 1024
	}
	if cfg.ValueLen <= 0 {
		cfg.ValueLen = 128
	}
	return cfg
}

// DriverResult is the outcome of one run.
type DriverResult struct {
	Arrivals            string        // arrival process name ("closed-loop" in closed mode)
	Offered             float64       // scheduled arrival rate, ops/s
	Scheduled           uint64        // arrivals the schedule fired (none are ever skipped)
	Completed           uint64        // ops that finished with a final answer
	Errors              uint64        // ops that finished in error (incl. unacked writes)
	Unfinished          uint64        // ops still queued/in flight when the drain window closed
	Elapsed             time.Duration // wall time from first arrival to fleet shutdown
	Achieved            float64       // completed ops per second of Elapsed
	P50, P99, P999, Max time.Duration // per-op latency (intended start → completion)
	ReadP50, ReadP99    time.Duration // read-only latency quantiles
	WriteP50, WriteP99  time.Duration // write-only latency quantiles
	MaxSchedLag         time.Duration // worst scheduler dispatch lag (sanity: the driver kept up)
	Snapshot            obs.Snapshot  // the full registry the numbers came from
}

// op is one scheduled operation.
type op struct {
	intended time.Time
	read     bool
	key      string
}

// opSet pre-generates the run's keys, value and op mix so nothing is
// formatted inside the measurement window.
type opSet struct {
	keys  []string
	value string
	reads []bool // per-arrival read/write decision (open loop)
	keyIx []int  // per-arrival key index (open loop)
}

func newOpSet(cfg DriverConfig, n int) *opSet {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &opSet{keys: make([]string, cfg.KeySpace)}
	for i := range s.keys {
		s.keys[i] = fmt.Sprintf("cap:%06d", i)
	}
	v := make([]byte, cfg.ValueLen)
	for i := range v {
		v[i] = byte('a' + rng.Intn(26))
	}
	s.value = string(v)
	s.reads = make([]bool, n)
	s.keyIx = make([]int, n)
	for i := 0; i < n; i++ {
		s.reads[i] = rng.Float64() < cfg.GetFraction
		s.keyIx[i] = rng.Intn(cfg.KeySpace)
	}
	return s
}

// Run executes one measurement run and reports the result. Open-loop runs
// dispatch every scheduled arrival at its intended time into a queue deep
// enough to never block the scheduler — a stalled cluster delays
// completions, never arrivals.
func Run(cfg DriverConfig) (DriverResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return DriverResult{}, errors.New("capacity: no cluster addresses")
	}
	reg := obs.NewRegistry()
	cfg.Client.Metrics = reg
	sessions := make([]*client.Client, 0, cfg.Sessions)
	defer func() {
		for _, s := range sessions {
			_ = s.Close()
		}
	}()
	for i := 0; i < cfg.Sessions; i++ {
		// Rotate the bootstrap order so the fleet spreads its pins across
		// the cluster instead of piling onto Addrs[0].
		rot := make([]string, 0, len(cfg.Addrs))
		for j := 0; j < len(cfg.Addrs); j++ {
			rot = append(rot, cfg.Addrs[(i+j)%len(cfg.Addrs)])
		}
		s, err := cfg.Client.Dial(rot...)
		if err != nil {
			return DriverResult{}, fmt.Errorf("capacity: dial session %d: %w", i, err)
		}
		sessions = append(sessions, s)
	}
	if cfg.Warmup > 0 {
		if err := warm(cfg, sessions); err != nil {
			return DriverResult{}, err
		}
	}
	if cfg.ClosedLoop {
		return runClosed(cfg, reg, sessions)
	}
	return runOpen(cfg, reg, sessions)
}

// warm runs cfg.Warmup unmeasured ops on every session concurrently,
// spreading each session's keys across the keyspace so routed sessions
// learn every shard arc before measurement begins.
func warm(cfg DriverConfig, sessions []*client.Client) error {
	value := strings.Repeat("w", cfg.ValueLen)
	errs := make(chan error, len(sessions))
	for i, s := range sessions {
		go func(i int, s *client.Client) {
			stride := cfg.KeySpace/cfg.Warmup + 1
			for j := 0; j < cfg.Warmup; j++ {
				key := fmt.Sprintf("cap:%06d", (i+j*stride)%cfg.KeySpace)
				if err := s.Put(key, value); err != nil {
					errs <- fmt.Errorf("capacity: warmup session %d: %w", i, err)
					return
				}
			}
			errs <- nil
		}(i, s)
	}
	for range sessions {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// exec runs one op on a session; zero intended means closed-loop (measure
// from call start inside the client).
func exec(s *client.Client, o op, value string) error {
	if o.read {
		_, _, err := s.GetAt(o.intended, o.key)
		return err
	}
	return s.PutAt(o.intended, o.key, value)
}

func runOpen(cfg DriverConfig, reg *obs.Registry, sessions []*client.Client) (DriverResult, error) {
	schedule := cfg.Arrivals.Schedule(cfg.Duration)
	if len(schedule) == 0 {
		return DriverResult{}, fmt.Errorf("capacity: arrival process %q produced an empty schedule", cfg.Arrivals.Name())
	}
	set := newOpSet(cfg, len(schedule))
	hist := reg.Histogram(OverallHist)
	readHist := reg.Histogram(ReadHist)
	writeHist := reg.Histogram(WriteHist)
	scheduledC := reg.Counter("newtop_capacity_ops_scheduled_total")
	completedC := reg.Counter("newtop_capacity_ops_completed_total")
	errorsC := reg.Counter("newtop_capacity_ops_errors_total")
	unfinishedC := reg.Counter("newtop_capacity_ops_unfinished_total")
	queueDepth := reg.Gauge("newtop_capacity_queue_depth")

	// Deep enough for the whole schedule: enqueueing NEVER blocks, so a
	// stalled cluster cannot make the scheduler skip or delay an arrival.
	queue := make(chan op, len(schedule))
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for _, s := range sessions {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range queue {
				queueDepth.Add(-1)
				if stopped.Load() {
					unfinishedC.Inc()
					continue
				}
				err := exec(s, o, set.value)
				switch {
				case err == nil:
					completedC.Inc()
					lat := time.Since(o.intended)
					hist.ObserveDuration(lat)
					if o.read {
						readHist.ObserveDuration(lat)
					} else {
						writeHist.ObserveDuration(lat)
					}
				case errors.Is(err, client.ErrClosed):
					// The drain window closed this session under us; the
					// op never got a final answer.
					unfinishedC.Inc()
				default:
					errorsC.Inc()
				}
			}
		}()
	}

	start := time.Now()
	var maxLag time.Duration
	for i, off := range schedule {
		intended := start.Add(off)
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		} else if lag := -d; lag > maxLag {
			maxLag = lag
		}
		queueDepth.Add(1)
		scheduledC.Inc()
		queue <- op{intended: intended, read: set.reads[i], key: set.keys[set.keyIx[i]]}
	}
	close(queue)

	// Let the backlog drain, then cut the run: close the fleet (which
	// interrupts in-flight ops and retry backoffs) and count what never
	// finished. Without the cutoff a saturated run would drain for as
	// long as the backlog is deep.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.DrainTimeout):
		stopped.Store(true)
		for _, s := range sessions {
			_ = s.Close()
		}
		<-done
	}
	elapsed := time.Since(start)

	res := collect(reg, elapsed)
	res.Arrivals = cfg.Arrivals.Name()
	res.Offered = float64(len(schedule)) / cfg.Duration.Seconds()
	res.MaxSchedLag = maxLag
	return res, nil
}

func runClosed(cfg DriverConfig, reg *obs.Registry, sessions []*client.Client) (DriverResult, error) {
	set := newOpSet(cfg, 0)
	hist := reg.Histogram(OverallHist)
	readHist := reg.Histogram(ReadHist)
	writeHist := reg.Histogram(WriteHist)
	scheduledC := reg.Counter("newtop_capacity_ops_scheduled_total")
	completedC := reg.Counter("newtop_capacity_ops_completed_total")
	errorsC := reg.Counter("newtop_capacity_ops_errors_total")

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for i, s := range sessions {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			for time.Now().Before(deadline) {
				o := op{read: rng.Float64() < cfg.GetFraction, key: set.keys[rng.Intn(len(set.keys))]}
				scheduledC.Inc()
				callStart := time.Now()
				if err := exec(s, o, set.value); err != nil {
					errorsC.Inc()
					continue
				}
				completedC.Inc()
				lat := time.Since(callStart)
				hist.ObserveDuration(lat)
				if o.read {
					readHist.ObserveDuration(lat)
				} else {
					writeHist.ObserveDuration(lat)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := collect(reg, elapsed)
	res.Arrivals = "closed-loop"
	res.Offered = res.Achieved // a closed loop offers exactly what completes
	return res, nil
}

// collect folds the registry into a DriverResult.
func collect(reg *obs.Registry, elapsed time.Duration) DriverResult {
	snap := reg.Snapshot()
	h := snap.Histograms[OverallHist]
	rh := snap.Histograms[ReadHist]
	wh := snap.Histograms[WriteHist]
	res := DriverResult{
		Scheduled:  snap.Counters["newtop_capacity_ops_scheduled_total"],
		Completed:  snap.Counters["newtop_capacity_ops_completed_total"],
		Errors:     snap.Counters["newtop_capacity_ops_errors_total"],
		Unfinished: snap.Counters["newtop_capacity_ops_unfinished_total"],
		Elapsed:    elapsed,
		P50:        time.Duration(h.P50),
		P99:        time.Duration(h.P99),
		P999:       time.Duration(h.P999),
		Max:        time.Duration(h.Max),
		ReadP50:    time.Duration(rh.P50),
		ReadP99:    time.Duration(rh.P99),
		WriteP50:   time.Duration(wh.P50),
		WriteP99:   time.Duration(wh.P99),
		Snapshot:   snap,
	}
	if elapsed > 0 {
		res.Achieved = float64(res.Completed) / elapsed.Seconds()
	}
	return res
}
