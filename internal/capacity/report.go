package capacity

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// RatePoint is one measured offered-load point, the JSON projection of a
// DriverResult.
type RatePoint struct {
	Arrivals     string  `json:"arrivals"`
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	Scheduled    uint64  `json:"scheduled"`
	Completed    uint64  `json:"completed"`
	Errors       uint64  `json:"errors"`
	Unfinished   uint64  `json:"unfinished"`
	P50NS        int64   `json:"p50_ns"`
	P99NS        int64   `json:"p99_ns"`
	P999NS       int64   `json:"p999_ns"`
	MaxNS        int64   `json:"max_ns"`
	ReadP99NS    int64   `json:"read_p99_ns,omitempty"`
	WriteP99NS   int64   `json:"write_p99_ns,omitempty"`
}

// NewRatePoint projects a DriverResult into the report schema.
func NewRatePoint(res DriverResult) RatePoint {
	return RatePoint{
		Arrivals:     res.Arrivals,
		OfferedRate:  res.Offered,
		AchievedRate: res.Achieved,
		Scheduled:    res.Scheduled,
		Completed:    res.Completed,
		Errors:       res.Errors,
		Unfinished:   res.Unfinished,
		P50NS:        res.P50.Nanoseconds(),
		P99NS:        res.P99.Nanoseconds(),
		P999NS:       res.P999.Nanoseconds(),
		MaxNS:        res.Max.Nanoseconds(),
		ReadP99NS:    res.ReadP99.Nanoseconds(),
		WriteP99NS:   res.WriteP99.Nanoseconds(),
	}
}

// TrialPoint is one saturation-search probe.
type TrialPoint struct {
	Rate       float64 `json:"rate"`
	OK         bool    `json:"ok"`
	Reason     string  `json:"reason,omitempty"`
	P99NS      int64   `json:"p99_ns"`
	ReadP99NS  int64   `json:"read_p99_ns,omitempty"`
	WriteP99NS int64   `json:"write_p99_ns,omitempty"`
}

// SaturationSummary records the binary-search outcome.
type SaturationSummary struct {
	SustainableRate float64      `json:"sustainable_rate"`
	CeilingRate     float64      `json:"ceiling_rate"`
	SLOP99NS        int64        `json:"slo_p99_ns"`
	SLOReadP99NS    int64        `json:"slo_read_p99_ns,omitempty"`
	SLOWriteP99NS   int64        `json:"slo_write_p99_ns,omitempty"`
	Trials          []TrialPoint `json:"trials"`
}

// ConfigResult is everything measured for one cluster configuration.
type ConfigResult struct {
	Name     string `json:"name"`
	Daemons  int    `json:"daemons"`
	Sessions int    `json:"sessions"`
	// Fleet-shape parameters beyond the daemon count (zero when not
	// applicable to the configuration).
	Shards        int `json:"shards,omitempty"`
	Replication   int `json:"replication,omitempty"`
	RingThreshold int `json:"ring_threshold,omitempty"`
	ValueLen      int `json:"value_len,omitempty"`
	// Smoke is the pinned low-rate point the CI gate compares against.
	Smoke *RatePoint `json:"smoke,omitempty"`
	// Ladder are the fixed offered-rate points of the full run.
	Ladder []RatePoint `json:"ladder,omitempty"`
	// Saturation is the SLO search outcome of the full run.
	Saturation *SaturationSummary `json:"saturation,omitempty"`
}

// Report is the schema of BENCH_capacity.json.
type Report struct {
	Schema      int            `json:"schema"`
	GeneratedAt string         `json:"generated_at"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	Configs     []ConfigResult `json:"configs"`
}

// NewReport wraps config results in the BENCH_capacity.json envelope.
func NewReport(configs []ConfigResult) *Report {
	return &Report{
		Schema:      1,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Configs:     configs,
	}
}

// LoadReport reads a previously written BENCH_capacity.json.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("capacity: parse %s: %w", path, err)
	}
	return &r, nil
}

// WriteReport writes the report as indented JSON.
func WriteReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Config returns the named config result, or nil.
func (r *Report) Config(name string) *ConfigResult {
	for i := range r.Configs {
		if r.Configs[i].Name == name {
			return &r.Configs[i]
		}
	}
	return nil
}

// GateSlack is the absolute p99 headroom the gate grants on top of the
// relative factor: at smoke rates the baseline p99 is a few milliseconds,
// where scheduler noise alone can double a measurement. The gate exists
// to catch real latency regressions, not jitter.
const GateSlack = 5 * time.Millisecond

// Gate compares a fresh smoke measurement against the baseline report's
// smoke point for the same config and fails if p99 regressed by more than
// factor (plus GateSlack absolute), if error/unfinished counts appeared,
// or if the baseline lacks the config. factor <= 0 defaults to 2.
func Gate(baseline *Report, configName string, fresh DriverResult, factor float64) error {
	if factor <= 0 {
		factor = 2
	}
	cfg := baseline.Config(configName)
	if cfg == nil || cfg.Smoke == nil {
		return fmt.Errorf("capacity: baseline has no smoke point for config %q", configName)
	}
	var failures []string
	if fresh.Errors > 0 {
		failures = append(failures, fmt.Sprintf("%d ops errored at smoke rate", fresh.Errors))
	}
	if fresh.Unfinished > 0 {
		failures = append(failures, fmt.Sprintf("%d ops unfinished at smoke rate", fresh.Unfinished))
	}
	limit := time.Duration(float64(cfg.Smoke.P99NS)*factor) + GateSlack
	if fresh.P99 > limit {
		failures = append(failures, fmt.Sprintf("p99 regressed: %v > %.1fx baseline %v (+%v slack)",
			fresh.P99, factor, time.Duration(cfg.Smoke.P99NS), GateSlack))
	}
	if len(failures) > 0 {
		return fmt.Errorf("capacity: %s", strings.Join(failures, "; "))
	}
	return nil
}
