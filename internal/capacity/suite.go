package capacity

import (
	"fmt"
	"io"
	"time"

	"newtop/internal/workload"
)

// SuiteConfig selects what the standard suite measures.
type SuiteConfig struct {
	// SmokeOnly runs just the pinned smoke points (seconds, CI-sized)
	// instead of the full ladder + saturation search (minutes).
	SmokeOnly bool
	// Progress (optional) receives one line per measured point.
	Progress io.Writer
	// Seed drives the fleet network, op mix and arrival processes.
	Seed int64
	// Only, when non-empty, restricts the run to the named configs.
	Only []string
}

// Suite constants: the smoke point is pinned because the CI gate compares
// its p99 across commits — moving it invalidates every baseline.
const (
	SmokeRate      = 150.0 // ops/s
	smokeDuration  = 2 * time.Second
	ladderDuration = 2 * time.Second
	suiteSLOP99    = 50 * time.Millisecond
)

// ladderRates are the fixed offered-load points of the full run.
var ladderRates = []float64{250, 500, 1000, 2000}

// suiteSpec is one measured cluster configuration: the fleet shape plus
// the driver knobs and SLO it is probed with.
type suiteSpec struct {
	fleet       FleetConfig
	sessions    int
	warmup      int     // unmeasured per-session ops before each point
	valueLen    int     // 0: driver default (128 B)
	getFraction float64 // 0: driver default (0.1)
	hiRate      float64 // saturation-search bracket top
	ladder      []float64
	slo         SLO
}

func (s suiteSpec) name() string { return s.fleet.Name() }

// suiteSpecs defines the measured configurations:
//
//   - fleet-3tcp: the original 3-daemon single-group fleet, the CI gate's
//     pinned baseline.
//   - fleet-3tcp-ring: the same fleet with ring dissemination engaged by a
//     large-value op mix — payloads ride the successor ring instead of
//     being flooded n-ways by the sender.
//   - fleet-4tcp-4shard: four daemons serving four shard groups
//     (replication 2) behind the meta-group shard map — the scale-out
//     configuration; its sessions ride the client's learned shard routes.
func suiteSpecs(seed int64) []suiteSpec {
	slo := SLO{P99: suiteSLOP99, ReadP99: suiteSLOP99, WriteP99: suiteSLOP99}
	return []suiteSpec{
		{
			fleet:    FleetConfig{Seed: seed},
			sessions: 8,
			warmup:   4,
			hiRate:   6400,
			ladder:   ladderRates,
			slo:      slo,
		},
		{
			fleet:    FleetConfig{Seed: seed, RingThreshold: 256},
			sessions: 8,
			warmup:   4,
			valueLen: 2048,
			hiRate:   6400,
			ladder:   ladderRates,
			slo:      slo,
		},
		{
			// The scale-out configuration is provisioned for a large
			// client population — aggregate capacity across four
			// independent total orders is the point, and a small session
			// fleet would cap the measurement at sessions/latency long
			// before the cluster saturates.
			fleet:    FleetConfig{Seed: seed, Daemons: 4, Shards: 4, Replication: 2},
			sessions: 256,
			warmup:   8,
			hiRate:   25600,
			ladder:   []float64{2000, 4000, 8000, 16000},
			slo:      slo,
		},
	}
}

func (s suiteSpec) driver(addrs []string, seed int64) DriverConfig {
	return DriverConfig{
		Addrs:       addrs,
		Sessions:    s.sessions,
		Warmup:      s.warmup,
		Duration:    ladderDuration,
		ValueLen:    s.valueLen,
		GetFraction: s.getFraction,
		Seed:        seed,
	}
}

// smokePoint runs the pinned low-rate open-loop point against an already
// running fleet — the measurement both `-capacity` (recording a baseline)
// and `-capacity-gate` (comparing against it) share.
func smokePoint(f *Fleet, spec suiteSpec, seed int64) (DriverResult, error) {
	cfg := spec.driver(f.Addrs(), seed)
	cfg.Duration = smokeDuration
	cfg.Arrivals = workload.FixedRate{OpsPerSec: SmokeRate}
	before, _ := f.UnexplainedDrops()
	res, err := Run(cfg)
	if err != nil {
		return res, err
	}
	after, label := f.UnexplainedDrops()
	if after > before {
		return res, fmt.Errorf("capacity: %d unexplained drops during smoke (%s)", after-before, label)
	}
	return res, nil
}

func (cfg SuiteConfig) wants(name string) bool {
	if len(cfg.Only) == 0 {
		return true
	}
	for _, n := range cfg.Only {
		if n == name {
			return true
		}
	}
	return false
}

// RunSuite measures every suite configuration and returns the report
// payload. Smoke always runs; the ladder and saturation search are
// skipped in SmokeOnly mode.
func RunSuite(cfg SuiteConfig) ([]ConfigResult, error) {
	logf := func(format string, args ...any) {
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, format+"\n", args...)
		}
	}
	var out []ConfigResult
	for _, spec := range suiteSpecs(cfg.Seed) {
		if !cfg.wants(spec.name()) {
			continue
		}
		res, err := runConfig(spec, cfg, logf)
		if err != nil {
			return out, fmt.Errorf("capacity: config %s: %w", spec.name(), err)
		}
		out = append(out, *res)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("capacity: no configs selected (have %v)", suiteNames(cfg.Seed))
	}
	return out, nil
}

func suiteNames(seed int64) []string {
	var names []string
	for _, s := range suiteSpecs(seed) {
		names = append(names, s.name())
	}
	return names
}

func runConfig(spec suiteSpec, cfg SuiteConfig, logf func(string, ...any)) (*ConfigResult, error) {
	fc := spec.fleet.withDefaults()
	out := &ConfigResult{
		Name:          spec.name(),
		Daemons:       fc.Daemons,
		Sessions:      spec.sessions,
		Shards:        fc.Shards,
		RingThreshold: fc.RingThreshold,
		ValueLen:      spec.valueLen,
	}
	if fc.Shards > 0 {
		out.Replication = fc.Replication
	}

	// Every measured point boots its own fleet: a point offered more
	// than the cluster can absorb leaves a backlog that can take tens of
	// seconds to drain, and any measurement sharing that cluster would
	// record the hangover, not its own rate.
	fleet, err := StartFleet(spec.fleet)
	if err != nil {
		return nil, err
	}
	smoke, err := smokePoint(fleet, spec, cfg.Seed)
	fleet.Close()
	if err != nil {
		return nil, err
	}
	p := NewRatePoint(smoke)
	out.Smoke = &p
	logf("capacity: %s smoke @ %.0f ops/s: p50=%v p99=%v (r99=%v w99=%v) completed=%d errors=%d unfinished=%d",
		out.Name, SmokeRate, smoke.P50, smoke.P99, smoke.ReadP99, smoke.WriteP99, smoke.Completed, smoke.Errors, smoke.Unfinished)
	if cfg.SmokeOnly {
		return out, nil
	}

	for _, rate := range spec.ladder {
		f, err := StartFleet(spec.fleet)
		if err != nil {
			return nil, fmt.Errorf("ladder point %.0f ops/s: %w", rate, err)
		}
		dc := spec.driver(f.Addrs(), cfg.Seed)
		dc.Arrivals = workload.Poisson{OpsPerSec: rate, Seed: cfg.Seed + int64(rate)}
		res, err := Run(dc)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("ladder point %.0f ops/s: %w", rate, err)
		}
		out.Ladder = append(out.Ladder, NewRatePoint(res))
		logf("capacity: %s ladder @ %.0f ops/s: p50=%v p99=%v (r99=%v w99=%v) completed=%d errors=%d unfinished=%d",
			out.Name, rate, res.P50, res.P99, res.ReadP99, res.WriteP99, res.Completed, res.Errors, res.Unfinished)
	}

	search, err := FindSaturation(SearchConfig{
		Driver: spec.driver(nil, cfg.Seed),
		SLO:    spec.slo,
		LoRate: SmokeRate,
		HiRate: spec.hiRate,
		Setup: func() ([]string, func() (uint64, string), func(), error) {
			f, err := StartFleet(spec.fleet)
			if err != nil {
				return nil, nil, nil, err
			}
			return f.Addrs(), f.UnexplainedDrops, f.Close, nil
		},
		Logf: logf,
	})
	if err != nil {
		return nil, fmt.Errorf("saturation search: %w", err)
	}
	sum := &SaturationSummary{
		SustainableRate: search.Sustainable,
		CeilingRate:     search.Ceiling,
		SLOP99NS:        spec.slo.P99.Nanoseconds(),
		SLOReadP99NS:    spec.slo.ReadP99.Nanoseconds(),
		SLOWriteP99NS:   spec.slo.WriteP99.Nanoseconds(),
	}
	for _, tr := range search.Trials {
		sum.Trials = append(sum.Trials, TrialPoint{
			Rate: tr.Rate, OK: tr.OK, Reason: tr.Reason, P99NS: tr.Result.P99.Nanoseconds(),
			ReadP99NS: tr.Result.ReadP99.Nanoseconds(), WriteP99NS: tr.Result.WriteP99.Nanoseconds(),
		})
	}
	out.Saturation = sum
	logf("capacity: %s sustainable %.0f ops/s (ceiling %.0f) under p99<=%v", out.Name, search.Sustainable, search.Ceiling, spec.slo.P99)
	return out, nil
}

// GateResult is one config's fresh smoke measurement from a gate run.
type GateResult struct {
	Name  string
	Fresh DriverResult
}

// RunGate re-measures the smoke point of every suite configuration the
// baseline report recorded and compares each against its baseline (see
// Gate). Configs absent from the baseline are skipped — a freshly added
// configuration gates only once its baseline has been recorded.
func RunGate(baseline *Report, cfg SuiteConfig) ([]GateResult, error) {
	var out []GateResult
	for _, spec := range suiteSpecs(cfg.Seed) {
		base := baseline.Config(spec.name())
		if base == nil || base.Smoke == nil || !cfg.wants(spec.name()) {
			continue
		}
		fleet, err := StartFleet(spec.fleet)
		if err != nil {
			return out, fmt.Errorf("capacity: config %s: %w", spec.name(), err)
		}
		fresh, err := smokePoint(fleet, spec, cfg.Seed)
		fleet.Close()
		if err != nil {
			return out, fmt.Errorf("capacity: config %s: %w", spec.name(), err)
		}
		out = append(out, GateResult{Name: spec.name(), Fresh: fresh})
		if err := Gate(baseline, spec.name(), fresh, 2); err != nil {
			return out, err
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("capacity: baseline has no smoke point for any suite config (%v)", suiteNames(cfg.Seed))
	}
	return out, nil
}
