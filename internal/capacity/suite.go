package capacity

import (
	"fmt"
	"io"
	"time"

	"newtop/internal/workload"
)

// SuiteConfig selects what the standard suite measures against the
// 3-daemon TCP fleet.
type SuiteConfig struct {
	// SmokeOnly runs just the pinned smoke point (seconds, CI-sized)
	// instead of the full ladder + saturation search (minutes).
	SmokeOnly bool
	// Progress (optional) receives one line per measured point.
	Progress io.Writer
	// Seed drives the fleet network, op mix and arrival processes.
	Seed int64
}

// Suite constants: the smoke point is pinned because the CI gate compares
// its p99 across commits — moving it invalidates every baseline.
const (
	suiteSessions  = 8
	SmokeRate      = 150.0 // ops/s
	smokeDuration  = 2 * time.Second
	ladderDuration = 2 * time.Second
	suiteSLOP99    = 50 * time.Millisecond
)

// ladderRates are the fixed offered-load points of the full run.
var ladderRates = []float64{250, 500, 1000, 2000}

func suiteDriver(addrs []string, seed int64) DriverConfig {
	return DriverConfig{
		Addrs:    addrs,
		Sessions: suiteSessions,
		Duration: ladderDuration,
		Seed:     seed,
	}
}

// SmokePoint runs the pinned low-rate open-loop point against an already
// running fleet — the measurement both `-capacity` (recording a baseline)
// and `-capacity-gate` (comparing against it) share.
func SmokePoint(f *Fleet, seed int64) (DriverResult, error) {
	cfg := suiteDriver(f.Addrs(), seed)
	cfg.Duration = smokeDuration
	cfg.Arrivals = workload.FixedRate{OpsPerSec: SmokeRate}
	before, _ := f.UnexplainedDrops()
	res, err := Run(cfg)
	if err != nil {
		return res, err
	}
	after, label := f.UnexplainedDrops()
	if after > before {
		return res, fmt.Errorf("capacity: %d unexplained drops during smoke (%s)", after-before, label)
	}
	return res, nil
}

// RunSuite measures the standard configuration and returns the report
// payload. Smoke always runs; the ladder and saturation search are
// skipped in SmokeOnly mode.
func RunSuite(cfg SuiteConfig) (*ConfigResult, error) {
	logf := func(format string, args ...any) {
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, format+"\n", args...)
		}
	}
	fleet, err := StartFleet(FleetConfig{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()
	out := &ConfigResult{
		Name:     fleet.Name(),
		Daemons:  3,
		Sessions: suiteSessions,
	}

	smoke, err := SmokePoint(fleet, cfg.Seed)
	if err != nil {
		return nil, err
	}
	p := NewRatePoint(smoke)
	out.Smoke = &p
	logf("capacity: smoke @ %.0f ops/s: p50=%v p99=%v completed=%d errors=%d unfinished=%d",
		SmokeRate, smoke.P50, smoke.P99, smoke.Completed, smoke.Errors, smoke.Unfinished)
	if cfg.SmokeOnly {
		return out, nil
	}

	for _, rate := range ladderRates {
		dc := suiteDriver(fleet.Addrs(), cfg.Seed)
		dc.Arrivals = workload.Poisson{OpsPerSec: rate, Seed: cfg.Seed + int64(rate)}
		res, err := Run(dc)
		if err != nil {
			return nil, fmt.Errorf("capacity: ladder point %.0f ops/s: %w", rate, err)
		}
		out.Ladder = append(out.Ladder, NewRatePoint(res))
		logf("capacity: ladder @ %.0f ops/s: p50=%v p99=%v completed=%d errors=%d unfinished=%d",
			rate, res.P50, res.P99, res.Completed, res.Errors, res.Unfinished)
	}

	search, err := FindSaturation(SearchConfig{
		Driver: suiteDriver(fleet.Addrs(), cfg.Seed),
		SLO:    SLO{P99: suiteSLOP99},
		LoRate: SmokeRate,
		HiRate: 6400,
		Drops:  fleet.UnexplainedDrops,
		Logf:   logf,
	})
	if err != nil {
		return nil, fmt.Errorf("capacity: saturation search: %w", err)
	}
	sum := &SaturationSummary{
		SustainableRate: search.Sustainable,
		CeilingRate:     search.Ceiling,
		SLOP99NS:        suiteSLOP99.Nanoseconds(),
	}
	for _, tr := range search.Trials {
		sum.Trials = append(sum.Trials, TrialPoint{
			Rate: tr.Rate, OK: tr.OK, Reason: tr.Reason, P99NS: tr.Result.P99.Nanoseconds(),
		})
	}
	out.Saturation = sum
	logf("capacity: sustainable %.0f ops/s (ceiling %.0f) under p99<=%v", search.Sustainable, search.Ceiling, suiteSLOP99)
	return out, nil
}

// RunGate starts a fresh fleet, re-measures the smoke point and compares
// it against the baseline report (see Gate).
func RunGate(baseline *Report, cfg SuiteConfig) (DriverResult, error) {
	fleet, err := StartFleet(FleetConfig{Seed: cfg.Seed})
	if err != nil {
		return DriverResult{}, err
	}
	defer fleet.Close()
	fresh, err := SmokePoint(fleet, cfg.Seed)
	if err != nil {
		return fresh, err
	}
	return fresh, Gate(baseline, fleet.Name(), fresh, 2)
}
