package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"newtop/internal/types"
)

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func entry(g types.GroupID, idx uint64, cmd string) Entry {
	return Entry{
		Pos:    types.LogPos{Group: g, Index: idx},
		Origin: types.ProcessID(1 + idx%3),
		Cmd:    []byte(cmd),
	}
}

func mustAppend(t *testing.T, l *Log, es ...Entry) {
	t.Helper()
	for _, e := range es {
		if err := l.Append(e); err != nil {
			t.Fatalf("Append %v: %v", e.Pos, err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func recoverGroup(t *testing.T, dir string, g types.GroupID, opts Options) (*Store, *Log, *Recovered) {
	t.Helper()
	s := openStore(t, dir, opts)
	l, err := s.OpenGroup(g)
	if err != nil {
		t.Fatalf("OpenGroup: %v", err)
	}
	rec, err := l.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return s, l, rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Policy: FsyncAlways})
	l, err := s.OpenGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	var want []Entry
	for i := uint64(0); i < 20; i++ {
		e := entry(1, i, fmt.Sprintf("cmd-%d", i))
		want = append(want, e)
		mustAppend(t, l, e)
	}
	if got := l.Pos(); got != (types.LogPos{Group: 1, Index: 19}) {
		t.Fatalf("Pos = %v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, l2, rec := recoverGroup(t, dir, 1, Options{Policy: FsyncAlways})
	if rec.Snapshot != nil || rec.Truncated != 0 {
		t.Fatalf("unexpected snapshot/truncation: %+v", rec)
	}
	if len(rec.Entries) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(rec.Entries), len(want))
	}
	for i, e := range rec.Entries {
		if e.Pos != want[i].Pos || e.Origin != want[i].Origin || !bytes.Equal(e.Cmd, want[i].Cmd) {
			t.Fatalf("entry %d: got %+v want %+v", i, e, want[i])
		}
	}
	if rec.Pos() != want[len(want)-1].Pos || rec.Applied() != 20 {
		t.Fatalf("Pos/Applied: %v %d", rec.Pos(), rec.Applied())
	}
	// The reopened log appends after the recovered tail.
	mustAppend(t, l2, entry(1, 20, "after"))
}

func TestSegmentRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Policy: FsyncAlways, SegmentBytes: 64})
	l, _ := s.OpenGroup(2)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := uint64(0); i < n; i++ {
		mustAppend(t, l, entry(2, i, "payload-payload-payload"))
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "g2", "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	_ = s.Close()

	_, _, rec := recoverGroup(t, dir, 2, Options{Policy: FsyncAlways, SegmentBytes: 64})
	if len(rec.Entries) != n || rec.Truncated != 0 {
		t.Fatalf("recovered %d entries (truncated %d), want %d", len(rec.Entries), rec.Truncated, n)
	}
}

func TestSnapshotCutGCAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Policy: FsyncAlways, SegmentBytes: 64})
	l, _ := s.OpenGroup(1)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30; i++ {
		mustAppend(t, l, entry(1, i, "payload-payload-payload"))
	}
	state := []byte("state@19")
	if err := l.CutSnapshot(types.LogPos{Group: 1, Index: 19}, 20, state); err != nil {
		t.Fatal(err)
	}
	// Entries 20..39 appended after the cut.
	for i := uint64(30); i < 40; i++ {
		mustAppend(t, l, entry(1, i, "payload-payload-payload"))
	}
	if sp, applied := l.SnapPos(); sp.Index != 19 || applied != 20 {
		t.Fatalf("SnapPos = %v/%d", sp, applied)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "g1", "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot file, got %v", snaps)
	}
	_ = s.Close()

	_, _, rec := recoverGroup(t, dir, 1, Options{Policy: FsyncAlways, SegmentBytes: 64})
	if !bytes.Equal(rec.Snapshot, state) || rec.SnapPos.Index != 19 || rec.SnapApplied != 20 {
		t.Fatalf("snapshot: %q @ %v/%d", rec.Snapshot, rec.SnapPos, rec.SnapApplied)
	}
	for _, e := range rec.Entries {
		if e.Pos.Index <= 19 {
			t.Fatalf("entry %v at or below the cut replayed", e.Pos)
		}
	}
	if got := rec.Applied(); got != 20+uint64(len(rec.Entries)) {
		t.Fatalf("Applied = %d", got)
	}
	if rec.Pos().Index != 39 {
		t.Fatalf("Pos = %v", rec.Pos())
	}
}

func TestSnapshotAtIndexZero(t *testing.T) {
	// "Cut at index 0" and "no snapshot" must be distinguishable: after a
	// cut at 0, entry 0 is covered but entry 1 replays.
	dir := t.TempDir()
	s := openStore(t, dir, Options{Policy: FsyncAlways})
	l, _ := s.OpenGroup(1)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, entry(1, 0, "zero"))
	if err := l.CutSnapshot(types.LogPos{Group: 1, Index: 0}, 1, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, entry(1, 1, "one"))
	_ = s.Close()

	_, _, rec := recoverGroup(t, dir, 1, Options{Policy: FsyncAlways})
	if rec.Snapshot == nil || rec.SnapPos.Index != 0 {
		t.Fatalf("snapshot not recovered: %+v", rec)
	}
	if len(rec.Entries) != 1 || rec.Entries[0].Pos.Index != 1 {
		t.Fatalf("replay tail wrong: %+v", rec.Entries)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Policy: FsyncNever})
	l, _ := s.OpenGroup(1)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	big := string(bytes.Repeat([]byte("p"), 1000))
	for i := uint64(0); i < 3; i++ {
		mustAppend(t, l, entry(1, i, big))
	}
	// Nothing was fsynced; Crash keeps half the unsynced bytes — with
	// 3 equal ~1KB records that lands mid-record-2.
	l.Crash()
	if err := l.Append(entry(1, 10, "x")); err != ErrCrashed {
		t.Fatalf("Append after crash: %v", err)
	}
	_ = s.Close()

	_, l2, rec := recoverGroup(t, dir, 1, Options{Policy: FsyncNever})
	if len(rec.Entries) >= 3 {
		t.Fatalf("recovered %d entries from a torn log", len(rec.Entries))
	}
	if rec.Truncated == 0 {
		t.Fatal("torn tail not counted")
	}
	for i, e := range rec.Entries {
		if e.Pos.Index != uint64(i) || string(e.Cmd) != big {
			t.Fatalf("entry %d corrupt after truncation: %v", i, e.Pos)
		}
	}
	// The truncated log accepts appends continuing the valid prefix.
	next := uint64(len(rec.Entries))
	mustAppend(t, l2, entry(1, next, "resumed"))
}

func TestFsyncAlwaysSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Policy: FsyncAlways})
	l, _ := s.OpenGroup(1)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		mustAppend(t, l, entry(1, i, "durable"))
	}
	l.Crash() // nothing unsynced: no loss
	_ = s.Close()

	_, _, rec := recoverGroup(t, dir, 1, Options{Policy: FsyncAlways})
	if len(rec.Entries) != 10 || rec.Truncated != 0 {
		t.Fatalf("fsync=always lost data: %d entries, %d truncated", len(rec.Entries), rec.Truncated)
	}
}

func TestCorruptMiddleSegmentDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Policy: FsyncAlways, SegmentBytes: 64})
	l, _ := s.OpenGroup(1)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 40; i++ {
		mustAppend(t, l, entry(1, i, "payload-payload-payload"))
	}
	_ = s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "g1", "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	// Flip a byte in the middle of the second segment.
	raw, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segs[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, rec := recoverGroup(t, dir, 1, Options{Policy: FsyncAlways, SegmentBytes: 64})
	if rec.Truncated == 0 {
		t.Fatal("corruption not detected")
	}
	// Entries stop strictly before the flipped record; the prefix is intact
	// and strictly ordered.
	if len(rec.Entries) == 0 || len(rec.Entries) >= 40 {
		t.Fatalf("recovered %d entries", len(rec.Entries))
	}
	for i, e := range rec.Entries {
		if e.Pos.Index != uint64(i) {
			t.Fatalf("entry %d has index %d", i, e.Pos.Index)
		}
	}
	// Segments after the corrupt one were deleted.
	left, _ := filepath.Glob(filepath.Join(dir, "g1", "wal-*.seg"))
	if len(left) >= len(segs) {
		t.Fatalf("suspect segments not deleted: %d -> %d", len(segs), len(left))
	}
}

func TestFsyncIntervalCoalesces(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Policy: FsyncInterval, Interval: time.Hour})
	l, _ := s.OpenGroup(1)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	// First Commit starts the window (lastSync zero => immediate fsync);
	// subsequent commits within the window must not fsync.
	mustAppend(t, l, entry(1, 0, "a"))
	before := s.opts.Metrics.Snapshot().Counters["newtop_wal_fsyncs_total"]
	mustAppend(t, l, entry(1, 1, "b"))
	mustAppend(t, l, entry(1, 2, "c"))
	after := s.opts.Metrics.Snapshot().Counters["newtop_wal_fsyncs_total"]
	if after != before {
		t.Fatalf("fsyncs within interval window: %v -> %v", before, after)
	}
	// Close flushes regardless of the window.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, rec := recoverGroup(t, dir, 1, Options{Policy: FsyncInterval})
	if len(rec.Entries) != 3 {
		t.Fatalf("close did not flush: %d entries", len(rec.Entries))
	}
}

func TestAppendValidation(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	l, _ := s.OpenGroup(1)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, entry(1, 5, "x"))
	if err := l.Append(entry(2, 6, "wrong-group")); err == nil {
		t.Fatal("cross-group append accepted")
	}
	if err := l.Append(entry(1, 5, "replay")); err == nil {
		t.Fatal("non-monotonic append accepted")
	}
	if err := l.Append(entry(1, 4, "regress")); err == nil {
		t.Fatal("regressing append accepted")
	}
	mustAppend(t, l, entry(1, 7, "gap ok")) // gaps are legal (buffered cmds skip indexes)
}

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if _, ok := s.LoadMeta(); ok {
		t.Fatal("meta present in empty store")
	}
	m := Meta{Group: 7, Members: []types.ProcessID{1, 2, 3}}
	if err := s.SaveMeta(m); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadMeta()
	if !ok || got.Group != 7 || len(got.Members) != 3 || got.Members[2] != 3 {
		t.Fatalf("LoadMeta = %+v, %v", got, ok)
	}
	// Corrupt meta reads as absent, not as garbage.
	path := filepath.Join(dir, "meta")
	raw, _ := os.ReadFile(path)
	raw[0] ^= 0xff
	_ = os.WriteFile(path, raw, 0o644)
	if _, ok := s.LoadMeta(); ok {
		t.Fatal("corrupt meta accepted")
	}
}

func TestGroupsPruneReset(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	for _, g := range []types.GroupID{3, 1, 2} {
		l, err := s.OpenGroup(g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Recover(); err != nil {
			t.Fatal(err)
		}
		mustAppend(t, l, entry(g, 0, "x"))
	}
	if gs := s.Groups(); len(gs) != 3 || gs[0] != 1 || gs[2] != 3 {
		t.Fatalf("Groups = %v", gs)
	}
	s.Prune(3)
	if gs := s.Groups(); len(gs) != 1 || gs[0] != 3 {
		t.Fatalf("after Prune: %v", gs)
	}
	if err := s.SaveMeta(Meta{Group: 3, Members: []types.ProcessID{1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if gs := s.Groups(); len(gs) != 0 {
		t.Fatalf("after Reset: %v", gs)
	}
	if _, ok := s.LoadMeta(); ok {
		t.Fatal("meta survived Reset")
	}
}

func TestCrashedLogRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	l, _ := s.OpenGroup(1)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, entry(1, 0, "x"))
	l.Crash()
	if err := l.Append(entry(1, 1, "y")); err != ErrCrashed {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(); err != ErrCrashed {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.CutSnapshot(types.LogPos{Group: 1, Index: 0}, 1, nil); err != ErrCrashed {
		t.Fatalf("CutSnapshot: %v", err)
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Policy: FsyncAlways})
	l, _ := s.OpenGroup(1)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, entry(1, 0, "a"))
	if err := l.CutSnapshot(types.LogPos{Group: 1, Index: 0}, 1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	// Plant a newer, corrupt snapshot by hand.
	bad := filepath.Join(dir, "g1", "snap-00000000000000ff.snap")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, rec := recoverGroup(t, dir, 1, Options{Policy: FsyncAlways})
	if string(rec.Snapshot) != "old" || rec.SnapPos.Index != 0 {
		t.Fatalf("did not fall back to the valid snapshot: %+v", rec)
	}
	if rec.Truncated == 0 {
		t.Fatal("corrupt snapshot not counted")
	}
}

func TestParseFsync(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"": FsyncAlways, "always": FsyncAlways,
		"interval": FsyncInterval, "never": FsyncNever,
	} {
		got, err := ParseFsync(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsync(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if FsyncInterval.String() != "interval" {
		t.Fatal("String")
	}
}
