package storage_test

import (
	"testing"

	"newtop/internal/perf"
)

// BenchmarkWALAppend measures the per-entry storage leg of the durable
// apply path (frame + write + Commit, fsync=never). The body lives in
// internal/perf so cmd/newtop-bench can run the identical measurement
// into BENCH_core.json.
func BenchmarkWALAppend(b *testing.B) { perf.WALAppend(b) }

// BenchmarkRecoverReplay measures one full restart recovery: scan and
// validate snapshot + 4096 WAL records, replay into a fresh store.
func BenchmarkRecoverReplay(b *testing.B) { perf.RecoverReplay(b) }
