package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"newtop/internal/types"
)

// Log is one group incarnation's durable delivery-stream suffix: a
// segmented append-only WAL of applied entries plus the latest snapshot
// cut at a position. All methods are goroutine-safe; the replica calls
// Append+Commit under its own apply mutex, so the per-entry cost on the
// measured path is one buffered write (plus the policy's fsync).
type Log struct {
	store *Store
	group types.GroupID
	dir   string

	mu sync.Mutex

	f        *os.File // active segment (append-only)
	segPath  string
	segStart uint64 // index the active segment was named with
	size     int64  // bytes written to the active segment
	durable  int64  // active-segment bytes known fsynced (power-loss floor)
	dirty    bool   // appends since the last fsync
	lastSync time.Time

	// closed segments retained for replay, ascending by start index;
	// each records the last entry index it holds so GC below a snapshot
	// position can delete whole files.
	closed []closedSeg

	pos     types.LogPos // last appended position (zero: nothing appended)
	applied uint64       // apply count at pos (parallel bookkeeping for snapshots)

	snapPos     types.LogPos // latest snapshot's cut position
	snapApplied uint64

	crashed bool
	dead    bool // closed
}

type closedSeg struct {
	path      string
	start     uint64
	lastIndex uint64
}

// Recovered is what a Log found on disk when opened: the latest valid
// snapshot (if any) and the WAL entries strictly above its position, in
// stream order, with the tail truncated at the first invalid record.
type Recovered struct {
	Group       types.GroupID
	Snapshot    []byte // state bytes; nil when no snapshot survived
	SnapPos     types.LogPos
	SnapApplied uint64
	Entries     []Entry
	Truncated   int // invalid/torn records dropped during the scan
}

// IsEmpty reports whether nothing usable was recovered.
func (r *Recovered) IsEmpty() bool {
	return r.Snapshot == nil && len(r.Entries) == 0
}

// Pos returns the highest position recovery restored: the last replayed
// entry's, or the snapshot's when the WAL held nothing above it.
func (r *Recovered) Pos() types.LogPos {
	if n := len(r.Entries); n > 0 {
		return r.Entries[n-1].Pos
	}
	return r.SnapPos
}

// Applied returns the apply count after restoring the snapshot and
// replaying every recovered entry.
func (r *Recovered) Applied() uint64 {
	return r.SnapApplied + uint64(len(r.Entries))
}

func openLog(s *Store, g types.GroupID) (*Log, error) {
	l := &Log{store: s, group: g, dir: s.groupDir(g)}
	if err := os.MkdirAll(l.dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return l, nil
}

// Group returns the incarnation this log belongs to.
func (l *Log) Group() types.GroupID { return l.group }

// Pos returns the last appended (or recovered) position.
func (l *Log) Pos() types.LogPos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos
}

// SnapPos returns the latest snapshot's cut position and apply count.
func (l *Log) SnapPos() (types.LogPos, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapPos, l.snapApplied
}

// Recover scans the group directory — latest valid snapshot, then every
// segment in order — and leaves the log positioned to append after the
// last valid record. The first torn or corrupt record ends the scan:
// the active segment is truncated there (never replayed past), and any
// later segments are deleted. Recover must be called before Append.
func (l *Log) Recover() (*Recovered, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		return nil, errors.New("storage: Recover after Append")
	}
	rec := &Recovered{Group: l.group}

	// Latest snapshot whose frame validates; corrupt ones are skipped.
	snaps, _ := filepath.Glob(filepath.Join(l.dir, "snap-*.snap"))
	sort.Strings(snaps) // names embed zero-padded indexes: lexical = numeric
	for i := len(snaps) - 1; i >= 0; i-- {
		raw, err := os.ReadFile(snaps[i])
		if err != nil {
			continue
		}
		body, _, err := decodeRecord(raw)
		if err != nil {
			rec.Truncated++
			continue
		}
		g, body, err1 := getUvarint(body)
		idx, body, err2 := getUvarint(body)
		applied, state, err3 := getUvarint(body)
		if err1 != nil || err2 != nil || err3 != nil || types.GroupID(g) != l.group {
			rec.Truncated++
			continue
		}
		rec.Snapshot = append([]byte(nil), state...)
		rec.SnapPos = types.LogPos{Group: l.group, Index: idx}
		rec.SnapApplied = applied
		l.snapPos, l.snapApplied = rec.SnapPos, applied
		break
	}

	segs, err := l.listSegments()
	if err != nil {
		return nil, err
	}
	var prev uint64 // last valid record's index (monotonicity check)
	havePrev := false
	broken := false
	for si, seg := range segs {
		raw, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		if broken {
			// Everything after a torn record is suspect: drop the file.
			rec.Truncated++
			_ = os.Remove(seg.path)
			continue
		}
		valid := 0 // bytes of raw known to hold intact records
		buf := raw
		segLast := uint64(0)
		for len(buf) > 0 {
			body, rest, err := decodeRecord(buf)
			if err != nil {
				broken = true
				rec.Truncated++
				break
			}
			e, err := decodeEntryBody(body)
			// Monotonicity is part of validity: a record for the wrong
			// group or out of stream order is corruption, not data.
			if err != nil || e.Pos.Group != l.group || (havePrev && e.Pos.Index <= prev) {
				broken = true
				rec.Truncated++
				break
			}
			e.Cmd = append([]byte(nil), e.Cmd...) // raw is transient
			if rec.Snapshot == nil || e.Pos.Index > rec.SnapPos.Index {
				rec.Entries = append(rec.Entries, e)
			}
			prev, segLast, havePrev = e.Pos.Index, e.Pos.Index, true
			valid = len(raw) - len(rest)
			buf = rest
		}
		if broken || si == len(segs)-1 {
			// Reopen the tail segment for appending, truncated to its
			// valid prefix.
			f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, fmt.Errorf("storage: %w", err)
			}
			if err := f.Truncate(int64(valid)); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("storage: %w", err)
			}
			if _, err := f.Seek(0, 2); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("storage: %w", err)
			}
			l.f, l.segPath, l.segStart = f, seg.path, seg.start
			l.size, l.durable = int64(valid), int64(valid)
		} else {
			l.closed = append(l.closed, closedSeg{path: seg.path, start: seg.start, lastIndex: segLast})
		}
	}
	l.pos = rec.Pos()
	l.applied = rec.Applied()
	return rec, nil
}

type diskSeg struct {
	path  string
	start uint64
}

func (l *Log) listSegments() ([]diskSeg, error) {
	paths, err := filepath.Glob(filepath.Join(l.dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	segs := make([]diskSeg, 0, len(paths))
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ".seg")
		v, err := strconv.ParseUint(strings.TrimPrefix(name, "wal-"), 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, diskSeg{path: p, start: v})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// Append buffers one entry into the active segment (no fsync — see
// Commit). Positions must be strictly increasing.
func (l *Log) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed || l.dead {
		return ErrCrashed
	}
	if e.Pos.Group != l.group {
		return fmt.Errorf("storage: entry for %v appended to %v's log", e.Pos.Group, l.group)
	}
	if !l.pos.IsNil() && e.Pos.Index <= l.pos.Index {
		return fmt.Errorf("storage: append at %v not after %v", e.Pos, l.pos)
	}
	if l.f == nil || l.size >= l.store.opts.SegmentBytes {
		if err := l.rotateLocked(e.Pos.Index); err != nil {
			return err
		}
	}
	frame := appendRecord(nil, appendEntryBody(make([]byte, 0, 24+len(e.Cmd)), e))
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	l.size += int64(len(frame))
	l.dirty = true
	l.pos = e.Pos
	l.applied++
	l.store.om.appends.Inc()
	l.store.om.bytes.Add(uint64(len(frame)))
	return nil
}

// rotateLocked closes the active segment (fsyncing it unless the policy
// is Never) and starts a fresh one named by the next entry's index.
func (l *Log) rotateLocked(nextIndex uint64) error {
	if l.f != nil {
		if l.store.opts.Policy != FsyncNever {
			l.fsyncLocked()
		}
		_ = l.f.Close()
		l.closed = append(l.closed, closedSeg{path: l.segPath, start: l.segStart, lastIndex: l.pos.Index})
		l.store.om.rotations.Inc()
	}
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%016x.seg", nextIndex))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	syncDir(l.dir)
	l.f, l.segPath, l.segStart = f, path, nextIndex
	l.size, l.durable, l.dirty = 0, 0, false
	return nil
}

// Commit makes appended entries durable per the fsync policy: Always
// fsyncs now, Interval fsyncs when the window elapsed, Never does
// nothing. The replica calls it once per apply step, before any waiter
// is woken — under Always, acked therefore means durable.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed || l.dead {
		return ErrCrashed
	}
	if !l.dirty || l.f == nil {
		return nil
	}
	switch l.store.opts.Policy {
	case FsyncAlways:
		l.fsyncLocked()
	case FsyncInterval:
		if now := time.Now(); now.Sub(l.lastSync) >= l.store.opts.Interval {
			l.fsyncLocked()
			l.lastSync = now
		}
	case FsyncNever:
	}
	return nil
}

func (l *Log) fsyncLocked() {
	start := time.Now()
	_ = l.f.Sync()
	l.store.om.fsyncLat.ObserveDuration(time.Since(start))
	l.store.om.fsyncs.Inc()
	l.durable = l.size
	l.dirty = false
}

// CutSnapshot durably records state as covering every entry with
// Index ≤ pos.Index (applied is the apply count at the cut), then GCs:
// closed segments wholly below the cut and superseded snapshot files are
// deleted. The caller guarantees state reflects every entry appended so
// far up to pos.
func (l *Log) CutSnapshot(pos types.LogPos, applied uint64, state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed || l.dead {
		return ErrCrashed
	}
	body := binary.AppendUvarint(make([]byte, 0, 24+len(state)), uint64(l.group))
	body = binary.AppendUvarint(body, pos.Index)
	body = binary.AppendUvarint(body, applied)
	body = append(body, state...)
	path := filepath.Join(l.dir, fmt.Sprintf("snap-%016x.snap", pos.Index))
	if err := writeFileDurable(path, frameRecord(body)); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	l.snapPos, l.snapApplied = pos, applied
	l.store.om.snapshots.Inc()

	// GC: whole closed segments at or below the cut, and older snapshots.
	kept := l.closed[:0]
	for _, seg := range l.closed {
		if seg.lastIndex <= pos.Index {
			_ = os.Remove(seg.path)
			l.store.om.gcSegs.Inc()
			continue
		}
		kept = append(kept, seg)
	}
	l.closed = kept
	if snaps, err := filepath.Glob(filepath.Join(l.dir, "snap-*.snap")); err == nil {
		for _, p := range snaps {
			if p != path {
				_ = os.Remove(p)
			}
		}
	}
	return nil
}

// Crash models power loss for tests: the log goes dead (all mutations
// fail) and the active segment loses its unsynced suffix — worst case,
// everything after the last fsync; to exercise torn-record truncation it
// keeps the first half of the unsynced bytes, which may end mid-record.
// Closed segments were fsynced at rotation and survive intact (under
// FsyncNever they too were never synced, but the model charges loss to
// the active tail only).
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed || l.dead {
		return
	}
	l.crashed = true
	if l.f == nil {
		return
	}
	if lost := l.size - l.durable; lost > 0 {
		_ = l.f.Truncate(l.durable + lost/2)
	}
	_ = l.f.Close()
	l.f = nil
}

// Close flushes (per policy) and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return nil
	}
	l.dead = true
	if l.f == nil || l.crashed {
		return nil
	}
	if l.dirty && l.store.opts.Policy != FsyncNever {
		l.fsyncLocked()
	}
	err := l.f.Close()
	l.f = nil
	return err
}
