package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"newtop/internal/types"
	"newtop/internal/wire"
)

// fuzzSegmentSeed builds a valid segment whose command payloads are real
// wire encodings — the same corpus shapes the protocol fuzzers chew on —
// so mutations explore realistic record interiors, not just framing.
func fuzzSegmentSeed() []byte {
	cmds := [][]byte{
		[]byte("put k v"),
		wire.Marshal(nil, &types.Message{Kind: types.KindData, Group: 1, Sender: 2, Origin: 2, Num: 7, Seq: 3, Payload: []byte("put k v")}),
		wire.Marshal(nil, &types.Message{Kind: types.KindFormInvite, Group: 5, Sender: 1, Origin: 1, Payload: []byte{2}, Invite: []types.ProcessID{1, 2, 3}}),
		{},
		bytes.Repeat([]byte{0xff}, 100),
	}
	var seg []byte
	for i, cmd := range cmds {
		e := Entry{
			Pos:    types.LogPos{Group: 1, Index: uint64(i)},
			Origin: types.ProcessID(1 + i%3),
			Cmd:    cmd,
		}
		seg = appendRecord(seg, appendEntryBody(nil, e))
	}
	return seg
}

// FuzzWALSegment feeds arbitrary bytes to the segment recovery scan as a
// group's sole WAL segment. Whatever the bytes, recovery must not panic
// or error: it truncates at the first invalid record, what it does replay
// is a strictly ordered run of group-1 entries, and a second recovery of
// the truncated directory is clean (same entries, nothing more to drop) —
// i.e. truncation converges instead of gnawing the log down on every
// restart.
func FuzzWALSegment(f *testing.F) {
	seed := fuzzSegmentSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail mid-record
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0xff // CRC mismatch mid-segment
	f.Add(flipped)
	// Hostile length: valid CRC header but a body length running far past
	// the buffer.
	f.Add([]byte{0x12, 0x34, 0x56, 0x78, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		gdir := filepath.Join(dir, "g1")
		if err := os.MkdirAll(gdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(gdir, "wal-0000000000000000.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir, Policy: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		l, err := s.OpenGroup(1)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := l.Recover()
		if err != nil {
			t.Fatalf("Recover errored on corrupt input: %v", err)
		}
		last, haveLast := uint64(0), false
		for _, e := range rec.Entries {
			if e.Pos.Group != 1 {
				t.Fatalf("foreign-group entry replayed: %v", e.Pos)
			}
			if haveLast && e.Pos.Index <= last {
				t.Fatalf("replay not strictly ordered: %d after %d", e.Pos.Index, last)
			}
			last, haveLast = e.Pos.Index, true
		}
		// The truncated log must accept a continuing append.
		if !haveLast || last < ^uint64(0) {
			next := uint64(0)
			if haveLast {
				next = last + 1
			}
			if err := l.Append(Entry{Pos: types.LogPos{Group: 1, Index: next}, Origin: 1, Cmd: []byte("resume")}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Idempotence: recovering the repaired directory drops nothing.
		s2, err := Open(Options{Dir: dir, Policy: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		l2, err := s2.OpenGroup(1)
		if err != nil {
			t.Fatal(err)
		}
		rec2, err := l2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if rec2.Truncated != 0 {
			t.Fatalf("second recovery still truncating (%d records)", rec2.Truncated)
		}
		want := len(rec.Entries)
		if !haveLast || last < ^uint64(0) {
			want++ // the resume append above
		}
		if len(rec2.Entries) != want {
			t.Fatalf("second recovery found %d entries, want %d", len(rec2.Entries), want)
		}
		for i, e := range rec.Entries {
			e2 := rec2.Entries[i]
			if e2.Pos != e.Pos || e2.Origin != e.Origin || !bytes.Equal(e2.Cmd, e.Cmd) {
				t.Fatalf("entry %d diverged across recoveries", i)
			}
		}
	})
}
