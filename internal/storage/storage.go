// Package storage is the durability layer under the replication stream:
// a per-group segmented write-ahead log of applied entries plus periodic
// on-disk snapshots, both addressed by types.LogPos — the explicit
// (group, delivery-index) position every layer of the apply pipeline
// threads through.
//
// The group's total order is already the perfect replication log (§5.3's
// state transfer and the reconciliation machinery both cut at a point in
// it); this package merely makes a suffix of it survive a restart. A
// recovering daemon restores the latest snapshot, replays the WAL tail
// above the snapshot's position, and rejoins its former partners via the
// reconcile fast path — never a full snapshot stream.
//
// Layout under a daemon's data dir:
//
//	meta                  last known group + membership (announce targets)
//	g<id>/wal-<idx>.seg   WAL segments, named by first record's index
//	g<id>/snap-<idx>.snap state snapshot covering entries with Index ≤ idx
//
// Groups are never rejoined (§3): each incarnation logs into its own
// subdirectory, and recovery picks the highest one. Records reuse the
// wire style of encoding (uvarint fields) framed by a CRC32 and a length,
// so a torn or corrupt tail is detected and truncated, never replayed.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"newtop/internal/obs"
	"newtop/internal/types"
)

// ErrCrashed is returned by mutations on a Log after Crash().
var ErrCrashed = errors.New("storage: log crashed")

// FsyncPolicy selects when appended records are forced to stable media.
type FsyncPolicy uint8

// Fsync policies. Always is the "acked ⇒ durable" setting: the replica
// commits (and fsyncs) before any waiter is woken, so an acknowledged
// write survives power loss. Interval amortises the fsync over a time
// window — a crash loses at most the window. Never leaves flushing to
// the OS entirely (throughput/testing mode; a crash can lose the whole
// active segment).
const (
	FsyncAlways FsyncPolicy = iota
	FsyncInterval
	FsyncNever
)

// ParseFsync parses "always", "interval" or "never".
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (want always|interval|never)", s)
}

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("fsync(%d)", uint8(p))
}

// Entry is one durably logged apply: the command bytes applied at Pos,
// authored by Origin. Only state-machine commands are logged — protocol
// frames (offers, chunks, reconcile traffic) are reproducible or
// re-negotiated and never replayed from disk.
type Entry struct {
	Pos    types.LogPos
	Origin types.ProcessID
	Cmd    []byte
}

// DefaultSegmentBytes is the segment-rotation threshold.
const DefaultSegmentBytes = 4 << 20

// Options configures a Store.
type Options struct {
	Dir          string
	Policy       FsyncPolicy
	Interval     time.Duration // FsyncInterval flush cadence (default 50ms)
	SegmentBytes int64         // rotation threshold (default DefaultSegmentBytes)
	Metrics      *obs.Registry // nil: private registry
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Meta is the store-level sidecar: the last group this daemon served and
// its membership — the targets a recovered daemon announces itself to.
type Meta struct {
	Group   types.GroupID
	Members []types.ProcessID
}

// storeMetrics holds the pre-resolved observability handles shared by
// every Log of a store.
type storeMetrics struct {
	appends   *obs.Counter   // records appended
	bytes     *obs.Counter   // record bytes appended
	fsyncs    *obs.Counter   // fsync calls issued
	fsyncLat  *obs.Histogram // fsync latency
	rotations *obs.Counter   // segment rotations
	snapshots *obs.Counter   // snapshots cut
	gcSegs    *obs.Counter   // segments deleted below the snapshot position
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	return storeMetrics{
		appends:   reg.Counter("newtop_wal_appends_total"),
		bytes:     reg.Counter("newtop_wal_bytes_total"),
		fsyncs:    reg.Counter("newtop_wal_fsyncs_total"),
		fsyncLat:  reg.Histogram("newtop_wal_fsync_seconds"),
		rotations: reg.Counter("newtop_wal_segment_rotations_total"),
		snapshots: reg.Counter("newtop_wal_snapshots_cut_total"),
		gcSegs:    reg.Counter("newtop_wal_gc_segments_total"),
	}
}

// Store manages one daemon's data directory: the meta sidecar plus one
// Log per group incarnation.
type Store struct {
	opts Options
	om   storeMetrics

	mu   sync.Mutex
	logs map[types.GroupID]*Log
}

// Open creates (or reopens) the data directory.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("storage: empty data dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &Store{
		opts: opts,
		om:   newStoreMetrics(opts.Metrics),
		logs: make(map[types.GroupID]*Log),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.opts.Dir }

// Policy returns the configured fsync policy.
func (s *Store) Policy() FsyncPolicy { return s.opts.Policy }

// SaveMeta durably records the group + membership sidecar (tmp + rename).
func (s *Store) SaveMeta(m Meta) error {
	body := binary.AppendUvarint(nil, uint64(m.Group))
	body = binary.AppendUvarint(body, uint64(len(m.Members)))
	for _, p := range m.Members {
		body = binary.AppendUvarint(body, uint64(p))
	}
	return writeFileDurable(filepath.Join(s.opts.Dir, "meta"), frameRecord(body))
}

// LoadMeta reads the sidecar; ok is false when absent or corrupt.
func (s *Store) LoadMeta() (Meta, bool) {
	raw, err := os.ReadFile(filepath.Join(s.opts.Dir, "meta"))
	if err != nil {
		return Meta{}, false
	}
	body, _, err := decodeRecord(raw)
	if err != nil {
		return Meta{}, false
	}
	g, body, err1 := getUvarint(body)
	n, body, err2 := getUvarint(body)
	if err1 != nil || err2 != nil || n > uint64(len(body)) {
		return Meta{}, false
	}
	m := Meta{Group: types.GroupID(g), Members: make([]types.ProcessID, 0, n)}
	for i := uint64(0); i < n; i++ {
		var p uint64
		var err error
		if p, body, err = getUvarint(body); err != nil {
			return Meta{}, false
		}
		m.Members = append(m.Members, types.ProcessID(p))
	}
	return m, true
}

// OpenGroup opens (creating if needed) group g's log. One *Log per group
// per store; reopening returns the same instance.
func (s *Store) OpenGroup(g types.GroupID) (*Log, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.logs[g]; ok {
		return l, nil
	}
	l, err := openLog(s, g)
	if err != nil {
		return nil, err
	}
	s.logs[g] = l
	return l, nil
}

// Groups lists the group incarnations present on disk, ascending.
func (s *Store) Groups() []types.GroupID {
	ents, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return nil
	}
	var out []types.GroupID
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "g") {
			continue
		}
		if v, err := strconv.ParseUint(e.Name()[1:], 10, 32); err == nil {
			out = append(out, types.GroupID(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Prune deletes every group directory except keep's — called once a
// successor group's state is durable, making older incarnations garbage.
func (s *Store) Prune(keep types.GroupID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.Groups() {
		if g == keep {
			continue
		}
		if l, ok := s.logs[g]; ok {
			_ = l.Close()
			delete(s.logs, g)
		}
		_ = os.RemoveAll(s.groupDir(g))
	}
}

// Reset wipes the whole store — the discard rule: the on-disk lineage was
// superseded (or explicitly abandoned) and the daemon rejoins fresh.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for g, l := range s.logs {
		_ = l.Close()
		delete(s.logs, g)
	}
	ents, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if err := os.RemoveAll(filepath.Join(s.opts.Dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// Crash models power loss across every open log (tests): each active
// segment loses a suffix of its unsynced bytes and all further mutations
// fail with ErrCrashed. The store itself stays open — Close remains safe.
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.logs {
		l.Crash()
	}
}

// Close closes every open log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for g, l := range s.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.logs, g)
	}
	return first
}

func (s *Store) groupDir(g types.GroupID) string {
	return filepath.Join(s.opts.Dir, fmt.Sprintf("g%d", uint64(g)))
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

// Record frame: u32le CRC32-IEEE(body) | uvarint len(body) | body.
// Everything after the frame fails its CRC or runs out of bytes is a torn
// tail and is truncated by recovery.

const maxRecordBody = 64 << 20 // decode sanity bound

func frameRecord(body []byte) []byte {
	out := make([]byte, 4, 4+binary.MaxVarintLen64+len(body))
	binary.LittleEndian.PutUint32(out, crc32.ChecksumIEEE(body))
	out = binary.AppendUvarint(out, uint64(len(body)))
	return append(out, body...)
}

// appendRecord frames body into dst (append semantics).
func appendRecord(dst, body []byte) []byte {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	dst = append(dst, crc[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// decodeRecord pulls one framed record off buf, returning the body and
// the remainder. Any framing violation — short header, absurd length,
// short body, CRC mismatch — is an error; callers treat it as a torn
// tail.
func decodeRecord(buf []byte) (body, rest []byte, err error) {
	if len(buf) < 5 {
		return nil, nil, errors.New("storage: short record header")
	}
	crc := binary.LittleEndian.Uint32(buf)
	n, w := binary.Uvarint(buf[4:])
	if w <= 0 || n > maxRecordBody {
		return nil, nil, errors.New("storage: bad record length")
	}
	buf = buf[4+w:]
	if uint64(len(buf)) < n {
		return nil, nil, errors.New("storage: short record body")
	}
	body, rest = buf[:n], buf[n:]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, nil, errors.New("storage: record crc mismatch")
	}
	return body, rest, nil
}

// Entry body: uvarint group | uvarint index | uvarint origin | cmd bytes.

func appendEntryBody(dst []byte, e Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(e.Pos.Group))
	dst = binary.AppendUvarint(dst, e.Pos.Index)
	dst = binary.AppendUvarint(dst, uint64(e.Origin))
	return append(dst, e.Cmd...)
}

func decodeEntryBody(body []byte) (Entry, error) {
	g, body, err1 := getUvarint(body)
	idx, body, err2 := getUvarint(body)
	origin, body, err3 := getUvarint(body)
	if err1 != nil || err2 != nil || err3 != nil {
		return Entry{}, errors.New("storage: truncated entry body")
	}
	return Entry{
		Pos:    types.LogPos{Group: types.GroupID(g), Index: idx},
		Origin: types.ProcessID(origin),
		Cmd:    body,
	}, nil
}

func getUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, errors.New("storage: truncated uvarint")
	}
	return v, buf[n:], nil
}

// ---------------------------------------------------------------------------
// Durable file helpers
// ---------------------------------------------------------------------------

// writeFileDurable writes data via tmp + fsync + rename + dir fsync, so
// the file is either the old content or the complete new content.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir best-effort fsyncs a directory so renames/creates within it are
// durable. Errors are ignored: not every filesystem supports it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
