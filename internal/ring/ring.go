// Package ring implements transport-level ring dissemination of large
// payloads (Ring Paxos style, Marandi et al.): a payload at or above a
// configurable size threshold travels the view-defined ring — each member
// forwards the frame once to its ring successor, so the originator's
// bandwidth is O(payload) instead of O(n·payload) — while the small
// ordering metadata keeps flowing point-to-point, exactly as the engine
// emitted it.
//
// The engine never sees ring traffic. A runtime (internal/node's goroutine
// loop, internal/sim's deterministic scheduler) owns a Ring per process and
// threads every outbound SendEffect and every inbound message through it:
//
//   - OnSend splits an eligible multicast into one KindRingData frame to
//     the ring successor plus one KindRingHdr per remaining destination.
//   - OnReceive relays ring payloads onward, reassembles header + payload
//     (either may arrive first) and releases completed messages to the
//     engine in the header's FIFO arrival order, so the engine's per-origin
//     gap detection never fires on ring reordering.
//   - Tick re-requests payloads that never completed (KindRingPull to the
//     disseminator, served from a bounded cache of recent own sends).
//   - OnViewChange re-disseminates recent own payloads on the new ring and
//     abandons reassembly state owed by removed members; an abandoned
//     message is ordinary message loss to the engine, which the protocol's
//     gap/suspicion/refute recovery already handles.
//
// Ownership contract: OnReceive's relay outbounds may alias the inbound
// message's borrowed transport buffer — the caller must hand them to a
// synchronous-marshal transport before releasing the buffer. Everything in
// the returned delivers slice, and everything the Ring retains internally,
// is sealed (owns its memory).
package ring

import (
	"sort"
	"time"

	"newtop/internal/obs"
	"newtop/internal/types"
)

// Outbound is a frame the runtime must hand to its transport. Msg may
// alias the buffer of the inbound message that produced it; send before
// releasing that buffer.
type Outbound struct {
	To  types.ProcessID
	Msg *types.Message
}

// Delivered is a message released to the engine, with the transport-level
// peer it is attributed to. Msg owns all of its memory.
type Delivered struct {
	From types.ProcessID
	Msg  *types.Message
}

// Config parameterises a Ring.
type Config struct {
	Self types.ProcessID

	// Threshold is the payload size in bytes at or above which a KindData
	// multicast rides the ring. Zero or negative disables splitting (the
	// Ring still relays and reassembles frames from peers that have it on).
	Threshold int

	// PullAfter is how long a reassembly waits for its payload before
	// asking the disseminator to re-send. Zero defaults to 250ms.
	PullAfter time.Duration

	// MineCap bounds the cache of recent own disseminations kept for pull
	// replies and view-change re-dissemination. Zero defaults to 32.
	MineCap int

	// Metrics, when set, receives ring observability: dissemination /
	// relay / pull counters, hop-count and reassembly-wait histograms,
	// and labeled drop counters for orphan eviction and abandoned
	// reassemblies. Nil disables at one branch per event.
	Metrics *obs.Registry
}

// ringMetrics is the resolved handle set (all nil without Config.Metrics).
type ringMetrics struct {
	disseminations *obs.Counter   // own multicasts split onto the ring
	relays         *obs.Counter   // payload frames forwarded to the successor
	pulls          *obs.Counter   // re-send requests issued by Tick
	pullsServed    *obs.Counter   // pull replies served from the own-send cache
	redisseminated *obs.Counter   // payloads re-sent on a view change
	hops           *obs.Histogram // hop count of payload frames at arrival
	reassemblyWait *obs.Histogram // header-to-payload completion wait (ns)
	dropOrphan     *obs.Counter   // parked payload evicted at orphanCap
	dropAbandoned  *obs.Counter   // incomplete reassembly owed by a removed member
}

func newRingMetrics(reg *obs.Registry) ringMetrics {
	if reg == nil {
		return ringMetrics{}
	}
	return ringMetrics{
		disseminations: reg.Counter("newtop_ring_disseminations_total"),
		relays:         reg.Counter("newtop_ring_relays_total"),
		pulls:          reg.Counter("newtop_ring_pulls_total"),
		pullsServed:    reg.Counter("newtop_ring_pulls_served_total"),
		redisseminated: reg.Counter("newtop_ring_redisseminations_total"),
		hops:           reg.Histogram("newtop_ring_hops"),
		reassemblyWait: reg.Histogram("newtop_ring_reassembly_wait_ns"),
		dropOrphan:     reg.Counter(`newtop_drops_total{layer="ring",reason="orphan_evicted"}`),
		dropAbandoned:  reg.Counter(`newtop_drops_total{layer="ring",reason="reassembly_abandoned"}`),
	}
}

const (
	defaultPullAfter = 250 * time.Millisecond
	defaultMineCap   = 32

	// seenCap bounds the per-group dedupe set of completed message IDs;
	// orphanCap bounds payloads parked while their header is in flight.
	seenCap   = 1024
	orphanCap = 256
)

// Ring is one process's dissemination state across all of its groups.
// It is not safe for concurrent use; each runtime drives it from its own
// single-threaded loop.
type Ring struct {
	cfg    Config
	groups map[types.GroupID]*groupRing

	// Split state of the multicast currently being fanned out: mcast
	// emits the same message to n−1 destinations back to back, and only
	// the first sighting starts a dissemination.
	curID  types.MessageID
	curSet bool
	curHdr *types.Message

	om ringMetrics
}

// New creates a Ring for self with the given config.
func New(cfg Config) *Ring {
	if cfg.PullAfter <= 0 {
		cfg.PullAfter = defaultPullAfter
	}
	if cfg.MineCap <= 0 {
		cfg.MineCap = defaultMineCap
	}
	return &Ring{cfg: cfg, groups: make(map[types.GroupID]*groupRing), om: newRingMetrics(cfg.Metrics)}
}

// groupRing is the per-group dissemination state.
type groupRing struct {
	members []types.ProcessID // sorted view members; the ring order

	// pend holds, per disseminator, the FIFO of messages whose release to
	// the engine is gated on ring reassembly. Only the head may be
	// incomplete; completed items drain in order.
	pend map[types.ProcessID]*senderQueue

	// orphans parks reassembled payloads that arrived before their header.
	orphans     map[types.MessageID]*types.Message
	orphanOrder []types.MessageID

	// seen dedupes completed disseminations (re-disseminated frames after
	// a view change, late relays).
	seen      map[types.MessageID]struct{}
	seenOrder []types.MessageID

	// mine caches owned clones of recent own disseminations for pull
	// replies and view-change re-dissemination.
	mine []*types.Message
}

// pendItem is one slot in a disseminator's release FIFO: either a fully
// reassembled (or ordinary queued-behind) message, or an expectation
// created by a KindRingHdr whose payload has not arrived yet.
type pendItem struct {
	msg      *types.Message
	complete bool
	since    time.Time
	lastPull time.Time
}

type senderQueue struct {
	items []pendItem
}

func (q *senderQueue) find(id types.MessageID) int {
	for i := range q.items {
		if q.items[i].msg.ID() == id {
			return i
		}
	}
	return -1
}

func (r *Ring) group(g types.GroupID) *groupRing {
	gr := r.groups[g]
	if gr == nil {
		gr = &groupRing{
			pend:    make(map[types.ProcessID]*senderQueue),
			orphans: make(map[types.MessageID]*types.Message),
			seen:    make(map[types.MessageID]struct{}),
		}
		r.groups[g] = gr
	}
	return gr
}

// successor returns the next member after self in ring order, or
// NilProcess when the view has no ring (fewer than two others, or self not
// a member).
func successor(members []types.ProcessID, self types.ProcessID) types.ProcessID {
	n := len(members)
	if n < 2 {
		return types.NilProcess
	}
	for i, p := range members {
		if p == self {
			return members[(i+1)%n]
		}
	}
	return types.NilProcess
}

// OnSend maps one engine SendEffect to the frames that actually go on the
// wire. An eligible multicast (KindData, payload ≥ Threshold, ring of ≥3)
// is split: the first sighting emits the payload-bearing KindRingData to
// the ring successor plus a KindRingHdr to the effect's destination; every
// further destination of the same message gets a header only. Anything
// else passes through unchanged.
func (r *Ring) OnSend(to types.ProcessID, m *types.Message) []Outbound {
	if m.Kind != types.KindData || r.cfg.Threshold <= 0 || len(m.Payload) < r.cfg.Threshold {
		return []Outbound{{To: to, Msg: m}}
	}
	gr := r.groups[m.Group]
	if gr == nil || len(gr.members) < 3 {
		return []Outbound{{To: to, Msg: m}}
	}
	succ := successor(gr.members, r.cfg.Self)
	if succ == types.NilProcess {
		return []Outbound{{To: to, Msg: m}}
	}
	id := m.ID()
	if !r.curSet || r.curID != id {
		// First sighting: start the dissemination.
		r.curID = id
		r.curSet = true
		r.curHdr = hdrFrame(m)
		gr.remember(m, r.cfg.MineCap)
		r.om.disseminations.Inc()
		outs := []Outbound{{To: succ, Msg: ringDataFrame(m, 0)}}
		if to != succ {
			outs = append(outs, Outbound{To: to, Msg: r.curHdr})
		}
		return outs
	}
	if to == succ {
		// The successor already has the self-contained payload frame.
		return nil
	}
	return []Outbound{{To: to, Msg: r.curHdr}}
}

// ringDataFrame builds the payload-bearing ring frame for m. The payload
// aliases m's; callers hand it to a synchronous-marshal transport.
func ringDataFrame(m *types.Message, hops uint8) *types.Message {
	return &types.Message{
		Kind: types.KindRingData, Group: m.Group,
		Sender: m.Sender, Origin: m.Origin,
		Num: m.Num, Seq: m.Seq, LDN: m.LDN,
		Hops: hops, Payload: m.Payload,
	}
}

// hdrFrame builds the payload-less ordering metadata frame for m.
func hdrFrame(m *types.Message) *types.Message {
	return &types.Message{
		Kind: types.KindRingHdr, Group: m.Group,
		Sender: m.Sender, Origin: m.Origin,
		Num: m.Num, Seq: m.Seq, LDN: m.LDN,
	}
}

// reconstruct rebuilds the ordinary data message a ring frame dissected,
// owning a copy of the borrowed payload.
func reconstruct(m *types.Message) *types.Message {
	d := &types.Message{
		Kind: types.KindData, Group: m.Group,
		Sender: m.Sender, Origin: m.Origin,
		Num: m.Num, Seq: m.Seq, LDN: m.LDN,
	}
	if len(m.Payload) > 0 {
		d.Payload = append([]byte(nil), m.Payload...)
	}
	return d
}

// remember caches an owned clone of an own dissemination.
func (gr *groupRing) remember(m *types.Message, cap int) {
	gr.mine = append(gr.mine, m.Clone())
	if len(gr.mine) > cap {
		copy(gr.mine, gr.mine[len(gr.mine)-cap:])
		gr.mine = gr.mine[:cap]
	}
}

func (gr *groupRing) markSeen(id types.MessageID) {
	if _, ok := gr.seen[id]; ok {
		return
	}
	gr.seen[id] = struct{}{}
	gr.seenOrder = append(gr.seenOrder, id)
	if len(gr.seenOrder) > seenCap {
		delete(gr.seen, gr.seenOrder[0])
		gr.seenOrder = gr.seenOrder[1:]
	}
}

// park holds a payload that arrived before its header; it reports whether
// the oldest orphan was evicted to make room (a silent drop the engine
// heals through gap/suspicion recovery — the drop counter makes it loud).
func (gr *groupRing) park(id types.MessageID, m *types.Message) (evicted bool) {
	if _, ok := gr.orphans[id]; ok {
		return false
	}
	gr.orphans[id] = m
	gr.orphanOrder = append(gr.orphanOrder, id)
	if len(gr.orphanOrder) > orphanCap {
		delete(gr.orphans, gr.orphanOrder[0])
		gr.orphanOrder = gr.orphanOrder[1:]
		return true
	}
	return false
}

// OnReceive threads one inbound message through the ring layer. The
// returned outbounds may alias m's transport buffer (send them before
// releasing it); the returned delivers own their memory and go to the
// engine in order.
func (r *Ring) OnReceive(now time.Time, from types.ProcessID, m *types.Message) (outs []Outbound, delivers []Delivered) {
	switch m.Kind {
	case types.KindRingData:
		return r.onRingData(now, from, m)
	case types.KindRingHdr:
		return r.onRingHdr(now, from, m)
	case types.KindRingPull:
		return r.onRingPull(from, m), nil
	}
	// Ordinary traffic: if reassemblies from this peer are pending, the
	// message must queue behind them to preserve the peer's FIFO order;
	// otherwise it goes straight through.
	if gr := r.groups[m.Group]; gr != nil {
		if q := gr.pend[from]; q != nil && len(q.items) > 0 {
			m.Own()
			q.items = append(q.items, pendItem{msg: m, complete: true})
			return nil, nil
		}
	}
	m.Own()
	return nil, []Delivered{{From: from, Msg: m}}
}

// onRingData handles a payload frame: relay it to the ring successor if
// the ring is not yet covered, then slot the payload into reassembly.
func (r *Ring) onRingData(now time.Time, from types.ProcessID, m *types.Message) (outs []Outbound, delivers []Delivered) {
	gr := r.group(m.Group)
	id := m.ID()
	if _, dup := gr.seen[id]; dup {
		// Already completed here (late relay or re-dissemination); our
		// successor got its copy when we first relayed.
		return nil, nil
	}
	if m.Hops != types.RingNoRelay {
		r.om.hops.Observe(int64(m.Hops))
	}
	if m.Hops != types.RingNoRelay && len(gr.members) >= 3 {
		succ := successor(gr.members, r.cfg.Self)
		if succ != types.NilProcess && succ != m.Sender && int(m.Hops)+1 < len(gr.members) {
			rm := *m
			rm.Hops++
			outs = append(outs, Outbound{To: succ, Msg: &rm})
			r.om.relays.Inc()
		}
	}
	// Hops==0 straight from the disseminator means the frame arrived on
	// the same FIFO channel the header would have used: it may take a
	// fresh slot in the release order. A relayed or pulled frame may only
	// complete an existing expectation or park as an orphan.
	ordered := m.Hops == 0 && from == m.Sender
	q := gr.pend[m.Sender]
	if q != nil {
		if i := q.find(id); i >= 0 {
			if it := &q.items[i]; !it.complete && !it.since.IsZero() {
				r.om.reassemblyWait.ObserveDuration(now.Sub(it.since))
			}
			q.items[i].msg = reconstruct(m)
			q.items[i].complete = true
			gr.markSeen(id)
			delivers = r.drain(gr, m.Sender, q, delivers)
			return outs, delivers
		}
	}
	if !ordered {
		if gr.park(id, reconstruct(m)) {
			r.om.dropOrphan.Inc()
		}
		return outs, delivers
	}
	gr.markSeen(id)
	if q != nil && len(q.items) > 0 {
		q.items = append(q.items, pendItem{msg: reconstruct(m), complete: true})
		return outs, delivers
	}
	delivers = append(delivers, Delivered{From: m.Sender, Msg: reconstruct(m)})
	return outs, delivers
}

// onRingHdr handles the ordering metadata: it either completes a parked
// payload immediately or opens an expectation in the disseminator's FIFO.
func (r *Ring) onRingHdr(now time.Time, from types.ProcessID, m *types.Message) (outs []Outbound, delivers []Delivered) {
	gr := r.group(m.Group)
	id := m.ID()
	if _, dup := gr.seen[id]; dup {
		return nil, nil
	}
	q := gr.pend[from]
	if q == nil {
		q = &senderQueue{}
		gr.pend[from] = q
	}
	if q.find(id) >= 0 {
		return nil, nil
	}
	if orphan, ok := gr.orphans[id]; ok {
		delete(gr.orphans, id)
		gr.markSeen(id)
		if len(q.items) == 0 {
			return nil, []Delivered{{From: from, Msg: orphan}}
		}
		q.items = append(q.items, pendItem{msg: orphan, complete: true})
		return nil, nil
	}
	hdr := m.Clone() // owned expectation; reused as the reassembled message
	q.items = append(q.items, pendItem{msg: hdr, since: now, lastPull: now})
	return nil, nil
}

// onRingPull serves a re-send request from the cache of own disseminations.
// The reply is point-to-point and must not be relayed onward.
func (r *Ring) onRingPull(from types.ProcessID, m *types.Message) []Outbound {
	gr := r.groups[m.Group]
	if gr == nil {
		return nil
	}
	want := types.MessageID{Sender: m.Origin, Group: m.Group, Seq: m.Seq}
	for _, mm := range gr.mine {
		if mm.ID() == want {
			r.om.pullsServed.Inc()
			return []Outbound{{To: from, Msg: ringDataFrame(mm, types.RingNoRelay)}}
		}
	}
	return nil
}

// drain releases the completed prefix of a disseminator's FIFO.
func (r *Ring) drain(gr *groupRing, dissem types.ProcessID, q *senderQueue, delivers []Delivered) []Delivered {
	n := 0
	for n < len(q.items) && q.items[n].complete {
		delivers = append(delivers, Delivered{From: dissem, Msg: q.items[n].msg})
		n++
	}
	if n > 0 {
		rest := q.items[n:]
		copy(q.items, rest)
		for i := len(rest); i < len(q.items); i++ {
			q.items[i] = pendItem{}
		}
		q.items = q.items[:len(rest)]
	}
	return delivers
}

// Tick re-requests payloads whose reassembly has been waiting longer than
// PullAfter, rate-limited to one pull per interval per message. The output
// order is deterministic (sorted by group, disseminator, sequence) so the
// simulator's seeded runs stay reproducible.
func (r *Ring) Tick(now time.Time) (outs []Outbound) {
	for g, gr := range r.groups {
		for dissem, q := range gr.pend {
			for i := range q.items {
				it := &q.items[i]
				if it.complete || now.Sub(it.lastPull) < r.cfg.PullAfter {
					continue
				}
				it.lastPull = now
				r.om.pulls.Inc()
				outs = append(outs, Outbound{To: dissem, Msg: &types.Message{
					Kind: types.KindRingPull, Group: g,
					Sender: r.cfg.Self, Origin: it.msg.Origin, Seq: it.msg.Seq,
				}})
			}
		}
	}
	sort.Slice(outs, func(i, j int) bool {
		a, b := outs[i], outs[j]
		if a.Msg.Group != b.Msg.Group {
			return a.Msg.Group < b.Msg.Group
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Msg.Origin != b.Msg.Origin {
			return a.Msg.Origin < b.Msg.Origin
		}
		return a.Msg.Seq < b.Msg.Seq
	})
	return outs
}

// OnViewChange installs the new membership as the ring order, abandons
// reassembly state owed by removed members (releasing anything queued
// behind it — to the engine an abandoned reassembly is ordinary message
// loss), and re-disseminates recent own payloads on the new ring so
// in-flight messages survive the topology change; receivers dedupe by
// message ID.
func (r *Ring) OnViewChange(g types.GroupID, members, removed []types.ProcessID) (outs []Outbound, delivers []Delivered) {
	gr := r.group(g)
	gr.members = append(gr.members[:0], members...)
	sort.Slice(gr.members, func(i, j int) bool { return gr.members[i] < gr.members[j] })
	for _, p := range removed {
		q := gr.pend[p]
		if q == nil {
			continue
		}
		for i := range q.items {
			if q.items[i].complete {
				delivers = append(delivers, Delivered{From: p, Msg: q.items[i].msg})
			} else {
				r.om.dropAbandoned.Inc()
			}
		}
		delete(gr.pend, p)
	}
	if r.cfg.Threshold > 0 && len(gr.members) >= 3 {
		if succ := successor(gr.members, r.cfg.Self); succ != types.NilProcess {
			for _, mm := range gr.mine {
				outs = append(outs, Outbound{To: succ, Msg: ringDataFrame(mm, 0)})
				r.om.redisseminated.Inc()
			}
		}
	}
	return outs, delivers
}

// DropGroup discards all state for a departed group.
func (r *Ring) DropGroup(g types.GroupID) { delete(r.groups, g) }

// PendingReassemblies reports how many messages are still waiting for
// their ring payload (diagnostics and tests).
func (r *Ring) PendingReassemblies() int {
	n := 0
	for _, gr := range r.groups {
		for _, q := range gr.pend {
			for i := range q.items {
				if !q.items[i].complete {
					n++
				}
			}
		}
	}
	return n
}
