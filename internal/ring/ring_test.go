package ring

import (
	"bytes"
	"testing"
	"time"

	"newtop/internal/types"
)

const g = types.GroupID(7)

var t0 = time.Unix(1000, 0)

func newRing(self types.ProcessID, members ...types.ProcessID) *Ring {
	r := New(Config{Self: self, Threshold: 1024, PullAfter: 100 * time.Millisecond})
	r.OnViewChange(g, members, nil)
	return r
}

func dataMsg(sender types.ProcessID, seq uint64, size int) *types.Message {
	return &types.Message{
		Kind: types.KindData, Group: g, Sender: sender, Origin: sender,
		Num: types.MsgNum(seq), Seq: seq, LDN: 0,
		Payload: bytes.Repeat([]byte{byte(seq)}, size),
	}
}

// fanOut runs OnSend for every destination of a multicast, as a runtime
// processing the engine's SendEffects would.
func fanOut(r *Ring, m *types.Message, dests ...types.ProcessID) []Outbound {
	var outs []Outbound
	for _, d := range dests {
		outs = append(outs, r.OnSend(d, m)...)
	}
	return outs
}

func TestSplitLargeMulticast(t *testing.T) {
	r := newRing(1, 1, 2, 3, 4, 5)
	m := dataMsg(1, 1, 4096)
	outs := fanOut(r, m, 2, 3, 4, 5)
	if len(outs) != 4 {
		t.Fatalf("got %d outbounds, want 4 (1 ring data + 3 hdrs): %v", len(outs), outs)
	}
	if outs[0].To != 2 || outs[0].Msg.Kind != types.KindRingData || outs[0].Msg.Hops != 0 {
		t.Errorf("first outbound should be ring data to successor 2, got %v to %v", outs[0].Msg, outs[0].To)
	}
	if !bytes.Equal(outs[0].Msg.Payload, m.Payload) {
		t.Error("ring data payload mismatch")
	}
	for i, want := range []types.ProcessID{3, 4, 5} {
		o := outs[i+1]
		if o.To != want || o.Msg.Kind != types.KindRingHdr || len(o.Msg.Payload) != 0 {
			t.Errorf("outbound %d: want hdr to %v, got %v to %v", i+1, want, o.Msg, o.To)
		}
	}
}

func TestSmallPayloadPassesThrough(t *testing.T) {
	r := newRing(1, 1, 2, 3)
	m := dataMsg(1, 1, 16)
	outs := fanOut(r, m, 2, 3)
	if len(outs) != 2 || outs[0].Msg != m || outs[1].Msg != m {
		t.Fatalf("small payload must pass through untouched: %v", outs)
	}
}

func TestTwoMemberGroupPassesThrough(t *testing.T) {
	r := newRing(1, 1, 2)
	m := dataMsg(1, 1, 4096)
	outs := fanOut(r, m, 2)
	if len(outs) != 1 || outs[0].Msg != m {
		t.Fatalf("no ring with 2 members: %v", outs)
	}
}

func TestReassemblyHdrFirst(t *testing.T) {
	r := newRing(3, 1, 2, 3, 4, 5)
	orig := dataMsg(1, 1, 4096)
	outs, delivers := r.OnReceive(t0, 1, hdrFrame(orig))
	if len(outs) != 0 || len(delivers) != 0 {
		t.Fatalf("hdr alone must not deliver: %v %v", outs, delivers)
	}
	// Relayed payload from predecessor 2.
	outs, delivers = r.OnReceive(t0, 2, ringDataFrame(orig, 1))
	if len(delivers) != 1 || delivers[0].From != 1 || delivers[0].Msg.Kind != types.KindData {
		t.Fatalf("want reassembled delivery from 1, got %v", delivers)
	}
	if !bytes.Equal(delivers[0].Msg.Payload, orig.Payload) {
		t.Error("payload mismatch after reassembly")
	}
	if len(outs) != 1 || outs[0].To != 4 || outs[0].Msg.Hops != 2 {
		t.Fatalf("must relay to successor 4 with hops 2, got %v", outs)
	}
}

func TestReassemblyPayloadFirst(t *testing.T) {
	r := newRing(3, 1, 2, 3, 4, 5)
	orig := dataMsg(1, 1, 4096)
	_, delivers := r.OnReceive(t0, 2, ringDataFrame(orig, 1))
	if len(delivers) != 0 {
		t.Fatalf("relayed payload without hdr must park, got %v", delivers)
	}
	_, delivers = r.OnReceive(t0, 1, hdrFrame(orig))
	if len(delivers) != 1 || !bytes.Equal(delivers[0].Msg.Payload, orig.Payload) {
		t.Fatalf("hdr must release parked payload, got %v", delivers)
	}
}

func TestSuccessorDeliversDirectFrame(t *testing.T) {
	r := newRing(2, 1, 2, 3, 4)
	orig := dataMsg(1, 1, 4096)
	outs, delivers := r.OnReceive(t0, 1, ringDataFrame(orig, 0))
	if len(delivers) != 1 || delivers[0].Msg.Kind != types.KindData {
		t.Fatalf("successor should deliver straight from the direct frame, got %v", delivers)
	}
	if len(outs) != 1 || outs[0].To != 3 || outs[0].Msg.Hops != 1 {
		t.Fatalf("successor must relay to 3, got %v", outs)
	}
}

func TestFIFOHoldBehindIncompleteReassembly(t *testing.T) {
	r := newRing(3, 1, 2, 3, 4, 5)
	big := dataMsg(1, 1, 4096)
	small := dataMsg(1, 2, 16)
	if _, d := r.OnReceive(t0, 1, hdrFrame(big)); len(d) != 0 {
		t.Fatal("hdr must open an expectation")
	}
	// A later message from the same peer must not overtake the pending
	// reassembly, or the engine would see a sequence gap.
	if _, d := r.OnReceive(t0, 1, small); len(d) != 0 {
		t.Fatalf("message behind pending reassembly must queue, got %v", d)
	}
	_, delivers := r.OnReceive(t0, 2, ringDataFrame(big, 1))
	if len(delivers) != 2 {
		t.Fatalf("completion must drain the queue in order, got %d delivers", len(delivers))
	}
	if delivers[0].Msg.Seq != 1 || delivers[1].Msg.Seq != 2 {
		t.Errorf("wrong release order: %v, %v", delivers[0].Msg, delivers[1].Msg)
	}
}

func TestNoHoldWhenNothingPending(t *testing.T) {
	r := newRing(3, 1, 2, 3)
	m := dataMsg(1, 1, 16)
	_, delivers := r.OnReceive(t0, 1, m)
	if len(delivers) != 1 || delivers[0].Msg != m {
		t.Fatalf("ordinary traffic must pass through, got %v", delivers)
	}
}

func TestRelayStopsAtRingStarter(t *testing.T) {
	// Ring 1→2→3→1: member 3's successor is the starter; no relay back.
	r := newRing(3, 1, 2, 3)
	orig := dataMsg(1, 1, 4096)
	outs, _ := r.OnReceive(t0, 2, ringDataFrame(orig, 1))
	if len(outs) != 0 {
		t.Fatalf("must not relay back to the ring starter, got %v", outs)
	}
}

func TestRelayStopsAtHopCap(t *testing.T) {
	r := newRing(3, 1, 2, 3, 4, 5)
	orig := dataMsg(1, 1, 4096)
	f := ringDataFrame(orig, 4) // 5 members: hops+1 == len(members) is the cap
	outs, _ := r.OnReceive(t0, 2, f)
	if len(outs) != 0 {
		t.Fatalf("hop cap must stop the relay, got %v", outs)
	}
}

func TestPullRetryAndServe(t *testing.T) {
	// Origin 1 disseminates; member 4 gets the hdr but the payload is lost.
	origin := newRing(1, 1, 2, 3, 4)
	m := dataMsg(1, 1, 4096)
	fanOut(origin, m, 2, 3, 4)

	member := newRing(4, 1, 2, 3, 4)
	member.OnReceive(t0, 1, hdrFrame(m))
	if member.PendingReassemblies() != 1 {
		t.Fatal("expectation not opened")
	}
	// Too early: no pull yet.
	if outs := member.Tick(t0.Add(50 * time.Millisecond)); len(outs) != 0 {
		t.Fatalf("pull before PullAfter: %v", outs)
	}
	outs := member.Tick(t0.Add(200 * time.Millisecond))
	if len(outs) != 1 || outs[0].To != 1 || outs[0].Msg.Kind != types.KindRingPull {
		t.Fatalf("want one pull to the disseminator, got %v", outs)
	}
	// The origin serves the pull from its cache of own disseminations.
	replies, _ := origin.OnReceive(t0, 4, outs[0].Msg)
	if len(replies) != 1 || replies[0].To != 4 || replies[0].Msg.Hops != types.RingNoRelay {
		t.Fatalf("want a no-relay ring data reply, got %v", replies)
	}
	relays, delivers := member.OnReceive(t0, 1, replies[0].Msg)
	if len(relays) != 0 {
		t.Fatalf("pull reply must not be relayed, got %v", relays)
	}
	if len(delivers) != 1 || !bytes.Equal(delivers[0].Msg.Payload, m.Payload) {
		t.Fatalf("pull reply must complete the reassembly, got %v", delivers)
	}
}

func TestDuplicateCompletionIgnored(t *testing.T) {
	r := newRing(2, 1, 2, 3, 4)
	orig := dataMsg(1, 1, 4096)
	_, delivers := r.OnReceive(t0, 1, ringDataFrame(orig, 0))
	if len(delivers) != 1 {
		t.Fatal("first frame must deliver")
	}
	outs, delivers := r.OnReceive(t0, 4, ringDataFrame(orig, 2))
	if len(outs) != 0 || len(delivers) != 0 {
		t.Fatalf("duplicate must be dropped, got %v %v", outs, delivers)
	}
	// A late hdr for a completed message is dropped too.
	_, delivers = r.OnReceive(t0, 1, hdrFrame(orig))
	if len(delivers) != 0 {
		t.Fatalf("late hdr for seen id must be dropped, got %v", delivers)
	}
}

func TestViewChangeFlushesRemovedDisseminator(t *testing.T) {
	r := newRing(3, 1, 2, 3, 4, 5)
	big := dataMsg(1, 1, 4096)
	small := dataMsg(1, 2, 16)
	r.OnReceive(t0, 1, hdrFrame(big))
	r.OnReceive(t0, 1, small)
	_, delivers := r.OnViewChange(g, []types.ProcessID{2, 3, 4, 5}, []types.ProcessID{1})
	// The incomplete reassembly is abandoned; the queued message behind it
	// is released (the engine drops removed-sender traffic itself).
	if len(delivers) != 1 || delivers[0].Msg.Seq != 2 {
		t.Fatalf("queued message must be flushed on view change, got %v", delivers)
	}
	if r.PendingReassemblies() != 0 {
		t.Error("abandoned reassembly still pending")
	}
}

func TestViewChangeRedisseminates(t *testing.T) {
	r := newRing(1, 1, 2, 3, 4)
	m := dataMsg(1, 1, 4096)
	fanOut(r, m, 2, 3, 4)
	// Successor 2 is removed: the origin re-disseminates on the new ring,
	// whose successor is 3.
	outs, _ := r.OnViewChange(g, []types.ProcessID{1, 3, 4}, []types.ProcessID{2})
	if len(outs) != 1 || outs[0].To != 3 || outs[0].Msg.Kind != types.KindRingData {
		t.Fatalf("want re-dissemination to new successor 3, got %v", outs)
	}
	if !bytes.Equal(outs[0].Msg.Payload, m.Payload) {
		t.Error("re-disseminated payload mismatch")
	}
}

func TestFallbackWhenViewShrinksBelowRing(t *testing.T) {
	r := newRing(1, 1, 2, 3)
	r.OnViewChange(g, []types.ProcessID{1, 2}, []types.ProcessID{3})
	m := dataMsg(1, 1, 4096)
	outs := fanOut(r, m, 2)
	if len(outs) != 1 || outs[0].Msg != m {
		t.Fatalf("shrunken view must fall back to direct send, got %v", outs)
	}
}
