package workload

import (
	"testing"

	"newtop/internal/core"
	"newtop/internal/types"
)

func TestProcs(t *testing.T) {
	ps := Procs(3)
	if len(ps) != 3 || ps[0] != 1 || ps[2] != 3 {
		t.Errorf("Procs(3) = %v", ps)
	}
}

func TestSingleGroup(t *testing.T) {
	gs := SingleGroup(4, core.Symmetric)
	if len(gs) != 1 || gs[0].ID != 1 || len(gs[0].Members) != 4 || gs[0].Mode != core.Symmetric {
		t.Errorf("SingleGroup = %+v", gs)
	}
}

func TestChain(t *testing.T) {
	gs, maxProc, err := Chain(3, 3, 1, core.Symmetric)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 3 {
		t.Fatalf("groups = %d", len(gs))
	}
	// g1 = {1,2,3}, g2 = {3,4,5}, g3 = {5,6,7}: consecutive overlap of 1.
	if maxProc != 7 {
		t.Errorf("maxProc = %d, want 7", maxProc)
	}
	for i := 0; i < len(gs)-1; i++ {
		shared := 0
		for _, a := range gs[i].Members {
			for _, b := range gs[i+1].Members {
				if a == b {
					shared++
				}
			}
		}
		if shared != 1 {
			t.Errorf("groups %d,%d share %d members, want 1", i, i+1, shared)
		}
	}
	if _, _, err := Chain(2, 3, 3, core.Symmetric); err == nil {
		t.Error("overlap == size accepted")
	}
	if _, _, err := Chain(0, 3, 1, core.Symmetric); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRing(t *testing.T) {
	gs, n, err := Ring(4, core.Symmetric)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(gs) != 4 {
		t.Fatalf("ring = %d groups over %d procs", len(gs), n)
	}
	// Every process appears in exactly 2 groups; last group wraps.
	count := make(map[types.ProcessID]int)
	for _, g := range gs {
		if len(g.Members) != 2 {
			t.Errorf("group %v size %d", g.ID, len(g.Members))
		}
		for _, m := range g.Members {
			count[m]++
		}
	}
	for p, c := range count {
		if c != 2 {
			t.Errorf("%v appears in %d groups, want 2", p, c)
		}
	}
	if _, _, err := Ring(2, core.Symmetric); err == nil {
		t.Error("ring of 2 accepted")
	}
}

func TestStar(t *testing.T) {
	gs, n, err := Star(3, core.Symmetric)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(gs) != 3 {
		t.Fatalf("star = %d groups over %d procs", len(gs), n)
	}
	for _, g := range gs {
		if !containsP(g.Members, 1) {
			t.Errorf("group %v missing the hub", g.ID)
		}
	}
	if _, _, err := Star(0, core.Symmetric); err == nil {
		t.Error("empty star accepted")
	}
}

func TestUniformTrafficUniquePayloads(t *testing.T) {
	gs, _, err := Chain(2, 3, 1, core.Symmetric)
	if err != nil {
		t.Fatal(err)
	}
	subs := UniformTraffic(gs, 3, 5)
	want := 3 * (3 + 3) // perMember × total memberships
	if len(subs) != want {
		t.Fatalf("submissions = %d, want %d", len(subs), want)
	}
	seen := make(map[string]bool)
	lastAt := -1
	for _, s := range subs {
		if seen[string(s.Payload)] {
			t.Fatalf("duplicate payload %q", s.Payload)
		}
		seen[string(s.Payload)] = true
		if s.AtMillis < lastAt {
			t.Fatal("submissions not time-ordered")
		}
		lastAt = s.AtMillis
		if !containsP(memberOf(gs, s.Group), s.From) {
			t.Fatalf("submission from non-member %v of %v", s.From, s.Group)
		}
	}
}

func TestSingleSenderTraffic(t *testing.T) {
	subs := SingleSenderTraffic(1, 2, 4, 10)
	if len(subs) != 4 {
		t.Fatalf("len = %d", len(subs))
	}
	for i, s := range subs {
		if s.From != 2 || s.Group != 1 || s.AtMillis != i*10 {
			t.Errorf("sub %d = %+v", i, s)
		}
	}
}

func containsP(ps []types.ProcessID, p types.ProcessID) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

func memberOf(gs []Group, id types.GroupID) []types.ProcessID {
	for _, g := range gs {
		if g.ID == id {
			return g.Members
		}
	}
	return nil
}
