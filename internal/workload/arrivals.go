package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// ArrivalProcess generates the arrival schedule of an open-loop workload:
// the offsets (from run start) at which operations fire, whether or not
// earlier operations have completed. The schedule is fully materialised up
// front so drivers can dispatch without allocation or blocking on the
// generator, and so a seeded process is reproducible bit for bit.
type ArrivalProcess interface {
	// Name identifies the process (and its tuning) in reports.
	Name() string
	// Rate is the mean offered rate in operations per second.
	Rate() float64
	// Schedule returns the sorted arrival offsets in [0, window).
	Schedule(window time.Duration) []time.Duration
}

// FixedRate fires arrivals on a strict metronome: exactly OpsPerSec per
// second, evenly spaced. The least bursty process — its schedule is the
// lower bound on queueing for a given rate.
type FixedRate struct {
	OpsPerSec float64
}

// Name implements ArrivalProcess.
func (f FixedRate) Name() string { return fmt.Sprintf("fixed@%.0f/s", f.OpsPerSec) }

// Rate implements ArrivalProcess.
func (f FixedRate) Rate() float64 { return f.OpsPerSec }

// Schedule implements ArrivalProcess.
func (f FixedRate) Schedule(window time.Duration) []time.Duration {
	if f.OpsPerSec <= 0 || window <= 0 {
		return nil
	}
	gap := time.Duration(float64(time.Second) / f.OpsPerSec)
	if gap <= 0 {
		gap = time.Nanosecond
	}
	out := make([]time.Duration, 0, int(window/gap)+1)
	for t := time.Duration(0); t < window; t += gap {
		out = append(out, t)
	}
	return out
}

// Poisson fires arrivals as a homogeneous Poisson process: exponential
// inter-arrival gaps with mean 1/OpsPerSec, which is the memoryless
// arrival pattern of many independent clients. Deterministic per Seed.
type Poisson struct {
	OpsPerSec float64
	Seed      int64
}

// Name implements ArrivalProcess.
func (p Poisson) Name() string { return fmt.Sprintf("poisson@%.0f/s", p.OpsPerSec) }

// Rate implements ArrivalProcess.
func (p Poisson) Rate() float64 { return p.OpsPerSec }

// Schedule implements ArrivalProcess.
func (p Poisson) Schedule(window time.Duration) []time.Duration {
	if p.OpsPerSec <= 0 || window <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	mean := float64(time.Second) / p.OpsPerSec
	out := make([]time.Duration, 0, int(float64(window)/mean)+16)
	t := time.Duration(0)
	for {
		t += time.Duration(rng.ExpFloat64() * mean)
		if t >= window {
			return out
		}
		out = append(out, t)
	}
}

// Phase is one segment of a Bursty schedule: a sustained rate held for a
// duration.
type Phase struct {
	OpsPerSec float64
	Dur       time.Duration
}

// Bursty cycles through rate phases over the window — the multi-period /
// diurnal arrival shape (e.g. quiet→peak→quiet) that exposes how a
// cluster absorbs a burst and whether it drains the backlog afterwards.
// Within each phase arrivals are Poisson at the phase rate; the whole
// schedule is deterministic per Seed.
type Bursty struct {
	Phases []Phase
	Seed   int64
}

// Name implements ArrivalProcess.
func (b Bursty) Name() string {
	return fmt.Sprintf("bursty@%.0f/s(x%d)", b.Rate(), len(b.Phases))
}

// Rate implements ArrivalProcess — the duration-weighted mean rate over
// one full cycle.
func (b Bursty) Rate() float64 {
	var ops, secs float64
	for _, ph := range b.Phases {
		secs += ph.Dur.Seconds()
		ops += ph.OpsPerSec * ph.Dur.Seconds()
	}
	if secs <= 0 {
		return 0
	}
	return ops / secs
}

// Schedule implements ArrivalProcess.
func (b Bursty) Schedule(window time.Duration) []time.Duration {
	if len(b.Phases) == 0 || window <= 0 {
		return nil
	}
	cycle := time.Duration(0)
	for _, ph := range b.Phases {
		if ph.Dur > 0 {
			cycle += ph.Dur
		}
	}
	if cycle <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(b.Seed))
	var out []time.Duration
	start := time.Duration(0) // current phase's start offset
	for i := 0; start < window; i++ {
		ph := b.Phases[i%len(b.Phases)]
		end := start + ph.Dur
		if end > window {
			end = window
		}
		if ph.OpsPerSec > 0 && ph.Dur > 0 {
			mean := float64(time.Second) / ph.OpsPerSec
			t := start
			for {
				t += time.Duration(rng.ExpFloat64() * mean)
				if t >= end {
					break
				}
				out = append(out, t)
			}
		}
		if ph.Dur <= 0 { // zero-length phase: skip without advancing time forever
			continue
		}
		start += ph.Dur
	}
	return out
}
