package workload

import (
	"math"
	"testing"
	"time"
)

func sortedSchedule(t *testing.T, sched []time.Duration, window time.Duration) {
	t.Helper()
	last := time.Duration(-1)
	for i, at := range sched {
		if at < last {
			t.Fatalf("arrival %d at %v before predecessor %v: schedule not sorted", i, at, last)
		}
		if at < 0 || at >= window {
			t.Fatalf("arrival %d at %v outside [0, %v)", i, at, window)
		}
		last = at
	}
}

func TestFixedRateSchedule(t *testing.T) {
	f := FixedRate{OpsPerSec: 100}
	sched := f.Schedule(time.Second)
	if len(sched) != 100 {
		t.Fatalf("fixed 100/s over 1s = %d arrivals, want 100", len(sched))
	}
	sortedSchedule(t, sched, time.Second)
	gap := time.Duration(float64(time.Second) / 100)
	for i, at := range sched {
		if at != time.Duration(i)*gap {
			t.Fatalf("arrival %d at %v, want %v (strict metronome)", i, at, time.Duration(i)*gap)
		}
	}
	if got := (FixedRate{}).Schedule(time.Second); got != nil {
		t.Errorf("zero rate produced %d arrivals", len(got))
	}
}

func TestPoissonSeededDeterminism(t *testing.T) {
	a := Poisson{OpsPerSec: 500, Seed: 42}.Schedule(2 * time.Second)
	b := Poisson{OpsPerSec: 500, Seed: 42}.Schedule(2 * time.Second)
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := Poisson{OpsPerSec: 500, Seed: 43}.Schedule(2 * time.Second)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical schedule")
		}
	}
}

func TestPoissonEmpiricalMean(t *testing.T) {
	// Count over a long window: N ~ Poisson(rate·window), sd = sqrt(N).
	// At rate 2000/s over 5s the expectation is 10 000 with sd = 100, so a
	// ±5% tolerance sits at 5 sigma — a seeded run far inside it.
	const rate, window = 2000.0, 5 * time.Second
	sched := Poisson{OpsPerSec: rate, Seed: 7}.Schedule(window)
	sortedSchedule(t, sched, window)
	want := rate * window.Seconds()
	if got := float64(len(sched)); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("poisson %v/s over %v produced %v arrivals, want %v ±5%%", rate, window, got, want)
	}
	// Mean inter-arrival gap within the same tolerance of 1/rate.
	var sum time.Duration
	for i := 1; i < len(sched); i++ {
		sum += sched[i] - sched[i-1]
	}
	meanGap := float64(sum) / float64(len(sched)-1)
	wantGap := float64(time.Second) / rate
	if math.Abs(meanGap-wantGap)/wantGap > 0.05 {
		t.Fatalf("mean gap %.0fns, want %.0fns ±5%%", meanGap, wantGap)
	}
}

func TestBurstySeededReproducibleAndShaped(t *testing.T) {
	b := Bursty{
		Phases: []Phase{
			{OpsPerSec: 100, Dur: 500 * time.Millisecond},
			{OpsPerSec: 2000, Dur: 500 * time.Millisecond},
		},
		Seed: 11,
	}
	const window = 4 * time.Second // two full cycles
	a1 := b.Schedule(window)
	a2 := b.Schedule(window)
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at arrival %d", i)
		}
	}
	sortedSchedule(t, a1, window)

	// The burst phases must carry far more arrivals than the quiet phases,
	// and the phase boundaries must cycle across the whole window.
	inPhase := func(at time.Duration) int {
		ms := at.Milliseconds() % 1000
		if ms < 500 {
			return 0 // quiet
		}
		return 1 // burst
	}
	var counts [2]int
	for _, at := range a1 {
		counts[inPhase(at)]++
	}
	if counts[1] < 10*counts[0] {
		t.Fatalf("burst phase %d arrivals vs quiet %d: burst not >=10x quiet (rates 2000 vs 100)", counts[1], counts[0])
	}
	// Both halves of the window see both phases (the cycle repeats).
	lateQuiet := 0
	for _, at := range a1 {
		if at >= 2*time.Second && inPhase(at) == 0 {
			lateQuiet++
		}
	}
	if lateQuiet == 0 {
		t.Fatal("no quiet-phase arrivals in the second half: phases did not cycle")
	}
	// Duration-weighted mean rate.
	if got, want := b.Rate(), 1050.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Rate() = %v, want %v", got, want)
	}
}

func TestBurstyDegenerate(t *testing.T) {
	if got := (Bursty{Seed: 1}).Schedule(time.Second); got != nil {
		t.Errorf("no phases produced %d arrivals", len(got))
	}
	if got := (Bursty{Phases: []Phase{{OpsPerSec: 100, Dur: 0}}}).Schedule(time.Second); got != nil {
		t.Errorf("zero-duration phases produced %d arrivals", len(got))
	}
}
