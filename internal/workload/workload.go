// Package workload generates the group topologies and traffic patterns
// used by the experiment harness: single groups, overlapping chains,
// cyclic overlaps (the structure §6 notes is hard for vector-clock
// protocols), stars, and uniform per-member traffic schedules.
package workload

import (
	"fmt"
	"strconv"

	"newtop/internal/core"
	"newtop/internal/types"
)

// Group describes one group to create in an experiment.
type Group struct {
	ID      types.GroupID
	Mode    core.OrderMode
	Members []types.ProcessID
}

// Procs returns process IDs 1..n.
func Procs(n int) []types.ProcessID {
	out := make([]types.ProcessID, n)
	for i := range out {
		out[i] = types.ProcessID(i + 1)
	}
	return out
}

// SingleGroup is one group over processes 1..n.
func SingleGroup(n int, mode core.OrderMode) []Group {
	return []Group{{ID: 1, Mode: mode, Members: Procs(n)}}
}

// Chain builds k groups of the given size where consecutive groups share
// `overlap` processes: g1 = {1..s}, g2 = {s-o+1 .. 2s-o}, ... The chain is
// the propagation-graph worst case of benchmark C7.
func Chain(k, size, overlap int, mode core.OrderMode) ([]Group, int, error) {
	if overlap >= size || overlap < 1 || k < 1 {
		return nil, 0, fmt.Errorf("workload: invalid chain k=%d size=%d overlap=%d", k, size, overlap)
	}
	var groups []Group
	start := 1
	maxProc := 0
	for i := 0; i < k; i++ {
		ms := make([]types.ProcessID, size)
		for j := 0; j < size; j++ {
			ms[j] = types.ProcessID(start + j)
		}
		if int(ms[size-1]) > maxProc {
			maxProc = int(ms[size-1])
		}
		groups = append(groups, Group{ID: types.GroupID(i + 1), Mode: mode, Members: ms})
		start += size - overlap
	}
	return groups, maxProc, nil
}

// Ring builds k groups of pairwise-overlapping processes arranged in a
// cycle: g_i = {i, i+1 mod n}, the cyclic structure of fig. 2 that §6
// singles out as expensive for ISIS-style protocols.
func Ring(k int, mode core.OrderMode) ([]Group, int, error) {
	if k < 3 {
		return nil, 0, fmt.Errorf("workload: ring needs ≥ 3 groups, got %d", k)
	}
	var groups []Group
	for i := 0; i < k; i++ {
		a := types.ProcessID(i + 1)
		b := types.ProcessID((i+1)%k + 1)
		groups = append(groups, Group{ID: types.GroupID(i + 1), Mode: mode, Members: []types.ProcessID{a, b}})
	}
	return groups, k, nil
}

// Star builds k leaf groups all overlapping in one hub process:
// g_i = {1, i+1}.
func Star(k int, mode core.OrderMode) ([]Group, int, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("workload: star needs ≥ 1 group")
	}
	var groups []Group
	for i := 0; i < k; i++ {
		groups = append(groups, Group{
			ID: types.GroupID(i + 1), Mode: mode,
			Members: []types.ProcessID{1, types.ProcessID(i + 2)},
		})
	}
	return groups, k + 1, nil
}

// Submission is one scheduled application multicast.
type Submission struct {
	AtMillis int // offset from experiment start
	From     types.ProcessID
	Group    types.GroupID
	Payload  []byte
}

// payloadTag builds a unique payload "<prefix>-<a>-<b>-<i>" without going
// through fmt — payloads are opaque uniqueness keys for the property
// checkers, and Sprintf per scheduled message used to distort the
// harness-level benchmarks that time whole experiments.
func payloadTag(prefix byte, a, b uint64, i int) []byte {
	buf := make([]byte, 0, 16)
	buf = append(buf, prefix, '-')
	buf = strconv.AppendUint(buf, a, 10)
	buf = append(buf, '-')
	buf = strconv.AppendUint(buf, b, 10)
	buf = append(buf, '-')
	buf = strconv.AppendInt(buf, int64(i), 10)
	return buf
}

// UniformTraffic schedules perMember multicasts from every member of every
// group, spaced spacingMillis apart, round-robin across senders. Payloads
// are unique (required by the property checkers).
func UniformTraffic(groups []Group, perMember, spacingMillis int) []Submission {
	var subs []Submission
	t := 0
	for i := 0; i < perMember; i++ {
		for _, g := range groups {
			for _, p := range g.Members {
				subs = append(subs, Submission{
					AtMillis: t,
					From:     p,
					Group:    g.ID,
					Payload:  payloadTag('w', uint64(g.ID), uint64(p), i),
				})
				t += spacingMillis
			}
		}
	}
	return subs
}

// SingleSenderTraffic schedules n multicasts from one member (latency
// probes measure the undisturbed delivery path).
func SingleSenderTraffic(g types.GroupID, from types.ProcessID, n, spacingMillis int) []Submission {
	subs := make([]Submission, 0, n)
	for i := 0; i < n; i++ {
		subs = append(subs, Submission{
			AtMillis: i * spacingMillis,
			From:     from,
			Group:    g,
			Payload:  payloadTag('p', uint64(from), 0, i),
		})
	}
	return subs
}
