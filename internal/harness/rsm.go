package harness

import (
	"fmt"
	"time"

	"newtop/internal/core"
	"newtop/internal/rsm"
	"newtop/internal/sim"
	"newtop/internal/types"
)

// Replication scenarios: the replicated state-machine layer (internal/rsm)
// driven over the deterministic simulator. The pure rsm.Core is fed from
// the cluster's delivery hook, so whole state-transfer and divergence
// stories replay bit-for-bit identically — the concurrent Replica runtime
// over real goroutines is exercised by internal/rsm's own tests.

// rsmKey identifies one replica: a (process, group) pair.
type rsmKey struct {
	p types.ProcessID
	g types.GroupID
}

// rsmFleet wires rsm Cores into a simulated cluster: every delivery in a
// replicated group is stepped through the owning core, and whatever the
// core wants multicast (offers, snapshot chunks) is submitted back into
// the same group at the same virtual instant.
type rsmFleet struct {
	c     *sim.Cluster
	cores map[rsmKey]*rsm.Core
	kvs   map[types.ProcessID]*rsm.KV // one machine per process, shared across its groups
}

func newRSMFleet(c *sim.Cluster) *rsmFleet {
	f := &rsmFleet{c: c, cores: make(map[rsmKey]*rsm.Core), kvs: make(map[types.ProcessID]*rsm.KV)}
	c.OnDeliver(func(p types.ProcessID, d sim.Delivery) {
		cr, ok := f.cores[rsmKey{p, d.Group}]
		if !ok {
			return
		}
		out := cr.Step(types.LogPos{Group: d.Group, Index: d.Index}, d.Origin, d.Payload)
		for _, pl := range out.Submits {
			_ = c.Submit(p, d.Group, pl)
		}
	})
	return f
}

// kv returns (creating on first use) process p's state machine. One
// machine per process: when a service migrates across overlapping groups,
// the incumbent's appliers for both groups feed the same state — exactly
// the fig. 1 situation, kept consistent by MD4' total order over
// overlapping groups.
func (f *rsmFleet) kv(p types.ProcessID) *rsm.KV {
	kv, ok := f.kvs[p]
	if !ok {
		kv = rsm.NewKV()
		f.kvs[p] = kv
	}
	return kv
}

// attach creates p's core for group g. Catch-up cores still need sync():
// migration scenarios control when the newcomer asks for state.
func (f *rsmFleet) attach(p types.ProcessID, g types.GroupID, catchUp bool, chunkSize int) *rsm.Core {
	cr := rsm.NewCore(rsm.CoreConfig{Self: p, Group: g, CatchUp: catchUp, ChunkSize: chunkSize}, f.kv(p))
	f.cores[rsmKey{p, g}] = cr
	return cr
}

// attachRecon creates p's reconciling core for the merged successor group
// g: expect lists g's members, side tags p's pre-heal subgroup.
func (f *rsmFleet) attachRecon(p types.ProcessID, g types.GroupID, policy rsm.MergePolicy, expect []types.ProcessID, side uint64) *rsm.Core {
	cr := rsm.NewCore(rsm.CoreConfig{Self: p, Group: g,
		Reconcile: &rsm.ReconcileConfig{Policy: policy, Expect: expect, Side: side},
	}, f.kv(p))
	f.cores[rsmKey{p, g}] = cr
	return cr
}

// sync submits the catch-up core's state-transfer request into its group.
func (f *rsmFleet) sync(p types.ProcessID, g types.GroupID) error {
	for _, pl := range f.cores[rsmKey{p, g}].Start() {
		if err := f.c.Submit(p, g, pl); err != nil {
			return err
		}
	}
	return nil
}

// start submits a core's start frames, retrying while the group is still
// unknown at p (formation invitations travel asynchronously — a member
// may try to speak before its engine has heard of the group).
func (f *rsmFleet) start(p types.ProcessID, g types.GroupID) {
	frames := f.cores[rsmKey{p, g}].Start()
	var try func()
	try = func() {
		for len(frames) > 0 {
			if err := f.c.Submit(p, g, frames[0]); err != nil {
				f.c.At(f.c.Now().Sub(sim.Epoch)+20*time.Millisecond, try)
				return
			}
			frames = frames[1:]
		}
	}
	try()
}

func (f *rsmFleet) core(p types.ProcessID, g types.GroupID) *rsm.Core {
	return f.cores[rsmKey{p, g}]
}

// put formats a KV write command (submitted raw: raw payloads are implicit
// commands, so the scenarios also exercise that interop path).
func put(key string, val interface{}) []byte {
	return []byte(fmt.Sprintf("put %s %v", key, val))
}

// R1ReplicaCatchUp is the join story the replication layer exists for: a
// kvstore group carrying real state, a fresh replica joining by forming a
// successor group (§3/§5.3: joining is subsumed by forming a new group),
// and state transfer — chunked snapshot plus replay tail — while writes
// keep flowing. The newcomer must end byte-identical to the incumbents.
func R1ReplicaCatchUp() (*Table, error) {
	t := &Table{
		Title:   "R1 — replica catch-up into a loaded kvstore group via group formation",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"g1={P1,P2,P3} loaded with 150 keys; P4 joins by forming g2={P1..P4}; snapshot streams while writes continue",
		},
	}
	c := sim.New(53, sim.WithLatency(time.Millisecond, 3*time.Millisecond))
	for i := 1; i <= 4; i++ {
		c.AddProcess(core.Config{Self: types.ProcessID(i), Omega: 20 * time.Millisecond})
	}
	f := newRSMFleet(c)

	// Load phase: the service lives in g1 = {P1,P2,P3}.
	incumbents := []types.ProcessID{1, 2, 3}
	if err := c.Bootstrap(1, core.Symmetric, incumbents); err != nil {
		return nil, err
	}
	for _, p := range incumbents {
		f.attach(p, 1, false, 0)
	}
	const preload = 150
	for i := 0; i < preload; i++ {
		p := incumbents[i%3]
		pl := put(fmt.Sprintf("user:%04d", i), fmt.Sprintf("v%d", i))
		c.At(time.Duration(i)*2*time.Millisecond, func() { _ = c.Submit(p, 1, pl) })
	}
	ok := c.RunUntil(60*time.Second, func() bool {
		for _, p := range incumbents {
			if f.core(p, 1).AppliedSeq() < preload {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: R1 load phase stalled")
	}
	loadedAt := c.Now()

	// Join phase: P4 initiates g2 = {P1..P4}; incumbents replicate g2 over
	// the same machines (the state rides along), P4 starts empty. Small
	// chunks force a genuinely chunked stream.
	for _, p := range incumbents {
		f.attach(p, 2, false, 512)
	}
	newcomer := f.attach(4, 2, true, 512)
	if err := c.CreateGroup(4, 2, core.Symmetric, []types.ProcessID{1, 2, 3, 4}); err != nil {
		return nil, err
	}
	if err := f.sync(4, 2); err != nil { // queued until formation completes
		return nil, err
	}
	// Writes keep flowing in g2 throughout formation and transfer.
	const during = 40
	base := loadedAt.Sub(sim.Epoch)
	for i := 0; i < during; i++ {
		p := incumbents[i%3]
		pl := put(fmt.Sprintf("live:%03d", i), i)
		c.At(base+10*time.Millisecond+time.Duration(i)*time.Millisecond, func() { _ = c.Submit(p, 2, pl) })
	}
	ok = c.RunUntil(120*time.Second, func() bool {
		if !newcomer.CaughtUp() {
			return false
		}
		for _, p := range []types.ProcessID{1, 2, 3, 4} {
			if f.core(p, 2).AppliedSeq() < during {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: R1 catch-up stalled: %+v", newcomer.Stats())
	}
	caughtUpAt := c.Now()
	c.Run(100 * time.Millisecond) // drain stragglers

	// The acceptance bar: state digests identical at everyone.
	d1 := f.core(1, 2).Digest()
	for _, p := range []types.ProcessID{2, 3, 4} {
		if d := f.core(p, 2).Digest(); d != d1 {
			return nil, fmt.Errorf("harness: R1 digests diverge: P1=%016x P%d=%016x", d1, p, d)
		}
	}
	st := newcomer.Stats()
	if st.SnapshotsIn != 1 {
		return nil, fmt.Errorf("harness: R1 newcomer installed %d snapshots, want 1", st.SnapshotsIn)
	}
	if st.ChunksIn < 2 {
		return nil, fmt.Errorf("harness: R1 snapshot was not chunked (%d chunks)", st.ChunksIn)
	}
	if st.Replayed == 0 {
		return nil, fmt.Errorf("harness: R1 no replay tail — writes did not overlap the transfer")
	}
	served := 0
	for _, p := range incumbents {
		served += int(f.core(p, 2).Stats().SnapshotsOut)
	}
	if served != 1 {
		return nil, fmt.Errorf("harness: R1 %d members served snapshots, want exactly 1", served)
	}

	t.AddRow("preloaded keys", fmt.Sprintf("%d", preload))
	t.AddRow("writes during join", fmt.Sprintf("%d", during))
	t.AddRow("snapshot chunks installed", fmt.Sprintf("%d (%d B)", st.ChunksIn, st.SnapshotBytes))
	t.AddRow("replay tail applied", fmt.Sprintf("%d", st.Replayed))
	t.AddRow("commands buffered while syncing", fmt.Sprintf("%d", st.Buffered))
	t.AddRow("join → caught up (ms)", ms(caughtUpAt.Sub(loadedAt)))
	t.AddRow("state digest", fmt.Sprintf("%016x at all 4 replicas", d1))
	return t, nil
}

// R2PartitionDivergence: a replicated group splits; both sides stay live
// (Newtop is partitionable, no primary partition) and keep accepting
// writes, so their states legitimately diverge. After the network heals
// the application compares state digests — identical within each side,
// different across them — which is the signal that reconciliation (or
// forming one new group from a chosen side) is needed.
func R2PartitionDivergence() (*Table, error) {
	t := &Table{
		Title:   "R2 — divergence detection across a healed partition via state digests",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"groups never remerge after a partition (§5); healed sides are compared by state digest at the application",
		},
	}
	c := sim.New(59, sim.WithLatency(time.Millisecond, 3*time.Millisecond))
	all := []types.ProcessID{1, 2, 3, 4}
	for _, p := range all {
		c.AddProcess(core.Config{Self: p, Omega: 20 * time.Millisecond})
	}
	f := newRSMFleet(c)
	if err := c.Bootstrap(1, core.Symmetric, all); err != nil {
		return nil, err
	}
	for _, p := range all {
		f.attach(p, 1, false, 0)
	}

	// Common prefix.
	const common = 30
	for i := 0; i < common; i++ {
		p := all[i%4]
		pl := put(fmt.Sprintf("base:%03d", i), i)
		c.At(time.Duration(i)*2*time.Millisecond, func() { _ = c.Submit(p, 1, pl) })
	}
	ok := c.RunUntil(60*time.Second, func() bool {
		for _, p := range all {
			if f.core(p, 1).AppliedSeq() < common {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: R2 common prefix stalled")
	}
	baseDigest := f.core(1, 1).Digest()
	if baseDigest != f.core(4, 1).Digest() {
		return nil, fmt.Errorf("harness: R2 replicas diverged before the partition")
	}
	splitAt := c.Now()

	// Partition; both sides keep writing through the membership turmoil.
	sideA, sideB := []types.ProcessID{1, 2}, []types.ProcessID{3, 4}
	c.Partition(sideA, sideB)
	const perSide = 10
	base := splitAt.Sub(sim.Epoch)
	for i := 0; i < perSide; i++ {
		ai, bi := i, i
		c.At(base+time.Duration(i*5)*time.Millisecond, func() {
			_ = c.Submit(1, 1, put(fmt.Sprintf("a:%03d", ai), ai))
			_ = c.Submit(3, 1, put(fmt.Sprintf("b:%03d", bi), bi))
		})
	}
	stable := func(ps, others []types.ProcessID) bool {
		for _, p := range ps {
			vs := c.History(p).Views[1]
			if len(vs) == 0 {
				return false
			}
			last := vs[len(vs)-1].View
			for _, o := range others {
				if last.Contains(o) {
					return false
				}
			}
		}
		return true
	}
	ok = c.RunUntil(120*time.Second, func() bool {
		if !stable(sideA, sideB) || !stable(sideB, sideA) {
			return false
		}
		for _, p := range all {
			if f.core(p, 1).AppliedSeq() < common+perSide {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: R2 sides never stabilised")
	}
	stabilisedAt := c.Now()

	// Heal the network. The subgroup views stay disjoint — Newtop never
	// remerges — so state comparison is an application-level act.
	c.Heal()
	c.Run(200 * time.Millisecond)

	dA1, dA2 := f.core(1, 1).Digest(), f.core(2, 1).Digest()
	dB3, dB4 := f.core(3, 1).Digest(), f.core(4, 1).Digest()
	if dA1 != dA2 {
		return nil, fmt.Errorf("harness: R2 side A internally inconsistent")
	}
	if dB3 != dB4 {
		return nil, fmt.Errorf("harness: R2 side B internally inconsistent")
	}
	if dA1 == dB3 {
		return nil, fmt.Errorf("harness: R2 sides did not diverge — scenario is vacuous")
	}
	t.AddRow("common prefix", fmt.Sprintf("%d writes, digest %016x", common, baseDigest))
	t.AddRow("side A digest", fmt.Sprintf("%016x (P1=P2: %v)", dA1, dA1 == dA2))
	t.AddRow("side B digest", fmt.Sprintf("%016x (P3=P4: %v)", dB3, dB3 == dB4))
	t.AddRow("divergence detected", fmt.Sprintf("%v", dA1 != dB3))
	t.AddRow("partition → stable sides (ms)", ms(stabilisedAt.Sub(splitAt)))
	return t, nil
}

// R3PartitionReconciliation closes the loop R2 opens: a replicated group
// splits under load and both sides diverge; after the heal the survivors
// form ONE merged successor group (§5.3 — joining and merging are the
// same machinery) and reconcile by digest diff: per-bucket summaries are
// exchanged as ordinary totally ordered messages, each side's proponent
// ships only the differing buckets, and a last-writer-wins merge makes
// every member converge to the identical state — while fresh writes keep
// flowing into the new group. Deterministic under the fixed sim seed.
func R3PartitionReconciliation() (*Table, error) {
	t := &Table{
		Title:   "R3 — partition reconciliation: digest diff → merged successor group",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"g1={P1..P5} diverges across {P1,P2}|{P3,P4,P5}; heal → merged g2, digest-diff exchange, LWW merge",
		},
	}
	c := sim.New(61, sim.WithLatency(time.Millisecond, 3*time.Millisecond))
	all := []types.ProcessID{1, 2, 3, 4, 5}
	for _, p := range all {
		c.AddProcess(core.Config{Self: p, Omega: 20 * time.Millisecond})
	}
	f := newRSMFleet(c)
	if err := c.Bootstrap(1, core.Symmetric, all); err != nil {
		return nil, err
	}
	for _, p := range all {
		f.attach(p, 1, false, 0)
	}

	// Common prefix.
	const common = 40
	for i := 0; i < common; i++ {
		p := all[i%5]
		pl := put(fmt.Sprintf("base:%03d", i), i)
		c.At(time.Duration(i)*2*time.Millisecond, func() { _ = c.Submit(p, 1, pl) })
	}
	ok := c.RunUntil(60*time.Second, func() bool {
		for _, p := range all {
			if f.core(p, 1).AppliedSeq() < common {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: R3 common prefix stalled")
	}
	splitAt := c.Now()

	// Partition. Side A writes its conflict keys early, side B writes
	// them late — so under last-writer-wins (by apply index) side B's
	// values must win deterministically.
	sideA, sideB := []types.ProcessID{1, 2}, []types.ProcessID{3, 4, 5}
	c.Partition(sideA, sideB)
	base := splitAt.Sub(sim.Epoch)
	aCmds := [][]byte{put("conflict:0", "A0"), put("conflict:1", "A1"), put("a:0", 0), put("a:1", 1), put("a:2", 2)}
	bCmds := [][]byte{put("b:0", 0), put("b:1", 1), put("b:2", 2), put("b:3", 3), put("conflict:0", "B0"), put("conflict:1", "B1")}
	for i, pl := range aCmds {
		pl := pl
		c.At(base+time.Duration(i*4)*time.Millisecond, func() { _ = c.Submit(1, 1, pl) })
	}
	for i, pl := range bCmds {
		pl := pl
		c.At(base+time.Duration(i*4)*time.Millisecond, func() { _ = c.Submit(3, 1, pl) })
	}
	stable := func(ps, others []types.ProcessID) bool {
		for _, p := range ps {
			vs := c.History(p).Views[1]
			if len(vs) == 0 {
				return false
			}
			last := vs[len(vs)-1].View
			for _, o := range others {
				if last.Contains(o) {
					return false
				}
			}
		}
		return true
	}
	ok = c.RunUntil(120*time.Second, func() bool {
		if !stable(sideA, sideB) || !stable(sideB, sideA) {
			return false
		}
		for _, p := range sideA {
			if f.core(p, 1).AppliedSeq() < common+uint64(len(aCmds)) {
				return false
			}
		}
		for _, p := range sideB {
			if f.core(p, 1).AppliedSeq() < common+uint64(len(bCmds)) {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: R3 sides never stabilised")
	}
	dA, dB := f.core(1, 1).Digest(), f.core(3, 1).Digest()
	if dA == dB {
		return nil, fmt.Errorf("harness: R3 sides did not diverge")
	}

	// Heal; the g1 stream is quiescent (the cut-over discipline), so the
	// reconciling cores summarise frozen state. Every survivor joins the
	// merged successor group g2 with its side tag = its old subgroup's
	// lowest member.
	c.Heal()
	healedAt := c.Now()
	for _, p := range sideA {
		f.attachRecon(p, 2, rsm.LastWriterWins(), all, 1)
	}
	for _, p := range sideB {
		f.attachRecon(p, 2, rsm.LastWriterWins(), all, 3)
	}
	if err := c.CreateGroup(1, 2, core.Symmetric, all); err != nil {
		return nil, err
	}
	for _, p := range all {
		f.start(p, 2)
	}
	// Fresh writes flow into g2 throughout formation and reconciliation:
	// they buffer at every member and replay over the merged state.
	during := [][]byte{put("live:0", 0), put("live:1", 1), put("live:2", 2)}
	hbase := healedAt.Sub(sim.Epoch)
	for i, pl := range during {
		p := all[i%5]
		pl := pl
		c.At(hbase+30*time.Millisecond+time.Duration(i*3)*time.Millisecond, func() { _ = c.Submit(p, 2, pl) })
	}
	ok = c.RunUntil(120*time.Second, func() bool {
		for _, p := range all {
			cr := f.core(p, 2)
			if cr.Reconciling() || cr.AppliedSeq() < uint64(len(during)) {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: R3 reconciliation stalled: %v", f.core(1, 2))
	}
	reconciledAt := c.Now()
	c.Run(100 * time.Millisecond) // drain stragglers

	// The acceptance bar: one merged group, digest-equal state at every
	// member, with the deterministic LWW outcome.
	d0 := f.core(1, 2).Digest()
	for _, p := range all[1:] {
		if d := f.core(p, 2).Digest(); d != d0 {
			return nil, fmt.Errorf("harness: R3 post-merge digests diverge: P1=%016x P%d=%016x", d0, p, d)
		}
	}
	for k, want := range map[string]string{
		"conflict:0": "B0", "conflict:1": "B1", // LWW: side B wrote later
		"a:0": "0", "b:3": "3", // both sides' unique keys survive
		"base:000": "0", "live:2": "2", // prefix and in-flight writes intact
	} {
		if v, okk := f.kv(2).Get(k); !okk || v != want {
			return nil, fmt.Errorf("harness: R3 merged state wrong: %s = %q %v, want %q", k, v, okk, want)
		}
	}
	st1, st3 := f.core(1, 2).Stats(), f.core(3, 2).Stats()
	if st1.SummariesIn != 5 || st1.EntriesIn != 2 {
		return nil, fmt.Errorf("harness: R3 exchange shape wrong: %+v", st1)
	}
	if st1.Replayed == 0 {
		return nil, fmt.Errorf("harness: R3 no buffered replay — writes did not overlap the reconciliation")
	}
	merged := st1.MergedPuts + st1.MergedDels
	if merged == 0 || merged >= common {
		return nil, fmt.Errorf("harness: R3 merge not sublinear: %d keys merged of %d+ total", merged, common)
	}

	t.AddRow("common prefix", fmt.Sprintf("%d writes", common))
	t.AddRow("diverged writes", fmt.Sprintf("A:%d B:%d (2 conflicting keys)", len(aCmds), len(bCmds)))
	t.AddRow("pre-merge digests", fmt.Sprintf("A=%016x B=%016x", dA, dB))
	t.AddRow("summaries / entries frames", fmt.Sprintf("%d / %d", st1.SummariesIn, st1.EntriesIn))
	t.AddRow("keys merged (of >46 total)", fmt.Sprintf("%d puts + %d dels", st3.MergedPuts, st3.MergedDels))
	t.AddRow("in-flight writes replayed", fmt.Sprintf("%d", st1.Replayed))
	t.AddRow("heal → converged (ms)", ms(reconciledAt.Sub(healedAt)))
	t.AddRow("post-merge digest", fmt.Sprintf("%016x at all 5 members", d0))
	return t, nil
}
