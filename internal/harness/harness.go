// Package harness runs the repository's experiments: it wires workloads
// into deterministic simulations, collects the metrics the paper's
// comparative claims are about (messages, bytes, null overhead, delivery
// latency, agreement latency), and formats result tables. Both the bench
// targets in bench_test.go and cmd/newtop-bench are thin wrappers around
// this package; EXPERIMENTS.md records the outputs.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
	"newtop/internal/wire"
	"newtop/internal/workload"
)

// Params tunes an experiment run.
type Params struct {
	Seed       int64
	Omega      time.Duration // default 20ms
	LatencyMin time.Duration // default 1ms
	LatencyMax time.Duration // default 3ms
	FlowWindow int
	StaticMode bool // disable failure detection (§4 failure-free runs)
}

func (p Params) withDefaults() Params {
	if p.Omega <= 0 {
		p.Omega = 20 * time.Millisecond
	}
	if p.LatencyMin <= 0 {
		p.LatencyMin = 1 * time.Millisecond
	}
	if p.LatencyMax <= p.LatencyMin {
		p.LatencyMax = p.LatencyMin + 2*time.Millisecond
	}
	return p
}

// Run is a configured simulation with its workload applied.
type Run struct {
	Cluster *sim.Cluster
	Groups  []workload.Group
	Params  Params
	nprocs  int
}

// NewRun builds a cluster of nprocs processes with the given groups
// bootstrapped and byte accounting enabled.
func NewRun(nprocs int, groups []workload.Group, p Params) (*Run, error) {
	p = p.withDefaults()
	c := sim.New(p.Seed, sim.WithLatency(p.LatencyMin, p.LatencyMax))
	c.CountBytes(wire.Size)
	for i := 1; i <= nprocs; i++ {
		c.AddProcess(core.Config{
			Self:                    types.ProcessID(i),
			Omega:                   p.Omega,
			FlowControlWindow:       p.FlowWindow,
			DisableFailureDetection: p.StaticMode,
		})
	}
	for _, g := range groups {
		if err := c.Bootstrap(g.ID, g.Mode, g.Members); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	return &Run{Cluster: c, Groups: groups, Params: p, nprocs: nprocs}, nil
}

// Apply schedules the workload submissions.
func (r *Run) Apply(subs []workload.Submission) {
	for _, s := range subs {
		s := s
		r.Cluster.At(time.Duration(s.AtMillis)*time.Millisecond, func() {
			_ = r.Cluster.Submit(s.From, s.Group, s.Payload)
		})
	}
}

// Metrics aggregates a run's outcome.
type Metrics struct {
	Messages     uint64        // point-to-point transmissions
	Bytes        uint64        // wire bytes
	DataSent     uint64        // application multicasts
	Nulls        uint64        // time-silence nulls
	Ctrl         uint64        // membership/formation multicasts
	Delivered    uint64        // application deliveries (all processes)
	MeanLatency  time.Duration // submit → delivery, averaged over (msg, receiver)
	MaxLatency   time.Duration
	BlockedSends uint64
	FlowBlocked  uint64
	ViewChanges  uint64
}

// Collect computes metrics after the run has quiesced. Latency pairs every
// submission with each delivery of the same payload.
func (r *Run) Collect() Metrics {
	var m Metrics
	c := r.Cluster
	m.Messages = c.TotalMessages()
	m.Bytes = c.TotalBytes()
	submitAt := make(map[string]time.Time)
	for _, p := range c.Processes() {
		st := c.Engine(p).Stats()
		m.DataSent += st.DataSent
		m.Nulls += st.NullsSent
		m.Ctrl += st.CtrlSent
		m.Delivered += st.Delivered
		m.BlockedSends += st.BlockedSends
		m.FlowBlocked += st.FlowBlocked
		m.ViewChanges += st.ViewChanges
		for _, ev := range c.History(p).Events {
			if ev.Kind == sim.EvSubmit {
				submitAt[string(ev.Payload)] = ev.At
			}
		}
	}
	var total time.Duration
	var count int64
	for _, p := range c.Processes() {
		for _, d := range c.History(p).Deliveries {
			t0, ok := submitAt[string(d.Payload)]
			if !ok {
				continue
			}
			lat := d.At.Sub(t0)
			total += lat
			count++
			if lat > m.MaxLatency {
				m.MaxLatency = lat
			}
		}
	}
	if count > 0 {
		m.MeanLatency = total / time.Duration(count)
	}
	return m
}

// MsgsPerDelivery returns transmissions per application delivery, the
// paper-style normalised message cost.
func (m Metrics) MsgsPerDelivery() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.Messages) / float64(m.Delivered)
}

// HeaderBytesPerMsg returns average wire bytes per transmission.
func (m Metrics) HeaderBytesPerMsg() float64 {
	if m.Messages == 0 {
		return 0
	}
	return float64(m.Bytes) / float64(m.Messages)
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, cell)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// ms formats a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
