package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"newtop/internal/core"
	"newtop/internal/workload"
)

func TestTableFprint(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "bb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAndCollect(t *testing.T) {
	groups := workload.SingleGroup(3, core.Symmetric)
	r, err := NewRun(3, groups, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Apply(workload.UniformTraffic(groups, 2, 2))
	ok := r.Cluster.RunUntil(30*time.Second, func() bool {
		for _, p := range r.Cluster.Processes() {
			if len(r.Cluster.History(p).Deliveries) < 6 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("run never completed")
	}
	m := r.Collect()
	if m.Delivered != 18 {
		t.Errorf("Delivered = %d, want 18", m.Delivered)
	}
	if m.DataSent != 6 {
		t.Errorf("DataSent = %d, want 6", m.DataSent)
	}
	if m.MeanLatency <= 0 || m.MaxLatency < m.MeanLatency {
		t.Errorf("latencies implausible: mean=%v max=%v", m.MeanLatency, m.MaxLatency)
	}
	if m.Bytes == 0 || m.Messages == 0 {
		t.Error("byte/message accounting missing")
	}
	if m.MsgsPerDelivery() <= 0 || m.HeaderBytesPerMsg() <= 0 {
		t.Error("derived metrics zero")
	}
}

func TestC1HeaderOverheadShape(t *testing.T) {
	tab := C1HeaderOverhead([]int{3, 8, 32, 128})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Newtop column constant; vector clock column strictly increasing and
	// eventually far larger.
	nt0 := tab.Rows[0][1]
	prevVC := 0
	for i, row := range tab.Rows {
		if row[1] != nt0 {
			t.Errorf("newtop header not constant: row %d = %s vs %s", i, row[1], nt0)
		}
		vc, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if vc <= prevVC {
			t.Errorf("vector clock header not increasing at row %d", i)
		}
		prevVC = vc
	}
	nt, _ := strconv.Atoi(nt0)
	if prevVC < 4*nt {
		t.Errorf("at n=128 the vector clock header (%d) should dwarf newtop's (%d)", prevVC, nt)
	}
}

func TestC2Small(t *testing.T) {
	tab, err := C2SymVsAsym([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestC3Shape(t *testing.T) {
	tab, err := C3SendBlocking()
	if err != nil {
		t.Fatal(err)
	}
	// Share 0% must have zero blocked sends; higher shares nonzero is
	// workload-dependent, but 100% row exists.
	if tab.Rows[0][1] != "0" {
		t.Errorf("symmetric-only run blocked %s sends, want 0", tab.Rows[0][1])
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestC5FormationSmall(t *testing.T) {
	tab, err := C5Formation([]int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestC6MembershipSmall(t *testing.T) {
	tab, err := C6Membership([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestC7Small(t *testing.T) {
	tab, err := C7VsPropagationGraph([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestC8Small(t *testing.T) {
	tab, err := C8CyclicGroups([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Rows[0][4]; got != "true" {
		t.Errorf("cyclic run order OK = %s", got)
	}
}

func TestC9Shape(t *testing.T) {
	tab, err := C9FlowControl()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][1] != "0" {
		t.Errorf("window=0 run flow-blocked %s times, want 0", tab.Rows[0][1])
	}
}

func TestScenarios(t *testing.T) {
	if _, err := F1Migration(); err != nil {
		t.Errorf("F1: %v", err)
	}
	if _, err := F3AtomicVsTotal(); err != nil {
		t.Errorf("F3: %v", err)
	}
	if _, err := X1JointFailure(); err != nil {
		t.Errorf("X1: %v", err)
	}
	if _, err := X2CausalChain(); err != nil {
		t.Errorf("X2: %v", err)
	}
	if _, err := X3ConcurrentViews(); err != nil {
		t.Errorf("X3: %v", err)
	}
}

// TestReplicationScenarios runs the rsm-layer stories: catch-up into a
// loaded group (R1), digest-based divergence detection (R2) and
// digest-diff reconciliation into a merged successor group (R3). Each
// asserts its own acceptance conditions internally (chunked snapshot,
// non-empty replay tail, digest equality / inequality, deterministic
// merge outcome).
func TestReplicationScenarios(t *testing.T) {
	if _, err := R1ReplicaCatchUp(); err != nil {
		t.Errorf("R1: %v", err)
	}
	if _, err := R2PartitionDivergence(); err != nil {
		t.Errorf("R2: %v", err)
	}
	if _, err := R3PartitionReconciliation(); err != nil {
		t.Errorf("R3: %v", err)
	}
}

// TestClientFailoverScenario runs the externally-driven workload (R4):
// real daemons over memnet, a real client over loopback TCP, sustained
// load across a daemon kill and a partition→heal→reconcile cycle. The
// scenario asserts its own acceptance bar internally (zero acked-write
// loss, read-your-writes across failover, old groups quiet).
func TestClientFailoverScenario(t *testing.T) {
	if _, err := R4ClientFailover(); err != nil {
		t.Errorf("R4: %v", err)
	}
}

// TestShardMoveScenario runs the live shard-range move workload (R5): a
// sharded TCP fleet under open-loop background load while one arc of the
// keyspace migrates to a freshly formed group. The scenario asserts its
// own acceptance bar internally (zero acked-write loss, read-your-writes
// across the epoch bump, the session re-routes itself, drops explained).
func TestShardMoveScenario(t *testing.T) {
	if _, err := R5ShardMove(); err != nil {
		t.Errorf("R5: %v", err)
	}
}

// TestCrashRecoveryScenario runs the durability workload (R6): daemons
// with WALs under open-loop load, one killed -9 and restarted from its
// data dir. The scenario asserts its own acceptance bar internally (zero
// acked-write loss verified at the restarted daemon, local replay, fast-
// path rejoin with no snapshot transfer, drops explained).
func TestCrashRecoveryScenario(t *testing.T) {
	if _, err := R6CrashRecovery(); err != nil {
		t.Errorf("R6: %v", err)
	}
}
