package harness

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"newtop"
	"newtop/client"
	"newtop/internal/capacity"
	"newtop/internal/types"
	"newtop/internal/workload"
)

// R5ShardMove exercises the sharded service under its most delicate
// operation: a live range move between shard groups while clients keep
// writing. A 3-daemon fleet serves two shard arcs behind the meta-group
// shard map; an open-loop background driver offers steady load across the
// whole keyspace, a tracked verification session writes into both arcs,
// and mid-run one arc is migrated to a freshly formed group (snapshot cut
// at the fence, incumbent seeding, formation, epoch-bumping commit,
// source purge — §5.3: groups are never rejoined, reconfiguration forms
// new ones).
//
// The acceptance bar it asserts internally:
//
//   - zero acked-write loss: every Put acknowledged before, during or
//     after the move is readable (BarrierGet) from whichever group owns
//     its key afterwards;
//   - read-your-writes holds across the epoch bump on the same session:
//     plain Gets of pre-move writes answer correctly after the session
//     has been re-routed to the range's new owner;
//   - the session observes the map change as a cache refresh (epoch bump)
//     and keeps routing on its own — the workload loop never picks an
//     endpoint;
//   - every message drop across the fleet carries an explained reason
//     (formation, purge, drain); unexplained drops fail the run.
func R5ShardMove() (*Table, error) {
	t := &Table{
		Title:   "R5 — live shard-range move under open-loop load",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"3 daemons, 2 shard groups (replication 2) + meta group; move one arc to a new group mid-load",
		},
	}
	fleet, err := capacity.StartFleet(capacity.FleetConfig{
		Seed: 17, Daemons: 3, Shards: 2, Replication: 2,
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()
	mid := uint64(1) << 63 // the boundary between the two initial arcs

	sess, err := client.Config{
		DialTimeout:     time.Second,
		OpTimeout:       15 * time.Second,
		FailoverTimeout: 30 * time.Second,
		RetryWait:       10 * time.Millisecond,
	}.Dial(fleet.Addrs()...)
	if err != nil {
		return nil, err
	}
	defer func() { _ = sess.Close() }()

	// keyIn mints fresh keys hashing into [lo, hi) (hi == 0: ring top).
	keySeq := 0
	keyIn := func(lo, hi uint64) string {
		for {
			keySeq++
			k := fmt.Sprintf("r5:%06d", keySeq)
			if h := types.KeyHash(k); h >= lo && (hi == 0 || h < hi) {
				return k
			}
		}
	}

	// The tracked workload: acked Puts with read-your-writes spot checks,
	// exactly R4's loss-accounting discipline — an UNKNOWN outcome is
	// retried under the same key/value (idempotent by content) until
	// acked; only the ack matters.
	var ackedMu sync.Mutex
	acked := map[string]string{}
	unackedRetries := 0
	write := func(lo, hi uint64) error {
		key := keyIn(lo, hi)
		val := "v:" + key
		for {
			err := sess.Put(key, val)
			if err == nil {
				ackedMu.Lock()
				acked[key] = val
				ackedMu.Unlock()
				if keySeq%8 == 0 { // read-your-writes spot check
					got, ok, err := sess.Get(key)
					if err != nil || !ok || got != val {
						return fmt.Errorf("read-your-writes broken at %s: %q %v %v", key, got, ok, err)
					}
				}
				return nil
			}
			if errors.Is(err, client.ErrUnacked) {
				unackedRetries++
				continue
			}
			return fmt.Errorf("write %s: %w", key, err)
		}
	}
	burst := func(n int) error {
		for i := 0; i < n; i++ {
			// Alternate arcs so both shard groups order tracked writes.
			lo, hi := uint64(0), mid
			if i%2 == 1 {
				lo, hi = mid, uint64(0)
			}
			if err := write(lo, hi); err != nil {
				return err
			}
		}
		return nil
	}

	// Background open-loop load across the whole keyspace for the entire
	// lifecycle, started before the move and drained after it.
	bgDone := make(chan struct{})
	var bgRes capacity.DriverResult
	var bgErr error
	go func() {
		defer close(bgDone)
		bgRes, bgErr = capacity.Run(capacity.DriverConfig{
			Addrs:        fleet.Addrs(),
			Sessions:     8,
			Arrivals:     workload.Poisson{OpsPerSec: 250, Seed: 17},
			Duration:     3 * time.Second,
			DrainTimeout: 15 * time.Second,
			Seed:         17,
		})
	}()

	// Phase 1 — steady state: tracked writes land in both arcs and the
	// session learns both shard routes from redirects.
	if err := burst(40); err != nil {
		return nil, err
	}
	epochBefore := sess.RouteEpoch()
	if epochBefore == 0 {
		return nil, errors.New("harness: R5 session never learned the shard map")
	}
	preMove := 0
	ackedMu.Lock()
	preMove = len(acked)
	ackedMu.Unlock()

	// Phase 2 — move the high arc [mid, 0) from its incumbent group
	// (members P2, P3) to a freshly formed group of {P3, P1}, driven by
	// P3 (a member of both, so it doubles as snapshot streamer and
	// incumbent), while the tracked writer keeps hammering both arcs.
	moveDone := make(chan struct{})
	var target newtop.GroupID
	var moveErr error
	movedAt := time.Now()
	go func() {
		defer close(moveDone)
		target, moveErr = fleet.Daemon(3).MoveRange(mid, 0, []newtop.ProcessID{3, 1})
	}()
	for {
		select {
		case <-moveDone:
		default:
			if err := burst(4); err != nil {
				return nil, fmt.Errorf("during move: %w", err)
			}
			continue
		}
		break
	}
	if moveErr != nil {
		return nil, fmt.Errorf("harness: R5 MoveRange: %w", moveErr)
	}
	moveTook := time.Since(movedAt)

	// Phase 3 — post-move: writes keep acking into the new owner, and the
	// session's route cache refreshes on the epoch bump.
	if err := burst(30); err != nil {
		return nil, fmt.Errorf("after move: %w", err)
	}
	epochAfter := sess.RouteEpoch()
	if epochAfter <= epochBefore {
		return nil, fmt.Errorf("harness: R5 session never saw the epoch bump (%d -> %d)", epochBefore, epochAfter)
	}
	if sess.Stats().ShardRefresh == 0 {
		return nil, errors.New("harness: R5 route cache never refreshed across the move")
	}

	// Read-your-writes across the bump: plain Gets (not barrier) of
	// pre-move acked writes must answer from the re-routed session.
	rywChecked := 0
	ackedMu.Lock()
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	ackedMu.Unlock()
	for _, k := range keys {
		if types.KeyHash(k) < mid || rywChecked >= 10 {
			continue
		}
		ackedMu.Lock()
		want := acked[k]
		ackedMu.Unlock()
		got, ok, err := sess.Get(k)
		if err != nil || !ok || got != want {
			return nil, fmt.Errorf("harness: R5 read-your-writes broken across the epoch bump at %s: %q %v %v", k, got, ok, err)
		}
		rywChecked++
	}

	// Drain the background load before the final verification sweep.
	<-bgDone
	if bgErr != nil {
		return nil, fmt.Errorf("harness: R5 background driver: %w", bgErr)
	}
	if frac := float64(bgRes.Errors) / float64(bgRes.Scheduled); frac > 0.02 {
		return nil, fmt.Errorf("harness: R5 background error fraction %.4f (%d of %d) above 2%%",
			frac, bgRes.Errors, bgRes.Scheduled)
	}
	if bgRes.Unfinished > 0 {
		return nil, fmt.Errorf("harness: R5 background driver stranded %d ops", bgRes.Unfinished)
	}

	// Zero acked-write loss across the whole lifecycle, from whichever
	// group owns each key now.
	ackedMu.Lock()
	final := make(map[string]string, len(acked))
	for k, v := range acked {
		final[k] = v
	}
	ackedMu.Unlock()
	for key, val := range final {
		got, ok, err := sess.BarrierGet(key)
		if err != nil || !ok || got != val {
			return nil, fmt.Errorf("harness: R5 acked write %s lost across the move: %q %v %v", key, got, ok, err)
		}
	}

	// Every drop across the fleet must be explained (formation, purge,
	// drain); anything else is silent loss.
	if n, label := fleet.UnexplainedDrops(); n > 0 {
		return nil, fmt.Errorf("harness: R5 %d unexplained drops (%s)", n, label)
	}

	st := sess.Stats()
	t.AddRow("acked tracked writes", fmt.Sprintf("%d (all verified, zero lost)", len(final)))
	t.AddRow("tracked writes acked before the move", fmt.Sprintf("%d", preMove))
	t.AddRow("unacked writes retried by caller", fmt.Sprintf("%d", unackedRetries))
	t.AddRow("moved arc", fmt.Sprintf("[%#x, ring top) -> g%d in %s ms", mid, target, ms(moveTook)))
	t.AddRow("shard-map epoch", fmt.Sprintf("%d -> %d (session refreshed %d times)", epochBefore, epochAfter, st.ShardRefresh))
	t.AddRow("read-your-writes across the bump", fmt.Sprintf("%d pre-move keys re-read plain", rywChecked))
	t.AddRow("session shard-routed ops / redirects / retries", fmt.Sprintf("%d / %d / %d", st.ShardRouted, st.Redirects, st.Retries))
	t.AddRow("background open-loop ops", fmt.Sprintf("%d completed, %d errors, %d unfinished @ %.0f ops/s offered",
		bgRes.Completed, bgRes.Errors, bgRes.Unfinished, bgRes.Offered))
	t.AddRow("background p99 (intended-start)", fmt.Sprintf("%s ms", ms(bgRes.P99)))
	t.AddRow("drops", "all explained (formation/purge/drain)")
	return t, nil
}
