package harness

import (
	"fmt"
	"time"

	"newtop/internal/baseline"
	"newtop/internal/check"
	"newtop/internal/core"
	"newtop/internal/types"
	"newtop/internal/wire"
	"newtop/internal/workload"
)

// This file implements every experiment in DESIGN.md §4 — one function per
// figure/example/claim of the paper. Each returns a Table whose rows are
// the series the paper's qualitative claims predict; EXPERIMENTS.md
// records expected-vs-measured.

// sampleDataMessage builds a representative Newtop data multicast with
// realistic field magnitudes (long-running clock values).
func sampleDataMessage(payload int) *types.Message {
	return &types.Message{
		Kind: types.KindData, Group: 12, Sender: 1000, Origin: 1000,
		Num: 5_000_000, Seq: 40_000, LDN: 4_999_900,
		Payload: make([]byte, payload),
	}
}

// C1HeaderOverhead compares Newtop's protocol header against the
// vector-clock baseline as group size grows (§6: "low and bounded message
// space overhead (which is even smaller than the overhead of ISIS vector
// clocks)"). Newtop's header is constant; the vector clock grows by one
// counter per member.
func C1HeaderOverhead(sizes []int) *Table {
	t := &Table{
		Title:   "C1 — protocol header bytes per multicast vs group size",
		Columns: []string{"n", "newtop", "vector-clock", "sequencer", "vc/newtop"},
		Notes: []string{
			"newtop header is independent of group size and of how many groups the sender is in",
			"vector-clock counters valued ~40k (long-running run); same varint coding for all three",
		},
	}
	nt := wire.Overhead(sampleDataMessage(64))
	for _, n := range sizes {
		vt := make([]uint64, n)
		for i := range vt {
			vt[i] = 40_000
		}
		vc := (&baseline.VCMessage{Sender: n - 1, VT: vt}).HeaderBytes()
		sq := (&baseline.SeqMessage{Seq: 40_000, Sender: n - 1}).HeaderBytes()
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", nt),
			fmt.Sprintf("%d", vc),
			fmt.Sprintf("%d", sq),
			f2(float64(vc)/float64(nt)),
		)
	}
	return t
}

// runOrdered drives a single-group run with uniform traffic to completion
// and collects metrics.
func runOrdered(n int, mode core.OrderMode, perMember int, p Params) (Metrics, error) {
	groups := workload.SingleGroup(n, mode)
	r, err := NewRun(n, groups, p)
	if err != nil {
		return Metrics{}, err
	}
	subs := workload.UniformTraffic(groups, perMember, 2)
	r.Apply(subs)
	want := n * perMember // deliveries per process
	ok := r.Cluster.RunUntil(60*time.Second, func() bool {
		for _, pid := range r.Cluster.Processes() {
			if len(r.Cluster.History(pid).Deliveries) < want {
				return false
			}
		}
		return true
	})
	if !ok {
		return Metrics{}, fmt.Errorf("harness: run n=%d mode=%v never completed", n, mode)
	}
	return r.Collect(), nil
}

// C2SymVsAsym compares the symmetric (§4.1) and asymmetric (§4.2)
// protocols across group sizes: transmissions per delivery, wire bytes,
// and delivery latency.
func C2SymVsAsym(sizes []int) (*Table, error) {
	t := &Table{
		Title: "C2 — symmetric vs asymmetric total order (5 msgs/member, ω=20ms)",
		Columns: []string{"n", "sym msg/dlv", "asym msg/dlv", "sym lat(ms)", "asym lat(ms)",
			"asym-static lat(ms)", "sym B/msg", "asym B/msg"},
		Notes: []string{
			"symmetric: n-1 transmissions per multicast, direct; asymmetric: unicast + n-1 via sequencer",
			"latency = submit→delivery mean over (message, receiver)",
			"asym-static = §4.2 failure-free configuration: delivery straight from the sequencer stream,",
			"no ω-paced safety boundary — the paper's 'delivered straightaway'; the fault-tolerant",
			"configuration gates on min(RV) so the §5.2 agreement boundary stays consistent",
		},
	}
	for _, n := range sizes {
		sym, err := runOrdered(n, core.Symmetric, 5, Params{Seed: 42})
		if err != nil {
			return nil, err
		}
		asym, err := runOrdered(n, core.Asymmetric, 5, Params{Seed: 42})
		if err != nil {
			return nil, err
		}
		asymStatic, err := runOrdered(n, core.Asymmetric, 5, Params{Seed: 42, StaticMode: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			f2(sym.MsgsPerDelivery()), f2(asym.MsgsPerDelivery()),
			ms(sym.MeanLatency), ms(asym.MeanLatency), ms(asymStatic.MeanLatency),
			f2(sym.HeaderBytesPerMsg()), f2(asym.HeaderBytesPerMsg()),
		)
	}
	return t, nil
}

// C3SendBlocking measures the §4.3 claim: "new multicast in a given group
// is blocked only if any multicast made in a different asymmetric group is
// awaiting distribution by the sequencer. If only symmetric version is
// used, Newtop is totally non-blocking on send operations."
func C3SendBlocking() (*Table, error) {
	t := &Table{
		Title:   "C3 — send blocking vs share of asymmetric traffic (P2 in sym g1 + asym g2)",
		Columns: []string{"asym share", "blocked sends", "total submits", "mean lat(ms)"},
		Notes: []string{
			"blocking affects only submits issued while an earlier unicast awaits its sequencer",
		},
	}
	for _, share := range []int{0, 25, 50, 100} {
		groups := []workload.Group{
			{ID: 1, Mode: core.Symmetric, Members: []types.ProcessID{1, 2, 3}},
			{ID: 2, Mode: core.Asymmetric, Members: []types.ProcessID{1, 2, 4}}, // sequencer P1
		}
		r, err := NewRun(4, groups, Params{Seed: 7})
		if err != nil {
			return nil, err
		}
		const total = 40
		asymEvery := 0
		if share > 0 {
			asymEvery = 100 / share
		}
		n := 0
		for i := 0; i < total; i++ {
			g := types.GroupID(1)
			if asymEvery > 0 && i%asymEvery == 0 {
				g = 2
			}
			pl := []byte(fmt.Sprintf("c3-%d-%d", share, i))
			at := time.Duration(i) * time.Millisecond
			gg := g
			r.Cluster.At(at, func() { _ = r.Cluster.Submit(2, gg, pl) })
			n++
		}
		ok := r.Cluster.RunUntil(60*time.Second, func() bool {
			return len(r.Cluster.History(2).Deliveries) >= n
		})
		if !ok {
			return nil, fmt.Errorf("harness: C3 share=%d never completed", share)
		}
		m := r.Collect()
		t.AddRow(fmt.Sprintf("%d%%", share),
			fmt.Sprintf("%d", m.BlockedSends),
			fmt.Sprintf("%d", n),
			ms(m.MeanLatency))
	}
	return t, nil
}

// C4TimeSilence measures the null-message overhead of the time-silence
// mechanism (§4.1) as a function of ω and the application traffic rate.
func C4TimeSilence() (*Table, error) {
	t := &Table{
		Title:   "C4 — time-silence null overhead (n=5 symmetric, 20 msgs/member)",
		Columns: []string{"ω(ms)", "spacing(ms)", "nulls/data", "mean lat(ms)"},
		Notes: []string{
			"busy senders suppress nulls (any send resets the ω timer); idle groups pay ~1 null per ω per member",
		},
	}
	for _, omega := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		for _, spacing := range []int{2, 20, 100} {
			groups := workload.SingleGroup(5, core.Symmetric)
			r, err := NewRun(5, groups, Params{Seed: 11, Omega: omega})
			if err != nil {
				return nil, err
			}
			r.Apply(workload.UniformTraffic(groups, 20, spacing))
			want := 5 * 20
			ok := r.Cluster.RunUntil(300*time.Second, func() bool {
				for _, pid := range r.Cluster.Processes() {
					if len(r.Cluster.History(pid).Deliveries) < want {
						return false
					}
				}
				return true
			})
			if !ok {
				return nil, fmt.Errorf("harness: C4 ω=%v spacing=%d stalled", omega, spacing)
			}
			m := r.Collect()
			t.AddRow(
				fmt.Sprintf("%d", omega/time.Millisecond),
				fmt.Sprintf("%d", spacing),
				f2(float64(m.Nulls)/float64(m.DataSent)),
				ms(m.MeanLatency),
			)
		}
	}
	return t, nil
}

// C5Formation measures the §5.3 group-formation protocol: control
// messages and elapsed time until every member reports GroupReady.
func C5Formation(sizes []int) (*Table, error) {
	t := &Table{
		Title:   "C5 — dynamic group formation cost (§5.3 two-phase + start-group)",
		Columns: []string{"n", "ctrl mcasts", "p2p msgs", "time(ms)"},
		Notes: []string{
			"p2p: invite (n-1) + votes (n(n-1)) + start-group (n(n-1)) + a few nulls; vote diffusion dominates",
		},
	}
	for _, n := range sizes {
		r, err := NewRun(n, nil, Params{Seed: 13})
		if err != nil {
			return nil, err
		}
		members := workload.Procs(n)
		if err := r.Cluster.CreateGroup(1, 9, core.Symmetric, members); err != nil {
			return nil, err
		}
		start := r.Cluster.Now()
		ok := r.Cluster.RunUntil(60*time.Second, func() bool {
			for _, pid := range members {
				if !r.Cluster.Engine(pid).GroupReady(9) {
					return false
				}
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("harness: C5 n=%d formation stalled", n)
		}
		var ctrl uint64
		for _, pid := range members {
			ctrl += r.Cluster.Engine(pid).Stats().CtrlSent
		}
		readyAt := r.Cluster.Now()
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", ctrl),
			fmt.Sprintf("%d", r.Cluster.TotalMessages()), ms(readyAt.Sub(start)))
	}
	return t, nil
}

// C6Membership measures crash-to-new-view latency and agreement traffic
// (§5.2) across group sizes.
func C6Membership(sizes []int) (*Table, error) {
	t := &Table{
		Title:   "C6 — membership agreement after a crash (ω=20ms, Ω=100ms)",
		Columns: []string{"n", "detect+agree(ms)", "Ω(ms)", "ctrl msgs"},
		Notes: []string{
			"latency is dominated by the suspicion timeout Ω; agreement itself adds ~2 latency rounds",
		},
	}
	for _, n := range sizes {
		groups := workload.SingleGroup(n, core.Symmetric)
		r, err := NewRun(n, groups, Params{Seed: 17})
		if err != nil {
			return nil, err
		}
		r.Cluster.Run(100 * time.Millisecond)
		var ctrlBefore uint64
		for _, pid := range r.Cluster.Processes() {
			ctrlBefore += r.Cluster.Engine(pid).Stats().CtrlSent
		}
		victim := types.ProcessID(n)
		crashAt := r.Cluster.Now()
		r.Cluster.Crash(victim)
		survivors := workload.Procs(n - 1)
		ok := r.Cluster.RunUntil(120*time.Second, func() bool {
			for _, pid := range survivors {
				vs := r.Cluster.History(pid).Views[1]
				if len(vs) == 0 || vs[len(vs)-1].View.Contains(victim) {
					return false
				}
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("harness: C6 n=%d agreement stalled", n)
		}
		var ctrlAfter uint64
		for _, pid := range survivors {
			ctrlAfter += r.Cluster.Engine(pid).Stats().CtrlSent
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			ms(r.Cluster.Now().Sub(crashAt)),
			fmt.Sprintf("%d", 100),
			fmt.Sprintf("%d", ctrlAfter-ctrlBefore),
		)
	}
	return t, nil
}

// C7VsPropagationGraph compares Newtop's coordination-free overlapping
// groups against the Garcia-Molina/Spauster propagation graph [9] on a
// chain of overlapping groups (§6 comparison).
func C7VsPropagationGraph(chainLens []int) (*Table, error) {
	t := &Table{
		Title:   "C7 — overlapping-group ordering: Newtop vs propagation graph (chain, size 3, overlap 1)",
		Columns: []string{"k groups", "NT msg/dlv", "NT max-send/proc", "PG msg/dlv", "PG master load", "PG master"},
		Notes: []string{
			"propagation graph funnels every component message through one master (hot spot, +1 hop)",
			"Newtop orders the same workload with no cross-group coordination; load stays at the senders",
		},
	}
	const perMember = 3
	for _, k := range chainLens {
		groups, nprocs, err := workload.Chain(k, 3, 1, core.Symmetric)
		if err != nil {
			return nil, err
		}
		r, err := NewRun(nprocs, groups, Params{Seed: 19})
		if err != nil {
			return nil, err
		}
		r.Apply(workload.UniformTraffic(groups, perMember, 2))
		want := make(map[types.ProcessID]int)
		for _, g := range groups {
			for _, m := range g.Members {
				want[m] += perMember * len(g.Members)
			}
		}
		ok := r.Cluster.RunUntil(120*time.Second, func() bool {
			for pid, w := range want {
				if len(r.Cluster.History(pid).Deliveries) < w {
					return false
				}
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("harness: C7 k=%d stalled", k)
		}
		m := r.Collect()
		var maxSend uint64
		for _, pid := range r.Cluster.Processes() {
			if s := r.Cluster.Engine(pid).Stats().MsgsSent; s > maxSend {
				maxSend = s
			}
		}

		// Propagation-graph baseline over the same workload.
		specs := make([]baseline.GroupSpec, len(groups))
		for i, g := range groups {
			ms := make([]int, len(g.Members))
			for j, p := range g.Members {
				ms[j] = int(p)
			}
			specs[i] = baseline.GroupSpec{ID: int(g.ID), Members: ms}
		}
		pg, err := baseline.NewPropGraph(specs)
		if err != nil {
			return nil, err
		}
		pgMsgs, pgDlvs := 0, 0
		for _, g := range groups {
			for _, p := range g.Members {
				for i := 0; i < perMember; i++ {
					_, hops, err := pg.Multicast(int(g.ID), int(p), nil)
					if err != nil {
						return nil, err
					}
					pgMsgs += hops
					pgDlvs += len(g.Members)
				}
			}
		}
		master, load := pg.MaxLoad()
		t.AddRow(
			fmt.Sprintf("%d", k),
			f2(m.MsgsPerDelivery()),
			fmt.Sprintf("%d", maxSend),
			f2(float64(pgMsgs)/float64(pgDlvs)),
			fmt.Sprintf("%d", load),
			fmt.Sprintf("P%d", master),
		)
	}
	return t, nil
}

// C8CyclicGroups runs the cyclic overlap structure (fig. 2 / §6) and
// verifies ordering holds with constant header cost as the cycle grows.
func C8CyclicGroups(ringSizes []int) (*Table, error) {
	t := &Table{
		Title:   "C8 — cyclic overlapping groups (ring of 2-member groups)",
		Columns: []string{"k", "msg/dlv", "mean lat(ms)", "B/msg", "order OK"},
		Notes: []string{
			"§6: receive vectors handle arbitrary (including cyclic) overlap; header stays bounded",
		},
	}
	for _, k := range ringSizes {
		groups, nprocs, err := workload.Ring(k, core.Symmetric)
		if err != nil {
			return nil, err
		}
		r, err := NewRun(nprocs, groups, Params{Seed: 23})
		if err != nil {
			return nil, err
		}
		const perMember = 3
		r.Apply(workload.UniformTraffic(groups, perMember, 2))
		ok := r.Cluster.RunUntil(120*time.Second, func() bool {
			for _, pid := range r.Cluster.Processes() {
				// Every process is in exactly 2 ring groups of size 2.
				if len(r.Cluster.History(pid).Deliveries) < 2*2*perMember {
					return false
				}
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("harness: C8 k=%d stalled", k)
		}
		m := r.Collect()
		res := check.New(r.Cluster, nil).All()
		t.AddRow(
			fmt.Sprintf("%d", k),
			f2(m.MsgsPerDelivery()),
			ms(m.MeanLatency),
			f2(m.HeaderBytesPerMsg()),
			fmt.Sprintf("%v", res.Ok()),
		)
	}
	return t, nil
}

// C9FlowControl measures the sender window (§7 / [11]): a burst from one
// sender with varying windows.
func C9FlowControl() (*Table, error) {
	t := &Table{
		Title:   "C9 — flow control: 100-message burst, n=3 symmetric",
		Columns: []string{"window", "flow-blocked", "completion(ms)"},
		Notes: []string{
			"window 0 disables flow control; smaller windows trade burst latency for bounded unstable backlog",
		},
	}
	for _, w := range []int{0, 4, 16, 64} {
		groups := workload.SingleGroup(3, core.Symmetric)
		r, err := NewRun(3, groups, Params{Seed: 29, FlowWindow: w})
		if err != nil {
			return nil, err
		}
		const burst = 100
		for i := 0; i < burst; i++ {
			pl := []byte(fmt.Sprintf("c9-%d-%d", w, i))
			r.Cluster.At(0, func() { _ = r.Cluster.Submit(1, 1, pl) })
		}
		start := r.Cluster.Now()
		ok := r.Cluster.RunUntil(120*time.Second, func() bool {
			for _, pid := range r.Cluster.Processes() {
				if len(r.Cluster.History(pid).Deliveries) < burst {
					return false
				}
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("harness: C9 w=%d stalled", w)
		}
		m := r.Collect()
		t.AddRow(
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%d", m.FlowBlocked),
			ms(r.Cluster.Now().Sub(start)),
		)
	}
	return t, nil
}
