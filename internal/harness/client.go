package harness

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"newtop"
	"newtop/client"
	"newtop/internal/daemon"
)

// R4ClientFailover is the first externally-driven workload: real daemons
// (internal/daemon) over an in-memory network, serving a real client
// session over loopback TCP, under sustained external writes — through a
// daemon crash and through a whole partition→heal→reconcile cycle. Unlike
// the sim-based scenarios it runs on the wall clock: the point is the
// production code path, client wire protocol to replica ack, under real
// concurrency.
//
// The acceptance bar it asserts internally:
//
//   - zero acked-write loss: every Put the cluster acknowledged is
//     readable (BarrierGet) after the crash, and after the merge;
//   - read-your-writes holds at every step of the session, across the
//     failover;
//   - the client reconnects, redirects and retries on its own — the
//     workload loop never handles an endpoint choice;
//   - superseded groups go quiet: once service cut over to the merged
//     group, the old group is left and its transmission count freezes;
//   - large values survive the same lifecycle: the daemons run with a
//     ring dissemination threshold, so 16 KiB writes replicate over the
//     view ring while it has ≥3 members, fall back to direct sends in
//     the singleton partition views, and cross the heal/reconcile merge
//     bit-intact.
func R4ClientFailover() (*Table, error) {
	t := &Table{
		Title:   "R4 — client routing & failover under a daemon kill and a partition/heal cycle",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"3 daemons over memnet (ring threshold 4 KiB), client over loopback TCP; kill the pinned daemon, then partition/heal the survivors",
		},
	}
	net := newtop.NewNetwork(newtop.WithSeed(11))
	defer net.Close()

	ids := []newtop.ProcessID{1, 2, 3}
	daemons := make(map[newtop.ProcessID]*daemon.Daemon, len(ids))
	for _, id := range ids {
		d, err := daemon.Start(daemon.Config{
			Self:              id,
			Network:           net,
			ClientAddr:        "127.0.0.1:0",
			Omega:             15 * time.Millisecond,
			HealProbeInterval: 40 * time.Millisecond,
			Initial:           ids,
			RingThreshold:     4096,
			Settle:            250 * time.Millisecond,
			DrainWindow:       300 * time.Millisecond,
			InitiateTimeout:   time.Second,
			TraceSampleEvery:  1, // stamp every data message: the dump below reports real latency distributions
			Logf:              func(string, ...any) {},
		})
		if err != nil {
			return nil, err
		}
		daemons[id] = d
	}
	defer func() {
		for _, d := range daemons {
			_ = d.Close()
		}
	}()
	addrs := make(map[newtop.ProcessID]string, len(ids))
	byAddr := make(map[string]newtop.ProcessID, len(ids))
	var addrList []string
	for _, id := range ids {
		a := daemons[id].ClientAddr()
		addrs[id] = a
		byAddr[a] = id
		addrList = append(addrList, a)
	}
	for _, d := range daemons {
		d.SetPeerClientAddrs(addrs)
	}

	sess, err := client.Config{
		DialTimeout:     time.Second,
		OpTimeout:       15 * time.Second,
		FailoverTimeout: 30 * time.Second,
		RetryWait:       15 * time.Millisecond,
	}.Dial(addrList...)
	if err != nil {
		return nil, err
	}
	defer func() { _ = sess.Close() }()

	// The workload: acked Puts with periodic read-your-writes checks. A
	// write that returns ErrUnacked is retried under the same key/value
	// (idempotent by content) until acked — only the ack matters for the
	// loss accounting.
	acked := map[string]string{}
	seq := 0
	unackedRetries := 0
	write := func() error {
		seq++
		key, val := fmt.Sprintf("k:%05d", seq), fmt.Sprintf("v%d", seq)
		for {
			err := sess.Put(key, val)
			if err == nil {
				acked[key] = val
				if seq%10 == 0 { // read-your-writes spot check
					got, ok, err := sess.Get(key)
					if err != nil || !ok || got != val {
						return fmt.Errorf("read-your-writes broken at %s: %q %v %v", key, got, ok, err)
					}
				}
				return nil
			}
			if errors.Is(err, client.ErrUnacked) {
				unackedRetries++
				continue
			}
			return fmt.Errorf("write %s: %w", key, err)
		}
	}
	burst := func(n int) error {
		for i := 0; i < n; i++ {
			if err := write(); err != nil {
				return err
			}
		}
		return nil
	}
	// Large writes: 16 KiB values, above the daemons' ring threshold, so
	// the replicated command frames ride the view ring whenever it has
	// enough members. Self-describing content (key repeated to length)
	// makes any truncation or relay corruption show up in verification.
	largeSeq := 0
	largeVal := func(key string) string {
		b := make([]byte, 0, 16<<10)
		for len(b) < 16<<10 {
			b = append(b, key...)
			b = append(b, '|')
		}
		return string(b)
	}
	writeLarge := func() error {
		largeSeq++
		key := fmt.Sprintf("big:%04d", largeSeq)
		val := largeVal(key)
		for {
			err := sess.Put(key, val)
			if err == nil {
				acked[key] = val
				return nil
			}
			if errors.Is(err, client.ErrUnacked) {
				unackedRetries++
				continue
			}
			return fmt.Errorf("large write %s: %w", key, err)
		}
	}
	burstLarge := func(n int) error {
		for i := 0; i < n; i++ {
			if err := writeLarge(); err != nil {
				return err
			}
		}
		return nil
	}
	waitUntil := func(d time.Duration, what string, cond func() bool) error {
		deadline := time.Now().Add(d)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("harness: R4 timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	}

	// Phase 1 — steady state: small writes plus ring-borne large ones
	// (3-member view, ring active).
	if err := burst(40); err != nil {
		return nil, err
	}
	if err := burstLarge(6); err != nil {
		return nil, err
	}

	// Phase 2 — kill the pinned daemon mid-workload.
	victim := byAddr[sess.Pinned()]
	if victim == 0 {
		return nil, fmt.Errorf("harness: R4 client pinned to unknown address %q", sess.Pinned())
	}
	net.Crash(victim)
	_ = daemons[victim].Close()
	delete(daemons, victim)
	killedAt := time.Now()
	if err := burst(40); err != nil {
		return nil, fmt.Errorf("after killing P%d: %w", victim, err)
	}
	// Two-member view: below the ring's minimum, so large writes take the
	// direct fallback path.
	if err := burstLarge(4); err != nil {
		return nil, fmt.Errorf("after killing P%d: %w", victim, err)
	}
	killAbsorbed := time.Since(killedAt)
	failoverPin := byAddr[sess.Pinned()]
	if failoverPin == victim || failoverPin == 0 {
		return nil, fmt.Errorf("harness: R4 session still pinned to the dead daemon")
	}
	// Every write acked so far (including pre-crash acks) must be
	// readable post-crash — acked means replicated.
	for key, val := range acked {
		got, ok, err := sess.BarrierGet(key)
		if err != nil || !ok || got != val {
			return nil, fmt.Errorf("harness: R4 acked write %s lost after crash: %q %v %v", key, got, ok, err)
		}
	}
	survivedCrash := len(acked)

	// Phase 3 — partition the two survivors, keep writing on the pinned
	// side, heal, and let them reconcile into a merged group.
	var survivors []newtop.ProcessID
	for id := range daemons {
		survivors = append(survivors, id)
	}
	a, b := survivors[0], survivors[1]
	net.Partition([]newtop.ProcessID{a}, []newtop.ProcessID{b})
	err = waitUntil(30*time.Second, "survivors to stabilise apart", func() bool {
		for _, id := range survivors {
			_, g := daemons[id].Replica()
			v, err := daemons[id].Proc().View(g)
			if err != nil || v.Size() != 1 {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if err := burst(30); err != nil { // singleton-view writes on the pinned side
		return nil, err
	}
	if err := burstLarge(4); err != nil { // large values written INTO the partition
		return nil, err
	}
	preMergeGroup := daemons[a].ServingGroup()
	net.Heal()
	healedAt := time.Now()
	err = waitUntil(60*time.Second, "merged-group reconciliation", func() bool {
		for _, id := range survivors {
			rep, g := daemons[id].Replica()
			if g <= preMergeGroup || rep == nil || !rep.CaughtUp() {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	mergedAt := time.Now()
	mergedGroup := daemons[a].ServingGroup()
	// Writes continue against the merged group (the client rode out any
	// RETRY responses during the merge on its own).
	if err := burst(20); err != nil {
		return nil, fmt.Errorf("after merge: %w", err)
	}
	if err := burstLarge(6); err != nil {
		return nil, fmt.Errorf("after merge: %w", err)
	}

	// Zero acked-write loss across the whole lifecycle.
	for key, val := range acked {
		got, ok, err := sess.BarrierGet(key)
		if err != nil || !ok || got != val {
			return nil, fmt.Errorf("harness: R4 acked write %s lost after merge: %q %v %v", key, got, ok, err)
		}
	}

	// Superseded groups went quiet: both survivors left every pre-merge
	// group and its transmission count froze.
	err = waitUntil(30*time.Second, "old groups to be left", func() bool {
		for _, id := range survivors {
			for g := newtop.GroupID(1); g < mergedGroup; g++ {
				if _, err := daemons[id].Proc().View(g); !errors.Is(err, newtop.ErrLeftGroup) {
					return false
				}
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	oldSends := func() map[newtop.ProcessID]uint64 {
		out := make(map[newtop.ProcessID]uint64, len(survivors))
		for _, id := range survivors {
			var total uint64
			for g := newtop.GroupID(1); g < mergedGroup; g++ {
				total += daemons[id].Proc().GroupSends(g)
			}
			out[id] = total
		}
		return out
	}
	before := oldSends()
	time.Sleep(200 * time.Millisecond) // >13ω of would-be zombie traffic
	for id, after := range oldSends() {
		if after != before[id] {
			return nil, fmt.Errorf("harness: R4 old-group traffic still flowing at P%d: %d -> %d", id, before[id], after)
		}
	}

	// Observability dump: the unified registry must explain the run.
	// Delivery-stage latencies come from the tracer (sampling every data
	// message); every drop must carry a reason this lifecycle explains —
	// crash, partition, drain — and the genuine-error reasons (decode
	// failures, overflow) must be zero, or the run fails.
	snap := daemons[a].Proc().Metrics()
	stageHist := func(stage string) string {
		h, ok := snap.Histograms[`newtop_trace_stage_ns{stage="`+stage+`"}`]
		if !ok || h.Count == 0 {
			return "no samples"
		}
		return fmt.Sprintf("p50=%s p99=%s (n=%d)",
			time.Duration(h.P50).Round(time.Microsecond),
			time.Duration(h.P99).Round(time.Microsecond), h.Count)
	}
	explained := map[string]bool{
		`layer="core",reason="left_group"`:               true,
		`layer="core",reason="removed_member"`:           true,
		`layer="core",reason="not_member"`:               true,
		`layer="core",reason="seq_gap"`:                  true,
		`layer="core",reason="stale_view"`:               true,
		`layer="core",reason="group_gone"`:               true,
		`layer="core",reason="queued_submit_group_gone"`: true,
		`layer="ring",reason="orphan_evicted"`:           true,
		`layer="ring",reason="reassembly_abandoned"`:     true,
	}
	var explainedDrops uint64
	for _, id := range survivors {
		for name, v := range daemons[id].Proc().Metrics().Counters {
			labels, ok := strings.CutPrefix(name, "newtop_drops_total{")
			if !ok || v == 0 {
				continue
			}
			labels = strings.TrimSuffix(labels, "}")
			if !explained[labels] {
				return nil, fmt.Errorf("harness: R4 unexplained drops at P%d: %s = %d", id, labels, v)
			}
			explainedDrops += v
		}
	}

	st := sess.Stats()
	t.AddRow("acked writes", fmt.Sprintf("%d (all verified twice, zero lost)", len(acked)))
	t.AddRow("16 KiB writes across ring/fallback/partition/merge", fmt.Sprintf("%d (bit-intact)", largeSeq))
	t.AddRow("acked writes verified right after the crash", fmt.Sprintf("%d", survivedCrash))
	t.AddRow("unacked writes retried by caller", fmt.Sprintf("%d", unackedRetries))
	t.AddRow("session failovers / redirects / retries", fmt.Sprintf("%d / %d / %d", st.Failovers, st.Redirects, st.Retries))
	t.AddRow("session pin", fmt.Sprintf("P%d killed -> P%d", victim, failoverPin))
	t.AddRow("kill + 40 writes absorbed in (ms)", ms(killAbsorbed))
	t.AddRow("heal → merged serving group", fmt.Sprintf("g%d in %s ms", mergedGroup, ms(mergedAt.Sub(healedAt))))
	t.AddRow("old groups quiet", "left + send counters frozen")
	t.AddRow("delivery latency send→receive", stageHist("receive"))
	t.AddRow("delivery latency →delivered", stageHist("delivered"))
	t.AddRow("delivery latency →applied", stageHist("applied"))
	t.AddRow("drops (all explained by crash/partition/drain)", fmt.Sprintf("%d", explainedDrops))
	return t, nil
}
