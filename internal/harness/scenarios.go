package harness

import (
	"fmt"
	"time"

	"newtop/internal/check"
	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
	"newtop/internal/workload"
)

// Scenario experiments: the paper's figures and worked examples replayed
// end to end, with the outcome the paper predicts asserted and quantified.

// F1Migration replays fig. 1: online migration of replica P2 to P3 via an
// overlapping group, while the original group keeps serving requests. The
// table reports service continuity (requests served, largest gap between
// consecutive deliveries at the surviving replica) and phase timings.
func F1Migration() (*Table, error) {
	t := &Table{
		Title:   "F1 — fig.1 online server migration via overlapping groups",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"g1={P1,P2} serves throughout; g2={P1,P2,P3} formed online; P2 departs; service continues on {P1,P3}",
		},
	}
	groups := []workload.Group{{ID: 1, Mode: core.Symmetric, Members: []types.ProcessID{1, 2}}}
	r, err := NewRun(3, groups, Params{Seed: 31})
	if err != nil {
		return nil, err
	}
	c := r.Cluster
	// Client requests into g1 every 10ms for 400ms.
	const requests = 40
	for i := 0; i < requests; i++ {
		pl := []byte(fmt.Sprintf("req-%03d", i))
		c.At(time.Duration(i*10)*time.Millisecond, func() { _ = c.Submit(1, 1, pl) })
	}
	// Phase 2: P3 initiates g2 = {1,2,3} at 50ms.
	var formedAt time.Time
	c.At(50*time.Millisecond, func() {
		_ = c.CreateGroup(3, 2, core.Symmetric, []types.ProcessID{1, 2, 3})
	})
	ok := c.RunUntil(30*time.Second, func() bool {
		for _, p := range []types.ProcessID{1, 2, 3} {
			if !c.Engine(p).GroupReady(2) {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: F1 migration group never formed")
	}
	formedAt = c.Now()
	// Phase 3: state transfer in g2.
	for i := 0; i < 5; i++ {
		pl := []byte(fmt.Sprintf("state-%d", i))
		_ = c.Submit(1, 2, pl)
	}
	// Phase 4: P2 departs both groups at 250ms.
	c.At(250*time.Millisecond, func() {
		_ = c.Leave(2, 1)
		_ = c.Leave(2, 2)
	})
	// Run until all requests delivered at P1 and P2 excluded from g2 at
	// the survivors.
	ok = c.RunUntil(60*time.Second, func() bool {
		if len(deliveriesMatching(c, 1, 1, "req-")) < requests {
			return false
		}
		for _, p := range []types.ProcessID{1, 3} {
			vs := c.History(p).Views[2]
			if len(vs) == 0 || vs[len(vs)-1].View.Contains(2) {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: F1 migration never completed")
	}
	// Post-migration service on the new pair.
	_ = c.Submit(3, 2, []byte("served-by-P3"))
	ok = c.RunUntil(30*time.Second, func() bool {
		return len(deliveriesMatching(c, 1, 2, "served-by-P3")) == 1
	})
	if !ok {
		return nil, fmt.Errorf("harness: F1 post-migration service broken")
	}

	// Service continuity: max gap between consecutive request deliveries
	// at P1.
	reqs := deliveriesMatching(c, 1, 1, "req-")
	var maxGap time.Duration
	for i := 1; i < len(reqs); i++ {
		if g := reqs[i].Sub(reqs[i-1]); g > maxGap {
			maxGap = g
		}
	}
	t.AddRow("requests served at P1", fmt.Sprintf("%d/%d", len(reqs), requests))
	t.AddRow("max service gap (ms)", ms(maxGap))
	t.AddRow("migration group formed at (ms)", ms(formedAt.Sub(sim.Epoch)))
	t.AddRow("P2 fully excluded at (ms)", ms(c.Now().Sub(sim.Epoch)))
	t.AddRow("post-migration service", "ok")
	return t, nil
}

func deliveriesMatching(c *sim.Cluster, p types.ProcessID, g types.GroupID, prefix string) []time.Time {
	var out []time.Time
	for _, d := range c.History(p).Deliveries {
		if d.Group == g && len(d.Payload) >= len(prefix) && string(d.Payload[:len(prefix)]) == prefix {
			out = append(out, d.At)
		}
	}
	return out
}

// F3AtomicVsTotal quantifies fig. 3's layering: atomic delivery (clock
// gate bypassed) against symmetric total order, single-sender probes.
func F3AtomicVsTotal() (*Table, error) {
	t := &Table{
		Title:   "F3 — atomic delivery vs total order latency (n=5, single sender)",
		Columns: []string{"mode", "mean lat(ms)", "max lat(ms)", "msg/dlv"},
		Notes: []string{
			"atomic delivers on receipt (≈ link latency); total order waits for D to pass the message number",
		},
	}
	for _, mode := range []core.OrderMode{core.Atomic, core.Symmetric} {
		groups := workload.SingleGroup(5, mode)
		r, err := NewRun(5, groups, Params{Seed: 37})
		if err != nil {
			return nil, err
		}
		const probes = 20
		r.Apply(workload.SingleSenderTraffic(1, 1, probes, 50))
		ok := r.Cluster.RunUntil(120*time.Second, func() bool {
			for _, pid := range r.Cluster.Processes() {
				if len(r.Cluster.History(pid).Deliveries) < probes {
					return false
				}
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("harness: F3 mode=%v stalled", mode)
		}
		m := r.Collect()
		t.AddRow(mode.String(), ms(m.MeanLatency), ms(m.MaxLatency), f2(m.MsgsPerDelivery()))
	}
	return t, nil
}

// X1JointFailure replays §5 Example 1: a partially received multicast m
// whose only holder crashes; the causal successor m' must be erased with
// it (no orphan delivery).
func X1JointFailure() (*Table, error) {
	t := &Table{
		Title:   "X1 — §5 example 1: joint failure, orphan erased",
		Columns: []string{"metric", "value"},
	}
	groups := workload.SingleGroup(5, core.Symmetric)
	r, err := NewRun(5, groups, Params{Seed: 41})
	if err != nil {
		return nil, err
	}
	c := r.Cluster
	c.Run(100 * time.Millisecond)
	// Pr = P4 multicasts m seen only by Ps = P5 (links to others cut).
	c.Disconnect(4, 1)
	c.Disconnect(4, 2)
	c.Disconnect(4, 3)
	_ = c.Submit(4, 1, []byte("m-partial"))
	c.Run(10 * time.Millisecond)
	c.Crash(4)
	_ = c.Submit(5, 1, []byte("m-prime"))
	c.Run(5 * time.Millisecond)
	c.Crash(5)
	survivors := []types.ProcessID{1, 2, 3}
	ok := c.RunUntil(120*time.Second, func() bool {
		for _, p := range survivors {
			vs := c.History(p).Views[1]
			if len(vs) == 0 {
				return false
			}
			last := vs[len(vs)-1].View
			if last.Contains(4) || last.Contains(5) {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: X1 exclusion never completed")
	}
	c.Run(500 * time.Millisecond)
	orphans := 0
	for _, p := range survivors {
		for _, d := range c.History(p).Deliveries {
			if string(d.Payload) == "m-partial" || string(d.Payload) == "m-prime" {
				orphans++
			}
		}
	}
	res := check.New(c, []types.ProcessID{4, 5}).All()
	t.AddRow("joint detection", "P4, P5 excluded together")
	t.AddRow("orphan deliveries (m, m')", fmt.Sprintf("%d (want 0)", orphans))
	t.AddRow("MD/VC properties", fmt.Sprintf("ok=%v", res.Ok()))
	if orphans != 0 || !res.Ok() {
		return t, fmt.Errorf("harness: X1 outcome wrong: orphans=%d check=%v", orphans, res.Err())
	}
	return t, nil
}

// X2CausalChain replays fig. 2 / §5 Example 2: the causal chain
// m1→m2→m3→m4 across four overlapping groups with a permanent partition;
// MD5' forces the view change excluding m1's sender to precede m4's
// delivery. Reports the forced wait.
func X2CausalChain() (*Table, error) {
	t := &Table{
		Title:   "X2 — fig.2/§5 example 2: MD5' across overlapping groups",
		Columns: []string{"metric", "value"},
	}
	const (
		pk = types.ProcessID(1)
		pq = types.ProcessID(2)
		ps = types.ProcessID(3)
		pi = types.ProcessID(4)
		pj = types.ProcessID(5)
	)
	groups := []workload.Group{
		{ID: 1, Mode: core.Symmetric, Members: []types.ProcessID{pk, pi, pj}},
		{ID: 2, Mode: core.Symmetric, Members: []types.ProcessID{pk, pq}},
		{ID: 3, Mode: core.Symmetric, Members: []types.ProcessID{pq, ps}},
		{ID: 4, Mode: core.Symmetric, Members: []types.ProcessID{ps, pi, pj}},
	}
	r, err := NewRun(5, groups, Params{Seed: 43})
	if err != nil {
		return nil, err
	}
	c := r.Cluster
	c.Run(100 * time.Millisecond)
	c.Disconnect(pk, pi)
	c.Disconnect(pk, pj)
	partitionAt := c.Now()
	_ = c.Submit(pk, 1, []byte("m1"))
	_ = c.Submit(pk, 2, []byte("m2"))
	del := func(p types.ProcessID, payload string) func() bool {
		return func() bool {
			for _, d := range c.History(p).Deliveries {
				if string(d.Payload) == payload {
					return true
				}
			}
			return false
		}
	}
	if !c.RunUntil(60*time.Second, del(pq, "m2")) {
		return nil, fmt.Errorf("harness: X2 m2 stalled")
	}
	_ = c.Submit(pq, 3, []byte("m3"))
	if !c.RunUntil(60*time.Second, del(ps, "m3")) {
		return nil, fmt.Errorf("harness: X2 m3 stalled")
	}
	m4At := c.Now()
	_ = c.Submit(ps, 4, []byte("m4"))
	if !c.RunUntil(120*time.Second, del(pi, "m4")) {
		return nil, fmt.Errorf("harness: X2 m4 never delivered at Pi")
	}
	m4Delivered := c.Now()

	// Verify the view change preceded the delivery in Pi's local history.
	viewIdx, delIdx := -1, -1
	for _, ev := range c.History(pi).Events {
		switch {
		case ev.Kind == sim.EvView && ev.Group == 1 && !ev.View.Contains(pk) && viewIdx == -1:
			viewIdx = ev.Idx
		case ev.Kind == sim.EvDeliver && string(ev.Payload) == "m4":
			delIdx = ev.Idx
		}
	}
	ordered := viewIdx != -1 && delIdx != -1 && viewIdx < delIdx
	t.AddRow("m4 delivery wait at Pi (ms)", ms(m4Delivered.Sub(m4At)))
	t.AddRow("partition → m4 delivery (ms)", ms(m4Delivered.Sub(partitionAt)))
	t.AddRow("g1 view change before m4 delivery", fmt.Sprintf("%v (MD5' option b)", ordered))
	t.AddRow("m1 delivered at Pi", fmt.Sprintf("%v (irretrievable)", del(pi, "m1")()))
	if !ordered || del(pi, "m1")() {
		return t, fmt.Errorf("harness: X2 MD5' outcome wrong")
	}
	return t, nil
}

// X3ConcurrentViews replays §5 Example 3: a crash plus a partition during
// the agreement; the subgroup views must stabilise into non-intersecting
// memberships. Runs both the plain and the §6 signature-view variants.
func X3ConcurrentViews() (*Table, error) {
	t := &Table{
		Title:   "X3 — §5 example 3: concurrent subgroup views stabilise disjoint",
		Columns: []string{"variant", "side A view", "side B view", "disjoint", "stabilise(ms)"},
	}
	for _, sig := range []bool{false, true} {
		c := sim.New(47, sim.WithLatency(time.Millisecond, 3*time.Millisecond))
		for i := 1; i <= 5; i++ {
			c.AddProcess(core.Config{
				Self: types.ProcessID(i), Omega: 20 * time.Millisecond, SignatureViews: sig,
			})
		}
		if err := c.Bootstrap(1, core.Symmetric, workload.Procs(5)); err != nil {
			return nil, err
		}
		c.Run(100 * time.Millisecond)
		c.Crash(5)
		c.Run(60 * time.Millisecond)
		splitAt := c.Now()
		c.Partition([]types.ProcessID{1, 2}, []types.ProcessID{3, 4})
		ok := c.RunUntil(120*time.Second, func() bool {
			for _, p := range []types.ProcessID{1, 2} {
				vs := c.History(p).Views[1]
				if len(vs) == 0 {
					return false
				}
				last := vs[len(vs)-1].View
				if last.Contains(3) || last.Contains(4) || last.Contains(5) {
					return false
				}
			}
			for _, p := range []types.ProcessID{3, 4} {
				vs := c.History(p).Views[1]
				if len(vs) == 0 {
					return false
				}
				last := vs[len(vs)-1].View
				if last.Contains(1) || last.Contains(2) || last.Contains(5) {
					return false
				}
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("harness: X3 sig=%v never stabilised", sig)
		}
		va, _ := check.FinalView(c, 1, 1)
		vb, _ := check.FinalView(c, 3, 1)
		disjoint := !va.Intersects(vb)
		variant := "plain views"
		if sig {
			variant = "signature views (§6)"
		}
		t.AddRow(variant, va.String(), vb.String(), fmt.Sprintf("%v", disjoint), ms(c.Now().Sub(splitAt)))
		if !disjoint {
			return t, fmt.Errorf("harness: X3 sig=%v stabilised views intersect", sig)
		}
	}
	return t, nil
}
