package harness

import (
	"fmt"
	"time"

	"newtop/internal/check"
	"newtop/internal/core"
	"newtop/internal/sim"
	"newtop/internal/types"
	"newtop/internal/workload"
)

// Scenario experiments: the paper's figures and worked examples replayed
// end to end, with the outcome the paper predicts asserted and quantified.

// F1Migration replays fig. 1: online migration of a replicated kvstore
// server via an overlapping group, while the original group keeps serving
// requests. Unlike the paper's sketch, the scenario moves the server's
// actual state: P3 starts empty and receives it through the rsm layer's
// snapshot + replay-tail transfer, totally ordered against ongoing writes.
// The table reports service continuity (requests served, largest gap
// between consecutive deliveries at the surviving replica), transfer cost
// and the final state digests.
func F1Migration() (*Table, error) {
	t := &Table{
		Title:   "F1 — fig.1 online server migration via overlapping groups",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"g1={P1,P2} serves throughout; g2={P1,P2,P3} formed online; kvstore state moves to P3; P2 departs; service continues on {P1,P3}",
		},
	}
	groups := []workload.Group{{ID: 1, Mode: core.Symmetric, Members: []types.ProcessID{1, 2}}}
	r, err := NewRun(3, groups, Params{Seed: 31})
	if err != nil {
		return nil, err
	}
	c := r.Cluster
	f := newRSMFleet(c)
	f.attach(1, 1, false, 0)
	f.attach(2, 1, false, 0)

	// Client requests into g1 every 10ms for 400ms. Raw "put" payloads:
	// raw submits are implicit rsm commands.
	const requests = 40
	for i := 0; i < requests; i++ {
		pl := put(fmt.Sprintf("req-%03d", i), i)
		c.At(time.Duration(i*10)*time.Millisecond, func() { _ = c.Submit(1, 1, pl) })
	}
	// Phase 1: P3 initiates g2 = {1,2,3} at 50ms; the incumbents carry
	// their machines into g2, P3 starts empty.
	var formedAt time.Time
	c.At(50*time.Millisecond, func() {
		_ = c.CreateGroup(3, 2, core.Symmetric, []types.ProcessID{1, 2, 3})
	})
	f.attach(1, 2, false, 1024)
	f.attach(2, 2, false, 1024)
	mover := f.attach(3, 2, true, 1024)
	ok := c.RunUntil(30*time.Second, func() bool {
		for _, p := range []types.ProcessID{1, 2, 3} {
			if !c.Engine(p).GroupReady(2) {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: F1 migration group never formed")
	}
	formedAt = c.Now()

	// Phase 2: cut over — the remaining client load is routed to g2, and
	// once the g1 stream has quiesced at the common members, P3 asks for
	// the state. (Quiescing g1 first is the handover discipline: a g1
	// write ordered after the transfer cut would be invisible to P3.)
	ok = c.RunUntil(60*time.Second, func() bool {
		return f.core(1, 1).AppliedSeq() >= requests && f.core(2, 1).AppliedSeq() >= requests
	})
	if !ok {
		return nil, fmt.Errorf("harness: F1 g1 load never quiesced")
	}
	if err := f.sync(3, 2); err != nil {
		return nil, err
	}
	// Service continues in g2 while the snapshot streams.
	const during = 10
	base := c.Now().Sub(sim.Epoch)
	for i := 0; i < during; i++ {
		pl := put(fmt.Sprintf("req-%03d", requests+i), requests+i)
		from := types.ProcessID(1 + i%2)
		c.At(base+time.Duration(i*5)*time.Millisecond, func() { _ = c.Submit(from, 2, pl) })
	}
	ok = c.RunUntil(60*time.Second, func() bool {
		return mover.CaughtUp() && mover.AppliedSeq() >= during
	})
	if !ok {
		return nil, fmt.Errorf("harness: F1 state transfer stalled: %+v", mover.Stats())
	}
	transferredAt := c.Now()

	// Phase 3: P2 departs both groups; survivors exclude it.
	_ = c.Leave(2, 1)
	_ = c.Leave(2, 2)
	ok = c.RunUntil(60*time.Second, func() bool {
		for _, p := range []types.ProcessID{1, 3} {
			vs := c.History(p).Views[2]
			if len(vs) == 0 || vs[len(vs)-1].View.Contains(2) {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: F1 migration never completed")
	}
	// Phase 4: service on the new pair — P3 now serves writes itself.
	_ = c.Submit(3, 2, put("served-by", "P3"))
	ok = c.RunUntil(30*time.Second, func() bool {
		return deliveredCount(c, 1, 2, "put served-by") == 1
	})
	if !ok {
		return nil, fmt.Errorf("harness: F1 post-migration service broken")
	}
	c.Run(100 * time.Millisecond)

	// The migrated replica must be byte-identical to the survivor.
	d1, d3 := f.core(1, 2).Digest(), f.core(3, 2).Digest()
	if d1 != d3 {
		return nil, fmt.Errorf("harness: F1 migrated state diverges: P1=%016x P3=%016x", d1, d3)
	}
	if f.kv(3).Len() != requests+during+1 {
		return nil, fmt.Errorf("harness: F1 migrated replica has %d keys, want %d", f.kv(3).Len(), requests+during+1)
	}

	// Service continuity: max gap between consecutive request deliveries
	// at P1, across both groups.
	reqs := deliveriesMatching(c, 1, 1, "put req-")
	reqs = append(reqs, deliveriesMatching(c, 1, 2, "put req-")...)
	var maxGap time.Duration
	for i := 1; i < len(reqs); i++ {
		if g := reqs[i].Sub(reqs[i-1]); g > maxGap {
			maxGap = g
		}
	}
	st := mover.Stats()
	t.AddRow("requests served at P1", fmt.Sprintf("%d/%d", len(reqs), requests+during))
	t.AddRow("max service gap (ms)", ms(maxGap))
	t.AddRow("migration group formed at (ms)", ms(formedAt.Sub(sim.Epoch)))
	t.AddRow("state moved (ms, chunks, tail)", fmt.Sprintf("%s, %d, %d", ms(transferredAt.Sub(formedAt)), st.ChunksIn, st.Replayed))
	t.AddRow("P2 fully excluded at (ms)", ms(c.Now().Sub(sim.Epoch)))
	t.AddRow("migrated state digest", fmt.Sprintf("%016x (P1 == P3: %v)", d3, d1 == d3))
	return t, nil
}

// deliveredCount counts deliveries at p in g whose payload starts with
// prefix.
func deliveredCount(c *sim.Cluster, p types.ProcessID, g types.GroupID, prefix string) int {
	return len(deliveriesMatching(c, p, g, prefix))
}

func deliveriesMatching(c *sim.Cluster, p types.ProcessID, g types.GroupID, prefix string) []time.Time {
	var out []time.Time
	for _, d := range c.History(p).Deliveries {
		if d.Group == g && len(d.Payload) >= len(prefix) && string(d.Payload[:len(prefix)]) == prefix {
			out = append(out, d.At)
		}
	}
	return out
}

// F3AtomicVsTotal quantifies fig. 3's layering: atomic delivery (clock
// gate bypassed) against symmetric total order, single-sender probes.
func F3AtomicVsTotal() (*Table, error) {
	t := &Table{
		Title:   "F3 — atomic delivery vs total order latency (n=5, single sender)",
		Columns: []string{"mode", "mean lat(ms)", "max lat(ms)", "msg/dlv"},
		Notes: []string{
			"atomic delivers on receipt (≈ link latency); total order waits for D to pass the message number",
		},
	}
	for _, mode := range []core.OrderMode{core.Atomic, core.Symmetric} {
		groups := workload.SingleGroup(5, mode)
		r, err := NewRun(5, groups, Params{Seed: 37})
		if err != nil {
			return nil, err
		}
		const probes = 20
		r.Apply(workload.SingleSenderTraffic(1, 1, probes, 50))
		ok := r.Cluster.RunUntil(120*time.Second, func() bool {
			for _, pid := range r.Cluster.Processes() {
				if len(r.Cluster.History(pid).Deliveries) < probes {
					return false
				}
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("harness: F3 mode=%v stalled", mode)
		}
		m := r.Collect()
		t.AddRow(mode.String(), ms(m.MeanLatency), ms(m.MaxLatency), f2(m.MsgsPerDelivery()))
	}
	return t, nil
}

// X1JointFailure replays §5 Example 1: a partially received multicast m
// whose only holder crashes; the causal successor m' must be erased with
// it (no orphan delivery).
func X1JointFailure() (*Table, error) {
	t := &Table{
		Title:   "X1 — §5 example 1: joint failure, orphan erased",
		Columns: []string{"metric", "value"},
	}
	groups := workload.SingleGroup(5, core.Symmetric)
	r, err := NewRun(5, groups, Params{Seed: 41})
	if err != nil {
		return nil, err
	}
	c := r.Cluster
	c.Run(100 * time.Millisecond)
	// Pr = P4 multicasts m seen only by Ps = P5 (links to others cut).
	c.Disconnect(4, 1)
	c.Disconnect(4, 2)
	c.Disconnect(4, 3)
	_ = c.Submit(4, 1, []byte("m-partial"))
	c.Run(10 * time.Millisecond)
	c.Crash(4)
	_ = c.Submit(5, 1, []byte("m-prime"))
	c.Run(5 * time.Millisecond)
	c.Crash(5)
	survivors := []types.ProcessID{1, 2, 3}
	ok := c.RunUntil(120*time.Second, func() bool {
		for _, p := range survivors {
			vs := c.History(p).Views[1]
			if len(vs) == 0 {
				return false
			}
			last := vs[len(vs)-1].View
			if last.Contains(4) || last.Contains(5) {
				return false
			}
		}
		return true
	})
	if !ok {
		return nil, fmt.Errorf("harness: X1 exclusion never completed")
	}
	c.Run(500 * time.Millisecond)
	orphans := 0
	for _, p := range survivors {
		for _, d := range c.History(p).Deliveries {
			if string(d.Payload) == "m-partial" || string(d.Payload) == "m-prime" {
				orphans++
			}
		}
	}
	res := check.New(c, []types.ProcessID{4, 5}).All()
	t.AddRow("joint detection", "P4, P5 excluded together")
	t.AddRow("orphan deliveries (m, m')", fmt.Sprintf("%d (want 0)", orphans))
	t.AddRow("MD/VC properties", fmt.Sprintf("ok=%v", res.Ok()))
	if orphans != 0 || !res.Ok() {
		return t, fmt.Errorf("harness: X1 outcome wrong: orphans=%d check=%v", orphans, res.Err())
	}
	return t, nil
}

// X2CausalChain replays fig. 2 / §5 Example 2: the causal chain
// m1→m2→m3→m4 across four overlapping groups with a permanent partition;
// MD5' forces the view change excluding m1's sender to precede m4's
// delivery. Reports the forced wait.
func X2CausalChain() (*Table, error) {
	t := &Table{
		Title:   "X2 — fig.2/§5 example 2: MD5' across overlapping groups",
		Columns: []string{"metric", "value"},
	}
	const (
		pk = types.ProcessID(1)
		pq = types.ProcessID(2)
		ps = types.ProcessID(3)
		pi = types.ProcessID(4)
		pj = types.ProcessID(5)
	)
	groups := []workload.Group{
		{ID: 1, Mode: core.Symmetric, Members: []types.ProcessID{pk, pi, pj}},
		{ID: 2, Mode: core.Symmetric, Members: []types.ProcessID{pk, pq}},
		{ID: 3, Mode: core.Symmetric, Members: []types.ProcessID{pq, ps}},
		{ID: 4, Mode: core.Symmetric, Members: []types.ProcessID{ps, pi, pj}},
	}
	r, err := NewRun(5, groups, Params{Seed: 43})
	if err != nil {
		return nil, err
	}
	c := r.Cluster
	c.Run(100 * time.Millisecond)
	c.Disconnect(pk, pi)
	c.Disconnect(pk, pj)
	partitionAt := c.Now()
	_ = c.Submit(pk, 1, []byte("m1"))
	_ = c.Submit(pk, 2, []byte("m2"))
	del := func(p types.ProcessID, payload string) func() bool {
		return func() bool {
			for _, d := range c.History(p).Deliveries {
				if string(d.Payload) == payload {
					return true
				}
			}
			return false
		}
	}
	if !c.RunUntil(60*time.Second, del(pq, "m2")) {
		return nil, fmt.Errorf("harness: X2 m2 stalled")
	}
	_ = c.Submit(pq, 3, []byte("m3"))
	if !c.RunUntil(60*time.Second, del(ps, "m3")) {
		return nil, fmt.Errorf("harness: X2 m3 stalled")
	}
	m4At := c.Now()
	_ = c.Submit(ps, 4, []byte("m4"))
	if !c.RunUntil(120*time.Second, del(pi, "m4")) {
		return nil, fmt.Errorf("harness: X2 m4 never delivered at Pi")
	}
	m4Delivered := c.Now()

	// Verify the view change preceded the delivery in Pi's local history.
	viewIdx, delIdx := -1, -1
	for _, ev := range c.History(pi).Events {
		switch {
		case ev.Kind == sim.EvView && ev.Group == 1 && !ev.View.Contains(pk) && viewIdx == -1:
			viewIdx = ev.Idx
		case ev.Kind == sim.EvDeliver && string(ev.Payload) == "m4":
			delIdx = ev.Idx
		}
	}
	ordered := viewIdx != -1 && delIdx != -1 && viewIdx < delIdx
	t.AddRow("m4 delivery wait at Pi (ms)", ms(m4Delivered.Sub(m4At)))
	t.AddRow("partition → m4 delivery (ms)", ms(m4Delivered.Sub(partitionAt)))
	t.AddRow("g1 view change before m4 delivery", fmt.Sprintf("%v (MD5' option b)", ordered))
	t.AddRow("m1 delivered at Pi", fmt.Sprintf("%v (irretrievable)", del(pi, "m1")()))
	if !ordered || del(pi, "m1")() {
		return t, fmt.Errorf("harness: X2 MD5' outcome wrong")
	}
	return t, nil
}

// X3ConcurrentViews replays §5 Example 3: a crash plus a partition during
// the agreement; the subgroup views must stabilise into non-intersecting
// memberships. Runs both the plain and the §6 signature-view variants.
func X3ConcurrentViews() (*Table, error) {
	t := &Table{
		Title:   "X3 — §5 example 3: concurrent subgroup views stabilise disjoint",
		Columns: []string{"variant", "side A view", "side B view", "disjoint", "stabilise(ms)"},
	}
	for _, sig := range []bool{false, true} {
		c := sim.New(47, sim.WithLatency(time.Millisecond, 3*time.Millisecond))
		for i := 1; i <= 5; i++ {
			c.AddProcess(core.Config{
				Self: types.ProcessID(i), Omega: 20 * time.Millisecond, SignatureViews: sig,
			})
		}
		if err := c.Bootstrap(1, core.Symmetric, workload.Procs(5)); err != nil {
			return nil, err
		}
		c.Run(100 * time.Millisecond)
		c.Crash(5)
		c.Run(60 * time.Millisecond)
		splitAt := c.Now()
		c.Partition([]types.ProcessID{1, 2}, []types.ProcessID{3, 4})
		ok := c.RunUntil(120*time.Second, func() bool {
			for _, p := range []types.ProcessID{1, 2} {
				vs := c.History(p).Views[1]
				if len(vs) == 0 {
					return false
				}
				last := vs[len(vs)-1].View
				if last.Contains(3) || last.Contains(4) || last.Contains(5) {
					return false
				}
			}
			for _, p := range []types.ProcessID{3, 4} {
				vs := c.History(p).Views[1]
				if len(vs) == 0 {
					return false
				}
				last := vs[len(vs)-1].View
				if last.Contains(1) || last.Contains(2) || last.Contains(5) {
					return false
				}
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("harness: X3 sig=%v never stabilised", sig)
		}
		va, _ := check.FinalView(c, 1, 1)
		vb, _ := check.FinalView(c, 3, 1)
		disjoint := !va.Intersects(vb)
		variant := "plain views"
		if sig {
			variant = "signature views (§6)"
		}
		t.AddRow(variant, va.String(), vb.String(), fmt.Sprintf("%v", disjoint), ms(c.Now().Sub(splitAt)))
		if !disjoint {
			return t, fmt.Errorf("harness: X3 sig=%v stabilised views intersect", sig)
		}
	}
	return t, nil
}
