package harness

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"newtop"
	"newtop/client"
	"newtop/internal/capacity"
	"newtop/internal/daemon"
	"newtop/internal/workload"
)

// R6CrashRecovery is the durability workload: real daemons with data
// directories (WAL + snapshots, fsync=always) under open-loop load, one
// of them killed -9 mid-run and restarted from its disk. Like R4/R5 it
// runs the production path on the wall clock; what it adds is the
// restart: the killed daemon must come back from its own WAL and rejoin
// the cluster through the reconcile fast path, never a snapshot stream.
//
// The acceptance bar it asserts internally:
//
//   - zero acked-write loss: every Put the cluster acknowledged —
//     before the kill, during the outage, after the restart — is
//     readable (BarrierGet) from the RESTARTED daemon;
//   - the restart recovers locally (newtop_recovery_replays_total = 1)
//     and rejoins via reconcile: newtop_recovery_full_transfers_total
//     stays 0 and the fast-path counter fires;
//   - the client fleet rides out the kill on its own (failover/retry);
//   - every message drop across the fleet carries an explained reason
//     (crash, drain, formation); unexplained drops fail the run.
func R6CrashRecovery() (*Table, error) {
	t := &Table{
		Title:   "R6 — kill -9 and WAL recovery under open-loop load",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"3 daemons over memnet, data dirs with fsync=always; kill -9 P3 mid-load, restart from its WAL, rejoin via reconcile fast path",
		},
	}
	dataRoot, err := os.MkdirTemp("", "newtop-r6-")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dataRoot) }()

	net := newtop.NewNetwork(newtop.WithSeed(23))
	defer net.Close()

	ids := []newtop.ProcessID{1, 2, 3}
	mkConfig := func(id newtop.ProcessID) daemon.Config {
		return daemon.Config{
			Self:              id,
			Network:           net,
			ClientAddr:        "127.0.0.1:0",
			Omega:             15 * time.Millisecond,
			HealProbeInterval: 40 * time.Millisecond,
			Initial:           ids,
			Settle:            250 * time.Millisecond,
			DrainWindow:       300 * time.Millisecond,
			InitiateTimeout:   time.Second,
			DataDir:           fmt.Sprintf("%s/p%d", dataRoot, id),
			Fsync:             "always",
			SnapshotEvery:     64,
			Logf:              func(string, ...any) {},
		}
	}
	daemons := make(map[newtop.ProcessID]*daemon.Daemon, len(ids))
	for _, id := range ids {
		d, err := daemon.Start(mkConfig(id))
		if err != nil {
			return nil, err
		}
		daemons[id] = d
	}
	defer func() {
		for _, d := range daemons {
			_ = d.Close()
		}
	}()
	addrs := make(map[newtop.ProcessID]string, len(ids))
	var addrList []string
	for _, id := range ids {
		addrs[id] = daemons[id].ClientAddr()
		addrList = append(addrList, addrs[id])
	}
	for _, d := range daemons {
		d.SetPeerClientAddrs(addrs)
	}

	sess, err := client.Config{
		DialTimeout:     time.Second,
		OpTimeout:       15 * time.Second,
		FailoverTimeout: 30 * time.Second,
		RetryWait:       15 * time.Millisecond,
	}.Dial(addrList...)
	if err != nil {
		return nil, err
	}
	defer func() { _ = sess.Close() }()

	// The tracked workload: R4's loss-accounting discipline — an UNKNOWN
	// outcome is retried under the same key/value until acked; only the
	// ack matters.
	acked := map[string]string{}
	seq := 0
	unackedRetries := 0
	write := func() error {
		seq++
		key, val := fmt.Sprintf("r6:%05d", seq), fmt.Sprintf("v%d", seq)
		for {
			err := sess.Put(key, val)
			if err == nil {
				acked[key] = val
				return nil
			}
			if errors.Is(err, client.ErrUnacked) {
				unackedRetries++
				continue
			}
			return fmt.Errorf("write %s: %w", key, err)
		}
	}
	burst := func(n int) error {
		for i := 0; i < n; i++ {
			if err := write(); err != nil {
				return err
			}
		}
		return nil
	}
	waitUntil := func(d time.Duration, what string, cond func() bool) error {
		deadline := time.Now().Add(d)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("harness: R6 timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	}

	// Background open-loop load across the whole lifecycle, started
	// before the kill and drained after the rejoin.
	bgDone := make(chan struct{})
	var bgRes capacity.DriverResult
	var bgErr error
	go func() {
		defer close(bgDone)
		bgRes, bgErr = capacity.Run(capacity.DriverConfig{
			Addrs:        addrList,
			Sessions:     6,
			Arrivals:     workload.Poisson{OpsPerSec: 200, Seed: 23},
			Duration:     3 * time.Second,
			DrainTimeout: 20 * time.Second,
			Seed:         23,
		})
	}()

	// Phase 1 — steady state with durability on.
	if err := burst(40); err != nil {
		return nil, err
	}

	// Phase 2 — kill -9 the highest daemon (the recovered daemon cannot
	// initiate the merge that readmits it, so the lowest must survive):
	// transport endpoint dies mid-flight, the WAL keeps only what fsync
	// made durable (everything, under fsync=always), nothing is flushed.
	victim := newtop.ProcessID(3)
	victimCfg := mkConfig(victim)
	preKillGroup := daemons[victim].ServingGroup()
	daemons[victim].Kill()
	delete(daemons, victim)
	killedAt := time.Now()
	if err := burst(40); err != nil {
		return nil, fmt.Errorf("after killing P%d: %w", victim, err)
	}
	outageAbsorbed := time.Since(killedAt)

	// Phase 3 — restart from the same data dir while the load keeps
	// running. Recovery is local (snapshot + WAL replay inside Start);
	// readmission is the announce → exclusion-heal → merged successor
	// group → reconcile fast path.
	restartedAt := time.Now()
	d3, err := daemon.Start(victimCfg)
	if err != nil {
		return nil, fmt.Errorf("harness: R6 restart: %w", err)
	}
	daemons[victim] = d3
	addrs[victim] = d3.ClientAddr()
	for _, d := range daemons {
		d.SetPeerClientAddrs(addrs)
	}
	err = waitUntil(30*time.Second, "restarted daemon to rejoin", func() bool {
		g := d3.ServingGroup()
		rep, _ := d3.Replica()
		return g > preKillGroup && rep != nil && rep.CaughtUp() &&
			daemons[1].ServingGroup() == g
	})
	if err != nil {
		return nil, err
	}
	rejoinTook := time.Since(restartedAt)
	if err := burst(20); err != nil {
		return nil, fmt.Errorf("after restart: %w", err)
	}

	// Zero acked-write loss, proven AT THE RESTARTED DAEMON: a fresh
	// session pinned to it must barrier-read every acked write of the
	// whole lifecycle.
	sess3, err := client.Config{
		DialTimeout:     time.Second,
		OpTimeout:       15 * time.Second,
		FailoverTimeout: 30 * time.Second,
		RetryWait:       15 * time.Millisecond,
	}.Dial(d3.ClientAddr())
	if err != nil {
		return nil, err
	}
	defer func() { _ = sess3.Close() }()
	for key, val := range acked {
		got, ok, err := sess3.BarrierGet(key)
		if err != nil || !ok || got != val {
			return nil, fmt.Errorf("harness: R6 acked write %s lost across kill -9: %q %v %v", key, got, ok, err)
		}
	}

	// The recovery counters must tell the fast-path story: one local
	// replay, no full snapshot transfer, the reconcile short circuit.
	rc := d3.Proc().Metrics().Counters
	if n := rc["newtop_recovery_replays_total"]; n != 1 {
		return nil, fmt.Errorf("harness: R6 recovery replays = %d, want 1", n)
	}
	if n := rc["newtop_recovery_full_transfers_total"]; n != 0 {
		return nil, fmt.Errorf("harness: R6 full snapshot transfers = %d, want 0 (fast path)", n)
	}
	if n := rc["newtop_recovery_fastpath_total"]; n != 1 {
		return nil, fmt.Errorf("harness: R6 fast-path rejoins = %d, want 1", n)
	}

	// Drain the background driver; its sessions rode the same lifecycle.
	<-bgDone
	if bgErr != nil {
		return nil, fmt.Errorf("harness: R6 background driver: %w", bgErr)
	}

	// Every drop across the fleet (including the restarted incarnation)
	// must be explained by the crash/drain/formation lifecycle.
	explained := map[string]bool{
		`layer="core",reason="left_group"`:               true,
		`layer="core",reason="removed_member"`:           true,
		`layer="core",reason="not_member"`:               true,
		`layer="core",reason="seq_gap"`:                  true,
		`layer="core",reason="stale_view"`:               true,
		`layer="core",reason="group_gone"`:               true,
		`layer="core",reason="queued_submit_group_gone"`: true,
		`layer="ring",reason="orphan_evicted"`:           true,
		`layer="ring",reason="reassembly_abandoned"`:     true,
	}
	var explainedDrops uint64
	for id, d := range daemons {
		for name, v := range d.Proc().Metrics().Counters {
			labels, ok := strings.CutPrefix(name, "newtop_drops_total{")
			if !ok || v == 0 {
				continue
			}
			labels = strings.TrimSuffix(labels, "}")
			if !explained[labels] {
				return nil, fmt.Errorf("harness: R6 unexplained drops at P%d: %s = %d", id, labels, v)
			}
			explainedDrops += v
		}
	}

	st := sess.Stats()
	fsyncs := rc["newtop_wal_fsyncs_total"]
	t.AddRow("acked writes", fmt.Sprintf("%d (all verified at the restarted daemon, zero lost)", len(acked)))
	t.AddRow("unacked writes retried by caller", fmt.Sprintf("%d", unackedRetries))
	t.AddRow("session failovers / redirects / retries", fmt.Sprintf("%d / %d / %d", st.Failovers, st.Redirects, st.Retries))
	t.AddRow("kill -9 + 40 writes absorbed in (ms)", ms(outageAbsorbed))
	t.AddRow("restart → rejoined serving group (ms)", ms(rejoinTook))
	t.AddRow("recovery", fmt.Sprintf("%d replay, %d entries, %d truncated",
		rc["newtop_recovery_replays_total"], rc["newtop_recovery_replayed_entries_total"], rc["newtop_recovery_truncated_records_total"]))
	t.AddRow("rejoin path", fmt.Sprintf("fastpath=%d full_transfers=%d",
		rc["newtop_recovery_fastpath_total"], rc["newtop_recovery_full_transfers_total"]))
	t.AddRow("WAL fsyncs at restarted daemon", fmt.Sprintf("%d", fsyncs))
	t.AddRow("background driver", fmt.Sprintf("%d scheduled, %d completed, %d errors, %d unfinished",
		bgRes.Scheduled, bgRes.Completed, bgRes.Errors, bgRes.Unfinished))
	t.AddRow("drops (all explained by crash/drain/formation)", fmt.Sprintf("%d", explainedDrops))
	return t, nil
}
