package obs

import (
	"sync"
	"time"

	"newtop/internal/types"
)

// Stage is one point in a message's delivery lifecycle. Stages are
// stamped in increasing order at any single process; not every stage
// occurs everywhere (only the origin stamps Submit/Send, only replicated
// groups stamp Applied).
type Stage uint8

// Lifecycle stages, in pipeline order.
const (
	StageSubmit    Stage = iota // application multicast accepted, Num assigned
	StageSend                   // first transmission (direct fan-out or ring dissemination)
	StageReceive                // data-plane message entered the local engine
	StageOrdered                // message took its place in the delivery queue
	StageStable                 // passed the safe1'/stability delivery gates
	StageDelivered              // handed to the application
	StageApplied                // applied by the replicated state machine
	numStages
)

// String names a stage for trace dumps and stage-latency metric labels.
func (s Stage) String() string {
	switch s {
	case StageSubmit:
		return "submit"
	case StageSend:
		return "send"
	case StageReceive:
		return "receive"
	case StageOrdered:
		return "ordered"
	case StageStable:
		return "stable"
	case StageDelivered:
		return "delivered"
	case StageApplied:
		return "applied"
	}
	return "unknown"
}

// TraceKey identifies one multicast message protocol-wide: the origin's
// logical-clock number is unique per (group, origin).
type TraceKey struct {
	Group  types.GroupID
	Origin types.ProcessID
	Num    types.MsgNum
}

// Trace is the stamped lifecycle of one sampled message at one process.
// A zero Stamps[i] means stage i did not occur here (remote origin, no
// state machine, or the run ended first).
type Trace struct {
	Key    TraceKey
	Stamps [numStages]time.Time
}

// Stamp returns the time stage s occurred (zero if it did not).
func (t *Trace) Stamp(s Stage) time.Time { return t.Stamps[s] }

// DefaultTraceCap bounds how many sampled traces a tracer retains; the
// oldest (by first-stamp order) is evicted first, deterministically.
const DefaultTraceCap = 1024

// Tracer samples the delivery stream of one process and stamps lifecycle
// stages. Sampling is deterministic — a message is sampled iff
// Num % SampleEvery == 0 — so every process samples the *same* messages
// and, in simulation, the same seed yields bit-identical traces.
//
// Stamps carry whatever clock the caller passes: the engine hands the
// tracer the same `now` it was driven with, which is virtual time in sim
// and the wall clock under the node runtime. The tracer never reads a
// clock itself.
//
// On every stamp after the first, the gap from the preceding stamped
// stage feeds a per-stage latency histogram in the registry
// (newtop_trace_stage_ns{stage="..."}), so sampled traffic continuously
// populates the stage-latency distribution without retaining every trace.
type Tracer struct {
	every uint64
	reg   *Registry

	mu     sync.Mutex
	cap    int
	active map[TraceKey]int // index into order
	order  []*Trace         // insertion-ordered, evicted FIFO
	stage  [numStages]*Histogram
}

// NewTracer creates a tracer sampling every sampleEvery-th message number
// and retaining up to keep traces (DefaultTraceCap if keep <= 0). The
// registry may be nil; stage-latency histograms are then skipped.
func NewTracer(sampleEvery uint64, keep int, reg *Registry) *Tracer {
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	if keep <= 0 {
		keep = DefaultTraceCap
	}
	t := &Tracer{
		every:  sampleEvery,
		reg:    reg,
		cap:    keep,
		active: make(map[TraceKey]int),
	}
	for s := Stage(0); s < numStages; s++ {
		t.stage[s] = reg.Histogram(`newtop_trace_stage_ns{stage="` + s.String() + `"}`)
	}
	return t
}

// Sampled reports whether messages numbered num are traced. Nil-safe; the
// caller guards its stamping work with this so unsampled traffic pays one
// branch and a modulo.
func (t *Tracer) Sampled(num types.MsgNum) bool {
	return t != nil && uint64(num)%t.every == 0
}

// StampIf stamps stage s of the message identified by key at now, if the
// tracer is non-nil and the message is sampled. First write per stage
// wins (a re-disseminated frame must not move the receive stamp).
func (t *Tracer) StampIf(key TraceKey, s Stage, now time.Time) {
	if !t.Sampled(key.Num) {
		return
	}
	t.mu.Lock()
	idx, ok := t.active[key]
	if !ok {
		if len(t.order) >= t.cap {
			// Evict the oldest trace. Indices shift by one; rebuilding the
			// map is O(cap) but only runs once the window is full and a
			// *new* sampled message arrives — off the per-stamp path.
			evicted := t.order[0]
			copy(t.order, t.order[1:])
			t.order = t.order[:len(t.order)-1]
			delete(t.active, evicted.Key)
			for k, i := range t.active {
				t.active[k] = i - 1
			}
		}
		idx = len(t.order)
		t.order = append(t.order, &Trace{Key: key})
		t.active[key] = idx
	}
	tr := t.order[idx]
	if !tr.Stamps[s].IsZero() {
		t.mu.Unlock()
		return
	}
	tr.Stamps[s] = now
	// Feed the stage-latency histogram with the gap from the nearest
	// earlier stamped stage.
	var hist *Histogram
	var gap time.Duration
	for prev := int(s) - 1; prev >= 0; prev-- {
		if p := tr.Stamps[prev]; !p.IsZero() {
			hist = t.stage[s]
			gap = now.Sub(p)
			break
		}
	}
	t.mu.Unlock()
	hist.ObserveDuration(gap)
}

// Traces returns the retained traces in first-stamp order. The returned
// copies are stable; the tracer keeps accumulating.
func (t *Tracer) Traces() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, len(t.order))
	for i, tr := range t.order {
		out[i] = *tr
	}
	return out
}
