package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"newtop/internal/types"
)

// TestRegistryConcurrent hammers one registry from many goroutines —
// handle resolution races against updates races against snapshots — and
// asserts the final totals are exact. Run under -race this is the
// registry's thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot reader: every snapshot must be self-consistent —
	// monotone counter reads, histogram count equal to its bucket total
	// (Snapshot computes count from the buckets, so this checks quantile
	// inputs can never exceed the data actually read).
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastOps uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			ops := s.Counters["ops_total"]
			if ops < lastOps {
				t.Errorf("counter went backwards: %d -> %d", lastOps, ops)
				return
			}
			lastOps = ops
			if h, ok := s.Histograms["lat_ns"]; ok {
				if h.Count > 0 && (h.P50 > h.Max || h.P99 > h.Max) {
					t.Errorf("quantiles exceed max: %+v", h)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve handles mid-flight on purpose: get-or-create must be
			// race-safe and always return the same handle.
			c := r.Counter("ops_total")
			g := r.Gauge("depth")
			h := r.Histogram("lat_ns")
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 1000))
				if i%512 == 0 {
					// Re-resolution returns the identical handle.
					if r.Counter("ops_total") != c {
						t.Error("counter handle not stable")
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wg2 := r.Gauge("other")
			wg2.Add(1)
			wg2.Add(-1)
		}()
	}
	// Writers finish quickly; poll for final totals, then release the
	// snapshotter.
	deadline := time.Now().Add(10 * time.Second)
	for r.Counter("ops_total").Value() < workers*perW {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := r.Counter("ops_total").Value(); got != workers*perW {
		t.Fatalf("ops_total = %d, want %d", got, workers*perW)
	}
	h := r.Histogram("lat_ns").Snapshot()
	if h.Count != workers*perW {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*perW)
	}
	if h.Max != 999 {
		t.Fatalf("histogram max = %d, want 999", h.Max)
	}
}

// TestNilSafety proves the disabled path: nil registry, nil handles, nil
// tracer — every operation is a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Add(1)
	c.Inc()
	g.Set(5)
	g.Add(-1)
	h.Observe(123)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	r.WritePrometheus(&strings.Builder{})

	var tr *Tracer
	if tr.Sampled(0) {
		t.Fatal("nil tracer samples nothing")
	}
	tr.StampIf(TraceKey{}, StageSubmit, time.Now())
	if tr.Traces() != nil {
		t.Fatal("nil tracer has no traces")
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`newtop_drops_total{layer="ring",reason="orphan"}`).Add(3)
	r.Counter(`newtop_drops_total{layer="core",reason="stale_view"}`).Add(1)
	r.Gauge("newtop_arena_live").Set(42)
	r.Histogram("newtop_apply_ns").Observe(1000)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE newtop_drops_total counter",
		`newtop_drops_total{layer="ring",reason="orphan"} 3`,
		`newtop_drops_total{layer="core",reason="stale_view"} 1`,
		"# TYPE newtop_arena_live gauge",
		"newtop_arena_live 42",
		"# TYPE newtop_apply_ns summary",
		`newtop_apply_ns{quantile="0.99"}`,
		"newtop_apply_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per base name even with two label variants.
	if strings.Count(out, "# TYPE newtop_drops_total") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
}

func TestTracerStampsAndStageLatency(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(2, 8, r)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	key := TraceKey{Group: 1, Origin: 2, Num: 4} // sampled (4 % 2 == 0)
	tr.StampIf(key, StageSubmit, base)
	tr.StampIf(key, StageSend, base.Add(1*time.Millisecond))
	tr.StampIf(key, StageReceive, base.Add(3*time.Millisecond))
	tr.StampIf(key, StageOrdered, base.Add(3*time.Millisecond))
	tr.StampIf(key, StageDelivered, base.Add(9*time.Millisecond))
	// Re-stamping must not move an existing stamp.
	tr.StampIf(key, StageReceive, base.Add(50*time.Millisecond))
	// Unsampled key is ignored entirely.
	tr.StampIf(TraceKey{Group: 1, Origin: 2, Num: 5}, StageSubmit, base)

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Key != key {
		t.Fatalf("key = %+v", got.Key)
	}
	if !got.Stamp(StageReceive).Equal(base.Add(3 * time.Millisecond)) {
		t.Fatalf("receive stamp moved: %v", got.Stamp(StageReceive))
	}
	if !got.Stamp(StageStable).IsZero() {
		t.Fatal("stable was never stamped")
	}
	// Delivered stage histogram fed with delivered-ordered gap (6ms),
	// skipping the unstamped Stable stage.
	h := r.Histogram(`newtop_trace_stage_ns{stage="delivered"}`).Snapshot()
	if h.Count != 1 {
		t.Fatalf("delivered stage count = %d, want 1", h.Count)
	}
	want := uint64(6 * time.Millisecond)
	if h.Max < want*7/8 || h.Max > want*9/8 {
		t.Fatalf("delivered stage gap = %dns, want ~%dns", h.Max, want)
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(1, 4, nil)
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for n := 1; n <= 6; n++ {
		tr.StampIf(TraceKey{Group: 1, Origin: 1, Num: types.MsgNum(n)}, StageReceive, at)
	}
	traces := tr.Traces()
	if len(traces) != 4 {
		t.Fatalf("got %d traces, want cap 4", len(traces))
	}
	if traces[0].Key.Num != 3 || traces[3].Key.Num != 6 {
		t.Fatalf("eviction order wrong: first=%d last=%d", traces[0].Key.Num, traces[3].Key.Num)
	}
	// Late stamp for a retained key still lands on the right trace.
	tr.StampIf(TraceKey{Group: 1, Origin: 1, Num: 5}, StageDelivered, at.Add(time.Millisecond))
	for _, g := range tr.Traces() {
		if g.Key.Num == 5 && g.Stamp(StageDelivered).IsZero() {
			t.Fatal("stamp after eviction reshuffle lost")
		}
	}
}
