package obs

import (
	"fmt"
	"io"
	"strings"
)

// splitName separates a registered metric name into its base name and the
// inline label list (without braces): `a_total{x="1"}` → ("a_total",
// `x="1"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// series formats one exposition line: base+suffix, the merged label list,
// and the value.
func series(w io.Writer, base, suffix, labels, extra string, value any) {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all != "" {
		all = "{" + all + "}"
	}
	fmt.Fprintf(w, "%s%s%s %v\n", base, suffix, all, value)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges are one series
// each; histograms are emitted summary-style with p50/p99/p999 quantile
// series plus _sum, _count and _max. Output order is deterministic
// (sorted by metric name) so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	snap := r.Snapshot()
	typed := make(map[string]bool)
	typeLine := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, name := range sortedNames(snap.Counters) {
		base, labels := splitName(name)
		typeLine(base, "counter")
		series(w, base, "", labels, "", snap.Counters[name])
	}
	for _, name := range sortedNames(snap.Gauges) {
		base, labels := splitName(name)
		typeLine(base, "gauge")
		series(w, base, "", labels, "", snap.Gauges[name])
	}
	for _, name := range sortedNames(snap.Histograms) {
		base, labels := splitName(name)
		h := snap.Histograms[name]
		typeLine(base, "summary")
		series(w, base, "", labels, `quantile="0.5"`, h.P50)
		series(w, base, "", labels, `quantile="0.99"`, h.P99)
		series(w, base, "", labels, `quantile="0.999"`, h.P999)
		series(w, base, "_sum", labels, "", h.Sum)
		series(w, base, "_count", labels, "", h.Count)
		series(w, base, "_max", labels, "", h.Max)
	}
}
