package obs

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBucketIndexMonotoneAndMid(t *testing.T) {
	// Every value maps into a bucket whose midpoint is within 12.5%; the
	// index is monotone in the value.
	vals := []uint64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1<<63 + 1}
	last := -1
	for _, v := range vals {
		i := bucketIndex(v)
		if i < last {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, last)
		}
		last = i
		mid := bucketMid(i)
		slack := v/8 + 1
		if mid+slack < v || mid > v+slack {
			t.Fatalf("bucketMid(%d)=%d not within 12.5%% of %d", i, mid, v)
		}
	}
	// Exhaustive small-value check: 0..7 are exact.
	for v := uint64(0); v < 8; v++ {
		if got := bucketMid(bucketIndex(v)); got != v {
			t.Fatalf("unit bucket %d reported as %d", v, got)
		}
	}
	if bucketIndex(^uint64(0)) >= numBuckets {
		t.Fatal("max uint64 overflows the bucket array")
	}
}

// TestHistogramQuantileProperty pins the quantile error bound against a
// sorted-slice oracle across randomized distributions: for every tested
// quantile the estimate must land within one sub-bucket (≤ 12.5%
// relative error) of the exact order statistic. Distributions cover the
// shapes the system produces: uniform latencies, log-normal-ish heavy
// tails, constants, and tiny samples.
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0.5, 0.9, 0.99, 0.999}
	gen := []struct {
		name string
		draw func(n int) []uint64
	}{
		{"uniform", func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = uint64(rng.Int63n(10_000_000))
			}
			return out
		}},
		{"heavy-tail", func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				v := uint64(rng.Int63n(1000)) + 1
				for rng.Intn(4) == 0 { // multiplicative tail
					v *= 7
				}
				out[i] = v
			}
			return out
		}},
		{"constant", func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = 123456
			}
			return out
		}},
		{"bimodal", func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				if rng.Intn(2) == 0 {
					out[i] = uint64(rng.Int63n(100))
				} else {
					out[i] = 1_000_000 + uint64(rng.Int63n(1000))
				}
			}
			return out
		}},
		{"tiny", func(n int) []uint64 { return []uint64{5, 900000, 17} }},
	}
	for _, g := range gen {
		for trial := 0; trial < 5; trial++ {
			n := 100 + rng.Intn(5000)
			data := g.draw(n)
			var h Histogram
			for _, v := range data {
				h.Observe(int64(v))
			}
			oracle := append([]uint64(nil), data...)
			sort.Slice(oracle, func(i, j int) bool { return oracle[i] < oracle[j] })
			for _, q := range quantiles {
				rank := int(q * float64(len(oracle)))
				if rank >= len(oracle) {
					rank = len(oracle) - 1
				}
				exact := oracle[rank]
				got := h.Quantile(q)
				// The estimate's bucket contains the exact order statistic,
				// so the midpoint is within one bucket width: 12.5% (+1 for
				// integer rounding at tiny values).
				slack := exact/8 + 1
				if got+slack < exact || got > exact+slack {
					t.Fatalf("%s trial %d q=%.3f: estimate %d vs oracle %d (slack %d, n=%d)",
						g.name, trial, q, got, exact, slack, len(oracle))
				}
			}
			snap := h.Snapshot()
			if snap.Count != uint64(len(data)) {
				t.Fatalf("%s: count %d != %d", g.name, snap.Count, len(data))
			}
			if snap.Max != oracle[len(oracle)-1] {
				t.Fatalf("%s: max %d != %d", g.name, snap.Max, oracle[len(oracle)-1])
			}
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Max != 0 || s.Sum != 0 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}
