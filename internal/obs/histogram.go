package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: HDR-style log-linear. Values 0..7 get exact
// unit buckets; above that, each power-of-two octave is split into
// 2^subBits = 8 linear sub-buckets, so a bucket's width is at most 1/8 of
// its lower bound and the midpoint representative is within ±6.25%
// (≤ 12.5% worst case at the bucket edges) of any value it absorbed. The
// histogram property test pins quantile estimates against a sorted-slice
// oracle at exactly this bound.
//
// 8 unit buckets + 61 octaves × 8 sub-buckets covers the full uint64
// range in 496 fixed slots — no resizing, no allocation after the handle
// exists, and Observe is two atomic adds plus a CAS-free max update.
const (
	subBits     = 3
	subCount    = 1 << subBits
	unitBuckets = subCount
	numBuckets  = unitBuckets + (64-subBits)*subCount
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < unitBuckets {
		return int(v)
	}
	// msb is the 1-based position of the leading bit; for v >= 8 it is at
	// least subBits+1. The sub-bucket is the subBits bits below the
	// leading one.
	msb := bits.Len64(v)
	shift := uint(msb - 1 - subBits)
	sub := int(v>>shift) & (subCount - 1)
	return unitBuckets + (msb-subBits-1)*subCount + sub
}

// bucketMid returns the midpoint representative value of bucket i — the
// value quantile estimates report.
func bucketMid(i int) uint64 {
	if i < unitBuckets {
		return uint64(i)
	}
	i -= unitBuckets
	octave := i / subCount // 0 => values with msb == subBits+1 (8..15)
	sub := i % subCount
	// Lower bound: leading bit at position octave+subBits, sub-bucket
	// offset below it; width is one sub-bucket step.
	shift := uint(octave)
	lo := (uint64(1) << (shift + subBits)) | (uint64(sub) << shift)
	return lo + (uint64(1)<<shift)/2
}

// Histogram is a fixed-layout log-linear histogram of non-negative
// values (typically durations in nanoseconds). The zero value is usable;
// a nil *Histogram is a no-op. Observe is lock-free and allocation-free.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// Observe records v. Negative values are clamped to zero (a backwards
// wall clock must not crash accounting).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.buckets[bucketIndex(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Name returns the registered metric name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot reads the histogram into a self-consistent summary. Quantiles
// are computed over the bucket counts read at this instant; under
// concurrent Observe traffic the snapshot is a valid histogram of some
// prefix-plus-subset of the observations (each bucket read is atomic).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	s.Count = total
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	s.P50 = quantile(&counts, total, 0.50)
	s.P99 = quantile(&counts, total, 0.99)
	s.P999 = quantile(&counts, total, 0.999)
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observations.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	return quantile(&counts, total, q)
}

// quantile walks the bucket array to the bucket containing the rank and
// returns its midpoint representative.
func quantile(counts *[numBuckets]uint64, total uint64, q float64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range counts {
		seen += counts[i]
		if seen > rank {
			return bucketMid(i)
		}
	}
	return bucketMid(numBuckets - 1)
}
