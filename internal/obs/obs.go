// Package obs is the repository's unified observability layer: a
// dependency-free metrics registry (atomic counters, gauges, and
// log-bucketed histograms with quantile snapshots) plus a sampled
// delivery-stream tracer (tracer.go) stamping a message's lifecycle
// through the stack.
//
// The design rule is that instrumentation must be free enough to leave on
// everywhere, including the engine receive hot path:
//
//   - Handle resolution (Registry.Counter/Gauge/Histogram) may allocate
//     and take a lock — it happens once, at construction time.
//   - Updates (Counter.Add, Gauge.Set, Histogram.Observe) are a single
//     atomic operation on a pre-resolved handle: lock-free, 0 allocs/op.
//     The MetricsHotPath perf gate holds this at exactly zero.
//   - Every update method is nil-receiver safe and a no-op on nil, so a
//     layer built without a registry (cfg.Metrics == nil) resolves nil
//     handles and its instrumentation costs one predictable branch.
//
// Metric names carry their labels inline, Prometheus-style:
// `newtop_drops_total{layer="ring",reason="orphan_evicted"}` is one
// registry entry. Registration bakes the label set into the name once;
// the hot path never formats a string. WritePrometheus (prom.go) emits
// the text exposition format directly from these names.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// usable; a nil *Counter is a no-op.
type Counter struct {
	v    atomic.Uint64
	name string
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered metric name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomic instantaneous value. The zero value is usable; a nil
// *Gauge is a no-op.
type Gauge struct {
	v    atomic.Int64
	name string
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered metric name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Registry holds a process's metrics. Handle resolution is get-or-create
// by full metric name (labels included) and is safe for concurrent use;
// resolved handles are stable for the registry's lifetime. A nil *Registry
// resolves nil handles, making every downstream update a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// HistSnapshot is a self-consistent read of one histogram.
type HistSnapshot struct {
	Count uint64
	Sum   uint64
	Max   uint64
	P50   uint64
	P99   uint64
	P999  uint64
}

// Snapshot is a point-in-time copy of every registered metric, keyed by
// full metric name. It is what Process.Metrics() hands to callers and what
// the harness dumps per scenario.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistSnapshot
}

// Snapshot copies the current value of every metric. Returns an empty
// snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.Snapshot()
	}
	return s
}

// sortedNames returns map keys in stable order (shared by Snapshot
// consumers and the Prometheus writer).
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
