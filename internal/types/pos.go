package types

import "fmt"

// LogPos addresses one entry in a group's delivery stream: the group
// incarnation it was delivered in plus the zero-based index of the
// delivery within that group's total order. Because every member of a
// group delivers the same messages in the same order (safe1'/safe2), a
// LogPos names the same entry at every member — it is the layer-crossing
// address used by the replication log, the snapshot cut, the WAL and the
// recovery replay.
//
// Groups are never rejoined (§3): a reconfiguration forms a successor
// group and its stream restarts at index 0, so positions from different
// groups in one lineage are ordered by Group first.
type LogPos struct {
	Group GroupID
	Index uint64
}

// NilPos is the zero position: "nothing delivered yet".
var NilPos = LogPos{}

// IsNil reports whether p is the zero position.
func (p LogPos) IsNil() bool { return p == LogPos{} }

// Before reports whether p addresses an earlier entry than q within one
// lineage: earlier group incarnation, or same group and lower index.
func (p LogPos) Before(q LogPos) bool {
	if p.Group != q.Group {
		return p.Group < q.Group
	}
	return p.Index < q.Index
}

// String implements fmt.Stringer.
func (p LogPos) String() string {
	if p.IsNil() {
		return "pos(nil)"
	}
	return fmt.Sprintf("%v@%d", p.Group, p.Index)
}
