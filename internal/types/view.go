package types

import (
	"fmt"
	"sort"
	"strings"
)

// View is a membership view of a group (the paper's V^r_{x,i}): the set of
// processes that member Pi currently believes to be the functioning,
// connected members of group gx, together with the index r of the view in
// the sequence of views Pi has installed for gx.
//
// Views are immutable once created; installation of a new view replaces the
// whole value. In Newtop a new view is always a proper subset of the old
// one — processes never rejoin a group they left, they form a new group
// (§3).
type View struct {
	Group   GroupID
	Index   int         // r: 0 for the initial view, +1 per installation
	Members []ProcessID // sorted ascending, no duplicates

	// Excluded counts, per member, how many processes that member has
	// excluded from the initial view when this view was installed. It
	// implements the signature-view variant ϑ of §6 (adapted from
	// Schiper & Ricciardi [19]): a view is then the set of signatures
	// {Pj, ej}, and concurrent views never intersect. Excluded[k]
	// corresponds to Members[k]. Nil when the variant is disabled.
	Excluded []int
}

// NewView builds a view over the given members (copied, sorted,
// de-duplicated).
func NewView(g GroupID, index int, members []ProcessID) View {
	ms := make([]ProcessID, 0, len(members))
	seen := make(map[ProcessID]bool, len(members))
	for _, p := range members {
		if !seen[p] {
			seen[p] = true
			ms = append(ms, p)
		}
	}
	SortProcesses(ms)
	return View{Group: g, Index: index, Members: ms}
}

// Contains reports whether p is a member of the view.
func (v View) Contains(p ProcessID) bool {
	i := sort.Search(len(v.Members), func(i int) bool { return v.Members[i] >= p })
	return i < len(v.Members) && v.Members[i] == p
}

// Size returns the number of members.
func (v View) Size() int { return len(v.Members) }

// Without returns a new view (index+1) with the given processes removed.
// Excluded signatures, when present, are advanced by the number of removed
// processes as in the §6 signature-view scheme.
func (v View) Without(removed map[ProcessID]bool) View {
	ms := make([]ProcessID, 0, len(v.Members))
	var exc []int
	for i, p := range v.Members {
		if removed[p] {
			continue
		}
		ms = append(ms, p)
		if v.Excluded != nil {
			exc = append(exc, v.Excluded[i])
		}
	}
	nRemoved := len(v.Members) - len(ms)
	if exc != nil {
		for i := range exc {
			exc[i] += nRemoved
		}
	}
	return View{Group: v.Group, Index: v.Index + 1, Members: ms, Excluded: exc}
}

// Equal reports whether the two views have the same group, index and
// membership (and signatures, when present).
func (v View) Equal(o View) bool {
	if v.Group != o.Group || v.Index != o.Index || len(v.Members) != len(o.Members) {
		return false
	}
	for i := range v.Members {
		if v.Members[i] != o.Members[i] {
			return false
		}
	}
	if (v.Excluded == nil) != (o.Excluded == nil) {
		return false
	}
	for i := range v.Excluded {
		if v.Excluded[i] != o.Excluded[i] {
			return false
		}
	}
	return true
}

// SameMembers reports whether the two views contain exactly the same
// processes, regardless of index.
func (v View) SameMembers(o View) bool {
	if len(v.Members) != len(o.Members) {
		return false
	}
	for i := range v.Members {
		if v.Members[i] != o.Members[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the two views share at least one member. Under
// the signature-view variant two members intersect only if they share a
// member with an identical exclusion count, matching ϑ of §6.
func (v View) Intersects(o View) bool {
	for i, p := range v.Members {
		for j, q := range o.Members {
			if p != q {
				continue
			}
			if v.Excluded == nil || o.Excluded == nil {
				return true
			}
			if v.Excluded[i] == o.Excluded[j] {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy of the view.
func (v View) Clone() View {
	ms := make([]ProcessID, len(v.Members))
	copy(ms, v.Members)
	var exc []int
	if v.Excluded != nil {
		exc = make([]int, len(v.Excluded))
		copy(exc, v.Excluded)
	}
	return View{Group: v.Group, Index: v.Index, Members: ms, Excluded: exc}
}

// String implements fmt.Stringer.
func (v View) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "V%d_%v{", v.Index, v.Group)
	for i, p := range v.Members {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(p.String())
		if v.Excluded != nil {
			fmt.Fprintf(&b, ":%d", v.Excluded[i])
		}
	}
	b.WriteString("}")
	return b.String()
}
