package types

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestProcessIDString(t *testing.T) {
	tests := []struct {
		p    ProcessID
		want string
	}{
		{NilProcess, "P0"},
		{ProcessID(1), "P1"},
		{ProcessID(42), "P42"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("ProcessID(%d).String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestGroupIDString(t *testing.T) {
	if got := GroupID(7).String(); got != "g7" {
		t.Errorf("GroupID(7).String() = %q, want g7", got)
	}
}

func TestMsgNumString(t *testing.T) {
	if got := MsgNum(9).String(); got != "9" {
		t.Errorf("MsgNum(9).String() = %q, want 9", got)
	}
	if got := InfNum.String(); got != "∞" {
		t.Errorf("InfNum.String() = %q, want ∞", got)
	}
}

func TestMessageIDString(t *testing.T) {
	id := MessageID{Sender: 3, Group: 2, Seq: 11}
	if got := id.String(); got != "P3/g2#11" {
		t.Errorf("MessageID.String() = %q", got)
	}
}

func TestSortProcesses(t *testing.T) {
	tests := []struct {
		name string
		in   []ProcessID
		want []ProcessID
	}{
		{"empty", nil, nil},
		{"single", []ProcessID{5}, []ProcessID{5}},
		{"reverse", []ProcessID{3, 2, 1}, []ProcessID{1, 2, 3}},
		{"duplicates kept", []ProcessID{2, 1, 2}, []ProcessID{1, 2, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := SortProcesses(append([]ProcessID(nil), tt.in...))
			if len(got) != len(tt.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tt.want))
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("got[%d] = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestSortProcessesProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		ps := make([]ProcessID, len(raw))
		for i, r := range raw {
			ps[i] = ProcessID(r)
		}
		SortProcesses(ps)
		return sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i] < ps[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInfNumIsMax(t *testing.T) {
	if InfNum < MsgNum(1<<63) {
		t.Error("InfNum must compare greater than any realistic message number")
	}
}
