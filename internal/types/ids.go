// Package types defines the identifiers, views and message structures shared
// by every layer of the Newtop protocol suite (Ezhilchelvan, Macêdo,
// Shrivastava — ICDCS 1995).
//
// The package is deliberately free of protocol logic: it is the vocabulary
// spoken between the transport, the ordering engine, the membership service
// and the application-facing API.
package types

import (
	"fmt"
	"sort"
)

// ProcessID identifies a process in the system. Process identifiers are
// totally ordered; the order is used for deterministic tie-breaking in
// total-order delivery (safe2) and for deterministic sequencer election in
// the asymmetric protocol.
type ProcessID uint32

// NilProcess is the zero ProcessID, never assigned to a real process.
const NilProcess ProcessID = 0

// String implements fmt.Stringer.
func (p ProcessID) String() string { return fmt.Sprintf("P%d", uint32(p)) }

// GroupID identifies a process group. Groups are created by the dynamic
// group-formation protocol (§5.3); a process may belong to many groups
// simultaneously.
type GroupID uint32

// NilGroup is the zero GroupID, never assigned to a real group.
const NilGroup GroupID = 0

// String implements fmt.Stringer.
func (g GroupID) String() string { return fmt.Sprintf("g%d", uint32(g)) }

// MsgNum is a logical-clock message number (the paper's m.c). Message numbers
// are assigned by the sender's Lamport clock under rules CA1/CA2 and drive
// both causal ordering and the total-order delivery gate.
type MsgNum uint64

// InfNum is the "infinity" message number installed in RV/SV entries for
// processes removed from a view (§5.2 step viii), so that the delivery gate
// D can advance past the departed member.
const InfNum MsgNum = ^MsgNum(0)

// String implements fmt.Stringer.
func (n MsgNum) String() string {
	if n == InfNum {
		return "∞"
	}
	return fmt.Sprintf("%d", uint64(n))
}

// MessageID uniquely identifies a multicast message: the sender plus the
// sender-local sequence number of the multicast within a group. The pair is
// unique because a process sends with strictly increasing sequence numbers
// per group (FIFO transport assumption, §3).
type MessageID struct {
	Sender ProcessID
	Group  GroupID
	Seq    uint64
}

// String implements fmt.Stringer.
func (id MessageID) String() string {
	return fmt.Sprintf("%v/%v#%d", id.Sender, id.Group, id.Seq)
}

// SortProcesses sorts a slice of process IDs ascending, in place, and
// returns it. The deterministic order underpins sequencer election and
// delivery tie-breaking.
func SortProcesses(ps []ProcessID) []ProcessID {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}
