package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the protocol message kinds. Data and Null flow through
// the ordering layer; the remaining kinds are control-plane traffic for the
// membership service (GV processes, §5.2) and the group-formation protocol
// (§5.3).
type Kind uint8

const (
	// KindData is an application multicast (or, in the asymmetric
	// protocol, the sequencer's ordered multicast of one).
	KindData Kind = iota + 1
	// KindNull is a time-silence null message (§4.1): it advances clocks
	// and receive vectors but is never delivered to the application.
	KindNull
	// KindSeqRequest is the asymmetric protocol's unicast of a message to
	// the group's sequencer for ordering (§4.2).
	KindSeqRequest
	// KindSuspect announces a failure suspicion {Pk, ln} (§5.2 step i).
	KindSuspect
	// KindRefute refutes a suspicion, piggybacking the suspected process's
	// missing messages (§5.2 steps iii–iv).
	KindRefute
	// KindConfirmed announces an agreed failure-detection set (§5.2 step v).
	KindConfirmed
	// KindFormInvite invites processes to form a new group (§5.3 step 1).
	KindFormInvite
	// KindFormVote diffuses a member's yes/no decision (§5.3 steps 2–3).
	KindFormVote
	// KindStartGroup is the first message in a freshly formed group,
	// carrying the proposed start-number (§5.3 steps 4–5).
	KindStartGroup
	// KindRingData carries a large payload along the view-defined ring:
	// each member forwards the frame once to its ring successor, so the
	// originator's bandwidth is O(payload) instead of O(n·payload). The
	// frame is self-contained (full ordering header plus payload); Hops
	// counts forwards so a relay can stop when the ring is covered.
	KindRingData
	// KindRingHdr is the point-to-point ordering metadata of a ring
	// dissemination: the full header of a KindData message with the
	// payload elided. Its arrival position on the sender's FIFO channel
	// fixes where the reassembled message slots into the per-origin
	// sequence; the payload arrives separately via the ring.
	KindRingHdr
	// KindRingPull asks a disseminator to re-send a ring payload the
	// requester is still missing (identified by Origin/Group/Seq). The
	// reply is a KindRingData with RingNoRelay hops, sent point-to-point.
	KindRingPull
)

// RingNoRelay in Message.Hops marks a ring frame that must not be
// forwarded (pull replies and direct fallback sends).
const RingNoRelay uint8 = 0xFF

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindNull:
		return "null"
	case KindSeqRequest:
		return "seqreq"
	case KindSuspect:
		return "suspect"
	case KindRefute:
		return "refute"
	case KindConfirmed:
		return "confirmed"
	case KindFormInvite:
		return "form-invite"
	case KindFormVote:
		return "form-vote"
	case KindStartGroup:
		return "start-group"
	case KindRingData:
		return "ring-data"
	case KindRingHdr:
		return "ring-hdr"
	case KindRingPull:
		return "ring-pull"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Suspicion is the pair {Pk, ln} of §5.2: process Pk is suspected to have
// crashed, and ln is the number of the last message received from Pk by the
// suspecting process.
type Suspicion struct {
	Proc ProcessID
	LN   MsgNum
}

// String implements fmt.Stringer.
func (s Suspicion) String() string { return fmt.Sprintf("{%v,ln=%v}", s.Proc, s.LN) }

// Message is the single wire unit exchanged by Newtop processes. Exactly
// which fields are meaningful depends on Kind; the codec in internal/wire
// serialises only the fields a kind uses, which is what keeps Newtop's
// message space overhead low and bounded (§6).
type Message struct {
	Kind   Kind
	Group  GroupID
	Sender ProcessID // transport-level sender of this message
	Origin ProcessID // original author (differs from Sender for sequencer multicasts)

	// Num is m.c, the Lamport number assigned under CA1. For
	// KindSeqRequest it is the requester's provisional number; the
	// sequencer re-stamps the multicast with a fresh number.
	Num MsgNum

	// Seq is the per-(sender,group) FIFO sequence number, used as the
	// unique message identity together with Origin and Group.
	Seq uint64

	// LDN is the stability piggyback (§5.1): the sender's D_x for this
	// group at send time ("largest deliverable number").
	LDN MsgNum

	// Hops is the forward count of a KindRingData frame (RingNoRelay for
	// frames that must not be forwarded). Zero for every other kind.
	Hops uint8

	// Payload is the opaque application payload (KindData/KindSeqRequest).
	Payload []byte

	// Suspicion is used by KindSuspect and KindRefute.
	Suspicion Suspicion

	// Detection is the agreed failure set of a KindConfirmed message.
	Detection []Suspicion

	// Recovered carries the missing messages piggybacked on a KindRefute
	// (§5.2 step iii: "all received m of Pk, m.c > ln, can be piggybacked
	// on the refute message").
	Recovered []Message

	// Invite lists the intended members of a new group (KindFormInvite,
	// KindFormVote).
	Invite []ProcessID

	// Vote is the yes/no decision carried by KindFormVote.
	Vote bool

	// StartNum is the proposed start-number of a KindStartGroup message.
	StartNum MsgNum
}

// ID returns the unique identity of a data-plane message: the pair
// (Origin, Group, Seq). Valid for KindData, KindNull and KindStartGroup.
func (m *Message) ID() MessageID {
	return MessageID{Sender: m.Origin, Group: m.Group, Seq: m.Seq}
}

// IsDataPlane reports whether the message flows through the ordering layer
// (its Num participates in RV/D bookkeeping).
func (m *Message) IsDataPlane() bool {
	switch m.Kind {
	case KindData, KindNull, KindStartGroup:
		return true
	default:
		return false
	}
}

// IsControlPlane reports whether the message belongs to the membership or
// formation services.
func (m *Message) IsControlPlane() bool { return !m.IsDataPlane() && m.Kind != KindSeqRequest }

// Own makes the message own all of its byte storage: Payload — and the
// payloads of piggybacked recovered messages — are copied out of whatever
// buffer a borrowed decode (wire.UnmarshalBorrowed) left them aliasing.
// Consumers that retain a borrowed message beyond its transport buffer's
// release (the node runtime handing stimuli to the engine, which logs data
// messages until stability) must call Own first; everything else in the
// struct is owned by construction.
func (m *Message) Own() {
	if len(m.Payload) > 0 {
		m.Payload = append([]byte(nil), m.Payload...)
	}
	for i := range m.Recovered {
		m.Recovered[i].Own()
	}
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	c := *m
	if m.Payload != nil {
		c.Payload = append([]byte(nil), m.Payload...)
	}
	if m.Detection != nil {
		c.Detection = append([]Suspicion(nil), m.Detection...)
	}
	if m.Invite != nil {
		c.Invite = append([]ProcessID(nil), m.Invite...)
	}
	if m.Recovered != nil {
		c.Recovered = make([]Message, len(m.Recovered))
		for i := range m.Recovered {
			c.Recovered[i] = *m.Recovered[i].Clone()
		}
	}
	return &c
}

// String implements fmt.Stringer.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%v %v %v c=%v seq=%d", m.Kind, m.Group, m.Sender, m.Num, m.Seq)
	if m.Origin != m.Sender && m.Origin != NilProcess {
		fmt.Fprintf(&b, " origin=%v", m.Origin)
	}
	switch m.Kind {
	case KindSuspect, KindRefute:
		fmt.Fprintf(&b, " %v", m.Suspicion)
	case KindConfirmed:
		fmt.Fprintf(&b, " detection=%v", m.Detection)
	case KindStartGroup:
		fmt.Fprintf(&b, " start=%v", m.StartNum)
	case KindData:
		fmt.Fprintf(&b, " |payload|=%d", len(m.Payload))
	}
	b.WriteString("]")
	return b.String()
}

// TotalOrderLess is the deterministic delivery order of safe2: messages are
// delivered in non-decreasing number order, ties broken by (origin, group,
// seq). Every correct process applies the same comparison, which is what
// makes equal-numbered deliveries identical everywhere.
func TotalOrderLess(a, b *Message) bool {
	if a.Num != b.Num {
		return a.Num < b.Num
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	if a.Group != b.Group {
		return a.Group < b.Group
	}
	return a.Seq < b.Seq
}
