package types

import (
	"testing"
	"testing/quick"
)

func TestNewViewSortsAndDedups(t *testing.T) {
	v := NewView(1, 0, []ProcessID{3, 1, 2, 3, 1})
	want := []ProcessID{1, 2, 3}
	if len(v.Members) != len(want) {
		t.Fatalf("members = %v, want %v", v.Members, want)
	}
	for i := range want {
		if v.Members[i] != want[i] {
			t.Errorf("members[%d] = %v, want %v", i, v.Members[i], want[i])
		}
	}
}

func TestViewContains(t *testing.T) {
	v := NewView(1, 0, []ProcessID{1, 3, 5})
	tests := []struct {
		p    ProcessID
		want bool
	}{
		{1, true}, {2, false}, {3, true}, {4, false}, {5, true}, {6, false},
	}
	for _, tt := range tests {
		if got := v.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestViewWithout(t *testing.T) {
	v := NewView(1, 0, []ProcessID{1, 2, 3, 4})
	v2 := v.Without(map[ProcessID]bool{2: true, 4: true})
	if v2.Index != 1 {
		t.Errorf("Index = %d, want 1", v2.Index)
	}
	if v2.Size() != 2 || !v2.Contains(1) || !v2.Contains(3) {
		t.Errorf("members = %v, want [P1 P3]", v2.Members)
	}
	// Original untouched (immutability).
	if v.Size() != 4 {
		t.Errorf("original view mutated: %v", v)
	}
}

func TestViewWithoutSignatures(t *testing.T) {
	v := NewView(1, 0, []ProcessID{1, 2, 3, 4, 5})
	v.Excluded = []int{0, 0, 0, 0, 0}
	// Replay example 3 of §6: {Pi,Pj} exclude three processes at once.
	v1 := v.Without(map[ProcessID]bool{3: true, 4: true, 5: true})
	for i, e := range v1.Excluded {
		if e != 3 {
			t.Errorf("Excluded[%d] = %d, want 3", i, e)
		}
	}
	// {Pk,Pl} exclude one then two.
	w1 := v.Without(map[ProcessID]bool{5: true})
	w2 := w1.Without(map[ProcessID]bool{1: true, 2: true})
	for i, e := range w2.Excluded {
		if e != 3 {
			t.Errorf("w2.Excluded[%d] = %d, want 3", i, e)
		}
	}
	// Signature views: v1 = {P1:3, P2:3}, w1 = {P1:1,...}: intersect must be false,
	// because shared members carry different exclusion counts.
	if v1.Intersects(w1) {
		t.Error("signature views with different exclusion counts must not intersect")
	}
	// Plain views over the same member sets would intersect.
	p1, q1 := v1.Clone(), w1.Clone()
	p1.Excluded, q1.Excluded = nil, nil
	if !p1.Intersects(q1) {
		t.Error("plain views sharing members must intersect")
	}
}

func TestViewEqual(t *testing.T) {
	a := NewView(1, 0, []ProcessID{1, 2})
	b := NewView(1, 0, []ProcessID{1, 2})
	c := NewView(1, 1, []ProcessID{1, 2})
	d := NewView(2, 0, []ProcessID{1, 2})
	e := NewView(1, 0, []ProcessID{1, 3})
	if !a.Equal(b) {
		t.Error("identical views must be Equal")
	}
	for _, o := range []View{c, d, e} {
		if a.Equal(o) {
			t.Errorf("a.Equal(%v) = true, want false", o)
		}
	}
}

func TestViewSameMembers(t *testing.T) {
	a := NewView(1, 0, []ProcessID{1, 2})
	c := NewView(1, 5, []ProcessID{1, 2})
	if !a.SameMembers(c) {
		t.Error("SameMembers must ignore index")
	}
	if a.SameMembers(NewView(1, 0, []ProcessID{1})) {
		t.Error("different sizes must not be SameMembers")
	}
}

func TestViewCloneIndependence(t *testing.T) {
	a := NewView(1, 0, []ProcessID{1, 2})
	a.Excluded = []int{4, 4}
	b := a.Clone()
	b.Members[0] = 9
	b.Excluded[0] = 9
	if a.Members[0] != 1 || a.Excluded[0] != 4 {
		t.Error("Clone shares backing arrays")
	}
}

func TestViewString(t *testing.T) {
	v := NewView(2, 1, []ProcessID{1, 3})
	if got := v.String(); got != "V1_g2{P1,P3}" {
		t.Errorf("String() = %q", got)
	}
	v.Excluded = []int{2, 2}
	if got := v.String(); got != "V1_g2{P1:2,P3:2}" {
		t.Errorf("String() with signatures = %q", got)
	}
}

// Property: Without never grows a view and always bumps the index by one.
func TestViewWithoutProperty(t *testing.T) {
	f := func(raw []uint32, removeMask []bool) bool {
		if len(raw) == 0 {
			return true
		}
		ps := make([]ProcessID, len(raw))
		for i, r := range raw {
			ps[i] = ProcessID(r%64 + 1)
		}
		v := NewView(1, 0, ps)
		rm := make(map[ProcessID]bool)
		for i, p := range v.Members {
			if i < len(removeMask) && removeMask[i] {
				rm[p] = true
			}
		}
		v2 := v.Without(rm)
		if v2.Index != v.Index+1 {
			return false
		}
		if v2.Size() != v.Size()-len(rm) {
			return false
		}
		for _, p := range v2.Members {
			if rm[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
