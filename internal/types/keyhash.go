package types

// KeyHash maps an application key onto the 64-bit shard hash ring. It is
// the single hash every layer must agree on: the shard map partitions
// [0, 2^64) into arcs of this hash, KV.SnapshotRange cuts snapshots at
// its boundaries, daemons route requests by it and clients use it to
// pick an endpoint from learned arc hints. FNV-1a, inlined so the hot
// request path pays no hash.Hash64 allocation.
func KeyHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}
