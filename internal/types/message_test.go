package types

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindData, "data"},
		{KindNull, "null"},
		{KindSeqRequest, "seqreq"},
		{KindSuspect, "suspect"},
		{KindRefute, "refute"},
		{KindConfirmed, "confirmed"},
		{KindFormInvite, "form-invite"},
		{KindFormVote, "form-vote"},
		{KindStartGroup, "start-group"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestMessagePlaneClassification(t *testing.T) {
	tests := []struct {
		kind    Kind
		data    bool
		control bool
	}{
		{KindData, true, false},
		{KindNull, true, false},
		{KindStartGroup, true, false},
		{KindSeqRequest, false, false},
		{KindSuspect, false, true},
		{KindRefute, false, true},
		{KindConfirmed, false, true},
		{KindFormInvite, false, true},
		{KindFormVote, false, true},
	}
	for _, tt := range tests {
		m := &Message{Kind: tt.kind}
		if got := m.IsDataPlane(); got != tt.data {
			t.Errorf("%v.IsDataPlane() = %v, want %v", tt.kind, got, tt.data)
		}
		if got := m.IsControlPlane(); got != tt.control {
			t.Errorf("%v.IsControlPlane() = %v, want %v", tt.kind, got, tt.control)
		}
	}
}

func TestMessageID(t *testing.T) {
	m := &Message{Kind: KindData, Group: 2, Sender: 7, Origin: 3, Seq: 5}
	id := m.ID()
	if id.Sender != 3 || id.Group != 2 || id.Seq != 5 {
		t.Errorf("ID() = %v, want origin-based identity", id)
	}
}

func TestMessageCloneDeep(t *testing.T) {
	m := &Message{
		Kind:      KindRefute,
		Group:     1,
		Sender:    2,
		Origin:    2,
		Payload:   []byte{1, 2, 3},
		Detection: []Suspicion{{Proc: 4, LN: 9}},
		Invite:    []ProcessID{1, 2},
		Recovered: []Message{{Kind: KindData, Payload: []byte{9}}},
	}
	c := m.Clone()
	c.Payload[0] = 42
	c.Detection[0].LN = 1
	c.Invite[0] = 99
	c.Recovered[0].Payload[0] = 42
	if m.Payload[0] != 1 || m.Detection[0].LN != 9 || m.Invite[0] != 1 || m.Recovered[0].Payload[0] != 9 {
		t.Error("Clone shares memory with original")
	}
}

func TestTotalOrderLess(t *testing.T) {
	mk := func(num MsgNum, origin ProcessID, group GroupID, seq uint64) *Message {
		return &Message{Num: num, Origin: origin, Group: group, Seq: seq}
	}
	tests := []struct {
		name string
		a, b *Message
		want bool
	}{
		{"by num", mk(1, 9, 9, 9), mk(2, 1, 1, 1), true},
		{"num ties: by origin", mk(5, 1, 9, 9), mk(5, 2, 1, 1), true},
		{"origin ties: by group", mk(5, 1, 1, 9), mk(5, 1, 2, 1), true},
		{"group ties: by seq", mk(5, 1, 1, 1), mk(5, 1, 1, 2), true},
		{"equal", mk(5, 1, 1, 1), mk(5, 1, 1, 1), false},
		{"reverse", mk(6, 1, 1, 1), mk(5, 9, 9, 9), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TotalOrderLess(tt.a, tt.b); got != tt.want {
				t.Errorf("TotalOrderLess = %v, want %v", got, tt.want)
			}
		})
	}
}

// Property: TotalOrderLess is a strict weak ordering — irreflexive,
// asymmetric, and transitive over random messages.
func TestTotalOrderLessProperty(t *testing.T) {
	type key struct {
		Num    uint8
		Origin uint8
		Group  uint8
		Seq    uint8
	}
	mk := func(k key) *Message {
		return &Message{Num: MsgNum(k.Num), Origin: ProcessID(k.Origin), Group: GroupID(k.Group), Seq: uint64(k.Seq)}
	}
	f := func(a, b, c key) bool {
		ma, mb, mc := mk(a), mk(b), mk(c)
		if TotalOrderLess(ma, ma) {
			return false // irreflexive
		}
		if TotalOrderLess(ma, mb) && TotalOrderLess(mb, ma) {
			return false // asymmetric
		}
		if TotalOrderLess(ma, mb) && TotalOrderLess(mb, mc) && !TotalOrderLess(ma, mc) {
			return false // transitive
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: sorting by TotalOrderLess yields non-decreasing Num.
func TestTotalOrderSortNonDecreasingNum(t *testing.T) {
	f := func(nums []uint8) bool {
		ms := make([]*Message, len(nums))
		for i, n := range nums {
			ms[i] = &Message{Num: MsgNum(n), Origin: ProcessID(i), Seq: uint64(i)}
		}
		sort.Slice(ms, func(i, j int) bool { return TotalOrderLess(ms[i], ms[j]) })
		for i := 1; i < len(ms); i++ {
			if ms[i].Num < ms[i-1].Num {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
