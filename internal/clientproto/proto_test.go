package clientproto

import (
	"bufio"
	"bytes"
	"io"
	"testing"
	"time"
)

func roundTripRequest(t *testing.T, req Request) Request {
	t.Helper()
	frame := AppendRequest(nil, &req)
	body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := ParseRequest(body)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	return got
}

func roundTripResponse(t *testing.T, resp Response) Response {
	t.Helper()
	frame := AppendResponse(nil, &resp)
	body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := ParseResponse(body)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range []Request{
		{Op: OpGet, Key: "user:1"},
		{Op: OpPut, Key: "user:1", Value: "a value with spaces"},
		{Op: OpDel, Key: "gone"},
		{Op: OpBarrierGet, Key: "fence"},
		{Op: OpStatus},
		{Op: OpPut, Key: "", Value: ""},
	} {
		if got := roundTripRequest(t, req); got != req {
			t.Errorf("round trip %+v -> %+v", req, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range []Response{
		{Status: StOK, Found: true, Value: "v"},
		{Status: StOK, Found: false},
		{Status: StNotServing, Group: 7, Addr: "127.0.0.1:9999"},
		{Status: StNotServing, Group: 1},
		{Status: StNotServing, Group: 1<<31 + 3, Addr: "10.0.0.2:4100",
			Epoch: 12, RangeLo: 1 << 62, RangeHi: 1 << 63},
		{Status: StNotServing, Group: 1<<31 + 1, Addr: "10.0.0.3:4100",
			Epoch: 5, RangeLo: 3 << 62, RangeHi: 0},
		{Status: StRetry, RetryAfter: 250 * time.Millisecond, Reason: "reconciling"},
		{Status: StStatus, Self: 3, Group: 2, Applied: 99, Digest: 0xdeadbeef, Keys: 41, Ready: true, Members: 5},
		{Status: StStatus, Self: 1, Group: 4, Applied: 12, Ready: true, Members: 3,
			Delivered: 100, Drops: 2, QueueDepth: 7,
			Durable: true, WALGroup: 4, WALIndex: 12, SnapGroup: 2, SnapIndex: 8},
		{Status: StStatus, Self: 2, Durable: false, WALGroup: 0, WALIndex: 0},
		{Status: StErr, Err: "bad key"},
		{Status: StUnknown, Err: "write proposed but not confirmed"},
	} {
		if got := roundTripResponse(t, resp); got != resp {
			t.Errorf("round trip %+v -> %+v", resp, got)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseRequest([]byte{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := ParseRequest([]byte{99, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := ParseRequest([]byte{OpGet, 0, 10, 'x'}); err == nil {
		t.Error("truncated key accepted")
	}
	if _, err := ParseResponse([]byte{}); err == nil {
		t.Error("empty response accepted")
	}
	if _, err := ParseResponse([]byte{77}); err == nil {
		t.Error("unknown status accepted")
	}
	if _, err := ParseResponse([]byte{StOK, 1, 0, 0, 0, 9, 'x'}); err == nil {
		t.Error("truncated value accepted")
	}
}

func TestReadFrameBounds(t *testing.T) {
	var hdr [4]byte
	hdr[0] = 0xff // 4 GiB-ish frame
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr[:])), nil); err == nil {
		t.Error("oversized frame accepted")
	}
	// Clean EOF between frames surfaces as io.EOF.
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil)), nil); err != io.EOF {
		t.Errorf("clean close: err = %v, want io.EOF", err)
	}
	// A torn header is also a clean-enough close.
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader([]byte{0, 0})), nil); err != io.EOF {
		t.Errorf("torn header: err = %v, want io.EOF", err)
	}
}

func TestMultipleFramesOneStream(t *testing.T) {
	var stream []byte
	stream = AppendRequest(stream, &Request{Op: OpPut, Key: "a", Value: "1"})
	stream = AppendRequest(stream, &Request{Op: OpGet, Key: "a"})
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	b1, err := ReadFrame(br, buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ParseRequest(b1)
	if err != nil || r1.Op != OpPut {
		t.Fatalf("frame 1: %+v %v", r1, err)
	}
	b2, err := ReadFrame(br, b1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ParseRequest(b2)
	if err != nil || r2.Op != OpGet || r2.Key != "a" {
		t.Fatalf("frame 2: %+v %v", r2, err)
	}
}

func TestValidKeyAndValueBounds(t *testing.T) {
	if err := ValidKey("ok-key"); err != nil {
		t.Errorf("good key rejected: %v", err)
	}
	long := string(make([]byte, MaxKeyLen+1))
	for _, bad := range []string{"", "has space", "has\nnewline", long} {
		if err := ValidKey(bad); err == nil {
			t.Errorf("key %q (len %d) accepted", bad[:min(len(bad), 12)], len(bad))
		}
	}
	// A key at exactly the bound is fine — it still frames correctly.
	if err := ValidKey(string(bytes.Repeat([]byte{'k'}, MaxKeyLen))); err != nil {
		t.Errorf("max-length key rejected: %v", err)
	}
	if err := ValidValue(string(make([]byte, MaxValueLen))); err != nil {
		t.Errorf("max-length value rejected: %v", err)
	}
	if err := ValidValue(string(make([]byte, MaxValueLen+1))); err == nil {
		t.Error("oversized value accepted")
	}
	// The request a maximal key+value produce still fits MaxFrame.
	frame := AppendRequest(nil, &Request{
		Op:    OpPut,
		Key:   string(bytes.Repeat([]byte{'k'}, MaxKeyLen)),
		Value: string(make([]byte, MaxValueLen)),
	})
	if len(frame)-4 > MaxFrame {
		t.Errorf("maximal valid request is %d bytes, exceeds MaxFrame", len(frame)-4)
	}
}

// TestNotServingShardTailCompat pins the v2 wire extension contract: a
// pre-sharding NOT_SERVING frame (no tail bytes) still parses with a
// zero epoch, and a v2 frame parsed field-by-field lands the tail where
// the encoder put it.
func TestNotServingShardTailCompat(t *testing.T) {
	// Hand-build the v1 frame body: status | group | addrLen | addr.
	body := []byte{StNotServing}
	body = append(body, 0, 0, 0, 0, 0, 0, 0, 9) // group 9
	addr := "host:1234"
	body = append(body, 0, byte(len(addr)))
	body = append(body, addr...)
	got, err := ParseResponse(body)
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if got.Group != 9 || got.Addr != addr || got.Epoch != 0 || got.RangeLo != 0 || got.RangeHi != 0 {
		t.Fatalf("v1 frame misparsed: %+v", got)
	}
}

// TestStatusDurabilityTailCompat pins the v3 wire extension contract: a
// v2 STATUS frame (observability tail but no durability tail) parses
// with zero durability fields, and the durability tail sits at the very
// end of the frame where a v2 decoder simply never looks.
func TestStatusDurabilityTailCompat(t *testing.T) {
	full := Response{Status: StStatus, Self: 3, Group: 9, Applied: 50,
		Digest: 0xfeed, Keys: 10, Ready: true, Members: 3,
		Delivered: 77, Drops: 1, QueueDepth: 4,
		Durable: true, WALGroup: 9, WALIndex: 50, SnapGroup: 9, SnapIndex: 32}
	frame := AppendResponse(nil, &full)
	body := frame[4:] // strip the length header

	// Chop the 33-byte durability tail: what a v2 daemon would send.
	v2 := body[:len(body)-33]
	got, err := ParseResponse(v2)
	if err != nil {
		t.Fatalf("v2 frame rejected: %v", err)
	}
	if got.Delivered != 77 || got.QueueDepth != 4 {
		t.Fatalf("v2 observability tail misparsed: %+v", got)
	}
	if got.Durable || got.WALGroup != 0 || got.WALIndex != 0 || got.SnapGroup != 0 || got.SnapIndex != 0 {
		t.Fatalf("v2 frame grew durability fields: %+v", got)
	}

	// Also chop the v2 tail: a v1 daemon's frame still parses clean.
	v1 := body[:len(v2)-24]
	got, err = ParseResponse(v1)
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if got.Delivered != 0 || got.Durable {
		t.Fatalf("v1 frame grew tail fields: %+v", got)
	}
	if got.Applied != 50 || got.Digest != 0xfeed {
		t.Fatalf("v1 frame misparsed: %+v", got)
	}
}
