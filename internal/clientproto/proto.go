// Package clientproto defines the framed TCP protocol spoken between a
// newtopd client listener and the public client package (newtop/client).
// It is deliberately tiny: length-prefixed frames, one request and one
// response struct, and explicit status codes for the routing decisions a
// client must make — serve, redirect, retry.
//
// # Framing
//
// Every frame is a 4-byte big-endian length followed by that many body
// bytes. Bodies are bounded by MaxFrame; an oversized length is a protocol
// error and the connection is dropped.
//
// # Requests
//
//	u8 op | u16 keyLen | key | u32 valLen | val
//
// Ops: OpGet, OpPut, OpDel, OpBarrierGet (linearizable read — the server
// runs a total-order barrier before reading), OpStatus.
//
// # Responses
//
// The first body byte is the status; the rest depends on it:
//
//	StOK         u8 found | u32 valLen | val
//	StNotServing u64 group | u16 addrLen | addr
//	             [| u64 epoch | u64 rangeLo | u64 rangeHi]
//	             — redirect: this daemon cannot serve; group names the
//	             serving group it knows of, addr (may be empty) is another
//	             daemon's client address. The bracketed tail is the v2
//	             "wrong shard" hint: when epoch > 0 the redirect carries
//	             the shard-map version and the hash arc [rangeLo, rangeHi)
//	             (rangeHi 0 = ring top) the named group owns, so the
//	             client can cache the route for every key in the arc and
//	             drop stale routes on an epoch bump. Encoders always
//	             append the tail; decoders read it only when the bytes
//	             are present, so either side may lag the other.
//	StRetry      u32 afterMillis | u16 reasonLen | reason — transient: the
//	             daemon is mid-catch-up/reconcile/cut-over; retry HERE
//	StStatus     u32 self | u64 group | u64 applied | u64 digest |
//	             u32 keys | u8 ready | u32 members
//	             [| u64 delivered | u64 drops | u64 queueDepth]
//	             [| u8 durable | u64 walGroup | u64 walIndex |
//	                u64 snapGroup | u64 snapIndex]
//	             — the bracketed tails are the v2 observability and v3
//	             durability extensions: encoders always append them,
//	             decoders read each only when its bytes are present, so
//	             either side may lag the other by any number of versions
//	StErr        u16 msgLen | msg                    — the request itself
//	             was malformed; retrying is pointless
//	StUnknown    u16 msgLen | msg                    — a write was proposed
//	             but its application could not be confirmed; the outcome
//	             is ambiguous (clients surface ErrUnacked, never resend
//	             automatically)
package clientproto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// MaxFrame bounds a single framed request or response.
const MaxFrame = 1 << 20

// MaxKeyLen bounds a key: the wire carries key lengths as uint16, and a
// longer key would silently misframe the request.
const MaxKeyLen = 1<<16 - 1

// MaxValueLen bounds a value so that any request fits MaxFrame with
// headroom for the op byte and length fields.
const MaxValueLen = MaxFrame - MaxKeyLen - 64

// Request operations.
const (
	OpGet byte = iota + 1
	OpPut
	OpDel
	OpBarrierGet
	OpStatus
)

// Response statuses.
const (
	StOK byte = iota + 1
	StNotServing
	StRetry
	StStatus
	StErr
	// StUnknown is the server-side ambiguous-write answer: the command
	// was proposed into the total order, but the daemon could not
	// confirm its application (e.g. the serving replica closed during a
	// cut-over mid-ack). Clients must surface it like a torn connection
	// (ErrUnacked) — resending is the caller's decision — never retry it
	// automatically: the first copy may well apply.
	StUnknown
)

// Request is one client request.
type Request struct {
	Op    byte
	Key   string
	Value string // OpPut only; may contain spaces
}

// Response is one server response; which fields are meaningful depends on
// Status (see the package comment).
type Response struct {
	Status byte

	// StOK
	Found bool
	Value string

	// StNotServing / StStatus
	Group uint64
	// StNotServing: another daemon's client address ("" when unknown)
	Addr string
	// StNotServing v2 "wrong shard" tail (zero when talking to a
	// pre-sharding daemon, or when the redirect is a lineage redirect
	// rather than a shard-routing one): the shard-map epoch the hint is
	// valid at and the hash arc the named group owns.
	Epoch   uint64
	RangeLo uint64
	RangeHi uint64 // exclusive; 0 means the top of the hash ring

	// StRetry
	RetryAfter time.Duration
	Reason     string

	// StStatus
	Self    uint32
	Applied uint64
	Digest  uint64
	Keys    uint32
	Ready   bool
	// Members is the serving group's current view size — the number of
	// machines an acked write is currently replicated across. A client
	// that needs more than view-level durability watches this: during a
	// partition it can drop to 1.
	Members uint32

	// StStatus v2 observability tail (zero when talking to a pre-v2
	// daemon): total-order deliveries this process has emitted, messages
	// silently dropped across all layers, and the engine's
	// received-but-undelivered queue depth.
	Delivered  uint64
	Drops      uint64
	QueueDepth uint64

	// StStatus v3 durability tail (zero when talking to a pre-v3
	// daemon): whether the daemon runs with a data directory, the
	// serving group's last WAL-appended log position and its latest
	// snapshot cut. Positions are (group incarnation, delivery index);
	// all-zero means no position yet (or durability off — check
	// Durable).
	Durable   bool
	WALGroup  uint64
	WALIndex  uint64
	SnapGroup uint64
	SnapIndex uint64

	// StErr
	Err string
}

// ValidKey is THE key rule, shared by client-side rejection and
// server-side StErr responses: non-empty, no space or newline (the KV
// command grammar), and within the wire format's uint16 length field.
func ValidKey(key string) error {
	if key == "" {
		return fmt.Errorf("empty key")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("key of %d bytes exceeds %d", len(key), MaxKeyLen)
	}
	for i := 0; i < len(key); i++ {
		if key[i] == ' ' || key[i] == '\n' {
			return fmt.Errorf("key contains whitespace")
		}
	}
	return nil
}

// ValidValue bounds a value to what a request frame can carry.
func ValidValue(val string) error {
	if len(val) > MaxValueLen {
		return fmt.Errorf("value of %d bytes exceeds %d", len(val), MaxValueLen)
	}
	return nil
}

// AppendRequest appends req as one length-prefixed frame to dst.
func AppendRequest(dst []byte, req *Request) []byte {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, req.Op)
	dst = appendString16(dst, req.Key)
	dst = appendString32(dst, req.Value)
	binary.BigEndian.PutUint32(dst[off:], uint32(len(dst)-off-4))
	return dst
}

// AppendResponse appends resp as one length-prefixed frame to dst.
func AppendResponse(dst []byte, resp *Response) []byte {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, resp.Status)
	switch resp.Status {
	case StOK:
		dst = append(dst, b2u8(resp.Found))
		dst = appendString32(dst, resp.Value)
	case StNotServing:
		dst = binary.BigEndian.AppendUint64(dst, resp.Group)
		dst = appendString16(dst, resp.Addr)
		dst = binary.BigEndian.AppendUint64(dst, resp.Epoch)
		dst = binary.BigEndian.AppendUint64(dst, resp.RangeLo)
		dst = binary.BigEndian.AppendUint64(dst, resp.RangeHi)
	case StRetry:
		dst = binary.BigEndian.AppendUint32(dst, uint32(resp.RetryAfter/time.Millisecond))
		dst = appendString16(dst, resp.Reason)
	case StStatus:
		dst = binary.BigEndian.AppendUint32(dst, resp.Self)
		dst = binary.BigEndian.AppendUint64(dst, resp.Group)
		dst = binary.BigEndian.AppendUint64(dst, resp.Applied)
		dst = binary.BigEndian.AppendUint64(dst, resp.Digest)
		dst = binary.BigEndian.AppendUint32(dst, resp.Keys)
		dst = append(dst, b2u8(resp.Ready))
		dst = binary.BigEndian.AppendUint32(dst, resp.Members)
		dst = binary.BigEndian.AppendUint64(dst, resp.Delivered)
		dst = binary.BigEndian.AppendUint64(dst, resp.Drops)
		dst = binary.BigEndian.AppendUint64(dst, resp.QueueDepth)
		dst = append(dst, b2u8(resp.Durable))
		dst = binary.BigEndian.AppendUint64(dst, resp.WALGroup)
		dst = binary.BigEndian.AppendUint64(dst, resp.WALIndex)
		dst = binary.BigEndian.AppendUint64(dst, resp.SnapGroup)
		dst = binary.BigEndian.AppendUint64(dst, resp.SnapIndex)
	case StErr, StUnknown:
		dst = appendString16(dst, resp.Err)
	}
	binary.BigEndian.PutUint32(dst[off:], uint32(len(dst)-off-4))
	return dst
}

// ReadFrame reads one length-prefixed frame body from r, reusing buf when
// it is large enough. io.EOF is returned untouched on a clean close
// between frames.
func ReadFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("clientproto: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("clientproto: short frame: %w", err)
	}
	return buf, nil
}

// ParseRequest decodes a request frame body.
func ParseRequest(body []byte) (Request, error) {
	var req Request
	d := decoder{buf: body}
	req.Op = d.u8()
	req.Key = d.string16()
	req.Value = d.string32()
	if d.err != nil {
		return Request{}, fmt.Errorf("clientproto: bad request: %w", d.err)
	}
	if req.Op < OpGet || req.Op > OpStatus {
		return Request{}, fmt.Errorf("clientproto: unknown op %d", req.Op)
	}
	return req, nil
}

// ParseResponse decodes a response frame body.
func ParseResponse(body []byte) (Response, error) {
	var resp Response
	d := decoder{buf: body}
	resp.Status = d.u8()
	switch resp.Status {
	case StOK:
		resp.Found = d.u8() != 0
		resp.Value = d.string32()
	case StNotServing:
		resp.Group = d.u64()
		resp.Addr = d.string16()
		// v2 shard-hint tail: optional — absent from pre-sharding daemons.
		if d.err == nil && len(d.buf) >= 24 {
			resp.Epoch = d.u64()
			resp.RangeLo = d.u64()
			resp.RangeHi = d.u64()
		}
	case StRetry:
		resp.RetryAfter = time.Duration(d.u32()) * time.Millisecond
		resp.Reason = d.string16()
	case StStatus:
		resp.Self = d.u32()
		resp.Group = d.u64()
		resp.Applied = d.u64()
		resp.Digest = d.u64()
		resp.Keys = d.u32()
		resp.Ready = d.u8() != 0
		resp.Members = d.u32()
		// v2 observability tail: optional — absent from pre-v2 daemons.
		if d.err == nil && len(d.buf) >= 24 {
			resp.Delivered = d.u64()
			resp.Drops = d.u64()
			resp.QueueDepth = d.u64()
		}
		// v3 durability tail: optional — absent from pre-v3 daemons.
		if d.err == nil && len(d.buf) >= 33 {
			resp.Durable = d.u8() != 0
			resp.WALGroup = d.u64()
			resp.WALIndex = d.u64()
			resp.SnapGroup = d.u64()
			resp.SnapIndex = d.u64()
		}
	case StErr, StUnknown:
		resp.Err = d.string16()
	default:
		return Response{}, fmt.Errorf("clientproto: unknown status %d", resp.Status)
	}
	if d.err != nil {
		return Response{}, fmt.Errorf("clientproto: bad response: %w", d.err)
	}
	return resp, nil
}

func appendString16(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendString32(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// decoder is a tiny cursor with sticky errors; every accessor returns the
// zero value after the first short read.
type decoder struct {
	buf []byte
	err error
}

var errShort = fmt.Errorf("truncated field")

func (d *decoder) take(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.err = errShort
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) string16() string {
	n := d.take(2)
	if n == nil {
		return ""
	}
	return string(d.take(int(binary.BigEndian.Uint16(n))))
}

func (d *decoder) string32() string {
	n := d.take(4)
	if n == nil {
		return ""
	}
	ln := binary.BigEndian.Uint32(n)
	if uint32(len(d.buf)) < ln {
		d.err = errShort
		return ""
	}
	return string(d.take(int(ln)))
}
