package daemon

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"newtop"
)

// durable returns a startCluster mutate hook giving every daemon a data
// directory under base plus the given fsync configuration.
func durable(base, fsync string, interval time.Duration, snapEvery int) func(newtop.ProcessID, *Config) {
	return func(id newtop.ProcessID, cfg *Config) {
		cfg.DataDir = filepath.Join(base, fmt.Sprintf("p%d", id))
		cfg.Fsync = fsync
		cfg.FsyncInterval = interval
		cfg.SnapshotEvery = snapEvery
		if os.Getenv("NEWTOP_TEST_LOG") != "" {
			cfg.Logf = func(f string, a ...any) { fmt.Printf("[P%d] "+f+"\n", append([]any{id}, a...)...) }
		}
	}
}

func recoveryCounter(d *Daemon, name string) uint64 {
	return d.Proc().Metrics().Counters[name]
}

// excluded reports whether d's serving view no longer contains p.
func excluded(d *Daemon, p newtop.ProcessID) bool {
	v, err := d.Proc().View(d.ServingGroup())
	return err == nil && !v.Contains(p)
}

// waitRejoined waits until the restarted daemon and a survivor agree on a
// serving group newer than old.
func waitRejoined(t *testing.T, restarted, survivor *Daemon, old newtop.GroupID) {
	t.Helper()
	waitFor(t, 20*time.Second, "restarted daemon to rejoin", func() bool {
		g := restarted.ServingGroup()
		return g > old && survivor.ServingGroup() == g
	})
}

// TestRestartCleanRejoinsFastPath: stop a daemon cleanly, restart it from
// its data dir. The restored state must be present locally before any
// network traffic, and the rejoin must ride the reconcile fast path — no
// full snapshot transfer.
func TestRestartCleanRejoinsFastPath(t *testing.T) {
	base := t.TempDir()
	_, ds := startCluster(t, 3, durable(base, "always", 0, 4))
	c, err := clientConfig().Dial(ds[1].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Every daemon persists on its own apply; let P3's WAL drain the tail
	// before stopping it (a barrier read at P3 forces its applies).
	c3, err := clientConfig().Dial(ds[3].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c3.BarrierGet("k9"); err != nil {
		t.Fatal(err)
	}
	_ = c3.Close()

	// P3 (non-lowest: the recovered daemon cannot initiate the merge) goes
	// away cleanly; the survivors exclude it and move on.
	old := ds[3].ServingGroup()
	cfg3 := ds[3].cfg
	if err := ds[3].Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "survivors to exclude P3", func() bool {
		return excluded(ds[1], 3)
	})
	if err := c.Put("during-outage", "written"); err != nil {
		t.Fatal(err)
	}

	d3, err := Start(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	ds[3] = d3 // cluster cleanup closes the new incarnation

	// Local recovery happened inside Start: all ten acked writes are back
	// before the first reconcile message.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		if v, ok := d3.KV().Get(k); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("after restart, %s = %q %v; want recovered locally", k, v, ok)
		}
	}
	if n := recoveryCounter(d3, "newtop_recovery_replays_total"); n != 1 {
		t.Fatalf("replays = %d, want 1", n)
	}

	waitRejoined(t, d3, ds[1], old)
	c3, err = clientConfig().Dial(d3.ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c3.Close() }()
	if v, ok, err := c3.BarrierGet("during-outage"); err != nil || !ok || v != "written" {
		t.Fatalf("outage-era write at restarted P3 = %q %v %v", v, ok, err)
	}
	if v, ok, err := c3.BarrierGet("k0"); err != nil || !ok || v != "v0" {
		t.Fatalf("pre-restart write at restarted P3 = %q %v %v", v, ok, err)
	}
	if n := recoveryCounter(d3, "newtop_recovery_full_transfers_total"); n != 0 {
		t.Fatalf("full transfers = %d, want 0 (fast path)", n)
	}
	if n := recoveryCounter(d3, "newtop_recovery_fastpath_total"); n != 1 {
		t.Fatalf("fastpath = %d, want 1", n)
	}
}

// TestRestartKillNineFsyncAlways is the acked⇒durable contract: writes
// acked by a daemon running fsync=always must ALL be on its disk when it
// is killed -9, before any peer repair.
func TestRestartKillNineFsyncAlways(t *testing.T) {
	base := t.TempDir()
	_, ds := startCluster(t, 3, durable(base, "always", 0, 8))
	// Ack every write through P3 itself: its persist-before-ack is the
	// guarantee under test.
	c3, err := clientConfig().Dial(ds[3].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := c3.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = c3.Close()

	old := ds[3].ServingGroup()
	cfg3 := ds[3].cfg
	ds[3].Kill()

	d3, err := Start(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	ds[3] = d3
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if v, ok := d3.KV().Get(k); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked write %s lost across kill -9: got %q %v", k, v, ok)
		}
	}

	waitRejoined(t, d3, ds[1], old)
	if n := recoveryCounter(d3, "newtop_recovery_full_transfers_total"); n != 0 {
		t.Fatalf("full transfers = %d, want 0", n)
	}
}

// TestRestartKillNineMidFsyncInterval: under fsync=interval a kill -9
// may tear the unsynced WAL tail. Recovery must truncate cleanly —
// whatever it restores is a correct prefix, never garbage — and the
// reconcile rejoin repairs the lost suffix from the survivors.
func TestRestartKillNineMidFsyncInterval(t *testing.T) {
	base := t.TempDir()
	// An hour-long window: nothing after the baseline snapshot is synced,
	// so the kill tears mid-stream.
	_, ds := startCluster(t, 3, durable(base, "interval", time.Hour, 1<<20))
	c3, err := clientConfig().Dial(ds[3].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	want := map[string]string{}
	for i := 0; i < n; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if err := c3.Put(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	_ = c3.Close()

	old := ds[3].ServingGroup()
	cfg3 := ds[3].cfg
	ds[3].Kill()

	d3, err := Start(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	ds[3] = d3
	// Bounded loss: the restored state may be missing a suffix, but every
	// key it does hold must carry the acked value (no corruption).
	for k, v := range want {
		if got, ok := d3.KV().Get(k); ok && got != v {
			t.Fatalf("recovered %s = %q, want %q (corrupt recovery)", k, got, v)
		}
	}
	if n := recoveryCounter(d3, "newtop_recovery_replays_total"); n != 1 {
		t.Fatalf("replays = %d, want 1", n)
	}

	// The divergence is repaired by the reconcile rejoin — still never a
	// full snapshot transfer.
	waitRejoined(t, d3, ds[1], old)
	c3, err = clientConfig().Dial(d3.ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c3.Close() }()
	for k, v := range want {
		if got, ok, err := c3.BarrierGet(k); err != nil || !ok || got != v {
			t.Fatalf("after rejoin, %s = %q %v %v; want %q", k, got, ok, err, v)
		}
	}
	if n := recoveryCounter(d3, "newtop_recovery_full_transfers_total"); n != 0 {
		t.Fatalf("full transfers = %d, want 0", n)
	}
}

// TestRestartIntoChangedView: while the victim is down, the cluster moves
// to a successor group it has never heard of (a join). The restart must
// still find its way in — announce with the stale tag, get pulled into
// the next merge — via reconcile, not a snapshot stream.
func TestRestartIntoChangedView(t *testing.T) {
	base := t.TempDir()
	net, ds := startCluster(t, 3, durable(base, "always", 0, 4))
	c, err := clientConfig().Dial(ds[1].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Put("before", "1"); err != nil {
		t.Fatal(err)
	}
	c3, err := clientConfig().Dial(ds[3].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c3.BarrierGet("before"); err != nil {
		t.Fatal(err)
	}
	_ = c3.Close()

	cfg3 := ds[3].cfg
	ds[3].Kill()
	waitFor(t, 10*time.Second, "survivors to exclude P3", func() bool {
		return excluded(ds[1], 3)
	})
	excl := ds[1].ServingGroup()

	// P4 joins while P3 is down: the cluster's lineage moves past anything
	// P3's disk knows about.
	d4, err := Start(Config{
		Self:              4,
		Network:           net,
		ClientAddr:        "127.0.0.1:0",
		Omega:             15 * time.Millisecond,
		HealProbeInterval: 40 * time.Millisecond,
		Join:              excl + 1,
		Initial:           []newtop.ProcessID{1, 2, 4},
		Settle:            200 * time.Millisecond,
		DrainWindow:       250 * time.Millisecond,
		InitiateTimeout:   800 * time.Millisecond,
		Logf:              quiet,
		DataDir:           filepath.Join(base, "p4"),
		Fsync:             "always",
		SnapshotEvery:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds[4] = d4
	waitFor(t, 10*time.Second, "join to cut service over", func() bool {
		return ds[1].ServingGroup() > excl && d4.ServingGroup() == ds[1].ServingGroup()
	})
	joined := ds[1].ServingGroup()
	if err := c.Put("during", "2"); err != nil {
		t.Fatal(err)
	}

	// P3 restarts with a WAL from a group two incarnations stale.
	d3, err := Start(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	ds[3] = d3
	waitRejoined(t, d3, ds[1], joined)
	c3, err = clientConfig().Dial(d3.ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c3.Close() }()
	for _, kv := range [][2]string{{"before", "1"}, {"during", "2"}} {
		if v, ok, err := c3.BarrierGet(kv[0]); err != nil || !ok || v != kv[1] {
			t.Fatalf("%s at restarted P3 = %q %v %v; want %q", kv[0], v, ok, err, kv[1])
		}
	}
	if n := recoveryCounter(d3, "newtop_recovery_full_transfers_total"); n != 0 {
		t.Fatalf("full transfers = %d, want 0", n)
	}
}

// TestRestartSupersededDataDirDiscarded: a data dir claiming a FUTURE
// incarnation (relative to the cluster) is a lineage the cluster never
// ratified — a disk restored from the wrong machine, a split-brain
// artifact. The invitation into a lower group proves it stale: the
// daemon must discard it, wipe the restored state and rejoin empty.
func TestRestartSupersededDataDirDiscarded(t *testing.T) {
	base := t.TempDir()
	// Plant a fabricated g50 lineage in P3's directory before the cluster
	// has ever run.
	dir3 := filepath.Join(base, "p3")
	st, err := newtop.OpenStore(newtop.StoreOptions{Dir: dir3, Policy: newtop.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	l, err := st.OpenGroup(50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	ghost := newtop.NewKV()
	ghost.Apply([]byte("put ghost lives"))
	if err := l.CutSnapshot(newtop.LogPos{Group: 50, Index: 0}, 1, ghost.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveMeta(newtop.StoreMeta{Group: 50, Members: []newtop.ProcessID{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	_, ds := startCluster(t, 3, durable(base, "always", 0, 4))
	// P3 came up in recovered mode believing in g50; P1 and P2 bootstrap
	// g1, find P3 silent in it, exclude it, then hear its announcements.
	d3 := ds[3]
	if v, ok := d3.KV().Get("ghost"); !ok || v != "lives" {
		t.Fatalf("planted state not restored: %q %v", v, ok)
	}
	c, err := clientConfig().Dial(ds[1].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Put("real", "data"); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 20*time.Second, "P3 to discard and rejoin", func() bool {
		g := d3.ServingGroup()
		return g != 0 && g == ds[1].ServingGroup() &&
			recoveryCounter(d3, "newtop_recovery_discards_total") >= 1
	})
	c3, err := clientConfig().Dial(d3.ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c3.Close() }()
	if v, ok, err := c3.BarrierGet("real"); err != nil || !ok || v != "data" {
		t.Fatalf("cluster data at P3 = %q %v %v", v, ok, err)
	}
	if v, ok, _ := c3.BarrierGet("ghost"); ok {
		t.Fatalf("fabricated key survived the discard: %q", v)
	}
	if n := recoveryCounter(d3, "newtop_recovery_full_transfers_total"); n < 1 {
		t.Fatalf("full transfers = %d, want ≥1 (discard path)", n)
	}
}
