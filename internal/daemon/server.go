package daemon

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"

	"newtop"
	"newtop/internal/clientproto"
)

// writeTimeout bounds one client response write; a stuck client costs its
// own connection, nothing else.
const writeTimeout = 10 * time.Second

// clientServer is the daemon's client-protocol listener: one goroutine
// per connection, requests served against the daemon's serving replica.
type clientServer struct {
	d  *Daemon
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

func newClientServer(d *Daemon, addr string) (*clientServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &clientServer{d: d, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *clientServer) addr() string { return s.ln.Addr().String() }

func (s *clientServer) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *clientServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *clientServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	var rbuf, wbuf []byte
	for {
		body, err := clientproto.ReadFrame(br, rbuf)
		if err != nil {
			return // client gone, or protocol violation: drop the conn
		}
		rbuf = body
		var resp clientproto.Response
		req, err := clientproto.ParseRequest(body)
		if err != nil {
			resp = clientproto.Response{Status: clientproto.StErr, Err: err.Error()}
		} else {
			resp = s.d.serveRequest(&req)
		}
		wbuf = clientproto.AppendResponse(wbuf[:0], &resp)
		_ = conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		if _, err := conn.Write(wbuf); err != nil {
			return
		}
	}
}

// serveRequest executes one client request against the serving replica,
// translating the daemon's transitional states into the protocol's
// routing answers: NOT_SERVING (go elsewhere — this daemon is still
// catching up into its first group) and RETRY (stay — the daemon is
// mid-reconcile or mid-cut-over; everyone else is too, or will be).
func (d *Daemon) serveRequest(req *clientproto.Request) clientproto.Response {
	if d.smap != nil {
		return d.serveSharded(req)
	}
	d.mu.Lock()
	rep, g := d.reps[d.serving], d.serving
	recon := d.recon[g]
	cutover := d.pendingInvites > 0
	d.mu.Unlock()

	// A formation vote is in flight: the serving pointer is about to
	// move. Writes acked into the old group NOW would fall outside the
	// cross-group delivery gate's snapshot-cut guarantee — a joiner
	// catching up in the successor group could miss them. Hold writes
	// until the cut-over lands (reads stay safe: the old replica's state
	// is still read-your-writes for everything it acked).
	if cutover && (req.Op == clientproto.OpPut || req.Op == clientproto.OpDel) {
		return clientproto.Response{Status: clientproto.StRetry,
			RetryAfter: 10 * time.Millisecond, Reason: "group cut-over in progress"}
	}

	if rep == nil {
		return clientproto.Response{Status: clientproto.StNotServing, Group: uint64(g), Addr: d.peerHint()}
	}
	if req.Op == clientproto.OpStatus {
		// Status is pure observability — serve it even while catching up
		// or reconciling (it is how progress is watched from outside).
		members := 0
		if v, err := d.proc.View(g); err == nil {
			members = v.Size()
		}
		delivered, drops, queueDepth := d.obsStatus()
		durable, wal, snap := d.DurabilityStatus()
		return clientproto.Response{
			Status:     clientproto.StStatus,
			Self:       uint32(d.cfg.Self),
			Group:      uint64(g),
			Applied:    rep.AppliedSeq(),
			Digest:     rep.Digest(),
			Keys:       uint32(d.kv.Len()),
			Ready:      rep.CaughtUp(),
			Members:    uint32(members),
			Delivered:  delivered,
			Drops:      drops,
			QueueDepth: queueDepth,
			Durable:    durable,
			WALGroup:   uint64(wal.Group),
			WALIndex:   wal.Index,
			SnapGroup:  uint64(snap.Group),
			SnapIndex:  snap.Index,
		}
	}
	if !rep.CaughtUp() {
		if recon {
			// Reconciling after a heal: transient and cluster-wide;
			// redirecting would just find another reconciling daemon.
			return clientproto.Response{Status: clientproto.StRetry,
				RetryAfter: d.cfg.Settle / 4, Reason: "reconciling"}
		}
		// Catching up into the cluster (a join): incumbents can serve.
		if hint := d.peerHint(); hint != "" {
			return clientproto.Response{Status: clientproto.StNotServing, Group: uint64(g), Addr: hint}
		}
		return clientproto.Response{Status: clientproto.StRetry,
			RetryAfter: d.cfg.Settle / 4, Reason: "catching up"}
	}

	switch req.Op {
	case clientproto.OpGet:
		return d.serveRead(rep, d.kv, req.Key, false)
	case clientproto.OpBarrierGet:
		return d.serveRead(rep, d.kv, req.Key, true)
	case clientproto.OpPut:
		if err := clientproto.ValidKey(req.Key); err != nil {
			return clientproto.Response{Status: clientproto.StErr, Err: err.Error()}
		}
		if err := clientproto.ValidValue(req.Value); err != nil {
			// The library client rejects these before sending; enforce
			// the same contract against hand-rolled clients.
			return clientproto.Response{Status: clientproto.StErr, Err: err.Error()}
		}
		return d.serveWrite(rep, g, "put "+req.Key+" "+req.Value)
	case clientproto.OpDel:
		if err := clientproto.ValidKey(req.Key); err != nil {
			return clientproto.Response{Status: clientproto.StErr, Err: err.Error()}
		}
		return d.serveWrite(rep, g, "del "+req.Key)
	}
	return clientproto.Response{Status: clientproto.StErr, Err: "unknown op"}
}

// serveRead runs a read with read-your-writes consistency (every write
// this daemon acknowledged is visible), optionally behind a total-order
// barrier (linearizable).
func (d *Daemon) serveRead(rep *newtop.Replica, kv *newtop.KV, key string, barrier bool) clientproto.Response {
	if barrier {
		if err := rep.Barrier(); err != nil {
			return retryOn(err)
		}
	}
	var (
		val   string
		found bool
	)
	if err := rep.Read(func(newtop.StateMachine) { val, found = kv.Get(key) }); err != nil {
		return retryOn(err)
	}
	return clientproto.Response{Status: clientproto.StOK, Found: found, Value: val}
}

// serveWrite proposes one command and acknowledges only after it has been
// applied through the group's total order — an acked write is replicated
// and survives this daemon's crash.
//
// The two failure points differ fundamentally: a failed Propose never
// entered the order, so RETRY is safe; a failed ack-wait AFTER a
// successful Propose (the serving replica closed mid-cut-over) leaves a
// command in flight that may well apply — answering RETRY there would
// make the client resubmit a write that is already ordered, a duplicate
// apply that can clobber someone else's later acked write. That case is
// the ambiguous outcome, and says so: UNKNOWN, the caller decides.
func (d *Daemon) serveWrite(rep *newtop.Replica, g newtop.GroupID, cmd string) clientproto.Response {
	if err := rep.Propose([]byte(cmd)); err != nil {
		return retryOn(err)
	}
	// Close the gate's check/submit race: Propose serializes through the
	// node event loop — the same loop that casts formation votes and
	// bumps pendingInvites (before the vote takes effect) — so by the
	// time Propose returns, any vote ordered BEFORE our submit is
	// visible here, either as a still-pending invite or as the serving
	// group having already moved past the one this write targeted.
	// Seeing either means this write may sit after the successor group's
	// snapshot cut: its outcome for the new group is ambiguous, and the
	// ack must say so instead of promising durability the joiner might
	// not have.
	d.mu.Lock()
	raced := d.pendingInvites > 0 || d.serving != g
	d.mu.Unlock()
	if raced {
		return clientproto.Response{Status: clientproto.StUnknown,
			Err: "write raced a group cut-over"}
	}
	if err := rep.Read(func(newtop.StateMachine) {}); err != nil {
		return clientproto.Response{Status: clientproto.StUnknown,
			Err: "write proposed but not confirmed: " + err.Error()}
	}
	return clientproto.Response{Status: clientproto.StOK, Found: true}
}

// retryOn maps a replica error to a routing answer: replica/group
// transitions (cut-over closed the replica, the group was left) are
// transient — the serving pointer is already or will shortly be elsewhere
// on this same daemon — so the client should retry here.
func retryOn(err error) clientproto.Response {
	if errors.Is(err, newtop.ErrClosed) {
		return clientproto.Response{Status: clientproto.StRetry, Reason: "daemon shutting down"}
	}
	return clientproto.Response{Status: clientproto.StRetry, Reason: err.Error()}
}
