// Package daemon is the long-lived Newtop service process behind
// cmd/newtopd: one protocol process replicating a key-value store across
// the groups of its lifetime — the bootstrap group, join successors,
// post-heal merged groups — plus the client-facing request listener.
//
// It exists as a package (rather than living inside cmd/newtopd's main)
// so the harness and tests can run real daemons in-process: over a shared
// in-memory Network the full daemon lifecycle — crash exclusion, cut-over,
// partition, heal, reconcile, drain — runs under the race detector and
// under scripted partitions, while clients drive it over real loopback
// TCP through the same code path production uses.
//
// # Group lifecycle
//
// The daemon always serves in its newest group. When a successor group
// replaces the serving one (a join it was invited into, or a post-heal
// merge), service cuts over immediately, and the superseded group is
// drained: after DrainWindow the daemon closes the old replica and leaves
// the old group, so it stops multicasting ω-nulls there and releases the
// group's log state. Without the drain step old groups linger forever —
// every join would permanently add one zombie group's ω-traffic.
//
// # Heals
//
// A detected heal is debounced (Settle) and then the lowest-ID survivor
// among everyone reachable initiates one merged successor group (§5.3)
// that the members reconcile in. A non-initiator arms InitiateTimeout
// while it waits for the initiator's invitation: if the initiator dies
// before forming the group, the waiter strikes it from its healed set,
// clears the reconciliation latch and re-initiates after another settle
// window — so leadership falls through dead candidates to the next-lowest
// survivor instead of stranding the heal forever.
package daemon

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"newtop"
	"newtop/internal/shard"
)

// Config configures a daemon.
type Config struct {
	// Self is this process's unique non-zero identifier.
	Self newtop.ProcessID

	// Network attaches the daemon to an in-memory network (tests,
	// multi-daemon single binaries). Exactly one of Network or
	// ListenAddr must be set.
	Network *newtop.Network
	// ListenAddr is the inter-daemon TCP listen address.
	ListenAddr string
	// Peers maps peer process IDs to their inter-daemon TCP addresses.
	Peers map[newtop.ProcessID]string

	// ClientAddr is the client-protocol TCP listen address ("" disables
	// the client listener; use ":0" for an ephemeral port).
	ClientAddr string
	// PeerClientAddrs maps peer process IDs to their CLIENT addresses —
	// the redirect hints a NOT_SERVING response carries. Optional; also
	// settable later via SetPeerClientAddrs (addresses are often only
	// known after every daemon has bound its ephemeral port).
	PeerClientAddrs map[newtop.ProcessID]string

	// MetricsAddr is the introspection HTTP listen address ("" disables;
	// use ":0" for an ephemeral port). The endpoint serves /metrics in
	// the Prometheus text format and the pprof suite under /debug/pprof/.
	MetricsAddr string

	// TraceSampleEvery enables delivery-stream tracing, passed through to
	// newtop.Config: one in every N data messages is stamped through its
	// lifecycle stages, feeding the newtop_trace_stage_ns histograms
	// (0 disables).
	TraceSampleEvery uint64

	// Mode is the serving groups' ordering discipline (default Symmetric).
	Mode newtop.OrderMode
	// Omega is the time-silence interval ω (see newtop.Config).
	Omega time.Duration
	// HealProbeInterval is the heal-probe cadence (see newtop.Config).
	HealProbeInterval time.Duration

	// DataDir, when non-empty, makes the daemon durable: every applied
	// command is written to a per-group WAL under this directory, state
	// snapshots are cut periodically, and a restarted daemon recovers its
	// store locally and rejoins its former partners via the reconcile
	// fast path instead of a full snapshot transfer.
	DataDir string
	// Fsync selects the WAL flush policy: "always" (default — an acked
	// write is on stable media), "interval" or "never".
	Fsync string
	// FsyncInterval is the flush cadence under Fsync="interval"
	// (default 50ms).
	FsyncInterval time.Duration
	// SnapshotEvery cuts an on-disk snapshot every N applied entries
	// (default 4096; snapshots are also always cut when a state transfer
	// or reconciliation completes).
	SnapshotEvery int

	// Join, when non-zero, joins a running cluster by forming this new
	// group ID and catching up, instead of bootstrapping group 1.
	Join newtop.GroupID
	// Initial lists the bootstrap group 1 members (default: self plus
	// every peer). Ignored when joining.
	Initial []newtop.ProcessID

	// Merge selects the post-partition merge policy: "lww" (default) or
	// "prefer-low".
	Merge string
	// Settle is the debounce between a heal signal and initiating the
	// merged group (default 2s).
	Settle time.Duration
	// DrainWindow is how long a superseded group lingers after cut-over
	// before the daemon closes its replica and leaves it (default 2s).
	// It must comfortably exceed the time an in-flight old-group write
	// needs to come back through the total order.
	DrainWindow time.Duration
	// InitiateTimeout is how long a non-initiator waits for the heal
	// initiator's invitation before assuming it dead and taking over
	// (default 5×Settle).
	InitiateTimeout time.Duration

	// TCP transport tuning, passed through to newtop.Config.
	DialTimeout  time.Duration
	DialBackoff  time.Duration
	WriteTimeout time.Duration
	FlushWindow  time.Duration

	// RingThreshold and RingPullAfter configure ring payload
	// dissemination, passed through to newtop.Config: payloads at or
	// above the threshold travel the view ring instead of fanning out
	// point-to-point (0 disables).
	RingThreshold int
	RingPullAfter time.Duration

	// Shard, when non-nil, runs the daemon in sharded mode: the keyspace
	// is partitioned by hash across many data groups per the replicated
	// shard map, instead of one store in one lineage of groups. See
	// shard.go. Join, Merge and the heal machinery do not apply in this
	// mode (shard groups are fixed-membership; rebalancing forms new
	// groups, it never rejoins old ones).
	Shard *ShardConfig

	// Logf receives the daemon's log lines (default log.Printf; supply
	// a no-op to silence).
	Logf func(format string, args ...any)
	// OnEvent, when set, observes every membership event after the
	// daemon's own handling — the test tap.
	OnEvent func(newtop.Event)
}

func (cfg Config) withDefaults() Config {
	if cfg.Mode == 0 {
		cfg.Mode = newtop.Symmetric
	}
	if cfg.Merge == "" {
		cfg.Merge = "lww"
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 2 * time.Second
	}
	if cfg.DrainWindow <= 0 {
		cfg.DrainWindow = 2 * time.Second
	}
	if cfg.InitiateTimeout <= 0 {
		cfg.InitiateTimeout = 5 * cfg.Settle
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 4096
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return cfg
}

// invitation is a formation invite routed from AcceptInvite to the
// invite-handling goroutine, which attaches a replica while the vote is
// still in flight.
type invitation struct {
	g       newtop.GroupID
	coord   newtop.ProcessID // formation coordinator
	members []newtop.ProcessID
}

// Daemon is one running Newtop service process.
type Daemon struct {
	cfg  Config
	proc *newtop.Process
	kv   *newtop.KV
	srv  *clientServer  // nil when ClientAddr == ""
	ms   *metricsServer // nil when MetricsAddr == ""

	// Durability (Config.DataDir != ""). recoveredG is non-zero from a
	// successful local recovery until the daemon has rejoined — it marks
	// the group incarnation the on-disk state came from, and while set the
	// announce loop probes the old membership so a survivor's exclusion
	// detector fires and pulls us into the merged successor group.
	// recoveredApplied is the lineage apply count the restored state
	// carries (the WithAppliedBase for the rejoin replica).
	store            *newtop.DurableStore
	rm               recoveryMetrics
	dlogs            map[newtop.GroupID]*newtop.DurableLog
	recoveredG       newtop.GroupID
	recoveredMembers []newtop.ProcessID
	recoveredApplied uint64

	// Sharded mode (Config.Shard != nil). smap is set once before any
	// concurrency starts, so reading the pointer is race-free; the Map
	// itself is internally locked. Shard replicas live in reps alongside
	// the meta replica; shardKVs maps each hosted data group to its own
	// store (the lineage kv field is unused in this mode).
	smap     *shard.Map
	shardKVs map[newtop.GroupID]*newtop.KV
	moveMu   sync.Mutex // serializes MoveRange drivers on this daemon

	mu          sync.Mutex
	reps        map[newtop.GroupID]*newtop.Replica
	recon       map[newtop.GroupID]bool // groups attached in reconcile mode
	serving     newtop.GroupID
	removed     map[newtop.GroupID]map[newtop.ProcessID]bool
	healed      map[newtop.GroupID]map[newtop.ProcessID]bool
	reconciling map[newtop.GroupID]bool
	healTimer   map[newtop.GroupID]*time.Timer
	initWait    map[newtop.GroupID]*time.Timer // waiting on a heal initiator
	drains      map[newtop.GroupID]*time.Timer // superseded groups awaiting leave
	clientAddrs map[newtop.ProcessID]string
	// pendingInvites counts formation votes cast (AcceptInvite returned
	// true) whose successor replica has not been attached yet. While one
	// is outstanding, client writes are refused with RETRY: a write
	// proposed into the superseded group AFTER our formation vote is no
	// longer covered by the cross-group delivery gate's "before any
	// snapshot cut" guarantee, so acking it could hide it from a joiner
	// catching up in the successor group.
	pendingInvites int
	closed         bool

	invites chan invitation
	done    chan struct{} // closed by Close; releases drain waiters
	wg      sync.WaitGroup
}

// Start launches the daemon: protocol process, group bootstrap or join,
// event handling, and (when configured) the client listener.
func Start(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == 0 {
		return nil, errors.New("daemon: Config.Self must be non-zero")
	}
	switch cfg.Merge {
	case "lww", "prefer-low":
	default:
		return nil, fmt.Errorf("daemon: unknown merge policy %q", cfg.Merge)
	}
	d := &Daemon{
		cfg:         cfg,
		kv:          newtop.NewKV(),
		dlogs:       make(map[newtop.GroupID]*newtop.DurableLog),
		shardKVs:    make(map[newtop.GroupID]*newtop.KV),
		reps:        make(map[newtop.GroupID]*newtop.Replica),
		recon:       make(map[newtop.GroupID]bool),
		removed:     make(map[newtop.GroupID]map[newtop.ProcessID]bool),
		healed:      make(map[newtop.GroupID]map[newtop.ProcessID]bool),
		reconciling: make(map[newtop.GroupID]bool),
		healTimer:   make(map[newtop.GroupID]*time.Timer),
		initWait:    make(map[newtop.GroupID]*time.Timer),
		drains:      make(map[newtop.GroupID]*time.Timer),
		clientAddrs: make(map[newtop.ProcessID]string),
		invites:     make(chan invitation, 16),
		done:        make(chan struct{}),
	}
	for p, a := range cfg.PeerClientAddrs {
		if p != cfg.Self {
			d.clientAddrs[p] = a
		}
	}
	proc, err := newtop.Start(newtop.Config{
		Self:              cfg.Self,
		Network:           cfg.Network,
		ListenAddr:        cfg.ListenAddr,
		Peers:             cfg.Peers,
		Omega:             cfg.Omega,
		HealProbeInterval: cfg.HealProbeInterval,
		DialTimeout:       cfg.DialTimeout,
		DialBackoff:       cfg.DialBackoff,
		WriteTimeout:      cfg.WriteTimeout,
		FlushWindow:       cfg.FlushWindow,
		RingThreshold:     cfg.RingThreshold,
		RingPullAfter:     cfg.RingPullAfter,
		TraceSampleEvery:  cfg.TraceSampleEvery,
		AcceptInvite: func(g newtop.GroupID, coord newtop.ProcessID, members []newtop.ProcessID) bool {
			// Counted BEFORE the vote takes effect (this callback runs on
			// the node loop, synchronously with the vote): from here until
			// the successor replica attaches, writes must not be acked
			// into the soon-superseded serving group.
			d.mu.Lock()
			d.pendingInvites++
			d.mu.Unlock()
			select {
			case d.invites <- invitation{g, coord, append([]newtop.ProcessID(nil), members...)}:
				return true
			default:
				// Joining a group we would never replicate is worse than
				// vetoing the formation: the initiator can retry.
				d.mu.Lock()
				d.pendingInvites--
				d.mu.Unlock()
				return false
			}
		},
	})
	if err != nil {
		return nil, err
	}
	d.proc = proc
	d.rm = newRecoveryMetrics(proc.MetricsRegistry())
	if cfg.DataDir != "" {
		if err := d.openStorage(); err != nil {
			_ = proc.Close()
			return nil, err
		}
	}

	if err := d.startGroups(); err != nil {
		_ = proc.Close()
		return nil, err
	}
	if cfg.ClientAddr != "" {
		srv, err := newClientServer(d, cfg.ClientAddr)
		if err != nil {
			_ = proc.Close()
			return nil, err
		}
		d.srv = srv
	}
	if cfg.MetricsAddr != "" {
		ms, err := newMetricsServer(d, cfg.MetricsAddr)
		if err != nil {
			if d.srv != nil {
				d.srv.close()
			}
			_ = proc.Close()
			return nil, err
		}
		d.ms = ms
	}

	d.wg.Add(3)
	go d.handleInvites()
	go d.drainDeliveries()
	go d.handleEvents()
	if d.smap != nil {
		// The client listener is bound: publish our client address (the
		// redirect hints other daemons hand out) and the initial shard
		// layout into the meta order.
		d.wg.Add(1)
		go d.publishShardIdentity()
	}
	return d, nil
}

// startGroups bootstraps group 1 or forms the join group; in sharded
// mode it bootstraps the meta group and this daemon's shard groups
// instead.
func (d *Daemon) startGroups() error {
	if d.cfg.Shard != nil {
		return d.startShardGroups()
	}
	if d.recoveredG != 0 {
		return d.startRecovered()
	}
	members := []newtop.ProcessID{d.cfg.Self}
	for p := range d.cfg.Peers {
		members = append(members, p)
	}
	if d.cfg.Network != nil && len(d.cfg.Peers) == 0 {
		// In-memory daemons have no address book; Initial is the
		// authority on who exists.
		for _, p := range d.cfg.Initial {
			if p != d.cfg.Self {
				members = append(members, p)
			}
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	if d.cfg.Join == 0 {
		boot := members
		if len(d.cfg.Initial) > 0 {
			boot = append([]newtop.ProcessID(nil), d.cfg.Initial...)
			sort.Slice(boot, func(i, j int) bool { return boot[i] < boot[j] })
		}
		if err := d.replicate(1); err != nil {
			return err
		}
		if err := d.proc.BootstrapGroup(1, d.cfg.Mode, boot); err != nil {
			return err
		}
		d.logf("P%d up; group g1 (%s) members %v", d.cfg.Self, d.cfg.Mode, boot)
		return nil
	}
	g := d.cfg.Join
	if err := d.replicate(g, newtop.CatchUp()); err != nil {
		return err
	}
	if err := d.proc.CreateGroup(g, d.cfg.Mode, members); err != nil {
		return err
	}
	d.logf("P%d up; joining via new group g%d (%s) members %v", d.cfg.Self, g, d.cfg.Mode, members)
	return nil
}

// Proc exposes the underlying protocol process (observability).
func (d *Daemon) Proc() *newtop.Process { return d.proc }

// KV exposes the daemon's replicated store (observability; use the client
// protocol for consistent reads).
func (d *Daemon) KV() *newtop.KV { return d.kv }

// ClientAddr returns the bound client-listener address ("" when the
// listener is disabled).
func (d *Daemon) ClientAddr() string {
	if d.srv == nil {
		return ""
	}
	return d.srv.addr()
}

// MetricsAddr returns the bound introspection-listener address ("" when
// the listener is disabled).
func (d *Daemon) MetricsAddr() string {
	if d.ms == nil {
		return ""
	}
	return d.ms.addr()
}

// SetPeerClientAddrs installs the peer client-address book used for
// NOT_SERVING redirect hints.
func (d *Daemon) SetPeerClientAddrs(addrs map[newtop.ProcessID]string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for p, a := range addrs {
		if p != d.cfg.Self {
			d.clientAddrs[p] = a
		}
	}
}

// ServingGroup returns the group the daemon currently serves in.
func (d *Daemon) ServingGroup() newtop.GroupID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.serving
}

// Replica returns the serving replica and its group (nil before the first
// group attaches).
func (d *Daemon) Replica() (*newtop.Replica, newtop.GroupID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reps[d.serving], d.serving
}

// Close stops the daemon: client listener, timers, protocol process.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.done)
	for _, t := range d.healTimer {
		t.Stop()
	}
	for _, t := range d.initWait {
		t.Stop()
	}
	for _, t := range d.drains {
		t.Stop()
	}
	reps := make([]*newtop.Replica, 0, len(d.reps))
	for _, r := range d.reps {
		reps = append(reps, r)
	}
	d.mu.Unlock()

	// Replicas close FIRST: a client handler parked in a Barrier or an
	// ack-wait is released by its replica's shutdown (ErrClosed), not by
	// its connection closing — the other order would leave Close stuck
	// behind a barrier that needs the total order to advance, which
	// during a partition means whole suspicion/exclusion rounds.
	for _, r := range reps {
		_ = r.Close()
	}
	if d.srv != nil {
		d.srv.close()
	}
	if d.ms != nil {
		d.ms.close()
	}
	err := d.proc.Close()
	d.wg.Wait()
	if d.store != nil {
		// Last: the replicas' apply loops have drained, so closing flushes
		// the final appends (a crashed store's logs no-op here).
		if serr := d.store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

func (d *Daemon) logf(format string, args ...any) { d.cfg.Logf(format, args...) }

// register records a replica and cuts service over when it supersedes the
// serving group, scheduling the superseded groups' drains. Caller holds
// mu.
//
// The drain clock starts only once the superseding replica is READY —
// for a reconcile or catch-up replica that is well after registration,
// and never if its group's formation keeps failing. Arming it at
// cut-over instead would let a failed merged-group formation leave the
// healthy base group behind: the heal-retry path needs that group's
// view, and losing it wedges the daemon with nothing serving.
//
// On readiness, EVERY remaining older group is scheduled, not just the
// immediately superseded one: in a chain g1→g2→g3 where g2's replica is
// closed before it ever became ready (drained mid-catch-up by g3's
// arrival), a drain keyed to g2's readiness alone would strand g1
// forever.
func (d *Daemon) registerLocked(g newtop.GroupID, rep *newtop.Replica) {
	d.reps[g] = rep
	if g > d.serving {
		d.serving = g // always serve in the newest group
		// closed is set under mu before Close waits on wg, so testing it
		// here makes the Add race-free.
		if !d.closed {
			d.wg.Add(1)
			go func() {
				defer d.wg.Done()
				select {
				case <-rep.Ready():
				case <-d.done:
					return
				}
				// A plain (authoritative) replica is ready the moment it
				// attaches — before its group's §5.3 formation has even
				// voted. Wait for the group itself: draining the old
				// groups on the promise of a successor that never forms
				// would leave the daemon with nothing (the formation-
				// failure rollback deregisters the successor, which is
				// also what releases this wait).
				for !d.proc.GroupReady(g) {
					d.mu.Lock()
					_, still := d.reps[g]
					closed := d.closed
					d.mu.Unlock()
					if closed || !still {
						return
					}
					select {
					case <-time.After(20 * time.Millisecond):
					case <-d.done:
						return
					}
				}
				d.mu.Lock()
				if !d.closed {
					for og := range d.reps {
						og := og
						if og < g && og < d.serving && d.drains[og] == nil {
							d.drains[og] = time.AfterFunc(d.cfg.DrainWindow, func() { d.leaveSuperseded(og) })
						}
					}
				}
				d.mu.Unlock()
			}()
		}
	}
}

// leaveSuperseded retires a group the service cut over from: close its
// replica (rerouting any residual deliveries) and leave it, so this
// daemon stops contributing ω-nulls and log state to a group nobody
// serves in anymore.
func (d *Daemon) leaveSuperseded(old newtop.GroupID) {
	d.mu.Lock()
	if d.closed || old >= d.serving {
		d.mu.Unlock()
		return
	}
	rep := d.reps[old]
	delete(d.reps, old)
	delete(d.recon, old)
	delete(d.drains, old)
	delete(d.removed, old)
	delete(d.healed, old)
	delete(d.reconciling, old)
	if t := d.healTimer[old]; t != nil {
		t.Stop()
		delete(d.healTimer, old)
	}
	if t := d.initWait[old]; t != nil {
		t.Stop()
		delete(d.initWait, old)
	}
	d.mu.Unlock()
	if rep != nil {
		_ = rep.Close()
	}
	if err := d.proc.LeaveGroup(old); err == nil {
		d.logf("left superseded group g%d (drain window passed)", old)
	}
	// The old incarnation's on-disk stream is garbage once the serving
	// one is anchored by a baseline snapshot.
	d.prune()
}

// replicate attaches an authoritative (or catch-up) replica for g.
func (d *Daemon) replicate(g newtop.GroupID, opts ...newtop.ReplicaOption) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		// Close has already swept d.reps; a replica attached now would
		// never be closed, leaving client handlers parked in it.
		return newtop.ErrClosed
	}
	if _, ok := d.reps[g]; ok {
		return nil
	}
	dopts, err := d.durableOptsLocked(g)
	if err != nil {
		return err
	}
	rep, err := newtop.Replicate(d.proc, g, d.kv, append(opts, dopts...)...)
	if err != nil {
		return err
	}
	d.registerLocked(g, rep)
	return nil
}

func (d *Daemon) mkPolicy(lowSide uint64) newtop.MergePolicy {
	if d.cfg.Merge == "prefer-low" {
		return newtop.PreferSide(lowSide)
	}
	return newtop.LastWriterWins()
}

// reconcile attaches a reconciling replica for the merged group g.
func (d *Daemon) reconcile(g newtop.GroupID, members []newtop.ProcessID, side, lowSide uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return newtop.ErrClosed // see replicate
	}
	if _, ok := d.reps[g]; ok {
		return nil
	}
	dopts, err := d.durableOptsLocked(g)
	if err != nil {
		return err
	}
	rep, err := newtop.Reconcile(d.proc, g, d.kv, d.mkPolicy(lowSide), members,
		append(dopts, newtop.WithPartitionSide(side))...)
	if err != nil {
		return err
	}
	d.recon[g] = true
	d.registerLocked(g, rep)
	// The merged group exists: whoever we were waiting on delivered.
	if t := d.initWait[g-1]; t != nil {
		t.Stop()
		delete(d.initWait, g-1)
	}
	return nil
}

// mySide returns this daemon's partition tag for group g: the lowest
// member of its current (pre-merge) view.
func (d *Daemon) mySide(g newtop.GroupID) uint64 {
	if v, err := d.proc.View(g); err == nil && len(v.Members) > 0 {
		return uint64(v.Members[0])
	}
	return uint64(d.cfg.Self)
}

// initiateReconcile fires Settle after the last heal signal for g: if
// this daemon is the lowest ID among everyone now reachable, it forms the
// merged successor group; otherwise it waits for the initiator's
// invitation — bounded by InitiateTimeout (see takeover).
func (d *Daemon) initiateReconcile(g newtop.GroupID) {
	v, err := d.proc.View(g)
	if err != nil {
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.reconciling[g] = true
	delete(d.healTimer, g)
	members := append([]newtop.ProcessID(nil), v.Members...)
	rejoining := 0
	for p := range d.healed[g] {
		if !v.Contains(p) { // guard and list must agree: no duplicates
			rejoining++
			members = append(members, p)
		}
	}
	if rejoining == 0 {
		// Every healed peer died (or re-entered the view) since the heal
		// was detected — there is no far side left to merge with, and a
		// successor group would duplicate the current view. Clear the
		// latch; a future heal signal starts over.
		delete(d.reconciling, g)
		d.mu.Unlock()
		d.logf("heal of g%d: no live healed peer remains; staying put", g)
		return
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if members[0] != d.cfg.Self {
		initiator := members[0]
		if d.initWait[g] == nil {
			d.initWait[g] = time.AfterFunc(d.cfg.InitiateTimeout, func() { d.takeover(g, initiator) })
		}
		d.mu.Unlock()
		d.logf("heal of g%d: waiting for P%d to initiate the merged group", g, initiator)
		return
	}
	d.mu.Unlock()
	next := g + 1
	d.logf("heal of g%d: initiating merged successor group g%d = %v (%s merge)", g, next, members, d.cfg.Merge)
	if err := d.reconcile(next, members, d.mySide(g), uint64(members[0])); err != nil {
		d.logf("reconcile g%d: %v", next, err)
		return
	}
	if err := d.proc.CreateGroup(next, d.cfg.Mode, members); err != nil {
		d.logf("form g%d: %v", next, err)
	}
}

// takeover runs when the awaited heal initiator never formed the merged
// group within InitiateTimeout: strike it from the healed set (a dead
// far-side peer must stop outranking live survivors; a dead same-side
// peer leaves the view on its own), clear the latch and re-initiate after
// another settle window — the next-lowest survivor takes over.
func (d *Daemon) takeover(g newtop.GroupID, failed newtop.ProcessID) {
	d.mu.Lock()
	delete(d.initWait, g)
	if d.closed || !d.reconciling[g] {
		d.mu.Unlock()
		return
	}
	if _, ok := d.reps[g+1]; ok {
		// The merged group did arrive; reconciliation is in flight.
		d.mu.Unlock()
		return
	}
	if h := d.healed[g]; h != nil {
		delete(h, failed)
	}
	delete(d.reconciling, g)
	if d.healTimer[g] == nil {
		d.healTimer[g] = time.AfterFunc(d.cfg.Settle, func() { d.initiateReconcile(g) })
	}
	d.mu.Unlock()
	d.logf("heal of g%d: initiator P%d never formed the merged group; retrying without it", g, failed)
}

// handleInvites attaches replicas for groups this daemon is invited into,
// in reconcile mode when the member list includes peers we had excluded
// (a post-heal merge), plainly otherwise (a join successor).
func (d *Daemon) handleInvites() {
	defer d.wg.Done()
	for inv := range d.invites {
		d.handleInvite(inv)
		d.mu.Lock()
		d.pendingInvites--
		d.mu.Unlock()
	}
}

func (d *Daemon) handleInvite(inv invitation) {
	if d.smap != nil && shard.IsShardGroup(inv.g) {
		d.attachShardInvite(inv.g)
		return
	}
	d.mu.Lock()
	rejoining := false
	recovered := d.recoveredG
	var low = d.cfg.Self
	for _, m := range inv.members {
		if m < low {
			low = m
		}
		for _, rm := range d.removed {
			if rm[m] {
				rejoining = true
			}
		}
	}
	serving := d.serving
	d.mu.Unlock()
	if !rejoining && inv.coord != d.cfg.Self {
		// The removed-peer record is not the whole story: a member we
		// never excluded ourselves (it was excluded before we joined, or
		// its exclusion record died with a group we have since left) can
		// still be merging back in. The coordinator tells a merge from a
		// join — a joiner coordinates its own join, so strangers in a
		// formation coordinated by an incumbent are a far side to
		// reconcile with, and every member must reconcile for the
		// summary exchange to complete.
		if v, err := d.proc.View(serving); err == nil && v.Contains(inv.coord) {
			for _, m := range inv.members {
				if !v.Contains(m) && m != d.cfg.Self {
					rejoining = true
					break
				}
			}
		}
	}
	if recovered != 0 {
		if inv.g <= recovered {
			d.discardRecovered(inv)
			return
		}
		// The survivors are pulling us into the merged successor group:
		// reconcile our restored state against theirs. Identical states
		// short-circuit after the digest summaries — the fast path — and
		// divergence (writes we lost under fsync=interval/never, or
		// survivors' progress) costs only the differing buckets, never a
		// full snapshot stream.
		if err := d.reconcile(inv.g, inv.members, uint64(d.cfg.Self), uint64(low)); err != nil {
			d.logf("reconcile g%d: %v", inv.g, err)
		} else {
			d.logf("rejoining via merged group g%d = %v (recovered from g%d)", inv.g, inv.members, recovered)
		}
		return
	}
	if rejoining {
		if err := d.reconcile(inv.g, inv.members, d.mySide(serving), uint64(low)); err != nil {
			d.logf("reconcile g%d: %v", inv.g, err)
		} else {
			d.logf("reconciling into merged group g%d = %v", inv.g, inv.members)
		}
		return
	}
	if err := d.replicate(inv.g); err != nil {
		d.logf("replicate g%d: %v", inv.g, err)
	} else {
		d.logf("replicating successor group g%d (service cut over)", inv.g)
	}
}

// drainDeliveries consumes the shared delivery channel: groups without a
// replica (e.g. a raw Submit from a peer, or the residue of a drained
// group's subscription) must not accumulate unread.
func (d *Daemon) drainDeliveries() {
	defer d.wg.Done()
	for range d.proc.Deliveries() {
	}
}

// handleEvents drives the daemon's membership state machine.
func (d *Daemon) handleEvents() {
	defer d.wg.Done()
	defer close(d.invites)
	for ev := range d.proc.Events() {
		d.handleEvent(ev)
		if d.cfg.OnEvent != nil {
			d.cfg.OnEvent(ev)
		}
	}
}

func (d *Daemon) handleEvent(ev newtop.Event) {
	switch ev.Kind {
	case newtop.EventViewChanged:
		d.logf("view change %v: %v (removed %v)", ev.Group, ev.View, ev.Removed)
		d.mu.Lock()
		rm := d.removed[ev.Group]
		if rm == nil {
			rm = map[newtop.ProcessID]bool{}
			d.removed[ev.Group] = rm
		}
		for _, p := range ev.Removed {
			rm[p] = true
		}
		d.mu.Unlock()
		d.saveMeta(ev.Group)
	case newtop.EventSuspected:
		d.logf("suspecting P%d in %v", ev.Suspect, ev.Group)
	case newtop.EventGroupReady:
		d.logf("group %v ready", ev.Group)
		d.saveMeta(ev.Group)
	case newtop.EventFormationFailed:
		d.logf("formation of %v failed: %s", ev.Group, ev.Reason)
		// Roll the cut-over back: if we had already registered a replica
		// for the failed group (service always cuts over at registration
		// time), deregister it and fall back to the newest surviving
		// group — without this, serving stays pinned to a group that
		// never formed and every client write StRetries forever. Any
		// drain armed on the failed group's account is cancelled.
		d.mu.Lock()
		var failedRep *newtop.Replica
		if rep, ok := d.reps[ev.Group]; ok && !d.closed {
			failedRep = rep
			delete(d.reps, ev.Group)
			delete(d.recon, ev.Group)
			delete(d.shardKVs, ev.Group)
			if d.serving == ev.Group {
				d.serving = 0
				for og := range d.reps {
					if og > d.serving {
						d.serving = og
					}
				}
				for og, t := range d.drains {
					if og >= d.serving {
						t.Stop()
						delete(d.drains, og)
					}
				}
				d.logf("formation of g%d failed; serving falls back to g%d", ev.Group, d.serving)
			}
		}
		// A failed merged-group formation (successor of a group we were
		// reconciling) must not strand the heal: retry after another
		// settle window.
		if base := ev.Group - 1; d.reconciling[base] && !d.closed {
			delete(d.reconciling, base)
			if t := d.initWait[base]; t != nil {
				t.Stop()
				delete(d.initWait, base)
			}
			if d.healTimer[base] == nil {
				d.healTimer[base] = time.AfterFunc(d.cfg.Settle, func() { d.initiateReconcile(base) })
			}
		}
		d.mu.Unlock()
		if failedRep != nil {
			_ = failedRep.Close()
		}
	case newtop.EventStateTransferred:
		d.logf("state transferred into %v (snapshot from P%d)", ev.Group, ev.Peer)
	case newtop.EventHealDetected:
		d.logf("partition healed: P%d reachable again (was excluded from %v)", ev.Peer, ev.Group)
		d.mu.Lock()
		g := ev.Group
		if _, ok := d.reps[g]; !ok && g != d.serving {
			// The exclusion this signal revives can be from an incarnation
			// we have since drained and left — a recovered process
			// announces itself tagged with its OLD group. The merge
			// nevertheless happens in the serving lineage.
			g = d.serving
		}
		h := d.healed[g]
		if h == nil {
			h = map[newtop.ProcessID]bool{}
			d.healed[g] = h
		}
		h[ev.Peer] = true
		// Debounced initiation: (re)arm the timer on every heal signal,
		// so the merged group forms Settle after the LAST peer is
		// rediscovered — slow probes from the far side still make it
		// into the member list — and the cut-over quiesce gets its
		// drain window.
		if g == d.serving && !d.reconciling[g] && !d.closed {
			if t := d.healTimer[g]; t != nil {
				t.Reset(d.cfg.Settle)
			} else {
				d.healTimer[g] = time.AfterFunc(d.cfg.Settle, func() { d.initiateReconcile(g) })
			}
		}
		d.mu.Unlock()
	case newtop.EventReconciled:
		d.mu.Lock()
		rep, g := d.reps[d.serving], d.serving
		recovering := d.recoveredG != 0 && d.recon[ev.Group]
		if recovering {
			d.recoveredG = 0 // rejoined; the announce loop stands down
		}
		d.mu.Unlock()
		if recovering {
			d.rm.fastpath.Inc()
			d.logf("recovery complete: rejoined via reconcile into g%d", ev.Group)
		}
		d.saveMeta(ev.Group)
		if rep != nil && g == ev.Group {
			d.logf("reconciled into g%d: applied=%d keys=%d digest=%016x",
				g, rep.AppliedSeq(), d.kv.Len(), rep.Digest())
		} else {
			d.logf("reconciled into g%d", ev.Group)
		}
	}
}

// peerHint returns some peer's client address for a NOT_SERVING redirect
// ("" when none is known).
func (d *Daemon) peerHint() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, a := range d.clientAddrs {
		return a
	}
	return ""
}
