package daemon

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"newtop"
	"newtop/client"
)

// quiet silences a test daemon; flip to t.Logf when debugging.
func quiet(string, ...any) {}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startCluster launches n daemons P1..Pn over one in-memory network, all
// bootstrapping group 1, each with a loopback client listener, and wires
// up the peer client-address books.
func startCluster(t *testing.T, n int, mutate func(id newtop.ProcessID, cfg *Config)) (*newtop.Network, map[newtop.ProcessID]*Daemon) {
	t.Helper()
	net := newtop.NewNetwork(newtop.WithSeed(7))
	initial := make([]newtop.ProcessID, n)
	for i := range initial {
		initial[i] = newtop.ProcessID(i + 1)
	}
	ds := make(map[newtop.ProcessID]*Daemon, n)
	for i := 1; i <= n; i++ {
		id := newtop.ProcessID(i)
		cfg := Config{
			Self:              id,
			Network:           net,
			ClientAddr:        "127.0.0.1:0",
			Omega:             15 * time.Millisecond,
			HealProbeInterval: 40 * time.Millisecond,
			Initial:           initial,
			Settle:            200 * time.Millisecond,
			DrainWindow:       250 * time.Millisecond,
			InitiateTimeout:   800 * time.Millisecond,
			Logf:              quiet,
		}
		if mutate != nil {
			mutate(id, &cfg)
		}
		d, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ds[id] = d
	}
	addrs := make(map[newtop.ProcessID]string, n)
	for id, d := range ds {
		addrs[id] = d.ClientAddr()
	}
	for _, d := range ds {
		d.SetPeerClientAddrs(addrs)
	}
	t.Cleanup(func() {
		for _, d := range ds {
			_ = d.Close()
		}
		net.Close()
	})
	return net, ds
}

func clientConfig() client.Config {
	return client.Config{
		DialTimeout:     time.Second,
		OpTimeout:       10 * time.Second,
		FailoverTimeout: 20 * time.Second,
		RetryWait:       10 * time.Millisecond,
	}
}

func TestClientServesBasicOps(t *testing.T) {
	_, ds := startCluster(t, 3, nil)
	c, err := clientConfig().Dial(ds[1].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.Put("user:1", "alice smith"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("user:1")
	if err != nil || !ok || v != "alice smith" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ = c.Get("absent"); ok {
		t.Error("absent key found")
	}
	// The acked write is replicated: a session against ANOTHER daemon
	// must see it behind a barrier read.
	c2, err := clientConfig().Dial(ds[3].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c2.Close() }()
	v, ok, err = c2.BarrierGet("user:1")
	if err != nil || !ok || v != "alice smith" {
		t.Fatalf("BarrierGet at P3 = %q %v %v", v, ok, err)
	}
	if err := c.Del("user:1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ = c2.BarrierGet("user:1"); ok {
		t.Error("deleted key still visible at P3")
	}
	st, err := c.Status()
	if err != nil || st.Self != 1 || st.Group != 1 || !st.Ready {
		t.Fatalf("Status = %+v %v", st, err)
	}
}

// TestSupersededGroupLeftAfterCutover is the zombie-group regression test:
// after a join cuts service over to the successor group, the old group
// must be drained and LEFT — its ω-null traffic stops — instead of being
// multicast into forever.
func TestSupersededGroupLeftAfterCutover(t *testing.T) {
	_, ds := startCluster(t, 2, nil)
	// Some state to transfer.
	c, err := clientConfig().Dial(ds[1].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		if err := c.Put(kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}

	// P3 joins by forming g2 = {1,2,3} and catching up.
	net3 := ds[1].cfg.Network
	d3, err := Start(Config{
		Self:              3,
		Network:           net3,
		ClientAddr:        "127.0.0.1:0",
		Omega:             15 * time.Millisecond,
		HealProbeInterval: 40 * time.Millisecond,
		Join:              2,
		Initial:           []newtop.ProcessID{1, 2, 3},
		Settle:            200 * time.Millisecond,
		DrainWindow:       250 * time.Millisecond,
		Logf:              quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d3.Close() })

	// Everyone cuts over to g2 and P3 catches up.
	waitFor(t, 20*time.Second, "cut-over to g2", func() bool {
		for _, d := range []*Daemon{ds[1], ds[2], d3} {
			rep, g := d.Replica()
			if g != 2 || rep == nil || !rep.CaughtUp() {
				return false
			}
		}
		return true
	})
	// The fix: within the drain window the incumbents leave g1 entirely.
	waitFor(t, 20*time.Second, "incumbents to leave g1", func() bool {
		for _, d := range []*Daemon{ds[1], ds[2]} {
			if _, err := d.Proc().View(1); !errors.Is(err, newtop.ErrLeftGroup) {
				return false
			}
		}
		return true
	})
	// And the regression count: post-cutover traffic in the old group is
	// zero — the send counter freezes.
	before := [2]uint64{ds[1].Proc().GroupSends(1), ds[2].Proc().GroupSends(1)}
	time.Sleep(200 * time.Millisecond) // >13ω of would-be null traffic
	after := [2]uint64{ds[1].Proc().GroupSends(1), ds[2].Proc().GroupSends(1)}
	if before != after {
		t.Fatalf("old group still multicasting after cut-over: %v -> %v", before, after)
	}
	// Service is intact in g2: old state plus new writes.
	if err := c.Put("d", "4"); err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{{"a", "1"}, {"d", "4"}} {
		if v, ok, err := c.BarrierGet(kv[0]); err != nil || !ok || v != kv[1] {
			t.Fatalf("post-cutover read %s = %q %v %v", kv[0], v, ok, err)
		}
	}
}

// TestStrandedHealTakeover is the stranded-heal regression test: the
// lowest-ID survivor (the would-be initiator of the merged group) crashes
// right after the heal is detected; the remaining daemons must not wait
// for its invitation forever — the next-lowest survivor takes over after
// the initiation timeout and the heal completes without it.
func TestStrandedHealTakeover(t *testing.T) {
	var healMu sync.Mutex
	heals := map[newtop.ProcessID]int{}
	net, ds := startCluster(t, 4, func(id newtop.ProcessID, cfg *Config) {
		if id == 1 {
			// P1 (the heal initiator) must not initiate before we crash
			// it; park its settle far away.
			cfg.Settle = time.Hour
		}
		cfg.OnEvent = func(ev newtop.Event) {
			if ev.Kind == newtop.EventHealDetected {
				healMu.Lock()
				heals[id]++
				healMu.Unlock()
			}
		}
	})

	// Seed state, then partition {1,2} | {3,4}.
	c, err := clientConfig().Dial(ds[2].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Put("base", "v"); err != nil {
		t.Fatal(err)
	}
	net.Partition([]newtop.ProcessID{1, 2}, []newtop.ProcessID{3, 4})
	waitFor(t, 20*time.Second, "sides to stabilise", func() bool {
		vA, errA := ds[2].Proc().View(1)
		vB, errB := ds[3].Proc().View(1)
		return errA == nil && errB == nil &&
			vA.Size() == 2 && !vA.Contains(3) && vB.Size() == 2 && !vB.Contains(1)
	})
	// Diverge: a write on each side.
	if err := c.Put("side:a", "A"); err != nil {
		t.Fatal(err)
	}
	cB, err := clientConfig().Dial(ds[4].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cB.Close() }()
	if err := cB.Put("side:b", "B"); err != nil {
		t.Fatal(err)
	}

	// Heal; wait until every survivor-to-be has detected peers back.
	net.Heal()
	waitFor(t, 20*time.Second, "heal detection at P2..P4", func() bool {
		healMu.Lock()
		defer healMu.Unlock()
		return heals[2] > 0 && heals[3] > 0 && heals[4] > 0
	})
	// Crash the initiator before it can form the merged group.
	net.Crash(1)
	_ = ds[1].Close()

	// The fix: P2 (next-lowest) takes over after InitiateTimeout; the
	// merged group forms over {2,3,4} and reconciles both sides' writes.
	waitFor(t, 60*time.Second, "takeover reconciliation", func() bool {
		for _, id := range []newtop.ProcessID{2, 3, 4} {
			rep, g := ds[id].Replica()
			if g < 2 || rep == nil || !rep.CaughtUp() {
				return false
			}
		}
		return true
	})
	// Digests agree and both sides' partition-era writes survived.
	rep2, _ := ds[2].Replica()
	rep3, _ := ds[3].Replica()
	if d2, d3 := rep2.Digest(), rep3.Digest(); d2 != d3 {
		t.Fatalf("post-merge digests diverge: %016x vs %016x", d2, d3)
	}
	for _, kv := range [][2]string{{"base", "v"}, {"side:a", "A"}, {"side:b", "B"}} {
		if v, ok, err := c.BarrierGet(kv[0]); err != nil || !ok || v != kv[1] {
			t.Fatalf("post-merge read %s = %q %v %v", kv[0], v, ok, err)
		}
	}
}

// TestHealEvaporatesWhenFarSideDies covers the takeover edge where the
// crashed initiator WAS the entire far side: with nobody left to merge
// with, the daemon must clear its reconciliation latch and keep serving
// in its current group instead of retrying a vacuous formation forever.
func TestHealEvaporatesWhenFarSideDies(t *testing.T) {
	var healMu sync.Mutex
	heals := map[newtop.ProcessID]int{}
	net, ds := startCluster(t, 3, func(id newtop.ProcessID, cfg *Config) {
		if id == 1 {
			cfg.Settle = time.Hour
		}
		cfg.OnEvent = func(ev newtop.Event) {
			if ev.Kind == newtop.EventHealDetected {
				healMu.Lock()
				heals[id]++
				healMu.Unlock()
			}
		}
	})
	net.Partition([]newtop.ProcessID{1}, []newtop.ProcessID{2, 3})
	waitFor(t, 20*time.Second, "sides to stabilise", func() bool {
		v, err := ds[2].Proc().View(1)
		return err == nil && v.Size() == 2 && !v.Contains(1)
	})
	net.Heal()
	waitFor(t, 20*time.Second, "heal detection at P2, P3", func() bool {
		healMu.Lock()
		defer healMu.Unlock()
		return heals[2] > 0 && heals[3] > 0
	})
	net.Crash(1)
	_ = ds[1].Close()

	// After Settle + InitiateTimeout the latch must clear with the
	// daemons still serving (in g1 — no merged group needed).
	time.Sleep(ds[2].cfg.Settle + ds[2].cfg.InitiateTimeout + ds[2].cfg.Settle + 500*time.Millisecond)
	for _, id := range []newtop.ProcessID{2, 3} {
		ds[id].mu.Lock()
		latched := ds[id].reconciling[1]
		ds[id].mu.Unlock()
		if latched {
			t.Errorf("P%d still latched on an evaporated heal", id)
		}
	}
	c, err := clientConfig().Dial(ds[2].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Put("after", "ok"); err != nil {
		t.Fatalf("daemon wedged after evaporated heal: %v", err)
	}
}

// TestFailedSuccessorFormationRollsBack pins the cut-over rollback: a
// join whose formation cannot complete (one invited member is dead) must
// not leave the incumbents pinned to a group that never formed — service
// falls back to the old group, which is neither drained nor left.
func TestFailedSuccessorFormationRollsBack(t *testing.T) {
	_, ds := startCluster(t, 2, nil)
	c, err := clientConfig().Dial(ds[1].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Put("pre", "v"); err != nil {
		t.Fatal(err)
	}

	// P3 joins with an address book that includes a dead P4: the g2
	// formation invite goes to {1,2,3,4}, P4 never votes, and the
	// formation times out at every member — after the incumbents have
	// already cut service over to g2.
	d3, err := Start(Config{
		Self:              3,
		Network:           ds[1].cfg.Network,
		ClientAddr:        "127.0.0.1:0",
		Omega:             15 * time.Millisecond,
		HealProbeInterval: 40 * time.Millisecond,
		Join:              2,
		Initial:           []newtop.ProcessID{1, 2, 3, 4},
		Settle:            200 * time.Millisecond,
		DrainWindow:       100 * time.Millisecond, // shorter than the formation timeout on purpose
		Logf:              quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d3.Close() })

	// The incumbents cut over to g2 on the invite, then roll back to g1
	// when its formation times out.
	waitFor(t, 30*time.Second, "rollback to g1", func() bool {
		for _, d := range []*Daemon{ds[1], ds[2]} {
			rep, g := d.Replica()
			if g != 1 || rep == nil {
				return false
			}
		}
		return true
	})
	// g1 was never drained or left (the drain must not fire on the
	// promise of a group that never formed).
	for _, d := range []*Daemon{ds[1], ds[2]} {
		if _, err := d.Proc().View(1); err != nil {
			t.Fatalf("g1 lost in the rollback: %v", err)
		}
	}
	// And the service still works end to end. A write racing the
	// rollback itself may surface as ErrUnacked (ambiguous by design);
	// the caller's resend must then land.
	for {
		err := c.Put("post", "v2")
		if err == nil {
			break
		}
		if !errors.Is(err, client.ErrUnacked) {
			t.Fatalf("write after rollback: %v", err)
		}
	}
	for _, kv := range [][2]string{{"pre", "v"}, {"post", "v2"}} {
		if v, ok, err := c.BarrierGet(kv[0]); err != nil || !ok || v != kv[1] {
			t.Fatalf("read %s after rollback = %q %v %v", kv[0], v, ok, err)
		}
	}
}

// TestMetricsEndpointAndStatusTail drives real traffic through a daemon
// and checks both introspection surfaces: the /metrics HTTP endpoint must
// expose nonzero key series in the Prometheus text format, and the STATUS
// response's observability tail must carry the delivery counter.
func TestMetricsEndpointAndStatusTail(t *testing.T) {
	_, ds := startCluster(t, 3, func(id newtop.ProcessID, cfg *Config) {
		if id == 1 {
			cfg.MetricsAddr = "127.0.0.1:0"
		}
	})
	if ds[1].MetricsAddr() == "" {
		t.Fatal("metrics listener did not bind")
	}
	c, err := clientConfig().Dial(ds[1].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	for i := 0; i < 5; i++ {
		if err := c.Put(fmt.Sprintf("m:%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered == 0 {
		t.Errorf("STATUS tail Delivered = 0 after %d acked writes", 5)
	}

	resp, err := http.Get("http://" + ds[1].MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The daemon runs on the in-memory network here, so the key series
	// are the engine's and the node's; each must be present and nonzero.
	for _, want := range []string{
		"newtop_engine_delivered_total ",
		`newtop_node_group_sends_total{group="1"} `,
	} {
		val, found := scrapeValue(string(body), want)
		if !found {
			t.Errorf("series %q missing from /metrics", want)
		} else if val == 0 {
			t.Errorf("series %q = 0 after traffic", want)
		}
	}
}

// scrapeValue finds the exposition line starting with prefix and parses
// its value.
func scrapeValue(body, prefix string) (uint64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseUint(strings.TrimSpace(line[len(prefix):]), 10, 64)
			return v, err == nil
		}
	}
	return 0, false
}
