package daemon

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"newtop"
	"newtop/internal/clientproto"
	"newtop/internal/shard"
)

// startShardedCluster launches n daemons in sharded mode with the given
// layout, and waits until every daemon can serve (meta caught up, map
// initialized, every peer's client address published).
func startShardedCluster(t *testing.T, n int, assigns []shard.Assign) map[newtop.ProcessID]*Daemon {
	t.Helper()
	meta := make([]newtop.ProcessID, n)
	for i := range meta {
		meta[i] = newtop.ProcessID(i + 1)
	}
	_, ds := startCluster(t, n, func(id newtop.ProcessID, cfg *Config) {
		cfg.Shard = &ShardConfig{Meta: meta, Initial: assigns}
	})
	waitFor(t, 15*time.Second, "sharded fleet ready", func() bool {
		for _, d := range ds {
			if !d.ShardsReady() {
				return false
			}
			for _, p := range meta {
				if _, ok := d.ShardMap().Addr(p); !ok {
					return false
				}
			}
		}
		return true
	})
	return ds
}

// shardDo runs one request against the fleet the way a routing client
// would: follow NOT_SERVING redirects to a daemon hosting the key's
// group, honor RETRY pauses, stop on any terminal answer.
func shardDo(t *testing.T, ds map[newtop.ProcessID]*Daemon, req clientproto.Request) clientproto.Response {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	id := newtop.ProcessID(1)
	for {
		resp := ds[id].serveRequest(&req)
		switch resp.Status {
		case clientproto.StRetry:
			if time.Now().After(deadline) {
				t.Fatalf("%v %q: still retrying at deadline (%s)", req.Op, req.Key, resp.Reason)
			}
			time.Sleep(resp.RetryAfter + time.Millisecond)
		case clientproto.StNotServing:
			// Route by group membership rather than the addr hint: the
			// in-package test has the daemons by ID.
			g := newtop.GroupID(resp.Group)
			next := id
			for did, d := range ds {
				d.mu.Lock()
				_, hosts := d.shardKVs[g]
				d.mu.Unlock()
				if hosts {
					next = did
					break
				}
			}
			if next == id {
				if time.Now().After(deadline) {
					t.Fatalf("%v %q: nobody hosts g%d", req.Op, req.Key, g)
				}
				time.Sleep(5 * time.Millisecond)
			}
			id = next
		default:
			return resp
		}
	}
}

// keyInRange finds a fresh key whose hash lands in [lo, hi).
func keyInRange(prefix string, lo, hi uint64) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s%d", prefix, i)
		if h := shard.HashKey(k); h >= lo && (hi == 0 || h < hi) {
			return k
		}
	}
}

func TestShardedServeAndRedirect(t *testing.T) {
	mid := uint64(1) << 63
	assigns := []shard.Assign{
		{Start: 0, Group: shard.FirstDataGroup, Members: []newtop.ProcessID{1, 2}},
		{Start: mid, Group: shard.FirstDataGroup + 1, Members: []newtop.ProcessID{2, 3}},
	}
	ds := startShardedCluster(t, 3, assigns)

	lowKey := keyInRange("low", 0, mid)
	highKey := keyInRange("high", mid, 0)

	// Served locally: daemon 1 hosts the low arc.
	put := clientproto.Request{Op: clientproto.OpPut, Key: lowKey, Value: "a"}
	if resp := ds[1].serveRequest(&put); resp.Status != clientproto.StOK {
		t.Fatalf("put at owner: %+v", resp)
	}
	get := clientproto.Request{Op: clientproto.OpGet, Key: lowKey}
	if resp := ds[1].serveRequest(&get); resp.Status != clientproto.StOK || !resp.Found || resp.Value != "a" {
		t.Fatalf("get at owner: %+v", resp)
	}

	// Redirected with the full shard hint: daemon 1 does not host the
	// high arc, and must say which group owns it, the owning arc, the
	// map epoch, and a member's client address.
	misroute := clientproto.Request{Op: clientproto.OpGet, Key: highKey}
	resp := ds[1].serveRequest(&misroute)
	if resp.Status != clientproto.StNotServing {
		t.Fatalf("misrouted get: %+v", resp)
	}
	if got, want := newtop.GroupID(resp.Group), shard.FirstDataGroup+1; got != want {
		t.Errorf("hint group = g%d, want g%d", got, want)
	}
	if resp.Epoch == 0 {
		t.Error("hint carries no map epoch")
	}
	if resp.RangeLo != mid || resp.RangeHi != 0 {
		t.Errorf("hint range = [%#x,%#x), want [%#x,0)", resp.RangeLo, resp.RangeHi, mid)
	}
	if resp.Addr != ds[2].ClientAddr() && resp.Addr != ds[3].ClientAddr() {
		t.Errorf("hint addr %q is not a member's client address", resp.Addr)
	}

	// The fleet as a whole serves both arcs.
	if resp := shardDo(t, ds, clientproto.Request{Op: clientproto.OpPut, Key: highKey, Value: "b"}); resp.Status != clientproto.StOK {
		t.Fatalf("fleet put: %+v", resp)
	}
	if resp := shardDo(t, ds, clientproto.Request{Op: clientproto.OpBarrierGet, Key: highKey}); !resp.Found || resp.Value != "b" {
		t.Fatalf("fleet barrier get: %+v", resp)
	}

	// Status answers from every daemon, reporting the meta group.
	st := ds[2].serveRequest(&clientproto.Request{Op: clientproto.OpStatus})
	if st.Status != clientproto.StStatus || newtop.GroupID(st.Group) != shard.MetaGroup || !st.Ready {
		t.Fatalf("status: %+v", st)
	}
}

func TestShardedMoveRangeUnderWrites(t *testing.T) {
	assigns := []shard.Assign{
		{Start: 0, Group: shard.FirstDataGroup, Members: []newtop.ProcessID{1, 2}},
	}
	ds := startShardedCluster(t, 3, assigns)
	mid := uint64(1) << 63

	// Seed keys on both sides of the future split.
	type pair struct{ k, v string }
	var seeded []pair
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("seed%d", i)
		v := fmt.Sprintf("val%d", i)
		if resp := shardDo(t, ds, clientproto.Request{Op: clientproto.OpPut, Key: k, Value: v}); resp.Status != clientproto.StOK {
			t.Fatalf("seed put %s: %+v", k, resp)
		}
		seeded = append(seeded, pair{k, v})
	}

	// A writer hammers one key inside the moving range for the whole
	// move; every OK-acked version must survive the migration.
	hot := keyInRange("hot", mid, 0)
	var lastAcked atomic.Int64
	lastAcked.Store(-1)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req := clientproto.Request{Op: clientproto.OpPut, Key: hot, Value: strconv.Itoa(i)}
			deadline := time.Now().Add(10 * time.Second)
			id := newtop.ProcessID(1)
		attempt:
			for {
				resp := ds[id].serveRequest(&req)
				switch resp.Status {
				case clientproto.StOK:
					lastAcked.Store(int64(i))
					break attempt
				case clientproto.StUnknown:
					break attempt // ambiguous: may or may not have applied
				case clientproto.StRetry:
					time.Sleep(resp.RetryAfter + time.Millisecond)
				case clientproto.StNotServing:
					for did, d := range ds {
						d.mu.Lock()
						_, hosts := d.shardKVs[newtop.GroupID(resp.Group)]
						d.mu.Unlock()
						if hosts {
							id = did
							break
						}
					}
					time.Sleep(time.Millisecond)
				default:
					break attempt
				}
				if time.Now().After(deadline) {
					break attempt
				}
			}
		}
	}()

	time.Sleep(50 * time.Millisecond) // let some pre-move writes land
	src := shard.FirstDataGroup
	target, err := ds[1].MoveRange(mid, 0, []newtop.ProcessID{1, 3})
	if err != nil {
		t.Fatalf("MoveRange: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // and some post-move writes
	close(stop)
	<-writerDone

	// The map re-routed the range on every daemon.
	for id, d := range ds {
		waitFor(t, 10*time.Second, fmt.Sprintf("P%d map converges", id), func() bool {
			r, _, ok := d.ShardMap().Lookup(mid)
			return ok && r.Group == target
		})
	}
	// Daemon 3 (never a member of the source group) now hosts the range.
	ds[3].mu.Lock()
	_, hosts := ds[3].shardKVs[target]
	ds[3].mu.Unlock()
	if !hosts {
		t.Fatal("invited member never attached the target group")
	}

	// Zero acked-write loss: every seeded key reads back, from whichever
	// group owns it now.
	for _, p := range seeded {
		resp := shardDo(t, ds, clientproto.Request{Op: clientproto.OpBarrierGet, Key: p.k})
		if !resp.Found || resp.Value != p.v {
			t.Fatalf("seeded key %s lost across the move: %+v", p.k, resp)
		}
	}
	// The hot key's surviving version is at least the last OK-acked one
	// (UNKNOWN writes may legitimately have applied on top).
	resp := shardDo(t, ds, clientproto.Request{Op: clientproto.OpBarrierGet, Key: hot})
	if !resp.Found {
		t.Fatalf("hot key lost across the move (last acked %d)", lastAcked.Load())
	}
	got, err := strconv.Atoi(resp.Value)
	if err != nil || int64(got) < lastAcked.Load() {
		t.Fatalf("hot key went backwards: read %q, last acked %d", resp.Value, lastAcked.Load())
	}
	// Writes into the moved range ack through the new group...
	k := keyInRange("post", mid, 0)
	if resp := shardDo(t, ds, clientproto.Request{Op: clientproto.OpPut, Key: k, Value: "fresh"}); resp.Status != clientproto.StOK {
		t.Fatalf("post-move put: %+v", resp)
	}
	// ...and the source purged the moved keys but kept serving the rest.
	waitFor(t, 10*time.Second, "source purge applies", func() bool {
		ds[2].mu.Lock()
		kv := ds[2].shardKVs[src]
		ds[2].mu.Unlock()
		if kv == nil {
			return false
		}
		for _, p := range seeded {
			if shard.HashKey(p.k) >= mid {
				if _, ok := kv.Get(p.k); ok {
					return false
				}
			}
		}
		return true
	})
	// A stale-routed write straight into the source group is refused,
	// not acked: the fence outlives the move.
	ds[2].mu.Lock()
	srcRep, srcKV := ds[2].reps[src], ds[2].shardKVs[src]
	ds[2].mu.Unlock()
	if srcRep == nil || srcKV == nil {
		t.Fatal("source group gone from daemon 2")
	}
	stale := ds[2].serveShardWrite(srcRep, srcKV, shard.HashKey(hot), hot, "put "+hot+" stale")
	if stale.Status == clientproto.StOK {
		t.Fatalf("stale-routed write into the moved range was acked OK")
	}
	if !strings.Contains(stale.Reason+stale.Err, "moving") && stale.Status != clientproto.StUnknown {
		t.Fatalf("stale-routed write: %+v", stale)
	}
}
