package daemon

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// metricsServer is the daemon's introspection HTTP listener: /metrics in
// the Prometheus text exposition format, plus the standard pprof
// endpoints under /debug/pprof/. It is mounted on a private mux — never
// http.DefaultServeMux — so several in-process daemons (the harness, the
// in-memory tests) can each run their own without handler collisions.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
}

func newMetricsServer(d *Daemon, addr string) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.proc.MetricsRegistry().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &metricsServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

func (s *metricsServer) addr() string { return s.ln.Addr().String() }

func (s *metricsServer) close() { _ = s.srv.Close() }

// obsStatus condenses the registry into the STATUS response's v2 tail:
// total deliveries, total silent drops across every layer, and the
// engine's backlog of received-but-undelivered messages. These three
// answer the first triage questions — is the order advancing, is anything
// being lost, is delivery keeping up — without needing an HTTP scrape.
func (d *Daemon) obsStatus() (delivered, drops, queueDepth uint64) {
	snap := d.proc.Metrics()
	delivered = snap.Counters["newtop_engine_delivered_total"]
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "newtop_drops_total{") {
			drops += v
		}
	}
	if q := snap.Gauges["newtop_engine_queue_depth"]; q > 0 {
		queueDepth = uint64(q)
	}
	return delivered, drops, queueDepth
}
