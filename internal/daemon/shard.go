// Sharded mode: the daemon partitions the keyspace by hash across many
// Newtop data groups instead of replicating one store in one lineage of
// groups. Which arc of the hash ring belongs to which group is itself
// replicated state — a shard.Map driven through a small meta-group's
// total order — so every daemon converges on the same routing table
// without any coordination channel beside the protocol itself.
//
// Rebalancing follows the paper's group-lifecycle rule (§5.3): processes
// never rejoin an old group; movement means forming a NEW group and
// transferring state into it. MoveRange is that driver: fence the range
// in the source group's order, cut a range snapshot at the fence, seed a
// fresh group with it, and commit the routing flip in the meta order.
// The fence is the whole correctness story — an acked write is applied
// before the fence, therefore inside the snapshot, therefore owned by
// the new group; a write ordered after the fence is rejected at apply on
// every member and acked UNKNOWN at worst, never OK-then-lost.
package daemon

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"newtop"
	"newtop/internal/clientproto"
	"newtop/internal/rsm"
	"newtop/internal/shard"
)

// ShardConfig configures sharded mode. Every daemon in the fleet must be
// started with an identical ShardConfig: bootstrap is deterministic (each
// daemon bootstraps exactly the groups it belongs to), and the initial
// layout is proposed idempotently by everyone — first in the meta order
// wins, the rest are no-ops.
type ShardConfig struct {
	// Meta lists the meta-group members (default: every daemon named by
	// Initial's assigns plus Self).
	Meta []newtop.ProcessID
	// Initial is the bootstrap shard layout: hash-ring arcs and the
	// members of each arc's owning group. Use shard.UniformAssigns for
	// an even split.
	Initial []shard.Assign
}

// startShardGroups bootstraps the meta group (replicating the shard map)
// and every initial data group this daemon is a member of.
func (d *Daemon) startShardGroups() error {
	sc := d.cfg.Shard
	if len(sc.Initial) == 0 {
		return errors.New("daemon: sharded mode needs at least one initial assign")
	}
	d.smap = shard.NewMap()

	meta := sc.Meta
	if len(meta) == 0 {
		set := map[newtop.ProcessID]bool{d.cfg.Self: true}
		for _, a := range sc.Initial {
			for _, m := range a.Members {
				set[m] = true
			}
		}
		for p := range set {
			meta = append(meta, p)
		}
	}
	meta = sortedProcs(meta)

	d.mu.Lock()
	rep, err := newtop.Replicate(d.proc, shard.MetaGroup, d.smap)
	if err == nil {
		d.reps[shard.MetaGroup] = rep
	}
	d.mu.Unlock()
	if err != nil {
		return err
	}
	if err := d.proc.BootstrapGroup(shard.MetaGroup, d.cfg.Mode, meta); err != nil {
		return err
	}

	hosted := 0
	for _, a := range sc.Initial {
		if !containsProc(a.Members, d.cfg.Self) {
			continue
		}
		kv := newtop.NewKV()
		d.mu.Lock()
		r, rerr := newtop.Replicate(d.proc, a.Group, kv)
		if rerr == nil {
			d.reps[a.Group] = r
			d.shardKVs[a.Group] = kv
		}
		d.mu.Unlock()
		if rerr != nil {
			return rerr
		}
		if err := d.proc.BootstrapGroup(a.Group, d.cfg.Mode, sortedProcs(a.Members)); err != nil {
			return err
		}
		hosted++
	}
	d.logf("P%d up (sharded); meta group g%d members %v, hosting %d of %d shard groups",
		d.cfg.Self, shard.MetaGroup, meta, hosted, len(sc.Initial))
	return nil
}

// publishShardIdentity proposes the initial layout and this daemon's
// client address into the meta order, retrying until both are applied
// locally. Every daemon proposes the same init; the first one ordered
// wins and the rest are deterministic no-ops, so no daemon is special.
func (d *Daemon) publishShardIdentity() {
	defer d.wg.Done()
	addr := d.ClientAddr()
	d.mu.Lock()
	rep := d.reps[shard.MetaGroup]
	d.mu.Unlock()
	if rep == nil {
		return
	}
	init := shard.CmdInit(d.cfg.Shard.Initial)
	for {
		err := rep.Propose(init)
		if err == nil && addr != "" {
			err = rep.Propose(shard.CmdAddr(d.cfg.Self, addr))
		}
		if err == nil {
			err = rep.Read(func(newtop.StateMachine) {})
		}
		if err == nil && d.smap.Initialized() {
			if a, ok := d.smap.Addr(d.cfg.Self); addr == "" || (ok && a == addr) {
				return
			}
		}
		select {
		case <-d.done:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// attachShardInvite handles a formation invite for a shard-space group:
// we were named a member of a data group someone is forming (the target
// of a MoveRange), so attach a catch-up replica over a fresh store — the
// range's keys arrive through the chunked state transfer inside the new
// group's total order. The lineage cut-over machinery does not apply:
// shard groups supersede nothing.
func (d *Daemon) attachShardInvite(g newtop.GroupID) {
	if !shard.IsDataGroup(g) {
		d.logf("ignoring invite for meta-space group g%d", g)
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	if _, ok := d.reps[g]; ok {
		return // the move driver already attached the incumbent replica
	}
	kv := newtop.NewKV()
	rep, err := newtop.Replicate(d.proc, g, kv, newtop.CatchUp())
	if err != nil {
		d.logf("replicate shard group g%d: %v", g, err)
		return
	}
	d.reps[g] = rep
	d.shardKVs[g] = kv
	d.logf("joined shard group g%d; catching up", g)
}

// ShardMap exposes the replicated shard map (nil unless sharded mode).
func (d *Daemon) ShardMap() *shard.Map { return d.smap }

// ShardsReady reports whether this daemon can serve sharded traffic: the
// meta replica is caught up, the map is initialized, and every hosted
// data replica is caught up.
func (d *Daemon) ShardsReady() bool {
	if d.smap == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	meta := d.reps[shard.MetaGroup]
	if meta == nil || !meta.CaughtUp() || !d.smap.Initialized() {
		return false
	}
	for g := range d.shardKVs {
		if rep := d.reps[g]; rep == nil || !rep.CaughtUp() {
			return false
		}
	}
	return true
}

// serveSharded is serveRequest for sharded mode: route by key hash
// through the replicated map, serve locally when this daemon hosts the
// owning group, redirect with a shard hint (map epoch + owning arc +
// a member's client address) when it does not. The lineage path's
// pendingInvites write-hold does not apply here — shard-group formation
// supersedes nothing; mid-move safety comes from the fence.
func (d *Daemon) serveSharded(req *clientproto.Request) clientproto.Response {
	if req.Op == clientproto.OpStatus {
		return d.shardStatus()
	}
	h := shard.HashKey(req.Key)
	route, epoch, ok := d.smap.Lookup(h)
	if !ok {
		return clientproto.Response{Status: clientproto.StRetry,
			RetryAfter: 50 * time.Millisecond, Reason: "shard map not initialized"}
	}
	d.mu.Lock()
	rep := d.reps[route.Group]
	kv := d.shardKVs[route.Group]
	d.mu.Unlock()
	if rep == nil || kv == nil {
		return clientproto.Response{
			Status:  clientproto.StNotServing,
			Group:   uint64(route.Group),
			Addr:    d.smap.AddrHint(route.Group, h, d.cfg.Self),
			Epoch:   epoch,
			RangeLo: route.Lo,
			RangeHi: route.Hi,
		}
	}
	if !rep.CaughtUp() {
		// A freshly invited member still streaming the moved range in.
		// Redirecting would just bounce among equally new members; the
		// transfer is short, so hold the client here.
		return clientproto.Response{Status: clientproto.StRetry,
			RetryAfter: 20 * time.Millisecond, Reason: "shard catching up"}
	}
	switch req.Op {
	case clientproto.OpGet:
		return d.serveRead(rep, kv, req.Key, false)
	case clientproto.OpBarrierGet:
		return d.serveRead(rep, kv, req.Key, true)
	case clientproto.OpPut:
		if err := clientproto.ValidKey(req.Key); err != nil {
			return clientproto.Response{Status: clientproto.StErr, Err: err.Error()}
		}
		if err := clientproto.ValidValue(req.Value); err != nil {
			return clientproto.Response{Status: clientproto.StErr, Err: err.Error()}
		}
		return d.serveShardWrite(rep, kv, h, req.Key, "put "+req.Key+" "+req.Value)
	case clientproto.OpDel:
		if err := clientproto.ValidKey(req.Key); err != nil {
			return clientproto.Response{Status: clientproto.StErr, Err: err.Error()}
		}
		return d.serveShardWrite(rep, kv, h, req.Key, "del "+req.Key)
	}
	return clientproto.Response{Status: clientproto.StErr, Err: "unknown op"}
}

// serveShardWrite proposes one command into the shard's total order with
// the move write-gate closed around it. Before proposing: a key inside a
// pending move's range, or inside a fenced range, is refused with RETRY —
// the write never entered the order, so retrying is safe. After the ack
// wait: if the range is fenced NOW, the fence raced this write into the
// order and the apply may have rejected it on every member — the only
// honest answer is UNKNOWN. An OK therefore means the write was applied
// with no fence ordered before it, which puts it inside any later
// snapshot cut: acked writes survive the move by construction.
func (d *Daemon) serveShardWrite(rep *newtop.Replica, kv *newtop.KV, h uint64, key, cmd string) clientproto.Response {
	if d.smap.InPendingRange(h) || kv.FencedKey(key) {
		return clientproto.Response{Status: clientproto.StRetry,
			RetryAfter: 25 * time.Millisecond, Reason: "key range moving between shards"}
	}
	if err := rep.Propose([]byte(cmd)); err != nil {
		return retryOn(err)
	}
	if err := rep.Read(func(newtop.StateMachine) {}); err != nil {
		return clientproto.Response{Status: clientproto.StUnknown,
			Err: "write proposed but not confirmed: " + err.Error()}
	}
	if kv.FencedKey(key) {
		return clientproto.Response{Status: clientproto.StUnknown,
			Err: "write raced a shard move"}
	}
	return clientproto.Response{Status: clientproto.StOK, Found: true}
}

// shardStatus serves OpStatus in sharded mode: meta-replica progress plus
// fleet-local aggregates (keys across hosted shards; Members reports the
// hosted shard-group count — the closest analog to a view size here).
func (d *Daemon) shardStatus() clientproto.Response {
	d.mu.Lock()
	meta := d.reps[shard.MetaGroup]
	keys := 0
	groups := 0
	ready := true
	for g, kv := range d.shardKVs {
		keys += kv.Len()
		groups++
		if rep := d.reps[g]; rep == nil || !rep.CaughtUp() {
			ready = false
		}
	}
	d.mu.Unlock()
	if meta == nil {
		return clientproto.Response{Status: clientproto.StNotServing, Group: uint64(shard.MetaGroup)}
	}
	delivered, drops, queueDepth := d.obsStatus()
	return clientproto.Response{
		Status:     clientproto.StStatus,
		Self:       uint32(d.cfg.Self),
		Group:      uint64(shard.MetaGroup),
		Applied:    meta.AppliedSeq(),
		Digest:     meta.Digest(),
		Keys:       uint32(keys),
		Ready:      ready && meta.CaughtUp() && d.smap.Initialized(),
		Members:    uint32(groups),
		Delivered:  delivered,
		Drops:      drops,
		QueueDepth: queueDepth,
	}
}

// MoveRange splits the hash range [lo, hi) (hi == 0 meaning the ring
// top) out of its current owning group into a freshly formed group of
// members, and flips the routing in the meta order. The caller daemon
// must be a member of members: the driver doubles as the new group's
// incumbent, seeding it with the snapshot cut (§5.3 — the state streamer
// is a member of the new group by construction). Returns the new group's
// ID.
//
// Sequence: meta PENDING (reserves the range, gates new writes) → source
// FENCE (closes the range's order) → snapshot cut at the fence → seed
// incumbent → dynamic formation (invited members catch up inside the new
// order) → meta COMMIT (epoch bump re-routes) → source PURGE (drops the
// moved keys; the fence stays as the permanent stale-route write-gate).
// Any failure before COMMIT aborts: meta ABORT + source UNFENCE restore
// the pre-move world exactly.
func (d *Daemon) MoveRange(lo, hi uint64, members []newtop.ProcessID) (newtop.GroupID, error) {
	if d.smap == nil {
		return 0, errors.New("daemon: not in sharded mode")
	}
	if !containsProc(members, d.cfg.Self) {
		return 0, errors.New("daemon: the move driver must be a member of the target group")
	}
	d.moveMu.Lock()
	defer d.moveMu.Unlock()

	route, _, ok := d.smap.Lookup(lo)
	if !ok {
		return 0, errors.New("daemon: shard map not initialized")
	}
	d.mu.Lock()
	metaRep := d.reps[shard.MetaGroup]
	srcRep := d.reps[route.Group]
	srcKV := d.shardKVs[route.Group]
	d.mu.Unlock()
	if metaRep == nil {
		return 0, errors.New("daemon: meta replica not attached")
	}
	if srcRep == nil || srcKV == nil {
		return 0, fmt.Errorf("daemon: source shard g%d not hosted here (drive the move from a member)", route.Group)
	}
	target := d.smap.NextDataGroup()

	// 1. Reserve the move in the meta order. First PENDING ordered wins;
	// a conflicting in-flight move leaves the map unchanged and we see
	// someone else's reservation (or none matching ours) after the ack.
	pend := shard.Pending{Lo: lo, Hi: hi, Group: target, Members: members}
	if err := metaRep.Propose(shard.CmdPending(pend)); err != nil {
		return 0, err
	}
	if err := metaRep.Read(func(newtop.StateMachine) {}); err != nil {
		return 0, err
	}
	if pm, ok := d.smap.PendingMove(); !ok || pm.Group != target || pm.Lo != lo || pm.Hi != hi {
		return 0, errors.New("daemon: move rejected (conflicting move in flight, or range does not fit one arc)")
	}

	abort := func(stage string, err error) (newtop.GroupID, error) {
		_ = srcRep.Propose(rsm.CmdUnfence(lo, hi))
		_ = metaRep.Propose(shard.CmdAbort(lo, hi, target))
		d.logf("move of [%#x,%#x) to g%d aborted at %s: %v", lo, hi, target, stage, err)
		return 0, fmt.Errorf("daemon: move aborted at %s: %w", stage, err)
	}

	// 2. Fence the range in the source order. Once the fence is applied
	// locally, every in-range write that will ever be acked is already in
	// our local state (acks require local apply, and post-fence applies
	// reject the range on every member alike).
	if err := srcRep.Propose(rsm.CmdFence(lo, hi)); err != nil {
		return abort("fence", err)
	}
	if err := srcRep.Read(func(newtop.StateMachine) {}); err != nil {
		return abort("fence ack", err)
	}

	// 3. Cut the snapshot. Read pauses applies around fn; together with
	// the fence this makes the cut exactly "every acked in-range write".
	var snap []byte
	if err := srcRep.Read(func(newtop.StateMachine) { snap = srcKV.SnapshotRange(lo, hi) }); err != nil {
		return abort("snapshot cut", err)
	}

	// 4. Seed the target group and form it. The incumbent replica is
	// authoritative from birth; invited members stream the state through
	// the chunked transfer inside the new group's own total order.
	tkv := newtop.NewKV()
	if err := tkv.Restore(snap); err != nil {
		return abort("restore", err)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0, newtop.ErrClosed
	}
	trep, err := newtop.Replicate(d.proc, target, tkv)
	if err == nil {
		d.reps[target] = trep
		d.shardKVs[target] = tkv
	}
	d.mu.Unlock()
	if err != nil {
		return abort("target replicate", err)
	}
	if err := d.proc.CreateGroup(target, d.cfg.Mode, sortedProcs(members)); err != nil {
		d.dropShardReplica(target)
		return abort("formation", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !d.proc.GroupReady(target) {
		d.mu.Lock()
		_, still := d.reps[target] // formation failure deregisters it
		d.mu.Unlock()
		if !still {
			return abort("formation", errors.New("group formation failed"))
		}
		if time.Now().After(deadline) {
			d.dropShardReplica(target)
			return abort("formation", errors.New("group formation timed out"))
		}
		select {
		case <-d.done:
			return 0, newtop.ErrClosed
		case <-time.After(10 * time.Millisecond):
		}
	}

	// 5. Commit the routing flip. After this is ordered, every daemon's
	// map (as its meta replica applies it) routes the range to the new
	// group and redirects clients there.
	if err := metaRep.Propose(shard.CmdCommit(lo, hi, target)); err != nil {
		return 0, fmt.Errorf("daemon: move formed g%d but the commit could not be proposed: %w", target, err)
	}
	if err := metaRep.Read(func(newtop.StateMachine) {}); err != nil {
		return 0, fmt.Errorf("daemon: move formed g%d but the commit ack failed: %w", target, err)
	}

	// 6. Drop the moved keys from the source. The fence stays up for
	// good: a write routed here by a stale map must keep failing into a
	// retry, never be acked into a group that no longer owns the range.
	if err := srcRep.Propose(rsm.CmdPurge(lo, hi)); err == nil {
		_ = srcRep.Read(func(newtop.StateMachine) {})
	}
	d.logf("moved shard range [%#x,%#x) from g%d to new group g%d (epoch %d)",
		lo, hi, route.Group, target, d.smap.Epoch())
	return target, nil
}

// dropShardReplica detaches and closes a shard replica this daemon
// attached (the target of a move that failed to form).
func (d *Daemon) dropShardReplica(g newtop.GroupID) {
	d.mu.Lock()
	rep := d.reps[g]
	delete(d.reps, g)
	delete(d.shardKVs, g)
	d.mu.Unlock()
	if rep != nil {
		_ = rep.Close()
	}
}

func containsProc(ps []newtop.ProcessID, p newtop.ProcessID) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

func sortedProcs(ps []newtop.ProcessID) []newtop.ProcessID {
	out := append([]newtop.ProcessID(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
