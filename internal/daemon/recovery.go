package daemon

// Durability and restart recovery. With Config.DataDir set, the daemon
// writes every applied command to a per-group WAL and cuts periodic state
// snapshots (internal/storage, via the newtop facade). On restart it
// restores the newest on-disk incarnation locally — snapshot plus replay
// tail, truncating any torn record — and rejoins its former partners
// through the reconcile fast path: it announces itself to the old
// membership until a survivor's exclusion detector fires, the survivors
// form the merged successor group, and reconciliation (usually the
// identical-digest short circuit) brings it current. A full snapshot
// transfer happens only on the discard path, when the on-disk lineage
// turns out to be superseded by the cluster's.

import (
	"fmt"
	"sort"
	"time"

	"newtop"
	"newtop/internal/obs"
)

// recoveryMetrics counts the durability layer's restart lifecycle.
type recoveryMetrics struct {
	replays       *obs.Counter // successful local recoveries
	entries       *obs.Counter // WAL entries replayed during recovery
	truncated     *obs.Counter // torn/corrupt records truncated during recovery
	fastpath      *obs.Counter // recoveries completed via reconcile
	fullTransfers *obs.Counter // recoveries that fell back to a snapshot transfer
	discards      *obs.Counter // data dirs discarded as superseded
}

func newRecoveryMetrics(reg *obs.Registry) recoveryMetrics {
	return recoveryMetrics{
		replays:       reg.Counter("newtop_recovery_replays_total"),
		entries:       reg.Counter("newtop_recovery_replayed_entries_total"),
		truncated:     reg.Counter("newtop_recovery_truncated_records_total"),
		fastpath:      reg.Counter("newtop_recovery_fastpath_total"),
		fullTransfers: reg.Counter("newtop_recovery_full_transfers_total"),
		discards:      reg.Counter("newtop_recovery_discards_total"),
	}
}

// openStorage opens the data directory and, when it holds a previous
// incarnation's state, restores it into the daemon's KV: latest snapshot,
// apply-clock seed, WAL replay tail. Called from Start before any group
// exists; sets recoveredG when there is a lineage to rejoin.
func (d *Daemon) openStorage() error {
	policy, err := newtop.ParseFsync(d.cfg.Fsync)
	if err != nil {
		return err
	}
	st, err := newtop.OpenStore(newtop.StoreOptions{
		Dir:      d.cfg.DataDir,
		Policy:   policy,
		Interval: d.cfg.FsyncInterval,
		Metrics:  d.proc.MetricsRegistry(),
	})
	if err != nil {
		return err
	}
	d.store = st
	groups := st.Groups()
	if len(groups) == 0 {
		return nil
	}
	if d.cfg.Join != 0 {
		// An explicit Join is an instruction to enter the cluster's
		// lineage, which supersedes whatever this directory holds.
		d.logf("data dir %s holds g%d..g%d but Join=g%d was requested; discarding",
			d.cfg.DataDir, groups[0], groups[len(groups)-1], d.cfg.Join)
		d.rm.discards.Inc()
		return st.Reset()
	}
	// Recover the newest incarnation actually holding state. Higher empty
	// directories (a crash between creating a successor's dir and its
	// baseline snapshot) fall through to the previous one.
	for i := len(groups) - 1; i >= 0; i-- {
		g := groups[i]
		l, err := st.OpenGroup(g)
		if err != nil {
			return err
		}
		rec, err := l.Recover()
		if err != nil {
			return err
		}
		d.dlogs[g] = l
		if rec.IsEmpty() {
			continue
		}
		if rec.Snapshot != nil {
			if err := d.kv.Restore(rec.Snapshot); err != nil {
				return fmt.Errorf("daemon: restoring g%d snapshot: %w", g, err)
			}
		}
		// Resume the apply clock at the snapshot's count, then replay the
		// tail — revisions continue exactly where the lineage left off.
		d.kv.ApplyMerge(rec.SnapApplied, nil, nil)
		for _, e := range rec.Entries {
			d.kv.Apply(e.Cmd)
		}
		d.recoveredG = g
		d.recoveredApplied = rec.Applied()
		if m, ok := st.LoadMeta(); ok && m.Group == g {
			d.recoveredMembers = append([]newtop.ProcessID(nil), m.Members...)
		}
		d.rm.replays.Inc()
		d.rm.entries.Add(uint64(len(rec.Entries)))
		d.rm.truncated.Add(uint64(rec.Truncated))
		d.logf("recovered g%d from %s: %d keys, %d replayed entries, %d truncated records (pos %v)",
			g, d.cfg.DataDir, d.kv.Len(), len(rec.Entries), rec.Truncated, rec.Pos())
		return nil
	}
	return nil
}

// startRecovered is startGroups for a daemon that restored on-disk state:
// it never bootstraps or joins — groups are never rejoined (§3), so the
// way back in is a merged successor group only the survivors can form.
func (d *Daemon) startRecovered() error {
	seen := map[newtop.ProcessID]bool{d.cfg.Self: true}
	var peers []newtop.ProcessID
	add := func(p newtop.ProcessID) {
		if !seen[p] {
			seen[p] = true
			peers = append(peers, p)
		}
	}
	for _, p := range d.recoveredMembers {
		add(p)
	}
	if len(peers) == 0 {
		// No membership sidecar survived: fall back to the configured
		// address book.
		for p := range d.cfg.Peers {
			add(p)
		}
		for _, p := range d.cfg.Initial {
			add(p)
		}
	}
	if len(peers) == 0 {
		// Sole member of its lineage: nobody to rejoin. Re-bootstrap the
		// next incarnation with the restored state as its base.
		next := d.recoveredG + 1
		d.mu.Lock()
		d.recoveredG = 0
		d.mu.Unlock()
		if err := d.replicate(next); err != nil {
			return err
		}
		if err := d.proc.BootstrapGroup(next, d.cfg.Mode, []newtop.ProcessID{d.cfg.Self}); err != nil {
			return err
		}
		d.rm.fastpath.Inc()
		d.logf("sole-member recovery: re-bootstrapped as g%d with restored state", next)
		return nil
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	d.wg.Add(1)
	go d.announceRecovered(peers)
	d.logf("recovered P%d@g%d: announcing to %v until readmitted", d.cfg.Self, d.recoveredG, peers)
	return nil
}

// announceRecovered probes the old membership with the recovered group
// tag until reconciliation completes (or the daemon closes). A restarted
// process is invisible to the heal machinery until it speaks — it removed
// nobody, so no survivor probes it — and these probes are what make the
// survivors' exclusion detectors fire. The node side debounces, so
// repeated probes cost messages, not duplicate heal events.
func (d *Daemon) announceRecovered(peers []newtop.ProcessID) {
	defer d.wg.Done()
	every := d.cfg.HealProbeInterval
	if every <= 0 {
		every = 250 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		d.mu.Lock()
		g := d.recoveredG
		closed := d.closed
		d.mu.Unlock()
		if g == 0 || closed {
			return
		}
		_ = d.proc.Probe(g, peers)
		select {
		case <-t.C:
		case <-d.done:
			return
		}
	}
}

// durableOptsLocked returns the replica options wiring group g to its WAL
// (none when the daemon runs without a data dir). Caller holds mu.
func (d *Daemon) durableOptsLocked(g newtop.GroupID) ([]newtop.ReplicaOption, error) {
	if d.store == nil {
		return nil, nil
	}
	l, ok := d.dlogs[g]
	if !ok {
		var err error
		l, err = d.store.OpenGroup(g)
		if err != nil {
			return nil, err
		}
		if _, err := l.Recover(); err != nil {
			return nil, err
		}
		d.dlogs[g] = l
	}
	return []newtop.ReplicaOption{
		newtop.WithDurableLog(l),
		newtop.WithSnapshotEvery(d.cfg.SnapshotEvery),
	}, nil
}

// saveMeta records the serving group and its membership in the store's
// sidecar — the announce targets of a future recovery. Called on view
// changes and group readiness, outside mu (View goes through the node).
func (d *Daemon) saveMeta(g newtop.GroupID) {
	if d.store == nil {
		return
	}
	d.mu.Lock()
	serving := d.serving
	d.mu.Unlock()
	if g != serving {
		return
	}
	v, err := d.proc.View(g)
	if err != nil {
		return
	}
	_ = d.store.SaveMeta(newtop.StoreMeta{Group: g, Members: v.Members})
}

// prune discards on-disk incarnations older than the serving group's —
// but only once the serving log is anchored by a baseline snapshot, so a
// crash right now still finds a complete older lineage to fall back to.
func (d *Daemon) prune() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.store == nil {
		return
	}
	l, ok := d.dlogs[d.serving]
	if !ok {
		return
	}
	if sp, _ := l.SnapPos(); sp.IsNil() {
		return
	}
	d.store.Prune(d.serving)
	for g := range d.dlogs {
		if g != d.serving {
			delete(d.dlogs, g)
		}
	}
}

// discardRecovered runs when an invitation proves the on-disk lineage
// superseded (the cluster is forming groups at or below the recovered
// incarnation, so our state is from a world the cluster has moved past):
// wipe the store AND the restored KV, then reconcile into the merged
// group empty. The empty side loses every differing bucket, so the
// reconcile entry exchange streams the survivors' full state across —
// a full transfer in effect, through the same machinery as the fast
// path. (A CatchUp attach would deadlock here: the survivors hold
// reconciling replicas that wait on our summary and cannot answer a
// sync request until reconciliation completes.)
func (d *Daemon) discardRecovered(inv invitation) {
	d.mu.Lock()
	old := d.recoveredG
	d.recoveredG = 0
	d.dlogs = make(map[newtop.GroupID]*newtop.DurableLog)
	var low = d.cfg.Self
	for _, m := range inv.members {
		if m < low {
			low = m
		}
	}
	d.mu.Unlock()
	if err := d.store.Reset(); err != nil {
		d.logf("discarding superseded data dir: %v", err)
	}
	// No replica is attached in recovered mode, so the KV is ours to wipe.
	_ = d.kv.Restore(newtop.NewKV().Snapshot())
	d.rm.discards.Inc()
	d.rm.fullTransfers.Inc()
	d.logf("data dir lineage g%d superseded by invitation into g%d; discarding and rejoining empty",
		old, inv.g)
	if err := d.reconcile(inv.g, inv.members, uint64(d.cfg.Self), uint64(low)); err != nil {
		d.logf("reconcile g%d: %v", inv.g, err)
	}
}

// Kill tears the daemon down the way kill -9 would, for crash-recovery
// tests: the transport endpoint dies mid-flight (in-memory networks
// only), the WAL loses its unsynced tail per the power-loss model, and
// nothing is flushed on the way out. The data directory is left exactly
// as a real crash would leave it; a subsequent Start with the same
// DataDir exercises recovery.
func (d *Daemon) Kill() {
	if d.cfg.Network != nil {
		d.cfg.Network.Crash(d.cfg.Self)
	}
	if d.store != nil {
		d.store.Crash()
	}
	_ = d.Close()
}

// DurabilityStatus reports the durability layer's positions for STATUS:
// whether a data dir is configured, the serving group's last appended WAL
// position, and its latest snapshot cut.
func (d *Daemon) DurabilityStatus() (enabled bool, wal, snap newtop.LogPos) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.store == nil {
		return false, newtop.LogPos{}, newtop.LogPos{}
	}
	if l, ok := d.dlogs[d.serving]; ok {
		wal = l.Pos()
		snap, _ = l.SnapPos()
	}
	return true, wal, snap
}
