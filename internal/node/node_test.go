package node

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"newtop/internal/core"
	"newtop/internal/transport/memnet"
	"newtop/internal/types"
	"newtop/internal/wire"
)

// newTrio starts three nodes over an in-memory network.
func newTrio(t *testing.T, mutate ...func(*core.Config)) (*memnet.Network, []*Node) {
	t.Helper()
	net := memnet.New(memnet.WithSeed(1))
	var nodes []*Node
	for i := 1; i <= 3; i++ {
		ep, err := net.Attach(types.ProcessID(i))
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{Self: types.ProcessID(i), Omega: 10 * time.Millisecond}
		for _, m := range mutate {
			m(&cfg)
		}
		nodes = append(nodes, New(cfg, ep, Options{}))
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		net.Close()
	})
	return net, nodes
}

func members(n int) []types.ProcessID {
	out := make([]types.ProcessID, n)
	for i := range out {
		out[i] = types.ProcessID(i + 1)
	}
	return out
}

func recvDelivery(t *testing.T, n *Node) Delivery {
	t.Helper()
	select {
	case d, ok := <-n.Deliveries():
		if !ok {
			t.Fatal("deliveries channel closed")
		}
		return d
	case <-time.After(10 * time.Second):
		t.Fatalf("%v: timed out waiting for delivery", n.Self())
	}
	return Delivery{}
}

func TestNodeTotalOrderOverMemnet(t *testing.T) {
	_, nodes := newTrio(t)
	for _, n := range nodes {
		if err := n.BootstrapGroup(1, core.Symmetric, members(3)); err != nil {
			t.Fatal(err)
		}
	}
	const per = 10
	// Concurrent senders from all three nodes.
	for _, n := range nodes {
		n := n
		go func() {
			for i := 0; i < per; i++ {
				if err := n.Submit(1, []byte(fmt.Sprintf("%v-%d", n.Self(), i))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	var seqs [3][]string
	for i, n := range nodes {
		for k := 0; k < 3*per; k++ {
			d := recvDelivery(t, n)
			seqs[i] = append(seqs[i], string(d.Payload))
		}
	}
	for i := 1; i < 3; i++ {
		for k := range seqs[0] {
			if seqs[i][k] != seqs[0][k] {
				t.Fatalf("node %d diverges at %d: %q vs %q", i+1, k, seqs[i][k], seqs[0][k])
			}
		}
	}
}

func TestNodeViewChangeOnCrash(t *testing.T) {
	net, nodes := newTrio(t)
	for _, n := range nodes {
		if err := n.BootstrapGroup(1, core.Symmetric, members(3)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	net.Crash(3)
	deadline := time.After(20 * time.Second)
	for _, n := range nodes[:2] {
		for {
			select {
			case ev := <-n.Events():
				if ev.Kind == EventViewChanged && !ev.View.Contains(3) {
					goto next
				}
			case <-deadline:
				t.Fatalf("%v never installed a view excluding P3", n.Self())
			}
		}
	next:
	}
	v, err := nodes[0].View(1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 2 {
		t.Errorf("view = %v, want 2 members", v)
	}
}

func TestNodeDynamicFormationAndLeave(t *testing.T) {
	_, nodes := newTrio(t)
	if err := nodes[0].CreateGroup(5, core.Symmetric, members(3)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(20 * time.Second)
	for _, n := range nodes {
		for {
			select {
			case ev := <-n.Events():
				if ev.Kind == EventGroupReady && ev.Group == 5 {
					goto ready
				}
				if ev.Kind == EventFormationFailed {
					t.Fatalf("%v: formation failed: %s", n.Self(), ev.Reason)
				}
			case <-deadline:
				t.Fatalf("%v: formation never completed", n.Self())
			}
		}
	ready:
	}
	if err := nodes[1].Submit(5, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		d := recvDelivery(t, n)
		if string(d.Payload) != "hello" || d.Group != 5 || d.Sender != 2 {
			t.Errorf("%v got %+v", n.Self(), d)
		}
	}
	if err := nodes[2].LeaveGroup(5); err != nil {
		t.Fatal(err)
	}
	if err := nodes[2].Submit(5, []byte("x")); !errors.Is(err, core.ErrLeftGroup) {
		t.Errorf("submit after leave: err = %v, want ErrLeftGroup", err)
	}
}

// TestNodeHealDetection: a partition splits a group; once each side has
// excluded the other, the low-rate heal probes to removed members go
// unanswered — until the network heals, when the first message through
// (a probe from the far side) raises EventHealDetected on both sides.
func TestNodeHealDetection(t *testing.T) {
	net := memnet.New(memnet.WithSeed(4))
	var nodes []*Node
	for i := 1; i <= 4; i++ {
		ep, err := net.Attach(types.ProcessID(i))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, New(
			core.Config{Self: types.ProcessID(i), Omega: 10 * time.Millisecond},
			ep,
			Options{HealProbeEvery: 30 * time.Millisecond},
		))
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		net.Close()
	})
	for _, n := range nodes {
		if err := n.BootstrapGroup(1, core.Symmetric, members(4)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	net.Partition([]types.ProcessID{1, 2}, []types.ProcessID{3, 4})

	// Traffic accelerates suspicion; wait for disjoint stable views.
	_ = nodes[0].Submit(1, []byte("side A"))
	_ = nodes[2].Submit(1, []byte("side B"))
	deadline := time.Now().Add(30 * time.Second)
	for {
		vA, errA := nodes[0].View(1)
		vB, errB := nodes[2].View(1)
		if errA == nil && errB == nil && !vA.Contains(3) && !vA.Contains(4) && !vB.Contains(1) && !vB.Contains(2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sides never stabilised: %v / %v", vA, vB)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Probes are flowing into the cut; no heal may be reported yet.
	drainUntil := time.After(100 * time.Millisecond)
	for draining := true; draining; {
		select {
		case ev := <-nodes[0].Events():
			if ev.Kind == EventHealDetected {
				t.Fatalf("heal detected while still partitioned: %+v", ev)
			}
		case <-drainUntil:
			draining = false
		}
	}

	net.Heal()
	for _, n := range []*Node{nodes[0], nodes[2]} {
		healDeadline := time.After(20 * time.Second)
		for {
			select {
			case ev := <-n.Events():
				if ev.Kind == EventHealDetected {
					if ev.Group != 1 {
						t.Fatalf("heal event for wrong group: %+v", ev)
					}
					far := map[types.ProcessID]bool{3: true, 4: true}
					if n.Self() >= 3 {
						far = map[types.ProcessID]bool{1: true, 2: true}
					}
					if !far[ev.Peer] {
						t.Fatalf("%v: healed peer %v is not from the far side", n.Self(), ev.Peer)
					}
					goto next
				}
			case <-healDeadline:
				t.Fatalf("%v: EventHealDetected never posted", n.Self())
			}
		}
	next:
	}
}

func TestNodeSubmitUnknownGroup(t *testing.T) {
	_, nodes := newTrio(t)
	if err := nodes[0].Submit(99, []byte("x")); !errors.Is(err, core.ErrUnknownGroup) {
		t.Errorf("err = %v, want ErrUnknownGroup", err)
	}
}

func TestNodeCloseIsIdempotentAndUnblocks(t *testing.T) {
	_, nodes := newTrio(t)
	n := nodes[0]
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Submit(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
	select {
	case _, ok := <-n.Deliveries():
		if ok {
			t.Error("unexpected delivery after close")
		}
	case <-time.After(time.Second):
		t.Error("deliveries channel not closed")
	}
}

func TestNodeStatsAndGroupReady(t *testing.T) {
	_, nodes := newTrio(t)
	for _, n := range nodes {
		if err := n.BootstrapGroup(1, core.Symmetric, members(3)); err != nil {
			t.Fatal(err)
		}
	}
	if !nodes[0].GroupReady(1) {
		t.Error("bootstrapped group not ready")
	}
	if err := nodes[0].Submit(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvDelivery(t, nodes[0])
	st := nodes[0].Stats()
	if st.DataSent != 1 {
		t.Errorf("DataSent = %d, want 1", st.DataSent)
	}
	if st.Delivered == 0 {
		t.Error("Delivered = 0")
	}
}

func TestNodeSubscribeGroupRoutesDeliveries(t *testing.T) {
	_, nodes := newTrio(t)
	// Subscribing before the group exists is allowed — it guarantees the
	// subscriber sees the group's very first delivery.
	sub, err := nodes[0].SubscribeGroup(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].SubscribeGroup(7); err == nil {
		t.Fatal("double subscribe succeeded")
	}
	for _, n := range nodes {
		if err := n.BootstrapGroup(7, core.Symmetric, members(3)); err != nil {
			t.Fatal(err)
		}
	}
	// A second group (distinct membership — identical memberships are
	// forbidden, §5.3) to show the shared channel still works.
	for _, n := range nodes[:2] {
		if err := n.BootstrapGroup(8, core.Symmetric, members(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := nodes[1].Submit(7, []byte("to-sink")); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Submit(8, []byte("to-shared")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-sub:
		if string(d.Payload) != "to-sink" || d.Group != 7 {
			t.Fatalf("sink got %+v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscribed delivery never arrived")
	}
	// The other group still flows through the shared channel.
	d := recvDelivery(t, nodes[0])
	if string(d.Payload) != "to-shared" || d.Group != 8 {
		t.Fatalf("shared channel got %+v", d)
	}
	// Unsubscribe closes the sink and reroutes the group.
	if err := nodes[0].UnsubscribeGroup(7); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub; ok {
		t.Fatal("sink channel not closed by unsubscribe")
	}
	if err := nodes[1].Submit(7, []byte("back-to-shared")); err != nil {
		t.Fatal(err)
	}
	d = recvDelivery(t, nodes[0])
	if string(d.Payload) != "back-to-shared" {
		t.Fatalf("rerouted delivery = %+v", d)
	}
}

func TestNodePostEventSurfacesOnEventsChannel(t *testing.T) {
	_, nodes := newTrio(t)
	nodes[0].PostEvent(Event{Kind: EventStateTransferred, Group: 3, Peer: 2})
	select {
	case ev := <-nodes[0].Events():
		if ev.Kind != EventStateTransferred || ev.Group != 3 || ev.Peer != 2 {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("posted event never surfaced")
	}
}

func TestNodeSubmitPayloadIsCopied(t *testing.T) {
	_, nodes := newTrio(t)
	for _, n := range nodes {
		if err := n.BootstrapGroup(1, core.Symmetric, members(3)); err != nil {
			t.Fatal(err)
		}
	}
	buf := []byte("original")
	if err := nodes[0].Submit(1, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!")
	d := recvDelivery(t, nodes[1])
	if string(d.Payload) != "original" {
		t.Errorf("payload = %q; caller's buffer mutation leaked", d.Payload)
	}
}

// TestNodeDeliveriesSurviveBufferReuse is the receive-side aliasing test
// for the borrowed-buffer contract: with poison-on-release enabled, every
// transport buffer is scribbled the moment its last reference drops, so a
// delivery that still aliased transport memory would surface as poisoned
// payload bytes. Distinct payloads from all three nodes must come out of
// the delivery stream byte-exact while buffers churn underneath.
func TestNodeDeliveriesSurviveBufferReuse(t *testing.T) {
	prev := wire.SetPoisonOnRelease(true)
	defer wire.SetPoisonOnRelease(prev)

	_, nodes := newTrio(t)
	for _, n := range nodes {
		if err := n.BootstrapGroup(1, core.Symmetric, members(3)); err != nil {
			t.Fatal(err)
		}
	}
	const per = 64
	for _, n := range nodes {
		n := n
		go func() {
			for i := 0; i < per; i++ {
				if err := n.Submit(1, []byte(fmt.Sprintf("payload-%v-%03d", n.Self(), i))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	next := make(map[types.ProcessID]int)
	for i := 0; i < 3*per; i++ {
		d := recvDelivery(t, nodes[2])
		want := fmt.Sprintf("payload-%v-%03d", d.Sender, next[d.Sender])
		if string(d.Payload) != want {
			t.Fatalf("delivery %d: payload = %q, want %q (poisoned or stale buffer?)", i, d.Payload, want)
		}
		next[d.Sender]++
	}
}

// TestNodeUnsubscribeReroutesResidue pins the unsubscribe contract: a
// subscriber that stops reading leaves ordered deliveries queued in its
// sink; UnsubscribeGroup must hand every one of them — including the one
// the sink's pump had in flight — to the shared channel, in order, ahead
// of later deliveries.
func TestNodeUnsubscribeReroutesResidue(t *testing.T) {
	_, nodes := newTrio(t)
	sub, err := nodes[0].SubscribeGroup(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := n.BootstrapGroup(7, core.Symmetric, members(3)); err != nil {
			t.Fatal(err)
		}
	}
	const total = 5
	for i := 0; i < total; i++ {
		if err := nodes[1].Submit(7, []byte{'r', byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for every delivery to reach the (unread) sink.
	deadline := time.Now().Add(10 * time.Second)
	for nodes[0].Stats().Delivered < total {
		if time.Now().After(deadline) {
			t.Fatalf("deliveries stalled: %+v", nodes[0].Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// Never read sub; unsubscribe must reroute the whole residue.
	if err := nodes[0].UnsubscribeGroup(7); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub; ok {
		t.Fatal("sink channel not closed")
	}
	// A post-unsubscribe delivery must arrive after the residue.
	if err := nodes[1].Submit(7, []byte("after")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		d := recvDelivery(t, nodes[0])
		if want := string([]byte{'r', byte('0' + i)}); string(d.Payload) != want {
			t.Fatalf("residue[%d] = %q, want %q", i, d.Payload, want)
		}
	}
	if d := recvDelivery(t, nodes[0]); string(d.Payload) != "after" {
		t.Fatalf("post-unsubscribe delivery = %q, want \"after\"", d.Payload)
	}
	// Unsubscribing an unknown group is a no-op, not an error.
	if err := nodes[0].UnsubscribeGroup(99); err != nil {
		t.Fatal(err)
	}
}

// TestNodeGroupSendsStopAfterLeave pins GroupSends as the quiescence
// probe: a group's transmission count grows while the node participates
// (ω-nulls at minimum) and freezes once the node leaves it.
func TestNodeGroupSendsStopAfterLeave(t *testing.T) {
	_, nodes := newTrio(t)
	for _, n := range nodes {
		if err := n.BootstrapGroup(7, core.Symmetric, members(3)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for nodes[0].GroupSends(7) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no traffic ever counted in g7")
		}
		time.Sleep(time.Millisecond)
	}
	if err := nodes[0].LeaveGroup(7); err != nil {
		t.Fatal(err)
	}
	base := nodes[0].GroupSends(7)
	time.Sleep(100 * time.Millisecond) // 10ω of would-be null traffic
	if got := nodes[0].GroupSends(7); got != base {
		t.Errorf("left group still sending: %d -> %d", base, got)
	}
}
