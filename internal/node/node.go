// Package node is the concurrent runtime around a Newtop protocol engine:
// one event-loop goroutine per process that serialises transport receipts,
// timer ticks and application calls into the single-threaded engine, and
// fans the engine's effects out to the network and to application-facing
// channels.
//
// The loop never blocks on the application: deliveries and membership
// events are buffered in unbounded queues drained by pump goroutines, so a
// slow consumer delays itself, not the protocol. Flow control (the
// engine's window) is the mechanism that bounds memory under sustained
// overload.
package node

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"newtop/internal/core"
	"newtop/internal/obs"
	"newtop/internal/ring"
	"newtop/internal/simtime"
	"newtop/internal/transport"
	"newtop/internal/types"
)

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("node: closed")

// Delivery is one application message delivered in the agreed order.
// Payload is owned memory (the node seals borrowed transport buffers
// before the engine retains them), so consumers — including the
// SubscribeGroup fan-out feeding rsm appliers — may hold it indefinitely
// without copying.
type Delivery struct {
	Group   types.GroupID
	Sender  types.ProcessID // the multicast's author
	Num     types.MsgNum    // the multicast's Lamport number (trace identity)
	Payload []byte
	ViewIdx int
	// Pos is the entry's address in the group's delivery stream —
	// identical at every member (total order), so the replication and
	// durability layers key snapshots, WAL records and replay on it.
	Pos types.LogPos
}

// EventKind tags membership events surfaced to the application.
type EventKind uint8

// Membership event kinds.
const (
	EventViewChanged EventKind = iota + 1
	EventGroupReady
	EventFormationFailed
	EventSuspected
	// EventStateTransferred is posted by the replication layer
	// (internal/rsm) when a replica finishes catching up: a snapshot plus
	// replay tail moved the group's state to this process.
	EventStateTransferred
	// EventHealDetected is posted when a message arrives from a process
	// this node had excluded from a group's view — the signal that a
	// partition healed (the node probes removed members at a low rate to
	// elicit exactly this). Groups never remerge (§5); the application
	// reacts by forming a merged successor group and reconciling, see
	// the rsm package.
	EventHealDetected
	// EventReconciled is posted by the replication layer when a
	// reconciliation completes: the group's members converged to the
	// merged state.
	EventReconciled
)

// Event is a membership-service notification.
type Event struct {
	Kind    EventKind
	Group   types.GroupID
	View    types.View        // EventViewChanged
	Removed []types.ProcessID // EventViewChanged
	Reason  string            // EventFormationFailed
	Suspect types.ProcessID   // EventSuspected
	Peer    types.ProcessID   // EventStateTransferred: the streamer; EventHealDetected: the healed peer
}

// DefaultHealProbeEvery is the default cadence of heal probes to removed
// members.
const DefaultHealProbeEvery = 2 * time.Second

// Options tunes the runtime.
type Options struct {
	// Clock supplies time; nil selects the wall clock.
	Clock simtime.Clock
	// TickEvery overrides the engine tick cadence (default ω/2).
	TickEvery time.Duration
	// HealProbeEvery is how often the node probes members excluded from
	// a view to detect a healed partition (any message arriving from a
	// removed member — a probe or otherwise — raises EventHealDetected).
	// Zero selects DefaultHealProbeEvery; negative disables probing.
	HealProbeEvery time.Duration
	// RingThreshold is the payload size in bytes at or above which a data
	// multicast is disseminated along the view-defined ring instead of
	// unicast to every member (see internal/ring). Zero disables ring
	// dissemination.
	RingThreshold int
	// RingPullAfter overrides how long a ring reassembly waits for its
	// payload before re-requesting it from the disseminator (default
	// 250ms). Only meaningful with RingThreshold > 0.
	RingPullAfter time.Duration
	// Metrics, when set, receives the node's observability series
	// (per-group send counters, heal-probe activity, sink reroutes) and is
	// shared with the ring layer. When nil the node keeps a private
	// registry so GroupSends still counts.
	Metrics *obs.Registry
}

// Node runs one Newtop process: engine + transport + timers.
type Node struct {
	eng  *core.Engine
	ep   transport.Endpoint
	clk  simtime.Clock
	tick time.Duration

	calls chan func()
	done  chan struct{} // closed by Close
	dead  chan struct{} // closed when the loop exits (e.g. transport gone)
	wg    sync.WaitGroup

	deliveries *outbox[Delivery]
	events     *outbox[Event]

	// sinks routes one group's deliveries to a dedicated subscriber (the
	// replication layer's per-group applier) instead of the shared
	// Deliveries channel. Only the event loop touches the map.
	sinks map[types.GroupID]*outbox[Delivery]

	// sent counts point-to-point transmissions per group (protocol and
	// probe traffic alike) — the observability hook for verifying that a
	// superseded or departed group has actually gone quiet. The values are
	// registry counters (`newtop_node_group_sends_total{group=...}`); only
	// the event loop touches the map, the counters themselves are atomic.
	reg  *obs.Registry
	sent map[types.GroupID]*obs.Counter
	om   nodeMetrics
	trc  *obs.Tracer // engine's tracer (from core.Config); rsm stamps StageApplied

	// rng is the ring-dissemination layer (nil when RingThreshold is 0):
	// outbound SendEffects and inbound messages thread through it, the
	// engine sees only reassembled ordinary traffic. ringQ buffers
	// messages the ring released while the loop was mid-way through an
	// effects batch (a view change flushing a reassembly queue); apply
	// feeds them to the engine once the batch is done, because the
	// engine's effects buffer is reused across calls.
	rng   *ring.Ring
	ringQ []ring.Delivered

	// Heal detection (only the event loop touches these): removed
	// tracks, per group, the processes excluded from the view; healed
	// marks (group, peer) pairs whose heal has already been reported so
	// the event fires once. Probes to removed members go out every
	// probeEvery until the group is left (see maybeProbe for why they
	// must not stop at first detection).
	removed    map[types.GroupID]map[types.ProcessID]bool
	healed     map[groupPeer]bool
	probeEvery time.Duration
	lastProbe  time.Time

	// excluded remembers, per peer, the last group this node excluded it
	// from — and unlike removed it SURVIVES leaving that group. A process
	// that recovers from disk announces itself by probing in its
	// recovered group incarnation, which may no longer match the group
	// the survivors excluded it from (they may have superseded it while
	// the peer was down); excluded lets noteInbound recognise the peer
	// anyway. Entries clear when a later view or formed group readmits
	// the peer.
	excluded map[types.ProcessID]types.GroupID

	closeOnce sync.Once
}

// groupPeer keys the heal-detection debounce.
type groupPeer struct {
	g types.GroupID
	p types.ProcessID
}

// nodeMetrics holds the node's pre-resolved observability handles.
type nodeMetrics struct {
	healProbes    *obs.Counter // probe nulls sent to removed members
	healsDetected *obs.Counter // partition heals observed (debounced)
	sinkRerouted  *obs.Counter // queued sink deliveries rerouted on unsubscribe
}

func newNodeMetrics(reg *obs.Registry) nodeMetrics {
	return nodeMetrics{
		healProbes:    reg.Counter("newtop_node_heal_probes_total"),
		healsDetected: reg.Counter("newtop_node_heals_detected_total"),
		sinkRerouted:  reg.Counter("newtop_node_sink_rerouted_total"),
	}
}

// sendInc bumps group g's transmission counter, resolving the handle on
// first use. Only the event loop calls it.
func (n *Node) sendInc(g types.GroupID) {
	c, ok := n.sent[g]
	if !ok {
		c = n.reg.Counter(fmt.Sprintf(`newtop_node_group_sends_total{group="%d"}`, uint64(g)))
		n.sent[g] = c
	}
	c.Inc()
}

// New creates and starts a node over the given endpoint. The endpoint's
// identity must match cfg.Self.
func New(cfg core.Config, ep transport.Endpoint, opts Options) *Node {
	clk := opts.Clock
	if clk == nil {
		clk = simtime.Real{}
	}
	eng := core.NewEngine(cfg)
	tick := opts.TickEvery
	if tick <= 0 {
		tick = eng.Omega() / 2
		if tick <= 0 {
			tick = core.DefaultOmega / 2
		}
	}
	probeEvery := opts.HealProbeEvery
	if probeEvery == 0 {
		probeEvery = DefaultHealProbeEvery
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	n := &Node{
		eng:        eng,
		ep:         ep,
		clk:        clk,
		tick:       tick,
		calls:      make(chan func()),
		done:       make(chan struct{}),
		dead:       make(chan struct{}),
		deliveries: newOutbox[Delivery](),
		events:     newOutbox[Event](),
		sinks:      make(map[types.GroupID]*outbox[Delivery]),
		reg:        reg,
		sent:       make(map[types.GroupID]*obs.Counter),
		om:         newNodeMetrics(reg),
		trc:        cfg.Tracer,
		removed:    make(map[types.GroupID]map[types.ProcessID]bool),
		healed:     make(map[groupPeer]bool),
		excluded:   make(map[types.ProcessID]types.GroupID),
		probeEvery: probeEvery,
		lastProbe:  clk.Now(),
	}
	if opts.RingThreshold > 0 {
		n.rng = ring.New(ring.Config{
			Self:      cfg.Self,
			Threshold: opts.RingThreshold,
			PullAfter: opts.RingPullAfter,
			Metrics:   reg,
		})
	}
	n.wg.Add(1)
	go n.loop()
	return n
}

// Self returns the process identifier.
func (n *Node) Self() types.ProcessID { return n.eng.Self() }

// Deliveries returns the ordered application-delivery channel. It is
// closed when the node closes.
func (n *Node) Deliveries() <-chan Delivery { return n.deliveries.ch }

// Events returns the membership-event channel. It is closed when the node
// closes.
func (n *Node) Events() <-chan Event { return n.events.ch }

// Close stops the node. The transport endpoint is closed as well.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		_ = n.ep.Close()
		n.wg.Wait() // loop stopped: sinks is safe to read from here
		n.deliveries.close()
		n.events.close()
		for _, s := range n.sinks {
			s.close()
		}
	})
	n.wg.Wait()
	return nil
}

// SubscribeGroup diverts group g's deliveries from the shared Deliveries
// channel to a dedicated channel — the replication layer's per-group
// applier feed. One subscriber per group; the channel is closed by
// UnsubscribeGroup or Close. Subscribing to a group that does not exist
// yet is allowed (and is how a replica guarantees it sees the group's very
// first delivery).
func (n *Node) SubscribeGroup(g types.GroupID) (<-chan Delivery, error) {
	var (
		ch  <-chan Delivery
		err error
	)
	cerr := n.call(func() {
		if _, ok := n.sinks[g]; ok {
			err = fmt.Errorf("node: group %v already subscribed", g)
			return
		}
		ob := newOutbox[Delivery]()
		n.sinks[g] = ob
		ch = ob.ch
	})
	if cerr != nil {
		return nil, cerr
	}
	return ch, err
}

// UnsubscribeGroup removes g's delivery subscription; subsequent
// deliveries go to the shared channel again. The subscriber's channel is
// closed, and deliveries still queued in it — ordered, never consumed —
// are rerouted to the shared channel, ahead of any delivery routed there
// afterwards: unsubscribing loses nothing.
func (n *Node) UnsubscribeGroup(g types.GroupID) error {
	return n.call(func() {
		ob, ok := n.sinks[g]
		if !ok {
			return
		}
		delete(n.sinks, g)
		// drain's wait is on the sink's own pump goroutine, which exits
		// as soon as the sink closes — safe from inside the event loop.
		for _, d := range ob.drain() {
			n.om.sinkRerouted.Inc()
			n.deliveries.push(d)
		}
	})
}

// GroupSends reports how many point-to-point transmissions this node has
// issued in group g over its lifetime. Monotone; a group that has been
// drained and left stops counting — which is exactly what callers assert.
// It is a view over the node's metrics registry.
func (n *Node) GroupSends(g types.GroupID) uint64 {
	var v uint64
	_ = n.call(func() { v = n.sent[g].Value() })
	return v
}

// Metrics returns the node's observability registry (never nil).
func (n *Node) Metrics() *obs.Registry { return n.reg }

// Tracer returns the engine's delivery-stream tracer (nil when tracing is
// off); downstream layers use it to stamp the applied stage.
func (n *Node) Tracer() *obs.Tracer { return n.trc }

// PostEvent publishes an application-layer event (e.g. the replication
// layer's EventStateTransferred) on the node's Events channel.
func (n *Node) PostEvent(ev Event) { n.events.push(ev) }

// call runs fn inside the event loop and waits for it.
func (n *Node) call(fn func()) error {
	doneCh := make(chan struct{})
	select {
	case n.calls <- func() { fn(); close(doneCh) }:
	case <-n.done:
		return ErrClosed
	case <-n.dead:
		return ErrClosed
	}
	select {
	case <-doneCh:
		return nil
	case <-n.done:
		return ErrClosed
	case <-n.dead:
		return ErrClosed
	}
}

// Submit multicasts payload in group g with the group's ordering mode.
func (n *Node) Submit(g types.GroupID, payload []byte) error {
	var err error
	p := append([]byte(nil), payload...) // caller keeps its slice
	cerr := n.call(func() {
		var effs []core.Effect
		effs, err = n.eng.Submit(n.clk.Now(), g, p)
		n.apply(effs)
	})
	if cerr != nil {
		return cerr
	}
	return err
}

// BootstrapGroup installs a statically agreed group (§4 style).
func (n *Node) BootstrapGroup(g types.GroupID, mode core.OrderMode, members []types.ProcessID) error {
	var err error
	ms := append([]types.ProcessID(nil), members...)
	cerr := n.call(func() {
		var effs []core.Effect
		effs, err = n.eng.BootstrapGroup(n.clk.Now(), g, mode, ms)
		n.apply(effs)
	})
	if cerr != nil {
		return cerr
	}
	return err
}

// CreateGroup initiates dynamic group formation (§5.3).
func (n *Node) CreateGroup(g types.GroupID, mode core.OrderMode, members []types.ProcessID) error {
	var err error
	ms := append([]types.ProcessID(nil), members...)
	cerr := n.call(func() {
		var effs []core.Effect
		effs, err = n.eng.CreateGroup(n.clk.Now(), g, mode, ms)
		n.apply(effs)
	})
	if cerr != nil {
		return cerr
	}
	return err
}

// LeaveGroup departs group g. Heal probing for the group stops: a
// departed group's partitions are no longer this process's business.
func (n *Node) LeaveGroup(g types.GroupID) error {
	var err error
	cerr := n.call(func() {
		var effs []core.Effect
		effs, err = n.eng.LeaveGroup(n.clk.Now(), g)
		n.apply(effs)
		if err == nil {
			for p := range n.removed[g] {
				delete(n.healed, groupPeer{g, p})
			}
			delete(n.removed, g)
			if n.rng != nil {
				n.rng.DropGroup(g)
			}
		}
	})
	if cerr != nil {
		return cerr
	}
	return err
}

// View returns the current membership view of g.
func (n *Node) View(g types.GroupID) (types.View, error) {
	var v types.View
	var err error
	cerr := n.call(func() { v, err = n.eng.View(g) })
	if cerr != nil {
		return types.View{}, cerr
	}
	return v, err
}

// GroupReady reports whether g has completed formation.
func (n *Node) GroupReady(g types.GroupID) bool {
	var ok bool
	_ = n.call(func() { ok = n.eng.GroupReady(g) })
	return ok
}

// Stats snapshots the engine counters.
func (n *Node) Stats() core.Stats {
	var s core.Stats
	_ = n.call(func() { s = n.eng.Stats() })
	return s
}

// loop is the single-threaded protocol driver.
func (n *Node) loop() {
	defer n.wg.Done()
	defer close(n.dead)
	timer := n.clk.After(n.tick)
	for {
		select {
		case <-n.done:
			return
		case fn := <-n.calls:
			fn()
		case in, ok := <-n.ep.Recv():
			if !ok {
				return
			}
			n.noteInbound(in.From, in.Msg.Group)
			if n.rng != nil {
				// Ring path: relay outbounds may alias the borrowed
				// transport buffer, and the endpoint marshals frames
				// during Send — so relays go out before the buffer is
				// released, zero copies. Whatever the ring releases to
				// the engine owns its memory already.
				outs, delivers := n.rng.OnReceive(n.clk.Now(), in.From, in.Msg)
				for _, o := range outs {
					n.sendInc(o.Msg.Group)
					_ = n.ep.Send(o.To, o.Msg)
				}
				in.Release()
				n.ringQ = append(n.ringQ, delivers...)
				n.apply(nil)
				continue
			}
			// The engine retains stimuli (data messages sit in its log
			// until stability), so a borrowed message is sealed — its
			// payload copied out of the transport buffer — before the
			// buffer reference goes back. This is the single copy left on
			// the receive path.
			if in.Buf != nil {
				in.Msg.Own()
				in.Release()
			}
			n.apply(n.eng.HandleMessage(n.clk.Now(), in.From, in.Msg))
		case <-timer:
			now := n.clk.Now()
			n.apply(n.eng.Tick(now))
			if n.rng != nil {
				for _, o := range n.rng.Tick(now) {
					n.sendInc(o.Msg.Group)
					_ = n.ep.Send(o.To, o.Msg)
				}
			}
			n.maybeProbe(now)
			timer = n.clk.After(n.tick)
		}
	}
}

// apply routes one engine effects batch, then feeds the engine whatever
// the ring layer released while the batch was being routed (each feed may
// queue more). Deferring those stimuli matters: the effects slice aliases
// the engine's reusable buffer, so the engine must not re-enter while a
// batch is mid-iteration.
func (n *Node) apply(effs []core.Effect) {
	n.route(effs)
	for len(n.ringQ) > 0 {
		d := n.ringQ[0]
		n.ringQ[0] = ring.Delivered{}
		n.ringQ = n.ringQ[1:]
		if len(n.ringQ) == 0 {
			n.ringQ = nil
		}
		n.route(n.eng.HandleMessage(n.clk.Now(), d.From, d.Msg))
	}
}

// noteInbound watches for the heal signal: any message arriving from a
// process this node excluded from the message's group. The engine will
// discard the message itself (§5.2) — the arrival is the information.
//
// The fallback path recognises an excluded peer even when the message's
// group does not match the group the exclusion happened in: a peer
// recovering from disk announces in its recovered (possibly stale) group
// incarnation, and survivors may have superseded and left the group they
// excluded it from. The event then carries the exclusion's group.
func (n *Node) noteInbound(from types.ProcessID, g types.GroupID) {
	if rm := n.removed[g]; rm != nil && rm[from] {
		key := groupPeer{g, from}
		if !n.healed[key] {
			n.healed[key] = true
			n.om.healsDetected.Inc()
			n.events.push(Event{Kind: EventHealDetected, Group: g, Peer: from})
		}
		return
	}
	if exg, ok := n.excluded[from]; ok {
		key := groupPeer{exg, from}
		if !n.healed[key] {
			n.healed[key] = true
			n.om.healsDetected.Inc()
			n.events.push(Event{Kind: EventHealDetected, Group: exg, Peer: from})
		}
	}
}

// Probe sends one probe null per peer in group g, bypassing the removed-
// member bookkeeping — the announcement a process recovered from local
// storage uses to make its former partners' heal detection notice it
// (their own probes stop reaching a restarted process's old incarnation,
// and a recovered process has removed nobody, so without announcing it
// would wait forever). The receiving engines discard the null; the
// arrival is the signal.
func (n *Node) Probe(g types.GroupID, peers []types.ProcessID) error {
	ps := append([]types.ProcessID(nil), peers...)
	return n.call(func() {
		self := n.eng.Self()
		for _, p := range ps {
			if p == self {
				continue
			}
			n.sendInc(g)
			n.om.healProbes.Inc()
			_ = n.ep.Send(p, &types.Message{Kind: types.KindNull, Group: g, Sender: self, Origin: self})
		}
	})
}

// readmit clears the cross-group exclusion record (and its heal-event
// debounce) of every peer in members: a view or formed group that
// includes a peer supersedes any earlier exclusion of it.
func (n *Node) readmit(members []types.ProcessID) {
	for _, p := range members {
		if exg, ok := n.excluded[p]; ok {
			delete(n.excluded, p)
			delete(n.healed, groupPeer{exg, p})
		}
	}
}

// maybeProbe sends a low-rate null to every removed member. A probe that
// gets through is discarded by the receiving engine (its sender is
// removed there too) but trips the receiver's noteInbound — each side
// learns of the heal from the other's probes.
//
// Probing continues even after this side has observed the heal: stopping
// then would starve the FAR side of its own detection signal whenever our
// pre-heal probes were all lost to the cut and its probes reached us
// first — a one-sided heal that strands the far side forever (it keeps
// probing, we never answer, and only the application's merged-group
// invitation could save it). The steady-state cost is one tiny message
// per probeEvery per removed member, and it ends when the application
// drains and leaves the group (LeaveGroup clears the removed set). A
// genuinely crashed member simply never answers.
func (n *Node) maybeProbe(now time.Time) {
	if n.probeEvery < 0 || now.Sub(n.lastProbe) < n.probeEvery {
		return
	}
	n.lastProbe = now
	self := n.eng.Self()
	for g, peers := range n.removed {
		for p := range peers {
			n.sendInc(g)
			n.om.healProbes.Inc()
			_ = n.ep.Send(p, &types.Message{Kind: types.KindNull, Group: g, Sender: self, Origin: self})
		}
	}
}

// route executes engine effects: transmissions to the endpoint,
// everything else to the application queues.
func (n *Node) route(effs []core.Effect) {
	for _, eff := range effs {
		switch eff := eff.(type) {
		case core.SendEffect:
			// Transport loss surfaces through the protocol's own
			// failure handling; nothing useful to do with the error
			// here beyond not wedging the loop.
			if n.rng != nil {
				for _, o := range n.rng.OnSend(eff.To, eff.Msg) {
					n.sendInc(o.Msg.Group)
					_ = n.ep.Send(o.To, o.Msg)
				}
				continue
			}
			n.sendInc(eff.Msg.Group)
			_ = n.ep.Send(eff.To, eff.Msg)
		case core.DeliverEffect:
			d := Delivery{
				Group:   eff.Msg.Group,
				Sender:  eff.Msg.Origin,
				Num:     eff.Msg.Num,
				Payload: eff.Msg.Payload,
				ViewIdx: eff.View,
				Pos:     types.LogPos{Group: eff.Msg.Group, Index: eff.Index},
			}
			if sink, ok := n.sinks[d.Group]; ok {
				sink.push(d)
			} else {
				n.deliveries.push(d)
			}
		case core.ViewEffect:
			g := eff.View.Group
			rm := n.removed[g]
			if rm == nil {
				rm = make(map[types.ProcessID]bool)
				n.removed[g] = rm
			}
			for _, p := range eff.Removed {
				rm[p] = true
				n.excluded[p] = g
			}
			n.readmit(eff.View.Members)
			if n.rng != nil {
				outs, delivers := n.rng.OnViewChange(g, eff.View.Members, eff.Removed)
				for _, o := range outs {
					n.sendInc(o.Msg.Group)
					_ = n.ep.Send(o.To, o.Msg)
				}
				n.ringQ = append(n.ringQ, delivers...)
			}
			n.events.push(Event{
				Kind:    EventViewChanged,
				Group:   g,
				View:    eff.View,
				Removed: eff.Removed,
			})
		case core.GroupReadyEffect:
			// A formed group's first view may arrive without a ViewEffect;
			// read it from the engine (a pure read, safe mid-batch) to seed
			// the ring order and clear exclusions the formation readmitted.
			if v, err := n.eng.View(eff.Group); err == nil {
				n.readmit(v.Members)
				if n.rng != nil {
					outs, delivers := n.rng.OnViewChange(eff.Group, v.Members, nil)
					for _, o := range outs {
						n.sendInc(o.Msg.Group)
						_ = n.ep.Send(o.To, o.Msg)
					}
					n.ringQ = append(n.ringQ, delivers...)
				}
			}
			n.events.push(Event{Kind: EventGroupReady, Group: eff.Group})
		case core.FormationFailedEffect:
			n.events.push(Event{Kind: EventFormationFailed, Group: eff.Group, Reason: eff.Reason})
		case core.SuspectEffect:
			n.events.push(Event{Kind: EventSuspected, Group: eff.Group, Suspect: eff.Susp.Proc})
		}
	}
}

// outbox is an unbounded queue pumped into a channel, so the protocol loop
// never blocks on a slow application consumer.
type outbox[T any] struct {
	ch     chan T
	done   chan struct{}
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []T
	closed bool
	wg     sync.WaitGroup
}

func newOutbox[T any]() *outbox[T] {
	o := &outbox[T]{ch: make(chan T), done: make(chan struct{})}
	o.cond = sync.NewCond(&o.mu)
	o.wg.Add(1)
	go o.pump()
	return o
}

func (o *outbox[T]) push(v T) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return
	}
	o.queue = append(o.queue, v)
	o.cond.Signal()
}

func (o *outbox[T]) close() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	o.cond.Signal()
	o.mu.Unlock()
	close(o.done)
	o.wg.Wait()
}

// drain closes the outbox and returns every queued item the consumer never
// received, in order — including the one the pump had in flight (the head
// stays queued until the consumer takes it, so nothing slips the residue).
func (o *outbox[T]) drain() []T {
	o.close()
	o.mu.Lock()
	defer o.mu.Unlock()
	q := o.queue
	o.queue = nil
	return q
}

func (o *outbox[T]) pump() {
	defer o.wg.Done()
	defer close(o.ch)
	for {
		o.mu.Lock()
		for len(o.queue) == 0 && !o.closed {
			o.cond.Wait()
		}
		if o.closed {
			o.mu.Unlock()
			return
		}
		// Peek, don't pop: the head is dequeued only after the consumer
		// takes it, so an abandoned pump leaves it for drain.
		v := o.queue[0]
		o.mu.Unlock()
		// A consumer that stops reading must not wedge shutdown.
		select {
		case o.ch <- v:
			o.mu.Lock()
			var zero T
			o.queue[0] = zero
			o.queue = o.queue[1:]
			if len(o.queue) == 0 {
				o.queue = nil
			}
			o.mu.Unlock()
		case <-o.done:
			return
		}
	}
}
